// Experiment E17 — path & value indexes vs structural joins: the same
// XMark queries answered (a) from the path synopsis / value index, (b) by
// the navigational engine with indexes disabled, and (c) through the
// holistic twig-join executor. Index build cost is measured separately so
// the steady-state query numbers exclude it (the engine amortizes one
// build per document snapshot).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "index/document_indexes.h"
#include "index/index_manager.h"

namespace xqp {
namespace {

/// Rooted and descendant paths plus selective value predicates — the
/// query shapes the index subsystem claims (index/index_planner.h).
const char* IndexQueryText(int which) {
  switch (which) {
    case 0:
      return "doc('xmark.xml')/site/people/person/name";
    case 1:
      return "doc('xmark.xml')//item/name";
    case 2:
      return "doc('xmark.xml')//item[quantity < 2]";
    case 3:
      return "doc('xmark.xml')//person[@id = 'person0']";
    default:
      return "doc('xmark.xml')//open_auction/bidder/increase";
  }
}

std::unique_ptr<XQueryEngine> MakeEngine(double scale, bool indexes) {
  EngineOptions options;
  options.enable_indexes = indexes;
  auto engine = std::make_unique<XQueryEngine>(options);
  Status st = engine->RegisterDocument("xmark.xml", bench::XMarkDoc(scale));
  if (!st.ok()) std::abort();
  return engine;
}

void RunQueryLoop(benchmark::State& state, bool indexes) {
  auto engine =
      MakeEngine(bench::ScaleFromArg(state.range(0)), indexes);
  auto compiled = bench::MustCompile(
      engine.get(), IndexQueryText(static_cast<int>(state.range(1))));
  // Warm engine-side caches (tag index / synopsis build) outside the
  // timed region.
  size_t items = compiled->Execute().ValueOrDie().size();
  for (auto _ : state) {
    auto result = compiled->Execute();
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result);
  }
  state.counters["items"] = static_cast<double>(items);
  state.SetLabel(IndexQueryText(static_cast<int>(state.range(1))));
}

void BM_IndexedExecute(benchmark::State& state) {
  RunQueryLoop(state, /*indexes=*/true);
}
BENCHMARK(BM_IndexedExecute)
    ->Args({100, 0})->Args({100, 1})->Args({100, 2})->Args({100, 3})
    ->Args({100, 4})->Args({500, 0})->Args({500, 2});

void BM_UnindexedExecute(benchmark::State& state) {
  RunQueryLoop(state, /*indexes=*/false);
}
BENCHMARK(BM_UnindexedExecute)
    ->Args({100, 0})->Args({100, 1})->Args({100, 2})->Args({100, 3})
    ->Args({100, 4})->Args({500, 0})->Args({500, 2});

/// The twig executor on the twig-convertible subset (queries 0, 1, 4),
/// with its own caches warm: what the index answer has to beat.
void BM_TwigJoinExecute(benchmark::State& state) {
  auto engine = MakeEngine(bench::ScaleFromArg(state.range(0)),
                           /*indexes=*/false);
  auto compiled = bench::MustCompile(
      engine.get(), IndexQueryText(static_cast<int>(state.range(1))));
  if (!compiled->IsTwigConvertible()) {
    state.SkipWithError("not twig convertible");
    return;
  }
  size_t items = compiled->ExecuteViaTwigJoin().ValueOrDie().size();
  for (auto _ : state) {
    auto result = compiled->ExecuteViaTwigJoin();
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result);
  }
  state.counters["items"] = static_cast<double>(items);
  state.SetLabel(IndexQueryText(static_cast<int>(state.range(1))));
}
BENCHMARK(BM_TwigJoinExecute)
    ->Args({100, 0})->Args({100, 1})->Args({100, 4})->Args({500, 0});

/// One-time cost the indexed lanes amortize: full synopsis + value-index
/// build over the document.
void BM_IndexBuild(benchmark::State& state) {
  auto doc = bench::XMarkDoc(bench::ScaleFromArg(state.range(0)));
  size_t bytes = 0;
  for (auto _ : state) {
    auto idx = DocumentIndexes::Build(doc, kIndexValueAll);
    if (!idx.ok()) state.SkipWithError(idx.status().ToString().c_str());
    bytes = idx.value()->MemoryUsage();
    benchmark::DoNotOptimize(idx);
  }
  state.counters["index_bytes"] = static_cast<double>(bytes);
  state.counters["doc_nodes"] = static_cast<double>(doc->NumNodes());
}
BENCHMARK(BM_IndexBuild)->Arg(100)->Arg(500);

}  // namespace
}  // namespace xqp

XQP_BENCH_JSON_MAIN("BENCH_index.json")
