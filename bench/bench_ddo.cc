// Experiment E12 — document-order / duplicate-elimination elision (paper:
// "sorting by document order and duplicate elimination required by the
// XQuery semantics but very expensive") plus the shared-subexpression
// buffering of let bindings.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace xqp {
namespace {

void RunQueryWithDdo(benchmark::State& state, const std::string& query,
                     bool elide, double scale) {
  auto engine = bench::MakeXMarkEngine(scale);
  XQueryEngine::CompileOptions copts;
  copts.rewriter.ddo_elision = elide;
  auto compiled = bench::MustCompile(engine.get(), query, copts);
  size_t items = 0;
  for (auto _ : state) {
    auto result = compiled->Execute();
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    items = result.ok() ? result.value().size() : 0;
    benchmark::DoNotOptimize(result);
  }
  state.counters["items"] = static_cast<double>(items);
}

// The paper's four path classes.
const char* kChildChain =
    "doc('xmark.xml')/site/open_auctions/open_auction/bidder/increase";
const char* kChildDesc = "doc('xmark.xml')/site/regions//item";
const char* kDescChild = "doc('xmark.xml')//item/name";
const char* kDescDesc = "doc('xmark.xml')//description//keyword";

void BM_ChildChain_Elided(benchmark::State& state) {
  RunQueryWithDdo(state, kChildChain, true, 0.2);
}
BENCHMARK(BM_ChildChain_Elided);
void BM_ChildChain_Full(benchmark::State& state) {
  RunQueryWithDdo(state, kChildChain, false, 0.2);
}
BENCHMARK(BM_ChildChain_Full);

void BM_ChildDesc_Elided(benchmark::State& state) {
  RunQueryWithDdo(state, kChildDesc, true, 0.2);
}
BENCHMARK(BM_ChildDesc_Elided);
void BM_ChildDesc_Full(benchmark::State& state) {
  RunQueryWithDdo(state, kChildDesc, false, 0.2);
}
BENCHMARK(BM_ChildDesc_Full);

void BM_DescChild_Elided(benchmark::State& state) {
  RunQueryWithDdo(state, kDescChild, true, 0.2);
}
BENCHMARK(BM_DescChild_Elided);
void BM_DescChild_Full(benchmark::State& state) {
  RunQueryWithDdo(state, kDescChild, false, 0.2);
}
BENCHMARK(BM_DescChild_Full);

void BM_DescDesc_Elided(benchmark::State& state) {
  RunQueryWithDdo(state, kDescDesc, true, 0.2);
}
BENCHMARK(BM_DescDesc_Elided);
void BM_DescDesc_Full(benchmark::State& state) {
  RunQueryWithDdo(state, kDescDesc, false, 0.2);
}
BENCHMARK(BM_DescDesc_Full);

/// Shared let binding consumed twice: the LazySeq buffer evaluates the
/// expensive path once (the buffer-iterator-factory / memoization claim).
void BM_SharedLet_BufferedOnce(benchmark::State& state) {
  auto engine = bench::MakeXMarkEngine(0.2);
  auto compiled = bench::MustCompile(
      engine.get(),
      "let $items := doc('xmark.xml')/site/regions//item "
      "return count($items) + count($items)");
  for (auto _ : state) {
    auto result = compiled->Execute();
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SharedLet_BufferedOnce);

/// The same computation without sharing: the path is written out twice.
void BM_SharedLet_RecomputedTwice(benchmark::State& state) {
  auto engine = bench::MakeXMarkEngine(0.2);
  XQueryEngine::CompileOptions copts;
  copts.rewriter.cse = false;  // Keep the duplication.
  auto compiled = bench::MustCompile(
      engine.get(),
      "count(doc('xmark.xml')/site/regions//item) + "
      "count(doc('xmark.xml')/site/regions//item)",
      copts);
  for (auto _ : state) {
    auto result = compiled->Execute();
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SharedLet_RecomputedTwice);

}  // namespace
}  // namespace xqp

XQP_BENCH_JSON_MAIN("BENCH_ddo.json")
