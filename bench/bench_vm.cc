// E18 — bytecode VM backend vs the lazy and eager engines on the
// arithmetic/FLWOR-heavy shapes the VM targets (bailout-free inner loops),
// plus mixed XMark queries whose path domain lowers to the VM's path
// opcodes (kNavStep/kAccessExec) alongside per-tuple bytecode arithmetic.
// Path-shape sweeps proper are E21 (bench_vm_paths).
//
//   bench_vm                      # human-readable
//   bench_vm --json               # emit BENCH_vm.json (CI bench-smoke lane)
//
// Arg(n): loop trip count for the synthetic shapes; XMark permille scale
// for the document-backed shape.

#include <benchmark/benchmark.h>

#include <string>

#include "bench/bench_util.h"
#include "engine.h"

namespace xqp {
namespace {

using bench::MakeXMarkEngine;
using bench::MustCompile;
using bench::ScaleFromArg;

CompiledQuery::ExecOptions BackendExec(ExecBackend backend) {
  CompiledQuery::ExecOptions exec;
  exec.backend = backend;
  return exec;
}

void RunShape(benchmark::State& state, const std::string& query,
              ExecBackend backend) {
  XQueryEngine engine;
  auto compiled = MustCompile(&engine, query);
  CompiledQuery::ExecOptions exec = BackendExec(backend);
  size_t items = 0;
  for (auto _ : state) {
    auto result = compiled->Execute(exec);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    items = result.value().size();
    benchmark::DoNotOptimize(result.value());
  }
  state.counters["items"] = static_cast<double>(items);
}

/// Pure arithmetic FLWOR — every opcode stays in the dispatch loop.
std::string ArithQuery(int64_t n) {
  return "sum(for $i in 1 to " + std::to_string(n) +
         " return $i * 3 + 7 - ($i idiv 2))";
}

/// Filtered iteration: where-clause branches plus a comparison per tuple.
std::string FilterQuery(int64_t n) {
  return "count(for $i in 1 to " + std::to_string(n) +
         " where ($i mod 7) = 3 return $i)";
}

void BM_ArithFlwor_Vm(benchmark::State& state) {
  RunShape(state, ArithQuery(state.range(0)), ExecBackend::kVm);
}
void BM_ArithFlwor_Lazy(benchmark::State& state) {
  RunShape(state, ArithQuery(state.range(0)), ExecBackend::kLazy);
}
void BM_ArithFlwor_Eager(benchmark::State& state) {
  RunShape(state, ArithQuery(state.range(0)), ExecBackend::kEager);
}
BENCHMARK(BM_ArithFlwor_Vm)->Arg(10000)->Arg(100000);
BENCHMARK(BM_ArithFlwor_Lazy)->Arg(10000)->Arg(100000);
BENCHMARK(BM_ArithFlwor_Eager)->Arg(10000)->Arg(100000);

void BM_FilterFlwor_Vm(benchmark::State& state) {
  RunShape(state, FilterQuery(state.range(0)), ExecBackend::kVm);
}
void BM_FilterFlwor_Lazy(benchmark::State& state) {
  RunShape(state, FilterQuery(state.range(0)), ExecBackend::kLazy);
}
void BM_FilterFlwor_Eager(benchmark::State& state) {
  RunShape(state, FilterQuery(state.range(0)), ExecBackend::kEager);
}
BENCHMARK(BM_FilterFlwor_Vm)->Arg(10000)->Arg(100000);
BENCHMARK(BM_FilterFlwor_Lazy)->Arg(10000)->Arg(100000);
BENCHMARK(BM_FilterFlwor_Eager)->Arg(10000)->Arg(100000);

/// Mixed query over XMark: the //quantity domain lowers to path opcodes
/// and the per-tuple arithmetic compiles — measures the whole-query
/// bytecode contract on real document data.
void RunXMarkShape(benchmark::State& state, ExecBackend backend) {
  auto engine = MakeXMarkEngine(ScaleFromArg(state.range(0)));
  auto compiled = MustCompile(
      engine.get(),
      "for $q in doc('xmark.xml')//quantity return $q * 2 + 1");
  CompiledQuery::ExecOptions exec = BackendExec(backend);
  size_t items = 0;
  for (auto _ : state) {
    auto result = compiled->Execute(exec);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    items = result.value().size();
    benchmark::DoNotOptimize(result.value());
  }
  state.counters["items"] = static_cast<double>(items);
}

void BM_XMarkQuantity_Vm(benchmark::State& state) {
  RunXMarkShape(state, ExecBackend::kVm);
}
void BM_XMarkQuantity_Lazy(benchmark::State& state) {
  RunXMarkShape(state, ExecBackend::kLazy);
}
void BM_XMarkQuantity_Eager(benchmark::State& state) {
  RunXMarkShape(state, ExecBackend::kEager);
}
BENCHMARK(BM_XMarkQuantity_Vm)->Arg(20);
BENCHMARK(BM_XMarkQuantity_Lazy)->Arg(20);
BENCHMARK(BM_XMarkQuantity_Eager)->Arg(20);

/// FLWOR-heavy XMark aggregate: one //quantity scan (compiled path
/// opcodes), then a nested compiled loop doing 60 arithmetic ops per
/// matched node — the report-generation shape where per-tuple arithmetic
/// dominates the scan.
void RunXMarkAggregate(benchmark::State& state, ExecBackend backend) {
  auto engine = MakeXMarkEngine(ScaleFromArg(state.range(0)));
  auto compiled = MustCompile(
      engine.get(),
      "sum(for $q in doc('xmark.xml')//quantity, $i in 1 to 60 "
      "return $q * $i + ($q idiv 2) - ($i mod 7))");
  CompiledQuery::ExecOptions exec = BackendExec(backend);
  for (auto _ : state) {
    auto result = compiled->Execute(exec);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result.value());
  }
}

void BM_XMarkAggregate_Vm(benchmark::State& state) {
  RunXMarkAggregate(state, ExecBackend::kVm);
}
void BM_XMarkAggregate_Lazy(benchmark::State& state) {
  RunXMarkAggregate(state, ExecBackend::kLazy);
}
void BM_XMarkAggregate_Eager(benchmark::State& state) {
  RunXMarkAggregate(state, ExecBackend::kEager);
}
BENCHMARK(BM_XMarkAggregate_Vm)->Arg(20);
BENCHMARK(BM_XMarkAggregate_Lazy)->Arg(20);
BENCHMARK(BM_XMarkAggregate_Eager)->Arg(20);

}  // namespace
}  // namespace xqp

XQP_BENCH_JSON_MAIN("BENCH_vm.json")
