// Experiment E14 — observability overhead. The metrics/profile subsystem
// claims "a branch on a bool" when disabled: every instrumentation point in
// the join kernels, iterators, and interpreter is gated on one relaxed
// atomic load. We measure the same E1 path query and E6 twig query in three
// configurations:
//
//   Disabled     — registry off, plain Execute (the default production path;
//                  must be within noise, <2%, of the pre-instrumentation
//                  engine)
//   Metrics      — global registry enabled (counters + kernel histograms
//                  recorded), plain Execute, no per-operator profile
//   FullProfile  — CompiledQuery::Profile(): per-operator wrappers, wall
//                  clocks around every Next()/Eval, registry delta snapshot
//
// Disabled vs Metrics isolates the cost of the atomic counters; Metrics vs
// FullProfile isolates the per-operator timer wrapping.

#include <benchmark/benchmark.h>

#include "base/metrics.h"
#include "bench/bench_util.h"

namespace xqp {
namespace {

// The E1 streaming path query and an E6-style branchy twig query.
constexpr const char* kPathQuery =
    "doc('xmark.xml')/site/open_auctions/open_auction/bidder/increase";
constexpr const char* kTwigQuery =
    "doc('xmark.xml')//item[mailbox//date]//keyword";

const char* QueryFor(int which) { return which == 0 ? kPathQuery : kTwigQuery; }
const char* LabelFor(int which) { return which == 0 ? "E1-path" : "E6-twig"; }

void RunExecute(benchmark::State& state, bool metrics_enabled) {
  auto engine = bench::MakeXMarkEngine(bench::ScaleFromArg(state.range(0)));
  auto query = bench::MustCompile(engine.get(), QueryFor(state.range(1)));
  metrics::MetricsRegistry::Global().set_enabled(metrics_enabled);
  size_t items = 0;
  for (auto _ : state) {
    auto result = query->Execute();
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    items = result.ok() ? result.value().size() : 0;
    benchmark::DoNotOptimize(result);
  }
  metrics::MetricsRegistry::Global().set_enabled(false);
  state.counters["items"] = static_cast<double>(items);
  state.SetLabel(LabelFor(state.range(1)));
}

void BM_Profile_Disabled(benchmark::State& state) {
  RunExecute(state, /*metrics_enabled=*/false);
}
BENCHMARK(BM_Profile_Disabled)->Args({20, 0})->Args({20, 1})
    ->Args({100, 0})->Args({100, 1});

void BM_Profile_MetricsEnabled(benchmark::State& state) {
  RunExecute(state, /*metrics_enabled=*/true);
}
BENCHMARK(BM_Profile_MetricsEnabled)->Args({20, 0})->Args({20, 1})
    ->Args({100, 0})->Args({100, 1});

void BM_Profile_FullProfile(benchmark::State& state) {
  auto engine = bench::MakeXMarkEngine(bench::ScaleFromArg(state.range(0)));
  auto query = bench::MustCompile(engine.get(), QueryFor(state.range(1)));
  size_t items = 0;
  for (auto _ : state) {
    auto report = query->Profile();
    if (!report.ok()) state.SkipWithError(report.status().ToString().c_str());
    items = report.ok() ? report.value().result.size() : 0;
    benchmark::DoNotOptimize(report);
  }
  state.counters["items"] = static_cast<double>(items);
  state.SetLabel(LabelFor(state.range(1)));
}
BENCHMARK(BM_Profile_FullProfile)->Args({20, 0})->Args({20, 1})
    ->Args({100, 0})->Args({100, 1});

}  // namespace
}  // namespace xqp

XQP_BENCH_JSON_MAIN("BENCH_profile.json")
