// Experiment E6 — holistic twig joins (Bruno et al., from the paper's
// reading list): TwigStack vs. a binary-structural-join pipeline vs.
// navigation, on XMark twig patterns. The headline metric besides time is
// the number of intermediate pairs each strategy materializes.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "join/twig.h"

namespace xqp {
namespace {

/// XMark twig patterns of increasing branchiness.
TwigPattern MakePattern(int which) {
  TwigPattern p;
  switch (which) {
    case 0: {  // //item//keyword (path)
      p.Add("item");
      p.output = p.Add("keyword", 0, false);
      break;
    }
    case 1: {  // //open_auction[bidder]/seller
      int a = p.Add("open_auction");
      p.Add("bidder", a, true);
      p.output = p.Add("seller", a, true);
      break;
    }
    case 2: {  // //item[mailbox//date]//keyword
      int item = p.Add("item");
      int mail = p.Add("mailbox", item, true);
      p.Add("date", mail, false);
      p.output = p.Add("keyword", item, false);
      break;
    }
    default: {  // //listitem[bold]//keyword
      int li = p.Add("listitem");
      p.Add("bold", li, false);
      p.output = p.Add("keyword", li, false);
      break;
    }
  }
  return p;
}

struct Fixture {
  std::shared_ptr<const Document> doc;
  std::unique_ptr<TagIndex> index;
};

Fixture MakeFixture(double scale) {
  Fixture f;
  f.doc = bench::XMarkDoc(scale);
  f.index = std::make_unique<TagIndex>(f.doc);
  return f;
}

void BM_TwigStack(benchmark::State& state) {
  auto f = MakeFixture(bench::ScaleFromArg(state.range(0)));
  TwigPattern pattern = MakePattern(static_cast<int>(state.range(1)));
  TwigStats stats{};
  for (auto _ : state) {
    stats = TwigStats{};
    auto result = TwigStackMatch(*f.index, pattern, &stats);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result);
  }
  state.counters["matches"] = static_cast<double>(stats.output_matches);
  state.counters["intermediate_pairs"] =
      static_cast<double>(stats.intermediate_pairs);
  state.SetLabel(pattern.ToString());
}
BENCHMARK(BM_TwigStack)
    ->Args({200, 0})->Args({200, 1})->Args({200, 2})->Args({200, 3})
    ->Args({500, 1})->Args({500, 2});

void BM_BinaryJoins(benchmark::State& state) {
  auto f = MakeFixture(bench::ScaleFromArg(state.range(0)));
  TwigPattern pattern = MakePattern(static_cast<int>(state.range(1)));
  TwigStats stats{};
  for (auto _ : state) {
    stats = TwigStats{};
    auto result = BinaryJoinMatch(*f.index, pattern, &stats);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result);
  }
  state.counters["matches"] = static_cast<double>(stats.output_matches);
  state.counters["intermediate_pairs"] =
      static_cast<double>(stats.intermediate_pairs);
  state.SetLabel(pattern.ToString());
}
BENCHMARK(BM_BinaryJoins)
    ->Args({200, 0})->Args({200, 1})->Args({200, 2})->Args({200, 3})
    ->Args({500, 1})->Args({500, 2});

void BM_NavigationTwig(benchmark::State& state) {
  auto f = MakeFixture(bench::ScaleFromArg(state.range(0)));
  TwigPattern pattern = MakePattern(static_cast<int>(state.range(1)));
  TwigStats stats{};
  for (auto _ : state) {
    stats = TwigStats{};
    auto result = NavigationMatch(*f.doc, pattern, &stats);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result);
  }
  state.counters["matches"] = static_cast<double>(stats.output_matches);
  state.SetLabel(pattern.ToString());
}
BENCHMARK(BM_NavigationTwig)
    ->Args({200, 0})->Args({200, 1})->Args({200, 2})->Args({200, 3})
    ->Args({500, 1})->Args({500, 2});

/// The query engine evaluating the same pattern navigationally through the
/// full XQuery stack (for scale: what the twig machinery buys end to end).
void BM_EngineEquivalent(benchmark::State& state) {
  auto engine = bench::MakeXMarkEngine(bench::ScaleFromArg(state.range(0)));
  static const char* kQueries[] = {
      "doc('xmark.xml')//item//keyword",
      "doc('xmark.xml')//open_auction[bidder]/seller",
      "doc('xmark.xml')//item[mailbox//date]//keyword",
      "doc('xmark.xml')//listitem[bold]//keyword",
  };
  auto compiled = bench::MustCompile(
      engine.get(), kQueries[static_cast<int>(state.range(1))]);
  for (auto _ : state) {
    auto result = compiled->Execute();
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_EngineEquivalent)
    ->Args({200, 0})->Args({200, 1})->Args({200, 2})->Args({200, 3});

}  // namespace
}  // namespace xqp

XQP_BENCH_JSON_MAIN("BENCH_twig.json")
