// E22 — compiled node construction and order-by in the bytecode VM vs
// the lazy engine: a constructor-heavy return clause (kConstructElem with
// attribute value templates), a computed-constructor variant, an order-by
// sort over a materialized tuple stream (kSortOpen/kSortKey/kSortTuples),
// and the combined XMark Q19-style transform (sort + construct). Every
// shape runs on both backends from one CompiledQuery, so the sweep
// doubles as a parity-or-better check for the new lowering.
//
//   bench_vm_construct            # human-readable
//   bench_vm_construct --json     # emit BENCH_vm_construct.json (CI lane)
//
// Arg(n): XMark permille scale.

#include <benchmark/benchmark.h>

#include <string>

#include "bench/bench_util.h"
#include "engine.h"

namespace xqp {
namespace {

using bench::MakeXMarkEngine;
using bench::MustCompile;
using bench::ScaleFromArg;

void RunConstructShape(benchmark::State& state, const std::string& query,
                       ExecBackend backend) {
  auto engine = MakeXMarkEngine(ScaleFromArg(state.range(0)));
  auto compiled = MustCompile(engine.get(), query);
  CompiledQuery::ExecOptions exec;
  exec.backend = backend;
  // Warm the document indexes outside the timed region (both backends
  // probe the same engine-level cache).
  {
    auto warm = compiled->Execute(exec);
    if (!warm.ok()) state.SkipWithError(warm.status().ToString().c_str());
  }
  size_t items = 0;
  for (auto _ : state) {
    auto result = compiled->Execute(exec);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    items = result.value().size();
    benchmark::DoNotOptimize(result.value());
  }
  state.counters["items"] = static_cast<double>(items);
}

/// Constructor-heavy return clause: one direct element per item, with an
/// attribute value template and nested child construction.
const char kDirectConstruct[] =
    "for $i in doc('xmark.xml')//item "
    "return <item id=\"{$i/@id}\"><n>{string($i/name[1])}</n>"
    "<k>{count($i/*)}</k></item>";

/// Computed constructors: element + attribute + text with computed names.
const char kComputedConstruct[] =
    "for $p in doc('xmark.xml')/site/people/person "
    "return element {name($p)} {attribute src {string($p/@id)}, "
    "text {string($p/name[1])}}";

/// Order-by sort over the full person set — the materialize + stable-sort
/// path with a single string key.
const char kOrderBySort[] =
    "for $p in doc('xmark.xml')/site/people/person "
    "order by string($p/name[1]) return string($p/@id)";

/// Combined transform: multi-key sort feeding a constructor-heavy return
/// clause (descending numeric + ascending string keys).
const char kSortedTransform[] =
    "for $i in doc('xmark.xml')//item "
    "order by count($i/*) descending, string($i/name[1]) "
    "return <hit rank=\"{count($i/*)}\">{string($i/name[1])}</hit>";

#define XQP_CONSTRUCT_SHAPE(name, query)                  \
  void BM_##name##_Vm(benchmark::State& state) {          \
    RunConstructShape(state, query, ExecBackend::kVm);    \
  }                                                       \
  void BM_##name##_Lazy(benchmark::State& state) {        \
    RunConstructShape(state, query, ExecBackend::kLazy);  \
  }                                                       \
  BENCHMARK(BM_##name##_Vm)->Arg(20);                     \
  BENCHMARK(BM_##name##_Lazy)->Arg(20)

XQP_CONSTRUCT_SHAPE(DirectConstruct, kDirectConstruct);
XQP_CONSTRUCT_SHAPE(ComputedConstruct, kComputedConstruct);
XQP_CONSTRUCT_SHAPE(OrderBySort, kOrderBySort);
XQP_CONSTRUCT_SHAPE(SortedTransform, kSortedTransform);

#undef XQP_CONSTRUCT_SHAPE

}  // namespace
}  // namespace xqp

XQP_BENCH_JSON_MAIN("BENCH_vm_construct.json")
