// Experiment E7 — payoff of the rewrite-rule library, rule by rule (the
// paper's "~100 rewriting rules" with named families). Each benchmark runs
// a query crafted to exercise one rule, compiled with the rule on vs. off.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace xqp {
namespace {

void RunWithOptions(benchmark::State& state, const std::string& query,
                    const RewriterOptions& rewriter, double scale = 0.1) {
  auto engine = bench::MakeXMarkEngine(scale);
  XQueryEngine::CompileOptions copts;
  copts.rewriter = rewriter;
  auto compiled = bench::MustCompile(engine.get(), query, copts);
  for (auto _ : state) {
    auto result = compiled->Execute();
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result);
  }
}

// --- Common subexpression factorization ---

const char* kCseQuery =
    "for $i in (1 to 200) "
    "return count(doc('xmark.xml')/site/people/person/profile) "
    "+ count(doc('xmark.xml')/site/people/person/profile)";

void BM_Cse_On(benchmark::State& state) {
  RunWithOptions(state, kCseQuery, RewriterOptions{});
}
BENCHMARK(BM_Cse_On);

void BM_Cse_Off(benchmark::State& state) {
  RewriterOptions options;
  options.cse = false;
  RunWithOptions(state, kCseQuery, options);
}
BENCHMARK(BM_Cse_Off);

// --- Function inlining ---

const char* kInlineQuery =
    "declare function local:price($i) { $i/price * 1.0 }; "
    "sum(for $c in doc('xmark.xml')/site/closed_auctions/closed_auction "
    "return local:price($c))";

void BM_Inlining_On(benchmark::State& state) {
  RunWithOptions(state, kInlineQuery, RewriterOptions{});
}
BENCHMARK(BM_Inlining_On);

void BM_Inlining_Off(benchmark::State& state) {
  RewriterOptions options;
  options.function_inlining = false;
  RunWithOptions(state, kInlineQuery, options);
}
BENCHMARK(BM_Inlining_Off);

// --- Constant folding ---

const char* kConstQuery =
    "sum(for $c in doc('xmark.xml')/site/closed_auctions/closed_auction "
    "where $c/price > (10 * 2 + 5) return 1)";

void BM_ConstFold_On(benchmark::State& state) {
  RunWithOptions(state, kConstQuery, RewriterOptions{});
}
BENCHMARK(BM_ConstFold_On);

void BM_ConstFold_Off(benchmark::State& state) {
  RewriterOptions options;
  options.constant_folding = false;
  RunWithOptions(state, kConstQuery, options);
}
BENCHMARK(BM_ConstFold_Off);

// --- LET folding / dead-let elimination ---

const char* kLetQuery =
    "for $p in doc('xmark.xml')/site/people/person "
    "let $unused := doc('xmark.xml')/site/regions//item "
    "let $name := $p/name "
    "return string($name)";

void BM_LetFolding_On(benchmark::State& state) {
  RunWithOptions(state, kLetQuery, RewriterOptions{});
}
BENCHMARK(BM_LetFolding_On);

void BM_LetFolding_Off(benchmark::State& state) {
  RewriterOptions options;
  options.let_folding = false;
  RunWithOptions(state, kLetQuery, options);
}
BENCHMARK(BM_LetFolding_Off);

// --- FLWOR unnesting ---

const char* kUnnestQuery =
    "count(for $x in (for $a in doc('xmark.xml')/site/open_auctions/"
    "open_auction where $a/bidder return $a) "
    "where $x/current > 50 return $x)";

void BM_Unnesting_On(benchmark::State& state) {
  RunWithOptions(state, kUnnestQuery, RewriterOptions{});
}
BENCHMARK(BM_Unnesting_On);

void BM_Unnesting_Off(benchmark::State& state) {
  RewriterOptions options;
  options.flwor_unnesting = false;
  RunWithOptions(state, kUnnestQuery, options);
}
BENCHMARK(BM_Unnesting_Off);

// --- Everything on vs. everything off, end to end ---

const char* kKitchenSink =
    "declare function local:hot($a) { count($a/bidder) >= 3 }; "
    "for $a in (for $x in doc('xmark.xml')/site/open_auctions/open_auction "
    "           return $x) "
    "let $seller := $a/seller "
    "let $ignored := doc('xmark.xml')//person "
    "where local:hot($a) and count(doc('xmark.xml')//person) > (2 + 3) "
    "return <hot seller=\"{string($seller/@person)}\">{string($a/current)}"
    "</hot>";

void BM_AllRules_On(benchmark::State& state) {
  RunWithOptions(state, kKitchenSink, RewriterOptions{});
}
BENCHMARK(BM_AllRules_On);

void BM_AllRules_Off(benchmark::State& state) {
  RunWithOptions(state, kKitchenSink, RewriterOptions::AllOff());
}
BENCHMARK(BM_AllRules_Off);

// --- Inter-query memoization (the paper's "Memoization" slide) ---

void BM_Memoization_Hit(benchmark::State& state) {
  auto engine = bench::MakeXMarkEngine(0.1);
  const char* query = "count(doc('xmark.xml')/site/regions//item)";
  // Warm the cache once.
  auto warm = engine->ExecuteCached(query);
  if (!warm.ok()) state.SkipWithError(warm.status().ToString().c_str());
  for (auto _ : state) {
    auto result = engine->ExecuteCached(query);
    benchmark::DoNotOptimize(result);
  }
  state.counters["hits"] = static_cast<double>(engine->cache_stats().hits);
}
BENCHMARK(BM_Memoization_Hit);

void BM_Memoization_Miss(benchmark::State& state) {
  auto engine = bench::MakeXMarkEngine(0.1);
  const char* query = "count(doc('xmark.xml')/site/regions//item)";
  for (auto _ : state) {
    auto result = engine->Execute(query);  // Uncached: full compile + run.
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_Memoization_Miss);

}  // namespace
}  // namespace xqp

XQP_BENCH_JSON_MAIN("BENCH_rewrites.json")
