// Experiment E2 — lazy evaluation: "compute results only if they are
// needed". Quantifiers, positional predicates, and emptiness tests should
// touch only a prefix of their input under the lazy engine, while the eager
// engine always pays for the whole sequence.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace xqp {
namespace {

std::unique_ptr<CompiledQuery> Compile(XQueryEngine* engine,
                                       const std::string& query) {
  return bench::MustCompile(engine, query);
}

void RunEngine(benchmark::State& state, const std::string& query, bool lazy) {
  XQueryEngine engine;
  auto compiled = Compile(&engine, query);
  CompiledQuery::ExecOptions options;
  options.use_lazy_engine = lazy;
  for (auto _ : state) {
    auto result = compiled->Execute(options);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result);
  }
}

/// (1 to N)[k]: the lazy engine pulls k items; the eager engine expands N.
void BM_PositionalPredicate_Lazy(benchmark::State& state) {
  RunEngine(state,
            "(1 to " + std::to_string(state.range(0)) + ")[5]", true);
}
BENCHMARK(BM_PositionalPredicate_Lazy)->Arg(1000)->Arg(100000)->Arg(10000000);

void BM_PositionalPredicate_Eager(benchmark::State& state) {
  RunEngine(state,
            "(1 to " + std::to_string(state.range(0)) + ")[5]", false);
}
BENCHMARK(BM_PositionalPredicate_Eager)->Arg(1000)->Arg(100000)->Arg(10000000);

/// some $x in (1 to N) satisfies $x eq K: early exit at the witness.
void BM_Quantifier_Lazy(benchmark::State& state) {
  RunEngine(state,
            "some $x in (1 to 10000000) satisfies $x eq " +
                std::to_string(state.range(0)),
            true);
}
BENCHMARK(BM_Quantifier_Lazy)->Arg(10)->Arg(10000)->Arg(10000000);

void BM_Quantifier_Eager(benchmark::State& state) {
  // The eager interpreter evaluates the domain fully before looping, so the
  // witness position matters less than the domain size.
  RunEngine(state,
            "some $x in (1 to 1000000) satisfies $x eq " +
                std::to_string(state.range(0)),
            false);
}
BENCHMARK(BM_Quantifier_Eager)->Arg(10)->Arg(10000)->Arg(1000000);

/// fn:empty / fn:exists pull at most one item when lazy.
void BM_Exists_Lazy(benchmark::State& state) {
  RunEngine(state, "exists(1 to 10000000)", true);
}
BENCHMARK(BM_Exists_Lazy);

void BM_Exists_Eager(benchmark::State& state) {
  RunEngine(state, "exists(1 to 1000000)", false);
}
BENCHMARK(BM_Exists_Eager);

/// Paper's endlessOnes(): only terminates under lazy evaluation, and should
/// do so in constant time.
void BM_EndlessOnes_Lazy(benchmark::State& state) {
  RunEngine(state,
            "declare function local:ones() { (1, local:ones()) }; "
            "some $x in local:ones() satisfies $x eq 1",
            true);
}
BENCHMARK(BM_EndlessOnes_Lazy);

/// Lazy wins on real data too: the first bidder of the first auction.
void BM_FirstBidder_Lazy(benchmark::State& state) {
  auto engine = bench::MakeXMarkEngine(0.1);
  auto compiled = Compile(
      engine.get(),
      "(doc('xmark.xml')/site/open_auctions/open_auction/bidder)[1]");
  CompiledQuery::ExecOptions options;
  for (auto _ : state) {
    auto result = compiled->Execute(options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_FirstBidder_Lazy);

void BM_FirstBidder_Eager(benchmark::State& state) {
  auto engine = bench::MakeXMarkEngine(0.1);
  auto compiled = Compile(
      engine.get(),
      "(doc('xmark.xml')/site/open_auctions/open_auction/bidder)[1]");
  CompiledQuery::ExecOptions options;
  options.use_lazy_engine = false;
  for (auto _ : state) {
    auto result = compiled->Execute(options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_FirstBidder_Eager);

}  // namespace
}  // namespace xqp

XQP_BENCH_JSON_MAIN("BENCH_lazy.json")
