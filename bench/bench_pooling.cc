// Experiment E4 — string pooling ("Pooling: store strings only once,
// dictionary-based compression; works for all QNames and text"). Parse the
// same XMark document with pooling on and off and compare time and memory.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "tokens/token_stream.h"

namespace xqp {
namespace {

void BM_Parse_Pooled(benchmark::State& state) {
  const std::string& xml = bench::XMarkXml(bench::ScaleFromArg(state.range(0)));
  size_t bytes = 0;
  size_t distinct = 0;
  for (auto _ : state) {
    ParseOptions options;
    options.pool_strings = true;
    auto doc = Document::Parse(xml, options);
    bytes = doc.value()->MemoryUsage();
    distinct = doc.value()->pool().size();
    benchmark::DoNotOptimize(doc);
  }
  state.counters["doc_bytes"] = static_cast<double>(bytes);
  state.counters["pool_entries"] = static_cast<double>(distinct);
  state.SetBytesProcessed(static_cast<int64_t>(xml.size()) *
                          state.iterations());
}
BENCHMARK(BM_Parse_Pooled)->Arg(50)->Arg(200);

void BM_Parse_Unpooled(benchmark::State& state) {
  const std::string& xml = bench::XMarkXml(bench::ScaleFromArg(state.range(0)));
  size_t bytes = 0;
  size_t entries = 0;
  for (auto _ : state) {
    ParseOptions options;
    options.pool_strings = false;
    auto doc = Document::Parse(xml, options);
    bytes = doc.value()->MemoryUsage();
    entries = doc.value()->pool().size();
    benchmark::DoNotOptimize(doc);
  }
  state.counters["doc_bytes"] = static_cast<double>(bytes);
  state.counters["pool_entries"] = static_cast<double>(entries);
  state.SetBytesProcessed(static_cast<int64_t>(xml.size()) *
                          state.iterations());
}
BENCHMARK(BM_Parse_Unpooled)->Arg(50)->Arg(200);

void BM_TokenStream_Pooled(benchmark::State& state) {
  const std::string& xml = bench::XMarkXml(bench::ScaleFromArg(state.range(0)));
  size_t bytes = 0;
  for (auto _ : state) {
    TokenStreamOptions options;
    options.pool_strings = true;
    auto ts = TokenStream::FromXml(xml, options);
    bytes = ts.value().MemoryUsage();
    benchmark::DoNotOptimize(ts);
  }
  state.counters["stream_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_TokenStream_Pooled)->Arg(50)->Arg(200);

void BM_TokenStream_Unpooled(benchmark::State& state) {
  const std::string& xml = bench::XMarkXml(bench::ScaleFromArg(state.range(0)));
  size_t bytes = 0;
  for (auto _ : state) {
    TokenStreamOptions options;
    options.pool_strings = false;
    auto ts = TokenStream::FromXml(xml, options);
    bytes = ts.value().MemoryUsage();
    benchmark::DoNotOptimize(ts);
  }
  state.counters["stream_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_TokenStream_Unpooled)->Arg(50)->Arg(200);

/// Pooling shines on repetitive documents (many identical tags/values):
/// a synthetic log-like document with 20 distinct strings repeated.
void BM_RepetitiveDoc(benchmark::State& state) {
  bool pooled = state.range(0) == 1;
  std::string xml = "<log>";
  for (int i = 0; i < 20000; ++i) {
    xml += "<entry level=\"info\"><msg>connection accepted</msg></entry>";
  }
  xml += "</log>";
  size_t bytes = 0;
  for (auto _ : state) {
    ParseOptions options;
    options.pool_strings = pooled;
    auto doc = Document::Parse(xml, options);
    bytes = doc.value()->MemoryUsage();
    benchmark::DoNotOptimize(doc);
  }
  state.counters["doc_bytes"] = static_cast<double>(bytes);
  state.SetLabel(pooled ? "pooled" : "unpooled");
}
BENCHMARK(BM_RepetitiveDoc)->Arg(1)->Arg(0);

}  // namespace
}  // namespace xqp

XQP_BENCH_JSON_MAIN("BENCH_pooling.json")
