#ifndef XQP_BENCH_BENCH_UTIL_H_
#define XQP_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "base/metrics.h"
#include "engine.h"
#include "xmark/generator.h"

namespace xqp {
namespace bench {

/// main() body for bench targets that support a `--json` convenience flag:
/// `--json` (or `--json=FILE`) is rewritten into google-benchmark's
/// `--benchmark_out=FILE --benchmark_out_format=json` pair so CI lanes can
/// emit machine-readable results (BENCH_*.json) without remembering the
/// native flag spelling. All other arguments pass through untouched.
inline int JsonAwareMain(int argc, char** argv, const char* default_json_file) {
  std::vector<char*> args(argv, argv + argc);
  static std::string out_flag;
  static std::string fmt_flag = "--benchmark_out_format=json";
  for (auto it = args.begin(); it != args.end();) {
    if (std::strcmp(*it, "--json") == 0) {
      out_flag = std::string("--benchmark_out=") + default_json_file;
      it = args.erase(it);
    } else if (std::strncmp(*it, "--json=", 7) == 0) {
      out_flag = std::string("--benchmark_out=") + (*it + 7);
      it = args.erase(it);
    } else {
      ++it;
    }
  }
  if (!out_flag.empty()) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int new_argc = static_cast<int>(args.size());
  benchmark::Initialize(&new_argc, args.data());
  args.resize(static_cast<size_t>(new_argc));
  if (benchmark::ReportUnrecognizedArguments(new_argc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

#define XQP_BENCH_JSON_MAIN(default_json_file)                    \
  int main(int argc, char** argv) {                               \
    return xqp::bench::JsonAwareMain(argc, argv, default_json_file); \
  }

/// Scale arguments are passed to benchmarks as integer permille of XMark
/// scale 1.0 (e.g. Arg(50) = scale 0.05).
inline double ScaleFromArg(int64_t arg) { return static_cast<double>(arg) / 1000.0; }

/// Cached XMark XML text per scale (generation is deterministic). The
/// mutex makes the lazy cache safe for multi-threaded benchmarks; map
/// entries are never erased, so returned references stay valid after the
/// lock is released. The one-time generation cost is recorded into the
/// metrics registry ("bench.xmark.generate_ns") instead of silently
/// landing inside whichever benchmark iteration faulted the cache in.
inline const std::string& XMarkXml(double scale) {
  static auto* mu = new std::mutex();
  static auto* cache = new std::map<double, std::string>();
  std::lock_guard<std::mutex> lock(*mu);
  auto it = cache->find(scale);
  if (it == cache->end()) {
    metrics::ScopedTimer timer(
        metrics::MetricsRegistry::Global().histogram("bench.xmark.generate_ns"));
    XMarkOptions options;
    options.scale = scale;
    it = cache->emplace(scale, GenerateXMarkXml(options)).first;
  }
  return it->second;
}

/// Cached parsed XMark document per scale (same locking discipline; the
/// one-time parse cost is recorded as "bench.xmark.parse_ns").
inline std::shared_ptr<const Document> XMarkDoc(double scale) {
  static auto* mu = new std::mutex();
  static auto* cache =
      new std::map<double, std::shared_ptr<const Document>>();
  const std::string& xml = XMarkXml(scale);
  std::lock_guard<std::mutex> lock(*mu);
  auto it = cache->find(scale);
  if (it == cache->end()) {
    metrics::ScopedTimer timer(
        metrics::MetricsRegistry::Global().histogram("bench.xmark.parse_ns"));
    auto doc = Document::Parse(xml);
    it = cache->emplace(scale, std::move(doc).ValueOrDie()).first;
  }
  return it->second;
}

/// An engine with the XMark document registered as "xmark.xml".
inline std::unique_ptr<XQueryEngine> MakeXMarkEngine(double scale) {
  auto engine = std::make_unique<XQueryEngine>();
  Status st = engine->RegisterDocument("xmark.xml", XMarkDoc(scale));
  if (!st.ok()) std::abort();
  return engine;
}

/// Compiles or dies (benchmark setup).
inline std::unique_ptr<CompiledQuery> MustCompile(
    XQueryEngine* engine, const std::string& query,
    const XQueryEngine::CompileOptions& options = {}) {
  auto compiled = engine->Compile(query, options);
  if (!compiled.ok()) {
    std::fprintf(stderr, "compile failed: %s\n  %s\n",
                 compiled.status().ToString().c_str(), query.c_str());
    std::abort();
  }
  return std::move(compiled).value();
}

/// Builds a synthetic recursive document: `width` chains, each nesting
/// <a> `depth` deep with a <b> leaf; plus `noise` unrelated siblings.
/// Knobs for the structural-join selectivity sweeps.
inline std::string RecursiveXml(int width, int depth, int noise) {
  std::string xml = "<root>";
  for (int w = 0; w < width; ++w) {
    for (int d = 0; d < depth; ++d) xml += "<a>";
    xml += "<b/>";
    for (int d = 0; d < depth; ++d) xml += "</a>";
    for (int n = 0; n < noise; ++n) xml += "<x/>";
  }
  xml += "</root>";
  return xml;
}

/// The MPMGJN adversary (Al-Khalifa et al., figure 6 shape): one umbrella
/// <a> containing `closed` small closed <a> subtrees followed by `tail`
/// <b> descendants. The merge join rescans every closed <a> for each <b>
/// (its cursor cannot advance past the still-open umbrella), O(closed *
/// tail); the stack join pops each closed <a> exactly once.
inline std::string UmbrellaXml(int closed, int tail) {
  std::string xml = "<root><a>";
  for (int i = 0; i < closed; ++i) xml += "<a><x/></a>";
  for (int i = 0; i < tail; ++i) xml += "<b/>";
  xml += "</a></root>";
  return xml;
}

}  // namespace bench
}  // namespace xqp

#endif  // XQP_BENCH_BENCH_UTIL_H_
