#ifndef XQP_BENCH_BENCH_UTIL_H_
#define XQP_BENCH_BENCH_UTIL_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "base/metrics.h"
#include "engine.h"
#include "xmark/generator.h"

namespace xqp {
namespace bench {

/// Scale arguments are passed to benchmarks as integer permille of XMark
/// scale 1.0 (e.g. Arg(50) = scale 0.05).
inline double ScaleFromArg(int64_t arg) { return static_cast<double>(arg) / 1000.0; }

/// Cached XMark XML text per scale (generation is deterministic). The
/// mutex makes the lazy cache safe for multi-threaded benchmarks; map
/// entries are never erased, so returned references stay valid after the
/// lock is released. The one-time generation cost is recorded into the
/// metrics registry ("bench.xmark.generate_ns") instead of silently
/// landing inside whichever benchmark iteration faulted the cache in.
inline const std::string& XMarkXml(double scale) {
  static auto* mu = new std::mutex();
  static auto* cache = new std::map<double, std::string>();
  std::lock_guard<std::mutex> lock(*mu);
  auto it = cache->find(scale);
  if (it == cache->end()) {
    metrics::ScopedTimer timer(
        metrics::MetricsRegistry::Global().histogram("bench.xmark.generate_ns"));
    XMarkOptions options;
    options.scale = scale;
    it = cache->emplace(scale, GenerateXMarkXml(options)).first;
  }
  return it->second;
}

/// Cached parsed XMark document per scale (same locking discipline; the
/// one-time parse cost is recorded as "bench.xmark.parse_ns").
inline std::shared_ptr<const Document> XMarkDoc(double scale) {
  static auto* mu = new std::mutex();
  static auto* cache =
      new std::map<double, std::shared_ptr<const Document>>();
  const std::string& xml = XMarkXml(scale);
  std::lock_guard<std::mutex> lock(*mu);
  auto it = cache->find(scale);
  if (it == cache->end()) {
    metrics::ScopedTimer timer(
        metrics::MetricsRegistry::Global().histogram("bench.xmark.parse_ns"));
    auto doc = Document::Parse(xml);
    it = cache->emplace(scale, std::move(doc).ValueOrDie()).first;
  }
  return it->second;
}

/// An engine with the XMark document registered as "xmark.xml".
inline std::unique_ptr<XQueryEngine> MakeXMarkEngine(double scale) {
  auto engine = std::make_unique<XQueryEngine>();
  Status st = engine->RegisterDocument("xmark.xml", XMarkDoc(scale));
  if (!st.ok()) std::abort();
  return engine;
}

/// Compiles or dies (benchmark setup).
inline std::unique_ptr<CompiledQuery> MustCompile(
    XQueryEngine* engine, const std::string& query,
    const XQueryEngine::CompileOptions& options = {}) {
  auto compiled = engine->Compile(query, options);
  if (!compiled.ok()) {
    std::fprintf(stderr, "compile failed: %s\n  %s\n",
                 compiled.status().ToString().c_str(), query.c_str());
    std::abort();
  }
  return std::move(compiled).value();
}

/// Builds a synthetic recursive document: `width` chains, each nesting
/// <a> `depth` deep with a <b> leaf; plus `noise` unrelated siblings.
/// Knobs for the structural-join selectivity sweeps.
inline std::string RecursiveXml(int width, int depth, int noise) {
  std::string xml = "<root>";
  for (int w = 0; w < width; ++w) {
    for (int d = 0; d < depth; ++d) xml += "<a>";
    xml += "<b/>";
    for (int d = 0; d < depth; ++d) xml += "</a>";
    for (int n = 0; n < noise; ++n) xml += "<x/>";
  }
  xml += "</root>";
  return xml;
}

/// The MPMGJN adversary (Al-Khalifa et al., figure 6 shape): one umbrella
/// <a> containing `closed` small closed <a> subtrees followed by `tail`
/// <b> descendants. The merge join rescans every closed <a> for each <b>
/// (its cursor cannot advance past the still-open umbrella), O(closed *
/// tail); the stack join pops each closed <a> exactly once.
inline std::string UmbrellaXml(int closed, int tail) {
  std::string xml = "<root><a>";
  for (int i = 0; i < closed; ++i) xml += "<a><x/></a>";
  for (int i = 0; i < tail; ++i) xml += "<b/>";
  xml += "</a></root>";
  return xml;
}

}  // namespace bench
}  // namespace xqp

#endif  // XQP_BENCH_BENCH_UTIL_H_
