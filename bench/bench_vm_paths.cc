// E21 — compiled path navigation in the bytecode VM vs the lazy engine
// on XMark path shapes: pure child chains (kNavStep), descendant scans,
// predicate chains answered by the value index (kIndexProbe), joinable
// chains under the full strategy dispatch (kAccessExec), and the E18
// aggregate now that its path domain compiles. Every shape runs on both
// backends from one CompiledQuery, so the sweep doubles as a
// parity-or-better check for the VM lowering.
//
//   bench_vm_paths                # human-readable
//   bench_vm_paths --json         # emit BENCH_vm_paths.json (CI lane)
//
// Arg(n): XMark permille scale.

#include <benchmark/benchmark.h>

#include <string>

#include "bench/bench_util.h"
#include "engine.h"

namespace xqp {
namespace {

using bench::MakeXMarkEngine;
using bench::MustCompile;
using bench::ScaleFromArg;

void RunPathShape(benchmark::State& state, const std::string& query,
                  ExecBackend backend) {
  auto engine = MakeXMarkEngine(ScaleFromArg(state.range(0)));
  auto compiled = MustCompile(engine.get(), query);
  CompiledQuery::ExecOptions exec;
  exec.backend = backend;
  // Warm the document indexes outside the timed region (both backends
  // probe the same engine-level cache).
  {
    auto warm = compiled->Execute(exec);
    if (!warm.ok()) state.SkipWithError(warm.status().ToString().c_str());
  }
  size_t items = 0;
  for (auto _ : state) {
    auto result = compiled->Execute(exec);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    items = result.value().size();
    benchmark::DoNotOptimize(result.value());
  }
  state.counters["items"] = static_cast<double>(items);
}

/// Pure child chain — every level is a kNavStep (or an index answer).
const char kChildChain[] = "doc('xmark.xml')/site/people/person/name";

/// Descendant scan with an aggregate shell.
const char kDescendantScan[] = "count(doc('xmark.xml')//keyword)";

/// Point predicate on an attribute — the kIndexProbe fast path.
const char kPointProbe[] =
    "doc('xmark.xml')/site/people/person[@id = 'person0']/name";

/// Value predicate over element content.
const char kValuePredicate[] =
    "count(doc('xmark.xml')//item[quantity = 1])";

/// The E18 aggregate: path domain + heavy per-tuple arithmetic, now
/// bailout-free end to end.
const char kAggregate[] =
    "sum(for $q in doc('xmark.xml')//quantity, $i in 1 to 60 "
    "return $q * $i + ($q idiv 2) - ($i mod 7))";

#define XQP_PATH_SHAPE(name, query)                       \
  void BM_##name##_Vm(benchmark::State& state) {          \
    RunPathShape(state, query, ExecBackend::kVm);         \
  }                                                       \
  void BM_##name##_Lazy(benchmark::State& state) {        \
    RunPathShape(state, query, ExecBackend::kLazy);       \
  }                                                       \
  BENCHMARK(BM_##name##_Vm)->Arg(20);                     \
  BENCHMARK(BM_##name##_Lazy)->Arg(20)

XQP_PATH_SHAPE(ChildChain, kChildChain);
XQP_PATH_SHAPE(DescendantScan, kDescendantScan);
XQP_PATH_SHAPE(PointProbe, kPointProbe);
XQP_PATH_SHAPE(ValuePredicate, kValuePredicate);
XQP_PATH_SHAPE(Aggregate, kAggregate);

#undef XQP_PATH_SHAPE

}  // namespace
}  // namespace xqp

XQP_BENCH_JSON_MAIN("BENCH_vm_paths.json")
