// Experiment E19 — cost-based access-path selection: the same descendant
// query executed with each strategy forced (index answer vs binary
// structural join) and with the selector left in automatic mode, swept
// over path diversity D. The corpus holds D distinct rooted label paths
// p0..p{D-1}, each containing the same total number of <k> leaves, so the
// answer cardinality is constant across the sweep while the index
// strategy's merge frontier grows with D: at D=1 the direct index answer
// is one pre-sorted posting list (it should win), at large D it pays an
// N log N merge across D synopsis nodes while the structural join streams
// one cached per-tag list (it should win). The `auto` lane should track
// whichever forced lane is cheaper at both ends — that crossover is the
// point of the cost model (src/opt/cost.cc).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace xqp {
namespace {

// Total <k> leaves across all paths; per-path count is kLeaves / D.
constexpr int kLeaves = 4096;

/// D distinct parent tags, each holding kLeaves/D <k> children:
/// <r><p0><k>v</k>...</p0><p1>...</p1>...</r>
std::string DiversityXml(int diversity) {
  int per_path = kLeaves / diversity;
  std::string xml = "<r>";
  for (int d = 0; d < diversity; ++d) {
    std::string tag = "p" + std::to_string(d);
    xml += "<" + tag + ">";
    for (int i = 0; i < per_path; ++i) xml += "<k>v</k>";
    xml += "</" + tag + ">";
  }
  xml += "</r>";
  return xml;
}

std::unique_ptr<XQueryEngine> MakeEngine(int diversity, AccessPath force) {
  EngineOptions options;
  options.force_access_path = force;
  auto engine = std::make_unique<XQueryEngine>(options);
  auto doc = engine->ParseAndRegister("div.xml", DiversityXml(diversity));
  if (!doc.ok()) std::abort();
  return engine;
}

void RunForcedLoop(benchmark::State& state, AccessPath force) {
  int diversity = static_cast<int>(state.range(0));
  auto engine = MakeEngine(diversity, force);
  auto compiled = bench::MustCompile(engine.get(), "doc('div.xml')//k");
  // Warm index / tag-index caches outside the timed region: E19 measures
  // the steady-state strategy cost, not the one-time build.
  size_t items = compiled->Execute().ValueOrDie().size();
  if (items != kLeaves) {
    state.SkipWithError("unexpected cardinality");
    return;
  }
  for (auto _ : state) {
    auto result = compiled->Execute();
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result);
  }
  state.counters["items"] = static_cast<double>(items);
  state.counters["diversity"] = static_cast<double>(diversity);
}

void BM_AutoExecute(benchmark::State& state) {
  RunForcedLoop(state, AccessPath::kAuto);
}
BENCHMARK(BM_AutoExecute)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_ForcedIndex(benchmark::State& state) {
  RunForcedLoop(state, AccessPath::kIndex);
}
BENCHMARK(BM_ForcedIndex)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_ForcedSJoin(benchmark::State& state) {
  RunForcedLoop(state, AccessPath::kSJoin);
}
BENCHMARK(BM_ForcedSJoin)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_ForcedTwig(benchmark::State& state) {
  // //k is a one-step chain, below the twig executor's two-element
  // minimum, so the forced-twig lane measures the graceful degradation to
  // navigation that the differential suite relies on.
  RunForcedLoop(state, AccessPath::kTwig);
}
BENCHMARK(BM_ForcedTwig)->Arg(1)->Arg(64);

/// Compile-time cost of the selector itself (annotation + costing against
/// warm indexes); should stay trivially small next to execution.
void BM_ChooseOverhead(benchmark::State& state) {
  int diversity = static_cast<int>(state.range(0));
  auto engine = MakeEngine(diversity, AccessPath::kAuto);
  if (!engine->GetDocumentIndexes("div.xml").ok()) {
    state.SkipWithError("index build failed");
    return;
  }
  for (auto _ : state) {
    auto compiled = engine->Compile("doc('div.xml')//k");
    if (!compiled.ok()) state.SkipWithError("compile failed");
    benchmark::DoNotOptimize(compiled);
  }
}
BENCHMARK(BM_ChooseOverhead)->Arg(1)->Arg(256);

}  // namespace
}  // namespace xqp

XQP_BENCH_JSON_MAIN("BENCH_planner.json")
