// Experiment E9 — "generate node ids only if really needed": decoupling
// node construction from node-id generation. A transform whose result goes
// straight to serialization can skip building identified node tables; one
// that re-queries its output cannot.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "tokens/token_iterator.h"
#include "tokens/token_stream.h"

namespace xqp {
namespace {

/// Path A (ids): tokens -> DocumentSink (node table, identities) -> then
/// serialize the built document.
void BM_Transform_WithNodeIds(benchmark::State& state) {
  auto doc = bench::XMarkDoc(bench::ScaleFromArg(state.range(0)));
  for (auto _ : state) {
    DocumentTokenIterator it(doc);
    DocumentSink sink;
    (void)it.Open();
    Status st = PumpTokens(&it, &sink);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    auto copy = sink.Finish();
    std::string out;
    st = SerializeNode(Node(copy.value(), 0), SerializeOptions{}, &out);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    benchmark::DoNotOptimize(out);
    state.counters["out_bytes"] = static_cast<double>(out.size());
  }
}
BENCHMARK(BM_Transform_WithNodeIds)->Arg(50)->Arg(200);

/// Path B (no ids): tokens -> XmlTextSink directly. No node table, no
/// identities, no intermediate materialization.
void BM_Transform_Streaming(benchmark::State& state) {
  auto doc = bench::XMarkDoc(bench::ScaleFromArg(state.range(0)));
  for (auto _ : state) {
    DocumentTokenIterator it(doc);
    std::string out;
    XmlTextSink sink(&out);
    (void)it.Open();
    Status st = PumpTokens(&it, &sink);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    benchmark::DoNotOptimize(out);
    state.counters["out_bytes"] = static_cast<double>(out.size());
  }
}
BENCHMARK(BM_Transform_Streaming)->Arg(50)->Arg(200);

/// TokenStream construction with and without id stamping.
void BM_TokenStream_WithIds(benchmark::State& state) {
  auto doc = bench::XMarkDoc(bench::ScaleFromArg(state.range(0)));
  for (auto _ : state) {
    TokenStreamOptions options;
    options.with_node_ids = true;
    TokenStream ts = TokenStream::FromDocument(*doc, options);
    benchmark::DoNotOptimize(ts);
    state.counters["bytes"] = static_cast<double>(ts.MemoryUsage());
  }
}
BENCHMARK(BM_TokenStream_WithIds)->Arg(50)->Arg(200);

void BM_TokenStream_WithoutIds(benchmark::State& state) {
  auto doc = bench::XMarkDoc(bench::ScaleFromArg(state.range(0)));
  for (auto _ : state) {
    TokenStreamOptions options;
    options.with_node_ids = false;
    TokenStream ts = TokenStream::FromDocument(*doc, options);
    benchmark::DoNotOptimize(ts);
    state.counters["bytes"] = static_cast<double>(ts.MemoryUsage());
  }
}
BENCHMARK(BM_TokenStream_WithoutIds)->Arg(50)->Arg(200);

/// End-to-end query whose result is serialized: constructing result
/// elements (which builds identified documents) vs. emitting the source
/// values directly. Quantifies what constructor materialization costs.
void BM_Query_ConstructingResult(benchmark::State& state) {
  auto engine = bench::MakeXMarkEngine(0.1);
  auto compiled = bench::MustCompile(
      engine.get(),
      "for $p in doc('xmark.xml')/site/people/person "
      "return <person name=\"{string($p/name)}\"/>");
  for (auto _ : state) {
    auto out = compiled->ExecuteToXml();
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_Query_ConstructingResult);

void BM_Query_ValuesOnly(benchmark::State& state) {
  auto engine = bench::MakeXMarkEngine(0.1);
  auto compiled = bench::MustCompile(
      engine.get(),
      "for $p in doc('xmark.xml')/site/people/person "
      "return string($p/name)");
  for (auto _ : state) {
    auto out = compiled->ExecuteToXml();
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_Query_ValuesOnly);

}  // namespace
}  // namespace xqp

XQP_BENCH_JSON_MAIN("BENCH_nodeid.json")
