// Experiment E3 — XML storage modes (paper: "Possible XML Storage Modes"):
// plain text vs. tree/node-table vs. token array. We measure build time and
// bytes-per-node for each representation over XMark data.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "tokens/token_iterator.h"
#include "tokens/token_stream.h"

namespace xqp {
namespace {

void BM_Build_NodeTable(benchmark::State& state) {
  const std::string& xml = bench::XMarkXml(bench::ScaleFromArg(state.range(0)));
  size_t nodes = 0;
  size_t bytes = 0;
  for (auto _ : state) {
    auto doc = Document::Parse(xml);
    nodes = doc.value()->NumNodes();
    bytes = doc.value()->MemoryUsage();
    benchmark::DoNotOptimize(doc);
  }
  state.counters["nodes"] = static_cast<double>(nodes);
  state.counters["bytes_per_node"] =
      static_cast<double>(bytes) / static_cast<double>(nodes);
  state.counters["xml_bytes"] = static_cast<double>(xml.size());
  state.SetBytesProcessed(static_cast<int64_t>(xml.size()) *
                          state.iterations());
}
BENCHMARK(BM_Build_NodeTable)->Arg(50)->Arg(200);

void BM_Build_TokenStream(benchmark::State& state) {
  const std::string& xml = bench::XMarkXml(bench::ScaleFromArg(state.range(0)));
  size_t tokens = 0;
  size_t bytes = 0;
  for (auto _ : state) {
    auto ts = TokenStream::FromXml(xml);
    tokens = ts.value().size();
    bytes = ts.value().MemoryUsage();
    benchmark::DoNotOptimize(ts);
  }
  state.counters["tokens"] = static_cast<double>(tokens);
  state.counters["bytes_per_token"] =
      static_cast<double>(bytes) / static_cast<double>(tokens);
  state.counters["xml_bytes"] = static_cast<double>(xml.size());
  state.SetBytesProcessed(static_cast<int64_t>(xml.size()) *
                          state.iterations());
}
BENCHMARK(BM_Build_TokenStream)->Arg(50)->Arg(200);

/// Plain text "storage" is free to build but must re-parse on every use
/// (paper: "need to re-parse all the time; not an option for XQuery
/// processing"). This measures one forced re-parse per access.
void BM_Access_PlainText_Reparse(benchmark::State& state) {
  const std::string& xml = bench::XMarkXml(bench::ScaleFromArg(state.range(0)));
  for (auto _ : state) {
    // Access = count all <item> elements, which requires a parse.
    ParserTokenIterator it(xml);
    (void)it.Open();
    int64_t items = 0;
    while (true) {
      auto t = it.Next();
      if (!t.ok() || t.value() == nullptr) break;
      if (t.value()->kind == TokenKind::kStartElement &&
          it.name(*t.value()).local == "item") {
        ++items;
      }
    }
    benchmark::DoNotOptimize(items);
  }
}
BENCHMARK(BM_Access_PlainText_Reparse)->Arg(50)->Arg(200);

void BM_Access_NodeTable(benchmark::State& state) {
  auto doc = bench::XMarkDoc(bench::ScaleFromArg(state.range(0)));
  uint32_t name_id = doc->FindNameId("", "item");
  for (auto _ : state) {
    int64_t items = 0;
    for (NodeIndex i = 0; i < doc->NumNodes(); ++i) {
      const NodeRecord& n = doc->node(i);
      if (n.kind == NodeKind::kElement && n.name_id == name_id) ++items;
    }
    benchmark::DoNotOptimize(items);
  }
}
BENCHMARK(BM_Access_NodeTable)->Arg(50)->Arg(200);

void BM_Access_TokenStream(benchmark::State& state) {
  const std::string& xml = bench::XMarkXml(bench::ScaleFromArg(state.range(0)));
  TokenStream ts = std::move(TokenStream::FromXml(xml)).ValueOrDie();
  for (auto _ : state) {
    StreamTokenIterator it(&ts);
    (void)it.Open();
    int64_t items = 0;
    while (true) {
      auto t = it.Next();
      if (!t.ok() || t.value() == nullptr) break;
      if (t.value()->kind == TokenKind::kStartElement &&
          it.name(*t.value()).local == "item") {
        ++items;
      }
    }
    benchmark::DoNotOptimize(items);
  }
}
BENCHMARK(BM_Access_TokenStream)->Arg(50)->Arg(200);

/// Memory-footprint summary row (single iteration, counters only).
void BM_MemoryFootprint(benchmark::State& state) {
  double scale = bench::ScaleFromArg(state.range(0));
  const std::string& xml = bench::XMarkXml(scale);
  auto doc = Document::Parse(xml).value();
  TokenStream ts = TokenStream::FromDocument(*doc);
  TokenStreamOptions no_ids;
  no_ids.with_node_ids = false;
  TokenStream ts_no_ids = TokenStream::FromDocument(*doc, no_ids);
  for (auto _ : state) {
    benchmark::DoNotOptimize(doc);
  }
  state.counters["text_bytes"] = static_cast<double>(xml.size());
  state.counters["node_table_bytes"] = static_cast<double>(doc->MemoryUsage());
  state.counters["token_stream_bytes"] =
      static_cast<double>(ts.MemoryUsage());
  state.counters["token_stream_noid_bytes"] =
      static_cast<double>(ts_no_ids.MemoryUsage());
}
BENCHMARK(BM_MemoryFootprint)->Arg(50)->Arg(200);

}  // namespace
}  // namespace xqp

XQP_BENCH_JSON_MAIN("BENCH_storage.json")
