// Experiment E3 — XML storage modes (paper: "Possible XML Storage Modes"):
// plain text vs. tree/node-table vs. token array. We measure build time and
// bytes-per-node for each representation over XMark data.
//
// Experiment E20 — persistent snapshots: cold-start cost of mmap-opening a
// saved snapshot (document + indexes, full validation) vs. re-parsing the
// XML and rebuilding the indexes from scratch. The ratio is the payoff of
// the storage subsystem's O(1) reopen path.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <sys/stat.h>

#include "bench/bench_util.h"
#include "index/document_indexes.h"
#include "storage/snapshot.h"
#include "tokens/token_iterator.h"
#include "tokens/token_stream.h"

namespace xqp {
namespace {

void BM_Build_NodeTable(benchmark::State& state) {
  const std::string& xml = bench::XMarkXml(bench::ScaleFromArg(state.range(0)));
  size_t nodes = 0;
  size_t bytes = 0;
  for (auto _ : state) {
    auto doc = Document::Parse(xml);
    nodes = doc.value()->NumNodes();
    bytes = doc.value()->MemoryUsage();
    benchmark::DoNotOptimize(doc);
  }
  state.counters["nodes"] = static_cast<double>(nodes);
  state.counters["bytes_per_node"] =
      static_cast<double>(bytes) / static_cast<double>(nodes);
  state.counters["xml_bytes"] = static_cast<double>(xml.size());
  state.SetBytesProcessed(static_cast<int64_t>(xml.size()) *
                          state.iterations());
}
BENCHMARK(BM_Build_NodeTable)->Arg(50)->Arg(200);

void BM_Build_TokenStream(benchmark::State& state) {
  const std::string& xml = bench::XMarkXml(bench::ScaleFromArg(state.range(0)));
  size_t tokens = 0;
  size_t bytes = 0;
  for (auto _ : state) {
    auto ts = TokenStream::FromXml(xml);
    tokens = ts.value().size();
    bytes = ts.value().MemoryUsage();
    benchmark::DoNotOptimize(ts);
  }
  state.counters["tokens"] = static_cast<double>(tokens);
  state.counters["bytes_per_token"] =
      static_cast<double>(bytes) / static_cast<double>(tokens);
  state.counters["xml_bytes"] = static_cast<double>(xml.size());
  state.SetBytesProcessed(static_cast<int64_t>(xml.size()) *
                          state.iterations());
}
BENCHMARK(BM_Build_TokenStream)->Arg(50)->Arg(200);

/// Plain text "storage" is free to build but must re-parse on every use
/// (paper: "need to re-parse all the time; not an option for XQuery
/// processing"). This measures one forced re-parse per access.
void BM_Access_PlainText_Reparse(benchmark::State& state) {
  const std::string& xml = bench::XMarkXml(bench::ScaleFromArg(state.range(0)));
  for (auto _ : state) {
    // Access = count all <item> elements, which requires a parse.
    ParserTokenIterator it(xml);
    (void)it.Open();
    int64_t items = 0;
    while (true) {
      auto t = it.Next();
      if (!t.ok() || t.value() == nullptr) break;
      if (t.value()->kind == TokenKind::kStartElement &&
          it.name(*t.value()).local == "item") {
        ++items;
      }
    }
    benchmark::DoNotOptimize(items);
  }
}
BENCHMARK(BM_Access_PlainText_Reparse)->Arg(50)->Arg(200);

void BM_Access_NodeTable(benchmark::State& state) {
  auto doc = bench::XMarkDoc(bench::ScaleFromArg(state.range(0)));
  uint32_t name_id = doc->FindNameId("", "item");
  for (auto _ : state) {
    int64_t items = 0;
    for (NodeIndex i = 0; i < doc->NumNodes(); ++i) {
      const NodeRecord& n = doc->node(i);
      if (n.kind == NodeKind::kElement && n.name_id == name_id) ++items;
    }
    benchmark::DoNotOptimize(items);
  }
}
BENCHMARK(BM_Access_NodeTable)->Arg(50)->Arg(200);

void BM_Access_TokenStream(benchmark::State& state) {
  const std::string& xml = bench::XMarkXml(bench::ScaleFromArg(state.range(0)));
  TokenStream ts = std::move(TokenStream::FromXml(xml)).ValueOrDie();
  for (auto _ : state) {
    StreamTokenIterator it(&ts);
    (void)it.Open();
    int64_t items = 0;
    while (true) {
      auto t = it.Next();
      if (!t.ok() || t.value() == nullptr) break;
      if (t.value()->kind == TokenKind::kStartElement &&
          it.name(*t.value()).local == "item") {
        ++items;
      }
    }
    benchmark::DoNotOptimize(items);
  }
}
BENCHMARK(BM_Access_TokenStream)->Arg(50)->Arg(200);

/// Memory-footprint summary row (single iteration, counters only).
void BM_MemoryFootprint(benchmark::State& state) {
  double scale = bench::ScaleFromArg(state.range(0));
  const std::string& xml = bench::XMarkXml(scale);
  auto doc = Document::Parse(xml).value();
  TokenStream ts = TokenStream::FromDocument(*doc);
  TokenStreamOptions no_ids;
  no_ids.with_node_ids = false;
  TokenStream ts_no_ids = TokenStream::FromDocument(*doc, no_ids);
  for (auto _ : state) {
    benchmark::DoNotOptimize(doc);
  }
  state.counters["text_bytes"] = static_cast<double>(xml.size());
  state.counters["node_table_bytes"] = static_cast<double>(doc->MemoryUsage());
  state.counters["token_stream_bytes"] =
      static_cast<double>(ts.MemoryUsage());
  state.counters["token_stream_noid_bytes"] =
      static_cast<double>(ts_no_ids.MemoryUsage());
}
BENCHMARK(BM_MemoryFootprint)->Arg(50)->Arg(200);

// --- E20: persistent-snapshot cold start ------------------------------------

/// A saved snapshot (document + path/value indexes) for the given scale,
/// written once per process into the working directory.
const std::string& SnapshotPath(double scale) {
  static auto* cache = new std::map<double, std::string>();
  auto it = cache->find(scale);
  if (it == cache->end()) {
    std::string path =
        "bench_snapshot_" + std::to_string(int(scale * 1000)) + ".xqps";
    auto doc = bench::XMarkDoc(scale);
    auto indexes = DocumentIndexes::Build(doc, kIndexValueAll).ValueOrDie();
    storage::SnapshotInput input;
    input.doc = doc.get();
    input.indexes = indexes.get();
    Status st = storage::WriteSnapshotFile(path, input);
    if (!st.ok()) std::abort();
    it = cache->emplace(scale, std::move(path)).first;
  }
  return it->second;
}

/// Cold start via storage: mmap + full validation (header, section CRCs,
/// node-table replay, index adoption). No parse, no index build.
void BM_ColdStart_SnapshotOpen(benchmark::State& state) {
  double scale = bench::ScaleFromArg(state.range(0));
  const std::string& path = SnapshotPath(scale);
  uint64_t bytes = 0;
  for (auto _ : state) {
    auto loaded = storage::OpenSnapshot(path);
    if (!loaded.ok()) std::abort();
    bytes = loaded.value().mapped_bytes;
    benchmark::DoNotOptimize(loaded.value().document->NumNodes());
  }
  state.counters["snapshot_bytes"] = static_cast<double>(bytes);
  state.SetBytesProcessed(static_cast<int64_t>(bytes) * state.iterations());
}
BENCHMARK(BM_ColdStart_SnapshotOpen)->Arg(50)->Arg(200);

/// The path the snapshot replaces: parse the XML text and rebuild both
/// index families.
void BM_ColdStart_ReparseReindex(benchmark::State& state) {
  double scale = bench::ScaleFromArg(state.range(0));
  const std::string& xml = bench::XMarkXml(scale);
  for (auto _ : state) {
    auto doc = Document::Parse(xml);
    if (!doc.ok()) std::abort();
    auto indexes = DocumentIndexes::Build(
        std::shared_ptr<const Document>(std::move(doc.value())),
        kIndexValueAll);
    if (!indexes.ok()) std::abort();
    benchmark::DoNotOptimize(indexes.value()->NumSynopsisNodes());
  }
  state.counters["xml_bytes"] = static_cast<double>(xml.size());
  state.SetBytesProcessed(static_cast<int64_t>(xml.size()) *
                          state.iterations());
}
BENCHMARK(BM_ColdStart_ReparseReindex)->Arg(50)->Arg(200);

/// End-to-end engine cold start with a warm snapshot directory: the
/// ParseAndRegister fast path (hash check + mmap + adoption).
void BM_ColdStart_EngineWithSnapshotDir(benchmark::State& state) {
  double scale = bench::ScaleFromArg(state.range(0));
  const std::string& xml = bench::XMarkXml(scale);
  std::string dir = "bench_snapdir";
  ::mkdir(dir.c_str(), 0755);
  EngineOptions options;
  options.snapshot_dir = dir;
  {
    XQueryEngine warmup(options);  // First ingest saves the snapshot.
    if (!warmup.ParseAndRegister("xmark.xml", xml).ok()) std::abort();
  }
  for (auto _ : state) {
    XQueryEngine engine(options);
    auto doc = engine.ParseAndRegister("xmark.xml", xml);
    if (!doc.ok()) std::abort();
    benchmark::DoNotOptimize(doc.value()->NumNodes());
  }
  state.SetBytesProcessed(static_cast<int64_t>(xml.size()) *
                          state.iterations());
}
BENCHMARK(BM_ColdStart_EngineWithSnapshotDir)->Arg(50)->Arg(200);

}  // namespace
}  // namespace xqp

XQP_BENCH_JSON_MAIN("BENCH_storage.json")
