// Experiment E8 — the end-to-end XMark query suite: optimized lazy engine
// (the paper's XQRL/BEA configuration) vs. the unoptimized eager
// interpreter (the materializing, XSLT-processor-like baseline the paper
// compares against).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "xmark/queries.h"

namespace xqp {
namespace {

void RunXMarkQuery(benchmark::State& state, bool lazy, bool optimize) {
  double scale = bench::ScaleFromArg(state.range(0));
  int query_index = static_cast<int>(state.range(1));
  const XMarkQuery& q = XMarkQuerySet()[query_index];
  auto engine = bench::MakeXMarkEngine(scale);
  XQueryEngine::CompileOptions copts;
  copts.optimize = optimize;
  auto compiled = bench::MustCompile(engine.get(), q.text, copts);
  CompiledQuery::ExecOptions eopts;
  eopts.use_lazy_engine = lazy;
  size_t items = 0;
  for (auto _ : state) {
    auto result = compiled->Execute(eopts);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    items = result.ok() ? result.value().size() : 0;
    benchmark::DoNotOptimize(result);
  }
  state.counters["items"] = static_cast<double>(items);
  state.SetLabel(q.id);
}

void BM_XMark_OptimizedLazy(benchmark::State& state) {
  RunXMarkQuery(state, /*lazy=*/true, /*optimize=*/true);
}

void BM_XMark_BaselineEager(benchmark::State& state) {
  RunXMarkQuery(state, /*lazy=*/false, /*optimize=*/false);
}

void RegisterAll() {
  // Q8/Q9/Q11/Q12 are quadratic joins; bench them at the small scale only.
  for (int q = 0; q < 20; ++q) {
    bool heavy = q == 7 || q == 8 || q == 10 || q == 11;
    long scale = heavy ? 20 : 50;
    benchmark::RegisterBenchmark("BM_XMark_OptimizedLazy",
                                 &BM_XMark_OptimizedLazy)
        ->Args({scale, q});
    benchmark::RegisterBenchmark("BM_XMark_BaselineEager",
                                 &BM_XMark_BaselineEager)
        ->Args({scale, q});
  }
}

}  // namespace
}  // namespace xqp

int main(int argc, char** argv) {
  xqp::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
