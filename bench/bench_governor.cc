// Experiment E15 — resource-governor overhead. Every execution now runs
// under a ResourceGovernor: iterator loops that can do unbounded work per
// delivered item poll it, and allocation points charge its byte account.
// The design claim is that with no limits configured this costs only
// relaxed atomic traffic — within run-to-run noise of the pre-governor
// engine. Measured configurations:
//
//   NoLimits     — default QueryLimits: polls check a null token and skip
//                  the clock; charges maintain counts nobody reads (the
//                  production path; must be within noise of PR-2)
//   CancelToken  — an (uncancelled) token attached: each poll adds one
//                  relaxed load of the shared flag
//   FullLimits   — deadline + generous memory/result budgets: polls take
//                  the amortized clock path, charges compare against caps
//
// NoLimits vs CancelToken isolates token checking; CancelToken vs
// FullLimits isolates deadline/budget accounting. Run on the E1 streaming
// path, the E6 twig query, and a FLWOR whose tuple loop polls per tuple.

#include <benchmark/benchmark.h>

#include "base/limits.h"
#include "bench/bench_util.h"

namespace xqp {
namespace {

constexpr const char* kPathQuery =
    "doc('xmark.xml')/site/open_auctions/open_auction/bidder/increase";
constexpr const char* kTwigQuery =
    "doc('xmark.xml')//item[mailbox//date]//keyword";
constexpr const char* kFlworQuery =
    "for $a in doc('xmark.xml')//open_auction "
    "where $a/bidder/increase > 10 return $a/reserve";

const char* QueryFor(int which) {
  switch (which) {
    case 0: return kPathQuery;
    case 1: return kTwigQuery;
    default: return kFlworQuery;
  }
}
const char* LabelFor(int which) {
  switch (which) {
    case 0: return "E1-path";
    case 1: return "E6-twig";
    default: return "flwor";
  }
}

void RunGoverned(benchmark::State& state, const QueryLimits& limits) {
  auto engine = bench::MakeXMarkEngine(bench::ScaleFromArg(state.range(0)));
  auto query = bench::MustCompile(engine.get(), QueryFor(state.range(1)));
  CompiledQuery::ExecOptions options;
  options.limits = limits;
  size_t items = 0;
  for (auto _ : state) {
    auto result = query->Execute(options);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    items = result.ok() ? result.value().size() : 0;
    benchmark::DoNotOptimize(result);
  }
  state.counters["items"] = static_cast<double>(items);
  state.SetLabel(LabelFor(state.range(1)));
}

void BM_Governor_NoLimits(benchmark::State& state) {
  RunGoverned(state, QueryLimits{});
}
BENCHMARK(BM_Governor_NoLimits)
    ->Args({20, 0})->Args({20, 1})->Args({20, 2})
    ->Args({100, 0})->Args({100, 1})->Args({100, 2});

void BM_Governor_CancelToken(benchmark::State& state) {
  QueryLimits limits;
  limits.cancel = std::make_shared<CancelToken>();  // Never cancelled.
  RunGoverned(state, limits);
}
BENCHMARK(BM_Governor_CancelToken)
    ->Args({20, 0})->Args({20, 1})->Args({20, 2})
    ->Args({100, 0})->Args({100, 1})->Args({100, 2});

void BM_Governor_FullLimits(benchmark::State& state) {
  QueryLimits limits;
  limits.cancel = std::make_shared<CancelToken>();
  limits.timeout = std::chrono::milliseconds(60000);
  limits.memory_budget_bytes = 8ULL << 30;  // Generous: never trips.
  limits.max_result_items = 1ULL << 40;
  RunGoverned(state, limits);
}
BENCHMARK(BM_Governor_FullLimits)
    ->Args({20, 0})->Args({20, 1})->Args({20, 2})
    ->Args({100, 0})->Args({100, 1})->Args({100, 2});

}  // namespace
}  // namespace xqp

XQP_BENCH_JSON_MAIN("BENCH_governor.json")
