// Experiment E1 — streaming vs. materialized execution.
// Paper claims (technical-requirements slide): start computation before the
// entire input is consumed; minimize time-to-first-answer; minimize memory
// footprint. We compare the lazy streaming iterator engine against the
// eager materializing interpreter on XMark path queries, measuring both
// total time and time-to-first-item.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "exec/iterators.h"
#include "tokens/token_iterator.h"
#include "opt/properties.h"

namespace xqp {
namespace {

constexpr const char* kQuery =
    "doc('xmark.xml')/site/open_auctions/open_auction/bidder/increase";

void BM_TotalTime_Eager(benchmark::State& state) {
  auto engine = bench::MakeXMarkEngine(bench::ScaleFromArg(state.range(0)));
  auto query = bench::MustCompile(engine.get(), kQuery);
  CompiledQuery::ExecOptions options;
  options.use_lazy_engine = false;
  for (auto _ : state) {
    auto result = query->Execute(options);
    benchmark::DoNotOptimize(result);
    state.counters["items"] = static_cast<double>(result.value().size());
  }
}
BENCHMARK(BM_TotalTime_Eager)->Arg(20)->Arg(50)->Arg(100)->Arg(200);

void BM_TotalTime_Lazy(benchmark::State& state) {
  auto engine = bench::MakeXMarkEngine(bench::ScaleFromArg(state.range(0)));
  auto query = bench::MustCompile(engine.get(), kQuery);
  CompiledQuery::ExecOptions options;
  options.use_lazy_engine = true;
  for (auto _ : state) {
    auto result = query->Execute(options);
    benchmark::DoNotOptimize(result);
    state.counters["items"] = static_cast<double>(result.value().size());
  }
}
BENCHMARK(BM_TotalTime_Lazy)->Arg(20)->Arg(50)->Arg(100)->Arg(200);

/// Time to first item: the streaming engine should produce the first result
/// in near-constant time regardless of document size; the eager engine pays
/// for the whole result first.
void BM_FirstItem_Lazy(benchmark::State& state) {
  double scale = bench::ScaleFromArg(state.range(0));
  auto engine = bench::MakeXMarkEngine(scale);
  auto query = bench::MustCompile(engine.get(), kQuery);
  const ParsedModule& module = query->module();
  for (auto _ : state) {
    DynamicContext ctx;
    ctx.module = &module;
    ctx.provider = engine.get();
    ctx.slots.assign(module.num_slots, nullptr);
    auto it = OpenLazy(module.body.get(), &ctx);
    Item item;
    auto got = it.value()->Next(&item);
    benchmark::DoNotOptimize(got);
  }
}
BENCHMARK(BM_FirstItem_Lazy)->Arg(20)->Arg(50)->Arg(100)->Arg(200);

void BM_FirstItem_Eager(benchmark::State& state) {
  auto engine = bench::MakeXMarkEngine(bench::ScaleFromArg(state.range(0)));
  auto query = bench::MustCompile(engine.get(), kQuery);
  CompiledQuery::ExecOptions options;
  options.use_lazy_engine = false;
  for (auto _ : state) {
    // The eager engine cannot yield early: first item costs a full run.
    auto result = query->Execute(options);
    benchmark::DoNotOptimize(result.value().front());
  }
}
BENCHMARK(BM_FirstItem_Eager)->Arg(20)->Arg(50)->Arg(100)->Arg(200);

/// Streaming straight from unparsed text to first output byte: parse ->
/// token iterator -> serialize, stopping after the first matching subtree.
void BM_FirstAnswer_FromText(benchmark::State& state) {
  const std::string& xml = bench::XMarkXml(bench::ScaleFromArg(state.range(0)));
  for (auto _ : state) {
    ParserTokenIterator it(xml);
    (void)it.Open();
    // Scan to the first <increase> begin-element and serialize its subtree.
    std::string out;
    XmlTextSink sink(&out);
    while (true) {
      auto t = it.Next();
      if (!t.ok() || t.value() == nullptr) break;
      if (t.value()->kind == TokenKind::kStartElement &&
          it.name(*t.value()).local == "increase") {
        int depth = 1;
        (void)sink.StartElement(it.name(*t.value()));
        while (depth > 0) {
          auto inner = it.Next();
          if (!inner.ok() || inner.value() == nullptr) break;
          const Token& tok = *inner.value();
          if (tok.kind == TokenKind::kStartElement) {
            ++depth;
            (void)sink.StartElement(it.name(tok));
          } else if (tok.kind == TokenKind::kEndElement) {
            --depth;
            (void)sink.EndElement();
          } else if (tok.kind == TokenKind::kText) {
            (void)sink.Text(it.value(tok));
          }
        }
        break;
      }
    }
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_FirstAnswer_FromText)->Arg(50)->Arg(200);

}  // namespace
}  // namespace xqp

XQP_BENCH_JSON_MAIN("BENCH_streaming.json")
