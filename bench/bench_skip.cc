// Experiment E10 — the skip() granularity remedy (paper: "$x[3]" walkthrough
// and 'special methods (i.e., skip()) to remedy granularity'): positional
// access over a token stream with O(1) subtree skip links vs. token-by-token
// scanning.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "tokens/token_iterator.h"
#include "tokens/token_stream.h"

namespace xqp {
namespace {

/// A wide document: `n` children each with a bulky subtree; the benchmark
/// fetches child k, skipping the first k-1 subtrees.
std::string WideXml(int children, int payload) {
  std::string xml = "<r>";
  for (int i = 0; i < children; ++i) {
    xml += "<row>";
    for (int p = 0; p < payload; ++p) {
      xml += "<cell attr=\"v\">data-" + std::to_string(p) + "</cell>";
    }
    xml += "</row>";
  }
  xml += "</r>";
  return xml;
}

const TokenStream& WideStream() {
  static const TokenStream* stream = [] {
    auto ts = new TokenStream(
        std::move(TokenStream::FromXml(WideXml(2000, 40))).ValueOrDie());
    return ts;
  }();
  return *stream;
}

/// Returns the serialized content of the k-th <row>, using Skip() on the
/// provided iterator to jump over preceding rows.
template <typename Iterator>
int64_t NthRow(Iterator* it, int64_t k) {
  (void)it->Open();
  int64_t seen = 0;
  int64_t cells = 0;
  while (true) {
    auto t = it->Next();
    if (!t.ok() || t.value() == nullptr) break;
    const Token& tok = *t.value();
    if (tok.kind != TokenKind::kStartElement) continue;
    if (it->name(tok).local != "row") continue;
    ++seen;
    if (seen < k) {
      (void)it->Skip();  // Jump the whole subtree.
      continue;
    }
    // Found: consume the subtree, counting cells.
    int depth = 1;
    while (depth > 0) {
      auto inner = it->Next();
      if (!inner.ok() || inner.value() == nullptr) break;
      if (inner.value()->kind == TokenKind::kStartElement) {
        ++depth;
        ++cells;
      }
      if (inner.value()->kind == TokenKind::kEndElement) --depth;
    }
    break;
  }
  return cells;
}

void BM_PositionalAccess_WithSkipLinks(benchmark::State& state) {
  const TokenStream& ts = WideStream();
  int64_t k = state.range(0);
  for (auto _ : state) {
    StreamTokenIterator it(&ts);
    benchmark::DoNotOptimize(NthRow(&it, k));
  }
}
BENCHMARK(BM_PositionalAccess_WithSkipLinks)
    ->Arg(10)->Arg(500)->Arg(1999);

void BM_PositionalAccess_ScanOnly(benchmark::State& state) {
  const TokenStream& ts = WideStream();
  int64_t k = state.range(0);
  for (auto _ : state) {
    ScanOnlyTokenIterator it(&ts);
    benchmark::DoNotOptimize(NthRow(&it, k));
  }
}
BENCHMARK(BM_PositionalAccess_ScanOnly)->Arg(10)->Arg(500)->Arg(1999);

/// The same positional access through the query engine: the lazy engine's
/// constant-positional-predicate early exit is the expression-level analog.
void BM_PositionalAccess_QueryEngine(benchmark::State& state) {
  static XQueryEngine* engine = [] {
    auto* e = new XQueryEngine();
    if (!e->ParseAndRegister("wide.xml", WideXml(2000, 40)).ok()) std::abort();
    return e;
  }();
  auto compiled = bench::MustCompile(
      engine, "count(doc('wide.xml')/r/row[" +
                  std::to_string(state.range(0)) + "]/cell)");
  for (auto _ : state) {
    auto result = compiled->Execute();
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_PositionalAccess_QueryEngine)->Arg(10)->Arg(500)->Arg(1999);

/// Document-table skip (region end labels) for reference.
void BM_PositionalAccess_NodeTable(benchmark::State& state) {
  static std::shared_ptr<const Document>* doc = [] {
    return new std::shared_ptr<const Document>(
        std::move(Document::Parse(WideXml(2000, 40))).ValueOrDie());
  }();
  int64_t k = state.range(0);
  for (auto _ : state) {
    DocumentTokenIterator it(*doc);
    benchmark::DoNotOptimize(NthRow(&it, k));
  }
}
BENCHMARK(BM_PositionalAccess_NodeTable)->Arg(10)->Arg(500)->Arg(1999);

}  // namespace
}  // namespace xqp

XQP_BENCH_JSON_MAIN("BENCH_skip.json")
