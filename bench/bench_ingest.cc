// Experiment E16 — fast-path ingest: the SWAR/zero-copy parser and
// memoized-name builders against the frozen seed implementation
// (tests/reference_parser.h), plus serial-vs-parallel bulk load through
// XQueryEngine::LoadDocumentsParallel. The seed baselines live in the same
// binary so one run yields the before/after ratio on identical inputs.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "tests/reference_parser.h"
#include "tokens/token_stream.h"
#include "xml/document.h"
#include "xml/pull_parser.h"

namespace xqp {
namespace {

// --- Fast path vs frozen seed, identical inputs -------------------------

void BM_Ingest_Events_Fast(benchmark::State& state) {
  const std::string& xml = bench::XMarkXml(bench::ScaleFromArg(state.range(0)));
  for (auto _ : state) {
    XmlPullParser parser(xml, ParseOptions{});
    int64_t events = 0;
    while (true) {
      auto e = parser.Next();
      if (!e.ok() || e.value() == nullptr) break;
      ++events;
    }
    benchmark::DoNotOptimize(events);
  }
  state.SetBytesProcessed(static_cast<int64_t>(xml.size()) *
                          state.iterations());
}
BENCHMARK(BM_Ingest_Events_Fast)->Arg(200);

void BM_Ingest_Events_Seed(benchmark::State& state) {
  const std::string& xml = bench::XMarkXml(bench::ScaleFromArg(state.range(0)));
  for (auto _ : state) {
    reference::RefXmlPullParser parser(xml, ParseOptions{});
    int64_t events = 0;
    while (true) {
      auto e = parser.Next();
      if (!e.ok() || e.value() == nullptr) break;
      ++events;
    }
    benchmark::DoNotOptimize(events);
  }
  state.SetBytesProcessed(static_cast<int64_t>(xml.size()) *
                          state.iterations());
}
BENCHMARK(BM_Ingest_Events_Seed)->Arg(200);

void BM_Ingest_Document_Fast(benchmark::State& state) {
  const std::string& xml = bench::XMarkXml(bench::ScaleFromArg(state.range(0)));
  for (auto _ : state) {
    auto doc = Document::Parse(xml);
    benchmark::DoNotOptimize(doc);
  }
  state.SetBytesProcessed(static_cast<int64_t>(xml.size()) *
                          state.iterations());
}
BENCHMARK(BM_Ingest_Document_Fast)->Arg(200)->Arg(500);

void BM_Ingest_Document_Seed(benchmark::State& state) {
  const std::string& xml = bench::XMarkXml(bench::ScaleFromArg(state.range(0)));
  for (auto _ : state) {
    auto doc = reference::ParseDocument(xml);
    benchmark::DoNotOptimize(doc);
  }
  state.SetBytesProcessed(static_cast<int64_t>(xml.size()) *
                          state.iterations());
}
BENCHMARK(BM_Ingest_Document_Seed)->Arg(200)->Arg(500);

void BM_Ingest_Tokens_Fast(benchmark::State& state) {
  const std::string& xml = bench::XMarkXml(bench::ScaleFromArg(state.range(0)));
  for (auto _ : state) {
    auto ts = TokenStream::FromXml(xml);
    benchmark::DoNotOptimize(ts);
  }
  state.SetBytesProcessed(static_cast<int64_t>(xml.size()) *
                          state.iterations());
}
BENCHMARK(BM_Ingest_Tokens_Fast)->Arg(200);

void BM_Ingest_Tokens_Seed(benchmark::State& state) {
  const std::string& xml = bench::XMarkXml(bench::ScaleFromArg(state.range(0)));
  for (auto _ : state) {
    auto ts = reference::ParseTokenStream(xml);
    benchmark::DoNotOptimize(ts);
  }
  state.SetBytesProcessed(static_cast<int64_t>(xml.size()) *
                          state.iterations());
}
BENCHMARK(BM_Ingest_Tokens_Seed)->Arg(200);

// --- Bulk load: serial loop vs LoadDocumentsParallel --------------------

std::vector<XQueryEngine::BulkDocument> BulkBatch(const std::string& xml,
                                                  std::vector<std::string>* uris,
                                                  int count) {
  uris->clear();
  for (int i = 0; i < count; ++i) {
    uris->push_back("doc" + std::to_string(i) + ".xml");
  }
  std::vector<XQueryEngine::BulkDocument> batch;
  for (int i = 0; i < count; ++i) batch.push_back({(*uris)[i], xml});
  return batch;
}

constexpr int kBulkDocs = 16;

void BM_Ingest_BulkLoad_SerialLoop(benchmark::State& state) {
  const std::string& xml = bench::XMarkXml(bench::ScaleFromArg(state.range(0)));
  for (auto _ : state) {
    XQueryEngine engine;
    for (int i = 0; i < kBulkDocs; ++i) {
      auto doc = Document::Parse(xml);
      Status st = engine.RegisterDocument("doc" + std::to_string(i) + ".xml",
                                          std::move(doc).value());
      if (!st.ok()) state.SkipWithError("register failed");
    }
  }
  state.SetBytesProcessed(static_cast<int64_t>(xml.size()) * kBulkDocs *
                          state.iterations());
}
BENCHMARK(BM_Ingest_BulkLoad_SerialLoop)->Arg(50)->Unit(benchmark::kMillisecond);

void BM_Ingest_BulkLoad_Parallel(benchmark::State& state) {
  const std::string& xml = bench::XMarkXml(bench::ScaleFromArg(state.range(0)));
  EngineOptions options;
  options.num_threads = static_cast<int>(state.range(1));
  std::vector<std::string> uris;
  auto batch = BulkBatch(xml, &uris, kBulkDocs);
  for (auto _ : state) {
    XQueryEngine engine(options);
    auto results = engine.LoadDocumentsParallel(batch);
    for (const auto& r : results) {
      if (!r.ok()) state.SkipWithError("bulk load failed");
    }
    benchmark::DoNotOptimize(results);
  }
  state.SetBytesProcessed(static_cast<int64_t>(xml.size()) * kBulkDocs *
                          state.iterations());
}
BENCHMARK(BM_Ingest_BulkLoad_Parallel)
    ->Args({50, 1})
    ->Args({50, 2})
    ->Args({50, 4})
    ->Args({50, 8})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xqp

XQP_BENCH_JSON_MAIN("BENCH_ingest.json")
