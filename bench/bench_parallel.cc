// Experiment E13 — morsel-driven parallel structural joins and the
// thread-safe engine front door. Each benchmark compares the serial
// kernel against the partitioned parallel kernel at 1/2/4/8 threads
// over XMark scales {0.05, 0.1, 0.5}; ExecuteBatchParallel runs a
// mixed query batch through the shared result cache.
//
// Thread counts above the machine's core count are still interesting:
// they expose partitioning/scheduling overhead. On a single-core host
// all thread counts should be roughly flat (the kernels degrade to
// serial only below min_parallel, which these benches disable).

#include <benchmark/benchmark.h>

#include <string>
#include <string_view>
#include <vector>

#include "bench/bench_util.h"
#include "join/structural_join.h"
#include "join/tag_index.h"

namespace xqp {
namespace {

struct JoinInput {
  std::shared_ptr<const Document> doc;
  std::unique_ptr<TagIndex> index;
  const std::vector<NodeIndex>* ancestors;
  const std::vector<NodeIndex>* descendants;
};

/// XMark: ancestors = <item>, descendants = <keyword>, same pairing as
/// the serial structural-join experiment (E5) so numbers line up.
JoinInput XMarkInput(double scale) {
  JoinInput in;
  in.doc = bench::XMarkDoc(scale);
  in.index = std::make_unique<TagIndex>(in.doc);
  in.ancestors = in.index->Lookup("", "item");
  in.descendants = in.index->Lookup("", "keyword");
  if (in.ancestors == nullptr || in.descendants == nullptr) std::abort();
  return in;
}

/// range(0) = XMark permille, range(1) = thread count (0 = serial kernel).
void BM_StackTreeDesc_Threads(benchmark::State& state) {
  auto in = XMarkInput(bench::ScaleFromArg(state.range(0)));
  const int threads = static_cast<int>(state.range(1));
  size_t pairs = 0;
  for (auto _ : state) {
    std::vector<JoinPair> result =
        threads == 0
            ? StackTreeDesc(*in.doc, *in.ancestors, *in.descendants)
            : StackTreeDescParallel(*in.doc, *in.ancestors, *in.descendants,
                                    /*parent_child=*/false, threads,
                                    /*min_parallel=*/1);
    pairs = result.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["pairs"] = static_cast<double>(pairs);
  state.counters["threads"] = static_cast<double>(threads);
}
BENCHMARK(BM_StackTreeDesc_Threads)
    ->ArgsProduct({{50, 100, 500}, {0, 1, 2, 4, 8}});

void BM_JoinDescendants_Threads(benchmark::State& state) {
  auto in = XMarkInput(bench::ScaleFromArg(state.range(0)));
  const int threads = static_cast<int>(state.range(1));
  size_t matched = 0;
  for (auto _ : state) {
    std::vector<NodeIndex> result =
        threads == 0
            ? JoinDescendants(*in.doc, *in.ancestors, *in.descendants)
            : JoinDescendantsParallel(*in.doc, *in.ancestors, *in.descendants,
                                      /*parent_child=*/false, threads,
                                      /*min_parallel=*/1);
    matched = result.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["matched"] = static_cast<double>(matched);
  state.counters["threads"] = static_cast<double>(threads);
}
BENCHMARK(BM_JoinDescendants_Threads)
    ->ArgsProduct({{50, 100, 500}, {0, 1, 2, 4, 8}});

/// A mixed batch: path queries (cacheable, identical — exercises the
/// shared result cache under contention) plus per-iteration unique
/// variants (cache misses — exercises concurrent compile+execute).
void BM_ExecuteBatchParallel(benchmark::State& state) {
  const double scale = bench::ScaleFromArg(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  EngineOptions options;
  options.num_threads = threads;
  options.parallel_threshold = threads == 0 ? 0 : 1;
  XQueryEngine engine(options);
  Status st = engine.RegisterDocument("xmark.xml", bench::XMarkDoc(scale));
  if (!st.ok()) std::abort();

  const std::vector<std::string> batch = {
      "doc('xmark.xml')//item//keyword",
      "doc('xmark.xml')//person/name",
      "count(doc('xmark.xml')//item)",
      "doc('xmark.xml')//open_auction//bidder",
      "doc('xmark.xml')//item//keyword",
      "doc('xmark.xml')//person/name",
      "count(doc('xmark.xml')//item)",
      "doc('xmark.xml')//open_auction//bidder",
  };
  std::vector<std::string_view> queries(batch.begin(), batch.end());

  for (auto _ : state) {
    auto results = engine.ExecuteBatchParallel(queries);
    for (const auto& r : results) {
      if (!r.ok()) std::abort();
    }
    benchmark::DoNotOptimize(results);
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["hits"] = static_cast<double>(engine.cache_stats().hits);
}
BENCHMARK(BM_ExecuteBatchParallel)
    ->ArgsProduct({{50, 100, 500}, {0, 1, 2, 4, 8}});

}  // namespace
}  // namespace xqp

XQP_BENCH_JSON_MAIN("BENCH_parallel.json")
