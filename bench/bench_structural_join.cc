// Experiment E5 — the structural-join primitive (Al-Khalifa et al., from
// the paper's query-evaluation reading list): Stack-Tree joins vs. the
// MPMGJN merge baseline vs. nested loops vs. navigation, over both XMark
// data and synthetic recursive documents with controlled nesting.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "join/navigation.h"
#include "join/structural_join.h"
#include "join/tag_index.h"

namespace xqp {
namespace {

struct JoinInput {
  std::shared_ptr<const Document> doc;
  std::unique_ptr<TagIndex> index;
  const std::vector<NodeIndex>* ancestors;
  const std::vector<NodeIndex>* descendants;
};

/// XMark: ancestors = <item>, descendants = <keyword> (inside mixed-content
/// descriptions).
JoinInput XMarkInput(double scale) {
  JoinInput in;
  in.doc = bench::XMarkDoc(scale);
  in.index = std::make_unique<TagIndex>(in.doc);
  in.ancestors = in.index->Lookup("", "item");
  in.descendants = in.index->Lookup("", "keyword");
  if (in.ancestors == nullptr || in.descendants == nullptr) std::abort();
  return in;
}

/// Synthetic: <a> chains `depth` deep (stress for the merge rescans).
JoinInput RecursiveInput(int depth) {
  JoinInput in;
  auto doc = Document::Parse(bench::RecursiveXml(400, depth, 4));
  in.doc = std::move(doc).ValueOrDie();
  in.index = std::make_unique<TagIndex>(in.doc);
  in.ancestors = in.index->Lookup("", "a");
  in.descendants = in.index->Lookup("", "b");
  return in;
}

template <typename Fn>
void RunJoin(benchmark::State& state, const JoinInput& in, Fn join) {
  size_t pairs = 0;
  for (auto _ : state) {
    auto result = join(*in.doc, *in.ancestors, *in.descendants);
    pairs = result.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["anc"] = static_cast<double>(in.ancestors->size());
  state.counters["desc"] = static_cast<double>(in.descendants->size());
  state.counters["pairs"] = static_cast<double>(pairs);
}

void BM_XMark_StackTreeDesc(benchmark::State& state) {
  auto in = XMarkInput(bench::ScaleFromArg(state.range(0)));
  RunJoin(state, in, [](const Document& d, const auto& a, const auto& b) {
    return StackTreeDesc(d, a, b);
  });
}
BENCHMARK(BM_XMark_StackTreeDesc)->Arg(50)->Arg(200)->Arg(500);

void BM_XMark_StackTreeAnc(benchmark::State& state) {
  auto in = XMarkInput(bench::ScaleFromArg(state.range(0)));
  RunJoin(state, in, [](const Document& d, const auto& a, const auto& b) {
    return StackTreeAnc(d, a, b);
  });
}
BENCHMARK(BM_XMark_StackTreeAnc)->Arg(50)->Arg(200)->Arg(500);

void BM_XMark_Mpmg(benchmark::State& state) {
  auto in = XMarkInput(bench::ScaleFromArg(state.range(0)));
  RunJoin(state, in, [](const Document& d, const auto& a, const auto& b) {
    return MpmgJoin(d, a, b);
  });
}
BENCHMARK(BM_XMark_Mpmg)->Arg(50)->Arg(200)->Arg(500);

void BM_XMark_NestedLoop(benchmark::State& state) {
  auto in = XMarkInput(bench::ScaleFromArg(state.range(0)));
  RunJoin(state, in, [](const Document& d, const auto& a, const auto& b) {
    return NestedLoopJoin(d, a, b);
  });
}
BENCHMARK(BM_XMark_NestedLoop)->Arg(50)->Arg(200);

void BM_XMark_Navigation(benchmark::State& state) {
  auto in = XMarkInput(bench::ScaleFromArg(state.range(0)));
  size_t count = 0;
  for (auto _ : state) {
    auto pairs = NavigatePairs(*in.doc, "", "item", "", "keyword");
    count = pairs.size();
    benchmark::DoNotOptimize(pairs);
  }
  state.counters["pairs"] = static_cast<double>(count);
}
BENCHMARK(BM_XMark_Navigation)->Arg(50)->Arg(200)->Arg(500);

/// Deep recursion is where Stack-Tree's stack beats MPMGJN's rescans.
void BM_Recursive_StackTreeDesc(benchmark::State& state) {
  auto in = RecursiveInput(static_cast<int>(state.range(0)));
  RunJoin(state, in, [](const Document& d, const auto& a, const auto& b) {
    return StackTreeDesc(d, a, b);
  });
}
BENCHMARK(BM_Recursive_StackTreeDesc)->Arg(4)->Arg(16)->Arg(64);

void BM_Recursive_Mpmg(benchmark::State& state) {
  auto in = RecursiveInput(static_cast<int>(state.range(0)));
  RunJoin(state, in, [](const Document& d, const auto& a, const auto& b) {
    return MpmgJoin(d, a, b);
  });
}
BENCHMARK(BM_Recursive_Mpmg)->Arg(4)->Arg(16)->Arg(64);

/// The adversarial case for the merge join: an umbrella ancestor keeps the
/// cursor pinned while closed ancestors are rescanned for every descendant
/// — O(closed * tail) for MPMGJN vs. O(closed + tail + output) for the
/// stack join.
JoinInput UmbrellaInput(int closed) {
  JoinInput in;
  auto doc = Document::Parse(bench::UmbrellaXml(closed, 2000));
  in.doc = std::move(doc).ValueOrDie();
  in.index = std::make_unique<TagIndex>(in.doc);
  in.ancestors = in.index->Lookup("", "a");
  in.descendants = in.index->Lookup("", "b");
  return in;
}

void BM_Umbrella_StackTreeDesc(benchmark::State& state) {
  auto in = UmbrellaInput(static_cast<int>(state.range(0)));
  RunJoin(state, in, [](const Document& d, const auto& a, const auto& b) {
    return StackTreeDesc(d, a, b);
  });
}
BENCHMARK(BM_Umbrella_StackTreeDesc)->Arg(100)->Arg(1000)->Arg(4000);

void BM_Umbrella_Mpmg(benchmark::State& state) {
  auto in = UmbrellaInput(static_cast<int>(state.range(0)));
  RunJoin(state, in, [](const Document& d, const auto& a, const auto& b) {
    return MpmgJoin(d, a, b);
  });
}
BENCHMARK(BM_Umbrella_Mpmg)->Arg(100)->Arg(1000)->Arg(4000);

/// Semi-join projections (what XPath steps actually consume).
void BM_SemiJoin_Descendants(benchmark::State& state) {
  auto in = XMarkInput(bench::ScaleFromArg(state.range(0)));
  for (auto _ : state) {
    auto result = JoinDescendants(*in.doc, *in.ancestors, *in.descendants);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SemiJoin_Descendants)->Arg(200)->Arg(500);

void BM_SemiJoin_Ancestors(benchmark::State& state) {
  auto in = XMarkInput(bench::ScaleFromArg(state.range(0)));
  for (auto _ : state) {
    auto result = JoinAncestors(*in.doc, *in.ancestors, *in.descendants);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SemiJoin_Ancestors)->Arg(200)->Arg(500);

/// Index build cost, amortized over queries.
void BM_TagIndexBuild(benchmark::State& state) {
  auto doc = bench::XMarkDoc(bench::ScaleFromArg(state.range(0)));
  for (auto _ : state) {
    TagIndex index(doc);
    benchmark::DoNotOptimize(index.NumTags());
  }
}
BENCHMARK(BM_TagIndexBuild)->Arg(50)->Arg(200)->Arg(500);

}  // namespace
}  // namespace xqp

XQP_BENCH_JSON_MAIN("BENCH_structural_join.json")
