// Experiment E11 — parsing and data-model generation (DM1/DM2 of the
// paper's life-cycle figure): raw event throughput, node-table build,
// token-stream build, and serialization (DM4).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "tokens/token_iterator.h"
#include "tokens/token_stream.h"
#include "xml/pull_parser.h"
#include "xml/serializer.h"

namespace xqp {
namespace {

void BM_PullParser_EventsOnly(benchmark::State& state) {
  const std::string& xml = bench::XMarkXml(bench::ScaleFromArg(state.range(0)));
  int64_t events = 0;
  for (auto _ : state) {
    XmlPullParser parser(xml, ParseOptions{});
    events = 0;
    while (true) {
      auto e = parser.Next();
      if (!e.ok() || e.value() == nullptr) break;
      ++events;
    }
    benchmark::DoNotOptimize(events);
  }
  state.counters["events"] = static_cast<double>(events);
  state.SetBytesProcessed(static_cast<int64_t>(xml.size()) *
                          state.iterations());
}
BENCHMARK(BM_PullParser_EventsOnly)->Arg(50)->Arg(200)->Arg(500);

void BM_Parse_ToDocument(benchmark::State& state) {
  const std::string& xml = bench::XMarkXml(bench::ScaleFromArg(state.range(0)));
  for (auto _ : state) {
    auto doc = Document::Parse(xml);
    benchmark::DoNotOptimize(doc);
  }
  state.SetBytesProcessed(static_cast<int64_t>(xml.size()) *
                          state.iterations());
}
BENCHMARK(BM_Parse_ToDocument)->Arg(50)->Arg(200)->Arg(500);

void BM_Parse_ToTokenStream(benchmark::State& state) {
  const std::string& xml = bench::XMarkXml(bench::ScaleFromArg(state.range(0)));
  for (auto _ : state) {
    auto ts = TokenStream::FromXml(xml);
    benchmark::DoNotOptimize(ts);
  }
  state.SetBytesProcessed(static_cast<int64_t>(xml.size()) *
                          state.iterations());
}
BENCHMARK(BM_Parse_ToTokenStream)->Arg(50)->Arg(200)->Arg(500);

void BM_Parse_WhitespaceStripped(benchmark::State& state) {
  const std::string& xml = bench::XMarkXml(bench::ScaleFromArg(state.range(0)));
  ParseOptions options;
  options.strip_whitespace = true;
  for (auto _ : state) {
    auto doc = Document::Parse(xml, options);
    benchmark::DoNotOptimize(doc);
  }
  state.SetBytesProcessed(static_cast<int64_t>(xml.size()) *
                          state.iterations());
}
BENCHMARK(BM_Parse_WhitespaceStripped)->Arg(200);

void BM_Serialize_FromDocument(benchmark::State& state) {
  auto doc = bench::XMarkDoc(bench::ScaleFromArg(state.range(0)));
  size_t bytes = 0;
  for (auto _ : state) {
    auto out = SerializeToString(Node(doc, 0));
    bytes = out.value().size();
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes) * state.iterations());
}
BENCHMARK(BM_Serialize_FromDocument)->Arg(50)->Arg(200)->Arg(500);

void BM_Serialize_FromTokens(benchmark::State& state) {
  auto doc = bench::XMarkDoc(bench::ScaleFromArg(state.range(0)));
  size_t bytes = 0;
  for (auto _ : state) {
    DocumentTokenIterator it(doc);
    auto out = SerializeTokens(&it);
    bytes = out.value().size();
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes) * state.iterations());
}
BENCHMARK(BM_Serialize_FromTokens)->Arg(50)->Arg(200)->Arg(500);

/// Round trip: parse + serialize (the full DM life cycle minus queries).
void BM_RoundTrip(benchmark::State& state) {
  const std::string& xml = bench::XMarkXml(bench::ScaleFromArg(state.range(0)));
  for (auto _ : state) {
    auto doc = Document::Parse(xml);
    auto out = SerializeToString(Node(doc.value(), 0));
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(xml.size()) *
                          state.iterations());
}
BENCHMARK(BM_RoundTrip)->Arg(200);

}  // namespace
}  // namespace xqp

XQP_BENCH_JSON_MAIN("BENCH_parse.json")
