file(REMOVE_RECURSE
  "CMakeFiles/bench_structural_join.dir/bench_structural_join.cc.o"
  "CMakeFiles/bench_structural_join.dir/bench_structural_join.cc.o.d"
  "bench_structural_join"
  "bench_structural_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_structural_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
