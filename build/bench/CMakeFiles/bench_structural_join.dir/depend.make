# Empty dependencies file for bench_structural_join.
# This may be replaced when dependencies are built.
