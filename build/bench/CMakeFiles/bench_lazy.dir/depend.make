# Empty dependencies file for bench_lazy.
# This may be replaced when dependencies are built.
