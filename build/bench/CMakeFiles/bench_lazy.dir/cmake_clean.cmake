file(REMOVE_RECURSE
  "CMakeFiles/bench_lazy.dir/bench_lazy.cc.o"
  "CMakeFiles/bench_lazy.dir/bench_lazy.cc.o.d"
  "bench_lazy"
  "bench_lazy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lazy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
