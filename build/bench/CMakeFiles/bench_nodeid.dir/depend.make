# Empty dependencies file for bench_nodeid.
# This may be replaced when dependencies are built.
