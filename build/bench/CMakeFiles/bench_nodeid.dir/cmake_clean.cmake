file(REMOVE_RECURSE
  "CMakeFiles/bench_nodeid.dir/bench_nodeid.cc.o"
  "CMakeFiles/bench_nodeid.dir/bench_nodeid.cc.o.d"
  "bench_nodeid"
  "bench_nodeid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nodeid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
