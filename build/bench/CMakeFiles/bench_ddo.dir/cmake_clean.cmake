file(REMOVE_RECURSE
  "CMakeFiles/bench_ddo.dir/bench_ddo.cc.o"
  "CMakeFiles/bench_ddo.dir/bench_ddo.cc.o.d"
  "bench_ddo"
  "bench_ddo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ddo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
