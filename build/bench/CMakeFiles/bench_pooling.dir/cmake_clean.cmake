file(REMOVE_RECURSE
  "CMakeFiles/bench_pooling.dir/bench_pooling.cc.o"
  "CMakeFiles/bench_pooling.dir/bench_pooling.cc.o.d"
  "bench_pooling"
  "bench_pooling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pooling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
