# Empty dependencies file for bench_pooling.
# This may be replaced when dependencies are built.
