# Empty dependencies file for bench_skip.
# This may be replaced when dependencies are built.
