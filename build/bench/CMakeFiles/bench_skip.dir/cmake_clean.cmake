file(REMOVE_RECURSE
  "CMakeFiles/bench_skip.dir/bench_skip.cc.o"
  "CMakeFiles/bench_skip.dir/bench_skip.cc.o.d"
  "bench_skip"
  "bench_skip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_skip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
