file(REMOVE_RECURSE
  "libxqp.a"
)
