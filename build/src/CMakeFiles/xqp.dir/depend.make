# Empty dependencies file for xqp.
# This may be replaced when dependencies are built.
