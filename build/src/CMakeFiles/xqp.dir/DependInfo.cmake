
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/base/status.cc" "src/CMakeFiles/xqp.dir/base/status.cc.o" "gcc" "src/CMakeFiles/xqp.dir/base/status.cc.o.d"
  "/root/repo/src/base/string_util.cc" "src/CMakeFiles/xqp.dir/base/string_util.cc.o" "gcc" "src/CMakeFiles/xqp.dir/base/string_util.cc.o.d"
  "/root/repo/src/engine.cc" "src/CMakeFiles/xqp.dir/engine.cc.o" "gcc" "src/CMakeFiles/xqp.dir/engine.cc.o.d"
  "/root/repo/src/exec/arithmetic.cc" "src/CMakeFiles/xqp.dir/exec/arithmetic.cc.o" "gcc" "src/CMakeFiles/xqp.dir/exec/arithmetic.cc.o.d"
  "/root/repo/src/exec/axes.cc" "src/CMakeFiles/xqp.dir/exec/axes.cc.o" "gcc" "src/CMakeFiles/xqp.dir/exec/axes.cc.o.d"
  "/root/repo/src/exec/compare.cc" "src/CMakeFiles/xqp.dir/exec/compare.cc.o" "gcc" "src/CMakeFiles/xqp.dir/exec/compare.cc.o.d"
  "/root/repo/src/exec/constructor.cc" "src/CMakeFiles/xqp.dir/exec/constructor.cc.o" "gcc" "src/CMakeFiles/xqp.dir/exec/constructor.cc.o.d"
  "/root/repo/src/exec/dynamic_context.cc" "src/CMakeFiles/xqp.dir/exec/dynamic_context.cc.o" "gcc" "src/CMakeFiles/xqp.dir/exec/dynamic_context.cc.o.d"
  "/root/repo/src/exec/functions.cc" "src/CMakeFiles/xqp.dir/exec/functions.cc.o" "gcc" "src/CMakeFiles/xqp.dir/exec/functions.cc.o.d"
  "/root/repo/src/exec/functions_registry.cc" "src/CMakeFiles/xqp.dir/exec/functions_registry.cc.o" "gcc" "src/CMakeFiles/xqp.dir/exec/functions_registry.cc.o.d"
  "/root/repo/src/exec/interpreter.cc" "src/CMakeFiles/xqp.dir/exec/interpreter.cc.o" "gcc" "src/CMakeFiles/xqp.dir/exec/interpreter.cc.o.d"
  "/root/repo/src/exec/item.cc" "src/CMakeFiles/xqp.dir/exec/item.cc.o" "gcc" "src/CMakeFiles/xqp.dir/exec/item.cc.o.d"
  "/root/repo/src/exec/iterators.cc" "src/CMakeFiles/xqp.dir/exec/iterators.cc.o" "gcc" "src/CMakeFiles/xqp.dir/exec/iterators.cc.o.d"
  "/root/repo/src/exec/iterators_flwor.cc" "src/CMakeFiles/xqp.dir/exec/iterators_flwor.cc.o" "gcc" "src/CMakeFiles/xqp.dir/exec/iterators_flwor.cc.o.d"
  "/root/repo/src/exec/iterators_path.cc" "src/CMakeFiles/xqp.dir/exec/iterators_path.cc.o" "gcc" "src/CMakeFiles/xqp.dir/exec/iterators_path.cc.o.d"
  "/root/repo/src/exec/lazy_seq.cc" "src/CMakeFiles/xqp.dir/exec/lazy_seq.cc.o" "gcc" "src/CMakeFiles/xqp.dir/exec/lazy_seq.cc.o.d"
  "/root/repo/src/exec/type_match.cc" "src/CMakeFiles/xqp.dir/exec/type_match.cc.o" "gcc" "src/CMakeFiles/xqp.dir/exec/type_match.cc.o.d"
  "/root/repo/src/join/navigation.cc" "src/CMakeFiles/xqp.dir/join/navigation.cc.o" "gcc" "src/CMakeFiles/xqp.dir/join/navigation.cc.o.d"
  "/root/repo/src/join/structural_join.cc" "src/CMakeFiles/xqp.dir/join/structural_join.cc.o" "gcc" "src/CMakeFiles/xqp.dir/join/structural_join.cc.o.d"
  "/root/repo/src/join/tag_index.cc" "src/CMakeFiles/xqp.dir/join/tag_index.cc.o" "gcc" "src/CMakeFiles/xqp.dir/join/tag_index.cc.o.d"
  "/root/repo/src/join/twig.cc" "src/CMakeFiles/xqp.dir/join/twig.cc.o" "gcc" "src/CMakeFiles/xqp.dir/join/twig.cc.o.d"
  "/root/repo/src/join/twig_planner.cc" "src/CMakeFiles/xqp.dir/join/twig_planner.cc.o" "gcc" "src/CMakeFiles/xqp.dir/join/twig_planner.cc.o.d"
  "/root/repo/src/opt/properties.cc" "src/CMakeFiles/xqp.dir/opt/properties.cc.o" "gcc" "src/CMakeFiles/xqp.dir/opt/properties.cc.o.d"
  "/root/repo/src/opt/rewriter.cc" "src/CMakeFiles/xqp.dir/opt/rewriter.cc.o" "gcc" "src/CMakeFiles/xqp.dir/opt/rewriter.cc.o.d"
  "/root/repo/src/opt/rules_core.cc" "src/CMakeFiles/xqp.dir/opt/rules_core.cc.o" "gcc" "src/CMakeFiles/xqp.dir/opt/rules_core.cc.o.d"
  "/root/repo/src/opt/rules_flwor.cc" "src/CMakeFiles/xqp.dir/opt/rules_flwor.cc.o" "gcc" "src/CMakeFiles/xqp.dir/opt/rules_flwor.cc.o.d"
  "/root/repo/src/opt/rules_path.cc" "src/CMakeFiles/xqp.dir/opt/rules_path.cc.o" "gcc" "src/CMakeFiles/xqp.dir/opt/rules_path.cc.o.d"
  "/root/repo/src/opt/static_types.cc" "src/CMakeFiles/xqp.dir/opt/static_types.cc.o" "gcc" "src/CMakeFiles/xqp.dir/opt/static_types.cc.o.d"
  "/root/repo/src/query/expr.cc" "src/CMakeFiles/xqp.dir/query/expr.cc.o" "gcc" "src/CMakeFiles/xqp.dir/query/expr.cc.o.d"
  "/root/repo/src/query/lexer.cc" "src/CMakeFiles/xqp.dir/query/lexer.cc.o" "gcc" "src/CMakeFiles/xqp.dir/query/lexer.cc.o.d"
  "/root/repo/src/query/normalize.cc" "src/CMakeFiles/xqp.dir/query/normalize.cc.o" "gcc" "src/CMakeFiles/xqp.dir/query/normalize.cc.o.d"
  "/root/repo/src/query/parser.cc" "src/CMakeFiles/xqp.dir/query/parser.cc.o" "gcc" "src/CMakeFiles/xqp.dir/query/parser.cc.o.d"
  "/root/repo/src/query/sequence_type.cc" "src/CMakeFiles/xqp.dir/query/sequence_type.cc.o" "gcc" "src/CMakeFiles/xqp.dir/query/sequence_type.cc.o.d"
  "/root/repo/src/query/static_context.cc" "src/CMakeFiles/xqp.dir/query/static_context.cc.o" "gcc" "src/CMakeFiles/xqp.dir/query/static_context.cc.o.d"
  "/root/repo/src/tokens/token.cc" "src/CMakeFiles/xqp.dir/tokens/token.cc.o" "gcc" "src/CMakeFiles/xqp.dir/tokens/token.cc.o.d"
  "/root/repo/src/tokens/token_iterator.cc" "src/CMakeFiles/xqp.dir/tokens/token_iterator.cc.o" "gcc" "src/CMakeFiles/xqp.dir/tokens/token_iterator.cc.o.d"
  "/root/repo/src/tokens/token_stream.cc" "src/CMakeFiles/xqp.dir/tokens/token_stream.cc.o" "gcc" "src/CMakeFiles/xqp.dir/tokens/token_stream.cc.o.d"
  "/root/repo/src/xmark/generator.cc" "src/CMakeFiles/xqp.dir/xmark/generator.cc.o" "gcc" "src/CMakeFiles/xqp.dir/xmark/generator.cc.o.d"
  "/root/repo/src/xmark/queries.cc" "src/CMakeFiles/xqp.dir/xmark/queries.cc.o" "gcc" "src/CMakeFiles/xqp.dir/xmark/queries.cc.o.d"
  "/root/repo/src/xml/atomic_value.cc" "src/CMakeFiles/xqp.dir/xml/atomic_value.cc.o" "gcc" "src/CMakeFiles/xqp.dir/xml/atomic_value.cc.o.d"
  "/root/repo/src/xml/document.cc" "src/CMakeFiles/xqp.dir/xml/document.cc.o" "gcc" "src/CMakeFiles/xqp.dir/xml/document.cc.o.d"
  "/root/repo/src/xml/node.cc" "src/CMakeFiles/xqp.dir/xml/node.cc.o" "gcc" "src/CMakeFiles/xqp.dir/xml/node.cc.o.d"
  "/root/repo/src/xml/pull_parser.cc" "src/CMakeFiles/xqp.dir/xml/pull_parser.cc.o" "gcc" "src/CMakeFiles/xqp.dir/xml/pull_parser.cc.o.d"
  "/root/repo/src/xml/qname.cc" "src/CMakeFiles/xqp.dir/xml/qname.cc.o" "gcc" "src/CMakeFiles/xqp.dir/xml/qname.cc.o.d"
  "/root/repo/src/xml/serializer.cc" "src/CMakeFiles/xqp.dir/xml/serializer.cc.o" "gcc" "src/CMakeFiles/xqp.dir/xml/serializer.cc.o.d"
  "/root/repo/src/xml/string_pool.cc" "src/CMakeFiles/xqp.dir/xml/string_pool.cc.o" "gcc" "src/CMakeFiles/xqp.dir/xml/string_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
