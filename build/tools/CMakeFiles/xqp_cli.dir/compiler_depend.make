# Empty compiler generated dependencies file for xqp_cli.
# This may be replaced when dependencies are built.
