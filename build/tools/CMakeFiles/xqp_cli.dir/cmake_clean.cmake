file(REMOVE_RECURSE
  "CMakeFiles/xqp_cli.dir/xqp.cpp.o"
  "CMakeFiles/xqp_cli.dir/xqp.cpp.o.d"
  "xqp"
  "xqp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xqp_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
