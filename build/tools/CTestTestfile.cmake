# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tool_xqp_cli "/root/repo/build/tools/xqp" "--xmark" "0.01" "count(doc('xmark.xml')//item)")
set_tests_properties(tool_xqp_cli PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
