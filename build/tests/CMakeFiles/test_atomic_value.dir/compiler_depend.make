# Empty compiler generated dependencies file for test_atomic_value.
# This may be replaced when dependencies are built.
