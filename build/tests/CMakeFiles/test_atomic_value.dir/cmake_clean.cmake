file(REMOVE_RECURSE
  "CMakeFiles/test_atomic_value.dir/test_atomic_value.cc.o"
  "CMakeFiles/test_atomic_value.dir/test_atomic_value.cc.o.d"
  "test_atomic_value"
  "test_atomic_value.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_atomic_value.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
