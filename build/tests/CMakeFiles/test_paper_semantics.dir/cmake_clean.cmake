file(REMOVE_RECURSE
  "CMakeFiles/test_paper_semantics.dir/test_paper_semantics.cc.o"
  "CMakeFiles/test_paper_semantics.dir/test_paper_semantics.cc.o.d"
  "test_paper_semantics"
  "test_paper_semantics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_paper_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
