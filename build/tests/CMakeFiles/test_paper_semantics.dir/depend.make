# Empty dependencies file for test_paper_semantics.
# This may be replaced when dependencies are built.
