file(REMOVE_RECURSE
  "CMakeFiles/test_tokens.dir/test_tokens.cc.o"
  "CMakeFiles/test_tokens.dir/test_tokens.cc.o.d"
  "test_tokens"
  "test_tokens.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tokens.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
