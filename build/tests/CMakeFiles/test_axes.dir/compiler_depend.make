# Empty compiler generated dependencies file for test_axes.
# This may be replaced when dependencies are built.
