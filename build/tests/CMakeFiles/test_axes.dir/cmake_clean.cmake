file(REMOVE_RECURSE
  "CMakeFiles/test_axes.dir/test_axes.cc.o"
  "CMakeFiles/test_axes.dir/test_axes.cc.o.d"
  "test_axes"
  "test_axes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_axes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
