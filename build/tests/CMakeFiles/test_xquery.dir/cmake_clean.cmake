file(REMOVE_RECURSE
  "CMakeFiles/test_xquery.dir/test_xquery.cc.o"
  "CMakeFiles/test_xquery.dir/test_xquery.cc.o.d"
  "test_xquery"
  "test_xquery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xquery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
