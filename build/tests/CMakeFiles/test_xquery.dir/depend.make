# Empty dependencies file for test_xquery.
# This may be replaced when dependencies are built.
