file(REMOVE_RECURSE
  "CMakeFiles/test_xpath.dir/test_xpath.cc.o"
  "CMakeFiles/test_xpath.dir/test_xpath.cc.o.d"
  "test_xpath"
  "test_xpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
