# Empty compiler generated dependencies file for test_xpath.
# This may be replaced when dependencies are built.
