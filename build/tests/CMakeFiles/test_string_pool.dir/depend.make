# Empty dependencies file for test_string_pool.
# This may be replaced when dependencies are built.
