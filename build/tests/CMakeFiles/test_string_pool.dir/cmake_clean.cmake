file(REMOVE_RECURSE
  "CMakeFiles/test_string_pool.dir/test_string_pool.cc.o"
  "CMakeFiles/test_string_pool.dir/test_string_pool.cc.o.d"
  "test_string_pool"
  "test_string_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_string_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
