file(REMOVE_RECURSE
  "CMakeFiles/test_document.dir/test_document.cc.o"
  "CMakeFiles/test_document.dir/test_document.cc.o.d"
  "test_document"
  "test_document.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_document.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
