file(REMOVE_RECURSE
  "CMakeFiles/test_ddo.dir/test_ddo.cc.o"
  "CMakeFiles/test_ddo.dir/test_ddo.cc.o.d"
  "test_ddo"
  "test_ddo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ddo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
