# Empty dependencies file for test_twig.
# This may be replaced when dependencies are built.
