file(REMOVE_RECURSE
  "CMakeFiles/test_twig.dir/test_twig.cc.o"
  "CMakeFiles/test_twig.dir/test_twig.cc.o.d"
  "test_twig"
  "test_twig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_twig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
