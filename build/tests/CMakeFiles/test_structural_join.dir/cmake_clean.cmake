file(REMOVE_RECURSE
  "CMakeFiles/test_structural_join.dir/test_structural_join.cc.o"
  "CMakeFiles/test_structural_join.dir/test_structural_join.cc.o.d"
  "test_structural_join"
  "test_structural_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_structural_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
