# Empty dependencies file for test_structural_join.
# This may be replaced when dependencies are built.
