# Empty dependencies file for test_lazy.
# This may be replaced when dependencies are built.
