# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_message_broker "/root/repo/build/examples/message_broker")
set_tests_properties(example_message_broker PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_data_integration "/root/repo/build/examples/data_integration")
set_tests_properties(example_data_integration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_xmark_explorer "/root/repo/build/examples/xmark_explorer" "0.01")
set_tests_properties(example_xmark_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_web_service_transform "/root/repo/build/examples/web_service_transform")
set_tests_properties(example_web_service_transform PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
