file(REMOVE_RECURSE
  "CMakeFiles/message_broker.dir/message_broker.cpp.o"
  "CMakeFiles/message_broker.dir/message_broker.cpp.o.d"
  "message_broker"
  "message_broker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/message_broker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
