# Empty dependencies file for message_broker.
# This may be replaced when dependencies are built.
