file(REMOVE_RECURSE
  "CMakeFiles/web_service_transform.dir/web_service_transform.cpp.o"
  "CMakeFiles/web_service_transform.dir/web_service_transform.cpp.o.d"
  "web_service_transform"
  "web_service_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_service_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
