# Empty dependencies file for web_service_transform.
# This may be replaced when dependencies are built.
