// Fuzz target for the XQuery lexer/parser: arbitrary bytes must produce a
// ParsedModule or a clean kStaticError — never a crash or unbounded
// recursion. A tight max_expr_depth variant exercises the expression-depth
// budget, and destruction of whatever tree was built exercises the
// iterative ~Expr path.

#include <string>
#include <string_view>
#include <vector>

#include "query/parser.h"
#include "tools/fuzz_common.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view query(reinterpret_cast<const char*>(data), size);
  { auto r = xqp::ParseQuery(query); (void)r; }
  { auto r = xqp::ParseQuery(query, /*max_expr_depth=*/16); (void)r; }
  return 0;
}

namespace {
const std::vector<std::string> kCorpus = {
    "for $b in doc('bib.xml')//book where $b/@year = 1998 "
    "order by $b/title return <r>{$b/title}</r>",
    "let $x := (1, 2.5, 'three') return some $y in $x satisfies $y > 1",
    "declare variable $v external; $v[position() = last()] | //a/b[2]",
    "if (1 idiv 2 eq 0) then element e { attribute a { 'v' } } else ()",
    "((((((1 + 2) * 3) - 4) div 5) mod 6) to 7)",
};
}  // namespace

XQP_FUZZ_STANDALONE_MAIN(kCorpus)
