#!/usr/bin/env bash
# The full CI gate: a Release build running the whole test suite, followed
# by a ThreadSanitizer build of the concurrency-sensitive tests (everything
# carrying the `tsan` ctest label — the parallel join kernels and the
# lock-free metrics/profile subsystem).
#
# Usage: tools/run_ci.sh [release-build-dir] [tsan-build-dir]
#   Defaults: build and build-tsan. The two trees are kept separate so
#   instrumented objects never mix with release ones.
#
# XQP_THREADS is forced to 4 for the TSan phase so the pool spawns workers
# even on single-core CI machines; TSan only sees races threads exercise.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
TSAN_DIR="${2:-build-tsan}"

echo "=== Release build + full test suite ==="
cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j"$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"

echo "=== ThreadSanitizer build + tsan-labelled tests ==="
cmake -B "$TSAN_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DXQP_SANITIZE=thread
cmake --build "$TSAN_DIR" --target test_parallel test_metrics -j"$(nproc)"

export XQP_THREADS=4
export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1"
ctest --test-dir "$TSAN_DIR" -L tsan --output-on-failure

echo "CI run clean."
