#!/usr/bin/env bash
# The full CI gate: a Release build running the whole test suite, a
# ThreadSanitizer build of the concurrency-sensitive tests (everything
# carrying the `tsan` ctest label — the parallel join kernels and the
# lock-free metrics/profile subsystem), and an ASan+UBSan build of the
# suite that leans hardest on error paths and object lifetimes (the
# robustness/governance tests plus the fuzz smoke drivers).
#
# Usage: tools/run_ci.sh [release-build-dir] [tsan-build-dir] [asan-build-dir]
#   Defaults: build, build-tsan, build-asan. The trees are kept separate so
#   instrumented objects never mix with release ones.
#
# XQP_THREADS is forced to 4 for the TSan phase so the pool spawns workers
# even on single-core CI machines; TSan only sees races threads exercise.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
TSAN_DIR="${2:-build-tsan}"
ASAN_DIR="${3:-build-asan}"

echo "=== Release build + full test suite ==="
cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j"$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"

echo "=== Release bench smoke (ingest fast path + index access paths + vm + planner) ==="
# A short-min-time pass over the ingest, index, vm, and planner benchmarks
# keeps the fast-path numbers honest on every CI run; BENCH_ingest.json /
# BENCH_parse.json / BENCH_index.json / BENCH_vm.json / BENCH_planner.json /
# BENCH_vm_paths.json / BENCH_vm_construct.json land in the release build
# dir for the perf dashboard to pick up.
(cd "$BUILD_DIR" && \
  ./bench/bench_ingest --json --benchmark_min_time=0.1 && \
  ./bench/bench_parse --json --benchmark_min_time=0.1 \
    --benchmark_filter='BM_Parse_ToDocument|BM_PullParser_EventsOnly' && \
  ./bench/bench_index --json --benchmark_min_time=0.1 \
    --benchmark_filter='/100/' && \
  ./bench/bench_vm --json --benchmark_min_time=0.1 \
    --benchmark_filter='/10000' && \
  ./bench/bench_vm_paths --json --benchmark_min_time=0.1 && \
  ./bench/bench_vm_construct --json --benchmark_min_time=0.1 && \
  ./bench/bench_planner --json --benchmark_min_time=0.1 \
    --benchmark_filter='/(1|64)$' && \
  ./bench/bench_storage --json --benchmark_min_time=0.1 \
    --benchmark_filter='BM_ColdStart.*/50')

echo "=== ThreadSanitizer build + tsan-labelled tests ==="
cmake -B "$TSAN_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DXQP_SANITIZE=thread
cmake --build "$TSAN_DIR" \
  --target test_parallel test_metrics test_ingest test_index test_vm \
  test_planner test_storage \
  -j"$(nproc)"

export XQP_THREADS=4
export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1"
ctest --test-dir "$TSAN_DIR" -L tsan --output-on-failure
unset XQP_THREADS

echo "=== ASan+UBSan build + robustness and fuzz-smoke tests ==="
# The governance/fault-injection suite unwinds iterator trees mid-stream
# and the smoke drivers feed the parsers hostile bytes; ASan proves the
# error paths leak and corrupt nothing, UBSan that the checked-arithmetic
# rewrites removed the last signed-overflow UB.
cmake -B "$ASAN_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DXQP_SANITIZE=address,undefined
cmake --build "$ASAN_DIR" \
  --target test_robustness test_ingest test_index test_vm test_planner \
  test_storage fuzz_pull_parser fuzz_query_parser fuzz_snapshot \
  -j"$(nproc)"

export ASAN_OPTIONS="detect_leaks=1 halt_on_error=1"
export UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1"
ctest --test-dir "$ASAN_DIR" --output-on-failure \
  -R 'test_robustness|test_ingest|test_index|test_vm|test_planner|test_storage|tool_fuzz_smoke'

echo "CI run clean."
