#!/usr/bin/env bash
# Builds the repo with ThreadSanitizer and runs the concurrency-sensitive
# test binaries (the parallel join kernels and the thread-safe engine).
#
# Usage: tools/run_tsan.sh [build-dir]
#   build-dir defaults to build-tsan (kept separate from the normal build
#   so the instrumented objects never mix with the release ones).
#
# XQP_THREADS is forced to 4 so the pool actually spawns workers even on
# single-core CI machines; TSan only sees races that threads exercise.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DXQP_SANITIZE=thread
cmake --build "$BUILD_DIR" --target test_parallel test_engine -j"$(nproc)"

export XQP_THREADS=4
export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1"

"$BUILD_DIR/tests/test_parallel"
"$BUILD_DIR/tests/test_engine"

echo "TSan run clean."
