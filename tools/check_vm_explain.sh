#!/usr/bin/env bash
# CI gate: the canonical XMark path, constructor, and order-by shapes
# must lower entirely to the VM's opcodes — any `[bailout:` annotation in
# the vm EXPLAIN tree is a regression in the bytecode compiler's lowering.
#
# Usage: tools/check_vm_explain.sh <path-to-xqp_profile>
set -euo pipefail

PROFILE="${1:?usage: check_vm_explain.sh <path-to-xqp_profile>}"

QUERY_IDS=(Q06 Q07)
TEXT_SHAPES=(
  "doc('xmark.xml')/site/people/person[@id = 'person0']/name"
  "doc('xmark.xml')/site/people/person/name"
  "doc('xmark.xml')//item/name"
  "doc('xmark.xml')//item[quantity < 2]"
  "doc('xmark.xml')//person[@id = 'person0']"
  "doc('xmark.xml')//open_auction/bidder/increase"
  "sum(for \$q in doc('xmark.xml')//quantity, \$i in 1 to 60 return \$q * \$i + (\$q idiv 2) - (\$i mod 7))"
  "for \$p in doc('xmark.xml')/site/people/person return <hit id=\"{\$p/@id}\">{string(\$p/name)}</hit>"
  "for \$i in doc('xmark.xml')//item return element {name(\$i)} {attribute n {count(\$i/*)}, text {string(\$i/name)}}"
  "for \$p in doc('xmark.xml')/site/people/person order by string(\$p/name) descending, string(\$p/@id) return string(\$p/@id)"
)

fail=0
check() {
  local label="$1"; shift
  local out
  out="$("$PROFILE" "$@" --scale 10 --backend vm --explain-only)"
  if grep -q '\[bailout:' <<<"$out"; then
    echo "FAIL: vm bailout in compiled path plan for ${label}:" >&2
    grep '\[bailout:' <<<"$out" >&2
    fail=1
  else
    echo "ok: ${label}"
  fi
}

for id in "${QUERY_IDS[@]}"; do
  check "$id" --query "$id"
done
for text in "${TEXT_SHAPES[@]}"; do
  check "$text" --text "$text"
done

exit "$fail"
