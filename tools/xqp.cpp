// xqp — command-line XQuery runner over the xqp engine.
//
//   xqp [options] <query>
//   xqp [options] -f query.xq
//
// options:
//   --doc uri=path    register an XML file under a doc('uri') name
//                     (repeatable); the first one also becomes the context
//                     item unless --no-context is given
//   --xmark scale     generate an XMark document and register it as
//                     doc('xmark.xml')
//   --eager           run the eager reference interpreter instead of the
//                     lazy streaming engine
//   --no-optimize     skip the rewrite-rule optimizer
//   --no-context      don't bind a context item
//   --explain         print the optimized plan and rewrite statistics
//   --indent          pretty-print XML output
//   --time            report compile/execute wall-clock times
//
// examples:
//   xqp --xmark 0.1 'count(doc("xmark.xml")//item)'
//   xqp --doc bib=books.xml --explain 'for $b in doc("bib")//book ...'

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "engine.h"
#include "xmark/generator.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: xqp [--doc uri=path]... [--xmark scale] [--eager]\n"
               "           [--no-optimize] [--no-context] [--explain]\n"
               "           [--indent] [--time] (<query> | -f query.xq)\n");
  return 2;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xqp;

  std::vector<std::pair<std::string, std::string>> docs;  // (uri, path).
  double xmark_scale = -1;
  bool eager = false;
  bool optimize = true;
  bool bind_context = true;
  bool explain = false;
  bool indent = false;
  bool timing = false;
  std::string query;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return ++i < argc ? argv[i] : nullptr;
    };
    if (arg == "--doc") {
      const char* value = next();
      if (value == nullptr) return Usage();
      const char* eq = std::strchr(value, '=');
      if (eq == nullptr) return Usage();
      docs.emplace_back(std::string(value, eq), std::string(eq + 1));
    } else if (arg == "--xmark") {
      const char* value = next();
      if (value == nullptr) return Usage();
      xmark_scale = std::atof(value);
    } else if (arg == "--eager") {
      eager = true;
    } else if (arg == "--no-optimize") {
      optimize = false;
    } else if (arg == "--no-context") {
      bind_context = false;
    } else if (arg == "--explain") {
      explain = true;
    } else if (arg == "--indent") {
      indent = true;
    } else if (arg == "--time") {
      timing = true;
    } else if (arg == "-f") {
      const char* path = next();
      if (path == nullptr) return Usage();
      if (!ReadFile(path, &query)) {
        std::fprintf(stderr, "xqp: cannot read %s\n", path);
        return 1;
      }
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "xqp: unknown option %s\n", arg.c_str());
      return Usage();
    } else {
      query = arg;
    }
  }
  if (query.empty()) return Usage();

  XQueryEngine engine;
  std::shared_ptr<const Document> context_doc;
  for (const auto& [uri, path] : docs) {
    std::string xml;
    if (!ReadFile(path, &xml)) {
      std::fprintf(stderr, "xqp: cannot read %s\n", path.c_str());
      return 1;
    }
    auto doc = engine.ParseAndRegister(uri, xml);
    if (!doc.ok()) {
      std::fprintf(stderr, "xqp: %s: %s\n", path.c_str(),
                   doc.status().ToString().c_str());
      return 1;
    }
    if (context_doc == nullptr) context_doc = *doc;
  }
  if (xmark_scale > 0) {
    XMarkOptions options;
    options.scale = xmark_scale;
    auto doc = engine.ParseAndRegister("xmark.xml", GenerateXMarkXml(options));
    if (!doc.ok()) {
      std::fprintf(stderr, "xqp: xmark: %s\n",
                   doc.status().ToString().c_str());
      return 1;
    }
    if (context_doc == nullptr) context_doc = *doc;
  }

  auto t0 = std::chrono::steady_clock::now();
  XQueryEngine::CompileOptions copts;
  copts.optimize = optimize;
  auto compiled = engine.Compile(query, copts);
  if (!compiled.ok()) {
    std::fprintf(stderr, "xqp: %s\n", compiled.status().ToString().c_str());
    return 1;
  }
  double compile_ms = MillisSince(t0);

  if (explain) {
    std::fprintf(stderr, "plan: %s\n", (*compiled)->Explain().c_str());
    for (const auto& [rule, count] : (*compiled)->rewrite_stats()) {
      std::fprintf(stderr, "  %-24s x%d\n", rule.c_str(), count);
    }
  }

  CompiledQuery::ExecOptions eopts;
  eopts.use_lazy_engine = !eager;
  if (bind_context && context_doc != nullptr) {
    eopts.has_context_item = true;
    eopts.context_item = Item(Node(context_doc, 0));
  }
  t0 = std::chrono::steady_clock::now();
  auto result = (*compiled)->Execute(eopts);
  double exec_ms = MillisSince(t0);
  if (!result.ok()) {
    std::fprintf(stderr, "xqp: %s\n", result.status().ToString().c_str());
    return 1;
  }
  SerializeOptions sopts;
  sopts.indent = indent;
  auto xml = SerializeSequence(*result, sopts);
  if (!xml.ok()) {
    std::fprintf(stderr, "xqp: %s\n", xml.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", xml->c_str());
  if (timing) {
    std::fprintf(stderr, "compile: %.2f ms, execute: %.2f ms, items: %zu\n",
                 compile_ms, exec_ms, result->size());
  }
  return 0;
}
