#ifndef XQP_TOOLS_FUZZ_COMMON_H_
#define XQP_TOOLS_FUZZ_COMMON_H_

// Shared driver for the fuzz targets. Built two ways:
//
//   -DXQP_FUZZ=ON   libFuzzer owns main(); the target only provides
//                   LLVMFuzzerTestOneInput (requires clang's
//                   -fsanitize=fuzzer).
//   default         XQP_FUZZ_STANDALONE_MAIN expands to a main() that runs
//                   a deterministic mutation smoke loop over the target's
//                   seed corpus — the ctest entry that keeps the fuzz entry
//                   points honest on every CI run, no libFuzzer needed.
//
// The standalone loop is fully deterministic (SplitMix64 from a fixed
// seed), so a smoke failure reproduces exactly.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "base/string_util.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace xqp {
namespace fuzz {

/// Applies one deterministic mutation to `buf` in place.
inline void MutateOnce(std::string* buf, SplitMix64* rng) {
  switch (rng->Below(5)) {
    case 0:  // Flip a byte.
      if (!buf->empty()) {
        (*buf)[rng->Below(buf->size())] =
            static_cast<char>(rng->Below(256));
      }
      break;
    case 1:  // Insert a byte.
      buf->insert(buf->begin() + rng->Below(buf->size() + 1),
                  static_cast<char>(rng->Below(256)));
      break;
    case 2:  // Truncate.
      if (!buf->empty()) buf->resize(rng->Below(buf->size()));
      break;
    case 3:  // Duplicate a slice.
      if (!buf->empty()) {
        size_t from = rng->Below(buf->size());
        size_t len = rng->Below(buf->size() - from) + 1;
        buf->insert(rng->Below(buf->size()), buf->substr(from, len));
      }
      break;
    default:  // Swap two bytes.
      if (buf->size() >= 2) {
        std::swap((*buf)[rng->Below(buf->size())],
                  (*buf)[rng->Below(buf->size())]);
      }
      break;
  }
}

/// The standalone smoke driver: `iters` deterministic mutants per seed
/// (default 20000 total), each fed to LLVMFuzzerTestOneInput. Any crash /
/// sanitizer report fails the process; "clean" exits 0.
inline int SmokeMain(int argc, char** argv,
                     const std::vector<std::string>& corpus) {
  uint64_t iters = 20000;
  for (int i = 1; i < argc - 1; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      iters = std::strtoull(argv[i + 1], nullptr, 10);
    }
  }
  SplitMix64 rng(0x5eed5eed5eed5eedULL);
  uint64_t executed = 0;
  while (executed < iters) {
    for (const std::string& seed : corpus) {
      std::string buf = seed;
      // A short mutation chain per run drifts inputs away from the seeds
      // without losing all structure.
      uint64_t chain = rng.Below(8) + 1;
      for (uint64_t m = 0; m < chain; ++m) MutateOnce(&buf, &rng);
      LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(buf.data()),
                             buf.size());
      if (++executed >= iters) break;
    }
  }
  std::printf("smoke fuzz clean: %llu inputs\n",
              static_cast<unsigned long long>(executed));
  return 0;
}

}  // namespace fuzz
}  // namespace xqp

#ifdef XQP_FUZZ_LIBFUZZER
#define XQP_FUZZ_STANDALONE_MAIN(corpus)
#else
#define XQP_FUZZ_STANDALONE_MAIN(corpus) \
  int main(int argc, char** argv) {      \
    return xqp::fuzz::SmokeMain(argc, argv, corpus); \
  }
#endif

#endif  // XQP_TOOLS_FUZZ_COMMON_H_
