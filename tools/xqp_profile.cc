// xqp_profile — per-operator EXPLAIN/PROFILE for XMark (or ad-hoc) queries.
//
//   xqp_profile --query Q06 --scale 20
//   xqp_profile --query Q06 --scale 20 --json
//   xqp_profile --text 'count(doc("xmark.xml")//item)' --scale 10
//
// options:
//   --query ID        run an XMark benchmark query by id (Q1/Q06/6 all
//                     name the same query)
//   --text QUERY      run an arbitrary query against the generated XMark
//                     document (registered as doc('xmark.xml'))
//   --scale N         XMark scale in permille: N=20 generates scale 0.02,
//                     matching the benchmark suite's Arg(n) convention
//                     (default 20)
//   --json            emit the profile as one JSON object instead of text
//   --explain-only    print the optimized operator tree (annotated for the
//                     selected backend) and exit (no run)
//   --eager           profile the eager reference interpreter instead of
//                     the lazy streaming engine (same as --backend eager)
//   --backend B       execution backend: lazy, eager, or vm (overrides
//                     XQP_BACKEND; default lazy)
//   --threads N       worker threads for parallel kernels (0 = default)
//   --snapshot DIR    persist/reuse the XMark document as a snapshot in
//                     DIR (EngineOptions::snapshot_dir): the first run
//                     parses and saves, later runs mmap the snapshot —
//                     profiles then measure pure query cost over the
//                     storage-loaded document
//   --check           exit non-zero unless the plan root's item count
//                     equals the result cardinality (CI self-test)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "engine.h"
#include "index/index_planner.h"
#include "opt/access_path.h"
#include "xmark/generator.h"
#include "xmark/queries.h"

namespace {

/// Pre-order scan for the outermost index-answerable path in the plan.
const xqp::PathExpr* FindIndexedPath(const xqp::Expr& e) {
  if (e.kind() == xqp::ExprKind::kPath) {
    const auto& p = static_cast<const xqp::PathExpr&>(e);
    if (p.index_candidate) return &p;
  }
  for (size_t i = 0; i < e.NumChildren(); ++i) {
    if (const xqp::PathExpr* hit = FindIndexedPath(*e.child(i))) return hit;
  }
  return nullptr;
}

int Usage() {
  std::fprintf(stderr,
               "usage: xqp_profile (--query ID | --text QUERY) [--scale N]\n"
               "                   [--json] [--explain-only] [--eager]\n"
               "                   [--backend lazy|eager|vm] [--threads N]\n"
               "                   [--snapshot DIR] [--check]\n");
  return 2;
}

/// Accepts "Q06", "q6", or "6" for the query set's "Q6".
std::string NormalizeQueryId(const std::string& raw) {
  size_t i = 0;
  if (i < raw.size() && (raw[i] == 'Q' || raw[i] == 'q')) ++i;
  while (i + 1 < raw.size() && raw[i] == '0') ++i;
  return "Q" + raw.substr(i);
}

}  // namespace

int main(int argc, char** argv) {
  std::string query_id;
  std::string query_text;
  int scale_permille = 20;
  bool json = false;
  bool explain_only = false;
  bool eager = false;
  bool check = false;
  int threads = 0;
  std::string snapshot_dir;
  std::optional<xqp::ExecBackend> backend;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--query" && i + 1 < argc) {
      query_id = argv[++i];
    } else if (arg == "--text" && i + 1 < argc) {
      query_text = argv[++i];
    } else if (arg == "--scale" && i + 1 < argc) {
      scale_permille = std::atoi(argv[++i]);
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (arg == "--snapshot" && i + 1 < argc) {
      snapshot_dir = argv[++i];
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--explain-only") {
      explain_only = true;
    } else if (arg == "--eager") {
      eager = true;
    } else if (arg == "--backend" && i + 1 < argc) {
      std::string name = argv[++i];
      if (name == "lazy") {
        backend = xqp::ExecBackend::kLazy;
      } else if (name == "eager") {
        backend = xqp::ExecBackend::kEager;
      } else if (name == "vm") {
        backend = xqp::ExecBackend::kVm;
      } else {
        return Usage();
      }
    } else if (arg == "--check") {
      check = true;
    } else {
      return Usage();
    }
  }
  if (query_id.empty() == query_text.empty()) return Usage();  // Exactly one.
  if (scale_permille <= 0) return Usage();

  if (!query_id.empty()) {
    const xqp::XMarkQuery* q = xqp::FindXMarkQuery(NormalizeQueryId(query_id));
    if (q == nullptr) {
      std::fprintf(stderr, "unknown XMark query: %s\n", query_id.c_str());
      return 2;
    }
    query_text = q->text;
  }

  xqp::EngineOptions options;
  options.collect_stats = true;
  options.num_threads = threads;
  options.snapshot_dir = snapshot_dir;
  xqp::XQueryEngine engine(options);

  xqp::XMarkOptions xmark;
  xmark.scale = scale_permille / 1000.0;
  auto doc = engine.ParseAndRegister("xmark.xml", GenerateXMarkXml(xmark));
  if (!doc.ok()) {
    std::fprintf(stderr, "xmark generation failed: %s\n",
                 doc.status().ToString().c_str());
    return 1;
  }

  auto compiled = engine.Compile(query_text);
  if (!compiled.ok()) {
    std::fprintf(stderr, "compile error: %s\n",
                 compiled.status().ToString().c_str());
    return 1;
  }

  xqp::CompiledQuery::ExecOptions exec;
  exec.use_lazy_engine = !eager;
  exec.backend = backend;

  if (explain_only) {
    std::printf("backend: %s\n", xqp::ExecBackendName(
                                     compiled.value()->ResolvedBackend(exec)));
    // Warm the document's indexes first: EXPLAIN's access-path annotation
    // peeks at already-built indexes only, so the rendering below shows
    // the decision execution would make.
    auto indexes = engine.GetDocumentIndexes("xmark.xml");
    std::fputs(compiled.value()->ExplainTree(exec).c_str(), stdout);
    const xqp::Expr* body = compiled.value()->module().body.get();
    const xqp::PathExpr* marked =
        body == nullptr ? nullptr : FindIndexedPath(*body);
    std::optional<xqp::IndexQuery> plan;
    if (marked != nullptr) plan = xqp::PlanIndexPath(*marked);
    if (plan.has_value()) {
      std::printf("access path: %s on doc('%s')\n",
                  plan->HasPredicates() ? "value index" : "path synopsis",
                  plan->doc_uri.c_str());
      if (indexes.ok() && indexes.value() != nullptr) {
        xqp::AccessPathDecision d = xqp::ChooseAccessPath(
            *indexes.value(), *plan, engine.options().force_access_path);
        std::printf("chosen strategy: %s%s, est=%llu rows%s\n",
                    xqp::AccessPathName(d.chosen),
                    d.forced ? " (forced)" : "",
                    static_cast<unsigned long long>(d.card.rows),
                    d.card.exact ? " (exact)" : "");
      }
    } else {
      std::fputs("access path: twig / navigation fallback\n", stdout);
    }
    return 0;
  }

  auto report = compiled.value()->Profile(exec);
  if (!report.ok()) {
    std::fprintf(stderr, "execution error: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  if (json) {
    std::fputs(report.value().ToJson().c_str(), stdout);
    std::fputc('\n', stdout);
  } else {
    std::fputs(report.value().ToText().c_str(), stdout);
  }

  if (check) {
    const xqp::OpStats* root = report.value().RootStats();
    if (root == nullptr || root->items != report.value().result.size()) {
      std::fprintf(stderr,
                   "check failed: root items %llu != result cardinality %zu\n",
                   root == nullptr
                       ? 0ULL
                       : static_cast<unsigned long long>(root->items),
                   report.value().result.size());
      return 1;
    }
  }
  return 0;
}
