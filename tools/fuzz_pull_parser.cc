// Fuzz target for the XML pull parser / document builder: arbitrary bytes
// must produce either a Document or a clean kParseError — never a crash,
// hang, or sanitizer report. A tight max_parse_depth variant additionally
// exercises the depth-budget path on every input.

#include <string>
#include <string_view>
#include <vector>

#include "tools/fuzz_common.h"
#include "xml/document.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view xml(reinterpret_cast<const char*>(data), size);
  { auto r = xqp::Document::Parse(xml); (void)r; }
  {
    xqp::ParseOptions options;
    options.strip_whitespace = true;
    options.max_parse_depth = 16;
    auto r = xqp::Document::Parse(xml, options);
    (void)r;
  }
  return 0;
}

namespace {
const std::vector<std::string> kCorpus = {
    "<a><b x=\"1\">t</b><!--c--><?pi d?></a>",
    "<r xmlns:p=\"u\"><p:e p:a='v'>&lt;&#65;</p:e><![CDATA[<raw>]]></r>",
    "<?xml version=\"1.0\"?><!DOCTYPE r><r>  <s/>  </r>",
    "<a><a><a><a><a><a>deep</a></a></a></a></a></a>",
};
}  // namespace

XQP_FUZZ_STANDALONE_MAIN(kCorpus)
