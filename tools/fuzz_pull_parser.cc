// Fuzz target for the XML pull parser / document builder: arbitrary bytes
// must produce either a Document or a clean kParseError — never a crash,
// hang, or sanitizer report. A tight max_parse_depth variant additionally
// exercises the depth-budget path on every input.
//
// Every input is also differentially cross-checked against the frozen seed
// parser (tests/reference_parser.h): the fast path must produce the same
// event stream and the byte-identical error status, or the process aborts
// with a minimized report.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "tests/reference_parser.h"
#include "tools/fuzz_common.h"
#include "xml/document.h"
#include "xml/pull_parser.h"

namespace {

std::string RenderQName(const xqp::QName& q) {
  return "{" + q.uri + "}" + q.prefix + ":" + q.local;
}

// Pumps the fast parser into a canonical rendering; errors render as
// "ERR:<status>".
std::string RenderFast(std::string_view xml, const xqp::ParseOptions& opts) {
  xqp::XmlPullParser parser(xml, opts);
  std::string out;
  while (true) {
    auto next = parser.Next();
    if (!next.ok()) {
      out += "ERR:" + next.status().ToString();
      return out;
    }
    const xqp::XmlEvent* e = next.value();
    if (e == nullptr) return out;
    out += std::to_string(static_cast<int>(e->type));
    out += "|" + RenderQName(e->name) + "|";
    out.append(e->text);
    for (const auto& a : e->attributes) {
      out += "|A:" + RenderQName(a.name) + "=";
      out.append(a.value);
    }
    for (const auto& ns : e->ns_decls) {
      out += "|N:" + ns.prefix + "=" + ns.uri;
    }
    out += "\n";
  }
}

std::string RenderReference(std::string_view xml,
                            const xqp::ParseOptions& opts) {
  xqp::reference::RefXmlPullParser parser(xml, opts);
  std::string out;
  while (true) {
    auto next = parser.Next();
    if (!next.ok()) {
      out += "ERR:" + next.status().ToString();
      return out;
    }
    const xqp::reference::RefXmlEvent* e = next.value();
    if (e == nullptr) return out;
    out += std::to_string(static_cast<int>(e->type));
    out += "|" + RenderQName(e->name) + "|" + e->text;
    for (const auto& a : e->attributes) {
      out += "|A:" + RenderQName(a.name) + "=" + a.value;
    }
    for (const auto& ns : e->ns_decls) {
      out += "|N:" + ns.prefix + "=" + ns.uri;
    }
    out += "\n";
  }
}

void CrossCheck(std::string_view xml, const xqp::ParseOptions& opts) {
  std::string fast = RenderFast(xml, opts);
  std::string ref = RenderReference(xml, opts);
  if (fast != ref) {
    std::fprintf(stderr,
                 "ingest divergence on %zu-byte input:\n--- input ---\n%.*s\n"
                 "--- fast ---\n%s\n--- reference ---\n%s\n",
                 xml.size(), static_cast<int>(xml.size() > 512 ? 512
                                                               : xml.size()),
                 xml.data(), fast.c_str(), ref.c_str());
    std::abort();
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view xml(reinterpret_cast<const char*>(data), size);
  { auto r = xqp::Document::Parse(xml); (void)r; }
  {
    xqp::ParseOptions options;
    options.strip_whitespace = true;
    options.max_parse_depth = 16;
    auto r = xqp::Document::Parse(xml, options);
    (void)r;
  }
  CrossCheck(xml, xqp::ParseOptions{});
  {
    xqp::ParseOptions options;
    options.strip_whitespace = true;
    options.max_parse_depth = 16;
    CrossCheck(xml, options);
  }
  return 0;
}

namespace {
const std::vector<std::string> kCorpus = {
    "<a><b x=\"1\">t</b><!--c--><?pi d?></a>",
    "<r xmlns:p=\"u\"><p:e p:a='v'>&lt;&#65;</p:e><![CDATA[<raw>]]></r>",
    "<?xml version=\"1.0\"?><!DOCTYPE r><r>  <s/>  </r>",
    "<a><a><a><a><a><a>deep</a></a></a></a></a></a>",
};
}  // namespace

XQP_FUZZ_STANDALONE_MAIN(kCorpus)
