// Fuzz target for the snapshot loader: arbitrary bytes fed through
// OpenSnapshotBuffer must produce either a fully validated snapshot or a
// clean kSnapshotCorrupt — never a crash, hang, out-of-bounds read, or
// sanitizer report. The seed corpus is built from real serialized
// snapshots (document only, and document + tokens + indexes), so mutants
// reach the deep validation stages — section table, node-table structural
// replay, postings/value sortedness — instead of dying at the magic check.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "index/document_indexes.h"
#include "storage/snapshot.h"
#include "tokens/token_stream.h"
#include "tools/fuzz_common.h"
#include "xml/document.h"

namespace {

/// If the mutant validated, every pointer the loader handed out must be
/// usable: walk the document, pool, tokens, and index postings so ASan
/// proves the adopted views stay in bounds.
void TouchLoaded(const xqp::storage::LoadedSnapshot& s) {
  const xqp::Document& doc = *s.document;
  size_t sink = doc.StringValue(0).size();
  for (xqp::NodeIndex i = 0; i < doc.NumNodes(); ++i) {
    sink += doc.value(i).size();
    if (doc.node(i).name_id != xqp::kNoName) sink += doc.name(i).local.size();
  }
  if (s.tokens != nullptr) {
    for (size_t i = 0; i < s.tokens->size(); ++i) {
      sink += s.tokens->value(s.tokens->token(i)).size();
    }
  }
  if (s.indexes != nullptr) {
    for (size_t p = 0; p < s.indexes->NumSynopsisNodes(); ++p) {
      const auto n = static_cast<int32_t>(p);
      sink += s.indexes->postings(n).size();
      if (const auto* v = s.indexes->values(n)) sink += v->by_string.size();
    }
  }
  // Keep the walks observable.
  volatile size_t keep = sink;
  (void)keep;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  auto bytes = std::make_shared<const std::string>(
      reinterpret_cast<const char*>(data), size);
  auto r = xqp::storage::OpenSnapshotBuffer(bytes);
  if (r.ok()) TouchLoaded(r.value());
  return 0;
}

namespace {

std::string SerializeSeed(bool with_tokens, bool with_indexes) {
  auto doc = xqp::Document::Parse(
                 "<bib xmlns:p='u'><book year='1994'><p:t>a</p:t>"
                 "<price>65.95</price></book><book year='2000'>"
                 "<p:t>b</p:t><price>39.95</price><!--c--><?pi d?>"
                 "</book></bib>")
                 .value();
  doc->set_base_uri("seed.xml");
  xqp::storage::SnapshotInput input;
  input.doc = doc.get();
  xqp::TokenStream tokens;
  if (with_tokens) {
    tokens = xqp::TokenStream::FromDocument(*doc);
    input.tokens = &tokens;
  }
  std::shared_ptr<const xqp::DocumentIndexes> indexes;
  if (with_indexes) {
    indexes =
        xqp::DocumentIndexes::Build(doc, xqp::kIndexValueAll).value();
    input.indexes = indexes.get();
  }
  input.content_hash = 0x1234;
  input.content_bytes = 99;
  return xqp::storage::SerializeSnapshot(input).value();
}

std::vector<std::string> BuildCorpus() {
  std::vector<std::string> corpus;
  corpus.push_back(SerializeSeed(false, false));
  corpus.push_back(SerializeSeed(true, true));
  corpus.push_back(corpus.back().substr(0, 96));  // Header + partial table.
  corpus.push_back("XQPSNAP1garbage-after-the-magic");
  corpus.push_back(std::string(64, '\0'));
  return corpus;
}

const std::vector<std::string> kCorpus = BuildCorpus();

}  // namespace

XQP_FUZZ_STANDALONE_MAIN(kCorpus)
