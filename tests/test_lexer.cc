#include "query/lexer.h"

#include <gtest/gtest.h>

namespace xqp {
namespace {

std::vector<Tok> LexAll(std::string_view input) {
  Lexer lexer(input);
  std::vector<Tok> out;
  while (true) {
    auto t = lexer.Take();
    EXPECT_TRUE(t.ok()) << t.status().ToString();
    if (!t.ok() || t->type == TokType::kEof) break;
    out.push_back(std::move(t).value());
  }
  return out;
}

TEST(Lexer, NamesAndSymbols) {
  auto toks = LexAll("for $x in //a-b return $x");
  ASSERT_EQ(toks.size(), 9u);
  EXPECT_TRUE(toks[0].IsName("for"));
  EXPECT_TRUE(toks[1].IsSym(Sym::kDollar));
  EXPECT_TRUE(toks[2].IsName("x"));
  EXPECT_TRUE(toks[3].IsName("in"));
  EXPECT_TRUE(toks[4].IsSym(Sym::kSlashSlash));
  EXPECT_TRUE(toks[5].IsName("a-b"));  // '-' is a name character.
  EXPECT_TRUE(toks[6].IsName("return"));
}

TEST(Lexer, Numbers) {
  auto toks = LexAll("1 2.5 .5 3e2 4.5E-1");
  ASSERT_EQ(toks.size(), 5u);
  EXPECT_EQ(toks[0].type, TokType::kInteger);
  EXPECT_EQ(toks[0].ival, 1);
  EXPECT_EQ(toks[1].type, TokType::kDecimal);
  EXPECT_DOUBLE_EQ(toks[1].dval, 2.5);
  EXPECT_EQ(toks[2].type, TokType::kDecimal);
  EXPECT_DOUBLE_EQ(toks[2].dval, 0.5);
  EXPECT_EQ(toks[3].type, TokType::kDouble);
  EXPECT_DOUBLE_EQ(toks[3].dval, 300);
  EXPECT_EQ(toks[4].type, TokType::kDouble);
  EXPECT_DOUBLE_EQ(toks[4].dval, 0.45);
}

TEST(Lexer, RangeAfterInteger) {
  // "1..2" never appears, but "1 to 2" and (1,2) do; ensure ".." stays a
  // unit and integers do not absorb it.
  auto toks = LexAll("1 .. 2");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_TRUE(toks[1].IsSym(Sym::kDotDot));
}

TEST(Lexer, Strings) {
  auto toks = LexAll(R"("a""b" 'c''d' "x&lt;y")");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].text, "a\"b");  // Doubled-quote escape.
  EXPECT_EQ(toks[1].text, "c'd");
  EXPECT_EQ(toks[2].text, "x<y");  // Entity decoded.
}

TEST(Lexer, CompoundSymbols) {
  auto toks = LexAll(":= :: << >> <= >= != .. //");
  ASSERT_EQ(toks.size(), 9u);
  EXPECT_TRUE(toks[0].IsSym(Sym::kAssign));
  EXPECT_TRUE(toks[1].IsSym(Sym::kColonColon));
  EXPECT_TRUE(toks[2].IsSym(Sym::kLtLt));
  EXPECT_TRUE(toks[3].IsSym(Sym::kGtGt));
  EXPECT_TRUE(toks[4].IsSym(Sym::kLe));
  EXPECT_TRUE(toks[5].IsSym(Sym::kGe));
  EXPECT_TRUE(toks[6].IsSym(Sym::kNe));
  EXPECT_TRUE(toks[7].IsSym(Sym::kDotDot));
  EXPECT_TRUE(toks[8].IsSym(Sym::kSlashSlash));
}

TEST(Lexer, NestedComments) {
  auto toks = LexAll("1 (: outer (: inner :) still :) 2");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0].ival, 1);
  EXPECT_EQ(toks[1].ival, 2);
}

TEST(Lexer, UnterminatedCommentFails) {
  Lexer lexer("1 (: open");
  EXPECT_TRUE(lexer.Take().ok());
  EXPECT_FALSE(lexer.Take().ok());
}

TEST(Lexer, UnterminatedStringFails) {
  Lexer lexer("\"abc");
  EXPECT_FALSE(lexer.Take().ok());
}

TEST(Lexer, PositionsTrackAdjacency) {
  Lexer lexer("a:b a : b");
  auto t1 = std::move(lexer.Take()).value();  // a
  auto t2 = std::move(lexer.Take()).value();  // :
  auto t3 = std::move(lexer.Take()).value();  // b
  EXPECT_EQ(t2.pos, t1.end);  // Adjacent => one lexical QName.
  EXPECT_EQ(t3.pos, t2.end);
  auto t4 = std::move(lexer.Take()).value();  // a
  auto t5 = std::move(lexer.Take()).value();  // :
  EXPECT_GT(t5.pos, t4.end);  // Spaced => not a QName.
}

TEST(Lexer, PeekDoesNotConsume) {
  Lexer lexer("x y");
  auto p0 = lexer.Peek(0);
  auto p1 = lexer.Peek(1);
  ASSERT_TRUE(p0.ok());
  ASSERT_TRUE(p1.ok());
  EXPECT_EQ((*p0)->text, "x");
  EXPECT_EQ((*p1)->text, "y");
  EXPECT_EQ(std::move(lexer.Take()).value().text, "x");
}

TEST(Lexer, SetPosRewinds) {
  Lexer lexer("abc def");
  auto first = std::move(lexer.Take()).value();
  EXPECT_EQ(std::move(lexer.Take()).value().text, "def");
  lexer.SetPos(first.pos);
  EXPECT_EQ(std::move(lexer.Take()).value().text, "abc");
}

TEST(Lexer, ErrorHasLineColumn) {
  Lexer lexer("x\n  #");
  EXPECT_TRUE(lexer.Take().ok());
  auto bad = lexer.Take();
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("2:"), std::string::npos);
}

}  // namespace
}  // namespace xqp
