#include "tokens/token_iterator.h"
#include "tokens/token_stream.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace xqp {
namespace {

using testing_util::RandomXml;

/// Renders any token iterator to a compact trace.
std::vector<std::string> Trace(TokenIterator* it) {
  std::vector<std::string> out;
  EXPECT_TRUE(it->Open().ok());
  while (true) {
    auto t = it->Next();
    EXPECT_TRUE(t.ok()) << t.status().ToString();
    if (!t.ok() || t.value() == nullptr) break;
    const Token& token = *t.value();
    std::string s(TokenKindName(token.kind));
    if (token.kind == TokenKind::kStartElement ||
        token.kind == TokenKind::kAttribute ||
        token.kind == TokenKind::kProcessingInstruction) {
      s += ":" + it->name(token).local;
    }
    if (token.value_id != kNoValue || token.kind == TokenKind::kNamespaceDecl) {
      s += "=" + std::string(it->value(token));
    }
    out.push_back(std::move(s));
  }
  EXPECT_TRUE(it->Close().ok());
  return out;
}

TEST(TokenStream, FromDocumentMatchesPaperShape) {
  auto doc = Document::Parse("<order id=\"4711\"><date>2003-08-19</date>"
                             "<lineitem/></order>")
                 .value();
  TokenStream ts = TokenStream::FromDocument(*doc);
  StreamTokenIterator it(&ts);
  EXPECT_EQ(Trace(&it), (std::vector<std::string>{
                            "BD", "BE:order", "ATTR:id=4711", "BE:date",
                            "TEXT=2003-08-19", "EE", "BE:lineitem", "EE", "EE",
                            "ED"}));
}

TEST(TokenStream, FromXmlEqualsFromDocument) {
  std::string xml = RandomXml(3, 120);
  auto doc = Document::Parse(xml).value();
  TokenStream from_doc = TokenStream::FromDocument(*doc);
  TokenStream from_xml = std::move(TokenStream::FromXml(xml)).ValueOrDie();
  StreamTokenIterator a(&from_doc);
  StreamTokenIterator b(&from_xml);
  EXPECT_EQ(Trace(&a), Trace(&b));
}

TEST(TokenStream, DocumentIteratorEqualsStream) {
  std::string xml = RandomXml(4, 150);
  auto doc = Document::Parse(xml).value();
  TokenStream ts = TokenStream::FromDocument(*doc);
  StreamTokenIterator a(&ts);
  DocumentTokenIterator b(doc);
  EXPECT_EQ(Trace(&a), Trace(&b));
}

TEST(TokenStream, ParserIteratorEqualsStream) {
  std::string xml = RandomXml(5, 150);
  TokenStream ts = std::move(TokenStream::FromXml(xml)).ValueOrDie();
  StreamTokenIterator a(&ts);
  ParserTokenIterator b(xml);
  EXPECT_EQ(Trace(&a), Trace(&b));
}

TEST(TokenIterator, SkipJumpsSubtree) {
  auto doc =
      Document::Parse("<r><a><deep><deeper/></deep></a><b/></r>").value();
  TokenStream ts = TokenStream::FromDocument(*doc);
  StreamTokenIterator it(&ts);
  XQP_ASSERT_OK(it.Open());
  // BD, BE:r, BE:a.
  for (int i = 0; i < 3; ++i) {
    auto t = it.Next();
    ASSERT_TRUE(t.ok());
  }
  XQP_ASSERT_OK(it.Skip());  // Skip the rest of <a>'s subtree.
  auto t = it.Next();
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t.value()->kind, TokenKind::kStartElement);
  EXPECT_EQ(it.name(*t.value()).local, "b");
}

TEST(TokenIterator, SkipVariantsAgree) {
  std::string xml = RandomXml(6, 200);
  auto doc = Document::Parse(xml).value();
  TokenStream ts = TokenStream::FromDocument(*doc);

  auto skip_every_third = [](TokenIterator* it) {
    std::vector<std::string> out;
    EXPECT_TRUE(it->Open().ok());
    int n = 0;
    while (true) {
      auto t = it->Next();
      EXPECT_TRUE(t.ok());
      if (!t.ok() || t.value() == nullptr) break;
      out.push_back(std::string(TokenKindName(t.value()->kind)));
      if (++n % 3 == 0) {
        EXPECT_TRUE(it->Skip().ok());
      }
    }
    return out;
  };

  StreamTokenIterator fast(&ts);
  ScanOnlyTokenIterator slow(&ts);
  DocumentTokenIterator direct(doc);
  ParserTokenIterator parser(xml);
  auto expected = skip_every_third(&fast);
  EXPECT_EQ(skip_every_third(&slow), expected);
  EXPECT_EQ(skip_every_third(&direct), expected);
  EXPECT_EQ(skip_every_third(&parser), expected);
}

TEST(TokenSink, SerializeTokensRoundTrip) {
  std::string xml = "<a p=\"1\"><b>text</b><!--c--><?pi d?></a>";
  ParserTokenIterator it(xml);
  auto out = SerializeTokens(&it);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, xml);
}

TEST(TokenSink, DocumentSinkBuildsEqualDocument) {
  std::string xml = RandomXml(8, 100);
  auto doc = Document::Parse(xml).value();
  DocumentTokenIterator it(doc);
  DocumentSink sink;
  XQP_ASSERT_OK(it.Open());
  XQP_ASSERT_OK(PumpTokens(&it, &sink));
  auto copy = std::move(sink.Finish()).ValueOrDie();
  EXPECT_EQ(copy->NumNodes(), doc->NumNodes());
}

TEST(TokenStream, NodeIdsOptional) {
  auto doc = Document::Parse("<a><b/></a>").value();
  TokenStreamOptions with;
  TokenStreamOptions without;
  without.with_node_ids = false;
  TokenStream ts_with = TokenStream::FromDocument(*doc, with);
  TokenStream ts_without = TokenStream::FromDocument(*doc, without);
  EXPECT_NE(ts_with.token(1).node_id, kNullNode);
  EXPECT_EQ(ts_without.token(1).node_id, kNullNode);
}

TEST(TokenStream, PoolingDeduplicatesValues) {
  std::string xml = "<r>";
  for (int i = 0; i < 50; ++i) xml += "<x>dup</x>";
  xml += "</r>";
  TokenStreamOptions pooled;
  TokenStreamOptions unpooled;
  unpooled.pool_strings = false;
  auto a = std::move(TokenStream::FromXml(xml, pooled)).ValueOrDie();
  auto b = std::move(TokenStream::FromXml(xml, unpooled)).ValueOrDie();
  EXPECT_LT(a.MemoryUsage(), b.MemoryUsage());
}

TEST(TokenStream, SealSkipLinksIdempotent) {
  auto doc = Document::Parse("<a><b><c/></b></a>").value();
  TokenStream ts = TokenStream::FromDocument(*doc);
  // token 1 = BE:a; its skip target is the final EE+1.
  uint32_t before = ts.token(1).skip_to;
  ts.SealSkipLinks();
  EXPECT_EQ(ts.token(1).skip_to, before);
  EXPECT_GT(before, 1u);
}

}  // namespace
}  // namespace xqp
