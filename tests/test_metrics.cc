// Tests for the observability subsystem: striped counters and log2-bucket
// histograms (exact count/sum/min/max, bounded percentiles, correctness
// under concurrent recording from the thread pool), registry snapshots and
// deltas, EXPLAIN output stability, and the profile invariant that the plan
// root's item count equals the query's result cardinality on both engines.

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "base/metrics.h"
#include "base/parallel.h"
#include "engine.h"
#include "xmark/generator.h"

namespace xqp {
namespace {

using metrics::Counter;
using metrics::Histogram;
using metrics::MetricsRegistry;
using metrics::MetricsSnapshot;

TEST(CounterTest, SingleThreadExact) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(CounterTest, ConcurrentIncrementsMergeExactly) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Value(), uint64_t(kThreads) * kPerThread);
}

TEST(CounterTest, RecordingFromPoolWorkersIsExact) {
  // ParallelForChunks runs chunks on pool workers and the caller; every
  // increment must land regardless of which thread executed the chunk.
  Counter c;
  constexpr size_t kChunks = 64;
  constexpr uint64_t kPerChunk = 1000;
  ParallelForChunks(kChunks, [&c](size_t) {
    for (uint64_t i = 0; i < kPerChunk; ++i) c.Add(3);
  });
  EXPECT_EQ(c.Value(), kChunks * kPerChunk * 3);
}

TEST(HistogramTest, CountSumMinMaxExact) {
  Histogram h;
  auto empty = h.TakeSnapshot();
  EXPECT_EQ(empty.count, 0u);
  EXPECT_EQ(empty.Percentile(50), 0u);
  EXPECT_EQ(empty.Mean(), 0.0);

  for (uint64_t v : {7u, 0u, 100u, 3u, 100000u}) h.Record(v);
  auto s = h.TakeSnapshot();
  EXPECT_EQ(s.count, 5u);
  EXPECT_EQ(s.sum, 7u + 0u + 100u + 3u + 100000u);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 100000u);
  EXPECT_DOUBLE_EQ(s.Mean(), double(s.sum) / 5.0);
}

TEST(HistogramTest, PercentileBoundsAndEndpoints) {
  Histogram h;
  for (uint64_t v : {1u, 2u, 3u, 4u, 1000u}) h.Record(v);
  auto s = h.TakeSnapshot();
  // Endpoints are exact.
  EXPECT_EQ(s.Percentile(0), 1u);
  EXPECT_EQ(s.Percentile(100), 1000u);
  // Interior percentiles resolve to a bucket's inclusive upper bound: the
  // result is >= the true value and < 2x the true value (log2 buckets).
  // The median of {1,2,3,4,1000} is 3, whose bucket [2,3] tops out at 3.
  EXPECT_EQ(s.Percentile(50), 3u);
  // Rank floor(0.95 * 5) = 4 selects the value 4, bucket [4,7] -> bound 7.
  EXPECT_EQ(s.Percentile(95), 7u);
}

TEST(HistogramTest, SingleValueAllPercentilesEqual) {
  Histogram h;
  h.Record(42);
  auto s = h.TakeSnapshot();
  EXPECT_EQ(s.min, 42u);
  EXPECT_EQ(s.max, 42u);
  // Bucket bound for 42 is 63, clamped to max = 42.
  for (double p : {0.0, 25.0, 50.0, 75.0, 99.0, 100.0}) {
    EXPECT_EQ(s.Percentile(p), 42u) << "p=" << p;
  }
}

TEST(HistogramTest, ConcurrentRecordingExactAggregates) {
  Histogram h;
  constexpr size_t kChunks = 32;
  constexpr uint64_t kPerChunk = 5000;
  ParallelForChunks(kChunks, [&h](size_t chunk) {
    for (uint64_t i = 0; i < kPerChunk; ++i) h.Record(chunk * kPerChunk + i);
  });
  auto s = h.TakeSnapshot();
  const uint64_t n = kChunks * kPerChunk;
  EXPECT_EQ(s.count, n);
  EXPECT_EQ(s.sum, n * (n - 1) / 2);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, n - 1);
}

TEST(ScopedTimerTest, NullHistogramIsNoOp) {
  metrics::ScopedTimer t(nullptr);  // Must not crash or record anything.
}

TEST(ScopedTimerTest, RecordsOneSample) {
  Histogram h;
  { metrics::ScopedTimer t(&h); }
  auto s = h.TakeSnapshot();
  EXPECT_EQ(s.count, 1u);
}

TEST(RegistryTest, SameNameSameObject) {
  auto& reg = MetricsRegistry::Global();
  Counter* a = reg.counter("test.registry.same");
  Counter* b = reg.counter("test.registry.same");
  EXPECT_EQ(a, b);
  Histogram* ha = reg.histogram("test.registry.same_h");
  Histogram* hb = reg.histogram("test.registry.same_h");
  EXPECT_EQ(ha, hb);
}

TEST(RegistryTest, SnapshotDeltaIsPerRun) {
  auto& reg = MetricsRegistry::Global();
  Counter* c = reg.counter("test.registry.delta");
  Histogram* h = reg.histogram("test.registry.delta_h");
  c->Add(5);
  h->Record(10);
  MetricsSnapshot before = reg.Snapshot();
  c->Add(7);
  h->Record(20);
  h->Record(30);
  MetricsSnapshot delta = reg.Snapshot().Delta(before);
  EXPECT_EQ(delta.counters.at("test.registry.delta"), 7u);
  EXPECT_EQ(delta.histograms.at("test.registry.delta_h").count, 2u);
  EXPECT_EQ(delta.histograms.at("test.registry.delta_h").sum, 50u);
}

TEST(RegistryTest, OpMetricsRegistersTriple) {
  metrics::OpMetrics m("test.registry.op");
  auto& reg = MetricsRegistry::Global();
  EXPECT_EQ(m.calls, reg.counter("test.registry.op.calls"));
  EXPECT_EQ(m.items, reg.counter("test.registry.op.items"));
  EXPECT_EQ(m.wall_ns, reg.histogram("test.registry.op.wall_ns"));
}

TEST(RegistryTest, ConcurrentRegistrationAndSnapshot) {
  auto& reg = MetricsRegistry::Global();
  ParallelForChunks(16, [&reg](size_t chunk) {
    std::string name = "test.registry.concurrent." + std::to_string(chunk % 4);
    for (int i = 0; i < 1000; ++i) reg.counter(name)->Increment();
    (void)reg.Snapshot();  // Snapshots race with registration safely.
  });
  MetricsSnapshot s = reg.Snapshot();
  uint64_t total = 0;
  for (int k = 0; k < 4; ++k) {
    total += s.counters.at("test.registry.concurrent." + std::to_string(k));
  }
  EXPECT_EQ(total, 16u * 1000u);
}

// --- EXPLAIN / PROFILE on real queries ------------------------------------

std::unique_ptr<XQueryEngine> SmallXMarkEngine() {
  EngineOptions options;
  options.collect_stats = true;
  auto engine = std::make_unique<XQueryEngine>(options);
  XMarkOptions xmark;
  xmark.scale = 0.01;
  auto doc = engine->ParseAndRegister("xmark.xml", GenerateXMarkXml(xmark));
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  return engine;
}

/// EXPLAIN output is part of the tool contract — golden strings so plan
/// rendering (or an optimizer change that alters these plans) fails loudly
/// here instead of silently changing xqp_profile output.
TEST(ExplainTest, CanonicalPlansAreStable) {
  auto engine = SmallXMarkEngine();

  auto path = engine->Compile(
      "doc('xmark.xml')/site/open_auctions/open_auction/bidder/increase");
  ASSERT_TRUE(path.ok()) << path.status().ToString();
  EXPECT_EQ(path.value()->ExplainTree(),
            "path [index]\n"
            "  path [index]\n"
            "    path [index]\n"
            "      path [index]\n"
            "        path [index]\n"
            "          call doc\n"
            "            literal xmark.xml\n"
            "          step child::site\n"
            "        step child::open_auctions\n"
            "      step child::open_auction\n"
            "    step child::bidder\n"
            "  step child::increase\n");

  auto count = engine->Compile("count(doc('xmark.xml')//item)");
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(count.value()->ExplainTree(),
            "call count\n"
            "  path [index]\n"
            "    call doc\n"
            "      literal xmark.xml\n"
            "    step descendant::item\n");

  auto flwor = engine->Compile(
      "for $i in doc('xmark.xml')//item where $i/payment return $i/name");
  ASSERT_TRUE(flwor.ok()) << flwor.status().ToString();
  EXPECT_EQ(flwor.value()->ExplainTree(),
            "flwor\n"
            "  for $i in: path [index]\n"
            "    call doc\n"
            "      literal xmark.xml\n"
            "    step descendant::item\n"
            "  where: path [sort dedup]\n"
            "    var $i\n"
            "    step child::payment\n"
            "  return: path [sort dedup]\n"
            "    var $i\n"
            "    step child::name\n");
}

/// The acceptance invariant: the plan root's profiled item count equals the
/// result cardinality, for both the lazy and the eager engine.
TEST(ProfileTest, RootItemsMatchCardinalityBothEngines) {
  auto engine = SmallXMarkEngine();
  const char* queries[] = {
      "doc('xmark.xml')/site/open_auctions/open_auction/bidder/increase",
      "count(doc('xmark.xml')//item)",
      "for $i in doc('xmark.xml')//item where $i/payment return $i/name",
      "for $i in doc('xmark.xml')//item order by $i/name return $i/name",
  };
  for (const char* q : queries) {
    auto compiled = engine->Compile(q);
    ASSERT_TRUE(compiled.ok()) << q << ": " << compiled.status().ToString();
    for (bool lazy : {true, false}) {
      CompiledQuery::ExecOptions exec;
      exec.use_lazy_engine = lazy;
      auto report = compiled.value()->Profile(exec);
      ASSERT_TRUE(report.ok()) << q << ": " << report.status().ToString();
      const OpStats* root = report.value().RootStats();
      ASSERT_NE(root, nullptr) << q;
      EXPECT_EQ(root->items, report.value().result.size())
          << q << " (lazy=" << lazy << ")";
      EXPECT_GE(root->next_calls, 1u) << q;
      // Profile must match plain execution.
      auto plain = compiled.value()->Execute(exec);
      ASSERT_TRUE(plain.ok());
      EXPECT_EQ(plain.value().size(), report.value().result.size()) << q;
    }
  }
}

TEST(ProfileTest, ReportRendersTextAndJson) {
  auto engine = SmallXMarkEngine();
  auto compiled = engine->Compile("count(doc('xmark.xml')//item)");
  ASSERT_TRUE(compiled.ok());
  auto report = compiled.value()->Profile();
  ASSERT_TRUE(report.ok());
  std::string text = report.value().ToText();
  EXPECT_NE(text.find("call count"), std::string::npos);
  EXPECT_NE(text.find("step descendant::item"), std::string::npos);
  std::string json = report.value().ToJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"result_items\":1"), std::string::npos);
  EXPECT_NE(json.find("\"plan\":"), std::string::npos);
}

TEST(ProfileTest, DisabledEngineLeavesRegistryOff) {
  // A default-constructed engine must not flip the global registry on, and
  // Profile() must restore the previous enabled state afterwards.
  MetricsRegistry::Global().set_enabled(false);
  XQueryEngine engine;
  XMarkOptions xmark;
  xmark.scale = 0.01;
  ASSERT_TRUE(
      engine.ParseAndRegister("xmark.xml", GenerateXMarkXml(xmark)).ok());
  EXPECT_FALSE(metrics::Enabled());
  auto compiled = engine.Compile("count(doc('xmark.xml')//item)");
  ASSERT_TRUE(compiled.ok());
  auto report = compiled.value()->Profile();
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(metrics::Enabled());
  // The forced-on window still captured engine counters for the run.
  EXPECT_FALSE(report.value().engine_metrics.counters.empty());
}

}  // namespace
}  // namespace xqp
