// Persistent snapshot subsystem (storage/): bit-identical save/load
// roundtrips, the crash-atomic write protocol under injected faults, and a
// corruption matrix — bit flips, truncations, zeroed sections, and forged
// offsets/links over every section must come back as kSnapshotCorrupt and
// degrade to a clean re-ingest, never a crash or a wrong answer. Run under
// ASan/UBSan by tools/run_ci.sh.

#include <sys/stat.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/fault.h"
#include "engine.h"
#include "index/document_indexes.h"
#include "storage/crc32c.h"
#include "storage/snapshot.h"
#include "storage/snapshot_format.h"
#include "tests/test_util.h"
#include "tokens/token_stream.h"
#include "xml/document.h"

namespace xqp {
namespace {

using storage::LoadedSnapshot;
using storage::SectionEntry;
using storage::SectionId;
using storage::SnapshotHeader;
using storage::SnapshotInput;

// Namespaces, attributes, mixed content, comment, PI, CDATA, a pooled
// repeated string, an all-numeric path, and a mixed-type path — every
// snapshot section ends up non-trivial.
constexpr char kXml[] =
    "<bib xmlns:p='urn:pub'>"
    "<book year='1994'><p:title>TCP/IP</p:title><price>65.95</price>"
    "<note>dup</note></book>"
    "<book year='2000'><p:title>Data on the Web</p:title>"
    "<price>39.95</price><note>dup</note></book>"
    "<book year='1999'><p:title>no price</p:title><price>n/a</price>"
    "<!--c--><?pi data?><blob><![CDATA[<raw>]]></blob></book>"
    "</bib>";

std::shared_ptr<const Document> ParseDoc(std::string_view xml = kXml) {
  auto doc = Document::Parse(xml).value();
  doc->set_base_uri("bib.xml");
  return doc;
}

struct Frozen {
  std::shared_ptr<const Document> doc;
  TokenStream tokens;
  std::shared_ptr<const DocumentIndexes> indexes;
  SnapshotInput input;
};

Frozen FreezeAll(std::string_view xml = kXml) {
  Frozen f;
  f.doc = ParseDoc(xml);
  f.tokens = TokenStream::FromDocument(*f.doc);
  f.indexes = DocumentIndexes::Build(f.doc, kIndexValueAll).value();
  f.input.doc = f.doc.get();
  f.input.tokens = &f.tokens;
  f.input.indexes = f.indexes.get();
  f.input.content_hash = storage::HashContent(xml);
  f.input.content_bytes = xml.size();
  return f;
}

Result<LoadedSnapshot> OpenBytes(std::string bytes) {
  return storage::OpenSnapshotBuffer(
      std::make_shared<const std::string>(std::move(bytes)));
}

// --- corruption-matrix plumbing --------------------------------------------

SnapshotHeader ReadHeader(const std::string& bytes) {
  SnapshotHeader h;
  std::memcpy(&h, bytes.data(), sizeof(h));
  return h;
}

std::vector<SectionEntry> ReadTable(const std::string& bytes) {
  SnapshotHeader h = ReadHeader(bytes);
  std::vector<SectionEntry> table(h.section_count);
  std::memcpy(table.data(), bytes.data() + sizeof(h),
              h.section_count * sizeof(SectionEntry));
  return table;
}

/// Recomputes table_crc and header_crc after a deliberate header/table
/// edit, so the forged value reaches the validation stage it targets
/// instead of tripping the checksum.
void ResealHeader(std::string* bytes) {
  SnapshotHeader h = ReadHeader(*bytes);
  h.table_crc = storage::Crc32c(bytes->data() + sizeof(h),
                                h.section_count * sizeof(SectionEntry));
  h.header_crc = 0;
  std::memcpy(bytes->data(), &h, sizeof(h));
  h.header_crc = storage::Crc32c(bytes->data(), sizeof(h));
  std::memcpy(bytes->data(), &h, sizeof(h));
}

void WriteTableEntry(std::string* bytes, size_t i, const SectionEntry& e) {
  std::memcpy(bytes->data() + sizeof(SnapshotHeader) + i * sizeof(e), &e,
              sizeof(e));
  ResealHeader(bytes);
}

/// Recomputes section i's payload CRC (and the dependent table/header
/// CRCs) after a deliberate payload edit — forged content that must be
/// caught by structural validation, not the checksum.
void ResealSection(std::string* bytes, size_t i) {
  std::vector<SectionEntry> table = ReadTable(*bytes);
  table[i].crc = storage::Crc32c(bytes->data() + table[i].offset,
                                 table[i].size);
  WriteTableEntry(bytes, i, table[i]);
}

size_t SectionIndex(const std::vector<SectionEntry>& table, SectionId id) {
  for (size_t i = 0; i < table.size(); ++i) {
    if (table[i].id == static_cast<uint32_t>(id)) return i;
  }
  ADD_FAILURE() << "section " << static_cast<uint32_t>(id) << " missing";
  return 0;
}

/// Every outcome the matrix accepts: a clean typed error. Anything else —
/// crash, hang, wrong answer — fails the suite (or ASan) instead.
void ExpectCorrupt(std::string bytes, const std::string& what) {
  Result<LoadedSnapshot> r = OpenBytes(std::move(bytes));
  ASSERT_FALSE(r.ok()) << what << ": corruption went undetected";
  EXPECT_EQ(r.status().code(), StatusCode::kSnapshotCorrupt)
      << what << ": " << r.status().ToString();
}

// --- roundtrip fidelity -----------------------------------------------------

TEST(SnapshotRoundtrip, DocumentIsBitIdentical) {
  Frozen f = FreezeAll();
  std::string bytes = storage::SerializeSnapshot(f.input).value();
  XQP_ASSERT_OK_AND_ASSIGN(LoadedSnapshot loaded, OpenBytes(bytes));
  const Document& a = *f.doc;
  const Document& b = *loaded.document;

  ASSERT_EQ(a.NumNodes(), b.NumNodes());
  for (NodeIndex i = 0; i < a.NumNodes(); ++i) {
    // Whole-record equality: every link, the region labels, and — because
    // pool ids are written positionally — the pool/name ids themselves.
    EXPECT_EQ(0, std::memcmp(&a.node(i), &b.node(i), sizeof(NodeRecord)))
        << "node " << i;
    EXPECT_EQ(a.value(i), b.value(i)) << "node " << i;
  }
  ASSERT_EQ(a.NumNames(), b.NumNames());
  for (uint32_t n = 0; n < a.NumNames(); ++n) {
    EXPECT_EQ(a.name_at(n).uri, b.name_at(n).uri);
    EXPECT_EQ(a.name_at(n).prefix, b.name_at(n).prefix);
    EXPECT_EQ(a.name_at(n).local, b.name_at(n).local);
  }
  EXPECT_EQ(a.base_uri(), b.base_uri());
  for (NodeIndex i = 0; i < a.NumNodes(); ++i) {
    const auto* na = a.NamespaceDecls(i);
    const auto* nb = b.NamespaceDecls(i);
    ASSERT_EQ(na == nullptr, nb == nullptr) << "node " << i;
    if (na == nullptr) continue;
    ASSERT_EQ(na->size(), nb->size());
    for (size_t d = 0; d < na->size(); ++d) {
      EXPECT_EQ((*na)[d].prefix, (*nb)[d].prefix);
      EXPECT_EQ((*na)[d].uri, (*nb)[d].uri);
    }
  }
  EXPECT_EQ(a.StringValue(0), b.StringValue(0));
  EXPECT_EQ(loaded.content_hash, f.input.content_hash);
  EXPECT_EQ(loaded.content_bytes, f.input.content_bytes);
}

TEST(SnapshotRoundtrip, TokensAreBitIdentical) {
  Frozen f = FreezeAll();
  std::string bytes = storage::SerializeSnapshot(f.input).value();
  XQP_ASSERT_OK_AND_ASSIGN(LoadedSnapshot loaded, OpenBytes(bytes));
  ASSERT_NE(loaded.tokens, nullptr);
  const TokenStream& a = f.tokens;
  const TokenStream& b = *loaded.tokens;
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(0, std::memcmp(&a.token(i), &b.token(i), sizeof(Token)))
        << "token " << i;
    EXPECT_EQ(a.value(a.token(i)), b.value(b.token(i))) << "token " << i;
    EXPECT_EQ(a.aux(a.token(i)), b.aux(b.token(i))) << "token " << i;
  }
  ASSERT_EQ(a.NumNames(), b.NumNames());
  for (uint32_t n = 0; n < a.NumNames(); ++n) {
    EXPECT_EQ(a.name_at(n).uri, b.name_at(n).uri);
    EXPECT_EQ(a.name_at(n).local, b.name_at(n).local);
  }
}

TEST(SnapshotRoundtrip, IndexesAreBitIdentical) {
  Frozen f = FreezeAll();
  std::string bytes = storage::SerializeSnapshot(f.input).value();
  XQP_ASSERT_OK_AND_ASSIGN(LoadedSnapshot loaded, OpenBytes(bytes));
  ASSERT_NE(loaded.indexes, nullptr);
  EXPECT_EQ(loaded.value_kinds, kIndexValueAll);
  const DocumentIndexes& a = *f.indexes;
  const DocumentIndexes& b = *loaded.indexes;
  ASSERT_EQ(a.NumSynopsisNodes(), b.NumSynopsisNodes());
  for (size_t s = 0; s < a.NumSynopsisNodes(); ++s) {
    const auto& sa = a.synopsis_node(static_cast<int32_t>(s));
    const auto& sb = b.synopsis_node(static_cast<int32_t>(s));
    EXPECT_EQ(sa.name_id, sb.name_id) << "synopsis " << s;
    EXPECT_EQ(sa.kind, sb.kind) << "synopsis " << s;
    EXPECT_EQ(sa.parent, sb.parent) << "synopsis " << s;
    EXPECT_EQ(sa.children, sb.children) << "synopsis " << s;
    EXPECT_EQ(a.postings(static_cast<int32_t>(s)),
              b.postings(static_cast<int32_t>(s)))
        << "postings " << s;
    const auto* va = a.values(static_cast<int32_t>(s));
    const auto* vb = b.values(static_cast<int32_t>(s));
    ASSERT_EQ(va == nullptr, vb == nullptr);
    if (va == nullptr) continue;
    EXPECT_EQ(va->indexable, vb->indexable) << "values " << s;
    EXPECT_EQ(va->all_numeric, vb->all_numeric) << "values " << s;
    EXPECT_EQ(va->by_string, vb->by_string) << "values " << s;
    ASSERT_EQ(va->by_number.size(), vb->by_number.size());
    for (size_t v = 0; v < va->by_number.size(); ++v) {
      // Bit equality, not ==: NaN payloads must survive too.
      uint64_t da, db;
      std::memcpy(&da, &va->by_number[v].first, 8);
      std::memcpy(&db, &vb->by_number[v].first, 8);
      EXPECT_EQ(da, db) << "by_number " << s << "/" << v;
      EXPECT_EQ(va->by_number[v].second, vb->by_number[v].second);
    }
  }
  // The adopted index must serve the loaded document, not the original.
  EXPECT_EQ(b.doc_ptr().get(), loaded.document.get());
}

TEST(SnapshotRoundtrip, ReserializingALoadedSnapshotIsByteIdentical) {
  Frozen f = FreezeAll();
  std::string bytes = storage::SerializeSnapshot(f.input).value();
  XQP_ASSERT_OK_AND_ASSIGN(LoadedSnapshot loaded, OpenBytes(bytes));
  SnapshotInput again;
  again.doc = loaded.document.get();
  again.tokens = loaded.tokens.get();
  again.indexes = loaded.indexes.get();
  again.content_hash = loaded.content_hash;
  again.content_bytes = loaded.content_bytes;
  EXPECT_EQ(storage::SerializeSnapshot(again).value(), bytes);
}

TEST(SnapshotRoundtrip, MinimalDocumentWithoutTokensOrIndexes) {
  auto doc = ParseDoc("<only/>");
  SnapshotInput input;
  input.doc = doc.get();
  std::string bytes = storage::SerializeSnapshot(input).value();
  XQP_ASSERT_OK_AND_ASSIGN(LoadedSnapshot loaded, OpenBytes(bytes));
  EXPECT_EQ(loaded.tokens, nullptr);
  EXPECT_EQ(loaded.indexes, nullptr);
  EXPECT_EQ(loaded.document->NumNodes(), doc->NumNodes());
  EXPECT_EQ(loaded.document->StringValue(0), doc->StringValue(0));
}

TEST(SnapshotRoundtrip, FileRoundtripServesQueries) {
  std::string dir = ::testing::TempDir() + "/xqp_snap_file_rt";
  ::mkdir(dir.c_str(), 0755);
  std::string path = dir + "/bib.xqps";
  Frozen f = FreezeAll();
  XQP_ASSERT_OK(storage::WriteSnapshotFile(path, f.input));
  XQP_ASSERT_OK_AND_ASSIGN(LoadedSnapshot loaded,
                           storage::OpenSnapshot(path));
  EXPECT_EQ(loaded.mapped_bytes, std::filesystem::file_size(path));
  XQueryEngine engine;
  XQP_ASSERT_OK(engine.RegisterDocument("bib.xml", loaded.document));
  XQP_ASSERT_OK_AND_ASSIGN(
      Sequence result,
      engine.Execute("count(doc('bib.xml')//book[number(price) < 50])"));
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].AsAtomic().Lexical(), "1");
}

// --- corruption matrix ------------------------------------------------------

TEST(SnapshotCorruption, BitFlipInEverySectionDetected) {
  Frozen f = FreezeAll();
  const std::string good = storage::SerializeSnapshot(f.input).value();
  std::vector<SectionEntry> table = ReadTable(good);
  for (const SectionEntry& e : table) {
    ASSERT_GT(e.size, 0u) << "section " << e.id << " unexpectedly empty";
    for (uint64_t at : {uint64_t{0}, e.size / 2, e.size - 1}) {
      std::string bad = good;
      bad[e.offset + at] ^= 0x40;
      ExpectCorrupt(std::move(bad), "flip in section " +
                                        std::to_string(e.id) + " at +" +
                                        std::to_string(at));
    }
  }
}

TEST(SnapshotCorruption, BitFlipInHeaderAndTableDetected) {
  Frozen f = FreezeAll();
  const std::string good = storage::SerializeSnapshot(f.input).value();
  const size_t covered =
      sizeof(SnapshotHeader) + ReadTable(good).size() * sizeof(SectionEntry);
  for (size_t at = 0; at < covered; ++at) {
    std::string bad = good;
    bad[at] ^= 0x01;
    ExpectCorrupt(std::move(bad), "flip at header/table byte " +
                                      std::to_string(at));
  }
}

TEST(SnapshotCorruption, ZeroedSectionsDetected) {
  Frozen f = FreezeAll();
  const std::string good = storage::SerializeSnapshot(f.input).value();
  for (const SectionEntry& e : ReadTable(good)) {
    std::string bad = good;
    bool was_zero = true;
    for (uint64_t i = 0; i < e.size; ++i) {
      was_zero = was_zero && bad[e.offset + i] == 0;
      bad[e.offset + i] = 0;
    }
    ASSERT_FALSE(was_zero) << "section " << e.id << " carries no entropy";
    ExpectCorrupt(std::move(bad), "zeroed section " + std::to_string(e.id));
  }
}

TEST(SnapshotCorruption, TruncationsDetected) {
  Frozen f = FreezeAll();
  const std::string good = storage::SerializeSnapshot(f.input).value();
  const size_t table_end =
      sizeof(SnapshotHeader) + ReadTable(good).size() * sizeof(SectionEntry);
  for (size_t len : {size_t{0}, size_t{1}, size_t{7},
                     sizeof(SnapshotHeader) - 1, sizeof(SnapshotHeader),
                     table_end - 1, table_end, good.size() / 2,
                     good.size() - 1}) {
    ExpectCorrupt(good.substr(0, len),
                  "truncated to " + std::to_string(len));
  }
}

TEST(SnapshotCorruption, WrongMagicVersionEndianLayoutDetected) {
  Frozen f = FreezeAll();
  const std::string good = storage::SerializeSnapshot(f.input).value();
  auto mutate = [&](auto fn, const char* what) {
    std::string bad = good;
    SnapshotHeader h = ReadHeader(bad);
    fn(&h);
    std::memcpy(bad.data(), &h, sizeof(h));
    ResealHeader(&bad);  // Valid CRCs: the field check itself must fire.
    ExpectCorrupt(std::move(bad), what);
  };
  mutate([](SnapshotHeader* h) { h->magic[0] = 'Y'; }, "magic");
  mutate([](SnapshotHeader* h) { h->version = 99; }, "version");
  mutate([](SnapshotHeader* h) { h->endian = 0x04030201; }, "endianness");
  mutate([](SnapshotHeader* h) { h->arch_bits ^= 96; }, "arch width");
  mutate([](SnapshotHeader* h) { h->node_record_size += 4; },
         "node record layout");
  mutate([](SnapshotHeader* h) { h->token_size += 4; }, "token layout");
  mutate([](SnapshotHeader* h) { h->file_size += 8; }, "file size");
  mutate([](SnapshotHeader* h) { h->section_count += 1; }, "section count");
  mutate([](SnapshotHeader* h) { h->flags = 0xff; }, "unknown flags");
}

TEST(SnapshotCorruption, ForgedSectionTableRejected) {
  Frozen f = FreezeAll();
  const std::string good = storage::SerializeSnapshot(f.input).value();
  const std::vector<SectionEntry> table = ReadTable(good);
  auto forge = [&](size_t i, auto fn, const char* what) {
    std::string bad = good;
    SectionEntry e = table[i];
    fn(&e);
    WriteTableEntry(&bad, i, e);  // Reseals CRCs: bounds checks must fire.
    ExpectCorrupt(std::move(bad), what);
  };
  forge(0, [&](SectionEntry* e) { e->offset = good.size(); },
        "offset past the end");
  forge(0, [&](SectionEntry* e) { e->offset = UINT64_MAX - 4; e->size = 64; },
        "offset+size overflow");
  forge(0, [&](SectionEntry* e) { e->size = good.size(); },
        "size past the end");
  forge(0, [&](SectionEntry* e) { e->offset += 1; }, "misaligned offset");
  forge(1, [&](SectionEntry* e) { e->id = table[0].id; },
        "duplicate section id");
  forge(1, [&](SectionEntry* e) { e->id = 999; }, "unknown section id");
  forge(SectionIndex(table, SectionId::kNodes),
        [&](SectionEntry* e) { e->count += 1; },
        "node count disagreeing with section size");
}

TEST(SnapshotCorruption, ForgedNodeLinksRejected) {
  Frozen f = FreezeAll();
  const std::string good = storage::SerializeSnapshot(f.input).value();
  const std::vector<SectionEntry> table = ReadTable(good);
  const size_t nodes_i = SectionIndex(table, SectionId::kNodes);
  const SectionEntry nodes = table[nodes_i];
  ASSERT_GE(nodes.count, 3u);
  auto forge = [&](size_t rec, auto fn, const std::string& what) {
    std::string bad = good;
    NodeRecord n;
    std::memcpy(&n, bad.data() + nodes.offset + rec * sizeof(NodeRecord),
                sizeof(n));
    fn(&n);
    std::memcpy(bad.data() + nodes.offset + rec * sizeof(NodeRecord), &n,
                sizeof(n));
    ResealSection(&bad, nodes_i);  // CRC-clean: structural replay must fire.
    ExpectCorrupt(std::move(bad), what);
  };
  const auto count = static_cast<NodeIndex>(nodes.count);
  forge(1, [&](NodeRecord* n) { n->parent = count + 7; },
        "parent out of range");
  forge(1, [&](NodeRecord* n) { n->end = count + 7; }, "end out of range");
  forge(1, [&](NodeRecord* n) { n->first_child = 1; },
        "self-referential child link");
  forge(2, [&](NodeRecord* n) { n->level ^= 5; }, "wrong level");
  forge(1, [&](NodeRecord* n) { n->next_sibling = 2; },
        "sibling link into own subtree");
  forge(2, [&](NodeRecord* n) { n->kind = static_cast<NodeKind>(200); },
        "kind out of range");
  forge(2, [&](NodeRecord* n) { n->name_id = 0xffff0000; },
        "name id out of range");
  forge(2, [&](NodeRecord* n) { n->value_id = 0x7fff0000; },
        "value id out of range");
}

TEST(SnapshotCorruption, ForgedPostingsRejected) {
  Frozen f = FreezeAll();
  const std::string good = storage::SerializeSnapshot(f.input).value();
  const std::vector<SectionEntry> table = ReadTable(good);
  const size_t data_i = SectionIndex(table, SectionId::kPostingsData);
  const SectionEntry data = table[data_i];
  ASSERT_GE(data.count, 2u);
  {
    // Non-increasing postings within a synopsis row.
    std::string bad = good;
    uint32_t huge = 0xfffffff0;
    std::memcpy(bad.data() + data.offset, &huge, sizeof(huge));
    ResealSection(&bad, data_i);
    ExpectCorrupt(std::move(bad), "posting out of node range");
  }
  {
    const size_t off_i = SectionIndex(table, SectionId::kPostingsOffsets);
    std::string bad = good;
    uint64_t evil = data.count + 100;  // CSR row start past the payload.
    std::memcpy(bad.data() + table[off_i].offset + 8, &evil, sizeof(evil));
    ResealSection(&bad, off_i);
    ExpectCorrupt(std::move(bad), "CSR offset past postings payload");
  }
}

TEST(SnapshotCorruption, EveryStrideOfBitFlipsIsCrashFree) {
  Frozen f = FreezeAll();
  const std::string good = storage::SerializeSnapshot(f.input).value();
  const std::string expect = f.doc->StringValue(0);
  // A flip in inter-section alignment padding is legitimately undetectable
  // (padding carries no data); everything else must be caught. Either way
  // the invariant is: valid load with identical content, or a typed error.
  for (size_t at = 0; at < good.size(); at += 131) {
    for (uint8_t bit : {uint8_t{1}, uint8_t{0x80}}) {
      std::string bad = good;
      bad[at] ^= bit;
      Result<LoadedSnapshot> r = OpenBytes(std::move(bad));
      if (r.ok()) {
        EXPECT_EQ(r.value().document->StringValue(0), expect)
            << "silent corruption at byte " << at;
      } else {
        EXPECT_EQ(r.status().code(), StatusCode::kSnapshotCorrupt)
            << "byte " << at << ": " << r.status().ToString();
      }
    }
  }
}

TEST(SnapshotCorruption, GarbageBuffersAreCleanErrors) {
  ExpectCorrupt(std::string(), "empty buffer");
  ExpectCorrupt(std::string(3, 'x'), "tiny garbage");
  ExpectCorrupt(std::string(4096, '\0'), "zero page");
  ExpectCorrupt(std::string(4096, '\xff'), "ff page");
  std::string fake_magic = "XQPSNAP1";
  fake_magic.resize(256, '\x5a');
  ExpectCorrupt(std::move(fake_magic), "magic-only garbage");
}

// --- crash-atomic write protocol --------------------------------------------

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

size_t DirEntryCount(const std::string& dir) {
  size_t n = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    (void)entry;
    ++n;
  }
  return n;
}

TEST(SnapshotWrite, FaultAtEveryStageLeavesNoPartialFile) {
  Frozen f = FreezeAll();
  for (uint64_t stage : {1, 2, 3}) {
    std::string dir = FreshDir("xqp_snap_write_fault");
    std::string path = dir + "/doc.xqps";
    fault::ScopedFault fault("storage.write", stage, StatusCode::kIoError);
    Status st = storage::WriteSnapshotFile(path, f.input);
    ASSERT_FALSE(st.ok()) << "stage " << stage;
    EXPECT_EQ(st.code(), StatusCode::kIoError) << st.ToString();
    // No target, and no orphaned temp either — the failure path unlinks.
    EXPECT_EQ(DirEntryCount(dir), 0u) << "stage " << stage;
  }
}

TEST(SnapshotWrite, FaultedOverwriteKeepsThePreviousSnapshot) {
  std::string dir = FreshDir("xqp_snap_overwrite_fault");
  std::string path = dir + "/doc.xqps";
  Frozen v1 = FreezeAll();
  XQP_ASSERT_OK(storage::WriteSnapshotFile(path, v1.input));
  Frozen v2 = FreezeAll("<other><content/></other>");
  for (uint64_t stage : {1, 2, 3}) {
    fault::ScopedFault fault("storage.write", stage, StatusCode::kIoError);
    ASSERT_FALSE(storage::WriteSnapshotFile(path, v2.input).ok());
  }
  XQP_ASSERT_OK_AND_ASSIGN(LoadedSnapshot still,
                           storage::OpenSnapshot(path));
  EXPECT_EQ(still.content_hash, v1.input.content_hash);
  EXPECT_EQ(still.document->NumNodes(), v1.doc->NumNodes());
  EXPECT_EQ(DirEntryCount(dir), 1u);  // Just the intact snapshot.
}

TEST(SnapshotWrite, MapAndCrcFaultSitesFire) {
  std::string dir = FreshDir("xqp_snap_map_fault");
  std::string path = dir + "/doc.xqps";
  Frozen f = FreezeAll();
  XQP_ASSERT_OK(storage::WriteSnapshotFile(path, f.input));
  {
    fault::ScopedFault fault("storage.map", 1, StatusCode::kIoError);
    Result<LoadedSnapshot> r = storage::OpenSnapshot(path);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kIoError);
  }
  {
    // An injected checksum failure surfaces as corruption, like real rot.
    fault::ScopedFault fault("storage.crc", 1);
    Result<LoadedSnapshot> r = storage::OpenSnapshot(path);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kSnapshotCorrupt);
  }
  XQP_ASSERT_OK(storage::OpenSnapshot(path).status());  // Disarmed: fine.
}

// --- engine integration -----------------------------------------------------

TEST(EngineSnapshot, ParseAndRegisterPersistsThenReloads) {
  std::string dir = FreshDir("xqp_snap_engine_rt");
  EngineOptions opts;
  opts.snapshot_dir = dir;
  std::string expect;
  {
    XQueryEngine writer(opts);
    XQP_ASSERT_OK(writer.ParseAndRegister("bib.xml", kXml).status());
    EXPECT_TRUE(std::filesystem::exists(writer.SnapshotPathFor("bib.xml")));
    XQP_ASSERT_OK_AND_ASSIGN(
        Sequence r, writer.Execute("count(doc('bib.xml')//book)"));
    expect = r[0].AsAtomic().Lexical();
  }
  XQueryEngine reader(opts);
  XQP_ASSERT_OK(reader.ParseAndRegister("bib.xml", kXml).status());
  // The reload adopted the snapshot's indexes: they are cached before any
  // query ran.
  EXPECT_NE(reader.PeekDocumentIndexes("bib.xml"), nullptr);
  XQP_ASSERT_OK_AND_ASSIGN(Sequence r,
                           reader.Execute("count(doc('bib.xml')//book)"));
  EXPECT_EQ(r[0].AsAtomic().Lexical(), expect);
}

TEST(EngineSnapshot, StaleSnapshotIsReplacedNotServed) {
  std::string dir = FreshDir("xqp_snap_engine_stale");
  EngineOptions opts;
  opts.snapshot_dir = dir;
  {
    XQueryEngine writer(opts);
    XQP_ASSERT_OK(
        writer.ParseAndRegister("d.xml", "<r><a/><a/></r>").status());
  }
  XQueryEngine reader(opts);
  // Same URI, different content: the persisted snapshot must not win.
  XQP_ASSERT_OK(
      reader.ParseAndRegister("d.xml", "<r><a/><a/><a/></r>").status());
  XQP_ASSERT_OK_AND_ASSIGN(Sequence r,
                           reader.Execute("count(doc('d.xml')//a)"));
  EXPECT_EQ(r[0].AsAtomic().Lexical(), "3");
  // And the snapshot on disk now reflects the new content.
  XQP_ASSERT_OK_AND_ASSIGN(
      LoadedSnapshot snap,
      storage::OpenSnapshot(reader.SnapshotPathFor("d.xml")));
  EXPECT_EQ(snap.content_hash,
            storage::HashContent("<r><a/><a/><a/></r>"));
}

TEST(EngineSnapshot, CorruptSnapshotDegradesToReingest) {
  std::string dir = FreshDir("xqp_snap_engine_corrupt");
  EngineOptions opts;
  opts.snapshot_dir = dir;
  opts.collect_stats = true;
  {
    XQueryEngine writer(opts);
    XQP_ASSERT_OK(writer.ParseAndRegister("bib.xml", kXml).status());
  }
  XQueryEngine reader(opts);
  std::string path = reader.SnapshotPathFor("bib.xml");
  // Rot a byte in the middle of the file.
  {
    std::string bytes;
    bytes.resize(std::filesystem::file_size(path));
    FILE* in = std::fopen(path.c_str(), "rb");
    ASSERT_EQ(std::fread(bytes.data(), 1, bytes.size(), in), bytes.size());
    std::fclose(in);
    bytes[bytes.size() / 2] ^= 0x10;
    FILE* out = std::fopen(path.c_str(), "wb");
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), out), bytes.size());
    std::fclose(out);
  }
  metrics::MetricsSnapshot before = metrics::MetricsRegistry::Global().Snapshot();
  XQP_ASSERT_OK(reader.ParseAndRegister("bib.xml", kXml).status());
  XQP_ASSERT_OK_AND_ASSIGN(Sequence r,
                           reader.Execute("count(doc('bib.xml')//book)"));
  EXPECT_EQ(r[0].AsAtomic().Lexical(), "3");
  metrics::MetricsSnapshot delta =
      metrics::MetricsRegistry::Global().Snapshot().Delta(before);
  EXPECT_EQ(delta.counters["storage.corrupt"], 1u);
  EXPECT_EQ(delta.counters["storage.saves"], 1u);  // Repaired on the way out.
  // The rewritten snapshot is valid again.
  XQP_ASSERT_OK(storage::OpenSnapshot(path).status());
}

TEST(EngineSnapshot, LoadDocumentSnapshotFallsBackOnMissingFile) {
  XQueryEngine engine;
  std::string missing = ::testing::TempDir() + "/xqp_no_such.xqps";
  // Without a fallback the error propagates...
  EXPECT_FALSE(engine.LoadDocumentSnapshot("d.xml", missing).ok());
  // ...with one, ingestion succeeds and the document serves queries.
  XQP_ASSERT_OK(
      engine.LoadDocumentSnapshot("d.xml", missing, "<r><a/></r>").status());
  XQP_ASSERT_OK_AND_ASSIGN(Sequence r,
                           engine.Execute("count(doc('d.xml')//a)"));
  EXPECT_EQ(r[0].AsAtomic().Lexical(), "1");
}

TEST(EngineSnapshot, SaveSnapshotThenLoadDocumentSnapshot) {
  std::string dir = FreshDir("xqp_snap_save_load");
  std::string path = dir + "/explicit.xqps";
  XQueryEngine a;
  XQP_ASSERT_OK(a.ParseAndRegister("bib.xml", kXml).status());
  XQP_ASSERT_OK(a.SaveSnapshot("bib.xml", path));
  XQueryEngine b;
  XQP_ASSERT_OK_AND_ASSIGN(std::shared_ptr<const Document> doc,
                           b.LoadDocumentSnapshot("bib.xml", path));
  EXPECT_EQ(doc->base_uri(), "bib.xml");
  XQP_ASSERT_OK_AND_ASSIGN(Sequence r,
                           b.Execute("count(doc('bib.xml')//book)"));
  EXPECT_EQ(r[0].AsAtomic().Lexical(), "3");
  // The explicit save carried the token stream.
  XQP_ASSERT_OK_AND_ASSIGN(LoadedSnapshot snap, storage::OpenSnapshot(path));
  EXPECT_NE(snap.tokens, nullptr);
  EXPECT_GT(snap.tokens->size(), 0u);
}

TEST(EngineSnapshot, SnapshotPathsAreDistinctAndSafe) {
  EngineOptions opts;
  opts.snapshot_dir = "/tmp/snaps";
  XQueryEngine engine(opts);
  std::string a = engine.SnapshotPathFor("a/b.xml");
  std::string b = engine.SnapshotPathFor("a_b.xml");
  EXPECT_NE(a, b);  // Sanitization must not merge distinct URIs.
  EXPECT_EQ(a.find('/', strlen("/tmp/snaps/")), std::string::npos)
      << a << " escapes the snapshot directory";
  EXPECT_EQ(a.substr(0, 11), "/tmp/snaps/");
  EXPECT_EQ(a.substr(a.size() - 5), ".xqps");
}

// --- XQP_FAULT spec validation (the satellite bugfix) -----------------------

TEST(FaultSpec, ValidSpecsArmExactly) {
  XQP_ASSERT_OK(fault::ArmFromSpec("parse.next:2:io"));
  EXPECT_TRUE(fault::Armed());
  EXPECT_TRUE(fault::MaybeInject("parse.next").ok());  // Hit 1 of 2.
  Status st = fault::MaybeInject("parse.next");        // Hit 2 fires.
  EXPECT_EQ(st.code(), StatusCode::kIoError) << st.ToString();
  EXPECT_FALSE(fault::Armed());
  fault::Disarm();

  XQP_ASSERT_OK(fault::ArmFromSpec("storage.write:1"));
  EXPECT_EQ(fault::MaybeInject("storage.write").code(),
            StatusCode::kInternal);
  fault::Disarm();
  XQP_ASSERT_OK(fault::ArmFromSpec("storage.crc:1:exhausted"));
  fault::Disarm();
  XQP_ASSERT_OK(fault::ArmFromSpec("vm.compile:10:cancelled"));
  fault::Disarm();
}

TEST(FaultSpec, MalformedSpecsRejectedWithoutArming) {
  const char* bad[] = {
      "",                      // Empty.
      "alloc",                 // No nth.
      ":3",                    // No site.
      "alloc:",                // Empty nth.
      "alloc:x",               // Non-numeric nth.
      "alloc:3x",              // Trailing garbage in nth.
      "alloc:0",               // Zero nth.
      "alloc:1:bogus",         // Unknown code.
      "no.such.site:1",        // Unknown site.
      "storage:1",             // Prefix of a site, not a site.
  };
  for (const char* spec : bad) {
    Status st = fault::ArmFromSpec(spec);
    EXPECT_FALSE(st.ok()) << "accepted: \"" << spec << "\"";
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(st.ToString().find("bad fault spec"), std::string::npos)
        << st.ToString();
    EXPECT_FALSE(fault::Armed()) << spec;
  }
  // The unknown-site message teaches the valid vocabulary.
  Status st = fault::ArmFromSpec("no.such.site:1");
  EXPECT_NE(st.ToString().find("storage.write"), std::string::npos)
      << st.ToString();
}

using FaultSpecDeathTest = ::testing::Test;

TEST(FaultSpecDeathTest, MalformedEnvIsAStartupError) {
  // A typo'd XQP_FAULT must kill the process (exit 2) with the reason —
  // the regression this guards: it used to be silently ignored, running
  // the whole "fault" test unfaulted.
  EXPECT_EXIT(
      {
        setenv("XQP_FAULT", "no.such.site:1", 1);
        fault::ArmFromEnv();
      },
      ::testing::ExitedWithCode(2), "unknown site");
  EXPECT_EXIT(
      {
        setenv("XQP_FAULT", "alloc:zero", 1);
        fault::ArmFromEnv();
      },
      ::testing::ExitedWithCode(2), "not a number");
}

}  // namespace
}  // namespace xqp
