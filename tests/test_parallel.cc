// Tests for the morsel-driven parallel execution subsystem: the parallel
// join kernels must be bit-identical to their serial counterparts on every
// input shape, and XQueryEngine must stay consistent under concurrent
// ExecuteCached / ExecuteBatchParallel / GetTagIndex callers.

#include <atomic>
#include <functional>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "base/metrics.h"
#include "base/parallel.h"
#include "engine.h"
#include "join/structural_join.h"
#include "join/tag_index.h"
#include "join/twig.h"
#include "tests/test_util.h"
#include "xmark/generator.h"

namespace xqp {
namespace {

using testing_util::RandomXml;

// Force the parallel path regardless of input size or machine width: 4-way
// chunking with no serial fallback.
constexpr int kThreads = 4;
constexpr size_t kForce = 1;  // min_parallel: always partition.

std::shared_ptr<const Document> SmallXMark() {
  XMarkOptions options;
  options.scale = 0.02;
  return Document::Parse(GenerateXMarkXml(options)).ValueOrDie();
}

/// Serial/parallel identity on one (doc, ancestors, descendants) input,
/// both axis modes, all three kernels.
void ExpectJoinsIdentical(const Document& doc,
                          const std::vector<NodeIndex>& anc,
                          const std::vector<NodeIndex>& desc) {
  for (bool pc : {false, true}) {
    EXPECT_EQ(StackTreeDescParallel(doc, anc, desc, pc, kThreads, kForce),
              StackTreeDesc(doc, anc, desc, pc));
    EXPECT_EQ(JoinDescendantsParallel(doc, anc, desc, pc, kThreads, kForce),
              JoinDescendants(doc, anc, desc, pc));
    EXPECT_EQ(JoinAncestorsParallel(doc, anc, desc, pc, kThreads, kForce),
              JoinAncestors(doc, anc, desc, pc));
  }
}

TEST(ParallelPartition, SubtreeClosedAndExhaustive) {
  auto doc = Document::Parse(RandomXml(7, 2000, 3)).value();
  TagIndex index(doc);
  const auto* anc = index.Lookup("", "a");
  const auto* desc = index.Lookup("", "b");
  ASSERT_TRUE(anc != nullptr && desc != nullptr);
  auto chunks = ParallelJoinPartition(*doc, *anc, *desc, 8);
  ASSERT_FALSE(chunks.empty());
  // Chunks tile the ancestor list exactly.
  EXPECT_EQ(chunks.front().anc_begin, 0u);
  EXPECT_EQ(chunks.back().anc_end, anc->size());
  for (size_t c = 1; c < chunks.size(); ++c) {
    EXPECT_EQ(chunks[c - 1].anc_end, chunks[c].anc_begin);
    // Subtree-closure: no region before the cut may reach past it.
    NodeIndex cut_start = (*anc)[chunks[c].anc_begin];
    for (size_t i = 0; i < chunks[c].anc_begin; ++i) {
      EXPECT_LT(doc->node((*anc)[i]).end, cut_start);
    }
  }
  // Candidate descendant windows are disjoint and ordered.
  for (size_t c = 1; c < chunks.size(); ++c) {
    EXPECT_LE(chunks[c - 1].desc_end, chunks[c].desc_begin);
  }
}

TEST(ParallelJoin, IdenticalOnXMark) {
  auto doc = SmallXMark();
  TagIndex index(doc);
  const char* anc_tags[] = {"item", "open_auction", "parlist"};
  const char* desc_tags[] = {"keyword", "text", "listitem"};
  for (const char* at : anc_tags) {
    for (const char* dt : desc_tags) {
      const auto* anc = index.Lookup("", at);
      const auto* desc = index.Lookup("", dt);
      ASSERT_TRUE(anc != nullptr && desc != nullptr) << at << "//" << dt;
      ExpectJoinsIdentical(*doc, *anc, *desc);
    }
  }
}

TEST(ParallelJoin, IdenticalOnRandomRecursiveDocs) {
  for (uint64_t seed : {11u, 12u, 13u, 14u, 15u}) {
    auto doc = Document::Parse(RandomXml(seed, 1500, 4)).value();
    TagIndex index(doc);
    const auto* anc = index.Lookup("", "a");
    const auto* desc = index.Lookup("", "b");
    if (anc == nullptr || desc == nullptr) continue;
    ExpectJoinsIdentical(*doc, *anc, *desc);
    // Self-join on recursive data: ancestors == descendants.
    ExpectJoinsIdentical(*doc, *anc, *anc);
  }
}

TEST(ParallelJoin, AdversarialDeepNesting) {
  // One 3000-deep <a> chain: there is no subtree boundary to cut at, so
  // the partitioner must fall back to a single chunk and stay correct.
  std::string xml = "<root>";
  for (int i = 0; i < 3000; ++i) xml += "<a>";
  xml += "<b/>";
  for (int i = 0; i < 3000; ++i) xml += "</a>";
  xml += "</root>";
  auto doc = Document::Parse(xml).value();
  TagIndex index(doc);
  const auto* anc = index.Lookup("", "a");
  const auto* desc = index.Lookup("", "b");
  ASSERT_TRUE(anc != nullptr && desc != nullptr);
  auto chunks = ParallelJoinPartition(*doc, *anc, *desc, 8);
  EXPECT_EQ(chunks.size(), 1u);  // Nothing is cuttable inside one subtree.
  ExpectJoinsIdentical(*doc, *anc, *desc);
}

TEST(ParallelJoin, EmptyAndSingletonInputs) {
  auto doc = Document::Parse("<r><a><b/></a><a/><b/></r>").value();
  TagIndex index(doc);
  const auto* anc = index.Lookup("", "a");
  const auto* desc = index.Lookup("", "b");
  std::vector<NodeIndex> empty;
  EXPECT_TRUE(
      StackTreeDescParallel(*doc, empty, *desc, false, kThreads, kForce)
          .empty());
  EXPECT_TRUE(
      StackTreeDescParallel(*doc, *anc, empty, false, kThreads, kForce)
          .empty());
  EXPECT_TRUE(
      JoinDescendantsParallel(*doc, empty, empty, false, kThreads, kForce)
          .empty());
  // Single ancestor.
  std::vector<NodeIndex> one{anc->front()};
  ExpectJoinsIdentical(*doc, one, *desc);
  ExpectJoinsIdentical(*doc, *anc, *desc);
}

TEST(ParallelJoin, ManyDisjointSubtrees) {
  // Wide, shallow forest: maximal cutting opportunity — every top-level
  // <a> is its own subtree.
  std::string xml = "<root>";
  for (int i = 0; i < 4000; ++i) xml += "<a><b/></a>";
  xml += "</root>";
  auto doc = Document::Parse(xml).value();
  TagIndex index(doc);
  ExpectJoinsIdentical(*doc, *index.Lookup("", "a"), *index.Lookup("", "b"));
}

TEST(ParallelTwig, IdenticalToSerial) {
  auto doc = SmallXMark();
  TagIndex index(doc);
  // //open_auction[//bidder]//increase and friends, plus a linear path and
  // a single-node pattern.
  {
    TwigPattern p;
    int root = p.Add("open_auction");
    p.Add("bidder", root);
    p.output = p.Add("increase", root);
    auto serial = TwigStackMatch(index, p).value();
    auto parallel = TwigStackMatchParallel(index, p, nullptr, kThreads, kForce)
                        .value();
    EXPECT_EQ(serial, parallel);
  }
  {
    TwigPattern p;
    int root = p.Add("item");
    int desc = p.Add("description", root);
    p.output = p.Add("keyword", desc);
    auto serial = TwigStackMatch(index, p).value();
    auto parallel = TwigStackMatchParallel(index, p, nullptr, kThreads, kForce)
                        .value();
    EXPECT_EQ(serial, parallel);
  }
  {
    TwigPattern p;
    p.output = p.Add("person");
    auto serial = TwigStackMatch(index, p).value();
    auto parallel = TwigStackMatchParallel(index, p, nullptr, kThreads, kForce)
                        .value();
    EXPECT_EQ(serial, parallel);
  }
}

TEST(ParallelTwig, IdenticalOnRecursiveData) {
  for (uint64_t seed : {21u, 22u, 23u}) {
    auto doc = Document::Parse(RandomXml(seed, 1200, 4)).value();
    TagIndex index(doc);
    TwigPattern p;
    int root = p.Add("a");
    p.Add("b", root, /*child_edge=*/true);
    p.output = p.Add("c", root);
    auto serial = TwigStackMatch(index, p).value();
    auto parallel =
        TwigStackMatchParallel(index, p, nullptr, kThreads, kForce).value();
    EXPECT_EQ(serial, parallel);
  }
}

/// Runs fn with the metrics registry temporarily enabled and returns the
/// per-run counter delta.
metrics::MetricsSnapshot CountersDuring(const std::function<void()>& fn) {
  auto& reg = metrics::MetricsRegistry::Global();
  bool was_enabled = reg.enabled();
  reg.set_enabled(true);
  metrics::MetricsSnapshot before = reg.Snapshot();
  fn();
  metrics::MetricsSnapshot delta = reg.Snapshot().Delta(before);
  reg.set_enabled(was_enabled);
  return delta;
}

TEST(ParallelJoin, BelowThresholdTakesSerialPath) {
  // XMark posting lists at scale 0.02 are far below the default
  // min_parallel (16384): the wrappers must not partition, and the
  // dispatch decision must be visible in the metrics.
  auto doc = SmallXMark();
  TagIndex index(doc);
  const auto* anc = index.Lookup("", "item");
  const auto* desc = index.Lookup("", "keyword");
  ASSERT_TRUE(anc != nullptr && desc != nullptr);
  std::vector<JoinPair> result;
  auto delta = CountersDuring([&] {
    result = StackTreeDescParallel(*doc, *anc, *desc, false, kThreads);
  });
  EXPECT_EQ(result, StackTreeDesc(*doc, *anc, *desc, false));
  EXPECT_EQ(delta.counters["join.parallel.serial_fallback"], 1u);
  EXPECT_EQ(delta.counters["join.parallel.dispatched"], 0u);
}

TEST(ParallelJoin, ForcedDispatchIsCountedAndIdentical) {
  auto doc = SmallXMark();
  TagIndex index(doc);
  const auto* anc = index.Lookup("", "item");
  const auto* desc = index.Lookup("", "keyword");
  ASSERT_TRUE(anc != nullptr && desc != nullptr);
  std::vector<JoinPair> result;
  auto delta = CountersDuring([&] {
    result = StackTreeDescParallel(*doc, *anc, *desc, false, kThreads, kForce);
  });
  EXPECT_EQ(result, StackTreeDesc(*doc, *anc, *desc, false));
  EXPECT_EQ(delta.counters["join.parallel.dispatched"], 1u);
  EXPECT_EQ(delta.counters["join.parallel.serial_fallback"], 0u);
}

TEST(ParallelTwig, EmptyAndSingletonPostingLists) {
  auto doc = SmallXMark();
  TagIndex index(doc);
  {
    // A tag absent from the document: one empty posting list empties the
    // whole match set on both paths.
    TwigPattern p;
    int root = p.Add("open_auction");
    p.Add("no_such_tag", root);
    p.output = p.Add("bidder", root);
    auto serial = TwigStackMatch(index, p).value();
    auto parallel =
        TwigStackMatchParallel(index, p, nullptr, kThreads, kForce).value();
    EXPECT_TRUE(serial.empty());
    EXPECT_EQ(serial, parallel);
  }
  {
    // "site" occurs exactly once: a single-node posting list as the twig
    // root leaves nothing to partition.
    TwigPattern p;
    int root = p.Add("site");
    p.output = p.Add("keyword", root);
    auto serial = TwigStackMatch(index, p).value();
    auto parallel =
        TwigStackMatchParallel(index, p, nullptr, kThreads, kForce).value();
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, parallel);
  }
}

TEST(ParallelTwig, GiantSubtreeNoCutPoints) {
  // The umbrella shape: every <a> and <b> lives inside one giant <a>
  // subtree, so no subtree-closed cut exists and the parallel path must
  // degrade gracefully to a single chunk.
  std::string xml = "<root><a>";
  for (int i = 0; i < 500; ++i) xml += "<a><x/></a>";
  for (int i = 0; i < 500; ++i) xml += "<b/>";
  xml += "</a></root>";
  auto doc = Document::Parse(xml).value();
  TagIndex index(doc);
  ExpectJoinsIdentical(*doc, *index.Lookup("", "a"), *index.Lookup("", "b"));
  TwigPattern p;
  int root = p.Add("a");
  p.output = p.Add("b", root);
  auto serial = TwigStackMatch(index, p).value();
  auto parallel =
      TwigStackMatchParallel(index, p, nullptr, kThreads, kForce).value();
  EXPECT_EQ(serial, parallel);
}

TEST(ParallelTwig, BelowThresholdTakesSerialPath) {
  auto doc = SmallXMark();
  TagIndex index(doc);
  TwigPattern p;
  int root = p.Add("open_auction");
  p.Add("bidder", root);
  p.output = p.Add("increase", root);
  auto delta = CountersDuring([&] {
    auto parallel = TwigStackMatchParallel(index, p, nullptr, kThreads);
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(parallel.value(), TwigStackMatch(index, p).value());
  });
  EXPECT_EQ(delta.counters["twig.parallel.serial_fallback"], 1u);
  EXPECT_EQ(delta.counters["twig.parallel.dispatched"], 0u);
}

TEST(ParallelSort, MatchesSerialStableSort) {
  std::vector<int> v(40000);
  uint64_t s = 88172645463325252ULL;
  for (int& x : v) {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    x = static_cast<int>(s % 1000);  // Many duplicates: stability matters.
  }
  auto expect = v;
  std::stable_sort(expect.begin(), expect.end());
  ParallelStableSort(v.begin(), v.end(), std::less<int>(), 4, 1);
  EXPECT_EQ(v, expect);
}

TEST(ParallelFor, CoversRangeExactlyOnce) {
  std::vector<std::atomic<int>> hits(10000);
  ParallelFor(hits.size(), 8, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

// ---------------------------------------------------------------------
// Engine concurrency.

constexpr char kXml[] =
    "<bib><book year='1998'><title>A</title></book>"
    "<book year='2000'><title>B</title></book></bib>";

TEST(EngineConcurrency, ParallelExecuteCachedIsConsistent) {
  XQueryEngine engine;
  ASSERT_TRUE(engine.ParseAndRegister("bib.xml", kXml).ok());
  const std::vector<std::string> queries = {
      "count(doc('bib.xml')//book)",
      "doc('bib.xml')//book/title",
      "for $b in doc('bib.xml')//book where $b/@year = 1998 return $b/title",
      "<w>{count(doc('bib.xml')//title)}</w>",  // Uncacheable constructor.
  };
  // Serial reference results.
  std::vector<std::string> expected;
  for (const auto& q : queries) {
    expected.push_back(
        SerializeSequence(engine.Execute(q).value()).value());
  }

  constexpr int kHammerThreads = 8;
  constexpr int kIters = 40;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kHammerThreads);
  for (int t = 0; t < kHammerThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        size_t qi = static_cast<size_t>(t + i) % queries.size();
        auto result = engine.ExecuteCached(queries[qi]);
        if (!result.ok() ||
            SerializeSequence(result.value()).value() != expected[qi]) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);

  // Every call is accounted for exactly once; the uncacheable query can
  // never hit.
  auto stats = engine.cache_stats();
  EXPECT_EQ(stats.hits + stats.misses + stats.uncacheable,
            static_cast<uint64_t>(kHammerThreads * kIters));
  EXPECT_EQ(stats.uncacheable,
            static_cast<uint64_t>(kHammerThreads * kIters / 4));
  // At least one miss per cacheable query; duplicated misses only from
  // racing first executions.
  EXPECT_GE(stats.misses, 3u);
  EXPECT_LE(stats.misses, static_cast<uint64_t>(3 * kHammerThreads));
}

TEST(EngineConcurrency, ExecuteBatchParallelMatchesSerial) {
  XQueryEngine engine;
  ASSERT_TRUE(engine.ParseAndRegister("bib.xml", kXml).ok());
  std::vector<std::string> storage;
  for (int i = 0; i < 32; ++i) {
    storage.push_back(i % 2 == 0
                          ? "count(doc('bib.xml')//book)"
                          : "doc('bib.xml')//book[@year = 2000]/title");
  }
  std::vector<std::string_view> queries(storage.begin(), storage.end());
  auto batch = engine.ExecuteBatchParallel(queries);
  ASSERT_EQ(batch.size(), queries.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    ASSERT_TRUE(batch[i].ok()) << batch[i].status().ToString();
    auto serial = engine.Execute(queries[i]).value();
    EXPECT_EQ(SerializeSequence(batch[i].value()).value(),
              SerializeSequence(serial).value());
  }
  // Errors are positional, not fatal to the batch.
  std::vector<std::string_view> bad{"count(doc('bib.xml')//book)", "1 +"};
  auto mixed = engine.ExecuteBatchParallel(bad);
  EXPECT_TRUE(mixed[0].ok());
  EXPECT_FALSE(mixed[1].ok());
}

TEST(EngineConcurrency, ConcurrentTagIndexAndRegistration) {
  XQueryEngine engine;
  ASSERT_TRUE(engine.ParseAndRegister("d.xml", "<r><a/><b/></r>").ok());
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        auto index = engine.GetTagIndex("d.xml");
        if (!index.ok() || index.value() == nullptr) failures.fetch_add(1);
      }
    });
  }
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(engine.ParseAndRegister("d.xml", "<r><a/><b/><c/></r>").ok());
  }
  stop.store(true);
  for (auto& th : readers) th.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace xqp
