#ifndef XQP_TESTS_REFERENCE_PARSER_H_
#define XQP_TESTS_REFERENCE_PARSER_H_

// Frozen copy of the seed (pre-fast-path) XML pull parser, kept verbatim as
// the differential-testing oracle for tests/test_ingest.cc and the
// fuzz_pull_parser cross-check. Do NOT "fix" or optimize this file: its
// whole value is that it preserves the seed parser's behavior byte for byte
// (event streams, line:column error strings). The only intentional edit is
// the removed "parse.next" fault-injection hook, so fault tests exercise
// the production parser alone.

#include <algorithm>
#include <cstdlib>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "base/limits.h"
#include "base/status.h"
#include "base/string_util.h"
#include "tokens/token_stream.h"
#include "xml/document.h"
#include "xml/qname.h"

namespace xqp {
namespace reference {


/// Parse event types (DM1 "parse" step of the paper's data-model life
/// cycle). The granularity mirrors SAX / the TokenStream begin-end tokens.
enum class RefXmlEventType : uint8_t {
  kStartDocument,
  kStartElement,
  kEndElement,
  kText,
  kComment,
  kProcessingInstruction,
  kEndDocument,
};

struct RefXmlAttribute {
  QName name;
  std::string value;
};

struct RefXmlNamespaceDecl {
  std::string prefix;  // Empty for the default namespace.
  std::string uri;
};

/// One parse event. String members are owned by the parser and valid until
/// the next call to Next().
struct RefXmlEvent {
  RefXmlEventType type;
  QName name;         // Element name; PI target in name.local.
  std::string text;   // Text / comment / PI data.
  std::vector<RefXmlAttribute> attributes;   // kStartElement only.
  std::vector<RefXmlNamespaceDecl> ns_decls;  // kStartElement only.
};

/// Hand-written, namespace-aware, non-validating XML 1.0 pull parser.
/// Supports elements, attributes, namespaces, character data, CDATA,
/// comments, processing instructions, the five predefined entities, and
/// numeric character references. DOCTYPE declarations are skipped (no DTD
/// processing). Input must outlive the parser.
class RefXmlPullParser {
 public:
  RefXmlPullParser(std::string_view input, const ParseOptions& options = {});

  /// Returns the next event, or nullptr after kEndDocument was delivered.
  /// Malformed input yields a ParseError with "line:column: message".
  Result<const RefXmlEvent*> Next();

  /// 1-based position of the parse cursor, for error reporting.
  size_t line() const { return line_; }
  size_t column() const { return column_; }

 private:
  Status Error(const std::string& message) const;
  void Advance(size_t n);
  bool Eof() const { return pos_ >= input_.size(); }
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < input_.size() ? input_[pos_ + ahead] : '\0';
  }
  bool Looking(std::string_view s) const {
    return input_.compare(pos_, s.size(), s) == 0;
  }
  void SkipWhitespace();

  Status ParseName(std::string_view* out);
  Status DecodeEntitiesInto(std::string_view raw, std::string* out);
  Status ParseAttributeValue(std::string* out);
  Status ParseStartTag();
  Status ParseEndTag();
  Status ParseComment();
  Status ParsePi();
  Status ParseCData();
  Status ParseText();
  Status SkipDoctype();
  Status SkipXmlDecl();

  /// Resolves `prefix` against the in-scope namespace stack.
  Result<std::string> ResolvePrefix(std::string_view prefix,
                                    bool is_attribute) const;

  std::string_view input_;
  ParseOptions options_;
  size_t pos_ = 0;
  size_t line_ = 1;
  size_t column_ = 1;

  enum class State { kBeforeDocument, kInDocument, kAfterDocument, kDone };
  State state_ = State::kBeforeDocument;

  RefXmlEvent event_;

  // In-scope namespace bindings; each frame is the number of bindings pushed
  // by the corresponding open element.
  std::vector<std::pair<std::string, std::string>> ns_bindings_;
  std::vector<size_t> ns_frames_;
  std::vector<std::string> open_elements_;  // Lexical names for tag matching.
  bool pending_end_element_ = false;        // Set by <empty/> tags.
  uint32_t max_depth_ = 0;  // Resolved element-nesting ceiling.
};




inline RefXmlPullParser::RefXmlPullParser(std::string_view input,
                             const ParseOptions& options)
    : input_(input), options_(options) {
  // The "xml" prefix is always bound.
  ns_bindings_.emplace_back("xml", "http://www.w3.org/XML/1998/namespace");
  uint32_t depth = options_.max_parse_depth == 0
                       ? QueryLimits::kDefaultMaxParseDepth
                       : options_.max_parse_depth;
  // NodeRecord.level is 16 bits; clamp whatever the caller asked for.
  max_depth_ = std::min<uint32_t>(depth, 65535);
}

inline Status RefXmlPullParser::Error(const std::string& message) const {
  return Status::ParseError(std::to_string(line_) + ":" +
                            std::to_string(column_) + ": " + message);
}

inline void RefXmlPullParser::Advance(size_t n) {
  for (size_t i = 0; i < n && pos_ < input_.size(); ++i, ++pos_) {
    if (input_[pos_] == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
  }
}

inline void RefXmlPullParser::SkipWhitespace() {
  while (!Eof() && IsXmlWhitespace(Peek())) Advance(1);
}

inline Status RefXmlPullParser::ParseName(std::string_view* out) {
  size_t start = pos_;
  if (Eof() || !(IsNameStartChar(Peek()) || Peek() == ':')) {
    return Error("expected a name");
  }
  while (!Eof() && (IsNameChar(Peek()) || Peek() == ':')) Advance(1);
  *out = input_.substr(start, pos_ - start);
  return Status::OK();
}

inline Status RefXmlPullParser::DecodeEntitiesInto(std::string_view raw,
                                         std::string* out) {
  size_t i = 0;
  while (i < raw.size()) {
    char c = raw[i];
    if (c != '&') {
      out->push_back(c);
      ++i;
      continue;
    }
    size_t semi = raw.find(';', i + 1);
    if (semi == std::string_view::npos) {
      return Error("unterminated entity reference");
    }
    std::string_view entity = raw.substr(i + 1, semi - i - 1);
    if (entity == "amp") {
      out->push_back('&');
    } else if (entity == "lt") {
      out->push_back('<');
    } else if (entity == "gt") {
      out->push_back('>');
    } else if (entity == "quot") {
      out->push_back('"');
    } else if (entity == "apos") {
      out->push_back('\'');
    } else if (!entity.empty() && entity[0] == '#') {
      long code = 0;
      char* end = nullptr;
      std::string digits(entity.substr(1));
      if (!digits.empty() && (digits[0] == 'x' || digits[0] == 'X')) {
        code = std::strtol(digits.c_str() + 1, &end, 16);
        if (end != digits.c_str() + digits.size()) {
          return Error("bad character reference");
        }
      } else {
        code = std::strtol(digits.c_str(), &end, 10);
        if (end != digits.c_str() + digits.size()) {
          return Error("bad character reference");
        }
      }
      // Encode the code point as UTF-8.
      unsigned long cp = static_cast<unsigned long>(code);
      if (cp == 0 || cp > 0x10FFFF) return Error("character reference out of range");
      if (cp < 0x80) {
        out->push_back(static_cast<char>(cp));
      } else if (cp < 0x800) {
        out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
        out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
      } else if (cp < 0x10000) {
        out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
        out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
        out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
      } else {
        out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
        out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
        out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
        out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
      }
    } else {
      return Error("unknown entity: &" + std::string(entity) + ";");
    }
    i = semi + 1;
  }
  return Status::OK();
}

inline Result<std::string> RefXmlPullParser::ResolvePrefix(std::string_view prefix,
                                                 bool is_attribute) const {
  if (prefix.empty()) {
    if (is_attribute) return std::string();  // Attrs don't use default ns.
    // Walk bindings innermost-out for the default namespace.
    for (auto it = ns_bindings_.rbegin(); it != ns_bindings_.rend(); ++it) {
      if (it->first.empty()) return it->second;
    }
    return std::string();
  }
  for (auto it = ns_bindings_.rbegin(); it != ns_bindings_.rend(); ++it) {
    if (it->first == prefix) return it->second;
  }
  return Status::ParseError("undeclared namespace prefix: " +
                            std::string(prefix));
}

inline Status RefXmlPullParser::ParseAttributeValue(std::string* out) {
  char quote = Peek();
  if (quote != '"' && quote != '\'') {
    return Error("expected quoted attribute value");
  }
  Advance(1);
  size_t start = pos_;
  while (!Eof() && Peek() != quote) {
    if (Peek() == '<') return Error("'<' in attribute value");
    Advance(1);
  }
  if (Eof()) return Error("unterminated attribute value");
  std::string_view raw = input_.substr(start, pos_ - start);
  Advance(1);  // Closing quote.
  XQP_RETURN_NOT_OK(DecodeEntitiesInto(raw, out));
  return Status::OK();
}

inline Status RefXmlPullParser::ParseStartTag() {
  Advance(1);  // '<'
  std::string_view lexical;
  XQP_RETURN_NOT_OK(ParseName(&lexical));

  event_.type = RefXmlEventType::kStartElement;
  event_.attributes.clear();
  event_.ns_decls.clear();

  // First pass: collect raw attributes so namespace declarations on this
  // element apply to its own name and attribute names.
  struct RawAttr {
    std::string_view lexical;
    std::string value;
  };
  std::vector<RawAttr> raw_attrs;
  bool self_closing = false;
  while (true) {
    SkipWhitespace();
    if (Eof()) return Error("unterminated start tag");
    if (Peek() == '>') {
      Advance(1);
      break;
    }
    if (Peek() == '/' && Peek(1) == '>') {
      Advance(2);
      self_closing = true;
      break;
    }
    std::string_view attr_name;
    XQP_RETURN_NOT_OK(ParseName(&attr_name));
    SkipWhitespace();
    if (Peek() != '=') return Error("expected '=' after attribute name");
    Advance(1);
    SkipWhitespace();
    std::string value;
    XQP_RETURN_NOT_OK(ParseAttributeValue(&value));
    raw_attrs.push_back(RawAttr{attr_name, std::move(value)});
  }

  // Open a namespace frame and register xmlns declarations.
  ns_frames_.push_back(ns_bindings_.size());
  for (const RawAttr& a : raw_attrs) {
    if (a.lexical == "xmlns") {
      ns_bindings_.emplace_back("", a.value);
      event_.ns_decls.push_back(RefXmlNamespaceDecl{"", a.value});
    } else if (a.lexical.size() > 6 && a.lexical.substr(0, 6) == "xmlns:") {
      std::string prefix(a.lexical.substr(6));
      ns_bindings_.emplace_back(prefix, a.value);
      event_.ns_decls.push_back(RefXmlNamespaceDecl{prefix, a.value});
    }
  }

  // Resolve the element name.
  std::string_view prefix, local;
  SplitQName(lexical, &prefix, &local);
  XQP_ASSIGN_OR_RETURN(std::string uri, ResolvePrefix(prefix, false));
  event_.name = QName(std::move(uri), std::string(prefix), std::string(local));

  // Resolve attribute names (skipping xmlns declarations).
  for (RawAttr& a : raw_attrs) {
    if (a.lexical == "xmlns" ||
        (a.lexical.size() > 6 && a.lexical.substr(0, 6) == "xmlns:")) {
      continue;
    }
    std::string_view aprefix, alocal;
    SplitQName(a.lexical, &aprefix, &alocal);
    XQP_ASSIGN_OR_RETURN(std::string auri, ResolvePrefix(aprefix, true));
    event_.attributes.push_back(
        RefXmlAttribute{QName(std::move(auri), std::string(aprefix),
                           std::string(alocal)),
                     std::move(a.value)});
  }

  // Explicit depth bound: the event stream is iterative, but the document
  // builder, serializer, and navigation code index levels with 16 bits and
  // hostile inputs should fail early with a clear position.
  if (open_elements_.size() >= max_depth_) {
    return Error("element nesting exceeds maximum depth of " +
                 std::to_string(max_depth_));
  }
  open_elements_.emplace_back(lexical);
  if (self_closing) {
    pending_end_element_ = true;
  }
  return Status::OK();
}

inline Status RefXmlPullParser::ParseEndTag() {
  Advance(2);  // "</"
  std::string_view lexical;
  XQP_RETURN_NOT_OK(ParseName(&lexical));
  SkipWhitespace();
  if (Peek() != '>') return Error("expected '>' in end tag");
  Advance(1);
  if (open_elements_.empty()) {
    return Error("unexpected end tag </" + std::string(lexical) + ">");
  }
  if (open_elements_.back() != lexical) {
    return Error("mismatched end tag </" + std::string(lexical) +
                 ">, expected </" + open_elements_.back() + ">");
  }
  open_elements_.pop_back();
  // Pop this element's namespace frame.
  ns_bindings_.resize(ns_frames_.back());
  ns_frames_.pop_back();
  event_.type = RefXmlEventType::kEndElement;
  return Status::OK();
}

inline Status RefXmlPullParser::ParseComment() {
  Advance(4);  // "<!--"
  size_t end = input_.find("-->", pos_);
  if (end == std::string_view::npos) return Error("unterminated comment");
  event_.type = RefXmlEventType::kComment;
  event_.text.assign(input_.substr(pos_, end - pos_));
  Advance(end - pos_ + 3);
  return Status::OK();
}

inline Status RefXmlPullParser::ParsePi() {
  Advance(2);  // "<?"
  std::string_view target;
  XQP_RETURN_NOT_OK(ParseName(&target));
  size_t end = input_.find("?>", pos_);
  if (end == std::string_view::npos) {
    return Error("unterminated processing instruction");
  }
  event_.type = RefXmlEventType::kProcessingInstruction;
  event_.name = QName(std::string(target));
  event_.text.assign(TrimXmlWhitespace(input_.substr(pos_, end - pos_)));
  Advance(end - pos_ + 2);
  return Status::OK();
}

inline Status RefXmlPullParser::ParseCData() {
  Advance(9);  // "<![CDATA["
  size_t end = input_.find("]]>", pos_);
  if (end == std::string_view::npos) return Error("unterminated CDATA section");
  event_.type = RefXmlEventType::kText;
  event_.text.assign(input_.substr(pos_, end - pos_));
  Advance(end - pos_ + 3);
  return Status::OK();
}

inline Status RefXmlPullParser::ParseText() {
  size_t start = pos_;
  while (!Eof() && Peek() != '<') Advance(1);
  std::string_view raw = input_.substr(start, pos_ - start);
  event_.type = RefXmlEventType::kText;
  event_.text.clear();
  XQP_RETURN_NOT_OK(DecodeEntitiesInto(raw, &event_.text));
  return Status::OK();
}

inline Status RefXmlPullParser::SkipDoctype() {
  // "<!DOCTYPE" ... '>' with possible [...] internal subset.
  int depth = 0;
  while (!Eof()) {
    char c = Peek();
    if (c == '[') {
      ++depth;
    } else if (c == ']') {
      --depth;
    } else if (c == '>' && depth == 0) {
      Advance(1);
      return Status::OK();
    }
    Advance(1);
  }
  return Error("unterminated DOCTYPE");
}

inline Status RefXmlPullParser::SkipXmlDecl() {
  size_t end = input_.find("?>", pos_);
  if (end == std::string_view::npos) return Error("unterminated XML declaration");
  Advance(end - pos_ + 2);
  return Status::OK();
}

inline Result<const RefXmlEvent*> RefXmlPullParser::Next() {
  if (state_ == State::kDone) return static_cast<const RefXmlEvent*>(nullptr);

  if (state_ == State::kBeforeDocument) {
    state_ = State::kInDocument;
    if (Looking("<?xml ") || Looking("<?xml\t") || Looking("<?xml?")) {
      XQP_RETURN_NOT_OK(SkipXmlDecl());
    }
    event_.type = RefXmlEventType::kStartDocument;
    event_.attributes.clear();
    event_.ns_decls.clear();
    event_.text.clear();
    return &event_;
  }

  if (pending_end_element_) {
    pending_end_element_ = false;
    if (open_elements_.empty()) {
      return Status::ParseError("internal: dangling self-closing tag");
    }
    open_elements_.pop_back();
    ns_bindings_.resize(ns_frames_.back());
    ns_frames_.pop_back();
    event_.type = RefXmlEventType::kEndElement;
    if (open_elements_.empty()) state_ = State::kAfterDocument;
    return &event_;
  }

  while (true) {
    if (Eof()) {
      if (!open_elements_.empty()) {
        return Error("unexpected end of input; unclosed <" +
                     open_elements_.back() + ">");
      }
      state_ = State::kDone;
      event_.type = RefXmlEventType::kEndDocument;
      return &event_;
    }

    if (Peek() != '<') {
      if (state_ == State::kAfterDocument || open_elements_.empty()) {
        // Only whitespace is allowed outside the root element.
        size_t start = pos_;
        while (!Eof() && Peek() != '<') Advance(1);
        if (!IsAllXmlWhitespace(input_.substr(start, pos_ - start))) {
          return Error("character data outside the root element");
        }
        continue;
      }
      XQP_RETURN_NOT_OK(ParseText());
      if (options_.strip_whitespace && IsAllXmlWhitespace(event_.text)) {
        continue;  // Swallow ignorable whitespace without surfacing it.
      }
      return &event_;
    }

    if (Looking("<!--")) {
      XQP_RETURN_NOT_OK(ParseComment());
      return &event_;
    }
    if (Looking("<![CDATA[")) {
      if (open_elements_.empty()) return Error("CDATA outside root element");
      XQP_RETURN_NOT_OK(ParseCData());
      return &event_;
    }
    if (Looking("<!DOCTYPE")) {
      XQP_RETURN_NOT_OK(SkipDoctype());
      continue;
    }
    if (Looking("<?")) {
      XQP_RETURN_NOT_OK(ParsePi());
      return &event_;
    }
    if (Looking("</")) {
      XQP_RETURN_NOT_OK(ParseEndTag());
      if (open_elements_.empty()) state_ = State::kAfterDocument;
      return &event_;
    }
    if (open_elements_.empty() && state_ == State::kAfterDocument) {
      return Error("multiple root elements");
    }
    XQP_RETURN_NOT_OK(ParseStartTag());
    return &event_;
  }
}


/// Seed Document::Parse, verbatim: pumps the reference parser into a
/// DocumentBuilder through the per-event QName interfaces (no name-token
/// memoization, no arena reservation).
inline Result<std::shared_ptr<Document>> ParseDocument(
    std::string_view xml, const ParseOptions& options = {}) {
  RefXmlPullParser parser(xml, options);
  DocumentBuilder builder(options);
  auto as_parse_error = [](Status st) {
    if (st.ok() || st.code() == StatusCode::kParseError) return st;
    return Status::ParseError(st.message());
  };
  while (true) {
    XQP_ASSIGN_OR_RETURN(const RefXmlEvent* event, parser.Next());
    if (event == nullptr) break;
    switch (event->type) {
      case RefXmlEventType::kStartDocument:
      case RefXmlEventType::kEndDocument:
        break;
      case RefXmlEventType::kStartElement: {
        XQP_RETURN_NOT_OK(as_parse_error(builder.BeginElement(event->name)));
        for (const RefXmlNamespaceDecl& ns : event->ns_decls) {
          XQP_RETURN_NOT_OK(
              as_parse_error(builder.NamespaceDecl(ns.prefix, ns.uri)));
        }
        for (const RefXmlAttribute& attr : event->attributes) {
          XQP_RETURN_NOT_OK(
              as_parse_error(builder.Attribute(attr.name, attr.value)));
        }
        break;
      }
      case RefXmlEventType::kEndElement:
        XQP_RETURN_NOT_OK(as_parse_error(builder.EndElement()));
        break;
      case RefXmlEventType::kText:
        XQP_RETURN_NOT_OK(as_parse_error(builder.Text(event->text)));
        break;
      case RefXmlEventType::kComment:
        XQP_RETURN_NOT_OK(as_parse_error(builder.Comment(event->text)));
        break;
      case RefXmlEventType::kProcessingInstruction:
        XQP_RETURN_NOT_OK(as_parse_error(
            builder.ProcessingInstruction(event->name.local, event->text)));
        break;
    }
  }
  return builder.Finish();
}

/// Seed TokenStream::FromXml, verbatim (per-event QName interning).
inline Result<TokenStream> ParseTokenStream(
    std::string_view xml, const TokenStreamOptions& options = {}) {
  ParseOptions popts;
  popts.pool_strings = options.pool_strings;
  RefXmlPullParser parser(xml, popts);
  TokenStream ts(options);
  NodeIndex next_id = 0;
  auto id = [&]() { return options.with_node_ids ? next_id++ : kNullNode; };
  while (true) {
    XQP_ASSIGN_OR_RETURN(const RefXmlEvent* event, parser.Next());
    if (event == nullptr) break;
    switch (event->type) {
      case RefXmlEventType::kStartDocument:
        ts.AppendStartDocument();
        id();
        break;
      case RefXmlEventType::kEndDocument:
        ts.AppendEndDocument();
        break;
      case RefXmlEventType::kStartElement: {
        ts.AppendStartElement(event->name, id());
        for (const auto& ns : event->ns_decls) {
          ts.AppendNamespaceDecl(ns.prefix, ns.uri);
        }
        for (const auto& attr : event->attributes) {
          ts.AppendAttribute(attr.name, attr.value, id());
        }
        break;
      }
      case RefXmlEventType::kEndElement:
        ts.AppendEndElement();
        break;
      case RefXmlEventType::kText:
        ts.AppendText(event->text, id());
        break;
      case RefXmlEventType::kComment:
        ts.AppendComment(event->text, id());
        break;
      case RefXmlEventType::kProcessingInstruction:
        ts.AppendProcessingInstruction(event->name.local, event->text, id());
        break;
    }
  }
  return ts;
}

}  // namespace reference
}  // namespace xqp

#endif  // XQP_TESTS_REFERENCE_PARSER_H_
