#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace xqp {
namespace {

using testing_util::RunAllWays;
using testing_util::RunQuery;

constexpr const char* kBib = R"(<bib>
<book year="1994"><title>TCP/IP Illustrated</title><author>Stevens</author><price>65.95</price></book>
<book year="2000"><title>Data on the Web</title><author>Abiteboul</author><author>Buneman</author><author>Suciu</author><price>39.95</price></book>
<book year="1999"><title>The Economics of Technology</title><author>Wilikens</author><price>129.95</price></book>
</bib>)";

struct QueryCase {
  const char* label;
  const char* query;
  const char* expect;
};

class XQueryTest : public ::testing::TestWithParam<QueryCase> {};

TEST_P(XQueryTest, AllEnginesAgreeOnExpected) {
  EXPECT_EQ(RunAllWays(GetParam().query, kBib), GetParam().expect);
}

INSTANTIATE_TEST_SUITE_P(
    Flwor, XQueryTest,
    ::testing::Values(
        QueryCase{"selection",
                  "for $b in doc('doc.xml')//book where $b/price < 50 "
                  "return string($b/title)",
                  "Data on the Web"},
        QueryCase{"let_binding",
                  "for $b in doc('doc.xml')//book let $a := $b/author "
                  "where count($a) > 1 return count($a)",
                  "3"},
        QueryCase{"positional_var",
                  "string-join(for $b at $i in doc('doc.xml')//book "
                  "return concat($i, ':', $b/@year), ' ')",
                  "1:1994 2:2000 3:1999"},
        QueryCase{"multiple_for_join",
                  "count(for $x in (1,2), $y in (10,20,30) return $x * $y)",
                  "6"},
        QueryCase{"where_filters_tuples",
                  "string-join(for $x in (1,2,3,4) where $x mod 2 = 0 "
                  "return string($x), ',')",
                  "2,4"},
        QueryCase{"order_by_string",
                  "string-join(for $b in doc('doc.xml')//book "
                  "order by string($b/title) return string($b/@year), ' ')",
                  "2000 1994 1999"},
        QueryCase{"order_by_numeric",
                  "string-join(for $b in doc('doc.xml')//book "
                  "order by xs:double($b/price) descending "
                  "return string($b/@year), ' ')",
                  "1999 1994 2000"},
        QueryCase{"order_by_two_keys",
                  "string-join(for $p in (3,1,2,1) order by $p, $p return "
                  "string($p), '')",
                  "1123"},
        QueryCase{"order_stable",
                  "string-join(for $p at $i in ('b','a','c','a') "
                  "order by $p return string($i), '')",
                  "2413"},
        QueryCase{"order_empty_least",
                  "string-join(for $p in (2, 1) let $k := (if ($p = 1) "
                  "then () else $p) order by $k return string($p), '')",
                  "12"},
        QueryCase{"order_empty_greatest",
                  "string-join(for $p in (2, 1) let $k := (if ($p = 1) "
                  "then () else $p) order by $k empty greatest "
                  "return string($p), '')",
                  "21"},
        QueryCase{"nested_flwor",
                  "count(for $x in (1,2) return for $y in (1,2,3) "
                  "return $x+$y)",
                  "6"}),
    [](const ::testing::TestParamInfo<QueryCase>& info) {
      return info.param.label;
    });

INSTANTIATE_TEST_SUITE_P(
    ConstructorsAndControl, XQueryTest,
    ::testing::Values(
        QueryCase{"element_ctor",
                  "<res n=\"{count(doc('doc.xml')//book)}\"/>",
                  "<res n=\"3\"/>"},
        QueryCase{"nested_ctor", "<o><i>{1+1}</i></o>", "<o><i>2</i></o>"},
        QueryCase{"sequence_in_content", "<s>{1, 2, 3}</s>",
                  "<s>1 2 3</s>"},
        QueryCase{"adjacent_enclosed", "<s>{1}{2}</s>", "<s>12</s>"},
        QueryCase{"copy_semantics",
                  "count(let $x := <a><b/></a> return ($x, $x)/b)",
                  "1"},  // Same node twice => dedup to one.
        QueryCase{"computed_element", "element z { attribute q {5}, 'body' }",
                  "<z q=\"5\">body</z>"},
        QueryCase{"computed_dynamic_name",
                  "element {concat('a','b')} {}", "<ab/>"},
        QueryCase{"text_ctor", "<w>{text {40+2}}</w>", "<w>42</w>"},
        QueryCase{"comment_ctor", "comment {'hello'}", "<!--hello-->"},
        QueryCase{"pi_ctor", "processing-instruction tgt {'d'}", "<?tgt d?>"},
        QueryCase{"document_ctor", "count(document {<a/>}/a)", "1"},
        QueryCase{"if_branches",
                  "if (count(doc('doc.xml')//book) > 2) then 'many' "
                  "else 'few'",
                  "many"},
        QueryCase{"if_only_taken_branch_errors",
                  "if (true()) then 1 else 1 idiv 0", "1"},
        QueryCase{"typeswitch_int",
                  "typeswitch (42) case xs:string return 's' "
                  "case xs:integer return 'i' default return 'd'",
                  "i"},
        QueryCase{"typeswitch_var",
                  "typeswitch ((1,2)) case $v as xs:integer+ return "
                  "count($v) default return 0",
                  "2"},
        QueryCase{"typeswitch_node",
                  "typeswitch (<a/>) case element() return 'e' "
                  "default return 'o'",
                  "e"}),
    [](const ::testing::TestParamInfo<QueryCase>& info) {
      return info.param.label;
    });

INSTANTIATE_TEST_SUITE_P(
    OperatorsAndTypes, XQueryTest,
    ::testing::Values(
        QueryCase{"arith_promotion", "1 + 2.5", "3.5"},
        QueryCase{"div_integers", "7 div 2", "3.5"},
        QueryCase{"idiv", "7 idiv 2", "3"},
        QueryCase{"mod", "7 mod 2", "1"},
        QueryCase{"unary", "-(3 - 5)", "2"},
        QueryCase{"empty_arith", "() + 1", ""},
        QueryCase{"range", "string-join(for $i in 1 to 4 return string($i), "
                           "'')",
                  "1234"},
        QueryCase{"range_empty", "count(3 to 1)", "0"},
        QueryCase{"instance_of", "(1,2) instance of xs:integer*", "true"},
        QueryCase{"instance_of_occurrence", "(1,2) instance of xs:integer?",
                  "false"},
        QueryCase{"instance_integer_is_decimal", "1 instance of xs:decimal",
                  "true"},
        QueryCase{"castable", "'12' castable as xs:integer", "true"},
        QueryCase{"not_castable", "'x' castable as xs:integer", "false"},
        QueryCase{"cast", "xs:integer('7') + 1", "8"},
        QueryCase{"treat_ok", "count((1,2) treat as xs:integer+)", "2"},
        QueryCase{"quantified_some", "some $x in (1,2,3) satisfies $x > 2",
                  "true"},
        QueryCase{"quantified_every", "every $x in (1,2,3) satisfies $x > 0",
                  "true"},
        QueryCase{"quantified_empty_some",
                  "some $x in () satisfies $x", "false"},
        QueryCase{"quantified_empty_every",
                  "every $x in () satisfies $x", "true"}),
    [](const ::testing::TestParamInfo<QueryCase>& info) {
      return info.param.label;
    });

INSTANTIATE_TEST_SUITE_P(
    UserFunctions, XQueryTest,
    ::testing::Values(
        QueryCase{"simple_function",
                  "declare function local:inc($x) { $x + 1 }; local:inc(41)",
                  "42"},
        QueryCase{"typed_params",
                  "declare function local:add($x as xs:integer, $y as "
                  "xs:integer) as xs:integer { $x + $y }; local:add(20, 22)",
                  "42"},
        QueryCase{"recursion",
                  "declare function local:fib($n) { if ($n < 2) then $n "
                  "else local:fib($n - 1) + local:fib($n - 2) }; "
                  "local:fib(12)",
                  "144"},
        QueryCase{"mutual_recursion",
                  "declare function local:even($n) { if ($n eq 0) then "
                  "true() else local:odd($n - 1) }; declare function "
                  "local:odd($n) { if ($n eq 0) then false() else "
                  "local:even($n - 1) }; local:even(10)",
                  "true"},
        QueryCase{"function_on_nodes",
                  "declare function local:titles($d) { $d//title }; "
                  "count(local:titles(doc('doc.xml')))",
                  "3"},
        QueryCase{"globals",
                  "declare variable $limit := 50; "
                  "count(doc('doc.xml')//book[price < $limit])",
                  "1"},
        QueryCase{"global_uses_global",
                  "declare variable $a := 10; declare variable $b := $a * 2; "
                  "$b",
                  "20"}),
    [](const ::testing::TestParamInfo<QueryCase>& info) {
      return info.param.label;
    });

TEST(XQueryErrors, TreatFailureIsTypeError) {
  std::string r = RunQuery("(1,2) treat as xs:integer", kBib);
  EXPECT_NE(r.find("Type error"), std::string::npos) << r;
}

TEST(XQueryErrors, DivisionByZero) {
  std::string r = RunQuery("1 idiv 0", kBib);
  EXPECT_NE(r.find("Dynamic error"), std::string::npos) << r;
}

TEST(XQueryErrors, RecursionDepthBounded) {
  std::string r = RunQuery(
      "declare function local:loop($n) { local:loop($n + 1) }; local:loop(0)",
      kBib);
  EXPECT_NE(r.find("recursion depth"), std::string::npos) << r;
}

TEST(XQueryErrors, ParamTypeMismatch) {
  std::string r = RunQuery(
      "declare function local:f($x as xs:integer) { $x }; local:f('s')",
      kBib);
  EXPECT_NE(r.find("ERROR"), std::string::npos) << r;
}

TEST(XQuery, ConstructedNodesHaveFreshIdentity) {
  // Two evaluations of the same constructor create distinct nodes.
  EXPECT_EQ(RunAllWays("let $f := <a/> let $g := <a/> return $f is $g"),
            "false");
  EXPECT_EQ(RunAllWays("let $f := <a/> return $f is $f"), "true");
}

TEST(XQuery, DeepEqualVsIdentity) {
  EXPECT_EQ(RunAllWays("deep-equal(<a x=\"1\">t</a>, <a x=\"1\">t</a>)"),
            "true");
  EXPECT_EQ(RunAllWays("deep-equal(<a/>, <b/>)"), "false");
}

}  // namespace
}  // namespace xqp
