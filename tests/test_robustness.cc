// Robustness suite: resource governance (cancellation, deadlines, memory /
// depth / result budgets), integer-overflow semantics, deep-input handling,
// and deterministic fault injection. Error-path behavior is pinned down as
// exact StatusCodes plus a message substring, on both execution engines.

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "base/fault.h"
#include "base/limits.h"
#include "base/metrics.h"
#include "engine.h"
#include "tests/test_util.h"

namespace xqp {
namespace {

using testing_util::RunAllWays;

constexpr const char* kDoc =
    "<site><items>"
    "<item><name>broom</name><price>12</price></item>"
    "<item><name>kettle</name><price>30</price></item>"
    "<item><name>lamp</name><price>7</price></item>"
    "<item><name>mirror</name><price>55</price></item>"
    "<item><name>stool</name><price>19</price></item>"
    "</items></site>";

/// Compiles and runs `query` on one engine, returning the first failure
/// status (compile or execute), or OK.
Status RunStatus(XQueryEngine& engine, std::string_view query, bool use_lazy,
           const QueryLimits& limits = {}) {
  auto compiled = engine.Compile(query);
  if (!compiled.ok()) return compiled.status();
  CompiledQuery::ExecOptions options;
  options.use_lazy_engine = use_lazy;
  options.limits = limits;
  return (*compiled)->Execute(options).status();
}

void ExpectFailure(const Status& s, StatusCode code, std::string_view sub,
                   const std::string& label) {
  ASSERT_FALSE(s.ok()) << label;
  EXPECT_EQ(s.code(), code) << label << ": " << s.ToString();
  EXPECT_NE(s.message().find(sub), std::string::npos)
      << label << ": message was \"" << s.message() << "\"";
}

// ---------------------------------------------------------------------------
// Table-driven status goldens: each case must fail with the exact code and
// carry the substring, identically on the lazy and eager engines.
// ---------------------------------------------------------------------------

struct ErrorCase {
  const char* name;
  const char* query;
  StatusCode code;
  const char* substring;
};

constexpr ErrorCase kQueryErrorCases[] = {
    // Static (syntax) errors.
    {"dangling_operator", "1 +", StatusCode::kStaticError,
     "unexpected token"},
    {"unbalanced_paren", "(1, 2", StatusCode::kStaticError, "expected ')'"},
    {"incomplete_flwor", "for $x in", StatusCode::kStaticError,
     "unexpected token"},
    // Integer overflow is err:FOAR0002, not a trap (INT64_MIN is spelled
    // as an expression: the literal -9223372036854775808 would itself
    // overflow during parsing).
    {"idiv_min_by_minus_one", "(-9223372036854775807 - 1) idiv -1",
     StatusCode::kDynamicError, "FOAR0002"},
    {"add_overflow", "9223372036854775807 + 1", StatusCode::kDynamicError,
     "FOAR0002"},
    {"sub_overflow", "(-9223372036854775807 - 1) - 1",
     StatusCode::kDynamicError, "FOAR0002"},
    {"mul_overflow", "9223372036854775807 * 2", StatusCode::kDynamicError,
     "FOAR0002"},
    {"unary_negate_min", "-(-9223372036854775807 - 1)",
     StatusCode::kDynamicError, "FOAR0002"},
    {"idiv_by_zero", "1 idiv 0", StatusCode::kDynamicError,
     "division by zero"},
    {"mod_by_zero", "1 mod 0", StatusCode::kDynamicError, "modulus by zero"},
};

TEST(Robustness, QueryErrorTable) {
  XQueryEngine engine;
  for (const ErrorCase& c : kQueryErrorCases) {
    for (bool lazy : {true, false}) {
      Status s = RunStatus(engine, c.query, lazy);
      ExpectFailure(s, c.code, c.substring,
                    std::string(c.name) + (lazy ? "/lazy" : "/eager"));
    }
  }
}

TEST(Robustness, OverflowEdgeValuesStillComputable) {
  // The guarded paths must not reject legal edge arithmetic.
  EXPECT_EQ(RunAllWays("(-9223372036854775807 - 1) mod -1", ""), "0");
  EXPECT_EQ(RunAllWays("(-9223372036854775807 - 1) idiv 1", ""),
            "-9223372036854775808");
  EXPECT_EQ(RunAllWays("9223372036854775806 + 1", ""), "9223372036854775807");
}

struct XmlErrorCase {
  const char* name;
  const char* xml;
  const char* substring;
};

constexpr XmlErrorCase kXmlErrorCases[] = {
    {"unclosed_element", "<a><b></a>", "mismatched end tag"},
    {"truncated_document", "<a><b>", "unclosed"},
    {"stray_end_tag", "<a/></b>", "unexpected end tag"},
    {"text_outside_root", "hello", "outside the root"},
    {"missing_attr_value", "<a x></a>", "expected '='"},
    {"unknown_entity", "<a>&nope;</a>", "unknown entity"},
    {"multiple_roots", "<a/><b/>", "multiple root"},
    {"unterminated_comment", "<a><!-- fin</a>", "unterminated comment"},
};

TEST(Robustness, MalformedXmlTable) {
  XQueryEngine engine;
  for (const XmlErrorCase& c : kXmlErrorCases) {
    Status s = engine.ParseAndRegister("bad.xml", c.xml).status();
    ExpectFailure(s, StatusCode::kParseError, c.substring, c.name);
  }
}

// ---------------------------------------------------------------------------
// Depth budgets and deep inputs.
// ---------------------------------------------------------------------------

std::string NestedXml(size_t depth) {
  std::string xml;
  xml.reserve(depth * 7 + 16);
  for (size_t i = 0; i < depth; ++i) xml += "<a>";
  xml += "1";
  for (size_t i = 0; i < depth; ++i) xml += "</a>";
  return xml;
}

TEST(Robustness, ParseDepthDefaultCeiling) {
  XQueryEngine engine;
  // Just under the default ceiling parses...
  XQP_ASSERT_OK(
      engine.ParseAndRegister("deep-ok.xml", NestedXml(4000)).status());
  // ...past it fails cleanly with kParseError.
  Status s = engine.ParseAndRegister("deep.xml", NestedXml(5000)).status();
  ExpectFailure(s, StatusCode::kParseError, "nesting exceeds maximum depth",
                "default parse depth");
}

TEST(Robustness, HundredThousandDeepDocumentDoesNotSmashStack) {
  // 100k nested opens (never closed): the iterative parser must reject
  // this at the depth ceiling rather than recurse into oblivion.
  std::string xml;
  for (int i = 0; i < 100000; ++i) xml += "<a>";
  Status s = Document::Parse(xml).status();
  ExpectFailure(s, StatusCode::kParseError, "maximum depth", "100k deep doc");
}

TEST(Robustness, ParseDepthPerCallOverride) {
  XQueryEngine engine;
  ParseOptions options;
  options.max_parse_depth = 5;
  Status s =
      engine.ParseAndRegister("shallow.xml", NestedXml(10), options).status();
  ExpectFailure(s, StatusCode::kParseError, "maximum depth of 5",
                "per-call parse depth");
  XQP_ASSERT_OK(
      engine.ParseAndRegister("shallow.xml", NestedXml(4), options).status());
}

TEST(Robustness, ConstructedDocumentDepthIsGoverned) {
  // Node constructors bypass the pull parser; DocumentBuilder enforces the
  // ceiling itself.
  ParseOptions options;
  options.max_parse_depth = 3;
  DocumentBuilder builder(options);
  QName a("a");
  Status s = Status::OK();
  for (int i = 0; i < 10 && s.ok(); ++i) s = builder.BeginElement(a);
  ExpectFailure(s, StatusCode::kParseError, "maximum depth",
                "builder depth guard");
}

TEST(Robustness, ExprDepthDefaultCeiling) {
  // 100k nested parens: the parser's depth guard must fire (kStaticError)
  // long before the recursive descent could overflow the stack, and the
  // partially built Expr tree must destruct iteratively.
  std::string query(100000, '(');
  query += "1";
  query += std::string(100000, ')');
  XQueryEngine engine;
  for (bool lazy : {true, false}) {
    Status s = RunStatus(engine, query, lazy);
    ExpectFailure(s, StatusCode::kStaticError, "nesting exceeds maximum depth",
                  "deep parens");
  }
}

TEST(Robustness, ExprDepthEngineOverride) {
  EngineOptions options;
  options.default_limits.max_expr_depth = 10;
  XQueryEngine engine(options);
  std::string deep = std::string(40, '(') + "1" + std::string(40, ')');
  Status s = RunStatus(engine, deep, /*use_lazy=*/true);
  ExpectFailure(s, StatusCode::kStaticError, "maximum depth of 10",
                "expr depth override");
  // Shallow queries still compile under the tightened limit.
  XQP_ASSERT_OK(RunStatus(engine, "1 + 2", /*use_lazy=*/true));
}

TEST(Robustness, DeepButLegalQueryExecutes) {
  // Below the ceiling everything works, and the deep Expr/iterator trees
  // are destroyed without recursion (this test is the stack-smash canary).
  std::string query = std::string(100, '(') + "42" + std::string(100, ')');
  EXPECT_EQ(RunAllWays(query, ""), "42");
}

// ---------------------------------------------------------------------------
// Cancellation, deadlines, and budgets.
// ---------------------------------------------------------------------------

TEST(Robustness, PreCancelledTokenFailsBothEngines) {
  XQueryEngine engine;
  XQP_ASSERT_OK(engine.ParseAndRegister("d.xml", kDoc).status());
  QueryLimits limits;
  limits.cancel = std::make_shared<CancelToken>();
  limits.cancel->Cancel();
  for (bool lazy : {true, false}) {
    Status s = RunStatus(engine, "doc('d.xml')//item/name", lazy, limits);
    ExpectFailure(s, StatusCode::kCancelled, "cancelled",
                  lazy ? "pre-cancelled/lazy" : "pre-cancelled/eager");
  }
  // The token only affects runs that carry it.
  XQP_ASSERT_OK(RunStatus(engine, "doc('d.xml')//item/name", /*use_lazy=*/true));
}

TEST(Robustness, CancelAllStopsInFlightQuery) {
  XQueryEngine engine;
  // A cross product this large never finishes on its own; cancellation is
  // the only way out.
  constexpr const char* kEternal =
      "for $i in 1 to 100000000, $j in 1 to 100000000 "
      "where $i + $j = 0 return 1";
  std::atomic<bool> started{false};
  Status result = Status::OK();
  std::thread runner([&] {
    started.store(true);
    result = RunStatus(engine, kEternal, /*use_lazy=*/true);
  });
  while (!started.load()) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  engine.CancelAll();
  runner.join();
  ExpectFailure(result, StatusCode::kCancelled, "cancelled", "CancelAll");
  // A fresh token was installed: the engine serves new queries normally.
  XQP_ASSERT_OK_AND_ASSIGN(Sequence r, engine.Execute("1 + 1"));
  EXPECT_EQ(r[0].AsAtomic().AsInt(), 2);
}

TEST(Robustness, DeadlineExpiryBothEngines) {
  XQueryEngine engine;
  // Big enough to outlive a 5ms deadline by orders of magnitude, small
  // enough to terminate eventually if the governor were broken.
  constexpr const char* kSlow =
      "for $i in 1 to 4000, $j in 1 to 4000 where $i + $j = 0 return 1";
  QueryLimits limits;
  limits.timeout = std::chrono::milliseconds(5);
  for (bool lazy : {true, false}) {
    Status s = RunStatus(engine, kSlow, lazy, limits);
    ExpectFailure(s, StatusCode::kCancelled, "deadline",
                  lazy ? "deadline/lazy" : "deadline/eager");
  }
}

TEST(Robustness, MemoryBudgetTripsOnConstruction) {
  XQueryEngine engine;
  QueryLimits limits;
  limits.memory_budget_bytes = 64 * 1024;
  // Constructs ~100k nodes; the per-node ChargeBytes must trip the budget.
  constexpr const char* kHungry =
      "for $i in 1 to 100000 return <x>{$i}</x>";
  for (bool lazy : {true, false}) {
    Status s = RunStatus(engine, kHungry, lazy, limits);
    ExpectFailure(s, StatusCode::kResourceExhausted, "memory budget",
                  lazy ? "membudget/lazy" : "membudget/eager");
  }
  // The same query fits in a roomier budget.
  limits.memory_budget_bytes = 1024 * 1024 * 1024;
  XQP_ASSERT_OK(
      RunStatus(engine, "for $i in 1 to 10 return <x>{$i}</x>", true, limits));
}

TEST(Robustness, ResultItemCapBothEngines) {
  XQueryEngine engine;
  QueryLimits limits;
  limits.max_result_items = 5;
  for (bool lazy : {true, false}) {
    Status s = RunStatus(engine, "1 to 100", lazy, limits);
    ExpectFailure(s, StatusCode::kResourceExhausted, "result cap",
                  lazy ? "itemcap/lazy" : "itemcap/eager");
  }
  // At the cap exactly: fine.
  XQP_ASSERT_OK(RunStatus(engine, "1 to 5", /*use_lazy=*/true, limits));
}

TEST(Robustness, TripsAreRecordedInMetrics) {
  // Trip counters register unconditionally (trips are rare), so they show
  // up in PROFILE registry deltas even on engines with stats off.
  metrics::Counter* cancelled =
      metrics::MetricsRegistry::Global().counter("governor.cancelled");
  metrics::Counter* budget_trips =
      metrics::MetricsRegistry::Global().counter("governor.budget_trips");
  uint64_t cancelled_before = cancelled->Value();
  uint64_t budget_before = budget_trips->Value();

  XQueryEngine engine;
  QueryLimits limits;
  limits.cancel = std::make_shared<CancelToken>();
  limits.cancel->Cancel();
  EXPECT_EQ(RunStatus(engine, "1 to 10", true, limits).code(),
            StatusCode::kCancelled);
  QueryLimits cap;
  cap.max_result_items = 2;
  EXPECT_EQ(RunStatus(engine, "1 to 10", true, cap).code(),
            StatusCode::kResourceExhausted);

  EXPECT_GT(cancelled->Value(), cancelled_before);
  EXPECT_GT(budget_trips->Value(), budget_before);
}

TEST(Robustness, EngineDefaultLimitsApply) {
  EngineOptions options;
  options.default_limits.max_result_items = 3;
  XQueryEngine engine(options);
  Status s = RunStatus(engine, "1 to 10", /*use_lazy=*/true);
  ExpectFailure(s, StatusCode::kResourceExhausted, "result cap",
                "engine default limits");
  // Per-call limits override field-by-field.
  QueryLimits roomy;
  roomy.max_result_items = 100;
  XQP_ASSERT_OK(RunStatus(engine, "1 to 10", /*use_lazy=*/true, roomy));
}

TEST(Robustness, ResultStreamHonorsGovernor) {
  XQueryEngine engine;
  XQP_ASSERT_OK_AND_ASSIGN(std::unique_ptr<CompiledQuery> q,
                           engine.Compile("1 to 1000"));
  CompiledQuery::ExecOptions options;
  auto token = std::make_shared<CancelToken>();
  options.limits.cancel = token;
  XQP_ASSERT_OK_AND_ASSIGN(std::unique_ptr<ResultStream> stream,
                           q->Open(options));
  Item item;
  XQP_ASSERT_OK_AND_ASSIGN(bool got, stream->Next(&item));
  EXPECT_TRUE(got);
  token->Cancel();
  Status s = stream->Next(&item).status();
  ExpectFailure(s, StatusCode::kCancelled, "cancelled", "stream cancel");
  // The trip latch is sticky: later pulls report the same verdict.
  s = stream->Next(&item).status();
  EXPECT_EQ(s.code(), StatusCode::kCancelled);
}

TEST(Robustness, BatchParallelObservesCancelAll) {
  XQueryEngine engine;
  engine.CancelAll();  // Swapping tokens with no queries in flight is a no-op
  std::vector<std::string_view> queries = {"1+1", "2+2", "3+3"};
  std::vector<Result<Sequence>> results = engine.ExecuteBatchParallel(queries);
  ASSERT_EQ(results.size(), 3u);
  for (auto& r : results) XQP_ASSERT_OK(r.status());
}

// ---------------------------------------------------------------------------
// Deterministic fault injection.
// ---------------------------------------------------------------------------

TEST(Robustness, FaultAtIteratorsNextCancelsMidStreamBothEngines) {
  // The acceptance scenario: a differential-suite style query is cancelled
  // mid-stream via the "iterators.next" site, fails with kCancelled on
  // both engines, and the engine then serves the identical query again.
  XQueryEngine engine;
  XQP_ASSERT_OK(engine.ParseAndRegister("site.xml", kDoc).status());
  constexpr const char* kQuery =
      "for $i in doc('site.xml')//item where $i/price > 10 return $i/name";
  for (bool lazy : {true, false}) {
    {
      fault::ScopedFault f("iterators.next", 3, StatusCode::kCancelled);
      Status s = RunStatus(engine, kQuery, lazy);
      ExpectFailure(s, StatusCode::kCancelled, "injected fault",
                    lazy ? "fault-cancel/lazy" : "fault-cancel/eager");
    }
    // Fault fired once and disarmed; the same engine, same query, works.
    Status ok = RunStatus(engine, kQuery, lazy);
    XQP_ASSERT_OK(ok);
  }
  // And the two engines still agree on the answer.
  EXPECT_EQ(RunAllWays("for $i in doc('doc.xml')//item "
                       "where $i/price > 10 return $i/name",
                       kDoc),
            "<name>broom</name><name>kettle</name>"
            "<name>mirror</name><name>stool</name>");
}

TEST(Robustness, FaultAtParseNext) {
  fault::ScopedFault f("parse.next", 2, StatusCode::kIoError);
  Status s = Document::Parse("<a><b/><c/></a>").status();
  ExpectFailure(s, StatusCode::kIoError, "injected fault", "parse.next");
  // Disarmed after firing: parsing recovers process-wide.
  XQP_ASSERT_OK(Document::Parse("<a><b/><c/></a>").status());
}

TEST(Robustness, FaultAtAllocFailsConstructionCleanly) {
  XQueryEngine engine;
  fault::ScopedFault f("alloc", 5, StatusCode::kResourceExhausted);
  Status s =
      RunStatus(engine, "for $i in 1 to 100 return <x>{$i}</x>", /*use_lazy=*/true);
  ExpectFailure(s, StatusCode::kResourceExhausted, "injected fault", "alloc");
}

TEST(Robustness, FaultAtPoolSubmitDegradesToInlineRun) {
  // A refused pool enqueue must not deadlock or change results: the task
  // runs inline on the submitting thread.
  EngineOptions options;
  options.parallel_threshold = 1;  // Force parallel dispatch.
  options.num_threads = 4;
  XQueryEngine engine(options);
  XQP_ASSERT_OK(engine.ParseAndRegister("site.xml", kDoc).status());
  fault::ScopedFault f("pool.submit", 1, StatusCode::kInternal);
  XQP_ASSERT_OK_AND_ASSIGN(
      Sequence r, engine.Execute("count(doc('site.xml')//name)"));
  EXPECT_EQ(r[0].AsAtomic().AsInt(), 5);
}

TEST(Robustness, FaultNthCountingIsExact) {
  // nth = 1 means the very first hit; the fault then disarms itself.
  fault::ScopedFault f("parse.next", 1);
  EXPECT_TRUE(fault::Armed());
  Status s = Document::Parse("<a/>").status();
  ExpectFailure(s, StatusCode::kInternal, "injected fault", "nth=1");
  EXPECT_FALSE(fault::Armed());
}

}  // namespace
}  // namespace xqp
