#include "base/string_util.h"

#include <gtest/gtest.h>

namespace xqp {
namespace {

TEST(XmlWhitespace, Basics) {
  EXPECT_TRUE(IsXmlWhitespace(' '));
  EXPECT_TRUE(IsXmlWhitespace('\t'));
  EXPECT_TRUE(IsXmlWhitespace('\n'));
  EXPECT_TRUE(IsXmlWhitespace('\r'));
  EXPECT_FALSE(IsXmlWhitespace('x'));
  EXPECT_FALSE(IsXmlWhitespace('\v'));  // Not XML whitespace.
}

TEST(XmlWhitespace, AllWhitespace) {
  EXPECT_TRUE(IsAllXmlWhitespace(""));
  EXPECT_TRUE(IsAllXmlWhitespace(" \t\r\n"));
  EXPECT_FALSE(IsAllXmlWhitespace(" a "));
}

TEST(XmlWhitespace, Trim) {
  EXPECT_EQ(TrimXmlWhitespace("  ab c  "), "ab c");
  EXPECT_EQ(TrimXmlWhitespace(""), "");
  EXPECT_EQ(TrimXmlWhitespace("   "), "");
  EXPECT_EQ(TrimXmlWhitespace("x"), "x");
}

TEST(NormalizeSpace, CollapsesRuns) {
  EXPECT_EQ(NormalizeSpace("  a \t b\n\nc  "), "a b c");
  EXPECT_EQ(NormalizeSpace(""), "");
  EXPECT_EQ(NormalizeSpace("   "), "");
  EXPECT_EQ(NormalizeSpace("one"), "one");
}

TEST(NCName, Validation) {
  EXPECT_TRUE(IsNCName("abc"));
  EXPECT_TRUE(IsNCName("a-b.c_d9"));
  EXPECT_TRUE(IsNCName("_x"));
  EXPECT_FALSE(IsNCName(""));
  EXPECT_FALSE(IsNCName("9a"));
  EXPECT_FALSE(IsNCName("-a"));
  EXPECT_FALSE(IsNCName("a:b"));  // Colon excluded from NCName.
}

TEST(SplitQName, Cases) {
  std::string_view prefix, local;
  SplitQName("a:b", &prefix, &local);
  EXPECT_EQ(prefix, "a");
  EXPECT_EQ(local, "b");
  SplitQName("b", &prefix, &local);
  EXPECT_EQ(prefix, "");
  EXPECT_EQ(local, "b");
}

TEST(Escaping, Text) {
  std::string out;
  AppendEscapedText("a<b&c>d", &out);
  EXPECT_EQ(out, "a&lt;b&amp;c&gt;d");
}

TEST(Escaping, Attribute) {
  std::string out;
  AppendEscapedAttribute("x\"y&z<\n", &out);
  EXPECT_EQ(out, "x&quot;y&amp;z&lt;&#10;");
}

TEST(FormatDouble, Canonical) {
  EXPECT_EQ(FormatDouble(3.0), "3");
  EXPECT_EQ(FormatDouble(-3.0), "-3");
  EXPECT_EQ(FormatDouble(3.5), "3.5");
  EXPECT_EQ(FormatDouble(0.0), "0");
  EXPECT_EQ(FormatDouble(std::numeric_limits<double>::quiet_NaN()), "NaN");
  EXPECT_EQ(FormatDouble(std::numeric_limits<double>::infinity()), "INF");
  EXPECT_EQ(FormatDouble(-std::numeric_limits<double>::infinity()), "-INF");
}

TEST(SplitMix64, Deterministic) {
  SplitMix64 a(7);
  SplitMix64 b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
  SplitMix64 c(8);
  EXPECT_NE(SplitMix64(7).Next(), c.Next());
}

TEST(SplitMix64, RangeBounds) {
  SplitMix64 rng(1);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Range(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

}  // namespace
}  // namespace xqp
