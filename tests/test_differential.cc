// Randomized differential testing: generated path/FLWOR queries over random
// documents must produce identical results on the eager interpreter and the
// lazy streaming engine, optimized and not.

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace xqp {
namespace {

using testing_util::RandomXml;
using testing_util::RunQuery;

/// Generates a random query from a small grammar over tags a..d.
std::string RandomQuery(SplitMix64* rng) {
  auto tag = [&] {
    return std::string(1, static_cast<char>('a' + rng->Below(4)));
  };
  auto step = [&]() -> std::string {
    switch (rng->Below(6)) {
      case 0:
        return "/" + tag();
      case 1:
        return "//" + tag();
      case 2:
        return "/" + tag() + "[" + std::to_string(1 + rng->Below(3)) + "]";
      case 3:
        return "/" + tag() + "[" + tag() + "]";
      case 4:
        return "/*";
      default:
        return "/" + tag() + "[@k]";
    }
  };
  std::string path = "doc('doc.xml')";
  size_t steps = 1 + rng->Below(4);
  for (size_t i = 0; i < steps; ++i) path += step();

  switch (rng->Below(9)) {
    case 0:
      return "count(" + path + ")";
    case 1:
      return "string-join(for $n in " + path + " return name($n), ',')";
    case 2:
      return "for $n in " + path + " where count($n/*) > 0 return name($n)";
    case 3:
      return "count(" + path + " union doc('doc.xml')//" + tag() + ")";
    case 4:
      return "let $s := " + path +
             " return count($s) + count($s[@k]) * 100";
    case 5:
      return "some $n in " + path + " satisfies count($n/*) > 1";
    case 6:
      return "every $n in " + path + " satisfies exists($n/@k) or "
             "count($n/ancestor::*) > 0";
    case 7:
      return "sum(for $n in " + path + " return string-length(name($n)))";
    default:
      return "string-join(for $n in " + path +
             " order by string($n/@k) return name($n), '')";
  }
}

class DifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialTest, EnginesAndOptimizerAgree) {
  SplitMix64 rng(GetParam());
  std::string doc = RandomXml(GetParam() * 31 + 7, 250, 4);
  for (int i = 0; i < 20; ++i) {
    std::string query = RandomQuery(&rng);
    std::string reference = RunQuery(query, doc, /*lazy=*/false,
                                     /*optimize=*/false);
    ASSERT_EQ(reference.find("COMPILE-ERROR"), std::string::npos)
        << query << " -> " << reference;
    EXPECT_EQ(RunQuery(query, doc, true, false), reference) << query;
    EXPECT_EQ(RunQuery(query, doc, false, true), reference) << query;
    EXPECT_EQ(RunQuery(query, doc, true, true), reference) << query;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                           12, 13, 14, 15));

}  // namespace
}  // namespace xqp
