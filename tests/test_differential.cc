// Randomized differential testing: generated path/FLWOR queries over random
// documents must produce identical results on the eager interpreter and the
// lazy streaming engine, optimized and not. The XMark suite below adds
// ExecuteBatchParallel to the cross-check and asserts the profile
// invariant (plan-root item count == result cardinality) on every
// generated query.

#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "base/fault.h"
#include "engine.h"
#include "storage/snapshot.h"
#include "tests/test_util.h"
#include "xmark/generator.h"

namespace xqp {
namespace {

using testing_util::RandomXml;
using testing_util::RunQuery;

/// Generates a random query from a small grammar over tags a..d.
std::string RandomQuery(SplitMix64* rng) {
  auto tag = [&] {
    return std::string(1, static_cast<char>('a' + rng->Below(4)));
  };
  auto step = [&]() -> std::string {
    switch (rng->Below(6)) {
      case 0:
        return "/" + tag();
      case 1:
        return "//" + tag();
      case 2:
        return "/" + tag() + "[" + std::to_string(1 + rng->Below(3)) + "]";
      case 3:
        return "/" + tag() + "[" + tag() + "]";
      case 4:
        return "/*";
      default:
        return "/" + tag() + "[@k]";
    }
  };
  std::string path = "doc('doc.xml')";
  size_t steps = 1 + rng->Below(4);
  for (size_t i = 0; i < steps; ++i) path += step();

  switch (rng->Below(12)) {
    case 0:
      return "count(" + path + ")";
    case 1:
      return "string-join(for $n in " + path + " return name($n), ',')";
    case 2:
      return "for $n in " + path + " where count($n/*) > 0 return name($n)";
    case 3:
      return "count(" + path + " union doc('doc.xml')//" + tag() + ")";
    case 4:
      return "let $s := " + path +
             " return count($s) + count($s[@k]) * 100";
    case 5:
      return "some $n in " + path + " satisfies count($n/*) > 1";
    case 6:
      return "every $n in " + path + " satisfies exists($n/@k) or "
             "count($n/ancestor::*) > 0";
    case 7:
      return "sum(for $n in " + path + " return string-length(name($n)))";
    case 8:
      // Direct constructor with an attribute value template — the vm's
      // kConstructElem path, serialized as the result.
      return "for $n in " + path +
             " return <v n=\"{name($n)}\">{count($n/*)}</v>";
    case 9:
      // Computed element + attribute constructors with computed names.
      return "for $n in " + path + " return element {concat(name($n), '-', "
             "count($n/*) mod 3)} {attribute k {string($n/@k)}, name($n)}";
    case 10:
      // Multi-key order-by with modifiers (kSortOpen/kSortKey/kSortTuples):
      // possibly-empty first key exercises empty greatest/least.
      return "string-join(for $n in " + path +
             " order by $n/@k empty greatest, "
             "count($n/*) descending, name($n) return name($n), ',')";
    default:
      return "string-join(for $n in " + path +
             " order by string($n/@k) return name($n), '')";
  }
}

class DifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialTest, EnginesAndOptimizerAgree) {
  SplitMix64 rng(GetParam());
  std::string doc = RandomXml(GetParam() * 31 + 7, 250, 4);
  for (int i = 0; i < 20; ++i) {
    std::string query = RandomQuery(&rng);
    std::string reference = RunQuery(query, doc, /*lazy=*/false,
                                     /*optimize=*/false);
    ASSERT_EQ(reference.find("COMPILE-ERROR"), std::string::npos)
        << query << " -> " << reference;
    EXPECT_EQ(RunQuery(query, doc, true, false), reference) << query;
    EXPECT_EQ(RunQuery(query, doc, false, true), reference) << query;
    EXPECT_EQ(RunQuery(query, doc, true, true), reference) << query;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                           12, 13, 14, 15));

// --- XMark differential suite ---------------------------------------------

/// One XMark scale-0.02 document parsed once and shared by every test
/// instance (parsing dominates the suite's runtime otherwise).
std::shared_ptr<const Document> SharedXMarkDoc() {
  static auto* doc = new std::shared_ptr<const Document>([] {
    XMarkOptions options;
    options.scale = 0.02;
    return Document::Parse(GenerateXMarkXml(options)).ValueOrDie();
  }());
  return *doc;
}

/// The shared XMark document frozen through the storage subsystem, indexes
/// included — the snapshot twin below reopens it via mmap, so every
/// generated query also cross-checks parsed-vs-snapshot-loaded execution.
const std::string& SharedXMarkSnapshotPath() {
  static auto* path = new std::string([] {
    std::string p = ::testing::TempDir() + "/xqp_diff_xmark.xqps";
    std::shared_ptr<const Document> doc = SharedXMarkDoc();
    auto indexes = DocumentIndexes::Build(doc, kIndexValueAll).ValueOrDie();
    storage::SnapshotInput input;
    input.doc = doc.get();
    input.indexes = indexes.get();
    Status st = storage::WriteSnapshotFile(p, input);
    EXPECT_TRUE(st.ok()) << st.ToString();
    return p;
  }());
  return *path;
}

/// Random queries over the real XMark vocabulary: anchored descendant
/// paths with positional / existence / twig predicates, wrapped in the
/// aggregate and FLWOR shapes the engines treat differently (streaming vs
/// materializing, rewritten vs not).
std::string RandomXMarkQuery(SplitMix64* rng) {
  static constexpr const char* kTags[] = {
      "item",     "name",     "keyword",  "bidder",   "increase",
      "seller",   "open_auction", "description", "mailbox", "date",
      "price",    "payment",  "category", "location", "quantity",
      "person",   "emph",     "listitem", "bold",     "text"};
  auto tag = [&] {
    return std::string(kTags[rng->Below(std::size(kTags))]);
  };
  // Value predicates over typed XMark content — the shapes the value index
  // answers (index/index_planner.h), so indexed and unindexed plans get
  // cross-checked on numeric ranges, attribute equality, and string
  // comparisons alike.
  auto value_pred = [&]() -> std::string {
    switch (rng->Below(5)) {
      case 0:
        return "[quantity < " + std::to_string(1 + rng->Below(6)) + "]";
      case 1:
        return "[quantity = " + std::to_string(1 + rng->Below(6)) + "]";
      case 2:
        return "[@id = 'person" + std::to_string(rng->Below(40)) + "']";
      case 3:
        return "[price >= " + std::to_string(10 * rng->Below(12)) + "]";
      default:
        return "[date != '01/01/2000']";
    }
  };
  auto step = [&](bool first) -> std::string {
    switch (rng->Below(10)) {
      case 0:
        return "//" + tag();
      case 1:
        return (first ? "//" : "/") + tag();
      case 2:
        return "//" + tag() + "[" + std::to_string(1 + rng->Below(3)) + "]";
      case 3:
        return "//" + tag() + "[" + tag() + "]";
      case 4:
        return first ? "//" + tag() : "/*";
      case 5:
        return "//item" + value_pred();
      case 6:
        return "//" + tag() + value_pred();
      case 7:
        // Pure child segments lower to the vm's kNavStep fast path.
        return (first ? "/site/" : "/") + tag();
      case 8:
        return first ? "//item/@id" : "/@id";
      default:
        return "//" + tag() + "[.//" + tag() + "]";
    }
  };
  std::string path = "doc('xmark.xml')";
  size_t steps = 1 + rng->Below(3);
  for (size_t i = 0; i < steps; ++i) path += step(i == 0);

  switch (rng->Below(11)) {
    case 0:
      return "count(" + path + ")";
    case 1:
      return "string-join(for $n in " + path + " return name($n), ',')";
    case 2:
      return "for $n in " + path + " where count($n/*) > 2 return name($n)";
    case 3:
      return "let $s := " + path +
             " return count($s) * 10 + count($s[.//keyword])";
    case 4:
      return "some $n in " + path + " satisfies count($n/*) > 3";
    case 5:
      return "sum(for $n in " + path + " return string-length(name($n)))";
    case 6:
      return "for $n in " + path +
             " order by string($n/name[1]) return name($n)";
    case 7:
      // Direct constructor return clause — the XMark Q13-style transform
      // the vm now compiles via kConstructElem.
      return "for $n in " + path +
             " return <hit tag=\"{name($n)}\">{string-length($n)}</hit>";
    case 8:
      // Computed element/attribute/text constructors with a computed name.
      return "for $n in " + path + " return element {concat('e', "
             "string-length(name($n)) mod 4)} {attribute src {name($n)}, "
             "text {count($n/*)}}";
    case 9:
      // Multi-key order-by with modifiers; the @id key is empty for
      // attribute-valued $n, exercising empty least.
      return "string-join(for $n in " + path +
             " order by string-length(name($n)) descending, "
             "$n/@id empty least return name($n), '.')";
    default:
      return "count(" + path + " union doc('xmark.xml')//keyword)";
  }
}

class XMarkDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(XMarkDifferentialTest, EnginesBatchAndProfileAgree) {
  SplitMix64 rng(GetParam() * 7919 + 13);
  XQueryEngine engine;
  XQP_ASSERT_OK(engine.RegisterDocument("xmark.xml", SharedXMarkDoc()));

  // Twin engine with the index subsystem off: optimized plans here carry no
  // index marks, so comparing its output pins indexed execution to the
  // join/navigation plans byte for byte.
  EngineOptions unindexed_options;
  unindexed_options.enable_indexes = false;
  XQueryEngine unindexed(unindexed_options);
  XQP_ASSERT_OK(unindexed.RegisterDocument("xmark.xml", SharedXMarkDoc()));

  // Snapshot twin: the same document persisted and reopened through the
  // storage subsystem — zero-copy mmap'd node table, adopted
  // snapshot-resident indexes. Results must be bit-identical to the
  // parsed original on every backend.
  XQueryEngine snapped;
  XQP_ASSERT_OK(
      snapped.LoadDocumentSnapshot("xmark.xml", SharedXMarkSnapshotPath())
          .status());
  ASSERT_NE(snapped.PeekDocumentIndexes("xmark.xml"), nullptr);

  XQueryEngine::CompileOptions no_opt;
  no_opt.optimize = false;
  CompiledQuery::ExecOptions eager;
  eager.use_lazy_engine = false;
  CompiledQuery::ExecOptions lazy;
  lazy.use_lazy_engine = true;
  CompiledQuery::ExecOptions vmexec;
  vmexec.backend = ExecBackend::kVm;

  std::vector<std::string> queries;
  std::vector<std::string> expected;
  for (int i = 0; i < 8; ++i) {
    std::string query = RandomXMarkQuery(&rng);

    // Reference: eager interpreter on the unoptimized plan.
    auto reference = engine.Compile(query, no_opt);
    ASSERT_TRUE(reference.ok()) << query << ": "
                                << reference.status().ToString();
    XQP_ASSERT_OK_AND_ASSIGN(std::string want,
                             reference.value()->ExecuteToXml(eager));
    EXPECT_EQ(reference.value()->ExecuteToXml(lazy).ValueOrDie(), want)
        << query;

    // Optimized plan, all three backends. The vm twin pins the bytecode
    // compiler + VM (and its per-subtree bailouts) bit-identical to lazy.
    auto optimized = engine.Compile(query);
    ASSERT_TRUE(optimized.ok()) << query;
    EXPECT_EQ(optimized.value()->ExecuteToXml(eager).ValueOrDie(), want)
        << query;
    EXPECT_EQ(optimized.value()->ExecuteToXml(lazy).ValueOrDie(), want)
        << query;
    EXPECT_EQ(optimized.value()->ExecuteToXml(vmexec).ValueOrDie(), want)
        << query;

    // Fault injection at the bytecode compiler: the query must fall back
    // to the lazy engine transparently, still bit-identical.
    {
      fault::ScopedFault vm_fault("vm.compile", 1);
      auto faulted = engine.Compile(query);
      ASSERT_TRUE(faulted.ok()) << query;
      EXPECT_EQ(faulted.value()->ExecuteToXml(vmexec).ValueOrDie(), want)
          << query << " (vm.compile fault)";
    }

    // Resource-limit parity: with a tight result cap the vm backend trips
    // the same governor error as lazy, or both succeed with equal results.
    {
      CompiledQuery::ExecOptions capped_lazy = lazy;
      capped_lazy.limits.max_result_items = 3;
      CompiledQuery::ExecOptions capped_vm = vmexec;
      capped_vm.limits.max_result_items = 3;
      auto lazy_r = optimized.value()->Execute(capped_lazy);
      auto vm_r = optimized.value()->Execute(capped_vm);
      ASSERT_EQ(lazy_r.ok(), vm_r.ok()) << query;
      if (lazy_r.ok()) {
        EXPECT_EQ(SerializeSequence(vm_r.value()).ValueOrDie(),
                  SerializeSequence(lazy_r.value()).ValueOrDie())
            << query;
      } else {
        EXPECT_EQ(vm_r.status().code(), lazy_r.status().code()) << query;
      }
    }

    // Optimized plan with indexes disabled engine-wide.
    auto plain = unindexed.Compile(query);
    ASSERT_TRUE(plain.ok()) << query;
    EXPECT_EQ(plain.value()->ExecuteToXml(lazy).ValueOrDie(), want) << query;

    // Snapshot twin, all three backends.
    auto snap = snapped.Compile(query);
    ASSERT_TRUE(snap.ok()) << query;
    EXPECT_EQ(snap.value()->ExecuteToXml(lazy).ValueOrDie(), want)
        << query << " (snapshot twin, lazy)";
    EXPECT_EQ(snap.value()->ExecuteToXml(eager).ValueOrDie(), want)
        << query << " (snapshot twin, eager)";
    EXPECT_EQ(snap.value()->ExecuteToXml(vmexec).ValueOrDie(), want)
        << query << " (snapshot twin, vm)";

    // Profile invariant on the optimized plan, both engines: the root
    // operator's item count is the result cardinality and the profiled
    // result is the reference result.
    for (const auto& exec : {lazy, eager, vmexec}) {
      auto report = optimized.value()->Profile(exec);
      ASSERT_TRUE(report.ok()) << query << ": "
                               << report.status().ToString();
      const OpStats* root = report.value().RootStats();
      ASSERT_NE(root, nullptr) << query;
      EXPECT_EQ(root->items, report.value().result.size())
          << query << " (lazy=" << exec.use_lazy_engine << ")";
      EXPECT_EQ(SerializeSequence(report.value().result).ValueOrDie(), want)
          << query;
    }

    queries.push_back(std::move(query));
    expected.push_back(std::move(want));
  }

  // The whole batch fanned across the thread pool must be positionally
  // identical to the serial reference runs.
  std::vector<std::string_view> views(queries.begin(), queries.end());
  auto batch = engine.ExecuteBatchParallel(views);
  ASSERT_EQ(batch.size(), queries.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    ASSERT_TRUE(batch[i].ok())
        << queries[i] << ": " << batch[i].status().ToString();
    EXPECT_EQ(SerializeSequence(batch[i].value()).ValueOrDie(), expected[i])
        << queries[i];
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, XMarkDifferentialTest,
                         ::testing::Values(21, 22, 23, 24, 25, 26, 27, 28));

}  // namespace
}  // namespace xqp
