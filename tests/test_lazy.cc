// Lazy-evaluation behaviour of the streaming iterator engine: demand-driven
// computation, early exit, shared buffers — the paper's "compute only when
// you need it, and only if you need it".

#include <gtest/gtest.h>

#include "exec/iterators.h"
#include "opt/properties.h"
#include "query/normalize.h"
#include "query/parser.h"
#include "tests/test_util.h"

namespace xqp {
namespace {

using testing_util::RunQuery;

/// Compiles and opens a query for streaming, returning the iterator plus
/// the context that owns its bindings.
struct OpenQuery {
  std::unique_ptr<ParsedModule> module;
  DynamicContext ctx;
  std::unique_ptr<ItemIterator> iterator;
};

std::unique_ptr<OpenQuery> Open(const std::string& query) {
  auto open = std::make_unique<OpenQuery>();
  auto module = ParseQuery(query);
  EXPECT_TRUE(module.ok()) << module.status().ToString();
  open->module = std::move(module).value();
  EXPECT_TRUE(NormalizeModule(open->module.get()).ok());
  AnalyzeExpr(open->module->body.get(), open->module.get());
  open->ctx.module = open->module.get();
  open->ctx.slots.assign(open->module->num_slots, nullptr);
  auto it = OpenLazy(open->module->body.get(), &open->ctx);
  EXPECT_TRUE(it.ok()) << it.status().ToString();
  open->iterator = std::move(it).value();
  return open;
}

TEST(Lazy, PositionalPredicateStopsEarly) {
  // (1 to 100000000)[3] must not expand the whole range.
  EXPECT_EQ(RunQuery("(1 to 100000000)[3]"), "3");
}

TEST(Lazy, ExistsStopsAfterFirstItem) {
  EXPECT_EQ(RunQuery("exists(1 to 100000000)"), "true");
  EXPECT_EQ(RunQuery("empty(1 to 100000000)"), "false");
}

TEST(Lazy, HeadOnHugeSequence) {
  EXPECT_EQ(RunQuery("head(1 to 100000000)"), "1");
}

TEST(Lazy, QuantifierShortCircuits) {
  // some over a huge domain where the witness is early.
  EXPECT_EQ(RunQuery("some $x in (1 to 100000000) satisfies $x eq 5"),
            "true");
  EXPECT_EQ(RunQuery("every $x in (1 to 100000000) satisfies $x lt 3"),
            "false");
}

TEST(Lazy, PaperEndlessOnesExample) {
  // declare function endlessOnes() { (1, endlessOnes()) };
  // some $x in endlessOnes() satisfies $x eq 1  =>  true.
  // Full laziness through recursive functions: the witness is found before
  // the recursion deepens.
  EXPECT_EQ(RunQuery("declare function local:endlessOnes() { (1, "
                     "local:endlessOnes()) }; some $x in "
                     "local:endlessOnes() satisfies $x eq 1"),
            "true");
}

TEST(Lazy, EffectiveBooleanOfInfiniteNodeFirstSequence) {
  // boolean() needs at most two items; a node first means true.
  EXPECT_EQ(RunQuery("declare function local:nodes() { (<a/>, "
                     "local:nodes()) }; boolean(local:nodes())"),
            "true");
}

TEST(Lazy, IfConditionPullsMinimum) {
  EXPECT_EQ(RunQuery("if (1 to 100000000) then 'y' else 'n'", "", true,
                     /*optimize=*/false),
            "ERROR: Type error: effective boolean value of a multi-item "
            "atomic sequence");
  EXPECT_EQ(RunQuery("if (exists(1 to 100000000)) then 'y' else 'n'"), "y");
}

TEST(Lazy, StreamingFirstItemWithoutDraining) {
  auto open = Open("for $i in (1 to 100000000) return $i * 2");
  Item item;
  auto got = open->iterator->Next(&item);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_TRUE(got.value());
  EXPECT_EQ(item.AsAtomic().AsInt(), 2);
  // Pull a few more; still cheap.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(open->iterator->Next(&item).value());
  }
  EXPECT_EQ(item.AsAtomic().AsInt(), 12);
}

TEST(Lazy, LetBindingSharedNotRecomputed) {
  // A let consumed by two count() calls: the shared LazySeq buffer means
  // both see the same items (correctness of the buffer-iterator factory).
  EXPECT_EQ(RunQuery("let $s := (1 to 1000) return count($s) + count($s)"),
            "2000");
}

TEST(Lazy, LetBindingUnusedNeverEvaluated) {
  // The let expression would raise if evaluated; laziness skips it.
  EXPECT_EQ(RunQuery("let $boom := error('never') return 42", "",
                     /*lazy=*/true, /*optimize=*/false),
            "42");
}

TEST(LazySeq, BufferGrowsOnDemand) {
  Sequence items;
  for (int i = 0; i < 100; ++i) items.push_back(Item(AtomicValue::Integer(i)));
  auto seq = LazySeq::FromVector(items);
  EXPECT_TRUE(seq->fully_materialized());
  EXPECT_EQ(seq->Size().value(), 100u);
}

TEST(LazySeq, MultipleConsumersShareBuffer) {
  // Two cursors over one LazySeq: interleaved pulls see consistent data.
  Sequence items;
  for (int i = 0; i < 10; ++i) items.push_back(Item(AtomicValue::Integer(i)));
  auto seq = LazySeq::FromVector(std::move(items));
  LazySeqIterator a(seq);
  LazySeqIterator b(seq);
  ASSERT_TRUE(a.Reset(nullptr).ok());
  ASSERT_TRUE(b.Reset(nullptr).ok());
  Item ia, ib;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(a.Next(&ia).value());
    if (i % 2 == 0) {
      ASSERT_TRUE(b.Next(&ib).value());
      EXPECT_EQ(ib.AsAtomic().AsInt(), i / 2);
    }
    EXPECT_EQ(ia.AsAtomic().AsInt(), i);
  }
}

TEST(Lazy, StreamingEbvPullsAtMostTwo) {
  auto open = Open("(1 to 100000000)");
  auto ebv = StreamingEbv(open->iterator.get());
  // Two atoms => type error, but crucially it returns (no hang).
  EXPECT_FALSE(ebv.ok());
}

TEST(Lazy, CountStreamsWithoutMaterializing) {
  EXPECT_EQ(RunQuery("count(1 to 2000000)"), "2000000");
}

TEST(Lazy, SubsequenceSkipsLazily) {
  EXPECT_EQ(RunQuery("string-join(for $x in subsequence(1 to 100000000, "
                     "5, 3) return string($x), ',')"),
            "5,6,7");
}

}  // namespace
}  // namespace xqp
