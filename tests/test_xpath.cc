#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace xqp {
namespace {

using testing_util::RunAllWays;

/// All queries run against this document, registered as doc("doc.xml").
constexpr const char* kDoc = R"(<site>
<a id="1"><b>x</b><b>y</b><c><b>z</b></c></a>
<a id="2"><c><d/></c></a>
<b>top</b>
<mixed>one <em>two</em> three<!--note--><?pi data?></mixed>
</site>)";

struct QueryCase {
  const char* label;
  const char* query;
  const char* expect;
};

class XPathTest : public ::testing::TestWithParam<QueryCase> {};

TEST_P(XPathTest, AllEnginesAgreeOnExpected) {
  EXPECT_EQ(RunAllWays(GetParam().query, kDoc), GetParam().expect);
}

INSTANTIATE_TEST_SUITE_P(
    Axes, XPathTest,
    ::testing::Values(
        QueryCase{"child", "count(doc('doc.xml')/site/a)", "2"},
        QueryCase{"descendant_all", "count(doc('doc.xml')//b)", "4"},
        QueryCase{"descendant_scoped", "count(doc('doc.xml')/site/a//b)", "3"},
        QueryCase{"attribute", "string(doc('doc.xml')/site/a[1]/@id)", "1"},
        QueryCase{"attribute_wild", "count(doc('doc.xml')//@*)", "2"},
        QueryCase{"parent",
                  "string(doc('doc.xml')//d/../../@id)", "2"},
        QueryCase{"self", "count(doc('doc.xml')//b/self::b)", "4"},
        QueryCase{"self_mismatch", "count(doc('doc.xml')//b/self::c)", "0"},
        QueryCase{"ancestor", "count(doc('doc.xml')//d/ancestor::*)", "3"},
        QueryCase{"ancestor_or_self",
                  "count(doc('doc.xml')//d/ancestor-or-self::*)", "4"},
        QueryCase{"descendant_axis",
                  "count(doc('doc.xml')/site/descendant::b)", "4"},
        QueryCase{"descendant_or_self_axis",
                  "count(doc('doc.xml')/site/descendant-or-self::*)", "12"},
        QueryCase{"following_sibling",
                  "count(doc('doc.xml')/site/a[1]/following-sibling::*)", "3"},
        QueryCase{"preceding_sibling",
                  "count(doc('doc.xml')/site/mixed/preceding-sibling::*)",
                  "3"},
        QueryCase{"following",
                  "count(doc('doc.xml')//c[1]/following::b)", "1"},
        QueryCase{"preceding",
                  "count(doc('doc.xml')/site/b/preceding::b)", "3"},
        QueryCase{"text_nodes", "string-join(doc('doc.xml')//a//text(), '|')",
                  "x|y|z"},
        QueryCase{"comment_node", "string(doc('doc.xml')//comment())",
                  "note"},
        QueryCase{"pi_node", "string(doc('doc.xml')//processing-instruction())",
                  "data"},
        QueryCase{"pi_named",
                  "count(doc('doc.xml')//processing-instruction('pi'))", "1"},
        QueryCase{"node_test", "count(doc('doc.xml')/site/mixed/node())",
                  "5"},
        QueryCase{"wildcard", "count(doc('doc.xml')/site/*)", "4"}),
    [](const ::testing::TestParamInfo<QueryCase>& info) {
      return info.param.label;
    });

INSTANTIATE_TEST_SUITE_P(
    Predicates, XPathTest,
    ::testing::Values(
        QueryCase{"positional_first",
                  "string-join(doc('doc.xml')//b[1], '|')", "x|z|top"},
        QueryCase{"positional_on_path",
                  "string-join(doc('doc.xml')/site/a/b[1], '|')", "x"},
        QueryCase{"parenthesized_position",
                  "string((doc('doc.xml')//b)[2])", "y"},
        QueryCase{"last_predicate",
                  "string(doc('doc.xml')/site/a[1]/b[last()])", "y"},
        QueryCase{"position_function",
                  "string-join(doc('doc.xml')/site/a[1]/b[position() ge 2], "
                  "'|')",
                  "y"},
        QueryCase{"value_predicate",
                  "count(doc('doc.xml')/site/a[@id = \"1\"])", "1"},
        QueryCase{"exist_predicate", "count(doc('doc.xml')//a[c])", "2"},
        QueryCase{"nested_predicate", "count(doc('doc.xml')//a[c[d]])", "1"},
        QueryCase{"chained_predicates",
                  "count(doc('doc.xml')//b[text()][1])", "3"},
        QueryCase{"boolean_numeric_mix",
                  "string-join(doc('doc.xml')//b[position() = (1, 3)], '|')",
                  "x|z|top"},
        QueryCase{"range_predicate",
                  "count((doc('doc.xml')//b)[position() = 1 to 3])", "3"},
        QueryCase{"empty_result", "count(doc('doc.xml')//nothing)", "0"}),
    [](const ::testing::TestParamInfo<QueryCase>& info) {
      return info.param.label;
    });

INSTANTIATE_TEST_SUITE_P(
    PathSemantics, XPathTest,
    ::testing::Values(
        // Document order and duplicate elimination on multi-origin paths.
        QueryCase{"doc_order",
                  "string-join(for $n in doc('doc.xml')//b return "
                  "string($n), '|')",
                  "x|y|z|top"},
        QueryCase{"union_sorts_dedups",
                  "count(doc('doc.xml')//b union doc('doc.xml')//b)", "4"},
        QueryCase{"union_mixed",
                  "count(doc('doc.xml')//c union doc('doc.xml')//b)", "6"},
        QueryCase{"intersect",
                  "count(doc('doc.xml')//a//b intersect doc('doc.xml')//b)",
                  "3"},
        QueryCase{"except",
                  "string(doc('doc.xml')//b except doc('doc.xml')//a//b)",
                  "top"},
        QueryCase{"parent_dedup",
                  "count(doc('doc.xml')/site/a[1]/b/..)", "1"},
        QueryCase{"double_slash_then_child",
                  "count(doc('doc.xml')//c/b)", "1"},
        QueryCase{"atomic_path_tail",
                  "string-join(doc('doc.xml')/site/a/string(@id), '|')",
                  "1|2"}),
    [](const ::testing::TestParamInfo<QueryCase>& info) {
      return info.param.label;
    });

TEST(XPathErrors, MixedNodeAtomicPathFails) {
  std::string r = testing_util::RunQuery(
      "doc('doc.xml')/site/a/(if (@id = '1') then 1 else c)", kDoc);
  EXPECT_NE(r.find("ERROR"), std::string::npos);
}

TEST(XPathErrors, StepOnAtomicFails) {
  std::string r = testing_util::RunQuery("(1,2)/a", kDoc);
  EXPECT_NE(r.find("ERROR"), std::string::npos);
}

}  // namespace
}  // namespace xqp
