#ifndef XQP_TESTS_TEST_UTIL_H_
#define XQP_TESTS_TEST_UTIL_H_

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "base/string_util.h"
#include "engine.h"
#include "xml/document.h"

namespace xqp {
namespace testing_util {

/// gtest-friendly Status/Result assertions.
#define XQP_ASSERT_OK(expr)                                         \
  do {                                                              \
    const auto& _st = (expr);                                       \
    ASSERT_TRUE(_st.ok()) << _st.ToString();                        \
  } while (0)

#define XQP_ASSERT_OK_AND_ASSIGN(lhs, rexpr)    \
  auto XQP_CONCAT(_r_, __LINE__) = (rexpr);     \
  ASSERT_TRUE(XQP_CONCAT(_r_, __LINE__).ok())   \
      << XQP_CONCAT(_r_, __LINE__).status().ToString(); \
  lhs = std::move(XQP_CONCAT(_r_, __LINE__)).value();

/// Runs `query` against an engine pre-loaded with `docs` (uri -> xml) and
/// returns the serialized result, using the requested engine.
inline std::string RunQuery(const std::string& query,
                            const std::string& doc_xml = "",
                            bool use_lazy = true, bool optimize = true) {
  XQueryEngine engine;
  if (!doc_xml.empty()) {
    auto doc = engine.ParseAndRegister("doc.xml", doc_xml);
    EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  }
  XQueryEngine::CompileOptions copts;
  copts.optimize = optimize;
  auto compiled = engine.Compile(query, copts);
  if (!compiled.ok()) return "COMPILE-ERROR: " + compiled.status().ToString();
  CompiledQuery::ExecOptions eopts;
  eopts.use_lazy_engine = use_lazy;
  auto result = (*compiled)->ExecuteToXml(eopts);
  if (!result.ok()) return "ERROR: " + result.status().ToString();
  return *result;
}

/// Runs on all four engine/optimizer combinations and asserts they agree;
/// returns the common serialization.
inline std::string RunAllWays(const std::string& query,
                              const std::string& doc_xml = "") {
  std::string base = RunQuery(query, doc_xml, /*lazy=*/false, /*opt=*/false);
  EXPECT_EQ(base, RunQuery(query, doc_xml, true, false)) << query;
  EXPECT_EQ(base, RunQuery(query, doc_xml, false, true)) << query;
  EXPECT_EQ(base, RunQuery(query, doc_xml, true, true)) << query;
  return base;
}

/// Deterministic random XML tree for property tests: elements drawn from a
/// small tag alphabet with nesting, text, and attributes.
inline std::string RandomXml(uint64_t seed, size_t target_elements = 200,
                             size_t tag_count = 4) {
  SplitMix64 rng(seed);
  std::string out = "<r>";
  size_t open = 1;
  std::string close_stack = "r";  // One char per open tag (tag index).
  std::vector<std::string> tags;
  for (size_t t = 0; t < tag_count; ++t) {
    tags.push_back(std::string(1, static_cast<char>('a' + t)));
  }
  std::vector<size_t> opens;  // Indices into tags.
  size_t emitted = 0;
  while (emitted < target_elements || !opens.empty()) {
    uint64_t action = rng.Below(10);
    if (emitted < target_elements && (action < 5 || opens.empty())) {
      size_t t = rng.Below(tags.size());
      out += "<" + tags[t];
      if (rng.Below(3) == 0) {
        out += " k=\"" + std::to_string(rng.Below(10)) + "\"";
      }
      out += ">";
      opens.push_back(t);
      ++emitted;
      ++open;
    } else if (action < 8 && !opens.empty()) {
      out += "</" + tags[opens.back()] + ">";
      opens.pop_back();
    } else {
      out += "t" + std::to_string(rng.Below(100));
    }
  }
  out += "</r>";
  return out;
}

}  // namespace testing_util
}  // namespace xqp

#endif  // XQP_TESTS_TEST_UTIL_H_
