#include "join/twig.h"

#include <gtest/gtest.h>

#include "engine.h"
#include "join/twig_planner.h"
#include "tests/test_util.h"

namespace xqp {
namespace {

using testing_util::RandomXml;

TwigPattern PathAB() {
  TwigPattern p;
  p.Add("a");
  p.output = p.Add("b", 0, false);
  return p;
}

TEST(TwigPattern, Shape) {
  TwigPattern p;
  p.Add("a");
  p.Add("b", 0, false);
  int c = p.Add("c", 0, true);
  p.output = c;
  EXPECT_FALSE(p.IsPath());
  EXPECT_EQ(p.ToString(), "//a[//b][/c*]");
  EXPECT_TRUE(PathAB().IsPath());
}

TEST(PathStack, SimplePath) {
  auto doc = Document::Parse("<r><a><b/><c><b/></c></a><b/></r>").value();
  TagIndex index(doc);
  auto result = std::move(PathStackMatch(index, PathAB())).ValueOrDie();
  EXPECT_EQ(result.size(), 2u);  // Both b's under a; outer b excluded.
}

TEST(PathStack, ChildEdgeRestricts) {
  auto doc = Document::Parse("<r><a><b/><c><b/></c></a></r>").value();
  TagIndex index(doc);
  TwigPattern p;
  p.Add("a");
  p.output = p.Add("b", 0, /*child_edge=*/true);
  auto result = std::move(PathStackMatch(index, p)).ValueOrDie();
  EXPECT_EQ(result.size(), 1u);
}

TEST(PathStack, OutputAtInnerLevel) {
  // //a//b with output = a: ancestors that contain a b.
  auto doc =
      Document::Parse("<r><a><b/></a><a><c/></a><a><x><b/></x></a></r>")
          .value();
  TagIndex index(doc);
  TwigPattern p;
  int a = p.Add("a");
  p.Add("b", a, false);
  p.output = a;
  auto result = std::move(PathStackMatch(index, p)).ValueOrDie();
  EXPECT_EQ(result.size(), 2u);
}

TEST(TwigStack, BranchingPattern) {
  // //a[b][c] output a.
  auto doc = Document::Parse(
                 "<r><a><b/><c/></a><a><b/></a><a><c/></a>"
                 "<a><x><b/></x><c/></a></r>")
                 .value();
  TagIndex index(doc);
  TwigPattern p;
  int a = p.Add("a");
  p.Add("b", a, false);
  p.Add("c", a, false);
  p.output = a;
  auto result = std::move(TwigStackMatch(index, p)).ValueOrDie();
  EXPECT_EQ(result.size(), 2u);  // First and last a.
}

TEST(TwigStack, SingleNodePattern) {
  auto doc = Document::Parse("<r><a/><a/></r>").value();
  TagIndex index(doc);
  TwigPattern p;
  p.Add("a");
  auto result = std::move(TwigStackMatch(index, p)).ValueOrDie();
  EXPECT_EQ(result.size(), 2u);
}

TEST(TwigStack, MissingTagYieldsEmpty) {
  auto doc = Document::Parse("<r><a/></r>").value();
  TagIndex index(doc);
  TwigPattern p;
  p.Add("a");
  p.output = p.Add("zzz", 0, false);
  auto result = std::move(TwigStackMatch(index, p)).ValueOrDie();
  EXPECT_TRUE(result.empty());
}

/// Property: holistic, binary-join, and navigation matchers agree on random
/// documents across a set of pattern shapes.
struct TwigParam {
  uint64_t seed;
  int pattern;  // 0 = //a//b, 1 = //a/b, 2 = //a[b]//c, 3 = //a[/b][//c]//d
};

TwigPattern MakePattern(int which) {
  TwigPattern p;
  switch (which) {
    case 0: {
      p.Add("a");
      p.output = p.Add("b", 0, false);
      break;
    }
    case 1: {
      p.Add("a");
      p.output = p.Add("b", 0, true);
      break;
    }
    case 2: {
      int a = p.Add("a");
      p.Add("b", a, false);
      p.output = p.Add("c", a, false);
      break;
    }
    default: {
      int a = p.Add("a");
      p.Add("b", a, true);
      p.Add("c", a, false);
      p.output = p.Add("d", a, false);
      break;
    }
  }
  return p;
}

class TwigEquivalenceTest : public ::testing::TestWithParam<TwigParam> {};

TEST_P(TwigEquivalenceTest, MatchersAgree) {
  auto [seed, pattern_id] = GetParam();
  auto doc = Document::Parse(RandomXml(seed, 400, 4)).value();
  TagIndex index(doc);
  TwigPattern pattern = MakePattern(pattern_id);

  TwigStats tw_stats{};
  TwigStats bj_stats{};
  auto tw = TwigStackMatch(index, pattern, &tw_stats);
  auto bj = BinaryJoinMatch(index, pattern, &bj_stats);
  auto nav = NavigationMatch(*doc, pattern);
  ASSERT_TRUE(tw.ok()) << tw.status().ToString();
  ASSERT_TRUE(bj.ok()) << bj.status().ToString();
  ASSERT_TRUE(nav.ok()) << nav.status().ToString();
  EXPECT_EQ(*tw, *nav) << pattern.ToString();
  EXPECT_EQ(*bj, *nav) << pattern.ToString();
  // The holistic claim: never more intermediate pairs than the binary plan.
  EXPECT_LE(tw_stats.intermediate_pairs, bj_stats.intermediate_pairs);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndPatterns, TwigEquivalenceTest,
    ::testing::Values(TwigParam{1, 0}, TwigParam{2, 0}, TwigParam{3, 1},
                      TwigParam{4, 1}, TwigParam{5, 2}, TwigParam{6, 2},
                      TwigParam{7, 3}, TwigParam{8, 3}, TwigParam{9, 2},
                      TwigParam{10, 3}, TwigParam{11, 0}, TwigParam{12, 1}));

/// Fully randomized twig patterns (shape, edges, output node) against
/// random documents: the three matchers must always agree.
class RandomTwigTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomTwigTest, MatchersAgreeOnRandomPatterns) {
  SplitMix64 rng(GetParam());
  auto doc = Document::Parse(RandomXml(GetParam() * 17 + 3, 350, 4)).value();
  TagIndex index(doc);
  for (int trial = 0; trial < 8; ++trial) {
    TwigPattern pattern;
    auto tag = [&] {
      return std::string(1, static_cast<char>('a' + rng.Below(4)));
    };
    int nodes = 2 + static_cast<int>(rng.Below(4));
    pattern.Add(tag());
    for (int n = 1; n < nodes; ++n) {
      int parent = static_cast<int>(rng.Below(static_cast<uint64_t>(n)));
      pattern.Add(tag(), parent, rng.Below(2) == 0);
    }
    pattern.output = static_cast<int>(rng.Below(pattern.nodes.size()));

    auto tw = TwigStackMatch(index, pattern);
    auto bj = BinaryJoinMatch(index, pattern);
    auto nav = NavigationMatch(*doc, pattern);
    ASSERT_TRUE(tw.ok() && bj.ok() && nav.ok()) << pattern.ToString();
    EXPECT_EQ(*tw, *nav) << pattern.ToString();
    EXPECT_EQ(*bj, *nav) << pattern.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTwigTest,
                         ::testing::Values(21, 22, 23, 24, 25, 26, 27, 28, 29,
                                           30, 31, 32, 33, 34, 35, 36));

TEST(TwigPlanner, CompilesPathQuery) {
  XQueryEngine engine;
  auto q = engine.Compile("//a/b//c");
  ASSERT_TRUE(q.ok());
  auto pattern = TwigPlanner::Compile(*(*q)->module().body);
  ASSERT_TRUE(pattern.ok()) << pattern.status().ToString();
  EXPECT_EQ(pattern->nodes.size(), 3u);
  EXPECT_TRUE(pattern->IsPath());
  EXPECT_EQ(pattern->output, 2);
  EXPECT_TRUE(pattern->nodes[1].child_edge);
  EXPECT_FALSE(pattern->nodes[2].child_edge);
}

TEST(TwigPlanner, CompilesPredicates) {
  XQueryEngine engine;
  auto q = engine.Compile("//open_auction[bidder]/seller");
  ASSERT_TRUE(q.ok());
  auto pattern = TwigPlanner::Compile(*(*q)->module().body);
  ASSERT_TRUE(pattern.ok()) << pattern.status().ToString();
  EXPECT_EQ(pattern->nodes.size(), 3u);
  EXPECT_FALSE(pattern->IsPath());
  EXPECT_EQ(pattern->nodes[pattern->output].local, "seller");
}

TEST(TwigPlanner, RejectsNonPathQueries) {
  XQueryEngine engine;
  XQueryEngine::CompileOptions raw;
  raw.optimize = false;  // Plan shape before rewrites.
  for (const char* q :
       {"1 + 2", "//a[@id = '1']", "for $x in //a return $x",
        "//a/text()", "//*"}) {
    auto compiled = engine.Compile(q, raw);
    ASSERT_TRUE(compiled.ok()) << q;
    EXPECT_FALSE(TwigPlanner::IsConvertible(*(*compiled)->module().body))
        << q;
  }
}

TEST(TwigPlanner, OptimizerCanExposeTwigShape) {
  // for $x in //a return $x minimizes to //a, which IS convertible — the
  // rewrite pipeline feeds the twig planner.
  XQueryEngine engine;
  auto compiled = engine.Compile("for $x in //a return $x");
  ASSERT_TRUE(compiled.ok());
  EXPECT_TRUE(TwigPlanner::IsConvertible(*(*compiled)->module().body));
}

TEST(TwigPlanner, PlannerResultMatchesEngine) {
  // The twig executor and the full query engine agree on a path query.
  std::string xml = RandomXml(77, 300, 3);
  XQueryEngine engine;
  XQP_ASSERT_OK_AND_ASSIGN(auto doc, engine.ParseAndRegister("doc.xml", xml));
  XQP_ASSERT_OK_AND_ASSIGN(auto q, engine.Compile("doc('doc.xml')//a/b"));
  XQP_ASSERT_OK_AND_ASSIGN(Sequence engine_result, q->Execute());

  auto pattern = TwigPlanner::Compile(*q->module().body);
  ASSERT_TRUE(pattern.ok()) << pattern.status().ToString();
  TagIndex index(doc);
  XQP_ASSERT_OK_AND_ASSIGN(auto twig_result,
                           TwigStackMatch(index, *pattern));
  ASSERT_EQ(engine_result.size(), twig_result.size());
  for (size_t i = 0; i < twig_result.size(); ++i) {
    EXPECT_EQ(engine_result[i].AsNode().index(), twig_result[i]);
  }
}

}  // namespace
}  // namespace xqp
