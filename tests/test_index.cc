// Path-synopsis / value-index subsystem tests: build correctness on edge
// documents, index-answered queries against the navigational reference,
// planner fallback behavior, cache lifecycle, and resource governance of
// index builds. The randomized indexed-vs-unindexed cross-check lives in
// test_differential.cc; these are the targeted cases.

#include "index/document_indexes.h"

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "base/fault.h"
#include "engine.h"
#include "index/index_manager.h"
#include "index/index_planner.h"
#include "tests/test_util.h"
#include "xmark/generator.h"

namespace xqp {
namespace {

std::string XMarkXml() {
  XMarkOptions options;
  options.scale = 0.02;
  return GenerateXMarkXml(options);
}

/// Serialized result of `query` on `engine`, lazy or eager.
std::string RunOn(XQueryEngine& engine, const std::string& query,
                bool lazy = true) {
  auto compiled = engine.Compile(query);
  EXPECT_TRUE(compiled.ok()) << query << ": "
                             << compiled.status().ToString();
  if (!compiled.ok()) return "COMPILE-ERROR";
  CompiledQuery::ExecOptions exec;
  exec.use_lazy_engine = lazy;
  auto result = compiled.value()->ExecuteToXml(exec);
  EXPECT_TRUE(result.ok()) << query << ": " << result.status().ToString();
  return result.ok() ? result.value() : "ERROR";
}

/// Asserts `query` produces identical bytes on an indexed and an unindexed
/// engine (both lazy and eager), returning the common serialization.
std::string ExpectIndexedMatchesPlain(const std::string& xml,
                                      const std::string& query) {
  XQueryEngine indexed;
  EngineOptions plain_options;
  plain_options.enable_indexes = false;
  XQueryEngine plain(plain_options);
  EXPECT_TRUE(indexed.ParseAndRegister("doc.xml", xml).ok());
  EXPECT_TRUE(plain.ParseAndRegister("doc.xml", xml).ok());
  std::string want = RunOn(plain, query);
  EXPECT_EQ(RunOn(indexed, query, /*lazy=*/true), want) << query;
  EXPECT_EQ(RunOn(indexed, query, /*lazy=*/false), want) << query;
  return want;
}

// --- DocumentIndexes build ------------------------------------------------

TEST(DocumentIndexes, EmptyDocument) {
  XQP_ASSERT_OK_AND_ASSIGN(auto doc, Document::Parse("<r/>"));
  XQP_ASSERT_OK_AND_ASSIGN(auto idx,
                           DocumentIndexes::Build(doc, kIndexValueAll));
  // Synopsis: document node + one path ("/r").
  EXPECT_EQ(idx->NumSynopsisNodes(), 2u);
  int32_t r = idx->FindChild(0, NodeKind::kElement, doc->FindNameId("", "r"));
  ASSERT_GE(r, 0);
  EXPECT_EQ(idx->postings(r).size(), 1u);
  // <r/> has empty text content, indexed as the empty string.
  const auto* vp = idx->values(r);
  ASSERT_NE(vp, nullptr);
  EXPECT_TRUE(vp->indexable);
  ASSERT_EQ(vp->by_string.size(), 1u);
  EXPECT_EQ(vp->by_string[0].first, "");
}

TEST(DocumentIndexes, DuplicateLocalsInDifferentNamespacesStayDistinct) {
  const char* xml =
      "<r xmlns:a='urn:a' xmlns:b='urn:b'>"
      "<a:x>1</a:x><b:x>2</b:x><a:x>3</a:x></r>";
  XQP_ASSERT_OK_AND_ASSIGN(auto doc, Document::Parse(xml));
  XQP_ASSERT_OK_AND_ASSIGN(auto idx,
                           DocumentIndexes::Build(doc, kIndexValueAll));
  int32_t r = idx->FindChild(0, NodeKind::kElement, doc->FindNameId("", "r"));
  ASSERT_GE(r, 0);
  int32_t ax =
      idx->FindChild(r, NodeKind::kElement, doc->FindNameId("urn:a", "x"));
  int32_t bx =
      idx->FindChild(r, NodeKind::kElement, doc->FindNameId("urn:b", "x"));
  ASSERT_GE(ax, 0);
  ASSERT_GE(bx, 0);
  EXPECT_NE(ax, bx);
  EXPECT_EQ(idx->postings(ax).size(), 2u);
  EXPECT_EQ(idx->postings(bx).size(), 1u);
}

TEST(DocumentIndexes, ElementContentPoisonsValuePostings) {
  XQP_ASSERT_OK_AND_ASSIGN(auto doc,
                           Document::Parse("<r><a>1</a><a><b/>2</a></r>"));
  XQP_ASSERT_OK_AND_ASSIGN(auto idx,
                           DocumentIndexes::Build(doc, kIndexValueAll));
  int32_t r = idx->FindChild(0, NodeKind::kElement, doc->FindNameId("", "r"));
  int32_t a = idx->FindChild(r, NodeKind::kElement, doc->FindNameId("", "a"));
  ASSERT_GE(a, 0);
  const auto* vp = idx->values(a);
  ASSERT_NE(vp, nullptr);
  // The second <a> has an element child: the whole (path, tag) family is
  // unindexable, and the planner must fall back.
  EXPECT_FALSE(vp->indexable);
}

TEST(DocumentIndexes, MixedTypeValuesDisableNumericFamily) {
  XQP_ASSERT_OK_AND_ASSIGN(
      auto doc, Document::Parse("<r><v>10</v><v>abc</v><v>2</v></r>"));
  XQP_ASSERT_OK_AND_ASSIGN(auto idx,
                           DocumentIndexes::Build(doc, kIndexValueAll));
  int32_t r = idx->FindChild(0, NodeKind::kElement, doc->FindNameId("", "r"));
  int32_t v = idx->FindChild(r, NodeKind::kElement, doc->FindNameId("", "v"));
  ASSERT_GE(v, 0);
  const auto* vp = idx->values(v);
  ASSERT_NE(vp, nullptr);
  EXPECT_TRUE(vp->indexable);
  EXPECT_FALSE(vp->all_numeric);  // "abc" does not cast to xs:double.
  EXPECT_TRUE(vp->by_number.empty());
  EXPECT_EQ(vp->by_string.size(), 3u);  // String family still serves = / !=.
}

TEST(DocumentIndexes, BuildFailsUnderFaultInjection) {
  XQP_ASSERT_OK_AND_ASSIGN(auto doc, Document::Parse(XMarkXml()));
  fault::ScopedFault fault("alloc", 1);
  auto idx = DocumentIndexes::Build(doc, kIndexValueAll);
  ASSERT_FALSE(idx.ok());
  EXPECT_EQ(idx.status().code(), StatusCode::kInternal);
}

// --- IndexManager lifecycle -----------------------------------------------

TEST(IndexManager, CachesPerUriAndInvalidatesOnNewSnapshot) {
  IndexManager manager;
  XQP_ASSERT_OK_AND_ASSIGN(auto doc1, Document::Parse("<r><a>1</a></r>"));
  XQP_ASSERT_OK_AND_ASSIGN(
      auto first, manager.GetOrBuild("d.xml", doc1, kIndexValueAll));
  XQP_ASSERT_OK_AND_ASSIGN(
      auto again, manager.GetOrBuild("d.xml", doc1, kIndexValueAll));
  EXPECT_EQ(first.get(), again.get());
  EXPECT_EQ(manager.NumCached(), 1u);

  // A new document snapshot under the same URI must rebuild.
  XQP_ASSERT_OK_AND_ASSIGN(auto doc2, Document::Parse("<r><a>2</a></r>"));
  XQP_ASSERT_OK_AND_ASSIGN(
      auto rebuilt, manager.GetOrBuild("d.xml", doc2, kIndexValueAll));
  EXPECT_NE(rebuilt.get(), first.get());
  EXPECT_EQ(rebuilt->doc_ptr().get(), doc2.get());

  manager.Invalidate();
  EXPECT_EQ(manager.NumCached(), 0u);
}

TEST(IndexManager, ConcurrentGetOrBuildConverges) {
  IndexManager manager;
  XQP_ASSERT_OK_AND_ASSIGN(auto doc, Document::Parse(XMarkXml()));
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const DocumentIndexes>> got(kThreads);
  std::atomic<int> failures{0};
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        auto idx = manager.GetOrBuild("x.xml", doc, kIndexValueAll);
        if (idx.ok()) {
          got[t] = idx.value();
        } else {
          failures.fetch_add(1);
        }
      });
    }
    for (auto& th : threads) th.join();
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(manager.NumCached(), 1u);
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_NE(got[t], nullptr);
    EXPECT_EQ(got[t]->doc_ptr().get(), doc.get());
  }
}

// --- Engine integration ---------------------------------------------------

TEST(EngineIndex, RootedPathAnsweredBySynopsis) {
  ExpectIndexedMatchesPlain(XMarkXml(),
                            "doc('doc.xml')/site/people/person/name");
}

TEST(EngineIndex, DescendantPathAnsweredBySynopsis) {
  ExpectIndexedMatchesPlain(XMarkXml(), "doc('doc.xml')//item/name");
}

TEST(EngineIndex, NumericPredicateAnsweredByValueIndex) {
  ExpectIndexedMatchesPlain(XMarkXml(), "doc('doc.xml')//item[quantity < 3]");
  ExpectIndexedMatchesPlain(XMarkXml(), "doc('doc.xml')//item[quantity = 1]");
}

TEST(EngineIndex, AttributePredicateAnsweredByValueIndex) {
  ExpectIndexedMatchesPlain(XMarkXml(),
                            "doc('doc.xml')//person[@id = 'person0']");
  ExpectIndexedMatchesPlain(XMarkXml(),
                            "doc('doc.xml')//person[@id != 'person1']/name");
}

TEST(EngineIndex, MixedTypeContentFallsBackAndAgrees) {
  // "abc" poisons the numeric family, but string-family equality on the
  // same (path, tag) stays index-answered; dot predicates are not
  // plannable, so both engines navigate and must agree.
  const std::string xml = "<r><v>10</v><v>abc</v><v>2</v><v>7</v></r>";
  ExpectIndexedMatchesPlain(xml, "doc('doc.xml')/r[v = '7']");
  ExpectIndexedMatchesPlain(xml, "doc('doc.xml')/r[v != '2']");
  ExpectIndexedMatchesPlain(xml, "count(doc('doc.xml')//v[. = '7'])");
}

TEST(EngineIndex, EmptyAndMissingNamesAgree) {
  ExpectIndexedMatchesPlain("<r/>", "count(doc('doc.xml')//nothing)");
  ExpectIndexedMatchesPlain("<r/>", "doc('doc.xml')/r");
  ExpectIndexedMatchesPlain(
      "<r xmlns:a='urn:a'><a:x>1</a:x></r>",
      "count(doc('doc.xml')//x)");  // Unprefixed test: no-namespace only.
}

TEST(EngineIndex, DisabledEngineCompilesUnmarkedPlans) {
  EngineOptions options;
  options.enable_indexes = false;
  XQueryEngine plain(options);
  XQP_ASSERT_OK(plain.ParseAndRegister("d.xml", "<r><a/></r>").status());
  XQP_ASSERT_OK_AND_ASSIGN(auto q, plain.Compile("doc('d.xml')/r/a"));
  EXPECT_EQ(q->ExplainTree().find("[index]"), std::string::npos);

  XQueryEngine indexed;
  XQP_ASSERT_OK(indexed.ParseAndRegister("d.xml", "<r><a/></r>").status());
  XQP_ASSERT_OK_AND_ASSIGN(auto qi, indexed.Compile("doc('d.xml')/r/a"));
  EXPECT_NE(qi->ExplainTree().find("[index]"), std::string::npos);
}

TEST(EngineIndex, ReRegistrationInvalidatesAndReindexes) {
  XQueryEngine engine;
  XQP_ASSERT_OK(engine.ParseAndRegister("d.xml", "<r><a>1</a></r>").status());
  EXPECT_EQ(RunOn(engine, "count(doc('d.xml')/r/a)"), "1");
  // Re-register under the same URI; the synopsis must describe the new
  // snapshot, not the cached one.
  XQP_ASSERT_OK(
      engine.ParseAndRegister("d.xml", "<r><a>1</a><a>2</a></r>").status());
  EXPECT_EQ(RunOn(engine, "count(doc('d.xml')/r/a)"), "2");
  EXPECT_EQ(RunOn(engine, "doc('d.xml')/r/a[. = 2]"), "<a>2</a>");
}

TEST(EngineIndex, BuildFailureUnderFaultPropagates) {
  XQueryEngine engine;
  XQP_ASSERT_OK(engine.ParseAndRegister("d.xml", XMarkXml()).status());
  // Armed after registration so the first "alloc" hit lands in the index
  // build, not document parsing.
  fault::ScopedFault fault("alloc", 1);
  auto r = engine.Execute("doc('d.xml')/site/people/person/name");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
  // Disarmed: the same query now succeeds and is index-answered.
  fault::Disarm();
  XQP_ASSERT_OK(engine.Execute("doc('d.xml')/site/people/person/name")
                    .status());
}

TEST(EngineIndex, BuildChargesMemoryBudget) {
  EngineOptions options;
  options.default_limits.memory_budget_bytes = 64 * 1024;  // Too small.
  XQueryEngine engine(options);
  XQP_ASSERT_OK(engine.ParseAndRegister("d.xml", XMarkXml()).status());
  auto r = engine.Execute("doc('d.xml')/site/people/person/name");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST(EngineIndex, ValueKindsKnobLimitsFamilies) {
  EngineOptions options;
  options.index_value_kinds = 0;  // Synopsis only.
  XQueryEngine engine(options);
  XQP_ASSERT_OK(engine.ParseAndRegister(
                    "d.xml", "<r><a>1</a><a>2</a></r>")
                    .status());
  // Value predicates fall back to navigation but still answer correctly.
  EXPECT_EQ(RunOn(engine, "count(doc('d.xml')/r/a[. = 2])"), "1");
  // Pure paths remain synopsis-answerable.
  EXPECT_EQ(RunOn(engine, "count(doc('d.xml')/r/a)"), "2");
}

// --- Twig substitution ----------------------------------------------------

TEST(EngineIndex, TwigJoinWithSynopsisListsMatchesExecute) {
  XQueryEngine engine;
  XQP_ASSERT_OK(engine.ParseAndRegister("xmark.xml", XMarkXml()).status());
  const char* queries[] = {
      "doc('xmark.xml')//open_auction[bidder]//increase",
      "doc('xmark.xml')/site/people/person",
      "doc('xmark.xml')//item[location][quantity]",
  };
  for (const char* q : queries) {
    XQP_ASSERT_OK_AND_ASSIGN(auto compiled, engine.Compile(q));
    ASSERT_TRUE(compiled->IsTwigConvertible()) << q;
    XQP_ASSERT_OK_AND_ASSIGN(Sequence via_twig, compiled->ExecuteViaTwigJoin());
    XQP_ASSERT_OK_AND_ASSIGN(Sequence via_exec, compiled->Execute());
    XQP_ASSERT_OK_AND_ASSIGN(std::string twig_xml,
                             SerializeSequence(via_twig));
    XQP_ASSERT_OK_AND_ASSIGN(std::string exec_xml,
                             SerializeSequence(via_exec));
    EXPECT_EQ(twig_xml, exec_xml) << q;
  }
}

}  // namespace
}  // namespace xqp
