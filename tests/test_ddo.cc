// Tests of the document-order / duplicate-elimination elision analysis —
// the paper's "How can we deal with path expressions?" slide:
//   $document/a/b/c     ordered, distinct
//   $document/a//b      ordered, distinct
//   $document//a/b      NOT ordered... (in our lattice: ordered after
//                       sorting //a; distinct always)
//   $document//a//b     nothing guaranteed

#include <gtest/gtest.h>

#include "opt/rewriter.h"
#include "query/normalize.h"
#include "query/parser.h"
#include "tests/test_util.h"

namespace xqp {
namespace {

using testing_util::RunQuery;

/// Optimizes `query` and collects the (needs_sort, needs_dedup) flags of
/// every PathExpr, leftmost-innermost first.
std::vector<std::pair<bool, bool>> PathFlags(const std::string& query) {
  auto module = ParseQuery(
      "declare variable $document as document-node() external; " + query);
  EXPECT_TRUE(module.ok()) << module.status().ToString();
  EXPECT_TRUE(NormalizeModule(module->get()).ok());
  EXPECT_TRUE(OptimizeModule(module->get()).ok());
  std::vector<std::pair<bool, bool>> flags;
  std::function<void(const Expr*)> walk = [&](const Expr* e) {
    for (size_t i = 0; i < e->NumChildren(); ++i) walk(e->child(i));
    if (e->kind() == ExprKind::kPath) {
      const auto* p = static_cast<const PathExpr*>(e);
      flags.emplace_back(p->needs_sort, p->needs_dedup);
    }
  };
  walk((*module)->body.get());
  return flags;
}

bool AnySort(const std::vector<std::pair<bool, bool>>& flags) {
  for (auto& [s, d] : flags) {
    if (s) return true;
  }
  return false;
}
bool AnyDedup(const std::vector<std::pair<bool, bool>>& flags) {
  for (auto& [s, d] : flags) {
    if (d) return true;
  }
  return false;
}

TEST(DdoElision, ChildChainNeedsNothing) {
  auto flags = PathFlags("$document/a/b/c");
  EXPECT_FALSE(AnySort(flags));
  EXPECT_FALSE(AnyDedup(flags));
}

TEST(DdoElision, ChildThenDescendantNeedsNothing) {
  // $document/a//b: descendant step from sibling-disjoint nodes.
  auto flags = PathFlags("$document/a//b");
  EXPECT_FALSE(AnySort(flags));
  EXPECT_FALSE(AnyDedup(flags));
}

TEST(DdoElision, DescendantThenChildNeedsSortOnly) {
  // $document//a/b: children of (possibly nested) a's — duplicates are
  // impossible but document order is not guaranteed.
  auto flags = PathFlags("$document//a/b");
  EXPECT_TRUE(AnySort(flags));
  // The final child step must not require dedup.
  EXPECT_FALSE(flags.back().second);
}

TEST(DdoElision, DoubleDescendantNeedsEverything) {
  auto flags = PathFlags("$document//a//b");
  EXPECT_TRUE(flags.back().first || flags.back().second);
  EXPECT_TRUE(AnyDedup(flags));
}

TEST(DdoElision, AttributeStepKeepsGuarantees) {
  auto flags = PathFlags("$document/a/b/@id");
  EXPECT_FALSE(AnySort(flags));
  EXPECT_FALSE(AnyDedup(flags));
}

TEST(DdoElision, ParentStepKeepsDdo) {
  auto flags = PathFlags("$document/a/b/..");
  // Parent of multiple siblings duplicates; dedup must stay on.
  EXPECT_TRUE(flags.back().second || flags.back().first);
}

TEST(DdoElision, FilterPreservesGuarantees) {
  auto flags = PathFlags("$document/a[@id]/b[2]/c");
  EXPECT_FALSE(AnySort(flags));
  EXPECT_FALSE(AnyDedup(flags));
}

TEST(DdoElision, DisabledByOption) {
  auto module =
      ParseQuery("declare variable $document external; $document/a/b");
  ASSERT_TRUE(module.ok());
  ASSERT_TRUE(NormalizeModule(module->get()).ok());
  RewriterOptions options;
  options.ddo_elision = false;
  ASSERT_TRUE(OptimizeModule(module->get(), options).ok());
  const auto* path = static_cast<const PathExpr*>((*module)->body.get());
  EXPECT_TRUE(path->needs_sort);
  EXPECT_TRUE(path->needs_dedup);
}

/// The elision must never change results. Nested document with recursive
/// tags — the adversarial case for ordering bugs.
constexpr const char* kNested =
    "<r><a><b>1</b><a><b>2</b><b>3</b></a></a><b>4</b>"
    "<a><c><b>5</b></c></a></r>";

struct DdoCase {
  const char* label;
  const char* query;
};

class DdoSemanticsTest : public ::testing::TestWithParam<DdoCase> {};

TEST_P(DdoSemanticsTest, OptimizedEqualsUnoptimized) {
  std::string query = GetParam().query;
  std::string reference = RunQuery(query, kNested, false, false);
  ASSERT_EQ(reference.find("ERROR"), std::string::npos) << reference;
  EXPECT_EQ(RunQuery(query, kNested, false, true), reference);
  EXPECT_EQ(RunQuery(query, kNested, true, true), reference);
}

INSTANTIATE_TEST_SUITE_P(
    Queries, DdoSemanticsTest,
    ::testing::Values(
        DdoCase{"child_chain", "string-join(doc('doc.xml')/r/a/b, '')"},
        DdoCase{"child_desc", "string-join(doc('doc.xml')/r//b, '')"},
        DdoCase{"desc_child", "string-join(doc('doc.xml')//a/b, '')"},
        DdoCase{"desc_desc", "string-join(doc('doc.xml')//a//b, '')"},
        DdoCase{"desc_desc_count", "count(doc('doc.xml')//a//b)"},
        DdoCase{"parent_hop", "string-join(doc('doc.xml')//b/../b, '')"},
        DdoCase{"attr", "count(doc('doc.xml')//a/@*)"}),
    [](const ::testing::TestParamInfo<DdoCase>& info) {
      return info.param.label;
    });

}  // namespace
}  // namespace xqp
