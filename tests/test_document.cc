#include "xml/document.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "xml/node.h"

namespace xqp {
namespace {

using testing_util::RandomXml;

TEST(Document, BasicStructure) {
  auto doc = Document::Parse("<a x=\"1\"><b>t</b><c/></a>").value();
  // Rows: 0 doc, 1 a, 2 @x, 3 b, 4 text, 5 c.
  ASSERT_EQ(doc->NumNodes(), 6u);
  EXPECT_EQ(doc->node(0).kind, NodeKind::kDocument);
  EXPECT_EQ(doc->node(1).kind, NodeKind::kElement);
  EXPECT_EQ(doc->name(1).local, "a");
  EXPECT_EQ(doc->node(2).kind, NodeKind::kAttribute);
  EXPECT_EQ(doc->name(2).local, "x");
  EXPECT_EQ(doc->value(2), "1");
  EXPECT_EQ(doc->node(3).kind, NodeKind::kElement);
  EXPECT_EQ(doc->node(4).kind, NodeKind::kText);
  EXPECT_EQ(doc->value(4), "t");
  EXPECT_EQ(doc->node(5).kind, NodeKind::kElement);
  // Levels.
  EXPECT_EQ(doc->node(1).level, 1);
  EXPECT_EQ(doc->node(2).level, 2);
  EXPECT_EQ(doc->node(3).level, 2);
  EXPECT_EQ(doc->node(4).level, 3);
  // Region labels.
  EXPECT_EQ(doc->node(1).end, 5u);
  EXPECT_EQ(doc->node(3).end, 4u);
  EXPECT_EQ(doc->node(5).end, 5u);
  EXPECT_EQ(doc->node(0).end, 5u);
}

TEST(Document, SiblingAndChildLinks) {
  auto doc = Document::Parse("<a><b/><c/><d/></a>").value();
  const NodeRecord& a = doc->node(1);
  EXPECT_EQ(a.first_child, 2u);
  EXPECT_EQ(doc->node(2).next_sibling, 3u);
  EXPECT_EQ(doc->node(3).next_sibling, 4u);
  EXPECT_EQ(doc->node(4).next_sibling, kNullNode);
  EXPECT_EQ(doc->node(2).parent, 1u);
}

TEST(Document, AttributesChainSeparateFromChildren) {
  auto doc = Document::Parse("<a p=\"1\" q=\"2\"><b/></a>").value();
  const NodeRecord& a = doc->node(1);
  EXPECT_EQ(a.first_attr, 2u);
  EXPECT_EQ(doc->node(2).next_sibling, 3u);  // q.
  EXPECT_EQ(doc->node(3).next_sibling, kNullNode);
  EXPECT_EQ(a.first_child, 4u);  // b skips attributes.
}

TEST(Document, TextCoalescing) {
  // CDATA adjacent to text must merge into a single text node.
  auto doc = Document::Parse("<a>one<![CDATA[two]]>three</a>").value();
  ASSERT_EQ(doc->NumNodes(), 3u);
  EXPECT_EQ(doc->value(2), "onetwothree");
}

TEST(Document, StringValue) {
  auto doc = Document::Parse("<a>one<b>two<c>three</c></b>four</a>").value();
  EXPECT_EQ(doc->StringValue(1), "onetwothreefour");
  Node a(doc, 1);
  Node b = a.FirstChild().NextSibling();
  EXPECT_EQ(b.StringValue(), "twothree");
}

TEST(Document, TypedValueIsUntyped) {
  auto doc = Document::Parse("<a>42</a>").value();
  AtomicValue v = doc->TypedValue(1);
  EXPECT_EQ(v.type(), XsType::kUntypedAtomic);
  EXPECT_EQ(v.Lexical(), "42");
}

TEST(Document, RootElement) {
  auto doc = Document::Parse("<!-- c --><a/><?pi?>").value();
  EXPECT_EQ(doc->root_element(), 2u);
  EXPECT_EQ(doc->name(doc->root_element()).local, "a");
}

TEST(Document, FindNameId) {
  auto doc = Document::Parse("<a><b/><b/></a>").value();
  uint32_t b_id = doc->FindNameId("", "b");
  ASSERT_NE(b_id, kNoName);
  EXPECT_EQ(doc->node(2).name_id, b_id);
  EXPECT_EQ(doc->node(3).name_id, b_id);
  EXPECT_EQ(doc->FindNameId("", "zzz"), kNoName);
}

TEST(Document, UniqueIds) {
  auto d1 = Document::Parse("<a/>").value();
  auto d2 = Document::Parse("<a/>").value();
  EXPECT_NE(d1->id(), d2->id());
}

TEST(DocumentBuilder, CopySubtree) {
  auto src = Document::Parse("<a p=\"v\"><b>text</b><!--c--></a>").value();
  DocumentBuilder builder;
  XQP_ASSERT_OK(builder.BeginElement(QName("wrap")));
  XQP_ASSERT_OK(builder.CopySubtree(*src, 1));
  XQP_ASSERT_OK(builder.EndElement());
  auto copy = std::move(builder.Finish()).ValueOrDie();
  // wrap > a(p) > b > text, comment.
  EXPECT_EQ(copy->NumNodes(), 7u);
  EXPECT_EQ(copy->name(2).local, "a");
  EXPECT_EQ(copy->StringValue(1), "text");
}

TEST(DocumentBuilder, RejectsDuplicateAttributes) {
  DocumentBuilder builder;
  XQP_ASSERT_OK(builder.BeginElement(QName("a")));
  XQP_ASSERT_OK(builder.Attribute(QName("x"), "1"));
  EXPECT_FALSE(builder.Attribute(QName("x"), "2").ok());
}

TEST(DocumentBuilder, RejectsAttributeAfterContent) {
  DocumentBuilder builder;
  XQP_ASSERT_OK(builder.BeginElement(QName("a")));
  XQP_ASSERT_OK(builder.Text("t"));
  EXPECT_FALSE(builder.Attribute(QName("x"), "1").ok());
}

TEST(DocumentBuilder, RejectsUnclosedFinish) {
  DocumentBuilder builder;
  XQP_ASSERT_OK(builder.BeginElement(QName("a")));
  EXPECT_FALSE(builder.Finish().ok());
}

TEST(Node, NavigationAndIdentity) {
  auto doc = Document::Parse("<a><b/><c/></a>").value();
  Node a(doc, 1);
  Node b = a.FirstChild();
  Node c = b.NextSibling();
  EXPECT_EQ(b.name().local, "b");
  EXPECT_EQ(c.name().local, "c");
  EXPECT_TRUE(b.Parent().SameNode(a));
  EXPECT_FALSE(b.SameNode(c));
  EXPECT_LT(Node::CompareDocOrder(b, c), 0);
  EXPECT_GT(Node::CompareDocOrder(c, b), 0);
  EXPECT_EQ(Node::CompareDocOrder(b, b), 0);
  EXPECT_TRUE(a.IsAncestorOf(b));
  EXPECT_FALSE(b.IsAncestorOf(a));
  EXPECT_FALSE(b.IsAncestorOf(c));
}

/// Property: region labels must agree with the parent/child structure.
class RegionInvariantTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RegionInvariantTest, LabelsConsistent) {
  auto doc = Document::Parse(RandomXml(GetParam(), 300)).value();
  for (NodeIndex i = 0; i < doc->NumNodes(); ++i) {
    const NodeRecord& n = doc->node(i);
    // end >= self, and within parent's region.
    EXPECT_GE(n.end, i);
    if (n.parent != kNullNode) {
      const NodeRecord& p = doc->node(n.parent);
      EXPECT_LT(n.parent, i);
      EXPECT_LE(n.end, p.end);
      EXPECT_EQ(n.level, p.level + 1);
    }
    // Children fall inside the region and chain consistently.
    for (NodeIndex c = n.first_child; c != kNullNode;
         c = doc->node(c).next_sibling) {
      EXPECT_EQ(doc->node(c).parent, i);
      EXPECT_GT(c, i);
      EXPECT_LE(doc->node(c).end, n.end);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegionInvariantTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 42, 99,
                                           1234));

TEST(Document, MemoryUsagePositive) {
  auto doc = Document::Parse(RandomXml(7, 500)).value();
  EXPECT_GT(doc->MemoryUsage(), doc->NumNodes() * sizeof(NodeRecord));
}

TEST(Document, PoolingOffIncreasesMemoryOnRepetitiveText) {
  std::string xml = "<r>";
  for (int i = 0; i < 200; ++i) xml += "<x>same repeated payload text</x>";
  xml += "</r>";
  ParseOptions pooled;
  ParseOptions unpooled;
  unpooled.pool_strings = false;
  auto d1 = Document::Parse(xml, pooled).value();
  auto d2 = Document::Parse(xml, unpooled).value();
  EXPECT_LT(d1->pool().MemoryUsage(), d2->pool().MemoryUsage());
}

}  // namespace
}  // namespace xqp
