#include "xml/atomic_value.h"

#include <cmath>

#include <gtest/gtest.h>

namespace xqp {
namespace {

TEST(AtomicValue, LexicalForms) {
  EXPECT_EQ(AtomicValue::Integer(42).Lexical(), "42");
  EXPECT_EQ(AtomicValue::Integer(-7).Lexical(), "-7");
  EXPECT_EQ(AtomicValue::Boolean(true).Lexical(), "true");
  EXPECT_EQ(AtomicValue::Boolean(false).Lexical(), "false");
  EXPECT_EQ(AtomicValue::Double(2.5).Lexical(), "2.5");
  EXPECT_EQ(AtomicValue::Double(3.0).Lexical(), "3");
  EXPECT_EQ(AtomicValue::Decimal(1.5).Lexical(), "1.5");
  EXPECT_EQ(AtomicValue::Decimal(4.0).Lexical(), "4");
  EXPECT_EQ(AtomicValue::String("hi").Lexical(), "hi");
  EXPECT_EQ(AtomicValue::Untyped("u").Lexical(), "u");
}

TEST(AtomicValue, TypeNames) {
  EXPECT_EQ(XsTypeName(XsType::kInteger), "xs:integer");
  EXPECT_EQ(XsTypeName(XsType::kUntypedAtomic), "xdt:untypedAtomic");
  EXPECT_EQ(XsTypeName(XsType::kDouble), "xs:double");
}

TEST(XsTypeFromName, Lookup) {
  EXPECT_EQ(XsTypeFromName("xs:integer").value(), XsType::kInteger);
  EXPECT_EQ(XsTypeFromName("integer").value(), XsType::kInteger);
  EXPECT_EQ(XsTypeFromName("xs:string").value(), XsType::kString);
  EXPECT_EQ(XsTypeFromName("xdt:untypedAtomic").value(),
            XsType::kUntypedAtomic);
  EXPECT_FALSE(XsTypeFromName("xs:notAType").ok());
}

TEST(ParseXsDouble, Forms) {
  EXPECT_DOUBLE_EQ(ParseXsDouble("1.5").value(), 1.5);
  EXPECT_DOUBLE_EQ(ParseXsDouble("  -2e3 ").value(), -2000.0);
  EXPECT_TRUE(std::isinf(ParseXsDouble("INF").value()));
  EXPECT_TRUE(std::isinf(ParseXsDouble("-INF").value()));
  EXPECT_TRUE(std::isnan(ParseXsDouble("NaN").value()));
  EXPECT_FALSE(ParseXsDouble("abc").ok());
  EXPECT_FALSE(ParseXsDouble("").ok());
  EXPECT_FALSE(ParseXsDouble("1.5x").ok());
}

TEST(ParseXsInteger, Forms) {
  EXPECT_EQ(ParseXsInteger("42").value(), 42);
  EXPECT_EQ(ParseXsInteger(" -3 ").value(), -3);
  EXPECT_FALSE(ParseXsInteger("4.5").ok());
  EXPECT_FALSE(ParseXsInteger("abc").ok());
}

struct CastCase {
  XsType from_type;
  const char* from_lexical;
  XsType to;
  bool ok;
  const char* expect;  // Lexical form of the result.
};

class CastTest : public ::testing::TestWithParam<CastCase> {};

AtomicValue Make(XsType t, const std::string& lexical) {
  switch (t) {
    case XsType::kString:
      return AtomicValue::String(lexical);
    case XsType::kUntypedAtomic:
      return AtomicValue::Untyped(lexical);
    case XsType::kAnyUri:
      return AtomicValue::AnyUri(lexical);
    case XsType::kBoolean:
      return AtomicValue::Boolean(lexical == "true");
    case XsType::kInteger:
      return AtomicValue::Integer(std::stoll(lexical));
    case XsType::kDecimal:
      return AtomicValue::Decimal(std::stod(lexical));
    case XsType::kDouble:
      return AtomicValue::Double(std::stod(lexical));
    case XsType::kQName:
      return AtomicValue::QNameValue(lexical);
  }
  return AtomicValue();
}

TEST_P(CastTest, Matrix) {
  const CastCase& c = GetParam();
  auto result = Make(c.from_type, c.from_lexical).CastTo(c.to);
  EXPECT_EQ(result.ok(), c.ok) << c.from_lexical << " -> "
                               << XsTypeName(c.to) << ": "
                               << result.status().ToString();
  if (c.ok && result.ok()) {
    EXPECT_EQ(result.value().Lexical(), c.expect);
    EXPECT_EQ(result.value().type(), c.to);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Casts, CastTest,
    ::testing::Values(
        // To string.
        CastCase{XsType::kInteger, "42", XsType::kString, true, "42"},
        CastCase{XsType::kDouble, "2.5", XsType::kString, true, "2.5"},
        CastCase{XsType::kBoolean, "true", XsType::kString, true, "true"},
        // String to numerics.
        CastCase{XsType::kString, "17", XsType::kInteger, true, "17"},
        CastCase{XsType::kString, "1.25", XsType::kDouble, true, "1.25"},
        CastCase{XsType::kString, "1.25", XsType::kDecimal, true, "1.25"},
        CastCase{XsType::kString, "x", XsType::kInteger, false, ""},
        CastCase{XsType::kString, "NaN", XsType::kDouble, true, "NaN"},
        CastCase{XsType::kString, "NaN", XsType::kDecimal, false, ""},
        // Untyped behaves like string for casting.
        CastCase{XsType::kUntypedAtomic, "99", XsType::kInteger, true, "99"},
        // Numeric tower.
        CastCase{XsType::kDouble, "2.9", XsType::kInteger, true, "2"},
        CastCase{XsType::kDouble, "-2.9", XsType::kInteger, true, "-2"},
        CastCase{XsType::kInteger, "3", XsType::kDouble, true, "3"},
        CastCase{XsType::kInteger, "3", XsType::kDecimal, true, "3"},
        // Boolean rules.
        CastCase{XsType::kString, "true", XsType::kBoolean, true, "true"},
        CastCase{XsType::kString, "1", XsType::kBoolean, true, "true"},
        CastCase{XsType::kString, "0", XsType::kBoolean, true, "false"},
        CastCase{XsType::kString, "yes", XsType::kBoolean, false, ""},
        CastCase{XsType::kInteger, "0", XsType::kBoolean, true, "false"},
        CastCase{XsType::kInteger, "7", XsType::kBoolean, true, "true"},
        CastCase{XsType::kBoolean, "true", XsType::kInteger, true, "1"},
        CastCase{XsType::kBoolean, "true", XsType::kDouble, true, "1"},
        // Identity casts.
        CastCase{XsType::kInteger, "5", XsType::kInteger, true, "5"},
        // Invalid.
        CastCase{XsType::kBoolean, "true", XsType::kQName, false, ""}));

TEST(AtomicValue, DeepEqualsNumericCrossType) {
  EXPECT_TRUE(AtomicValue::Integer(3).DeepEquals(AtomicValue::Double(3.0)));
  EXPECT_TRUE(AtomicValue::Decimal(2.5).DeepEquals(AtomicValue::Double(2.5)));
  EXPECT_FALSE(AtomicValue::Integer(3).DeepEquals(AtomicValue::Double(3.5)));
  // NaN equals NaN under deep-equal (distinct-values semantics).
  double nan = std::nan("");
  EXPECT_TRUE(AtomicValue::Double(nan).DeepEquals(AtomicValue::Double(nan)));
}

TEST(AtomicValue, DeepEqualsStrings) {
  EXPECT_TRUE(AtomicValue::String("a").DeepEquals(AtomicValue::Untyped("a")));
  EXPECT_FALSE(AtomicValue::String("a").DeepEquals(AtomicValue::Integer(1)));
}

TEST(AtomicValue, HashConsistentWithDeepEquals) {
  EXPECT_EQ(AtomicValue::Integer(3).Hash(), AtomicValue::Double(3.0).Hash());
  EXPECT_EQ(AtomicValue::String("q").Hash(), AtomicValue::Untyped("q").Hash());
}

}  // namespace
}  // namespace xqp
