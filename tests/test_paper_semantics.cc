// Tests that reproduce the semantics examples spelled out in the paper's
// slides: value vs. general comparisons, effective boolean values, the
// arithmetic coercion rules, two-valued logic, and sequence behaviour.

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace xqp {
namespace {

using testing_util::RunAllWays;
using testing_util::RunQuery;

struct SemCase {
  const char* label;
  const char* query;
  const char* expect;  // "ERROR" means any dynamic/type error.
};

class PaperSemanticsTest : public ::testing::TestWithParam<SemCase> {};

TEST_P(PaperSemanticsTest, MatchesSlide) {
  const SemCase& c = GetParam();
  if (std::string(c.expect) == "ERROR") {
    std::string r = RunQuery(c.query);
    EXPECT_NE(r.find("ERROR"), std::string::npos) << c.query << " -> " << r;
  } else {
    EXPECT_EQ(RunAllWays(c.query), c.expect) << c.query;
  }
}

// Slide "Value and general comparisons".
INSTANTIATE_TEST_SUITE_P(
    Comparisons, PaperSemanticsTest,
    ::testing::Values(
        // <a>42</a> eq "42"  => true (untyped compares as string).
        SemCase{"untyped_eq_string", "<a>42</a> eq \"42\"", "true"},
        // <a>42</a> eq 42  => error (untyped vs numeric in value comp).
        SemCase{"untyped_eq_int", "<a>42</a> eq 42", "ERROR"},
        SemCase{"untyped_eq_double", "<a>42</a> eq 42.0", "ERROR"},
        // <a>42</a> = 42  => true (general comp casts untyped to double).
        SemCase{"untyped_genEq_int", "<a>42</a> = 42", "true"},
        SemCase{"untyped_genEq_double", "<a>42</a> = 42.0", "true"},
        // <a>42</a> eq <b>42</b>  => true.
        SemCase{"untyped_eq_untyped", "<a>42</a> eq <b>42</b>", "true"},
        // <a>42</a> eq <b> 42</b>  => false (string comparison).
        SemCase{"untyped_eq_untyped_space", "<a>42</a> eq <b> 42</b>",
                "false"},
        // <a>baz</a> eq 42  => type error.
        SemCase{"untyped_text_eq_int", "<a>baz</a> eq 42", "ERROR"},
        // () eq 42  =>  ().
        SemCase{"empty_valuecomp", "count(() eq 42)", "0"},
        // () = 42  => false.
        SemCase{"empty_gencomp", "() = 42", "false"},
        // (<a>42</a>, <b>43</b>) = 42  => true (existential).
        SemCase{"existential", "(<a>42</a>, <b>43</b>) = 42", "true"},
        // (1,2) = (2,3)  => true.
        SemCase{"existential_both", "(1,2) = (2,3)", "true"},
        // General comparisons are not transitive: (1,3) vs (1,2) relate
        // under =, !=, <, >, <=, >= simultaneously.
        SemCase{"nontransitive_eq", "(1,3) = (1,2)", "true"},
        SemCase{"nontransitive_ne", "(1,3) != (1,2)", "true"},
        SemCase{"nontransitive_lt", "(1,3) < (1,2)", "true"},
        SemCase{"nontransitive_gt", "(1,3) > (1,2)", "true"},
        // Negation rule does not hold: not($x = $y) differs from $x != $y.
        SemCase{"not_vs_ne_1", "not((1,2) = (3,4))", "true"},
        SemCase{"not_vs_ne_2", "(1,2) != (1,2)", "true"}),
    [](const ::testing::TestParamInfo<SemCase>& info) {
      return info.param.label;
    });

// Slide "Arithmetic expressions".
INSTANTIATE_TEST_SUITE_P(
    Arithmetic, PaperSemanticsTest,
    ::testing::Values(
        SemCase{"int_add", "1 + 4", "5"},
        SemCase{"div", "5 div 6 > 0.8", "true"},
        SemCase{"precedence", "1 - (4 * 8.5)", "-33"},
        // <a>42</a> + 1: untyped casts to xs:double => 43.
        SemCase{"untyped_plus", "<a>42</a> + 1", "43"},
        // <a>baz</a> + 1: cast fails => error.
        SemCase{"untyped_bad_plus", "<a>baz</a> + 1", "ERROR"},
        // Empty operand propagates: () => ().
        SemCase{"empty_operand", "count(() * 3)", "0"},
        SemCase{"decimal_div_zero", "1.0 div 0", "ERROR"},
        SemCase{"double_div_zero", "string(1e0 div 0)", "INF"},
        SemCase{"mod_zero", "1 mod 0", "ERROR"}),
    [](const ::testing::TestParamInfo<SemCase>& info) {
      return info.param.label;
    });

// Slide "Logical expressions": two-valued logic and BEV rules.
INSTANTIATE_TEST_SUITE_P(
    Logic, PaperSemanticsTest,
    ::testing::Values(
        SemCase{"empty_is_false", "() or false()", "false"},
        SemCase{"zero_is_false", "0 or false()", "false"},
        SemCase{"nan_is_false", "number('x') or false()", "false"},
        SemCase{"empty_string_false", "'' or false()", "false"},
        SemCase{"nonempty_string_true", "'false' and true()", "true"},
        SemCase{"node_is_true", "<a/> and true()", "true"},
        SemCase{"numeric_true", "42 and true()", "true"},
        // false and error => false (short-circuiting is permitted).
        SemCase{"false_and_error", "false() and (1 idiv 0 = 1)", "false"},
        SemCase{"true_or_error", "true() or (1 idiv 0 = 1)", "true"},
        SemCase{"multiatom_ebv_error", "(1,2) and true()", "ERROR"}),
    [](const ::testing::TestParamInfo<SemCase>& info) {
      return info.param.label;
    });

// Slide "Sequences": flattening, duplicates, heterogeneity.
INSTANTIATE_TEST_SUITE_P(
    Sequences, PaperSemanticsTest,
    ::testing::Values(
        SemCase{"flattening", "count((1, 2, (3, 4)))", "4"},
        SemCase{"singleton_equiv", "1 instance of item()", "true"},
        SemCase{"duplicates_kept", "count((1, 1, 1))", "3"},
        SemCase{"heterogeneous", "count((<a/>, 3))", "2"},
        SemCase{"range_expansion", "string-join(for $i in (1 to 3) return "
                                   "string($i), '')",
                "123"}),
    [](const ::testing::TestParamInfo<SemCase>& info) {
      return info.param.label;
    });

// Slide "Conditional expressions": only the taken branch may raise.
TEST(PaperSemantics, ConditionalErrorIsolation) {
  EXPECT_EQ(RunAllWays("if (1 < 2) then 'ok' else error('never')"), "ok");
  std::string r = RunQuery("if (2 < 1) then 'ok' else error('taken')");
  EXPECT_NE(r.find("taken"), std::string::npos);
}

// Slide "Typed vs untyped XML Data" (the untyped half; schema validation is
// out of scope).
TEST(PaperSemantics, UntypedData) {
  EXPECT_EQ(RunAllWays("<a>3</a> eq \"3\""), "true");
  // Without validation, numeric value comparison with untyped is an error.
  std::string r = RunQuery("<a>3</a> eq 3");
  EXPECT_NE(r.find("ERROR"), std::string::npos);
}

// The node-identity and order comparisons table.
TEST(PaperSemantics, NodeComparisons) {
  EXPECT_EQ(RunAllWays("let $a := <x/> return $a is $a"), "true");
  EXPECT_EQ(RunAllWays("let $d := <r><a/><b/></r> return "
                       "exactly-one($d/a) << exactly-one($d/b)"),
            "true");
  EXPECT_EQ(RunAllWays("let $d := <r><a/><b/></r> return "
                       "exactly-one($d/b) >> exactly-one($d/a)"),
            "true");
  EXPECT_EQ(RunAllWays("count(() is ())"), "0");
}

}  // namespace
}  // namespace xqp
