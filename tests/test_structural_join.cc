#include "join/structural_join.h"

#include <set>

#include <gtest/gtest.h>

#include "join/navigation.h"
#include "join/tag_index.h"
#include "tests/test_util.h"

namespace xqp {
namespace {

using testing_util::RandomXml;

uint64_t PairKey(NodeIndex a, NodeIndex d) {
  return (static_cast<uint64_t>(a) << 32) | d;
}

std::set<uint64_t> PairSet(const std::vector<JoinPair>& pairs) {
  std::set<uint64_t> out;
  for (const auto& p : pairs) out.insert(PairKey(p.ancestor, p.descendant));
  return out;
}

TEST(StructuralJoin, HandCheckedExample) {
  // a(1) contains b(2); a(3) nested in a(1) contains b(4).
  auto doc = Document::Parse("<r><a><b/><a><b/></a></a><b/></r>").value();
  TagIndex index(doc);
  auto pairs = StackTreeDesc(*doc, *index.Lookup("", "a"),
                             *index.Lookup("", "b"));
  // Pairs: (a1,b_first), (a1,b_inner), (a_inner,b_inner). Outer b excluded.
  EXPECT_EQ(pairs.size(), 3u);
}

TEST(StructuralJoin, ParentChildRestriction) {
  auto doc = Document::Parse("<r><a><b/><c><b/></c></a></r>").value();
  TagIndex index(doc);
  auto ad = StackTreeDesc(*doc, *index.Lookup("", "a"), *index.Lookup("", "b"),
                          /*parent_child=*/false);
  auto pc = StackTreeDesc(*doc, *index.Lookup("", "a"), *index.Lookup("", "b"),
                          /*parent_child=*/true);
  EXPECT_EQ(ad.size(), 2u);
  EXPECT_EQ(pc.size(), 1u);
}

TEST(StructuralJoin, StackTreeDescOutputSortedByDescendant) {
  auto doc = Document::Parse(RandomXml(17, 300)).value();
  TagIndex index(doc);
  const auto* a = index.Lookup("", "a");
  const auto* b = index.Lookup("", "b");
  ASSERT_TRUE(a != nullptr && b != nullptr);
  auto pairs = StackTreeDesc(*doc, *a, *b);
  for (size_t i = 1; i < pairs.size(); ++i) {
    EXPECT_LE(pairs[i - 1].descendant, pairs[i].descendant);
  }
}

TEST(StructuralJoin, StackTreeAncOutputSortedByAncestor) {
  auto doc = Document::Parse(RandomXml(18, 300)).value();
  TagIndex index(doc);
  const auto* a = index.Lookup("", "a");
  const auto* b = index.Lookup("", "b");
  ASSERT_TRUE(a != nullptr && b != nullptr);
  auto pairs = StackTreeAnc(*doc, *a, *b);
  for (size_t i = 1; i < pairs.size(); ++i) {
    EXPECT_LE(pairs[i - 1].ancestor, pairs[i].ancestor);
  }
}

TEST(StructuralJoin, SelfJoinExcludesIdentity) {
  // //a//a on recursive data: a node never pairs with itself.
  auto doc = Document::Parse("<r><a><a><a/></a></a></r>").value();
  TagIndex index(doc);
  auto pairs = StackTreeDesc(*doc, *index.Lookup("", "a"),
                             *index.Lookup("", "a"));
  EXPECT_EQ(pairs.size(), 3u);  // (a1,a2),(a1,a3),(a2,a3).
  for (const auto& p : pairs) EXPECT_NE(p.ancestor, p.descendant);
}

TEST(StructuralJoin, EmptyInputs) {
  auto doc = Document::Parse("<r><a/></r>").value();
  TagIndex index(doc);
  std::vector<NodeIndex> empty;
  EXPECT_TRUE(StackTreeDesc(*doc, empty, *index.Lookup("", "a")).empty());
  EXPECT_TRUE(StackTreeDesc(*doc, *index.Lookup("", "a"), empty).empty());
  EXPECT_TRUE(JoinDescendants(*doc, empty, empty).empty());
}

/// Property: all four pair algorithms and navigation agree on random
/// recursive documents (both axis modes).
struct JoinParam {
  uint64_t seed;
  bool parent_child;
};

class JoinEquivalenceTest
    : public ::testing::TestWithParam<JoinParam> {};

TEST_P(JoinEquivalenceTest, AllAlgorithmsAgree) {
  auto [seed, parent_child] = GetParam();
  auto doc = Document::Parse(RandomXml(seed, 400, 3)).value();
  TagIndex index(doc);
  const auto* a = index.Lookup("", "a");
  const auto* b = index.Lookup("", "b");
  if (a == nullptr || b == nullptr) GTEST_SKIP();

  auto std_pairs = StackTreeDesc(*doc, *a, *b, parent_child);
  auto reference = PairSet(std_pairs);
  EXPECT_EQ(PairSet(StackTreeAnc(*doc, *a, *b, parent_child)), reference);
  EXPECT_EQ(PairSet(MpmgJoin(*doc, *a, *b, parent_child)), reference);
  EXPECT_EQ(PairSet(NestedLoopJoin(*doc, *a, *b, parent_child)), reference);

  std::set<uint64_t> nav;
  for (auto [x, y] : NavigatePairs(*doc, "", "a", "", "b", parent_child)) {
    nav.insert(PairKey(x, y));
  }
  EXPECT_EQ(nav, reference);

  // Semi-join projections agree with navigation.
  EXPECT_EQ(JoinDescendants(*doc, *a, *b, parent_child),
            NavigateDescendants(*doc, "", "a", "", "b", parent_child));
  EXPECT_EQ(JoinAncestors(*doc, *a, *b, parent_child),
            NavigateAncestors(*doc, "", "a", "", "b", parent_child));
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, JoinEquivalenceTest,
    ::testing::Values(JoinParam{1, false}, JoinParam{2, false},
                      JoinParam{3, false}, JoinParam{4, false},
                      JoinParam{5, false}, JoinParam{101, true},
                      JoinParam{102, true}, JoinParam{103, true},
                      JoinParam{104, true}, JoinParam{105, true}));

TEST(TagIndex, PostingsSortedAndComplete) {
  auto doc = Document::Parse(RandomXml(9, 200)).value();
  TagIndex index(doc);
  size_t total = 0;
  for (char tag = 'a'; tag <= 'd'; ++tag) {
    const auto* list = index.Lookup("", std::string(1, tag));
    if (list == nullptr) continue;
    total += list->size();
    for (size_t i = 1; i < list->size(); ++i) {
      EXPECT_LT((*list)[i - 1], (*list)[i]);
    }
    for (NodeIndex n : *list) {
      EXPECT_EQ(doc->node(n).kind, NodeKind::kElement);
      EXPECT_EQ(doc->name(n).local, std::string(1, tag));
    }
  }
  EXPECT_EQ(total + 1 /*root <r>*/, index.AllElements().size());
}

TEST(TagIndex, MissingTag) {
  auto doc = Document::Parse("<r/>").value();
  TagIndex index(doc);
  EXPECT_EQ(index.Lookup("", "nope"), nullptr);
}

}  // namespace
}  // namespace xqp
