// Unit tests of the AxisCursor navigation substrate, including the XPath
// partition invariant: for any context node, {self, ancestors, descendants,
// following, preceding} partition all non-attribute nodes of the document.

#include "exec/axes.h"

#include <set>

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace xqp {
namespace {

using testing_util::RandomXml;

std::vector<NodeIndex> Collect(const Node& origin, Axis axis) {
  NodeTest any;  // node()
  Sequence out;
  CollectAxis(origin, axis, any, &out);
  std::vector<NodeIndex> indexes;
  for (const Item& item : out) indexes.push_back(item.AsNode().index());
  return indexes;
}

TEST(Axes, ChildOrderAndContent) {
  auto doc = Document::Parse("<r><a/>text<b/><!--c--><d/></r>").value();
  Node r(doc, 1);
  auto kids = Collect(r, Axis::kChild);
  ASSERT_EQ(kids.size(), 5u);
  for (size_t i = 1; i < kids.size(); ++i) EXPECT_LT(kids[i - 1], kids[i]);
  EXPECT_EQ(doc->node(kids[0]).kind, NodeKind::kElement);
  EXPECT_EQ(doc->node(kids[1]).kind, NodeKind::kText);
  EXPECT_EQ(doc->node(kids[3]).kind, NodeKind::kComment);
}

TEST(Axes, AttributesNotChildrenNorDescendants) {
  auto doc = Document::Parse("<r a=\"1\"><x b=\"2\"/></r>").value();
  Node r(doc, 1);
  for (NodeIndex i : Collect(r, Axis::kChild)) {
    EXPECT_NE(doc->node(i).kind, NodeKind::kAttribute);
  }
  for (NodeIndex i : Collect(r, Axis::kDescendant)) {
    EXPECT_NE(doc->node(i).kind, NodeKind::kAttribute);
  }
  EXPECT_EQ(Collect(r, Axis::kAttribute).size(), 1u);
}

TEST(Axes, ReverseAxesDeliverReverseDocumentOrder) {
  auto doc =
      Document::Parse("<r><a/><b/><c><d/></c><e/><f/></r>").value();
  // Context: <e>.
  NodeIndex e_idx = doc->FindNameId("", "e");
  NodeIndex e_node = kNullNode;
  for (NodeIndex i = 0; i < doc->NumNodes(); ++i) {
    if (doc->node(i).kind == NodeKind::kElement &&
        doc->node(i).name_id == e_idx) {
      e_node = i;
    }
  }
  Node e(doc, e_node);
  auto preceding_sibling = Collect(e, Axis::kPrecedingSibling);
  ASSERT_EQ(preceding_sibling.size(), 3u);
  for (size_t i = 1; i < preceding_sibling.size(); ++i) {
    EXPECT_GT(preceding_sibling[i - 1], preceding_sibling[i]);
  }
  auto ancestors = Collect(e, Axis::kAncestor);
  for (size_t i = 1; i < ancestors.size(); ++i) {
    EXPECT_GT(ancestors[i - 1], ancestors[i]);
  }
  auto preceding = Collect(e, Axis::kPreceding);
  for (size_t i = 1; i < preceding.size(); ++i) {
    EXPECT_GT(preceding[i - 1], preceding[i]);
  }
}

TEST(Axes, PrecedingExcludesAncestors) {
  auto doc = Document::Parse("<r><a><b/><c/></a></r>").value();
  // Context: <c> (index of c = after b).
  NodeIndex c_node = 4;
  ASSERT_EQ(doc->name(c_node).local, "c");
  auto preceding = Collect(Node(doc, c_node), Axis::kPreceding);
  // Only <b>; <a> and <r> are ancestors, excluded.
  ASSERT_EQ(preceding.size(), 1u);
  EXPECT_EQ(doc->name(preceding[0]).local, "b");
}

TEST(Axes, SelfAndParent) {
  auto doc = Document::Parse("<r><a x=\"1\"/></r>").value();
  Node a(doc, 2);
  EXPECT_EQ(Collect(a, Axis::kSelf), std::vector<NodeIndex>{2u});
  EXPECT_EQ(Collect(a, Axis::kParent), std::vector<NodeIndex>{1u});
  // Attribute's parent is its element.
  Node attr(doc, 3);
  ASSERT_EQ(attr.kind(), NodeKind::kAttribute);
  EXPECT_EQ(Collect(attr, Axis::kParent), std::vector<NodeIndex>{2u});
  // Document node has no parent.
  EXPECT_TRUE(Collect(Node(doc, 0), Axis::kParent).empty());
}

TEST(Axes, NameTestFiltersDuringWalk) {
  auto doc = Document::Parse("<r><a/><b/><a><a/></a></r>").value();
  NodeTest test = NodeTest::Name("", "a");
  Sequence out;
  CollectAxis(Node(doc, 1), Axis::kDescendant, test, &out);
  EXPECT_EQ(out.size(), 3u);
}

/// Partition invariant over random documents and every context node.
class AxisPartitionTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AxisPartitionTest, FiveAxesPartitionTheDocument) {
  auto doc = Document::Parse(RandomXml(GetParam(), 120)).value();
  // All non-attribute nodes.
  std::set<NodeIndex> everything;
  for (NodeIndex i = 0; i < doc->NumNodes(); ++i) {
    if (doc->node(i).kind != NodeKind::kAttribute) everything.insert(i);
  }
  for (NodeIndex origin = 0; origin < doc->NumNodes(); ++origin) {
    if (doc->node(origin).kind == NodeKind::kAttribute) continue;
    Node node(doc, origin);
    std::set<NodeIndex> seen;
    size_t total = 0;
    for (Axis axis : {Axis::kSelf, Axis::kAncestor, Axis::kDescendant,
                      Axis::kFollowing, Axis::kPreceding}) {
      for (NodeIndex i : Collect(node, axis)) {
        EXPECT_TRUE(seen.insert(i).second)
            << "node " << i << " in two axes from origin " << origin;
        ++total;
      }
    }
    EXPECT_EQ(total, everything.size()) << "origin " << origin;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AxisPartitionTest,
                         ::testing::Values(3, 7, 19, 41, 83));

TEST(Axes, FollowingSiblingPlusPrecedingSiblingPlusSelfEqualsChildren) {
  auto doc = Document::Parse(RandomXml(11, 100)).value();
  for (NodeIndex origin = 1; origin < doc->NumNodes(); ++origin) {
    const NodeRecord& n = doc->node(origin);
    if (n.kind == NodeKind::kAttribute || n.parent == kNullNode) continue;
    Node node(doc, origin);
    size_t sibs = Collect(node, Axis::kFollowingSibling).size() +
                  Collect(node, Axis::kPrecedingSibling).size() + 1;
    size_t children = Collect(Node(doc, n.parent), Axis::kChild).size();
    EXPECT_EQ(sibs, children) << "origin " << origin;
  }
}

}  // namespace
}  // namespace xqp
