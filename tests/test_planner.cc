// Cost-based access-path selection tests: randomized plan equivalence
// (every forced strategy × every backend must be bit-identical to the
// unindexed reference), cardinality-estimator accuracy on XMark and
// adversarial documents, cost-model crossover sanity on skewed corpora,
// and forced-path robustness under fault injection and resource limits.

#include "opt/access_path.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/fault.h"
#include "engine.h"
#include "index/index_planner.h"
#include "opt/cost.h"
#include "tests/test_util.h"
#include "xmark/generator.h"

namespace xqp {
namespace {

using testing_util::RandomXml;

std::string XMarkXml(double scale) {
  XMarkOptions options;
  options.scale = scale;
  return GenerateXMarkXml(options);
}

constexpr AccessPath kAllForces[] = {AccessPath::kAuto, AccessPath::kNav,
                                     AccessPath::kSJoin, AccessPath::kTwig,
                                     AccessPath::kIndex};

constexpr ExecBackend kAllBackends[] = {ExecBackend::kLazy,
                                        ExecBackend::kEager, ExecBackend::kVm};

/// Serialized result of `query` on `engine` with the given backend;
/// errors are folded into the returned string so differential checks also
/// compare error behavior.
std::string RunWith(XQueryEngine& engine, const std::string& query,
                    ExecBackend backend) {
  auto compiled = engine.Compile(query);
  if (!compiled.ok()) return "COMPILE-ERROR: " + compiled.status().ToString();
  CompiledQuery::ExecOptions exec;
  exec.backend = backend;
  auto result = compiled.value()->ExecuteToXml(exec);
  return result.ok() ? result.value()
                     : "ERROR: " + result.status().ToString();
}

/// The harness core: for one document, every query must serialize
/// identically on (a) an unindexed engine and (b) an indexed engine under
/// every forced access path, on all three backends.
void ExpectPlanEquivalence(const std::string& uri, const std::string& xml,
                           const std::vector<std::string>& queries) {
  EngineOptions plain_options;
  plain_options.enable_indexes = false;
  XQueryEngine plain(plain_options);
  XQP_ASSERT_OK(plain.ParseAndRegister(uri, xml).status());

  std::vector<std::unique_ptr<XQueryEngine>> forced;
  for (AccessPath force : kAllForces) {
    EngineOptions options;
    options.force_access_path = force;
    forced.push_back(std::make_unique<XQueryEngine>(options));
    XQP_ASSERT_OK(forced.back()->ParseAndRegister(uri, xml).status());
  }

  for (const std::string& query : queries) {
    const std::string want = RunWith(plain, query, ExecBackend::kLazy);
    for (size_t f = 0; f < forced.size(); ++f) {
      for (ExecBackend backend : kAllBackends) {
        EXPECT_EQ(RunWith(*forced[f], query, backend), want)
            << query << " force=" << AccessPathName(kAllForces[f])
            << " backend=" << ExecBackendName(backend);
      }
    }
  }
}

/// The first index-candidate path in pre-order, or null.
const PathExpr* FindMarkedPath(const Expr& e) {
  if (e.kind() == ExprKind::kPath) {
    const auto* p = static_cast<const PathExpr*>(&e);
    if (p->index_candidate) return p;
  }
  for (size_t i = 0; i < e.NumChildren(); ++i) {
    if (const PathExpr* hit = FindMarkedPath(*e.child(i))) return hit;
  }
  return nullptr;
}

/// Plans `query` on `engine` and returns the cardinality estimate from the
/// document's (built) indexes. Asserts the query is index-plannable.
CardEstimate EstimateFor(XQueryEngine& engine, const std::string& uri,
                         const std::string& query) {
  auto compiled = engine.Compile(query);
  EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
  const PathExpr* marked =
      FindMarkedPath(*compiled.value()->module().body);
  EXPECT_NE(marked, nullptr) << query;
  if (marked == nullptr) return {};
  std::optional<IndexQuery> plan = PlanIndexPath(*marked);
  EXPECT_TRUE(plan.has_value()) << query;
  if (!plan.has_value()) return {};
  auto indexes = engine.GetDocumentIndexes(uri);
  EXPECT_TRUE(indexes.ok() && indexes.value() != nullptr);
  return EstimateCardinality(*indexes.value(), *plan);
}

/// True result cardinality via the engine itself.
uint64_t TrueCount(XQueryEngine& engine, const std::string& query) {
  auto result = engine.Execute(query);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? result.value().size() : 0;
}

/// Path-diversity corpus for the cost crossover: `diversity` distinct
/// parent tags, each holding `per_path` <k> leaves. //k merges `diversity`
/// synopsis posting lists (the direct index answer pays a full sort for
/// diversity > 1) while the per-tag list the structural join consumes is
/// one pre-sorted run.
std::string DiversityXml(size_t diversity, size_t per_path) {
  std::string out = "<r>";
  for (size_t d = 0; d < diversity; ++d) {
    out += "<p" + std::to_string(d) + ">";
    for (size_t j = 0; j < per_path; ++j) out += "<k>v</k>";
    out += "</p" + std::to_string(d) + ">";
  }
  out += "</r>";
  return out;
}

/// ChooseAccessPath for `query` against `engine`'s built indexes.
AccessPathDecision DecisionFor(XQueryEngine& engine, const std::string& uri,
                               const std::string& query,
                               AccessPath force = AccessPath::kAuto) {
  auto compiled = engine.Compile(query);
  EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
  const PathExpr* marked = FindMarkedPath(*compiled.value()->module().body);
  EXPECT_NE(marked, nullptr) << query;
  std::optional<IndexQuery> plan = PlanIndexPath(*marked);
  EXPECT_TRUE(plan.has_value()) << query;
  auto indexes = engine.GetDocumentIndexes(uri);
  EXPECT_TRUE(indexes.ok() && indexes.value() != nullptr);
  return ChooseAccessPath(*indexes.value(), *plan, force);
}

// ---------------------------------------------------------------------
// Plan equivalence: forced strategies × backends, bit-identical.

TEST(PlanEquivalence, XMarkShapes) {
  ExpectPlanEquivalence(
      "xmark.xml", XMarkXml(0.02),
      {
          "doc('xmark.xml')/site/people/person",
          "doc('xmark.xml')/site/people/person/name",
          "doc('xmark.xml')//keyword",
          "doc('xmark.xml')//open_auction/bidder/increase",
          "doc('xmark.xml')//person/@id",
          "doc('xmark.xml')/site/regions//item/location",
          "doc('xmark.xml')//person[@id = 'person0']",
          "doc('xmark.xml')//item[quantity = 1]",
          "doc('xmark.xml')//open_auction/bidder[1]",
          "doc('xmark.xml')//item[location = 'United States'][quantity = 1]",
          "doc('xmark.xml')//item[location = 'United States'"
          " and quantity = 1]/name",
          "doc('xmark.xml')//nonexistent_tag",
      });
}

TEST(PlanEquivalence, RandomCorpora) {
  const std::vector<std::string> shapes = {
      "doc('r.xml')//a",
      "doc('r.xml')/r/a",
      "doc('r.xml')//a/b",
      "doc('r.xml')//a//c",
      "doc('r.xml')//b/@k",
      "doc('r.xml')//a[@k = '3']",
      "doc('r.xml')//a/b[2]",
      "doc('r.xml')//d[@k = '1']/a",
      "doc('r.xml')//a[@k = '2'][b]",
  };
  for (uint64_t seed : {7u, 21u, 443u}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    ExpectPlanEquivalence("r.xml", RandomXml(seed, 300), shapes);
  }
}

// Skewed corpora: heavily duplicated paths vs wide path diversity — the
// shapes where the strategies' costs actually diverge.
TEST(PlanEquivalence, SkewedCorpora) {
  const std::vector<std::string> shapes = {
      "doc('s.xml')//k",
      "doc('s.xml')/r/p0/k",
      "doc('s.xml')//p1//k",
  };
  ExpectPlanEquivalence("s.xml", DiversityXml(1, 400), shapes);
  ExpectPlanEquivalence("s.xml", DiversityXml(48, 9), shapes);
}

// ---------------------------------------------------------------------
// Cardinality estimator.

TEST(CardEstimator, StructuralChainsAreExactOnXMark) {
  for (double scale : {0.02, 0.2}) {
    SCOPED_TRACE("scale=" + std::to_string(scale));
    XQueryEngine engine;
    XQP_ASSERT_OK(
        engine.ParseAndRegister("xmark.xml", XMarkXml(scale)).status());
    for (const char* query : {
             "doc('xmark.xml')/site/people/person",
             "doc('xmark.xml')/site/people/person/name",
             "doc('xmark.xml')//keyword",
             "doc('xmark.xml')//open_auction/bidder/increase",
             "doc('xmark.xml')//person/@id",
             "doc('xmark.xml')/site/regions//item",
             "doc('xmark.xml')//nonexistent_tag",
         }) {
      CardEstimate est = EstimateFor(engine, "xmark.xml", query);
      EXPECT_TRUE(est.exact) << query;
      EXPECT_EQ(est.rows, TrueCount(engine, query)) << query;
    }
  }
}

TEST(CardEstimator, PredicateEstimatesBoundedError) {
  // Predicate selectivities come from exact counting range probes over the
  // value families; the only estimation error is the matched-entries →
  // surviving-parents mapping (and independence across conjuncts). On
  // XMark's 1:1 child layout the estimate must stay within a factor of 2
  // plus small absolute slack of the truth.
  for (double scale : {0.02, 0.2}) {
    SCOPED_TRACE("scale=" + std::to_string(scale));
    XQueryEngine engine;
    XQP_ASSERT_OK(
        engine.ParseAndRegister("xmark.xml", XMarkXml(scale)).status());
    for (const char* query : {
             "doc('xmark.xml')//person[@id = 'person0']",
             "doc('xmark.xml')//item[quantity = 1]",
             "doc('xmark.xml')//item[quantity = 1]/name",
         }) {
      CardEstimate est = EstimateFor(engine, "xmark.xml", query);
      uint64_t truth = TrueCount(engine, query);
      EXPECT_FALSE(est.exact) << query;
      EXPECT_LE(est.rows, 2 * truth + 8) << query << " truth=" << truth;
      EXPECT_LE(truth, 2 * est.rows + 8) << query << " est=" << est.rows;
    }
  }
}

TEST(CardEstimator, EmptyAndAdversarialDocs) {
  XQueryEngine engine;
  XQP_ASSERT_OK(
      engine.ParseAndRegister("e.xml", "<r><a/><a/></r>").status());
  // Absent tag: exact zero.
  CardEstimate est = EstimateFor(engine, "e.xml", "doc('e.xml')//zzz");
  EXPECT_TRUE(est.exact);
  EXPECT_EQ(est.rows, 0u);
  // Empty continuation below an existing path: exact zero too.
  est = EstimateFor(engine, "e.xml", "doc('e.xml')/r/a/b");
  EXPECT_TRUE(est.exact);
  EXPECT_EQ(est.rows, 0u);
}

TEST(CardEstimator, PoisonedValueIndexDisablesIndexPath) {
  // Mixed-type content under one path self-poisons the numeric family:
  // a numeric predicate there is unprovable, so the index strategy must
  // be inapplicable — and the chain still answers correctly everywhere.
  const std::string xml =
      "<r><i><v>abc</v></i><i><v>123</v></i><i><v>7</v></i>"
      "<i><v>xy</v></i></r>";
  XQueryEngine engine;
  XQP_ASSERT_OK(engine.ParseAndRegister("p.xml", xml).status());
  AccessPathDecision d =
      DecisionFor(engine, "p.xml", "doc('p.xml')/r/i[v = 7]");
  EXPECT_FALSE(d.costs.index_applicable);
  EXPECT_NE(d.chosen, AccessPath::kIndex);
  // The string family is not poisoned by mixed content; the same chain
  // with a string operand stays index-answerable.
  AccessPathDecision ds =
      DecisionFor(engine, "p.xml", "doc('p.xml')/r/i[v = 'abc']");
  EXPECT_TRUE(ds.costs.index_applicable);
  ExpectPlanEquivalence("p.xml", xml,
                        {"doc('p.xml')/r/i[v = 7]",
                         "doc('p.xml')/r/i[v = 'abc']",
                         "doc('p.xml')//i[v = 123]"});
}

// ---------------------------------------------------------------------
// Cost model: crossover on skewed corpora.

TEST(CostModel, DiversityCrossoverFlipsStrategy) {
  // One hot path: the direct index answer returns a single pre-sorted
  // posting list — nothing can beat it.
  {
    XQueryEngine engine;
    XQP_ASSERT_OK(
        engine.ParseAndRegister("s.xml", DiversityXml(1, 512)).status());
    AccessPathDecision d = DecisionFor(engine, "s.xml", "doc('s.xml')//k");
    EXPECT_EQ(d.chosen, AccessPath::kIndex);
    EXPECT_TRUE(d.card.exact);
    EXPECT_EQ(d.card.rows, 512u);
  }
  // Wide diversity: the merged answer pays a full concat-and-sort while
  // the structural join consumes the one cached per-tag run — the model
  // must flip away from the direct index answer.
  {
    XQueryEngine engine;
    XQP_ASSERT_OK(
        engine.ParseAndRegister("s.xml", DiversityXml(64, 64)).status());
    AccessPathDecision d = DecisionFor(engine, "s.xml", "doc('s.xml')//k");
    EXPECT_EQ(d.chosen, AccessPath::kSJoin);
    EXPECT_TRUE(d.card.exact);
    EXPECT_EQ(d.card.rows, 64u * 64u);
  }
}

TEST(CostModel, ForcedDecisionReportsForced) {
  XQueryEngine engine;
  XQP_ASSERT_OK(
      engine.ParseAndRegister("s.xml", DiversityXml(4, 16)).status());
  AccessPathDecision d =
      DecisionFor(engine, "s.xml", "doc('s.xml')//k", AccessPath::kTwig);
  EXPECT_TRUE(d.forced);
  EXPECT_EQ(d.chosen, AccessPath::kTwig);
}

TEST(CostModel, AutoMatchesCheapestObservedWhenSpreadIsLarge) {
  // Tolerant timing cross-check: run the two contested strategies under
  // force and compare wall clock (best of 3). Only when the observed
  // spread is decisive (>= 3x) do we require the cost model to have
  // picked the faster side — small spreads prove nothing on shared CI
  // hardware.
  struct Corpus {
    size_t diversity;
    size_t per_path;
  };
  for (Corpus c : {Corpus{1, 20000}, Corpus{256, 40}}) {
    SCOPED_TRACE("diversity=" + std::to_string(c.diversity));
    const std::string xml = DiversityXml(c.diversity, c.per_path);
    const std::string query = "doc('s.xml')//k";

    auto measure = [&](AccessPath force) {
      EngineOptions options;
      options.force_access_path = force;
      XQueryEngine engine(options);
      EXPECT_TRUE(engine.ParseAndRegister("s.xml", xml).ok());
      auto compiled = engine.Compile(query);
      EXPECT_TRUE(compiled.ok());
      // Warm caches (index + tag-index builds) outside the timed runs.
      EXPECT_TRUE(compiled.value()->Execute().ok());
      double best = 1e100;
      for (int rep = 0; rep < 3; ++rep) {
        auto t0 = std::chrono::steady_clock::now();
        auto r = compiled.value()->Execute();
        auto t1 = std::chrono::steady_clock::now();
        EXPECT_TRUE(r.ok());
        best = std::min(
            best, std::chrono::duration<double>(t1 - t0).count());
      }
      return best;
    };

    double t_index = measure(AccessPath::kIndex);
    double t_sjoin = measure(AccessPath::kSJoin);

    XQueryEngine engine;
    XQP_ASSERT_OK(engine.ParseAndRegister("s.xml", xml).status());
    AccessPathDecision d = DecisionFor(engine, "s.xml", query);
    if (t_index * 3 < t_sjoin) {
      EXPECT_EQ(d.chosen, AccessPath::kIndex)
          << "index " << t_index << "s vs sjoin " << t_sjoin << "s";
    } else if (t_sjoin * 3 < t_index) {
      EXPECT_EQ(d.chosen, AccessPath::kSJoin)
          << "index " << t_index << "s vs sjoin " << t_sjoin << "s";
    }
  }
}

// ---------------------------------------------------------------------
// Extended planner features: positional and conjunctive predicates.

TEST(PlannerFeatures, PositionalPredicatePlansAndAnswers) {
  const std::string xml =
      "<r><p><b>1</b><b>2</b><b>3</b></p><p><b>4</b></p><q><b>5</b></q></r>";
  XQueryEngine engine;
  XQP_ASSERT_OK(engine.ParseAndRegister("d.xml", xml).status());
  auto compiled = engine.Compile("doc('d.xml')//b[2]");
  XQP_ASSERT_OK(compiled.status());
  const PathExpr* marked = FindMarkedPath(*compiled.value()->module().body);
  ASSERT_NE(marked, nullptr);
  std::optional<IndexQuery> plan = PlanIndexPath(*marked);
  ASSERT_TRUE(plan.has_value());
  ASSERT_EQ(plan->predicates.size(), 1u);
  EXPECT_TRUE(plan->predicates[0].positional);
  // Per-parent second <b>: only the first <p> qualifies.
  XQP_ASSERT_OK_AND_ASSIGN(auto indexes,
                           engine.GetDocumentIndexes("d.xml"));
  ASSERT_NE(indexes, nullptr);
  std::optional<std::vector<NodeIndex>> answer =
      AnswerIndexQuery(*indexes, *plan);
  ASSERT_TRUE(answer.has_value());
  EXPECT_EQ(answer->size(), 1u);
  ExpectPlanEquivalence("d.xml", xml,
                        {"doc('d.xml')//b[2]", "doc('d.xml')/r/p/b[3]",
                         "doc('d.xml')//p/b[1]", "doc('d.xml')//b[9]"});
}

TEST(PlannerFeatures, GenuineDescendantPositionalDeclines) {
  // descendant::b[2] counts per *ancestor*, not per parent — the planner
  // must refuse it (and plain evaluation still answers it everywhere).
  const std::string xml = "<r><p><b>1</b><b>2</b></p></r>";
  XQueryEngine engine;
  XQP_ASSERT_OK(engine.ParseAndRegister("d.xml", xml).status());
  auto compiled = engine.Compile("doc('d.xml')/descendant::b[2]");
  XQP_ASSERT_OK(compiled.status());
  const PathExpr* marked = FindMarkedPath(*compiled.value()->module().body);
  if (marked != nullptr) {
    EXPECT_FALSE(PlanIndexPath(*marked).has_value());
  }
  ExpectPlanEquivalence("d.xml", xml, {"doc('d.xml')/descendant::b[2]"});
}

TEST(PlannerFeatures, ConjunctivePredicatesIntersect) {
  const std::string xml =
      "<r>"
      "<i><loc>US</loc><qty>1</qty></i>"
      "<i><loc>US</loc><qty>2</qty></i>"
      "<i><loc>DE</loc><qty>1</qty></i>"
      "</r>";
  XQueryEngine engine;
  XQP_ASSERT_OK(engine.ParseAndRegister("d.xml", xml).status());
  auto compiled = engine.Compile("doc('d.xml')//i[loc = 'US'][qty = 1]");
  XQP_ASSERT_OK(compiled.status());
  const PathExpr* marked = FindMarkedPath(*compiled.value()->module().body);
  ASSERT_NE(marked, nullptr);
  std::optional<IndexQuery> plan = PlanIndexPath(*marked);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->predicates.size(), 2u);
  XQP_ASSERT_OK_AND_ASSIGN(auto indexes,
                           engine.GetDocumentIndexes("d.xml"));
  ASSERT_NE(indexes, nullptr);
  std::optional<std::vector<NodeIndex>> answer =
      AnswerIndexQuery(*indexes, *plan);
  ASSERT_TRUE(answer.has_value());
  EXPECT_EQ(answer->size(), 1u);
  ExpectPlanEquivalence(
      "d.xml", xml,
      {"doc('d.xml')//i[loc = 'US'][qty = 1]",
       "doc('d.xml')//i[loc = 'US' and qty = 1]",
       "doc('d.xml')//i[loc = 'US'][qty = 1][1]"});
}

// ---------------------------------------------------------------------
// Robustness: forced paths under fault injection and resource limits.

TEST(PlannerRobustness, ForcedPathsUnderFaultInjection) {
  for (AccessPath force :
       {AccessPath::kSJoin, AccessPath::kTwig, AccessPath::kIndex}) {
    SCOPED_TRACE(AccessPathName(force));
    EngineOptions options;
    options.force_access_path = force;
    XQueryEngine engine(options);
    XQP_ASSERT_OK(
        engine.ParseAndRegister("d.xml", XMarkXml(0.02)).status());
    // Armed after registration: the first "alloc" hit lands in the index
    // build triggered by execution, and must fail that query.
    fault::ScopedFault fault("alloc", 1);
    auto r = engine.Execute("doc('d.xml')/site/people/person/name");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInternal);
    fault::Disarm();
    XQP_ASSERT_OK(
        engine.Execute("doc('d.xml')/site/people/person/name").status());
  }
}

TEST(PlannerRobustness, ForcedPathsHonorResultItemCap) {
  const std::string xml = DiversityXml(8, 32);
  for (AccessPath force : kAllForces) {
    SCOPED_TRACE(AccessPathName(force));
    EngineOptions options;
    options.force_access_path = force;
    options.default_limits.max_result_items = 5;
    XQueryEngine engine(options);
    XQP_ASSERT_OK(engine.ParseAndRegister("d.xml", xml).status());
    for (ExecBackend backend : kAllBackends) {
      auto compiled = engine.Compile("doc('d.xml')//k");
      XQP_ASSERT_OK(compiled.status());
      CompiledQuery::ExecOptions exec;
      exec.backend = backend;
      auto r = compiled.value()->Execute(exec);
      ASSERT_FALSE(r.ok()) << ExecBackendName(backend);
      EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted)
          << ExecBackendName(backend);
    }
  }
}

TEST(PlannerRobustness, ForcedPathsHonorCancellation) {
  const std::string xml = DiversityXml(4, 16);
  for (AccessPath force : kAllForces) {
    SCOPED_TRACE(AccessPathName(force));
    EngineOptions options;
    options.force_access_path = force;
    XQueryEngine engine(options);
    XQP_ASSERT_OK(engine.ParseAndRegister("d.xml", xml).status());
    auto compiled = engine.Compile("doc('d.xml')//k");
    XQP_ASSERT_OK(compiled.status());
    CompiledQuery::ExecOptions exec;
    exec.limits.cancel = std::make_shared<CancelToken>();
    exec.limits.cancel->Cancel();  // Pre-cancelled: fails at first poll.
    auto r = compiled.value()->Execute(exec);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
  }
}

// The XQP_ACCESS_PATH env knob reaches the engine constructor.
TEST(PlannerRobustness, EnvKnobParsesAndApplies) {
  ::setenv("XQP_ACCESS_PATH", "sjoin", 1);
  XQueryEngine engine;
  ::unsetenv("XQP_ACCESS_PATH");
  EXPECT_EQ(engine.options().force_access_path, AccessPath::kSJoin);
  ::setenv("XQP_ACCESS_PATH", "bogus", 1);
  XQueryEngine engine2;
  ::unsetenv("XQP_ACCESS_PATH");
  EXPECT_EQ(engine2.options().force_access_path, AccessPath::kAuto);
}

}  // namespace
}  // namespace xqp
