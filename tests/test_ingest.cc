// Differential suite for the fast-path ingest pipeline: the SWAR/zero-copy
// parser, memoized-name document build, and parallel bulk load must be
// BIT-IDENTICAL to the frozen seed implementation in
// tests/reference_parser.h — same event streams, same node tables and pool
// ids, same TokenStreams, and byte-identical error strings for malformed
// input.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "base/fault.h"
#include "base/metrics.h"
#include "engine.h"
#include "tests/reference_parser.h"
#include "tests/test_util.h"
#include "tokens/token_stream.h"
#include "xmark/generator.h"
#include "xml/document.h"
#include "xml/pull_parser.h"

namespace xqp {
namespace {

std::string RenderQName(const QName& q) {
  return "{" + q.uri + "}" + q.prefix + ":" + q.local;
}

/// Pumps the fast parser, rendering every event canonically. On parse
/// error, returns the rendered prefix and sets *error.
std::vector<std::string> PumpFast(std::string_view xml,
                                  const ParseOptions& options, Status* error) {
  *error = Status::OK();
  XmlPullParser parser(xml, options);
  std::vector<std::string> out;
  while (true) {
    auto next = parser.Next();
    if (!next.ok()) {
      *error = next.status();
      return out;
    }
    const XmlEvent* e = next.value();
    if (e == nullptr) break;
    std::string s = std::to_string(static_cast<int>(e->type));
    s += "|" + RenderQName(e->name);
    s += "|" + std::string(e->text);
    for (const auto& a : e->attributes) {
      s += "|A:" + RenderQName(a.name) + "=" + std::string(a.value);
    }
    for (const auto& ns : e->ns_decls) {
      s += "|N:" + ns.prefix + "=" + ns.uri;
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<std::string> PumpReference(std::string_view xml,
                                       const ParseOptions& options,
                                       Status* error) {
  *error = Status::OK();
  reference::RefXmlPullParser parser(xml, options);
  std::vector<std::string> out;
  while (true) {
    auto next = parser.Next();
    if (!next.ok()) {
      *error = next.status();
      return out;
    }
    const reference::RefXmlEvent* e = next.value();
    if (e == nullptr) break;
    std::string s = std::to_string(static_cast<int>(e->type));
    s += "|" + RenderQName(e->name);
    s += "|" + e->text;
    for (const auto& a : e->attributes) {
      s += "|A:" + RenderQName(a.name) + "=" + a.value;
    }
    for (const auto& ns : e->ns_decls) {
      s += "|N:" + ns.prefix + "=" + ns.uri;
    }
    out.push_back(std::move(s));
  }
  return out;
}

void ExpectIdenticalEvents(std::string_view xml,
                           const ParseOptions& options = {}) {
  Status fast_err, ref_err;
  auto fast = PumpFast(xml, options, &fast_err);
  auto ref = PumpReference(xml, options, &ref_err);
  EXPECT_EQ(fast_err.ToString(), ref_err.ToString())
      << "input: " << xml.substr(0, 200);
  EXPECT_EQ(fast, ref) << "input: " << xml.substr(0, 200);
}

void ExpectIdenticalDocuments(const Document& fast, const Document& ref) {
  ASSERT_EQ(fast.NumNodes(), ref.NumNodes());
  for (NodeIndex i = 0; i < fast.NumNodes(); ++i) {
    const NodeRecord& a = fast.node(i);
    const NodeRecord& b = ref.node(i);
    ASSERT_EQ(a.kind, b.kind) << "node " << i;
    ASSERT_EQ(a.level, b.level) << "node " << i;
    ASSERT_EQ(a.name_id, b.name_id) << "node " << i;
    ASSERT_EQ(a.value_id, b.value_id) << "node " << i;
    ASSERT_EQ(a.parent, b.parent) << "node " << i;
    ASSERT_EQ(a.next_sibling, b.next_sibling) << "node " << i;
    ASSERT_EQ(a.first_attr, b.first_attr) << "node " << i;
    ASSERT_EQ(a.first_child, b.first_child) << "node " << i;
    ASSERT_EQ(a.end, b.end) << "node " << i;
  }
  ASSERT_EQ(fast.NumNames(), ref.NumNames());
  for (uint32_t n = 0; n < fast.NumNames(); ++n) {
    const QName& a = fast.name_at(n);
    const QName& b = ref.name_at(n);
    ASSERT_EQ(RenderQName(a), RenderQName(b)) << "name " << n;
  }
  // Pool-id identity: same number of pooled strings, same bytes per id.
  ASSERT_EQ(fast.pool().size(), ref.pool().size());
  for (StringPool::Id id = 0;
       id < static_cast<StringPool::Id>(fast.pool().size()); ++id) {
    ASSERT_EQ(fast.pool().Get(id), ref.pool().Get(id)) << "pool id " << id;
  }
}

void ExpectIdenticalParses(std::string_view xml,
                           const ParseOptions& options = {}) {
  auto fast = Document::Parse(xml, options);
  auto ref = reference::ParseDocument(xml, options);
  ASSERT_EQ(fast.ok(), ref.ok());
  if (!fast.ok()) {
    EXPECT_EQ(fast.status().ToString(), ref.status().ToString());
    return;
  }
  ExpectIdenticalDocuments(**fast, **ref);
}

void ExpectIdenticalStreams(const TokenStream& fast, const TokenStream& ref) {
  ASSERT_EQ(fast.size(), ref.size());
  for (size_t i = 0; i < fast.size(); ++i) {
    const Token& a = fast.token(i);
    const Token& b = ref.token(i);
    ASSERT_EQ(a.kind, b.kind) << "token " << i;
    ASSERT_EQ(a.name_id, b.name_id) << "token " << i;
    ASSERT_EQ(a.value_id, b.value_id) << "token " << i;
    ASSERT_EQ(a.aux_id, b.aux_id) << "token " << i;
    ASSERT_EQ(a.node_id, b.node_id) << "token " << i;
    ASSERT_EQ(a.skip_to, b.skip_to) << "token " << i;
    ASSERT_EQ(fast.value(a), ref.value(b)) << "token " << i;
    ASSERT_EQ(fast.aux(a), ref.aux(b)) << "token " << i;
    if (a.name_id != kNoName) {
      ASSERT_EQ(RenderQName(fast.name(a)), RenderQName(ref.name(b)))
          << "token " << i;
    }
  }
}

void ExpectIdenticalTokenization(std::string_view xml,
                                 const TokenStreamOptions& options = {}) {
  auto fast = TokenStream::FromXml(xml, options);
  auto ref = reference::ParseTokenStream(xml, options);
  ASSERT_EQ(fast.ok(), ref.ok());
  if (!fast.ok()) {
    EXPECT_EQ(fast.status().ToString(), ref.status().ToString());
    return;
  }
  ExpectIdenticalStreams(*fast, *ref);
}

// ---------------------------------------------------------------------------
// Hand-written well-formed corpus.

const char* kWellFormed[] = {
    "<a/>",
    "<a>hi</a>",
    "<a><b>x</b><c>y</c></a>",
    "<?xml version=\"1.0\"?>\n<a>text</a>\n",
    "<a x=\"1\" y='2'>t</a>",
    "<a>one&amp;two&lt;three&gt;&quot;&apos;</a>",
    "<a x=\"a&amp;b\" y=\"&#65;&#x42;\">&#169;&#x1F600;</a>",
    "<a><![CDATA[raw <markup> & entities]]></a>",
    "<a>pre<![CDATA[mid]]>post</a>",
    "<a><!-- a comment --><b/><?target  pi data ?></a>",
    "<!DOCTYPE a [<!ELEMENT a ANY>]><a/>",
    "<ns:a xmlns:ns=\"urn:x\"><ns:b ns:attr=\"v\"/></ns:a>",
    "<a xmlns=\"urn:default\"><b/><c xmlns=\"urn:other\"><d/></c><e/></a>",
    "<a xmlns:p=\"u1\"><p:b/><c xmlns:p=\"u2\"><p:d/></c><p:e/></a>",
    "<a>\n  <b>  </b>\n  mixed <i>text</i> tail\n</a>",
    "<root><empty/><empty/><empty/></root>",
    "  \n\t<a/>\n  ",
    "<a.b-c_d><e.f/></a.b-c_d>",
    "<a>&#10;&#13;&#9;</a>",
    "<p:a xmlns:p=\"u\" xmlns:q=\"u\"><q:b/></p:a>",
};

TEST(IngestDifferential, WellFormedEvents) {
  for (const char* xml : kWellFormed) {
    ExpectIdenticalEvents(xml);
    ParseOptions strip;
    strip.strip_whitespace = true;
    ExpectIdenticalEvents(xml, strip);
  }
}

TEST(IngestDifferential, WellFormedDocuments) {
  for (const char* xml : kWellFormed) {
    ExpectIdenticalParses(xml);
    ParseOptions strip;
    strip.strip_whitespace = true;
    ExpectIdenticalParses(xml, strip);
    ParseOptions unpooled;
    unpooled.pool_strings = false;
    ExpectIdenticalParses(xml, unpooled);
  }
}

TEST(IngestDifferential, WellFormedTokenStreams) {
  for (const char* xml : kWellFormed) {
    ExpectIdenticalTokenization(xml);
    TokenStreamOptions no_ids;
    no_ids.with_node_ids = false;
    ExpectIdenticalTokenization(xml, no_ids);
    TokenStreamOptions unpooled;
    unpooled.pool_strings = false;
    ExpectIdenticalTokenization(xml, unpooled);
  }
}

// ---------------------------------------------------------------------------
// Malformed corpus: the error string (line:column and message) must be
// byte-identical to the seed parser's.

const char* kMalformed[] = {
    "<a>",
    "<a><b></a>",
    "</a>",
    "<a></a><b/>",
    "<a></a>junk",
    "text before <a/>",
    "<a x></a>",
    "<a x=></a>",
    "<a x=\"1></a>",
    "<a x=\"a<b\"/>",
    "<a x='1' x='2'/>",
    "<a xmlns:p='u' xmlns:q='u' p:x='1' q:x='2'/>",
    "<p:a/>",
    "<a p:x='1'/>",
    "<a>&unknown;</a>",
    "<a>&amp</a>",
    "<a>&#xZZ;</a>",
    "<a>&#0;</a>",
    "<a>&#1114112;</a>",
    "<a x=\"&bad;\"/>",
    "<a x=\"&#xQ;\"/>",
    "<a><!-- unterminated </a>",
    "<a><![CDATA[unterminated</a>",
    "<![CDATA[x]]>",
    "<a><?pi unterminated</a>",
    "<?xml version=\"1.0\"",
    "<!DOCTYPE a [ <a/>",
    "<a>\n<b></c>",
    "<a>\r\n\r\n<b></c></b></a>",
    "line1\n<a/>",
    "<a>\n  <b x=\"1\"\n     y=></b></a>",
    "<",
    "<a",
    "<a ",
    "<a x",
    "<!bad><a/>",
    "<a><5/></a>",
};

TEST(IngestDifferential, MalformedErrorsIdentical) {
  for (const char* xml : kMalformed) {
    ExpectIdenticalEvents(xml);
    ExpectIdenticalParses(xml);
    ExpectIdenticalTokenization(xml);
  }
}

TEST(IngestDifferential, DepthCeilingIdentical) {
  std::string deep;
  for (int i = 0; i < 40; ++i) deep += "<d>";
  deep += "x";  // Never closed; depth error fires first.
  ParseOptions options;
  options.max_parse_depth = 16;
  ExpectIdenticalEvents(deep, options);
  ExpectIdenticalParses(deep, options);
}

// ---------------------------------------------------------------------------
// XMark corpus (the scales the acceptance criteria pin).

void RunXMarkScale(double scale) {
  XMarkOptions gen;
  gen.scale = scale;
  std::string xml = GenerateXMarkXml(gen);
  ExpectIdenticalEvents(xml);
  ExpectIdenticalParses(xml);
  ExpectIdenticalTokenization(xml);
  ParseOptions strip;
  strip.strip_whitespace = true;
  ExpectIdenticalParses(xml, strip);
  ParseOptions unpooled;
  unpooled.pool_strings = false;
  ExpectIdenticalParses(xml, unpooled);
}

TEST(IngestDifferential, XMarkScale20) { RunXMarkScale(0.02); }

TEST(IngestDifferential, XMarkScale200) { RunXMarkScale(0.2); }

TEST(IngestDifferential, RandomDocuments) {
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    std::string xml = testing_util::RandomXml(seed);
    ExpectIdenticalEvents(xml);
    ExpectIdenticalParses(xml);
    ExpectIdenticalTokenization(xml);
  }
}

// ---------------------------------------------------------------------------
// Zero-copy safety: documents must own their bytes — nothing may alias the
// input buffer after parsing completes.

TEST(Ingest, DocumentOwnsItsStrings) {
  auto xml = std::make_unique<std::string>(
      "<a attr=\"value\"><b>text one</b><b>text&amp;two</b></a>");
  auto doc = Document::Parse(*xml).value();
  xml->assign(xml->size(), 'X');  // Scribble over the input buffer.
  xml.reset();
  EXPECT_EQ(doc->StringValue(doc->root_element()), "text onetext&two");
  NodeIndex attr = doc->node(doc->root_element()).first_attr;
  EXPECT_EQ(doc->value(attr), "value");
}

TEST(Ingest, EventViewsValidUntilNextAdvance) {
  // The zero-copy contract: an event's views must stay valid until the
  // next Next() call, including decoded-entity attribute values.
  std::string xml = "<a one=\"1&amp;1\" two=\"plain\">body&gt;tail</a>";
  XmlPullParser parser(xml);
  std::string one, two, text;
  while (true) {
    const XmlEvent* e = parser.Next().value();
    if (e == nullptr) break;
    if (e->type == XmlEventType::kStartElement) {
      one = std::string(e->attributes[0].value);
      two = std::string(e->attributes[1].value);
    } else if (e->type == XmlEventType::kText) {
      text = std::string(e->text);
    }
  }
  EXPECT_EQ(one, "1&1");
  EXPECT_EQ(two, "plain");
  EXPECT_EQ(text, "body>tail");
}

// ---------------------------------------------------------------------------
// Parallel bulk load.

TEST(BulkLoad, MatchesSerialParses) {
  std::vector<std::string> xmls;
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    xmls.push_back(testing_util::RandomXml(seed));
  }
  XQueryEngine engine;
  std::vector<XQueryEngine::BulkDocument> batch;
  for (size_t i = 0; i < xmls.size(); ++i) {
    batch.push_back({"doc" + std::to_string(i) + ".xml", xmls[i]});
  }
  auto results = engine.LoadDocumentsParallel(batch);
  ASSERT_EQ(results.size(), batch.size());
  for (size_t i = 0; i < results.size(); ++i) {
    XQP_ASSERT_OK(results[i].status());
    auto serial = reference::ParseDocument(xmls[i]).value();
    ExpectIdenticalDocuments(*results[i].value(), *serial);
    // And the registration is visible to fn:doc.
    auto via_engine = engine.GetDocument(batch[i].uri);
    XQP_ASSERT_OK(via_engine.status());
    EXPECT_EQ(via_engine.value().get(), results[i].value().get());
    EXPECT_EQ(via_engine.value()->base_uri(), batch[i].uri);
  }
}

TEST(BulkLoad, PositionalErrorsLeaveOthersLoaded) {
  XQueryEngine engine;
  std::string good1 = "<a>one</a>";
  std::string bad = "<a><b></a>";
  std::string good2 = "<c/>";
  std::vector<XQueryEngine::BulkDocument> batch = {
      {"g1.xml", good1}, {"bad.xml", bad}, {"g2.xml", good2}};
  auto results = engine.LoadDocumentsParallel(batch);
  ASSERT_EQ(results.size(), 3u);
  XQP_ASSERT_OK(results[0].status());
  ASSERT_FALSE(results[1].ok());
  // The parse error is byte-identical to the serial path's.
  EXPECT_EQ(results[1].status().ToString(),
            Document::Parse(bad).status().ToString());
  XQP_ASSERT_OK(results[2].status());
  XQP_ASSERT_OK(engine.GetDocument("g1.xml").status());
  EXPECT_FALSE(engine.GetDocument("bad.xml").ok());
  XQP_ASSERT_OK(engine.GetDocument("g2.xml").status());
}

TEST(BulkLoad, QueriesSeeBulkLoadedDocuments) {
  XQueryEngine engine;
  std::string xml = "<bib><book year=\"1998\"><t>A</t></book>"
                    "<book year=\"2001\"><t>B</t></book></bib>";
  std::vector<XQueryEngine::BulkDocument> batch = {{"bib.xml", xml}};
  auto results = engine.LoadDocumentsParallel(batch);
  XQP_ASSERT_OK(results[0].status());
  auto seq = engine.Execute("count(doc('bib.xml')//book)");
  XQP_ASSERT_OK(seq.status());
  ASSERT_EQ(seq.value().size(), 1u);
}

TEST(BulkLoad, SubmitFaultDegradesInline) {
  // "pool.submit" failures degrade to inline execution: the batch still
  // completes and every document loads.
  XQueryEngine engine;
  std::vector<std::string> xmls;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    xmls.push_back(testing_util::RandomXml(seed, 60));
  }
  std::vector<XQueryEngine::BulkDocument> batch;
  for (size_t i = 0; i < xmls.size(); ++i) {
    batch.push_back({"f" + std::to_string(i) + ".xml", xmls[i]});
  }
  fault::ScopedFault fault("pool.submit", 1);
  auto results = engine.LoadDocumentsParallel(batch);
  for (size_t i = 0; i < results.size(); ++i) {
    XQP_ASSERT_OK(results[i].status());
  }
}

TEST(BulkLoad, ParseFaultFailsExactlyOneDocument) {
  // The "parse.next" fault fires exactly once, so exactly one positional
  // result carries the injected status; the rest parse normally.
  XQueryEngine engine;
  std::vector<std::string> xmls;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    xmls.push_back(testing_util::RandomXml(seed, 60));
  }
  std::vector<XQueryEngine::BulkDocument> batch;
  for (size_t i = 0; i < xmls.size(); ++i) {
    batch.push_back({"p" + std::to_string(i) + ".xml", xmls[i]});
  }
  fault::ScopedFault fault("parse.next", 3, StatusCode::kIoError);
  auto results = engine.LoadDocumentsParallel(batch);
  size_t failed = 0;
  for (const auto& r : results) {
    if (!r.ok()) {
      ++failed;
      EXPECT_EQ(r.status().code(), StatusCode::kIoError);
    }
  }
  EXPECT_EQ(failed, 1u);
}

// ---------------------------------------------------------------------------
// Observability: ingest counters land in the global registry.

TEST(IngestMetrics, CountersAdvance) {
  auto& registry = metrics::MetricsRegistry::Global();
  bool was_enabled = metrics::Enabled();
  registry.set_enabled(true);
  uint64_t bytes_before = registry.counter("parse.bytes")->Value();
  uint64_t events_before = registry.counter("parse.events")->Value();
  uint64_t docs_before = registry.counter("ingest.docs")->Value();
  uint64_t batches_before =
      registry.counter("ingest.parallel_batches")->Value();

  std::string xml = "<a><b>x</b><b>y</b></a>";
  XQP_ASSERT_OK(Document::Parse(xml).status());
  XQueryEngine engine;
  std::vector<XQueryEngine::BulkDocument> batch = {{"m.xml", xml}};
  auto results = engine.LoadDocumentsParallel(batch);
  XQP_ASSERT_OK(results[0].status());

  EXPECT_GE(registry.counter("parse.bytes")->Value(),
            bytes_before + 2 * xml.size());
  // <a>, two <b>, two texts, plus start/end document and end elements.
  EXPECT_GT(registry.counter("parse.events")->Value(), events_before);
  EXPECT_EQ(registry.counter("ingest.docs")->Value(), docs_before + 1);
  EXPECT_EQ(registry.counter("ingest.parallel_batches")->Value(),
            batches_before + 1);
  registry.set_enabled(was_enabled);
}

}  // namespace
}  // namespace xqp
