#include "engine.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace xqp {
namespace {

TEST(Engine, RegisterAndQueryDocument) {
  XQueryEngine engine;
  XQP_ASSERT_OK(engine.ParseAndRegister("a.xml", "<a><b/></a>").status());
  XQP_ASSERT_OK_AND_ASSIGN(Sequence r, engine.Execute("count(doc('a.xml')//b)"));
  EXPECT_EQ(r[0].AsAtomic().AsInt(), 1);
}

TEST(Engine, MissingDocumentIsDynamicError) {
  XQueryEngine engine;
  auto r = engine.Execute("doc('nope.xml')");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDynamicError);
}

TEST(Engine, CompileErrorsSurfaceAsStaticErrors) {
  XQueryEngine engine;
  auto r = engine.Compile("for $x in");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kStaticError);
}

TEST(Engine, ExternalVariables) {
  XQueryEngine engine;
  XQP_ASSERT_OK_AND_ASSIGN(
      auto q, engine.Compile("declare variable $n external; $n * 2"));
  CompiledQuery::ExecOptions options;
  options.variables["n"] = Sequence{Item(AtomicValue::Integer(21))};
  XQP_ASSERT_OK_AND_ASSIGN(Sequence r, q->Execute(options));
  EXPECT_EQ(r[0].AsAtomic().AsInt(), 42);
  // Unbound external is a dynamic error.
  EXPECT_FALSE(q->Execute().ok());
}

TEST(Engine, ContextItem) {
  XQueryEngine engine;
  XQP_ASSERT_OK_AND_ASSIGN(auto doc,
                           engine.ParseAndRegister("d.xml", "<r><x/></r>"));
  XQP_ASSERT_OK_AND_ASSIGN(auto q, engine.Compile("count(//x)"));
  CompiledQuery::ExecOptions options;
  options.has_context_item = true;
  options.context_item = Item(Node(doc, 0));
  XQP_ASSERT_OK_AND_ASSIGN(Sequence r, q->Execute(options));
  EXPECT_EQ(r[0].AsAtomic().AsInt(), 1);
  // Without a context item, '//' has nothing to anchor on.
  EXPECT_FALSE(q->Execute().ok());
}

TEST(Engine, CompiledQueryIsReusable) {
  XQueryEngine engine;
  XQP_ASSERT_OK(engine.ParseAndRegister("d.xml", "<r><x/><x/></r>").status());
  XQP_ASSERT_OK_AND_ASSIGN(auto q, engine.Compile("count(doc('d.xml')//x)"));
  for (int i = 0; i < 3; ++i) {
    XQP_ASSERT_OK_AND_ASSIGN(Sequence r, q->Execute());
    EXPECT_EQ(r[0].AsAtomic().AsInt(), 2);
  }
}

TEST(Engine, ExplainShowsOptimizedPlan) {
  XQueryEngine engine;
  XQP_ASSERT_OK_AND_ASSIGN(auto q, engine.Compile("1 + 2"));
  EXPECT_EQ(q->Explain(), "3");
  XQueryEngine::CompileOptions raw;
  raw.optimize = false;
  XQP_ASSERT_OK_AND_ASSIGN(auto q2, engine.Compile("1 + 2", raw));
  EXPECT_EQ(q2->Explain(), "(+ 1 2)");
}

TEST(Engine, RewriteStatsExposed) {
  XQueryEngine engine;
  XQP_ASSERT_OK_AND_ASSIGN(auto q,
                           engine.Compile("let $x := 1 return $x + 1"));
  EXPECT_FALSE(q->rewrite_stats().empty());
}

TEST(Engine, SerializeSequenceMixesNodesAndAtomics) {
  XQueryEngine engine;
  XQP_ASSERT_OK_AND_ASSIGN(auto q, engine.Compile("(1, 2, <a/>, 'x')"));
  XQP_ASSERT_OK_AND_ASSIGN(std::string xml, q->ExecuteToXml());
  EXPECT_EQ(xml, "1 2<a/>x");
}

TEST(Engine, DocumentsVisibleAcrossQueries) {
  XQueryEngine engine;
  XQP_ASSERT_OK(engine.ParseAndRegister("x.xml", "<x/>").status());
  XQP_ASSERT_OK(engine.ParseAndRegister("y.xml", "<y/>").status());
  XQP_ASSERT_OK_AND_ASSIGN(
      Sequence r,
      engine.Execute("count((doc('x.xml')/x, doc('y.xml')/y))"));
  EXPECT_EQ(r[0].AsAtomic().AsInt(), 2);
}

TEST(Engine, NullDocumentRejected) {
  XQueryEngine engine;
  EXPECT_FALSE(engine.RegisterDocument("z.xml", nullptr).ok());
}

TEST(Engine, ResultStreamPullsIncrementally) {
  XQueryEngine engine;
  XQP_ASSERT_OK(engine.ParseAndRegister("d.xml", "<r><x>1</x><x>2</x><x>3</x></r>").status());
  XQP_ASSERT_OK_AND_ASSIGN(auto q,
                           engine.Compile("doc('d.xml')//x/string()"));
  XQP_ASSERT_OK_AND_ASSIGN(auto stream, q->Open());
  Item item;
  XQP_ASSERT_OK_AND_ASSIGN(bool got, stream->Next(&item));
  ASSERT_TRUE(got);
  EXPECT_EQ(item.AsAtomic().Lexical(), "1");
  // Remaining items drain to text.
  XQP_ASSERT_OK_AND_ASSIGN(std::string rest, stream->DrainToXml());
  EXPECT_EQ(rest, "2 3");
}

TEST(Engine, ResultStreamOnHugeSequenceIsLazy) {
  XQueryEngine engine;
  XQP_ASSERT_OK_AND_ASSIGN(auto q, engine.Compile("1 to 100000000"));
  XQP_ASSERT_OK_AND_ASSIGN(auto stream, q->Open());
  Item item;
  for (int i = 1; i <= 3; ++i) {
    XQP_ASSERT_OK_AND_ASSIGN(bool got, stream->Next(&item));
    ASSERT_TRUE(got);
    EXPECT_EQ(item.AsAtomic().AsInt(), i);
  }
}

TEST(Engine, TwigJoinExecutionMatchesEngine) {
  XQueryEngine engine;
  XQP_ASSERT_OK(engine
                    .ParseAndRegister("d.xml",
                                      "<r><a><b/><c/></a><a><b/></a>"
                                      "<a><c/></a></r>")
                    .status());
  XQP_ASSERT_OK_AND_ASSIGN(auto q, engine.Compile("doc('d.xml')//a[b]/c"));
  ASSERT_TRUE(q->IsTwigConvertible());
  XQP_ASSERT_OK_AND_ASSIGN(Sequence via_engine, q->Execute());
  XQP_ASSERT_OK_AND_ASSIGN(Sequence via_twig, q->ExecuteViaTwigJoin());
  EXPECT_TRUE(SequencesIdentical(via_engine, via_twig));
  EXPECT_EQ(via_twig.size(), 1u);
}

TEST(Engine, TwigJoinRejectsNonPath) {
  XQueryEngine engine;
  XQP_ASSERT_OK_AND_ASSIGN(auto q, engine.Compile("1 + 1"));
  EXPECT_FALSE(q->IsTwigConvertible());
  EXPECT_FALSE(q->ExecuteViaTwigJoin().ok());
}

TEST(Engine, TagIndexCachedPerDocument) {
  XQueryEngine engine;
  XQP_ASSERT_OK(engine.ParseAndRegister("d.xml", "<r><a/></r>").status());
  XQP_ASSERT_OK_AND_ASSIGN(auto i1, engine.GetTagIndex("d.xml"));
  XQP_ASSERT_OK_AND_ASSIGN(auto i2, engine.GetTagIndex("d.xml"));
  EXPECT_EQ(i1.get(), i2.get());
  EXPECT_FALSE(engine.GetTagIndex("missing.xml").ok());
}

TEST(Engine, MemoizationCachesPureQueries) {
  XQueryEngine engine;
  XQP_ASSERT_OK(engine.ParseAndRegister("d.xml", "<r><x/><x/></r>").status());
  XQP_ASSERT_OK_AND_ASSIGN(Sequence r1,
                           engine.ExecuteCached("count(doc('d.xml')//x)"));
  XQP_ASSERT_OK_AND_ASSIGN(Sequence r2,
                           engine.ExecuteCached("count(doc('d.xml')//x)"));
  EXPECT_EQ(engine.cache_stats().misses, 1u);
  EXPECT_EQ(engine.cache_stats().hits, 1u);
  EXPECT_TRUE(SequencesIdentical(r1, r2));
}

TEST(Engine, MemoizationInvalidatedByRegistration) {
  XQueryEngine engine;
  XQP_ASSERT_OK(engine.ParseAndRegister("d.xml", "<r><x/></r>").status());
  XQP_ASSERT_OK_AND_ASSIGN(Sequence r1,
                           engine.ExecuteCached("count(doc('d.xml')//x)"));
  EXPECT_EQ(r1[0].AsAtomic().AsInt(), 1);
  // Re-register with different content: the cache must not serve stale data.
  XQP_ASSERT_OK(engine.ParseAndRegister("d.xml", "<r><x/><x/></r>").status());
  XQP_ASSERT_OK_AND_ASSIGN(Sequence r2,
                           engine.ExecuteCached("count(doc('d.xml')//x)"));
  EXPECT_EQ(r2[0].AsAtomic().AsInt(), 2);
  EXPECT_GE(engine.cache_stats().invalidations, 1u);
}

TEST(Engine, MemoizationSkipsNodeConstructors) {
  XQueryEngine engine;
  // Two runs must yield distinct node identities, so constructor queries
  // are never cached.
  XQP_ASSERT_OK_AND_ASSIGN(Sequence a, engine.ExecuteCached("<a/>"));
  XQP_ASSERT_OK_AND_ASSIGN(Sequence b, engine.ExecuteCached("<a/>"));
  EXPECT_FALSE(a[0].AsNode().SameNode(b[0].AsNode()));
  EXPECT_EQ(engine.cache_stats().hits, 0u);
  EXPECT_EQ(engine.cache_stats().uncacheable, 2u);
}

TEST(Engine, BaseUriRecorded) {
  XQueryEngine engine;
  XQP_ASSERT_OK_AND_ASSIGN(auto doc, engine.ParseAndRegister("u.xml", "<u/>"));
  EXPECT_EQ(doc->base_uri(), "u.xml");
}

}  // namespace
}  // namespace xqp
