// Bytecode VM backend: opcode-level semantics, the path opcodes
// (kNavStep/kIndexProbe/kAccessExec across axes, name tests, and forced
// access-path strategies), the bailout matrix (every uncompilable
// construct must fall back to the lazy engine with identical results),
// governor trips at loop back-edges, fault-injected compiles, metrics,
// the XQP_BACKEND knob, and concurrent execution of one shared Program
// (the tsan lane re-runs this binary under ThreadSanitizer).

#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "base/fault.h"
#include "engine.h"
#include "opt/access_path.h"
#include "tests/test_util.h"
#include "vm/bytecode.h"
#include "vm/compiler.h"

namespace xqp {
namespace {

using testing_util::RunQuery;

CompiledQuery::ExecOptions VmExec() {
  CompiledQuery::ExecOptions exec;
  exec.backend = ExecBackend::kVm;
  return exec;
}

/// Runs `query` on the lazy engine and the vm backend and asserts the
/// serialized results (or error statuses) are identical; returns the
/// common serialization.
std::string RunBoth(const std::string& query, const std::string& doc_xml = "") {
  XQueryEngine engine;
  if (!doc_xml.empty()) {
    auto doc = engine.ParseAndRegister("doc.xml", doc_xml);
    EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  }
  auto compiled = engine.Compile(query);
  EXPECT_TRUE(compiled.ok()) << query << ": " << compiled.status().ToString();
  if (!compiled.ok()) return "COMPILE-ERROR";
  auto lazy = compiled.value()->ExecuteToXml();
  auto vm = compiled.value()->ExecuteToXml(VmExec());
  EXPECT_EQ(lazy.ok(), vm.ok()) << query;
  if (!lazy.ok()) {
    EXPECT_EQ(vm.status().code(), lazy.status().code()) << query;
    EXPECT_EQ(vm.status().message(), lazy.status().message()) << query;
    return "ERROR: " + std::string(lazy.status().message());
  }
  EXPECT_EQ(vm.value(), lazy.value()) << query;
  return lazy.value();
}

// --- Opcode-level semantics ------------------------------------------------

TEST(VmOpcodes, LiteralsAndArithmetic) {
  // const_fold collapses pure-literal trees; mix in an external-free FLWOR
  // variable so the arithmetic actually executes as bytecode.
  EXPECT_EQ(RunBoth("for $i in (5) return $i + 2"), "7");
  EXPECT_EQ(RunBoth("for $i in (7) return $i - 10"), "-3");
  EXPECT_EQ(RunBoth("for $i in (6) return $i * 7"), "42");
  EXPECT_EQ(RunBoth("for $i in (7) return $i idiv 2"), "3");
  EXPECT_EQ(RunBoth("for $i in (7) return $i mod 3"), "1");
  EXPECT_EQ(RunBoth("for $i in (7.5) return $i + 0.25"), "7.75");
  EXPECT_EQ(RunBoth("for $i in (1) return $i div 4"), "0.25");
  EXPECT_EQ(RunBoth("for $i in (5) return -$i"), "-5");
  EXPECT_EQ(RunBoth("for $i in (()) return $i + 1"), "");
}

TEST(VmOpcodes, ArithmeticErrors) {
  EXPECT_EQ(RunBoth("for $i in (1) return $i idiv 0"),
            "ERROR: integer division by zero");
  EXPECT_EQ(RunBoth("for $i in (1) return $i mod 0"),
            "ERROR: modulus by zero");
  EXPECT_EQ(RunBoth("for $i in (9223372036854775807) return $i + 1"),
            "ERROR: err:FOAR0002: integer overflow in addition");
  EXPECT_EQ(RunBoth("for $i in (9223372036854775807) return $i * 2"),
            "ERROR: err:FOAR0002: integer overflow in multiplication");
  EXPECT_EQ(RunBoth("for $i in (-9223372036854775807) return ($i - 1) - 1"),
            "ERROR: err:FOAR0002: integer overflow in subtraction");
}

TEST(VmOpcodes, Comparisons) {
  EXPECT_EQ(RunBoth("for $i in (5) return $i eq 5"), "true");
  EXPECT_EQ(RunBoth("for $i in (5) return $i lt 5"), "false");
  EXPECT_EQ(RunBoth("for $i in (5) return $i le 5"), "true");
  EXPECT_EQ(RunBoth("for $i in (5) return $i ne 4"), "true");
  EXPECT_EQ(RunBoth("for $i in (()) return $i eq 5"), "");
  EXPECT_EQ(RunBoth("for $i in (3) return ($i, 9) = 9"), "true");
  EXPECT_EQ(RunBoth("for $i in (3) return ($i, 9) > 10"), "false");
  EXPECT_EQ(RunBoth("for $i in ('b') return $i > 'a'"), "true");
}

TEST(VmOpcodes, BooleanLogicAndIf) {
  EXPECT_EQ(RunBoth("for $i in (1) return $i = 1 and $i < 2"), "true");
  EXPECT_EQ(RunBoth("for $i in (1) return $i = 2 or $i = 1"), "true");
  EXPECT_EQ(RunBoth("for $i in (1) return if ($i > 0) then 'p' else 'n'"),
            "p");
  EXPECT_EQ(RunBoth("for $i in (-1) return if ($i > 0) then 'p' else 'n'"),
            "n");
  // Short-circuit: the right operand would raise if evaluated.
  EXPECT_EQ(RunBoth("for $i in (0) return $i != 0 and (1 idiv $i) = 1"),
            "false");
}

TEST(VmOpcodes, RangeAndSequence) {
  EXPECT_EQ(RunBoth("for $i in (3) return (1 to $i, 10)"), "1 2 3 10");
  EXPECT_EQ(RunBoth("for $i in (3) return ($i to 1)"), "");
  EXPECT_EQ(RunBoth("for $i in (4) return count(1 to $i)"), "4");
  EXPECT_EQ(RunBoth("let $x := (1,2) return ($x to 3)"),
            "ERROR: range operands must be singletons");
}

TEST(VmOpcodes, FlworShapes) {
  EXPECT_EQ(RunBoth("for $i in 1 to 5 return $i * $i"), "1 4 9 16 25");
  EXPECT_EQ(RunBoth("for $i in 1 to 10 where ($i mod 3) = 0 return $i"),
            "3 6 9");
  EXPECT_EQ(RunBoth("for $i in 1 to 3, $j in 1 to $i return 10 * $i + $j"),
            "11 21 22 31 32 33");
  EXPECT_EQ(RunBoth("for $i at $p in ('a','b','c') return $p"), "1 2 3");
  EXPECT_EQ(RunBoth("for $i in 1 to 3 let $d := $i * 2 return $d"), "2 4 6");
  EXPECT_EQ(RunBoth("let $x := 5 let $y := $x + 1 return $x * $y"), "30");
  EXPECT_EQ(RunBoth("sum(for $i in 1 to 100 return $i)"), "5050");
}

TEST(VmOpcodes, Quantified) {
  EXPECT_EQ(RunBoth("every $x in 1 to 9 satisfies $x < 10"), "true");
  EXPECT_EQ(RunBoth("every $x in 1 to 9 satisfies $x < 5"), "false");
  EXPECT_EQ(RunBoth("some $x in 1 to 9 satisfies $x = 7"), "true");
  EXPECT_EQ(RunBoth("some $x in () satisfies $x = 1"), "false");
  EXPECT_EQ(RunBoth("every $x in () satisfies $x = 1"), "true");
  EXPECT_EQ(RunBoth("some $x in 1 to 3, $y in 1 to 3 satisfies $x + $y = 6"),
            "true");
}

TEST(VmOpcodes, BuiltinsAndContextItem) {
  EXPECT_EQ(RunBoth("for $s in ('hello') return string-length($s)"), "5");
  EXPECT_EQ(RunBoth("for $s in ('a') return concat($s, 'b', 'c')"), "abc");
  EXPECT_EQ(RunBoth("for $i in (2) return abs(-3 * $i)"), "6");
  // Context item without a binding is a dynamic error on both backends.
  EXPECT_EQ(RunBoth("for $i in (1) return $i + ."),
            "ERROR: context item is not defined");
}

TEST(VmOpcodes, ContextItemBound) {
  XQueryEngine engine;
  auto compiled = engine.Compile("for $i in (1) return $i + .");
  XQP_ASSERT_OK(compiled.status());
  CompiledQuery::ExecOptions exec = VmExec();
  exec.has_context_item = true;
  exec.context_item = Item(AtomicValue::Integer(41));
  XQP_ASSERT_OK_AND_ASSIGN(std::string got,
                           compiled.value()->ExecuteToXml(exec));
  EXPECT_EQ(got, "42");
}

TEST(VmOpcodes, ExternalVariablesUseGlobalSlots) {
  XQueryEngine engine;
  auto compiled = engine.Compile(
      "declare variable $n external; for $i in 1 to 3 return $i * $n");
  XQP_ASSERT_OK(compiled.status());
  CompiledQuery::ExecOptions exec = VmExec();
  exec.variables["n"] = Sequence{Item(AtomicValue::Integer(10))};
  XQP_ASSERT_OK_AND_ASSIGN(std::string got,
                           compiled.value()->ExecuteToXml(exec));
  EXPECT_EQ(got, "10 20 30");
}

// --- Bailout matrix --------------------------------------------------------

// Every construct outside the ISA must compile to a bailout thunk and run
// on the lazy engine with bit-identical results. Each query keeps a
// compilable shell (arithmetic / FLWOR / builtin call) around the
// uncompilable subtree so the program is not a trivial whole-plan bailout.
TEST(VmBailouts, UncompilableConstructsFallBackCleanly) {
  const std::string doc = "<r><a>1</a><a>2</a><b>3</b></r>";
  const char* queries[] = {
      // Filtered path chains (the ISA has no filter opcode) and filters
      // on non-path sequences. Bare doc()-anchored chains compile now —
      // they are covered by the VmPaths suite below.
      "1 + count(doc('doc.xml')//a[1])",
      "for $n in doc('doc.xml')//a[. = '2'][1] return 1",
      "count((1,2,3)[. > 1]) + 0",
      // Typeswitch / type operators.
      "(1, typeswitch (42) case xs:string return 's' default return 'd')",
      "(42 instance of xs:integer) and (1 = 1)",
      "(5 treat as xs:integer) + 1",
      "xs:integer('42') + 1",
      "('42' castable as xs:integer) or false()",
      // Set operations.
      "count(doc('doc.xml')//a union doc('doc.xml')//b) * 1",
      "count(doc('doc.xml')//* intersect doc('doc.xml')//a) * 1",
      // Try/catch.
      "(1, try { 1 idiv 0 } catch { 'saved' })",
      // Recursive user function (never inlined).
      "declare function local:fact($n as xs:integer) as xs:integer { "
      "if ($n le 1) then 1 else $n * local:fact($n - 1) }; "
      "local:fact(5) + 0",
  };
  for (const char* q : queries) {
    RunBoth(q, doc);
  }
}

TEST(VmBailouts, ExplainMarksThunksAndCompiledRoot) {
  XQueryEngine engine;
  XQP_ASSERT_OK(
      engine.ParseAndRegister("doc.xml", "<r><a/></r>").status());
  auto compiled =
      engine.Compile("1 + count(for $i in 1 to 2 return $i treat as item())");
  XQP_ASSERT_OK(compiled.status());
  std::string tree = compiled.value()->ExplainTree(VmExec());
  EXPECT_NE(tree.find(" [vm]"), std::string::npos) << tree;
  EXPECT_NE(tree.find(" [bailout: treat as]"), std::string::npos) << tree;
  // The default rendering is unannotated (golden stability).
  std::string plain = compiled.value()->ExplainTree();
  EXPECT_EQ(plain.find(" [vm]"), std::string::npos) << plain;

  // doc()-anchored chains, constructors, and order-by lower to their own
  // opcodes: the plan carries the [vm] root marker and no bailout
  // annotation anywhere.
  for (const char* q : {"doc('doc.xml')//a", "1 + count(doc('doc.xml')//a)",
                        "1 + count(for $i in 1 to 2 return <a/>)",
                        "for $x in (2,1) order by $x return <v>{$x}</v>"}) {
    auto path = engine.Compile(q);
    XQP_ASSERT_OK(path.status());
    std::string path_tree = path.value()->ExplainTree(VmExec());
    EXPECT_NE(path_tree.find(" [vm]"), std::string::npos) << path_tree;
    EXPECT_EQ(path_tree.find(" [bailout: "), std::string::npos) << path_tree;
  }
}

TEST(VmBailouts, ThunksSeeLoopVariables) {
  // The bailout thunk (a filter, which still has no opcode) references the
  // FLWOR binding, so the dual-store mirror must publish every iteration's
  // value to the lazy context.
  EXPECT_EQ(RunBoth("for $i in 1 to 3 return (10,20,30)[$i]"), "10 20 30");
  EXPECT_EQ(RunBoth("for $i at $p in ('a','b') return ('x','y','z')[$p]"),
            "x y");
  EXPECT_EQ(RunBoth("let $x := 2 return ((5,6,7)[$x], $x)"), "6 2");
}

// --- Path opcodes (kNavStep / kIndexProbe / kAccessExec) -------------------

/// Compiles `query`, runs it on the vm backend under Profile, asserts the
/// run retired ZERO bailouts (the chain lowered to path opcodes, not
/// thunks), and asserts the result is bit-identical to the lazy engine.
/// Returns the common serialization.
std::string RunCompiledPath(XQueryEngine& engine, const std::string& query) {
  auto compiled = engine.Compile(query);
  EXPECT_TRUE(compiled.ok()) << query << ": " << compiled.status().ToString();
  if (!compiled.ok()) return "COMPILE-ERROR";
  auto report = compiled.value()->Profile(VmExec());
  EXPECT_TRUE(report.ok()) << query << ": " << report.status().ToString();
  if (!report.ok()) return "RUN-ERROR";
  EXPECT_EQ(report.value().backend, ExecBackend::kVm) << query;
  EXPECT_EQ(report.value().engine_metrics.counters["vm.bailouts"], 0u)
      << query;
  std::string vm_xml = SerializeSequence(report.value().result).ValueOrDie();
  auto lazy = compiled.value()->ExecuteToXml();
  EXPECT_TRUE(lazy.ok()) << query << ": " << lazy.status().ToString();
  if (lazy.ok()) {
    EXPECT_EQ(vm_xml, lazy.value()) << query;
  }
  return vm_xml;
}

constexpr char kPathDoc[] =
    "<r><a id='1'><b>x</b><b>y</b></a>"
    "<a id='2'><c>z</c></a><b>top</b></r>";

TEST(VmPaths, AxisAndNameTestMatrix) {
  XQueryEngine engine;
  XQP_ASSERT_OK(engine.ParseAndRegister("doc.xml", kPathDoc).status());
  // Forward axes with name tests, wildcards, and kind tests; reverse
  // axes (needs_sort paths); attribute steps. Every query must lower to
  // kNavStep / probe opcodes — zero bailouts — and match lazy exactly.
  EXPECT_EQ(RunCompiledPath(engine, "doc('doc.xml')/r/a"),
            "<a id=\"1\"><b>x</b><b>y</b></a><a id=\"2\"><c>z</c></a>");
  EXPECT_EQ(RunCompiledPath(engine, "count(doc('doc.xml')/r/*)"), "3");
  EXPECT_EQ(RunCompiledPath(engine, "count(doc('doc.xml')//b)"), "3");
  EXPECT_EQ(RunCompiledPath(engine, "string-join(doc('doc.xml')//text(), '')"),
            "xyztop");
  EXPECT_EQ(RunCompiledPath(engine, "count(doc('doc.xml')/r/node())"), "3");
  EXPECT_EQ(RunCompiledPath(engine, "doc('doc.xml')//a/@id"),
            "id=\"1\"id=\"2\"");
  EXPECT_EQ(RunCompiledPath(engine, "count(doc('doc.xml')//b/parent::a)"),
            "1");
  EXPECT_EQ(RunCompiledPath(engine,
                            "count(doc('doc.xml')//c/ancestor-or-self::*)"),
            "3");
  EXPECT_EQ(RunCompiledPath(engine, "count(doc('doc.xml')//b/self::b)"), "3");
  EXPECT_EQ(RunCompiledPath(
                engine, "count(doc('doc.xml')//b/following-sibling::*)"),
            "1");
  EXPECT_EQ(RunCompiledPath(
                engine, "count(doc('doc.xml')//b/preceding-sibling::*)"),
            "3");
  EXPECT_EQ(RunCompiledPath(engine, "count(doc('doc.xml')//c/following::*)"),
            "1");
  EXPECT_EQ(RunCompiledPath(engine, "count(doc('doc.xml')//c/preceding::*)"),
            "3");
  EXPECT_EQ(RunCompiledPath(engine, "doc('doc.xml')//b/ancestor::r/b"),
            "<b>top</b>");
}

TEST(VmPaths, ForcedStrategiesAreBitIdentical) {
  // Every access-path force must execute through the vm's probe/exec
  // opcodes with zero bailouts and stay bit-identical to lazy.
  for (AccessPath force : {AccessPath::kAuto, AccessPath::kNav,
                           AccessPath::kSJoin, AccessPath::kTwig,
                           AccessPath::kIndex}) {
    SCOPED_TRACE(AccessPathName(force));
    EngineOptions options;
    options.force_access_path = force;
    XQueryEngine engine(options);
    XQP_ASSERT_OK(engine.ParseAndRegister("doc.xml", kPathDoc).status());
    EXPECT_EQ(RunCompiledPath(engine, "count(doc('doc.xml')/r/a/b)"), "2");
    EXPECT_EQ(RunCompiledPath(engine, "string(doc('doc.xml')//a/c)"), "z");
    EXPECT_EQ(RunCompiledPath(engine, "doc('doc.xml')/r/b"), "<b>top</b>");
  }
}

TEST(VmPaths, PredicateChainCompilesToIndexProbe) {
  XQueryEngine engine;
  XQP_ASSERT_OK(engine.ParseAndRegister("doc.xml", kPathDoc).status());
  // A value-predicate chain lowers to kIndexProbe with the navigation
  // twin behind it; either edge must produce the lazy result.
  EXPECT_EQ(RunCompiledPath(engine, "doc('doc.xml')/r/a[@id = '2']"),
            "<a id=\"2\"><c>z</c></a>");
  EXPECT_EQ(RunCompiledPath(engine, "count(doc('doc.xml')/r/a[b = 'y'])"),
            "1");

  // Compiler shape: the predicate chain's program carries a probe opcode.
  auto compiled = engine.Compile("doc('doc.xml')/r/a[@id = '2']");
  XQP_ASSERT_OK(compiled.status());
  XQP_ASSERT_OK_AND_ASSIGN(std::shared_ptr<const vm::Program> program,
                           vm::CompileProgram(compiled.value()->module()));
  bool has_probe = false;
  for (const vm::Insn& insn : program->code) {
    if (insn.op == vm::Op::kIndexProbe || insn.op == vm::Op::kAccessExec) {
      has_probe = true;
    }
  }
  EXPECT_TRUE(has_probe);
  EXPECT_FALSE(program->trivial_bailout);
}

TEST(VmPaths, FilteredChainStillCompiles) {
  // Positional filters have no dedicated opcode, but a marked chain's
  // probe dispatches into the access-path executor — the same call the
  // lazy IndexPathIt makes — which answers filtered chains via its
  // navigation strategy. Zero bailouts, identical results.
  XQueryEngine engine;
  XQP_ASSERT_OK(engine.ParseAndRegister("doc.xml", kPathDoc).status());
  EXPECT_EQ(RunCompiledPath(engine, "doc('doc.xml')//a[1]/b"),
            "<b>x</b><b>y</b>");
}

TEST(VmPaths, UnplannableChainFallsBackWithParity) {
  // A step combinator the ISA has no opcode for (a union rhs) keeps the
  // whole chain on the lazy engine as a thunk: bailouts retire under the
  // per-reason "path" counter and the result stays identical.
  XQueryEngine engine;
  XQP_ASSERT_OK(engine.ParseAndRegister("doc.xml", kPathDoc).status());
  auto compiled = engine.Compile("count(doc('doc.xml')//a/(b | c))");
  XQP_ASSERT_OK(compiled.status());
  XQP_ASSERT_OK_AND_ASSIGN(ProfileReport report,
                           compiled.value()->Profile(VmExec()));
  EXPECT_GE(report.engine_metrics.counters["vm.bailouts"], 1u);
  EXPECT_GE(report.engine_metrics.counters["vm.bailout.path"], 1u);
  EXPECT_EQ(SerializeSequence(report.result).ValueOrDie(), "3");
  XQP_ASSERT_OK_AND_ASSIGN(std::string lazy,
                           compiled.value()->ExecuteToXml());
  EXPECT_EQ(lazy, "3");
}

TEST(VmPaths, ResultCapParity) {
  XQueryEngine engine;
  XQP_ASSERT_OK(engine.ParseAndRegister("doc.xml", kPathDoc).status());
  auto compiled = engine.Compile("doc('doc.xml')//b");
  XQP_ASSERT_OK(compiled.status());
  CompiledQuery::ExecOptions vm = VmExec();
  vm.limits.max_result_items = 1;
  CompiledQuery::ExecOptions lazy;
  lazy.limits.max_result_items = 1;
  auto vm_r = compiled.value()->Execute(vm);
  auto lazy_r = compiled.value()->Execute(lazy);
  ASSERT_FALSE(vm_r.ok());
  ASSERT_FALSE(lazy_r.ok());
  EXPECT_EQ(vm_r.status().code(), lazy_r.status().code());
  EXPECT_EQ(vm_r.status().code(), StatusCode::kResourceExhausted);
}

TEST(VmPaths, IndexBuildFaultMatchesLazy) {
  // An allocation fault inside the index build triggered by the probe
  // opcode must surface the same status on both backends. Fresh engine
  // per run: the build is what hits the fault site.
  auto run = [](CompiledQuery::ExecOptions exec) {
    EngineOptions options;
    options.force_access_path = AccessPath::kIndex;
    XQueryEngine engine(options);
    auto doc = engine.ParseAndRegister("doc.xml", kPathDoc);
    EXPECT_TRUE(doc.ok()) << doc.status().ToString();
    auto compiled = engine.Compile("doc('doc.xml')/r/a/b");
    EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
    fault::ScopedFault fault("alloc", 1);
    return compiled.value()->Execute(exec);
  };
  auto lazy_r = run(CompiledQuery::ExecOptions());
  auto vm_r = run(VmExec());
  ASSERT_FALSE(lazy_r.ok());
  ASSERT_FALSE(vm_r.ok());
  EXPECT_EQ(vm_r.status().code(), lazy_r.status().code());
  EXPECT_EQ(vm_r.status().message(), lazy_r.status().message());
}

// --- Construct & order-by opcodes ------------------------------------------

TEST(VmConstruct, DirectConstructorsCompileWithZeroBailouts) {
  XQueryEngine engine;
  XQP_ASSERT_OK(engine.ParseAndRegister("doc.xml", kPathDoc).status());
  EXPECT_EQ(RunCompiledPath(engine,
                            "for $i in 1 to 2 return <v n=\"{$i}\">{$i * 10}"
                            "</v>"),
            "<v n=\"1\">10</v><v n=\"2\">20</v>");
  // Nested constructors and constructor content pulling from a compiled
  // path chain (adjacent atomics join with spaces; nodes deep-copy).
  EXPECT_EQ(RunCompiledPath(engine,
                            "<r c=\"{count(doc('doc.xml')//b)}\">{"
                            "for $i in 1 to 2 return <x>{$i, $i * 2}</x>"
                            "}</r>"),
            "<r c=\"3\"><x>1 2</x><x>2 4</x></r>");
  EXPECT_EQ(RunCompiledPath(engine,
                            "<ns xmlns:p=\"urn:x\"><p:q/></ns>"),
            "<ns xmlns:p=\"urn:x\"><p:q/></ns>");
  EXPECT_EQ(RunCompiledPath(engine, "<out>{doc('doc.xml')//c}</out>"),
            "<out><c>z</c></out>");
}

TEST(VmConstruct, ComputedConstructorsCompileWithZeroBailouts) {
  XQueryEngine engine;
  EXPECT_EQ(RunCompiledPath(engine,
                            "for $i in (1) return element {concat('e', $i)} "
                            "{attribute {concat('a', $i)} {$i}, 'body'}"),
            "<e1 a1=\"1\">body</e1>");
  EXPECT_EQ(RunCompiledPath(engine,
                            "for $i in (1) return (text {concat('t', $i)}, "
                            "comment {'c'}, processing-instruction tgt "
                            "{'pi'})"),
            "t1<!--c--><?tgt pi?>");
  EXPECT_EQ(RunCompiledPath(engine,
                            "count(document {<a/>, <b/>}/*)"),
            "2");
}

TEST(VmConstruct, ConstructorErrorStringsMatchLazy) {
  // The shared construct:: path means the error strings are the lazy
  // engine's own; RunBoth asserts code and message equality.
  EXPECT_EQ(RunBoth("for $i in (1) return element {'1bad'} {$i}"),
            "ERROR: invalid computed name: 1bad");
  EXPECT_EQ(RunBoth("for $i in (1,2) return element {('a','b')} {$i}"),
            "ERROR: computed constructor name must be a single item");
  EXPECT_EQ(RunBoth("for $i in (1) return comment {'a--b'}"),
            "ERROR: comment content may not contain \"--\"");
  EXPECT_EQ(RunBoth(
                "for $i in (1) return <v>{attribute a {$i}, 'x'}</v>",
                "<r/>"),
            "<v a=\"1\">x</v>");
  EXPECT_EQ(RunBoth("for $i in (1) return <v>{'x', attribute a {$i}}</v>"),
            "ERROR: attribute \"a\" constructed after non-attribute content "
            "of element");
}

TEST(VmConstruct, MemoryBudgetTripsIdentically) {
  // DocumentBuilder::ChargeNode runs under the same thread-local governor
  // in every backend, so a budget that dies mid-construction dies with the
  // same status on both.
  XQueryEngine engine;
  auto compiled = engine.Compile(
      "count(for $i in 1 to 100000 return <v a=\"{$i}\">{$i}</v>)");
  XQP_ASSERT_OK(compiled.status());
  CompiledQuery::ExecOptions vm = VmExec();
  vm.limits.memory_budget_bytes = 64 * 1024;
  CompiledQuery::ExecOptions lazy;
  lazy.limits.memory_budget_bytes = 64 * 1024;
  auto vm_r = compiled.value()->Execute(vm);
  auto lazy_r = compiled.value()->Execute(lazy);
  ASSERT_FALSE(vm_r.ok());
  ASSERT_FALSE(lazy_r.ok());
  EXPECT_EQ(vm_r.status().code(), lazy_r.status().code());
  EXPECT_EQ(vm_r.status().code(), StatusCode::kResourceExhausted);
}

TEST(VmOrderBy, SingleAndMultiKeySortsCompile) {
  XQueryEngine engine;
  EXPECT_EQ(RunCompiledPath(engine,
                            "for $x in (3,1,2) order by $x return $x"),
            "1 2 3");
  EXPECT_EQ(RunCompiledPath(
                engine, "for $x in (3,1,2) order by $x descending return $x"),
            "3 2 1");
  // Multi-key: primary descending, secondary ascending breaks ties; the
  // sort is stable for fully-equal keys.
  EXPECT_EQ(RunCompiledPath(engine,
                            "for $x in (1,2,3,4,5,6) order by $x mod 2 "
                            "descending, $x idiv 3 return $x"),
            "1 3 5 2 4 6");
  // Nested order-by FLWORs stack sort buffers.
  EXPECT_EQ(RunCompiledPath(engine,
                            "for $a in (2,1) order by $a return "
                            "(for $b in (20,10) order by $b return $a + $b)"),
            "11 21 12 22");
  // Where gates run at clause position; filtered tuples never buffer.
  EXPECT_EQ(RunCompiledPath(engine,
                            "for $x in (5,3,4,1,2) where $x mod 2 = 1 "
                            "order by $x descending return $x"),
            "5 3 1");
}

TEST(VmOrderBy, EmptyAndUntypedKeyRules) {
  XQueryEngine engine;
  // empty least (default) vs. empty greatest.
  EXPECT_EQ(RunCompiledPath(engine,
                            "for $x in (2, 0, 1) order by "
                            "(if ($x = 0) then () else $x) return $x"),
            "0 1 2");
  EXPECT_EQ(RunCompiledPath(engine,
                            "for $x in (2, 0, 1) order by "
                            "(if ($x = 0) then () else $x) empty greatest "
                            "return $x"),
            "1 2 0");
  EXPECT_EQ(RunCompiledPath(engine,
                            "for $x in (2, 0, 1) order by "
                            "(if ($x = 0) then () else $x) descending "
                            "empty least return $x"),
            "2 1 0");
  // Untyped node keys cast to xs:string: "10" < "2" < "9".
  XQP_ASSERT_OK(engine
                    .ParseAndRegister("nums.xml",
                                      "<r><n>9</n><n>10</n><n>2</n></r>")
                    .status());
  EXPECT_EQ(RunCompiledPath(engine,
                            "for $n in doc('nums.xml')//n order by "
                            "string($n) return string($n)"),
            "10 2 9");
  // number() keys compare numerically instead.
  EXPECT_EQ(RunCompiledPath(engine,
                            "for $n in doc('nums.xml')//n order by "
                            "number($n) return string($n)"),
            "2 9 10");
}

TEST(VmOrderBy, KeyErrorsMatchLazy) {
  EXPECT_EQ(RunBoth("for $x in (1,2) order by ($x, $x) return $x"),
            "ERROR: order-by key must be () or a single item");
  // Incomparable key types across tuples surface the comparator's error
  // after the sort finishes — the interpreter's historical behavior.
  EXPECT_EQ(RunBoth("for $x in (1, 'a') order by $x return $x"),
            RunBoth("for $x in (1, 'a') order by $x return $x"));
  // Order-by under a cancelled governor trips at the sort-add poll.
  XQueryEngine engine;
  auto compiled = engine.Compile(
      "for $i in 1 to 100000000 order by -$i return $i");
  XQP_ASSERT_OK(compiled.status());
  CompiledQuery::ExecOptions exec = VmExec();
  exec.limits.cancel = std::make_shared<CancelToken>();
  exec.limits.cancel->Cancel();
  auto result = compiled.value()->Execute(exec);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

TEST(VmRootStep, RootAnchoredPathsCompile) {
  XQueryEngine engine;
  XQP_ASSERT_OK(engine.ParseAndRegister("doc.xml", kPathDoc).status());
  // A '/'-anchored relative path compiles through kPushRoot + kNavStep
  // when a context item is bound.
  auto compiled = engine.Compile("count(/r/a/b)");
  XQP_ASSERT_OK(compiled.status());
  XQP_ASSERT_OK_AND_ASSIGN(std::shared_ptr<const vm::Program> program,
                           vm::CompileProgram(compiled.value()->module()));
  EXPECT_FALSE(program->trivial_bailout);
  bool has_root = false;
  for (const vm::Insn& insn : program->code) {
    if (insn.op == vm::Op::kPushRoot) has_root = true;
  }
  EXPECT_TRUE(has_root);

  XQP_ASSERT_OK_AND_ASSIGN(Sequence doc_seq,
                           engine.Compile("doc('doc.xml')//c")
                               .value()
                               ->Execute(CompiledQuery::ExecOptions()));
  ASSERT_EQ(doc_seq.size(), 1u);
  CompiledQuery::ExecOptions vm = VmExec();
  vm.has_context_item = true;
  vm.context_item = doc_seq[0];  // Any node: '/' rebases to its root.
  CompiledQuery::ExecOptions lazy;
  lazy.has_context_item = true;
  lazy.context_item = doc_seq[0];
  XQP_ASSERT_OK_AND_ASSIGN(std::string vm_xml,
                           compiled.value()->ExecuteToXml(vm));
  XQP_ASSERT_OK_AND_ASSIGN(std::string lazy_xml,
                           compiled.value()->ExecuteToXml(lazy));
  EXPECT_EQ(vm_xml, lazy_xml);
  EXPECT_EQ(vm_xml, "2");

  // Error strings match the interpreter's exactly.
  EXPECT_EQ(RunBoth("count(/r)"), "ERROR: context item is not defined");
  XQueryEngine engine2;
  auto rooted = engine2.Compile("count(/r)");
  XQP_ASSERT_OK(rooted.status());
  for (ExecBackend backend : {ExecBackend::kLazy, ExecBackend::kVm}) {
    CompiledQuery::ExecOptions exec;
    exec.backend = backend;
    exec.has_context_item = true;
    exec.context_item = Item(AtomicValue::Integer(1));
    auto result = rooted.value()->Execute(exec);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().message(),
              "leading '/' requires a node context item");
  }
}

// --- Governor --------------------------------------------------------------

TEST(VmGovernor, CancelTripsAtBackEdge) {
  XQueryEngine engine;
  auto compiled =
      engine.Compile("sum(for $i in 1 to 100000000 return $i mod 7)");
  XQP_ASSERT_OK(compiled.status());
  CompiledQuery::ExecOptions exec = VmExec();
  exec.limits.cancel = std::make_shared<CancelToken>();
  exec.limits.cancel->Cancel();
  auto result = compiled.value()->Execute(exec);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

TEST(VmGovernor, ResultCapMatchesLazy) {
  XQueryEngine engine;
  auto compiled = engine.Compile("for $i in 1 to 100 return $i");
  XQP_ASSERT_OK(compiled.status());
  CompiledQuery::ExecOptions vm = VmExec();
  vm.limits.max_result_items = 10;
  CompiledQuery::ExecOptions lazy;
  lazy.limits.max_result_items = 10;
  auto vm_r = compiled.value()->Execute(vm);
  auto lazy_r = compiled.value()->Execute(lazy);
  ASSERT_FALSE(vm_r.ok());
  ASSERT_FALSE(lazy_r.ok());
  EXPECT_EQ(vm_r.status().code(), lazy_r.status().code());
  EXPECT_EQ(vm_r.status().code(), StatusCode::kResourceExhausted);
}

TEST(VmGovernor, PoolBytesCharged) {
  XQueryEngine engine;
  auto compiled = engine.Compile("for $i in (1) return $i + 123456");
  XQP_ASSERT_OK(compiled.status());
  CompiledQuery::ExecOptions exec = VmExec();
  exec.limits.memory_budget_bytes = 1;  // Pool charge must trip it.
  auto result = compiled.value()->Execute(exec);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

// --- Fault injection -------------------------------------------------------

TEST(VmFault, CompileFaultFallsBackToLazy) {
  XQueryEngine engine;
  auto compiled = engine.Compile("sum(for $i in 1 to 50 return $i)");
  XQP_ASSERT_OK(compiled.status());
  {
    fault::ScopedFault f("vm.compile", 1);
    XQP_ASSERT_OK_AND_ASSIGN(std::string got,
                             compiled.value()->ExecuteToXml(VmExec()));
    EXPECT_EQ(got, "1275");
  }
  // The failed compile is cached: later runs keep falling back (and keep
  // producing correct results) without re-hitting the fault site.
  XQP_ASSERT_OK_AND_ASSIGN(std::string again,
                           compiled.value()->ExecuteToXml(VmExec()));
  EXPECT_EQ(again, "1275");
}

// --- Metrics ---------------------------------------------------------------

TEST(VmMetrics, CountersAdvance) {
  XQueryEngine engine;
  auto compiled =
      engine.Compile("sum(for $i in 1 to 10 where $i > 2 return $i * 2)");
  XQP_ASSERT_OK(compiled.status());
  CompiledQuery::ExecOptions exec = VmExec();
  XQP_ASSERT_OK_AND_ASSIGN(ProfileReport report,
                           compiled.value()->Profile(exec));
  EXPECT_EQ(report.backend, ExecBackend::kVm);
  EXPECT_GE(report.engine_metrics.counters["vm.compiles"], 1u);
  EXPECT_GT(report.engine_metrics.counters["vm.instructions"], 10u);
  EXPECT_EQ(SerializeSequence(report.result).ValueOrDie(), "104");
  // Root accounting holds under the vm backend (xqp_profile --check).
  const OpStats* root = report.RootStats();
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->items, report.result.size());

  // A query with an uncompiled subtree retires bailouts, attributed to
  // the thunk's reason as a per-reason counter (satellite of EXPLAIN's
  // [bailout: reason] annotations). Constructors compile now, so the
  // uncompiled island here is the filter inside the return clause.
  auto mixed =
      engine.Compile("1 + count(for $i in 1 to 3 return ($i to 5)[2])");
  XQP_ASSERT_OK(mixed.status());
  XQP_ASSERT_OK_AND_ASSIGN(ProfileReport mixed_report,
                           mixed.value()->Profile(exec));
  EXPECT_GE(mixed_report.engine_metrics.counters["vm.bailouts"], 1u);
  EXPECT_GE(mixed_report.engine_metrics.counters["vm.bailout.filter"], 1u);
  EXPECT_EQ(SerializeSequence(mixed_report.result).ValueOrDie(), "4");

  // Constructor-heavy and order-by loops retire zero bailouts.
  auto ctor = engine.Compile(
      "for $i in (3,1,2) order by $i descending return <v>{$i}</v>");
  XQP_ASSERT_OK(ctor.status());
  XQP_ASSERT_OK_AND_ASSIGN(ProfileReport ctor_report,
                           ctor.value()->Profile(exec));
  EXPECT_EQ(ctor_report.engine_metrics.counters["vm.bailouts"], 0u);
  EXPECT_EQ(SerializeSequence(ctor_report.result).ValueOrDie(),
            "<v>3</v><v>2</v><v>1</v>");

  // Compiled paths retire zero bailouts.
  XQP_ASSERT_OK(
      engine.ParseAndRegister("doc.xml", "<r><a/><a/></r>").status());
  auto path = engine.Compile("1 + count(doc('doc.xml')//a)");
  XQP_ASSERT_OK(path.status());
  XQP_ASSERT_OK_AND_ASSIGN(ProfileReport path_report,
                           path.value()->Profile(exec));
  EXPECT_EQ(path_report.engine_metrics.counters["vm.bailouts"], 0u);
  EXPECT_EQ(SerializeSequence(path_report.result).ValueOrDie(), "3");
}

TEST(VmMetrics, PerReasonBailoutCountersKebabCaseTheReason) {
  XQueryEngine engine;
  // "user function call" => vm.bailout.user-function-call (recursive
  // functions are never inlined, so the call survives to the compiler).
  auto compiled = engine.Compile(
      "declare function local:f($n as xs:integer) as xs:integer { "
      "if ($n le 1) then 1 else $n * local:f($n - 1) }; "
      "local:f(4) + 0");
  XQP_ASSERT_OK(compiled.status());
  XQP_ASSERT_OK_AND_ASSIGN(ProfileReport report,
                           compiled.value()->Profile(VmExec()));
  EXPECT_GE(
      report.engine_metrics.counters["vm.bailout.user-function-call"], 1u);
  EXPECT_EQ(SerializeSequence(report.result).ValueOrDie(), "24");
}

// --- Backend selection -----------------------------------------------------

TEST(VmBackend, EnvKnobSelectsVm) {
  ::setenv("XQP_BACKEND", "vm", 1);
  XQueryEngine engine;
  ::unsetenv("XQP_BACKEND");
  EXPECT_EQ(engine.options().backend, ExecBackend::kVm);
  auto compiled = engine.Compile("sum(for $i in 1 to 10 return $i)");
  XQP_ASSERT_OK(compiled.status());
  // Default ExecOptions now resolve to the vm backend.
  EXPECT_EQ(compiled.value()->ResolvedBackend(CompiledQuery::ExecOptions()),
            ExecBackend::kVm);
  XQP_ASSERT_OK_AND_ASSIGN(ProfileReport report, compiled.value()->Profile());
  EXPECT_EQ(report.backend, ExecBackend::kVm);
  EXPECT_NE(report.ToText().find("engine: vm (bytecode)"), std::string::npos);
  EXPECT_NE(report.ToJson().find("\"engine\":\"vm\""), std::string::npos);
}

TEST(VmBackend, PerCallOverrideWinsOverEngineDefault) {
  EngineOptions options;
  options.backend = ExecBackend::kVm;
  XQueryEngine engine(options);
  auto compiled = engine.Compile("1 + 1");
  XQP_ASSERT_OK(compiled.status());
  CompiledQuery::ExecOptions eager;
  eager.backend = ExecBackend::kEager;
  EXPECT_EQ(compiled.value()->ResolvedBackend(eager), ExecBackend::kEager);
  CompiledQuery::ExecOptions legacy;
  legacy.use_lazy_engine = false;
  EXPECT_EQ(compiled.value()->ResolvedBackend(legacy), ExecBackend::kEager);
  EXPECT_EQ(compiled.value()->ResolvedBackend(CompiledQuery::ExecOptions()),
            ExecBackend::kVm);
}

// --- Compiler-level checks -------------------------------------------------

TEST(VmCompiler, ProgramShape) {
  XQueryEngine engine;
  auto compiled =
      engine.Compile("sum(for $i in 1 to 10 where $i > 2 return $i * 2)");
  XQP_ASSERT_OK(compiled.status());
  XQP_ASSERT_OK_AND_ASSIGN(std::shared_ptr<const vm::Program> program,
                           vm::CompileProgram(compiled.value()->module()));
  EXPECT_FALSE(program->trivial_bailout);
  EXPECT_TRUE(program->thunks.empty());
  EXPECT_GT(program->code.size(), 5u);
  EXPECT_EQ(program->code.back().op, vm::Op::kHalt);
  EXPECT_GT(program->max_stack, 0);
  EXPECT_GT(program->num_iters, 0);
  // Pool entries 0/1 are the canonical booleans.
  ASSERT_GE(program->const_pool.size(), 2u);
  EXPECT_GT(program->const_pool_bytes, 0u);
}

// --- Concurrency (tsan lane) -----------------------------------------------

TEST(VmConcurrency, SharedProgramRunsFromManyThreads) {
  XQueryEngine engine;
  auto compiled = engine.Compile(
      "sum(for $i in 1 to 2000 return $i * 3 + ($i mod 5))");
  XQP_ASSERT_OK(compiled.status());
  XQP_ASSERT_OK_AND_ASSIGN(std::string want,
                           compiled.value()->ExecuteToXml());
  const CompiledQuery* query = compiled.value().get();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([query, &want] {
      for (int i = 0; i < 8; ++i) {
        auto got = query->ExecuteToXml(VmExec());
        ASSERT_TRUE(got.ok()) << got.status().ToString();
        EXPECT_EQ(got.value(), want);
      }
    });
  }
  for (std::thread& t : threads) t.join();
}

}  // namespace
}  // namespace xqp
