#include "opt/rewriter.h"

#include <gtest/gtest.h>

#include "engine.h"
#include "opt/properties.h"
#include "query/normalize.h"
#include "query/parser.h"
#include "tests/test_util.h"

namespace xqp {
namespace {

using testing_util::RunQuery;

/// Compiles with the given rewriter options and returns (stats, dump).
std::pair<RewriteStats, std::string> Optimize(const std::string& query,
                                              const RewriterOptions& options) {
  auto module = ParseQuery(query);
  EXPECT_TRUE(module.ok()) << module.status().ToString();
  EXPECT_TRUE(NormalizeModule(module->get()).ok());
  auto stats = OptimizeModule(module->get(), options);
  EXPECT_TRUE(stats.ok()) << stats.status().ToString();
  return {std::move(stats).value(), (*module)->body->ToString()};
}

int RuleCount(const RewriteStats& stats, const std::string& rule) {
  auto it = stats.find(rule);
  return it == stats.end() ? 0 : it->second;
}

TEST(ConstantFolding, FoldsArithmetic) {
  auto [stats, dump] = Optimize("1 + 2 * 3", {});
  EXPECT_EQ(dump, "7");
  // Literal-operand arithmetic is claimed by the cheap const_fold rule
  // (shared with the bytecode compiler) before the general evaluator fold.
  EXPECT_GE(RuleCount(stats, "const_fold"), 1);
}

TEST(ConstantFolding, FoldsComparisonsAndLogic) {
  auto [stats, dump] = Optimize("if (1 < 2 and 3 = 3) then 'y' else 'n'", {});
  EXPECT_EQ(dump, "\"y\"");
}

TEST(ConstantFolding, FoldsPureFunctions) {
  auto [stats, dump] = Optimize("upper-case(concat('a', 'b'))", {});
  EXPECT_EQ(dump, "\"AB\"");
}

TEST(ConstantFolding, LeavesErrorsForRuntime) {
  auto [stats, dump] = Optimize("1 idiv 0", {});
  EXPECT_EQ(dump, "(idiv 1 0)");  // Folding declines; error stays dynamic.
}

TEST(ConstantFolding, DisabledByOption) {
  RewriterOptions options = RewriterOptions::AllOff();
  auto [stats, dump] = Optimize("1 + 2", options);
  EXPECT_EQ(dump, "(+ 1 2)");
  EXPECT_EQ(RuleCount(stats, "constant-folding"), 0);
}

TEST(BooleanSimplification, ShortCircuitsLiterals) {
  RewriterOptions options = RewriterOptions::AllOff();
  options.constant_folding = true;
  options.boolean_simplification = true;
  auto [stats, dump] =
      Optimize("declare variable $x external; false() and $x", options);
  EXPECT_EQ(dump, "false");
  EXPECT_GE(RuleCount(stats, "boolean-shortcircuit"), 1);
}

TEST(BooleanSimplification, NeutralElementDropped) {
  RewriterOptions options = RewriterOptions::AllOff();
  options.constant_folding = true;
  options.boolean_simplification = true;
  auto [stats, dump] =
      Optimize("declare variable $x external; true() and $x", options);
  EXPECT_EQ(dump, "(fn:boolean $x)");
  EXPECT_GE(RuleCount(stats, "boolean-neutral"), 1);
}

TEST(BooleanSimplification, IfPruning) {
  auto [stats, dump] = Optimize("if (1 = 1) then 'a' else 'b'", {});
  EXPECT_EQ(dump, "\"a\"");
}

TEST(LetFolding, InlinesSingleUse) {
  auto [stats, dump] =
      Optimize("declare variable $d external; "
               "for $b in $d let $t := $b/title where $t = 'x' return $b",
               {});
  EXPECT_GE(RuleCount(stats, "let-folding"), 1);
  EXPECT_EQ(dump.find("let"), std::string::npos) << dump;
}

TEST(LetFolding, PaperExample) {
  // let $x := 3 return $x + 2 folds to 5.
  auto [stats, dump] = Optimize("let $x := 3 return $x + 2", {});
  EXPECT_EQ(dump, "5");
}

TEST(LetFolding, KeepsNodeCtorUsedTwice) {
  // The paper's counterexample: let $x := <a/> return ($x, $x) must NOT
  // fold (two constructions would create two distinct nodes).
  auto [stats, dump] = Optimize("let $x := <a/> return ($x, $x)", {});
  EXPECT_NE(dump.find("let"), std::string::npos) << dump;
  EXPECT_EQ(RunQuery("let $x := <a/> return count(($x, $x)/self::a)"), "1");
}

TEST(LetFolding, DeadLetRemoved) {
  auto [stats, dump] =
      Optimize("for $b in (1,2) let $unused := $b * 100 return $b", {});
  EXPECT_GE(RuleCount(stats, "dead-let-elimination"), 1);
  EXPECT_EQ(dump.find("unused"), std::string::npos);
}

TEST(FlworCollapse, LetOnlyFlworBecomesBody) {
  auto [stats, dump] = Optimize("let $x := 3 return $x", {});
  EXPECT_EQ(dump, "3");
  EXPECT_GE(RuleCount(stats, "flwor-collapse"), 1);
}

TEST(FunctionInlining, InlinesNonRecursive) {
  auto [stats, dump] = Optimize(
      "declare function local:inc($x) { $x + 1 }; local:inc(41)", {});
  EXPECT_GE(RuleCount(stats, "function-inlining"), 1);
  EXPECT_EQ(dump, "42");  // Inlined, then folded.
}

TEST(FunctionInlining, SkipsRecursive) {
  auto [stats, dump] = Optimize(
      "declare function local:f($n) { if ($n le 0) then 0 else "
      "local:f($n - 1) }; local:f(3)",
      {});
  EXPECT_EQ(RuleCount(stats, "function-inlining"), 0);
  EXPECT_NE(dump.find("local:f"), std::string::npos);
}

TEST(FunctionInlining, RespectsSizeLimit) {
  RewriterOptions options;
  options.inline_size_limit = 1;
  auto [stats, dump] = Optimize(
      "declare function local:g($x) { $x + $x + $x }; local:g(1)", options);
  EXPECT_EQ(RuleCount(stats, "function-inlining"), 0);
}

TEST(FunctionInlining, KeepsParameterTypeCheck) {
  // Inlining must not drop declared parameter types.
  std::string r = RunQuery(
      "declare function local:f($x as xs:integer) { $x }; local:f('s')");
  EXPECT_NE(r.find("ERROR"), std::string::npos) << r;
}

TEST(FlworUnnesting, ForOverFlworSplices) {
  RewriterOptions options = RewriterOptions::AllOff();
  options.flwor_unnesting = true;
  auto [stats, dump] = Optimize(
      "declare variable $d external; "
      "for $x in (for $y in $d where $y = 3 return $y) return $x",
      options);
  EXPECT_GE(RuleCount(stats, "for-unnesting"), 1);
  EXPECT_EQ(dump.find("for $x in (flwor"), std::string::npos) << dump;
}

TEST(FlworUnnesting, ReturnFlworMerges) {
  RewriterOptions options = RewriterOptions::AllOff();
  options.flwor_unnesting = true;
  auto [stats, dump] = Optimize(
      "declare variable $d external; "
      "for $x in $d return for $y in $x return $y",
      options);
  EXPECT_GE(RuleCount(stats, "return-unnesting"), 1);
}

TEST(FlworUnnesting, PreservesSemantics) {
  std::string q =
      "for $x in (for $y in (1,2,3) where $y >= 2 return $y * 10) "
      "where $x < 25 return $x";
  EXPECT_EQ(RunQuery(q, "", true, true), "20");
  EXPECT_EQ(RunQuery(q, "", true, false), "20");
}

TEST(ForMinimization, ForReturnVarCollapses) {
  RewriterOptions options = RewriterOptions::AllOff();
  options.for_to_path = true;
  auto [stats, dump] = Optimize(
      "declare variable $d external; for $x in ($d//a) return $x", options);
  EXPECT_GE(RuleCount(stats, "for-minimization"), 1);
  EXPECT_EQ(dump.find("flwor"), std::string::npos) << dump;
}

TEST(Cse, FactorsRepeatedSubexpression) {
  auto [stats, dump] = Optimize(
      "declare variable $d external; "
      "for $x in (1 to 10) "
      "where count($d/long/path/one) > 0 "
      "return count($d/long/path/one) + $x",
      {});
  EXPECT_GE(RuleCount(stats, "cse-factorization"), 1);
  EXPECT_NE(dump.find("xqp-cse"), std::string::npos) << dump;
}

TEST(Cse, SkipsLoopDependentExpressions) {
  auto [stats, dump] = Optimize(
      "declare variable $d external; "
      "for $x in $d/things/thing "
      "where count($x/parts/part) > 1 "
      "return count($x/parts/part)",
      {});
  // Candidate references $x (bound by this FLWOR) — must not hoist.
  EXPECT_EQ(RuleCount(stats, "cse-factorization"), 0);
}

/// Every rewrite must preserve semantics: run a battery of queries fully
/// optimized on both engines and compare with unoptimized output.
struct AblationCase {
  const char* label;
  const char* query;
};

class AblationTest : public ::testing::TestWithParam<AblationCase> {};

TEST_P(AblationTest, SemanticsPreserved) {
  const char* doc =
      "<r><a><b>1</b><b>2</b></a><a><b>3</b></a><c><b>9</b></c></r>";
  std::string query = GetParam().query;
  std::string reference = RunQuery(query, doc, /*lazy=*/false,
                                   /*optimize=*/false);
  ASSERT_EQ(reference.find("ERROR"), std::string::npos) << reference;
  EXPECT_EQ(RunQuery(query, doc, false, true), reference);
  EXPECT_EQ(RunQuery(query, doc, true, true), reference);
}

INSTANTIATE_TEST_SUITE_P(
    Queries, AblationTest,
    ::testing::Values(
        AblationCase{"paths", "count(doc('doc.xml')//b)"},
        AblationCase{"path_values", "string-join(doc('doc.xml')//a/b, '')"},
        AblationCase{"flwor_let",
                     "for $a in doc('doc.xml')//a let $n := count($a/b) "
                     "where $n > 1 return $n"},
        AblationCase{"nested_flwor",
                     "for $x in (for $a in doc('doc.xml')//a return $a/b) "
                     "return string($x)"},
        AblationCase{"functions",
                     "declare function local:f($s) { concat('[', $s, ']') }; "
                     "string-join(for $b in doc('doc.xml')//b return "
                     "local:f(string($b)), '')"},
        AblationCase{"constants", "(1 + 2, 3 * 4, 'a' < 'b')"},
        AblationCase{"cse_query",
                     "for $i in (1 to 3) return count(doc('doc.xml')//b) "
                     "+ count(doc('doc.xml')//b)"},
        AblationCase{"order_by",
                     "for $b in doc('doc.xml')//b order by string($b) "
                     "descending return string($b)"}),
    [](const ::testing::TestParamInfo<AblationCase>& info) {
      return info.param.label;
    });

TEST(Properties, AnalysisFillsFlags) {
  auto module = ParseQuery("declare variable $d external; $d/a/b");
  ASSERT_TRUE(module.ok());
  ASSERT_TRUE(NormalizeModule(module->get()).ok());
  AnalyzeExpr((*module)->body.get(), module->get());
  const Expr* body = (*module)->body.get();
  EXPECT_TRUE(body->props.analyzed);
  EXPECT_TRUE(body->props.nodes_only);
}

TEST(Properties, VarUseCounting) {
  auto module = ParseQuery(
      "for $x in (1,2) let $y := $x + 1 return $y + $x + $x");
  ASSERT_TRUE(module.ok());
  ASSERT_TRUE(NormalizeModule(module->get()).ok());
  auto* flwor = static_cast<FlworExpr*>((*module)->body.get());
  int x_slot = flwor->clauses[0].var_slot;
  int y_slot = flwor->clauses[1].var_slot;
  bool in_loop = false;
  EXPECT_EQ(CountVarUses(flwor->return_expr(), x_slot, &in_loop), 2);
  EXPECT_EQ(CountVarUses(flwor->return_expr(), y_slot, &in_loop), 1);
}

// ---------------------------------------------------------------------------
// EXPLAIN goldens for the cost-based access-path selector.  Each test locks
// down the "[access: <strategy>, est=N]" annotation ExplainTree renders for a
// canonical query shape against a small fixed document whose cardinalities
// are known by inspection:
//
//   <r>
//     <a><b>x</b><b>y</b><c k="1">z</c></a>
//     <a><b>x</b></a>
//     <d><e><f>1</f></e><e><f>2</f></e></d>
//   </r>
//
// so count(//b)=3, count(/r/a)=2, count(//e/f)=2, count(//c[@k='1'])=1.
// ---------------------------------------------------------------------------

constexpr char kExplainDoc[] =
    "<r><a><b>x</b><b>y</b><c k=\"1\">z</c></a><a><b>x</b></a>"
    "<d><e><f>1</f></e><e><f>2</f></e></d></r>";

/// Registers kExplainDoc as doc('d.xml'), warms its indexes so EXPLAIN's
/// peek-only annotation sees the decision execution would make, and returns
/// the rendered tree.
std::string ExplainWarm(XQueryEngine& engine, const std::string& query) {
  auto compiled = engine.Compile(query);
  EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
  if (!compiled.ok()) return "";
  return compiled.value()->ExplainTree();
}

class AccessPathExplain : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(engine_.ParseAndRegister("d.xml", kExplainDoc).ok());
    ASSERT_TRUE(engine_.GetDocumentIndexes("d.xml").ok());
  }
  XQueryEngine engine_;
};

TEST_F(AccessPathExplain, DescendantSingleStep) {
  EXPECT_NE(ExplainWarm(engine_, "doc('d.xml')//b")
                .find("path [index] [access: index, est=3]"),
            std::string::npos);
}

TEST_F(AccessPathExplain, ChildChainAnnotatesEveryPrefix) {
  std::string tree = ExplainWarm(engine_, "doc('d.xml')/r/a/b");
  // Every doc()-anchored prefix is itself a candidate and carries its own
  // exact synopsis count: /r -> 1, /r/a -> 2, /r/a/b -> 3.
  EXPECT_NE(tree.find("[access: index, est=3]"), std::string::npos) << tree;
  EXPECT_NE(tree.find("[access: index, est=2]"), std::string::npos) << tree;
  EXPECT_NE(tree.find("[access: index, est=1]"), std::string::npos) << tree;
}

TEST_F(AccessPathExplain, MixedDescendantChildChain) {
  EXPECT_NE(ExplainWarm(engine_, "doc('d.xml')//e/f")
                .find("[access: index, est=2]"),
            std::string::npos);
}

TEST_F(AccessPathExplain, AttributeValuePredicate) {
  EXPECT_NE(ExplainWarm(engine_, "doc('d.xml')//c[@k = '1']")
                .find("[access: index, est=1]"),
            std::string::npos);
}

TEST_F(AccessPathExplain, PositionalPredicate) {
  // //b[2] normalizes to a per-parent positional filter; the synopsis-based
  // estimate halves the per-parent population for position > 1.
  EXPECT_NE(ExplainWarm(engine_, "doc('d.xml')//b[2]")
                .find("[access: index, est=1]"),
            std::string::npos);
}

TEST_F(AccessPathExplain, AbsentTagEstimatesZero) {
  EXPECT_NE(ExplainWarm(engine_, "doc('d.xml')//zzz")
                .find("[access: index, est=0]"),
            std::string::npos);
}

TEST_F(AccessPathExplain, TrailingAttributeStep) {
  EXPECT_NE(ExplainWarm(engine_, "doc('d.xml')//c/@k")
                .find("[access: index, est="),
            std::string::npos);
}

TEST(AccessPathExplainForced, ForcedStrategyWinsAnnotation) {
  EngineOptions options;
  options.force_access_path = AccessPath::kSJoin;
  XQueryEngine engine(options);
  ASSERT_TRUE(engine.ParseAndRegister("d.xml", kExplainDoc).ok());
  ASSERT_TRUE(engine.GetDocumentIndexes("d.xml").ok());
  EXPECT_NE(ExplainWarm(engine, "doc('d.xml')//b").find("[access: sjoin"),
            std::string::npos);
}

TEST(AccessPathExplainForced, ForcedNavAnnotates) {
  EngineOptions options;
  options.force_access_path = AccessPath::kNav;
  XQueryEngine engine(options);
  ASSERT_TRUE(engine.ParseAndRegister("d.xml", kExplainDoc).ok());
  ASSERT_TRUE(engine.GetDocumentIndexes("d.xml").ok());
  EXPECT_NE(ExplainWarm(engine, "doc('d.xml')//b").find("[access: nav"),
            std::string::npos);
}

TEST(AccessPathExplainForced, ColdCacheRendersNoDecision) {
  // Annotation only peeks at already-built indexes; before the first
  // execution or GetDocumentIndexes call there is nothing to cost against.
  XQueryEngine engine;
  ASSERT_TRUE(engine.ParseAndRegister("d.xml", kExplainDoc).ok());
  auto compiled = engine.Compile("doc('d.xml')//b");
  ASSERT_TRUE(compiled.ok());
  EXPECT_EQ(compiled.value()->ExplainTree().find("[access:"),
            std::string::npos);
}

TEST(AccessPathExplainForced, DisabledIndexesRenderNoDecision) {
  EngineOptions options;
  options.enable_indexes = false;
  XQueryEngine engine(options);
  ASSERT_TRUE(engine.ParseAndRegister("d.xml", kExplainDoc).ok());
  auto compiled = engine.Compile("doc('d.xml')//b");
  ASSERT_TRUE(compiled.ok());
  EXPECT_EQ(compiled.value()->ExplainTree().find("[access:"),
            std::string::npos);
}

}  // namespace
}  // namespace xqp
