#include "xmark/generator.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "xmark/queries.h"

namespace xqp {
namespace {

TEST(XMarkGenerator, Deterministic) {
  XMarkOptions options;
  options.scale = 0.01;
  EXPECT_EQ(GenerateXMarkXml(options), GenerateXMarkXml(options));
  XMarkOptions other = options;
  other.seed = 7;
  EXPECT_NE(GenerateXMarkXml(options), GenerateXMarkXml(other));
}

TEST(XMarkGenerator, CountsScale) {
  auto small = CountsForScale(0.1);
  auto large = CountsForScale(1.0);
  EXPECT_GT(large.items, small.items);
  EXPECT_GT(large.people, small.people);
  EXPECT_EQ(large.items, 2175u);
  EXPECT_EQ(large.people, 2550u);
  EXPECT_EQ(large.open_auctions, 1200u);
  EXPECT_EQ(large.closed_auctions, 975u);
}

TEST(XMarkGenerator, ParsesAndHasSchemaShape) {
  XMarkOptions options;
  options.scale = 0.02;
  auto doc = std::move(GenerateXMarkDocument(options)).ValueOrDie();
  XQueryEngine engine;
  XQP_ASSERT_OK(engine.RegisterDocument("xmark.xml", doc));
  auto count = [&](const std::string& q) {
    auto r = engine.Execute("count(" + q + ")");
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? (*r)[0].AsAtomic().AsInt() : -1;
  };
  auto counts = CountsForScale(options.scale);
  EXPECT_EQ(count("doc('xmark.xml')/site/regions/*"), 6);
  EXPECT_EQ(count("doc('xmark.xml')/site/people/person"),
            static_cast<int64_t>(counts.people));
  EXPECT_EQ(count("doc('xmark.xml')/site/open_auctions/open_auction"),
            static_cast<int64_t>(counts.open_auctions));
  EXPECT_EQ(count("doc('xmark.xml')/site/closed_auctions/closed_auction"),
            static_cast<int64_t>(counts.closed_auctions));
  EXPECT_GE(count("doc('xmark.xml')//item"),
            static_cast<int64_t>(counts.items) - 6);
  EXPECT_GT(count("doc('xmark.xml')//bidder"), 0);
  EXPECT_GT(count("doc('xmark.xml')//description//keyword"), 0);
}

TEST(XMarkGenerator, MarkupCanBeDisabled) {
  XMarkOptions options;
  options.scale = 0.02;
  options.description_markup = false;
  std::string xml = GenerateXMarkXml(options);
  EXPECT_EQ(xml.find("<bold>"), std::string::npos);
  EXPECT_EQ(xml.find("<parlist>"), std::string::npos);
}

class XMarkQueryTest : public ::testing::TestWithParam<XMarkQuery> {};

TEST_P(XMarkQueryTest, EnginesAgree) {
  static std::shared_ptr<Document>* doc = [] {
    XMarkOptions options;
    options.scale = 0.02;
    return new std::shared_ptr<Document>(
        std::move(GenerateXMarkDocument(options)).ValueOrDie());
  }();
  XQueryEngine engine;
  XQP_ASSERT_OK(engine.RegisterDocument("xmark.xml", *doc));
  XQP_ASSERT_OK_AND_ASSIGN(auto compiled, engine.Compile(GetParam().text));
  CompiledQuery::ExecOptions lazy;
  CompiledQuery::ExecOptions eager;
  eager.use_lazy_engine = false;
  XQP_ASSERT_OK_AND_ASSIGN(std::string lazy_out, compiled->ExecuteToXml(lazy));
  XQP_ASSERT_OK_AND_ASSIGN(std::string eager_out,
                           compiled->ExecuteToXml(eager));
  EXPECT_EQ(lazy_out, eager_out) << GetParam().id;
  // Unoptimized must agree as well.
  XQueryEngine::CompileOptions raw;
  raw.optimize = false;
  XQP_ASSERT_OK_AND_ASSIGN(auto unopt, engine.Compile(GetParam().text, raw));
  XQP_ASSERT_OK_AND_ASSIGN(std::string unopt_out, unopt->ExecuteToXml(lazy));
  EXPECT_EQ(unopt_out, lazy_out) << GetParam().id;
}

INSTANTIATE_TEST_SUITE_P(All, XMarkQueryTest,
                         ::testing::ValuesIn(XMarkQuerySet()),
                         [](const ::testing::TestParamInfo<XMarkQuery>& info) {
                           return std::string(info.param.id);
                         });

TEST(XMarkQueries, LookupById) {
  EXPECT_NE(FindXMarkQuery("Q1"), nullptr);
  EXPECT_NE(FindXMarkQuery("Q20"), nullptr);
  EXPECT_EQ(FindXMarkQuery("Q99"), nullptr);
  EXPECT_EQ(XMarkQuerySet().size(), 20u);
}

TEST(XMarkQueries, Q20BucketsPartitionProfiles) {
  XMarkOptions options;
  options.scale = 0.02;
  auto doc = std::move(GenerateXMarkDocument(options)).ValueOrDie();
  XQueryEngine engine;
  XQP_ASSERT_OK(engine.RegisterDocument("xmark.xml", doc));
  XQP_ASSERT_OK_AND_ASSIGN(
      auto q,
      engine.Compile("sum((count(doc('xmark.xml')/site/people/person/"
                     "profile[@income >= 50000]), "
                     "count(doc('xmark.xml')/site/people/person/profile["
                     "@income < 50000])))"));
  XQP_ASSERT_OK_AND_ASSIGN(Sequence buckets, q->Execute());
  XQP_ASSERT_OK_AND_ASSIGN(
      auto q2, engine.Compile(
                   "count(doc('xmark.xml')/site/people/person/profile)"));
  XQP_ASSERT_OK_AND_ASSIGN(Sequence total, q2->Execute());
  EXPECT_EQ(buckets[0].AsAtomic().AsInt(), total[0].AsAtomic().AsInt());
}

}  // namespace
}  // namespace xqp
