#include "xml/pull_parser.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace xqp {
namespace {

using Events = std::vector<std::string>;

/// Renders the event stream compactly for comparison.
Result<Events> Pump(std::string_view xml, ParseOptions options = {}) {
  XmlPullParser parser(xml, options);
  Events out;
  while (true) {
    XQP_ASSIGN_OR_RETURN(const XmlEvent* e, parser.Next());
    if (e == nullptr) break;
    switch (e->type) {
      case XmlEventType::kStartDocument:
        out.push_back("SD");
        break;
      case XmlEventType::kEndDocument:
        out.push_back("ED");
        break;
      case XmlEventType::kStartElement: {
        std::string s = "<" + e->name.Clark();
        for (const auto& a : e->attributes) {
          s += " " + a.name.Clark() + "=" + std::string(a.value);
        }
        for (const auto& ns : e->ns_decls) {
          s += " xmlns:" + ns.prefix + "=" + ns.uri;
        }
        out.push_back(s);
        break;
      }
      case XmlEventType::kEndElement:
        out.push_back(">");
        break;
      case XmlEventType::kText:
        out.push_back("T:" + std::string(e->text));
        break;
      case XmlEventType::kComment:
        out.push_back("C:" + std::string(e->text));
        break;
      case XmlEventType::kProcessingInstruction:
        out.push_back("PI:" + e->name.local + ":" + std::string(e->text));
        break;
    }
  }
  return out;
}

TEST(XmlParser, SimpleElement) {
  auto events = Pump("<a>hi</a>").value();
  EXPECT_EQ(events, (Events{"SD", "<a", "T:hi", ">", "ED"}));
}

TEST(XmlParser, SelfClosing) {
  auto events = Pump("<a/>").value();
  EXPECT_EQ(events, (Events{"SD", "<a", ">", "ED"}));
}

TEST(XmlParser, Attributes) {
  auto events = Pump(R"(<a x="1" y='2'/>)").value();
  EXPECT_EQ(events[1], "<a x=1 y=2");
}

TEST(XmlParser, XmlDeclAndPi) {
  auto events = Pump("<?xml version=\"1.0\"?><a><?target data here?></a>").value();
  EXPECT_EQ(events, (Events{"SD", "<a", "PI:target:data here", ">", "ED"}));
}

TEST(XmlParser, CommentAndCdata) {
  auto events = Pump("<a><!-- note --><![CDATA[<raw&>]]></a>").value();
  EXPECT_EQ(events, (Events{"SD", "<a", "C: note ", "T:<raw&>", ">", "ED"}));
}

TEST(XmlParser, EntityDecoding) {
  auto events = Pump("<a>&lt;&amp;&gt;&quot;&apos;&#65;&#x42;</a>").value();
  EXPECT_EQ(events[2], "T:<&>\"'AB");
}

TEST(XmlParser, EntityInAttribute) {
  auto events = Pump(R"(<a v="x&amp;y&#10;z"/>)").value();
  EXPECT_EQ(events[1], "<a v=x&y\nz");
}

TEST(XmlParser, Namespaces) {
  auto events =
      Pump(R"(<b:a xmlns:b="urn:one" xmlns="urn:dflt"><c b:d="v"/></b:a>)")
          .value();
  EXPECT_EQ(events[1], "<{urn:one}a xmlns:b=urn:one xmlns:=urn:dflt");
  // Unprefixed child picks up the default namespace; prefixed attribute
  // resolves through b.
  EXPECT_EQ(events[2], "<{urn:dflt}c {urn:one}d=v");
}

TEST(XmlParser, NamespaceScopesPop) {
  auto events = Pump(R"(<a><b xmlns="urn:x"><c/></b><d/></a>)").value();
  EXPECT_EQ(events[2], "<{urn:x}b xmlns:=urn:x");
  EXPECT_EQ(events[3], "<{urn:x}c");
  EXPECT_EQ(events[6], "<d");  // Default namespace no longer in scope.
}

TEST(XmlParser, StripWhitespaceOption) {
  ParseOptions options;
  options.strip_whitespace = true;
  auto events = Pump("<a>\n  <b/>\n</a>", options).value();
  EXPECT_EQ(events, (Events{"SD", "<a", "<b", ">", ">", "ED"}));
}

TEST(XmlParser, DoctypeSkipped) {
  auto events =
      Pump("<!DOCTYPE a [<!ELEMENT a (#PCDATA)>]><a>x</a>").value();
  EXPECT_EQ(events, (Events{"SD", "<a", "T:x", ">", "ED"}));
}

TEST(XmlParser, MixedContent) {
  auto events = Pump("<p>one <b>two</b> three</p>").value();
  EXPECT_EQ(events,
            (Events{"SD", "<p", "T:one ", "<b", "T:two", ">", "T: three", ">",
                    "ED"}));
}

struct BadXml {
  const char* label;
  const char* xml;
};

class MalformedTest : public ::testing::TestWithParam<BadXml> {};

TEST_P(MalformedTest, Rejected) {
  auto result = Pump(GetParam().xml);
  EXPECT_FALSE(result.ok()) << GetParam().label;
  if (!result.ok()) {
    EXPECT_EQ(result.status().code(), StatusCode::kParseError);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, MalformedTest,
    ::testing::Values(
        BadXml{"mismatched", "<a></b>"},
        BadXml{"unclosed", "<a><b></a>"},
        BadXml{"eof_in_tag", "<a"},
        BadXml{"two_roots", "<a/><b/>"},
        BadXml{"text_outside", "<a/>junk"},
        BadXml{"bad_entity", "<a>&nosuch;</a>"},
        BadXml{"unterminated_entity", "<a>&amp</a>"},
        BadXml{"unterminated_comment", "<a><!-- x</a>"},
        BadXml{"unterminated_cdata", "<a><![CDATA[x</a>"},
        BadXml{"lt_in_attr", "<a v=\"<\"/>"},
        BadXml{"missing_quote", "<a v=1/>"},
        BadXml{"undeclared_prefix", "<p:a/>"},
        BadXml{"stray_end", "</a>"}),
    [](const ::testing::TestParamInfo<BadXml>& info) {
      return info.param.label;
    });

TEST(XmlParser, ErrorsCarryLineColumn) {
  XmlPullParser parser("<a>\n<b></c>", ParseOptions{});
  Status error;
  while (true) {
    auto e = parser.Next();
    if (!e.ok()) {
      error = e.status();
      break;
    }
    if (e.value() == nullptr) break;
  }
  EXPECT_FALSE(error.ok());
  EXPECT_NE(error.message().find("2:"), std::string::npos) << error.ToString();
}

TEST(XmlParser, LargeFlatDocument) {
  std::string xml = "<r>";
  for (int i = 0; i < 5000; ++i) xml += "<x/>";
  xml += "</r>";
  auto events = Pump(xml).value();
  // SD + <r> + 5000 * (<x>, </x>) + </r> + ED.
  EXPECT_EQ(events.size(), 10004u);
}

/// Fuzz-lite: random single-byte mutations of well-formed documents must
/// either parse or fail with a ParseError — never crash, hang, or corrupt.
class MutationFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MutationFuzzTest, MutatedInputNeverCrashes) {
  std::string base = testing_util::RandomXml(GetParam(), 120);
  SplitMix64 rng(GetParam() ^ 0xf00dULL);
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = base;
    size_t pos = rng.Below(mutated.size());
    switch (rng.Below(3)) {
      case 0:
        mutated[pos] = static_cast<char>(rng.Below(256));
        break;
      case 1:
        mutated.erase(pos, 1 + rng.Below(4));
        break;
      default:
        mutated.insert(pos, 1, "<>&\"'/="[rng.Below(7)]);
        break;
    }
    auto doc = Document::Parse(mutated);
    if (!doc.ok()) {
      EXPECT_EQ(doc.status().code(), StatusCode::kParseError)
          << doc.status().ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationFuzzTest,
                         ::testing::Values(101, 102, 103, 104, 105, 106));

TEST(XmlParser, DeepNesting) {
  std::string xml;
  for (int i = 0; i < 500; ++i) xml += "<d>";
  xml += "x";
  for (int i = 0; i < 500; ++i) xml += "</d>";
  auto events = Pump(xml).value();
  EXPECT_EQ(events.size(), 2u + 500u * 2 + 1u);
}

}  // namespace
}  // namespace xqp
