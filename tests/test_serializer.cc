#include "xml/serializer.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace xqp {
namespace {

using testing_util::RandomXml;

std::string RoundTrip(const std::string& xml) {
  auto doc = Document::Parse(xml).value();
  return SerializeToString(Node(doc, 0)).value();
}

TEST(Serializer, Simple) {
  EXPECT_EQ(RoundTrip("<a><b>t</b><c/></a>"), "<a><b>t</b><c/></a>");
}

TEST(Serializer, AttributesAndEscapes) {
  EXPECT_EQ(RoundTrip("<a x=\"1&amp;2\">&lt;&amp;</a>"),
            "<a x=\"1&amp;2\">&lt;&amp;</a>");
}

TEST(Serializer, CommentAndPi) {
  EXPECT_EQ(RoundTrip("<a><!--note--><?p d?></a>"),
            "<a><!--note--><?p d?></a>");
}

struct RoundTripCase {
  const char* label;
  const char* xml;
};

class RoundTripTest : public ::testing::TestWithParam<RoundTripCase> {};

TEST_P(RoundTripTest, Stable) {
  // Serialize, reparse, serialize: the two serializations must agree
  // (canonical-form fixpoint).
  std::string first = RoundTrip(GetParam().xml);
  std::string second = RoundTrip(first);
  EXPECT_EQ(first, second);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, RoundTripTest,
    ::testing::Values(
        RoundTripCase{"mixed", "<p>one <b>two</b> three</p>"},
        RoundTripCase{"nested", "<a><b><c><d/></c></b></a>"},
        RoundTripCase{"ns", "<x:a xmlns:x=\"urn:x\"><x:b/></x:a>"},
        RoundTripCase{"default_ns", "<a xmlns=\"urn:d\"><b/></a>"},
        RoundTripCase{"quote_attr", "<a v=\"say &quot;hi&quot;\"/>"},
        RoundTripCase{"newline_attr", "<a v=\"l1&#10;l2\"/>"},
        RoundTripCase{"deep_text", "<a>x<b>y<c>z</c></b></a>"}),
    [](const ::testing::TestParamInfo<RoundTripCase>& info) {
      return info.param.label;
    });

TEST(Serializer, NamespaceFixupForConstructedTree) {
  // Build a tree whose names carry URIs but no recorded declarations.
  DocumentBuilder builder;
  XQP_ASSERT_OK(builder.BeginElement(QName("urn:n", "n", "root")));
  XQP_ASSERT_OK(builder.BeginElement(QName("urn:n", "n", "kid")));
  XQP_ASSERT_OK(builder.EndElement());
  XQP_ASSERT_OK(builder.EndElement());
  auto doc = std::move(builder.Finish()).ValueOrDie();
  auto xml = SerializeToString(Node(doc, 0)).value();
  // One declaration at the top; none repeated on the child.
  EXPECT_EQ(xml, "<n:root xmlns:n=\"urn:n\"><n:kid/></n:root>");
}

TEST(Serializer, XmlDeclarationOption) {
  auto doc = Document::Parse("<a/>").value();
  SerializeOptions options;
  options.xml_declaration = true;
  auto xml = SerializeToString(Node(doc, 0), options).value();
  EXPECT_EQ(xml, "<?xml version=\"1.0\" encoding=\"UTF-8\"?><a/>");
}

TEST(Serializer, Indentation) {
  auto doc = Document::Parse("<a><b><c/></b><d>t</d></a>").value();
  SerializeOptions options;
  options.indent = true;
  auto xml = SerializeToString(Node(doc, 0), options).value();
  EXPECT_EQ(xml, "<a>\n  <b>\n    <c/>\n  </b>\n  <d>t</d>\n</a>");
}

TEST(Serializer, SubtreeSerialization) {
  auto doc = Document::Parse("<a><b x=\"1\">t</b><c/></a>").value();
  Node b(doc, doc->node(1).first_child);
  EXPECT_EQ(SerializeToString(b).value(), "<b x=\"1\">t</b>");
}

class RandomRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomRoundTripTest, Fixpoint) {
  std::string xml = RandomXml(GetParam(), 150);
  std::string once = RoundTrip(xml);
  EXPECT_EQ(once, RoundTrip(once));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomRoundTripTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace xqp
