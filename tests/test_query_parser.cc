#include "query/parser.h"

#include <gtest/gtest.h>

#include "query/normalize.h"

namespace xqp {
namespace {

/// Parses and normalizes, returning the body's s-expression dump. The free
/// variables used by the path tests are predeclared as externals.
std::string ParseDump(const std::string& query) {
  std::string prolog =
      "declare variable $x external; declare variable $a external; "
      "declare variable $b external; ";
  auto module = ParseQuery(query.find('$') != std::string::npos &&
                                   query.find("declare") == std::string::npos &&
                                   query.find("for") != 0 &&
                                   query.find("let") != 0 &&
                                   query.find("some") != 0 &&
                                   query.find("every") != 0
                               ? prolog + query
                               : query);
  if (!module.ok()) return "PARSE-ERROR: " + module.status().ToString();
  Status st = NormalizeModule(module->get());
  if (!st.ok()) return "NORMALIZE-ERROR: " + st.ToString();
  return (*module)->body->ToString();
}

TEST(QueryParser, Precedence) {
  EXPECT_EQ(ParseDump("1 + 2 * 3"), "(+ 1 (* 2 3))");
  EXPECT_EQ(ParseDump("(1 + 2) * 3"), "(* (+ 1 2) 3)");
  EXPECT_EQ(ParseDump("1 = 2 or 3 = 4 and 5 = 6"),
            "(or (= 1 2) (and (= 3 4) (= 5 6)))");
  EXPECT_EQ(ParseDump("1 to 2 + 3"), "(to 1 (+ 2 3))");
  EXPECT_EQ(ParseDump("-1 + 2"), "(+ (neg 1) 2)");
}

TEST(QueryParser, Comparisons) {
  EXPECT_EQ(ParseDump("1 eq 2"), "(eq 1 2)");
  EXPECT_EQ(ParseDump("1 < 2"), "(< 1 2)");
  EXPECT_EQ(ParseDump("1 << 2"), "(<< 1 2)");
  EXPECT_EQ(ParseDump("1 is 2"), "(is 1 2)");
}

TEST(QueryParser, Paths) {
  EXPECT_EQ(ParseDump("$x/a/b"),
            "(path/sort/dedup (path/sort/dedup $x child::a) child::b)");
  EXPECT_EQ(ParseDump("$x//a"),
            "(path/sort/dedup (path/sort/dedup $x "
            "descendant-or-self::node()) child::a)");
  EXPECT_EQ(ParseDump("$x/@y"), "(path/sort/dedup $x attribute::y)");
  EXPECT_EQ(ParseDump("$x/.."), "(path/sort/dedup $x parent::node())");
  EXPECT_EQ(ParseDump("$x/ancestor::a"),
            "(path/sort/dedup $x ancestor::a)");
  EXPECT_EQ(ParseDump("$x/child::text()"),
            "(path/sort/dedup $x child::text())");
}

TEST(QueryParser, PredicatesBindTighterThanSlash) {
  // The classic XPath mistake from the paper: $x/a/b[1] is $x/a/(b[1]).
  EXPECT_EQ(ParseDump("$x/a/b[1]"),
            "(path/sort/dedup (path/sort/dedup $x child::a) "
            "(filter child::b 1))");
  EXPECT_EQ(ParseDump("($x/a/b)[1]"),
            "(filter (path/sort/dedup (path/sort/dedup $x child::a) "
            "child::b) 1)");
}

TEST(QueryParser, Flwor) {
  EXPECT_EQ(ParseDump("for $x in (1,2) return $x"),
            "(flwor for $x in (seq 1 2) return $x)");
  EXPECT_EQ(ParseDump("for $x at $i in (1,2) return $i"),
            "(flwor for $x at $i in (seq 1 2) return $i)");
  EXPECT_EQ(ParseDump("let $y := 3 return $y"),
            "(flwor let $y := 3 return $y)");
  EXPECT_EQ(
      ParseDump("for $x in (1,2) where $x eq 1 order by $x descending "
                "return $x"),
      "(flwor for $x in (seq 1 2) where (eq $x 1) order-by $x descending "
      "return $x)");
}

TEST(QueryParser, Quantified) {
  EXPECT_EQ(ParseDump("some $x in (1,2) satisfies $x eq 1"),
            "(some $x in (seq 1 2) satisfies (eq $x 1))");
  EXPECT_EQ(ParseDump("every $x in (1,2), $y in (3,4) satisfies $x lt $y"),
            "(every $x in (seq 1 2) $y in (seq 3 4) satisfies (lt $x $y))");
}

TEST(QueryParser, IfAndTypeswitch) {
  EXPECT_EQ(ParseDump("if (1) then 2 else 3"), "(if 1 2 3)");
  EXPECT_EQ(ParseDump(
                "typeswitch (1) case xs:integer return 'i' default return 'o'"),
            "(typeswitch 1 case xs:integer return \"i\" default \"o\")");
}

TEST(QueryParser, TypesOperators) {
  EXPECT_EQ(ParseDump("1 instance of xs:integer"),
            "(instance-of 1 xs:integer)");
  EXPECT_EQ(ParseDump("'5' cast as xs:integer"),
            "(cast-as \"5\" xs:integer)");
  EXPECT_EQ(ParseDump("'x' castable as xs:double?"),
            "(castable-as \"x\" xs:double?)");
  EXPECT_EQ(ParseDump("(1,2) treat as item()+"),
            "(treat-as (seq 1 2) item()+)");
}

TEST(QueryParser, SetOperators) {
  EXPECT_EQ(ParseDump("$a union $b"), "(union $a $b)");
  EXPECT_EQ(ParseDump("$a | $b"), "(union $a $b)");
  EXPECT_EQ(ParseDump("$a intersect $b"), "(intersect $a $b)");
  EXPECT_EQ(ParseDump("$a except $b"), "(except $a $b)");
}

TEST(QueryParser, FunctionCallsResolve) {
  EXPECT_EQ(ParseDump("count((1,2))"), "(count (seq 1 2))");
  EXPECT_EQ(ParseDump("fn:count((1,2))"), "(fn:count (seq 1 2))");
  EXPECT_EQ(ParseDump("xf:empty(())"), "(xf:empty (seq))");
  // xs constructor becomes a cast.
  EXPECT_EQ(ParseDump("xs:integer('4')"), "(cast-as \"4\" xs:integer?)");
}

TEST(QueryParser, UnknownFunctionIsStaticError) {
  EXPECT_NE(ParseDump("nosuchfn(1)").find("NORMALIZE-ERROR"),
            std::string::npos);
  EXPECT_NE(ParseDump("count(1,2,3)").find("wrong number of arguments"),
            std::string::npos);
}

TEST(QueryParser, UndefinedVariableIsStaticError) {
  EXPECT_NE(ParseDump("$nope").find("undefined variable"), std::string::npos);
}

TEST(QueryParser, DirectConstructors) {
  EXPECT_EQ(ParseDump("<a/>"), "(element a)");
  EXPECT_EQ(ParseDump("<a x=\"1\">t</a>"),
            "(element a (attribute x \"1\") (text \"t\"))");
  EXPECT_EQ(ParseDump("<a>{1 + 2}</a>"), "(element a (+ 1 2))");
  EXPECT_EQ(ParseDump("<a x=\"v{1}w\"/>"),
            "(element a (attribute x \"v\" 1 \"w\"))");
  EXPECT_EQ(ParseDump("<a><b/>{2}</a>"), "(element a (element b) 2)");
  EXPECT_EQ(ParseDump("<a>{{literal}}</a>"),
            "(element a (text \"{literal}\"))");
}

TEST(QueryParser, DirectConstructorNamespaces) {
  auto module = ParseQuery("<p:a xmlns:p=\"urn:p\"><p:b/></p:a>");
  ASSERT_TRUE(module.ok()) << module.status().ToString();
  const auto* ctor = static_cast<const ElementCtorExpr*>((*module)->body.get());
  EXPECT_EQ(ctor->name.uri, "urn:p");
  ASSERT_EQ(ctor->NumChildren(), 1u);
  const auto* inner = static_cast<const ElementCtorExpr*>(ctor->child(0));
  EXPECT_EQ(inner->name.uri, "urn:p");
}

TEST(QueryParser, ComputedConstructors) {
  EXPECT_EQ(ParseDump("element foo {1}"), "(element foo 1)");
  EXPECT_EQ(ParseDump("attribute bar {2}"), "(attribute bar 2)");
  EXPECT_EQ(ParseDump("text {3}"), "(text 3)");
  EXPECT_EQ(ParseDump("comment {'c'}"), "(comment-ctor \"c\")");
  EXPECT_EQ(ParseDump("document {<a/>}"), "(document (element a))");
  EXPECT_EQ(ParseDump("element {'dyn'} {}"),
            "(element <computed> \"dyn\" (seq))");
}

TEST(QueryParser, PrologNamespaces) {
  auto module = ParseQuery(
      "declare namespace my = \"urn:my\"; count(//my:item)");
  ASSERT_TRUE(module.ok()) << module.status().ToString();
}

TEST(QueryParser, PrologFunctionAndVariable) {
  auto module = ParseQuery(
      "declare variable $size := 10; "
      "declare function local:twice($n) { 2 * $n }; "
      "local:twice($size)");
  ASSERT_TRUE(module.ok()) << module.status().ToString();
  ASSERT_TRUE(NormalizeModule(module->get()).ok());
  EXPECT_EQ((*module)->functions.size(), 1u);
  EXPECT_EQ((*module)->globals.size(), 1u);
  EXPECT_FALSE((*module)->functions[0].recursive);
}

TEST(QueryParser, RecursionDetection) {
  auto module = ParseQuery(
      "declare function local:f($n) { if ($n le 0) then 0 else "
      "local:f($n - 1) }; local:f(3)");
  ASSERT_TRUE(module.ok());
  ASSERT_TRUE(NormalizeModule(module->get()).ok());
  EXPECT_TRUE((*module)->functions[0].recursive);
}

TEST(QueryParser, MutualRecursionDetection) {
  auto module = ParseQuery(
      "declare function local:even($n) { if ($n eq 0) then true() else "
      "local:odd($n - 1) }; "
      "declare function local:odd($n) { if ($n eq 0) then false() else "
      "local:even($n - 1) }; "
      "local:even(4)");
  ASSERT_TRUE(module.ok());
  ASSERT_TRUE(NormalizeModule(module->get()).ok());
  EXPECT_TRUE((*module)->functions[0].recursive);
  EXPECT_TRUE((*module)->functions[1].recursive);
}

struct BadQuery {
  const char* label;
  const char* query;
};

class BadQueryTest : public ::testing::TestWithParam<BadQuery> {};

TEST_P(BadQueryTest, Rejected) {
  auto module = ParseQuery(GetParam().query);
  if (module.ok()) {
    EXPECT_FALSE(NormalizeModule(module->get()).ok()) << GetParam().label;
  } else {
    EXPECT_EQ(module.status().code(), StatusCode::kStaticError)
        << GetParam().label;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, BadQueryTest,
    ::testing::Values(
        BadQuery{"unclosed_paren", "(1, 2"},
        BadQuery{"missing_return", "for $x in (1,2) $x"},
        BadQuery{"bad_step", "$x/!"},
        BadQuery{"trailing", "1 1"},
        BadQuery{"unknown_axis", "$x/sideways::a"},
        BadQuery{"unclosed_ctor", "<a>"},
        BadQuery{"ctor_mismatch", "<a></b>"},
        BadQuery{"unclosed_brace", "<a>{1</a>"},
        BadQuery{"dup_function",
                 "declare function local:f() {1}; "
                 "declare function local:f() {2}; 1"},
        BadQuery{"validate", "validate { <a/> }"},
        BadQuery{"import", "import schema \"x\"; 1"}),
    [](const ::testing::TestParamInfo<BadQuery>& info) {
      return info.param.label;
    });

}  // namespace
}  // namespace xqp
