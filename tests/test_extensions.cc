// Tests for the engine extensions implementing the paper's "missing
// functionalities" and "optional features" lists: try/catch, the static
// typing feature, and result memoization.

#include <gtest/gtest.h>

#include "opt/static_types.h"
#include "query/normalize.h"
#include "query/parser.h"
#include "tests/test_util.h"

namespace xqp {
namespace {

using testing_util::RunAllWays;
using testing_util::RunQuery;

// --- try/catch ---

TEST(TryCatch, CatchesDynamicErrors) {
  EXPECT_EQ(RunAllWays("try { 1 idiv 0 } catch { 'saved' }"), "saved");
  EXPECT_EQ(RunAllWays("try { error('boom') } catch { 42 }"), "42");
}

TEST(TryCatch, CatchesTypeErrors) {
  EXPECT_EQ(RunAllWays("try { 'x' + 1 } catch { 'typed' }"), "typed");
  EXPECT_EQ(RunAllWays("try { (1,2) treat as xs:integer } catch { 0 }"), "0");
}

TEST(TryCatch, PassesThroughSuccess) {
  EXPECT_EQ(RunAllWays("try { (1, 2, 3) } catch { 0 }"), "1 2 3");
  EXPECT_EQ(RunAllWays("try { () } catch { 'nonempty' }"), "");
}

TEST(TryCatch, CatchBranchMayAlsoFail) {
  std::string r = RunQuery("try { 1 idiv 0 } catch { error('second') }");
  EXPECT_NE(r.find("second"), std::string::npos);
}

TEST(TryCatch, Nests) {
  EXPECT_EQ(RunAllWays("try { try { 1 idiv 0 } catch { error('inner') } } "
                       "catch { 'outer' }"),
            "outer");
}

TEST(TryCatch, StarSyntaxAccepted) {
  EXPECT_EQ(RunAllWays("try { 1 idiv 0 } catch * { 'star' }"), "star");
}

TEST(TryCatch, ErrorDeepInsideFlworIsCaught) {
  EXPECT_EQ(RunAllWays("try { for $x in (1, 0, 2) return 6 idiv $x } "
                       "catch { 'div' }"),
            "div");
}

TEST(TryCatch, WorksInsideFunctions) {
  EXPECT_EQ(RunAllWays(
                "declare function local:safe-div($a, $b) { "
                "try { $a idiv $b } catch { () } }; "
                "string-join(for $d in (2, 0, 4) return "
                "string(count(local:safe-div(8, $d))), '')"),
            "101");
}

// --- static typing feature ---

Status TypeCheckQuery(const std::string& query) {
  auto module = ParseQuery(query);
  if (!module.ok()) return module.status();
  Status st = NormalizeModule(module->get());
  if (!st.ok()) return st;
  return StaticTypeCheck(module->get());
}

struct TypingCase {
  const char* label;
  const char* query;
  bool ok;
};

class StaticTypingTest : public ::testing::TestWithParam<TypingCase> {};

TEST_P(StaticTypingTest, Verdict) {
  Status st = TypeCheckQuery(GetParam().query);
  EXPECT_EQ(st.ok(), GetParam().ok) << st.ToString();
  if (!st.ok()) {
    EXPECT_EQ(st.code(), StatusCode::kStaticError);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, StaticTypingTest,
    ::testing::Values(
        // Goal 1 of the paper's type system: static error detection.
        TypingCase{"string_plus_int", "'a' + 1", false},
        TypingCase{"bool_plus", "true() + 1", false},
        TypingCase{"concat_result_times", "concat('a','b') * 2", false},
        TypingCase{"string_eq_int", "'a' eq 1", false},
        TypingCase{"untyped_eq_int_is_static_error",
                   "<a>42</a> eq 42", false},  // The paper's slide example.
        TypingCase{"bool_lt_string", "true() lt 'x'", false},
        TypingCase{"step_on_atomics", "(1, 2)/a", false},
        TypingCase{"count_result_to_step", "count((1,2))/b", false},
        TypingCase{"fn_arg_disjoint",
                   "declare function local:f($x as xs:integer) { $x }; "
                   "local:f('str')",
                   false},
        TypingCase{"fn_arg_node_for_atomic",
                   "declare function local:f($x as xs:integer) { $x }; "
                   "local:f(<a/>)",
                   false},
        // Valid queries keep compiling.
        TypingCase{"numeric_ok", "1 + 2.5", true},
        TypingCase{"untyped_general_ok", "<a>42</a> = 42", true},
        TypingCase{"untyped_string_value_ok", "<a>42</a> eq '42'", true},
        TypingCase{"cast_makes_numeric", "xs:integer('4') + 1", true},
        TypingCase{"number_fn", "number('3') + 1", true},
        TypingCase{"fn_arg_untyped_ok",
                   "declare function local:f($x as xs:integer) { $x }; "
                   "local:f(xs:integer(<a>3</a>))",
                   true},
        TypingCase{"path_ok", "doc('x')/a/b + 1", true},
        TypingCase{"if_union", "(if (1 < 2) then 1 else 2.5) * 2", true},
        TypingCase{"flwor_ok",
                   "for $x in (1,2) return $x + 1", true}),
    [](const ::testing::TestParamInfo<TypingCase>& info) {
      return info.param.label;
    });

TEST(StaticTyping, OffByDefault) {
  // The strict rules must not reject queries unless opted in.
  XQueryEngine engine;
  EXPECT_TRUE(engine.Compile("<a>42</a> = 42").ok());
  XQueryEngine::CompileOptions strict;
  strict.static_typing = true;
  EXPECT_TRUE(engine.Compile("<a>42</a> = 42", strict).ok());
  EXPECT_FALSE(engine.Compile("'a' + 1", strict).ok());
  EXPECT_TRUE(engine.Compile("'a' + 1").ok());  // Dynamic error at runtime.
}

TEST(StaticTyping, InferenceShapes) {
  auto infer = [](const std::string& query) {
    auto module = std::move(ParseQuery(query)).ValueOrDie();
    EXPECT_TRUE(NormalizeModule(module.get()).ok());
    return InferStaticType(module->body.get(), module.get()).ToString();
  };
  EXPECT_EQ(infer("1"), "xs:integer");
  EXPECT_EQ(infer("1 + 2"), "xs:integer");
  EXPECT_EQ(infer("1 + 2.5"), "xs:numeric");
  EXPECT_EQ(infer("7 div 2"), "xs:numeric");
  EXPECT_EQ(infer("'a'"), "xs:string");
  EXPECT_EQ(infer("count((1,2))"), "xs:integer");
  EXPECT_EQ(infer("1 eq 2"), "xs:boolean");
  EXPECT_EQ(infer("(1, 'a')"), "xs:anyAtomicType+");
  EXPECT_EQ(infer("doc('x')//y"), "node()*");
  EXPECT_EQ(infer("<a/>"), "node()");
  EXPECT_EQ(infer("if (1) then 1 else 'a'"), "xs:anyAtomicType");
  EXPECT_EQ(infer("'5' cast as xs:integer"), "xs:integer");
  EXPECT_EQ(infer("1 to 5"), "xs:integer*");
}

}  // namespace
}  // namespace xqp
