#include "xml/string_pool.h"

#include <gtest/gtest.h>

namespace xqp {
namespace {

TEST(StringPool, DeduplicatesWhenPoolingOn) {
  StringPool pool;
  auto a = pool.Intern("hello");
  auto b = pool.Intern("world");
  auto c = pool.Intern("hello");
  EXPECT_EQ(a, c);
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_EQ(pool.Get(a), "hello");
  EXPECT_EQ(pool.Get(b), "world");
}

TEST(StringPool, NoDedupWhenPoolingOff) {
  StringPool pool;
  pool.set_pooling_enabled(false);
  auto a = pool.Intern("hello");
  auto b = pool.Intern("hello");
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_EQ(pool.Get(a), "hello");
  EXPECT_EQ(pool.Get(b), "hello");
}

TEST(StringPool, FindDoesNotInsert) {
  StringPool pool;
  EXPECT_EQ(pool.Find("missing"), StringPool::kInvalid);
  auto id = pool.Intern("present");
  EXPECT_EQ(pool.Find("present"), id);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(StringPool, StableViewsAcrossGrowth) {
  StringPool pool;
  auto first = pool.Intern("first-string-value");
  std::string_view view = pool.Get(first);
  for (int i = 0; i < 10000; ++i) {
    pool.Intern("filler" + std::to_string(i));
  }
  EXPECT_EQ(view, "first-string-value");  // Deque storage never relocates.
  EXPECT_EQ(pool.Get(first), "first-string-value");
}

TEST(StringPool, EmptyString) {
  StringPool pool;
  auto id = pool.Intern("");
  EXPECT_EQ(pool.Get(id), "");
  EXPECT_EQ(pool.Intern(""), id);
}

TEST(StringPool, MemoryUsageGrowsWithContent) {
  StringPool pool;
  size_t before = pool.MemoryUsage();
  pool.Intern(std::string(1000, 'x'));
  EXPECT_GT(pool.MemoryUsage(), before + 900);
}

TEST(StringPool, DuplicateInternRollsBackArena) {
  // The single-probe intern appends first and rolls the bytes back on a
  // duplicate hit: repeated interning of the same strings must not grow the
  // accounted footprint at all.
  StringPool pool;
  for (int i = 0; i < 50; ++i) pool.Intern("value" + std::to_string(i));
  size_t after_first = pool.MemoryUsage();
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 50; ++i) pool.Intern("value" + std::to_string(i));
  }
  EXPECT_EQ(pool.MemoryUsage(), after_first);
  EXPECT_EQ(pool.size(), 50u);
}

TEST(StringPool, OversizedStringsSpanChunks) {
  // Strings larger than the arena chunk get dedicated storage; views from
  // before and after must both stay valid.
  StringPool pool;
  auto small = pool.Intern("before");
  std::string big(200 * 1024, 'B');
  auto big_id = pool.Intern(big);
  auto after = pool.Intern("after");
  EXPECT_EQ(pool.Get(small), "before");
  EXPECT_EQ(pool.Get(big_id).size(), big.size());
  EXPECT_EQ(pool.Get(big_id), big);
  EXPECT_EQ(pool.Get(after), "after");
  EXPECT_EQ(pool.Intern(big), big_id);
  EXPECT_GE(pool.MemoryUsage(), big.size());
}

TEST(StringPool, ReservePreservesSemantics) {
  StringPool pool;
  pool.Reserve(10000);
  auto a = pool.Intern("alpha");
  EXPECT_EQ(pool.Intern("alpha"), a);
  EXPECT_EQ(pool.Find("alpha"), a);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(StringPool, MemoryUsageCountsBytesWrittenNotCapacity) {
  // A pool holding a handful of short strings must account roughly what was
  // written, not the full chunk capacity (64 KiB).
  StringPool pool;
  pool.Intern("a");
  pool.Intern("b");
  EXPECT_LT(pool.MemoryUsage(), 8 * 1024u);
}

TEST(StringPool, PoolingSavesMemoryOnRepeats) {
  StringPool pooled;
  StringPool unpooled;
  unpooled.set_pooling_enabled(false);
  std::string payload(100, 'p');
  for (int i = 0; i < 1000; ++i) {
    pooled.Intern(payload);
    unpooled.Intern(payload);
  }
  EXPECT_EQ(pooled.size(), 1u);
  EXPECT_EQ(unpooled.size(), 1000u);
  EXPECT_LT(pooled.MemoryUsage(), unpooled.MemoryUsage() / 10);
}

}  // namespace
}  // namespace xqp
