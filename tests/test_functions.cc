#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace xqp {
namespace {

using testing_util::RunAllWays;
using testing_util::RunQuery;

struct FnCase {
  const char* label;
  const char* query;
  const char* expect;
};

class FunctionsTest : public ::testing::TestWithParam<FnCase> {};

TEST_P(FunctionsTest, Expected) {
  EXPECT_EQ(RunAllWays(GetParam().query), GetParam().expect);
}

INSTANTIATE_TEST_SUITE_P(
    Aggregates, FunctionsTest,
    ::testing::Values(
        FnCase{"count", "count((1, 'a', <x/>))", "3"},
        FnCase{"count_empty", "count(())", "0"},
        FnCase{"sum", "sum((1, 2, 3))", "6"},
        FnCase{"sum_empty", "sum(())", "0"},
        FnCase{"sum_with_zero", "sum((), 100)", "100"},
        FnCase{"sum_doubles", "sum((1.5, 2.5))", "4"},
        FnCase{"sum_untyped", "sum((<a>1</a>, <a>2</a>))", "3"},
        FnCase{"avg", "avg((2, 4, 6))", "4"},
        FnCase{"avg_empty", "count(avg(()))", "0"},
        FnCase{"min", "min((5, 2, 9))", "2"},
        FnCase{"max", "max((5, 2, 9))", "9"},
        FnCase{"min_strings", "min(('pear', 'apple'))", "apple"},
        FnCase{"max_untyped_numeric", "max((<a>10</a>, <a>9</a>))", "10"}),
    [](const ::testing::TestParamInfo<FnCase>& info) {
      return info.param.label;
    });

INSTANTIATE_TEST_SUITE_P(
    Strings, FunctionsTest,
    ::testing::Values(
        FnCase{"concat", "concat('a', 1, 'b', ())", "a1b"},
        FnCase{"contains", "contains('banana', 'nan')", "true"},
        FnCase{"contains_empty_needle", "contains('x', '')", "true"},
        FnCase{"starts_with", "starts-with('banana', 'ban')", "true"},
        FnCase{"ends_with", "ends-with('banana', 'ana')", "true"},
        FnCase{"substring2", "substring('12345', 2)", "2345"},
        FnCase{"substring3", "substring('12345', 2, 3)", "234"},
        FnCase{"substring_rounding", "substring('12345', 1.5, 2.6)", "234"},
        FnCase{"substring_before", "substring-before('a=b', '=')", "a"},
        FnCase{"substring_after", "substring-after('a=b', '=')", "b"},
        FnCase{"substring_after_missing", "substring-after('ab', 'z')", ""},
        FnCase{"string_length", "string-length('hello')", "5"},
        FnCase{"string_length_empty_seq", "string-length(())", "0"},
        FnCase{"normalize_space", "normalize-space('  a   b ')", "a b"},
        FnCase{"upper", "upper-case('mIx')", "MIX"},
        FnCase{"lower", "lower-case('mIx')", "mix"},
        FnCase{"translate", "translate('abcabc', 'abc', 'AB')", "ABAB"},
        FnCase{"string_join", "string-join(('a','b','c'), '-')", "a-b-c"},
        FnCase{"string_of_node", "string(<a>hi<b>!</b></a>)", "hi!"},
        FnCase{"string_empty", "string(())", ""}),
    [](const ::testing::TestParamInfo<FnCase>& info) {
      return info.param.label;
    });

INSTANTIATE_TEST_SUITE_P(
    Sequences, FunctionsTest,
    ::testing::Values(
        FnCase{"empty_true", "empty(())", "true"},
        FnCase{"empty_false", "empty((1))", "false"},
        FnCase{"exists", "exists((1))", "true"},
        FnCase{"distinct_values", "count(distinct-values((1, 2, 1, 2.0, 'x')))",
               "3"},
        FnCase{"distinct_untyped",
               "count(distinct-values((<a>q</a>, 'q')))", "1"},
        FnCase{"reverse", "string-join(reverse(('a','b','c')), '')", "cba"},
        FnCase{"subsequence2", "string-join(subsequence(('a','b','c'), 2), '')",
               "bc"},
        FnCase{"subsequence3",
               "string-join(subsequence(('a','b','c','d'), 2, 2), '')", "bc"},
        FnCase{"index_of", "string-join(for $i in index-of((3,1,3), 3) "
                           "return string($i), ',')",
               "1,3"},
        FnCase{"insert_before",
               "string-join(insert-before(('a','b'), 2, 'X'), '')", "aXb"},
        FnCase{"insert_at_end",
               "string-join(insert-before(('a','b'), 9, 'X'), '')", "abX"},
        FnCase{"remove", "string-join(remove(('a','b','c'), 2), '')", "ac"},
        FnCase{"head", "head((7,8,9))", "7"},
        FnCase{"tail", "string-join(for $t in tail((7,8,9)) return "
                       "string($t), ',')",
               "8,9"},
        FnCase{"zero_or_one_ok", "zero-or-one(())", ""},
        FnCase{"exactly_one", "exactly-one(5)", "5"},
        FnCase{"one_or_more", "count(one-or-more((1,2)))", "2"}),
    [](const ::testing::TestParamInfo<FnCase>& info) {
      return info.param.label;
    });

INSTANTIATE_TEST_SUITE_P(
    BooleansAndNumbers, FunctionsTest,
    ::testing::Values(
        FnCase{"not", "not(0)", "true"},
        FnCase{"boolean_string", "boolean('x')", "true"},
        FnCase{"boolean_empty_string", "boolean('')", "false"},
        FnCase{"true_false", "(true(), false())", "true false"},
        FnCase{"number", "number('3.5') + 0.5", "4"},
        FnCase{"number_invalid_nan", "string(number('zz'))", "NaN"},
        FnCase{"floor", "floor(2.7)", "2"},
        FnCase{"ceiling", "ceiling(2.1)", "3"},
        FnCase{"round_half_up", "round(2.5)", "3"},
        FnCase{"round_negative", "round(-2.5)", "-2"},
        FnCase{"abs", "abs(-4)", "4"},
        FnCase{"floor_integer_stays_integer", "floor(5) instance of "
                                              "xs:integer",
               "true"}),
    [](const ::testing::TestParamInfo<FnCase>& info) {
      return info.param.label;
    });

INSTANTIATE_TEST_SUITE_P(
    NodeFunctions, FunctionsTest,
    ::testing::Values(
        FnCase{"name", "name(<z:a xmlns:z=\"urn:z\"/>)", "z:a"},
        FnCase{"local_name", "local-name(<z:a xmlns:z=\"urn:z\"/>)", "a"},
        FnCase{"namespace_uri", "namespace-uri(<z:a xmlns:z=\"urn:z\"/>)",
               "urn:z"},
        FnCase{"name_of_text", "name(<a>t</a>/text())", ""},
        FnCase{"node_kind_fn", "node-kind(<a/>)", "element"},
        FnCase{"root_fn", "count(root(<a><b/></a>/b)/a)", "1"},
        FnCase{"data_fn", "data(<a>42</a>) + 1", "43"}),
    [](const ::testing::TestParamInfo<FnCase>& info) {
      return info.param.label;
    });

TEST(Functions, ErrorRaises) {
  std::string r = testing_util::RunQuery("error('boom')");
  EXPECT_NE(r.find("boom"), std::string::npos) << r;
}

TEST(Functions, DocAndCollection) {
  XQueryEngine engine;
  XQP_ASSERT_OK(engine.ParseAndRegister("a.xml", "<a/>").status());
  XQP_ASSERT_OK(engine.ParseAndRegister("b.xml", "<b/>").status());
  Sequence coll;
  {
    XQP_ASSERT_OK_AND_ASSIGN(auto da, engine.GetDocument("a.xml"));
    XQP_ASSERT_OK_AND_ASSIGN(auto db, engine.GetDocument("b.xml"));
    coll.push_back(Item(Node(da, 0)));
    coll.push_back(Item(Node(db, 0)));
  }
  XQP_ASSERT_OK(engine.RegisterCollection("all", std::move(coll)));
  XQP_ASSERT_OK_AND_ASSIGN(auto q,
                           engine.Compile("count(collection('all')/*)"));
  XQP_ASSERT_OK_AND_ASSIGN(Sequence result, q->Execute());
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].AsAtomic().AsInt(), 2);
  // Missing document is a dynamic error.
  XQP_ASSERT_OK_AND_ASSIGN(auto q2, engine.Compile("doc('missing.xml')"));
  EXPECT_FALSE(q2->Execute().ok());
}

TEST(Functions, PositionAndLastInPredicates) {
  EXPECT_EQ(RunAllWays("string-join(('a','b','c')[position() > 1], '')"),
            "bc");
  EXPECT_EQ(RunAllWays("('a','b','c')[last()]"), "c");
  EXPECT_EQ(RunAllWays("('a','b','c')[last() - 1]"), "b");
}

TEST(Functions, TraceIsIdentity) {
  EXPECT_EQ(RunQuery("trace((1,2), 'label')"), "1 2");
}

}  // namespace
}  // namespace xqp
