// Data integration — the paper's scenario "complex but smaller queries
// (FLWORs, aggregates, constructors)" over multiple external sources:
// join a publisher catalog with a review feed and a price list, producing
// a merged report.

#include <cstdio>

#include "engine.h"

namespace {

constexpr const char* kCatalog = R"(<bib>
  <book year="1994"><title>TCP/IP Illustrated</title>
    <publisher>Addison-Wesley</publisher><price>65.95</price></book>
  <book year="2000"><title>Data on the Web</title>
    <publisher>Morgan Kaufmann</publisher><price>39.95</price></book>
  <book year="1999"><title>The Economics of Technology</title>
    <publisher>Kluwer</publisher><price>129.95</price></book>
</bib>)";

constexpr const char* kReviews = R"(<reviews>
  <entry><title>Data on the Web</title><rating>9</rating>
    <remark>A classic on semistructured data.</remark></entry>
  <entry><title>TCP/IP Illustrated</title><rating>10</rating>
    <remark>Every packet explained.</remark></entry>
  <entry><title>Some Unrelated Book</title><rating>3</rating>
    <remark>Skip it.</remark></entry>
</reviews>)";

constexpr const char* kStores = R"(<stores>
  <store name="BitBooks"><offer title="Data on the Web" price="35.00"/>
    <offer title="TCP/IP Illustrated" price="59.90"/></store>
  <store name="PaperTrail"><offer title="Data on the Web" price="41.50"/>
    <offer title="The Economics of Technology" price="99.99"/></store>
</stores>)";

// The FLWOR join mirrors the paper's "Joins" slide:
//   for $b in document("bib.xml")//book, $p in //publisher ...
constexpr const char* kReport = R"(
  <report>{
    for $b in doc('bib.xml')//book
    let $review := doc('reviews.xml')//entry[title = $b/title]
    let $offers := doc('stores.xml')//offer[@title = $b/title]
    order by xs:double($b/price) descending
    return
      <book title="{string($b/title)}" list-price="{string($b/price)}">
        { if (exists($review))
          then <review rating="{string($review/rating)}">{
                 string($review/remark) }</review>
          else <review rating="n/a"/> }
        { for $o in $offers
          order by xs:double($o/@price)
          return <offer store="{string($o/../@name)}"
                        price="{string($o/@price)}"/> }
        <best-deal>{
          if (exists($offers))
          then min(for $o in $offers return xs:double($o/@price))
          else xs:double($b/price)
        }</best-deal>
      </book>
  }</report>)";

}  // namespace

int main() {
  using namespace xqp;
  XQueryEngine engine;
  for (auto [uri, xml] : {std::pair{"bib.xml", kCatalog},
                          std::pair{"reviews.xml", kReviews},
                          std::pair{"stores.xml", kStores}}) {
    auto doc = engine.ParseAndRegister(uri, xml);
    if (!doc.ok()) {
      std::fprintf(stderr, "%s: %s\n", uri, doc.status().ToString().c_str());
      return 1;
    }
  }

  auto compiled = engine.Compile(kReport);
  if (!compiled.ok()) {
    std::fprintf(stderr, "compile: %s\n",
                 compiled.status().ToString().c_str());
    return 1;
  }
  auto result = (*compiled)->Execute();
  if (!result.ok()) {
    std::fprintf(stderr, "execute: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  SerializeOptions pretty;
  pretty.indent = true;
  auto xml = SerializeSequence(*result, pretty);
  std::printf("%s\n", xml->c_str());

  // Aggregates across the integrated sources.
  auto stats = engine.Execute(
      "concat('books: ', count(doc('bib.xml')//book), "
      "', reviewed: ', count(doc('bib.xml')//book[title = "
      "doc('reviews.xml')//entry/title]), "
      "', avg rating: ', avg(doc('reviews.xml')//rating))");
  std::printf("\n%s\n", SerializeSequence(*stats)->c_str());
  return 0;
}
