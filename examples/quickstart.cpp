// Quickstart: parse XML, compile an XQuery, execute it on both engines,
// and inspect the optimized plan.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "engine.h"

namespace {

constexpr const char* kBibliography = R"(<bib>
  <book year="1994">
    <title>TCP/IP Illustrated</title>
    <author><last>Stevens</last><first>W.</first></author>
    <publisher>Addison-Wesley</publisher>
    <price>65.95</price>
  </book>
  <book year="2000">
    <title>Data on the Web</title>
    <author><last>Abiteboul</last><first>Serge</first></author>
    <author><last>Buneman</last><first>Peter</first></author>
    <author><last>Suciu</last><first>Dan</first></author>
    <publisher>Morgan Kaufmann</publisher>
    <price>39.95</price>
  </book>
  <book year="1999">
    <title>The Economics of Technology for Digital TV</title>
    <author><last>Gerbarg</last><first>Darcy</first></author>
    <publisher>Kluwer</publisher>
    <price>129.95</price>
  </book>
</bib>)";

}  // namespace

int main() {
  using namespace xqp;

  // 1. An engine holds documents and compiles queries.
  XQueryEngine engine;
  auto doc = engine.ParseAndRegister("bib.xml", kBibliography);
  if (!doc.ok()) {
    std::fprintf(stderr, "parse error: %s\n", doc.status().ToString().c_str());
    return 1;
  }
  std::printf("parsed bib.xml: %zu data-model nodes\n\n",
              (*doc)->NumNodes());

  // 2. Compile once, execute many times. The compiler parses, resolves
  //    names, and runs the rewrite-rule optimizer.
  const char* query =
      "for $b in doc('bib.xml')//book "
      "where $b/price < 100 "
      "order by xs:double($b/price) "
      "return <cheap year=\"{$b/@year}\">{string($b/title)}</cheap>";
  auto compiled = engine.Compile(query);
  if (!compiled.ok()) {
    std::fprintf(stderr, "compile error: %s\n",
                 compiled.status().ToString().c_str());
    return 1;
  }

  std::printf("optimized plan:\n  %s\n\n", (*compiled)->Explain().c_str());
  std::printf("rewrites applied:\n");
  for (const auto& [rule, count] : (*compiled)->rewrite_stats()) {
    std::printf("  %-24s x%d\n", rule.c_str(), count);
  }

  // 3. Execute on the lazy streaming engine (default)...
  auto result = (*compiled)->ExecuteToXml();
  if (!result.ok()) {
    std::fprintf(stderr, "execution error: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("\nlazy streaming engine:\n  %s\n", result->c_str());

  // ...and on the eager reference interpreter — same answer.
  CompiledQuery::ExecOptions eager;
  eager.use_lazy_engine = false;
  auto reference = (*compiled)->ExecuteToXml(eager);
  std::printf("eager reference engine:\n  %s\n", reference->c_str());
  std::printf("\nengines agree: %s\n",
              *result == *reference ? "yes" : "NO (bug!)");

  // 4. External variables parameterize compiled queries.
  auto param_query = engine.Compile(
      "declare variable $max external; "
      "count(doc('bib.xml')//book[price < $max])");
  CompiledQuery::ExecOptions options;
  for (double max : {50.0, 100.0, 200.0}) {
    options.variables["max"] = Sequence{Item(AtomicValue::Double(max))};
    auto count = (*param_query)->Execute(options);
    std::printf("books under %.0f: %s\n", max,
                count.value()[0].AsAtomic().Lexical().c_str());
  }
  return 0;
}
