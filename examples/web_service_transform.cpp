// Web-services message transformation — the paper's primary use case ("XML
// transformation language in Web Services: large and very complex queries,
// input message + external data sources"). This reproduces, at reduced
// width, the structure of the deck's trading-partner configuration query:
// nested FLWORs over trading partners, joins between delivery channels /
// document exchanges / transports, and conditional attribute construction.

#include <cstdio>

#include "engine.h"

namespace {

constexpr const char* kWlcConfig = R"(<wlc>
  <trading-partner name="GlobalChips" type="LOCAL" email="gc@example.com">
    <address street="1 Fab Way" city="Dresden"/>
    <client-certificate name="gc-client"/>
    <server-certificate name="gc-server"/>
    <delivery-channel name="gc-ebxml-dc" document-exchange-name="gc-ebxml-de"
        transport-name="gc-https" nonrepudiation-of-origin="true"
        nonrepudiation-of-receipt="false"/>
    <delivery-channel name="gc-rn-dc" document-exchange-name="gc-rn-de"
        transport-name="gc-http" nonrepudiation-of-origin="false"
        nonrepudiation-of-receipt="false"/>
    <document-exchange name="gc-ebxml-de" business-protocol-name="ebXML"
        protocol-version="2.0">
      <EBXML-binding delivery-semantics="OnceAndOnlyOnce" retries="3"
          retry-interval="30000" ttl="60000"
          signature-certificate-name="gc-sign"/>
    </document-exchange>
    <document-exchange name="gc-rn-de" business-protocol-name="RosettaNet"
        protocol-version="1.1">
      <RosettaNet-binding encryption-level="1" cipher-algorithm="RC5"
          retries="2" retry-interval="15000" time-out="120000"
          signature-certificate-name="gc-sign"
          encryption-certificate-name="gc-enc"/>
    </document-exchange>
    <transport name="gc-https" protocol="https" protocol-version="1.1">
      <endpoint uri="https://gc.example.com/exchange"/>
    </transport>
    <transport name="gc-http" protocol="http" protocol-version="1.1">
      <endpoint uri="http://gc.example.com/rn"/>
    </transport>
  </trading-partner>
  <trading-partner name="BoardHouse" type="REMOTE" email="bh@example.com">
    <client-certificate name="bh-client"/>
    <delivery-channel name="bh-dc" document-exchange-name="bh-de"
        transport-name="bh-https" nonrepudiation-of-origin="true"
        nonrepudiation-of-receipt="true"/>
    <document-exchange name="bh-de" business-protocol-name="ebXML"
        protocol-version="2.0">
      <EBXML-binding delivery-semantics="BestEffort" retries="5"
          retry-interval="60000"/>
    </document-exchange>
    <transport name="bh-https" protocol="https" protocol-version="1.0">
      <endpoint uri="https://bh.example.com/in"/>
    </transport>
  </trading-partner>
</wlc>)";

// The transformation: for each trading partner, join its delivery channels
// with the matching document exchange and transport, emit protocol-specific
// bindings with conditional attributes (the deck's
// "if(xf:empty(...)) then () else attribute retry-interval {...}" idiom).
constexpr const char* kTransform = R"(
let $wlc := doc('wlc.xml')/wlc
return
<trading-partner-list>{
  for $tp in $wlc/trading-partner
  return
    <trading-partner name="{$tp/@name}" type="{$tp/@type}"
                     email="{$tp/@email}">
    {
      for $dc in $tp/delivery-channel
      for $de in $tp/document-exchange
      for $t in $tp/transport
      where $dc/@document-exchange-name = $de/@name
        and $dc/@transport-name = $t/@name
        and $de/@business-protocol-name = 'ebXML'
      return
        <ebxml-binding name="{$dc/@name}"
            business-protocol-version="{$de/@protocol-version}"
            is-signature-required="{$dc/@nonrepudiation-of-origin}"
            delivery-semantics="{$de/EBXML-binding/@delivery-semantics}">
        { if (empty($de/EBXML-binding/@ttl)) then ()
          else attribute persist-duration {
            concat($de/EBXML-binding/@ttl div 1000, ' seconds') } }
        { if (empty($de/EBXML-binding/@retries)) then ()
          else $de/EBXML-binding/@retries }
        { if (empty($de/EBXML-binding/@retry-interval)) then ()
          else attribute retry-interval {
            concat($de/EBXML-binding/@retry-interval div 1000, ' seconds') } }
          <transport protocol="{$t/@protocol}"
                     protocol-version="{$t/@protocol-version}"
                     endpoint="{$t/endpoint[1]/@uri}">
            <authentication
                client-authentication="{
                  if (empty($tp/client-certificate)) then 'NONE'
                  else 'SSL_CERT_MUTUAL' }"
                server-authentication="{
                  if ($t/@protocol = 'http') then 'NONE' else 'SSL_CERT' }"
                server-certificate-name="{
                  if ($tp/@type = 'REMOTE')
                  then string($tp/server-certificate/@name) else '' }"/>
          </transport>
        </ebxml-binding>
    }
    {
      for $dc in $tp/delivery-channel
      for $de in $tp/document-exchange
      for $t in $tp/transport
      where $dc/@document-exchange-name = $de/@name
        and $dc/@transport-name = $t/@name
        and $de/@business-protocol-name = 'RosettaNet'
      return
        <rosettanet-binding name="{$dc/@name}"
            cipher-algorithm="{$de/RosettaNet-binding/@cipher-algorithm}"
            encryption-level="{
              if ($de/RosettaNet-binding/@encryption-level = 0) then 'NONE'
              else if ($de/RosettaNet-binding/@encryption-level = 1)
                   then 'PAYLOAD' else 'ENTIRE_PAYLOAD' }">
        { if (empty($de/RosettaNet-binding/@time-out)) then ()
          else attribute process-timeout {
            concat($de/RosettaNet-binding/@time-out div 1000, ' seconds') } }
          <transport protocol="{$t/@protocol}"
                     endpoint="{$t/endpoint[1]/@uri}"/>
        </rosettanet-binding>
    }
    </trading-partner>
}</trading-partner-list>)";

}  // namespace

int main() {
  using namespace xqp;
  XQueryEngine engine;
  auto doc = engine.ParseAndRegister("wlc.xml", kWlcConfig);
  if (!doc.ok()) {
    std::fprintf(stderr, "parse: %s\n", doc.status().ToString().c_str());
    return 1;
  }
  auto compiled = engine.Compile(kTransform);
  if (!compiled.ok()) {
    std::fprintf(stderr, "compile: %s\n",
                 compiled.status().ToString().c_str());
    return 1;
  }
  std::printf("rewrites applied during compilation:\n");
  for (const auto& [rule, count] : (*compiled)->rewrite_stats()) {
    std::printf("  %-24s x%d\n", rule.c_str(), count);
  }
  auto result = (*compiled)->Execute();
  if (!result.ok()) {
    std::fprintf(stderr, "execute: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  SerializeOptions pretty;
  pretty.indent = true;
  auto xml = SerializeSequence(*result, pretty);
  std::printf("\n%s\n", xml->c_str());
  return 0;
}
