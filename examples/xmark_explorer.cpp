// XMark explorer: generates an auction document, runs the adapted XMark
// suite on both engines, and demonstrates the structural-join machinery on
// twig-shaped queries.
//
// Usage: xmark_explorer [scale]   (default 0.05)

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "engine.h"
#include "join/tag_index.h"
#include "join/twig.h"
#include "join/twig_planner.h"
#include "xmark/generator.h"
#include "xmark/queries.h"

namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xqp;
  XMarkOptions options;
  options.scale = argc > 1 ? std::atof(argv[1]) : 0.05;

  auto t0 = std::chrono::steady_clock::now();
  std::string xml = GenerateXMarkXml(options);
  double gen_ms = MillisSince(t0);

  XQueryEngine engine;
  t0 = std::chrono::steady_clock::now();
  auto doc = engine.ParseAndRegister("xmark.xml", xml);
  if (!doc.ok()) {
    std::fprintf(stderr, "parse: %s\n", doc.status().ToString().c_str());
    return 1;
  }
  double parse_ms = MillisSince(t0);
  std::printf(
      "xmark scale %.3f: %zu KiB xml (generated in %.1f ms), "
      "%zu nodes (parsed in %.1f ms), %zu KiB node table\n\n",
      options.scale, xml.size() / 1024, gen_ms, (*doc)->NumNodes(), parse_ms,
      (*doc)->MemoryUsage() / 1024);

  std::printf("%-4s %-45s %9s %9s %7s\n", "id", "title", "lazy(ms)",
              "eager(ms)", "items");
  for (const XMarkQuery& q : XMarkQuerySet()) {
    auto compiled = engine.Compile(q.text);
    if (!compiled.ok()) {
      std::printf("%-4s compile error: %s\n", q.id,
                  compiled.status().ToString().c_str());
      continue;
    }
    CompiledQuery::ExecOptions lazy;
    CompiledQuery::ExecOptions eager;
    eager.use_lazy_engine = false;

    t0 = std::chrono::steady_clock::now();
    auto lazy_result = (*compiled)->Execute(lazy);
    double lazy_ms = MillisSince(t0);

    t0 = std::chrono::steady_clock::now();
    auto eager_result = (*compiled)->Execute(eager);
    double eager_ms = MillisSince(t0);

    if (!lazy_result.ok()) {
      std::printf("%-4s error: %s\n", q.id,
                  lazy_result.status().ToString().c_str());
      continue;
    }
    std::printf("%-4s %-45.45s %9.2f %9.2f %7zu\n", q.id, q.title, lazy_ms,
                eager_ms, lazy_result->size());
  }

  // Twig-join demonstration: compile a path query to a twig pattern and run
  // it through the three executors.
  std::printf("\n--- structural/twig joins ---\n");
  const char* twig_query = "//open_auction[bidder]/seller";
  auto compiled = engine.Compile(twig_query);
  auto pattern = TwigPlanner::Compile(*(*compiled)->module().body);
  if (!pattern.ok()) {
    std::fprintf(stderr, "twig planner: %s\n",
                 pattern.status().ToString().c_str());
    return 1;
  }
  std::printf("query %s compiles to twig %s\n", twig_query,
              pattern->ToString().c_str());

  TagIndex index(*doc);
  struct Algo {
    const char* name;
    Result<std::vector<NodeIndex>> (*run)(const TagIndex&, const TwigPattern&,
                                          TwigStats*);
  };
  for (const auto& [name, run] :
       {std::pair{"TwigStack", &TwigStackMatch},
        std::pair{"BinaryJoins", &BinaryJoinMatch}}) {
    TwigStats stats{};
    t0 = std::chrono::steady_clock::now();
    auto matches = run(index, *pattern, &stats);
    double ms = MillisSince(t0);
    std::printf("  %-12s %5zu matches, %6llu intermediate pairs, %7.2f ms\n",
                name, matches.value().size(),
                static_cast<unsigned long long>(stats.intermediate_pairs), ms);
  }
  {
    TwigStats stats{};
    t0 = std::chrono::steady_clock::now();
    auto matches = NavigationMatch(**doc, *pattern, &stats);
    std::printf("  %-12s %5zu matches, %25s %7.2f ms\n", "Navigation",
                matches.value().size(), "", MillisSince(t0));
  }
  return 0;
}
