// XML message broker — the paper's second use-case scenario: "simple path
// expressions, single input message, small data sets, transient and
// streaming data (no indexes)".
//
// A broker holds a set of compiled route predicates; each incoming message
// is parsed once and matched against every route. Routes use the lazy
// engine, so a match is decided as soon as the relevant part of the message
// has been seen.

#include <cstdio>
#include <string>
#include <vector>

#include "engine.h"

namespace {

struct Route {
  const char* name;
  const char* predicate;  // Boolean XQuery over the message (context item).
};

constexpr Route kRoutes[] = {
    {"orders-eu",
     "exists(/order[customer/@region = 'EU'])"},
    {"orders-large",
     "boolean(/order/total > 1000)"},
    {"alerts",
     "exists(//alert[@severity = ('high', 'critical')])"},
    {"audit-everything", "true()"},
    {"rosettanet",
     "exists(/*[namespace-uri(.) = 'urn:rosettanet'])"},
};

constexpr const char* kMessages[] = {
    R"(<order id="1"><customer name="ACME" region="EU"/><total>250</total></order>)",
    R"(<order id="2"><customer name="Initech" region="US"/><total>8000</total></order>)",
    R"(<alert severity="high"><msg>queue depth exceeded</msg></alert>)",
    R"(<heartbeat at="2004-09-14T12:00:00"/>)",
    R"(<rn:pip xmlns:rn="urn:rosettanet"><rn:action>3A4</rn:action></rn:pip>)",
    R"(<order id="3"><customer name="Umbrella" region="EU"/><total>4000</total></order>)",
};

}  // namespace

int main() {
  using namespace xqp;
  XQueryEngine engine;

  // Compile every route once, up front.
  std::vector<std::pair<std::string, std::unique_ptr<CompiledQuery>>> routes;
  for (const Route& route : kRoutes) {
    auto compiled = engine.Compile(route.predicate);
    if (!compiled.ok()) {
      std::fprintf(stderr, "route %s failed to compile: %s\n", route.name,
                   compiled.status().ToString().c_str());
      return 1;
    }
    routes.emplace_back(route.name, std::move(compiled).value());
  }

  // Process the message stream.
  int message_id = 0;
  for (const char* xml : kMessages) {
    ++message_id;
    auto doc = Document::Parse(xml);
    if (!doc.ok()) {
      std::printf("message %d: REJECTED (%s)\n", message_id,
                  doc.status().ToString().c_str());
      continue;
    }
    std::printf("message %d:", message_id);
    CompiledQuery::ExecOptions options;
    options.has_context_item = true;
    options.context_item = Item(Node(*doc, 0));
    bool any = false;
    for (auto& [name, query] : routes) {
      auto verdict = query->Execute(options);
      if (!verdict.ok()) {
        std::printf(" [%s: error %s]", name.c_str(),
                    verdict.status().ToString().c_str());
        continue;
      }
      auto matched = EffectiveBooleanValue(*verdict);
      if (matched.ok() && matched.value()) {
        std::printf(" ->%s", name.c_str());
        any = true;
      }
    }
    if (!any) std::printf(" (dropped)");
    std::printf("\n");
  }

  // A broker can also transform while routing: enrich matched orders.
  auto transform = engine.Compile(
      "<routed at=\"broker-7\">"
      "<summary customer=\"{string(/order/customer/@name)}\" "
      "total=\"{string(/order/total)}\"/>"
      "{/order}"
      "</routed>");
  auto doc = Document::Parse(kMessages[1]);
  CompiledQuery::ExecOptions options;
  options.has_context_item = true;
  options.context_item = Item(Node(*doc, 0));
  auto out = (*transform)->ExecuteToXml(options);
  std::printf("\nenriched copy of message 2:\n%s\n", out->c_str());
  return 0;
}
