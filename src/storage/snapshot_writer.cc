#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "base/fault.h"
#include "storage/crc32c.h"
#include "storage/snapshot.h"
#include "storage/snapshot_format.h"

namespace xqp {
namespace storage {
namespace {

/// Little-endian-agnostic byte sink for the variable-length sections. All
/// multi-byte fields are written by memcpy in native order — the header's
/// endian tag rejects cross-endian files, so no swapping is ever needed.
class ByteSink {
 public:
  void PutU32(uint32_t v) { PutRaw(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutRaw(&v, sizeof(v)); }
  void PutBytes(std::string_view s) { PutRaw(s.data(), s.size()); }
  void PutRaw(const void* p, size_t n) {
    buf_.append(static_cast<const char*>(p), n);
  }

  std::string Take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  std::string buf_;
};

void PutQName(ByteSink* out, const QName& q) {
  out->PutU32(static_cast<uint32_t>(q.uri.size()));
  out->PutU32(static_cast<uint32_t>(q.prefix.size()));
  out->PutU32(static_cast<uint32_t>(q.local.size()));
  out->PutBytes(q.uri);
  out->PutBytes(q.prefix);
  out->PutBytes(q.local);
}

struct Section {
  SectionId id;
  uint64_t count;
  std::string payload;
};

/// Serializes one string pool as (index, arena) section pair. Ids are
/// positional, so the roundtrip preserves every StringPool::Id bit-exactly.
void AppendPoolSections(const StringPool& pool, SectionId index_id,
                        SectionId arena_id, std::vector<Section>* sections) {
  ByteSink index;
  ByteSink arena;
  for (StringPool::Id id = 0; id < pool.size(); ++id) {
    std::string_view s = pool.Get(id);
    PoolEntry e{arena.size(), static_cast<uint32_t>(s.size()), 0};
    index.PutRaw(&e, sizeof(e));
    arena.PutBytes(s);
  }
  sections->push_back(Section{index_id, pool.size(), index.Take()});
  sections->push_back(Section{arena_id, arena.size(), arena.Take()});
}

Status WriteAll(int fd, const std::string& bytes, const std::string& name) {
  size_t done = 0;
  while (done < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + done, bytes.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("write " + name + ": " +
                             std::string(std::strerror(errno)));
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

uint64_t HashContent(std::string_view bytes) {
  // FNV-1a, 64-bit.
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

Result<std::string> SerializeSnapshot(const SnapshotInput& input) {
  if (input.doc == nullptr) {
    return Status::InvalidArgument("SerializeSnapshot: null document");
  }
  const Document& doc = *input.doc;
  if (doc.NumNodes() == 0) {
    return Status::InvalidArgument("SerializeSnapshot: empty document");
  }

  std::vector<Section> sections;

  // --- Document sections (always present). ------------------------------
  {
    std::string nodes(reinterpret_cast<const char*>(&doc.node(0)),
                      doc.NumNodes() * sizeof(NodeRecord));
    sections.push_back(Section{SectionId::kNodes, doc.NumNodes(),
                               std::move(nodes)});
  }
  {
    ByteSink names;
    for (uint32_t id = 0; id < doc.NumNames(); ++id) {
      PutQName(&names, doc.name_at(id));
    }
    sections.push_back(Section{SectionId::kNames, doc.NumNames(),
                               names.Take()});
  }
  AppendPoolSections(doc.pool(), SectionId::kPoolIndex, SectionId::kPoolArena,
                     &sections);
  {
    // Namespace declarations in node order (deterministic bytes; the live
    // map is unordered).
    ByteSink ns;
    uint64_t entries = 0;
    for (NodeIndex i = 0; i < doc.NumNodes(); ++i) {
      const auto* decls = doc.NamespaceDecls(i);
      if (decls == nullptr || decls->empty()) continue;
      ns.PutU32(i);
      ns.PutU32(static_cast<uint32_t>(decls->size()));
      for (const Document::NsDecl& d : *decls) {
        ns.PutU32(static_cast<uint32_t>(d.prefix.size()));
        ns.PutU32(static_cast<uint32_t>(d.uri.size()));
        ns.PutBytes(d.prefix);
        ns.PutBytes(d.uri);
      }
      ++entries;
    }
    sections.push_back(Section{SectionId::kNsDecls, entries, ns.Take()});
  }
  sections.push_back(Section{SectionId::kBaseUri, doc.base_uri().size(),
                             std::string(doc.base_uri())});

  // --- Token sections (optional). ---------------------------------------
  uint32_t flags = 0;
  if (input.tokens != nullptr) {
    flags |= kFlagHasTokens;
    const TokenStream& ts = *input.tokens;
    ByteSink tokens;
    for (size_t i = 0; i < ts.size(); ++i) {
      const Token& t = ts.token(i);
      tokens.PutRaw(&t, sizeof(Token));
    }
    sections.push_back(Section{SectionId::kTokens, ts.size(), tokens.Take()});
    ByteSink names;
    for (uint32_t id = 0; id < ts.NumNames(); ++id) {
      PutQName(&names, ts.name_at(id));
    }
    sections.push_back(Section{SectionId::kTokenNames, ts.NumNames(),
                               names.Take()});
    AppendPoolSections(ts.pool(), SectionId::kTokenPoolIndex,
                       SectionId::kTokenPoolArena, &sections);
  }

  // --- Index sections (optional). ---------------------------------------
  uint32_t value_kinds = 0;
  if (input.indexes != nullptr) {
    flags |= kFlagHasIndexes;
    const DocumentIndexes& idx = *input.indexes;
    value_kinds = idx.value_kinds();
    const size_t n_syn = idx.NumSynopsisNodes();
    ByteSink syn;
    for (size_t s = 0; s < n_syn; ++s) {
      const DocumentIndexes::SynopsisNode& sn =
          idx.synopsis_node(static_cast<int32_t>(s));
      SynopsisRec rec{sn.name_id, sn.parent, static_cast<uint32_t>(sn.kind)};
      syn.PutRaw(&rec, sizeof(rec));
    }
    sections.push_back(Section{SectionId::kSynopsis, n_syn, syn.Take()});

    // Postings as CSR: row starts, then the concatenated lists.
    ByteSink offsets;
    ByteSink data;
    uint64_t total = 0;
    for (size_t s = 0; s < n_syn; ++s) {
      offsets.PutU64(total);
      const std::vector<NodeIndex>& row =
          idx.postings(static_cast<int32_t>(s));
      data.PutRaw(row.data(), row.size() * sizeof(NodeIndex));
      total += row.size();
    }
    offsets.PutU64(total);
    sections.push_back(Section{SectionId::kPostingsOffsets, n_syn + 1,
                               offsets.Take()});
    sections.push_back(Section{SectionId::kPostingsData, total, data.Take()});

    if (value_kinds != 0) {
      ByteSink values;
      for (size_t s = 0; s < n_syn; ++s) {
        const DocumentIndexes::ValuePostings* vp =
            idx.values(static_cast<int32_t>(s));
        uint32_t vflags = (vp->indexable ? 1u : 0u) |
                          (vp->all_numeric ? 2u : 0u);
        values.PutU32(vflags);
        values.PutU32(static_cast<uint32_t>(vp->by_string.size()));
        values.PutU32(static_cast<uint32_t>(vp->by_number.size()));
        for (const auto& [str, node] : vp->by_string) {
          values.PutU32(static_cast<uint32_t>(str.size()));
          values.PutU32(node);
          values.PutBytes(str);
        }
        for (const auto& [num, node] : vp->by_number) {
          uint64_t bits;
          static_assert(sizeof(bits) == sizeof(num));
          std::memcpy(&bits, &num, sizeof(bits));
          values.PutU64(bits);
          values.PutU32(node);
        }
      }
      sections.push_back(Section{SectionId::kValues, n_syn, values.Take()});
    }
  }

  // --- Layout: header, table, 8-byte-aligned payloads. ------------------
  const size_t table_bytes = sections.size() * sizeof(SectionEntry);
  uint64_t cursor = sizeof(SnapshotHeader) + table_bytes;
  std::vector<SectionEntry> table;
  table.reserve(sections.size());
  for (const Section& s : sections) {
    cursor = (cursor + 7) & ~uint64_t{7};
    table.push_back(SectionEntry{static_cast<uint32_t>(s.id),
                                 Crc32c(s.payload.data(), s.payload.size()),
                                 cursor, s.payload.size(), s.count});
    cursor += s.payload.size();
  }

  SnapshotHeader header{};
  std::memcpy(header.magic, kSnapshotMagic, sizeof(header.magic));
  header.version = kSnapshotVersion;
  header.endian = kEndianTag;
  header.arch_bits = 8 * sizeof(void*);
  header.node_record_size = sizeof(NodeRecord);
  header.token_size = sizeof(Token);
  header.flags = flags;
  header.value_kinds = value_kinds;
  header.section_count = static_cast<uint32_t>(sections.size());
  header.file_size = cursor;
  header.content_hash = input.content_hash;
  header.content_bytes = input.content_bytes;
  header.table_crc = Crc32c(table.data(), table_bytes);
  header.header_crc = 0;
  header.header_crc = Crc32c(&header, sizeof(header));

  std::string out;
  out.reserve(cursor);
  out.append(reinterpret_cast<const char*>(&header), sizeof(header));
  out.append(reinterpret_cast<const char*>(table.data()), table_bytes);
  for (size_t i = 0; i < sections.size(); ++i) {
    out.resize(table[i].offset, '\0');  // Alignment padding.
    out.append(sections[i].payload);
  }
  return out;
}

Status WriteSnapshotFile(const std::string& path, const SnapshotInput& input) {
  XQP_ASSIGN_OR_RETURN(std::string bytes, SerializeSnapshot(input));

  // Stage 1 of the "storage.write" site: before the temp file exists.
  if (fault::Armed()) {
    XQP_RETURN_NOT_OK(fault::MaybeInject("storage.write"));
  }

  // Unique temp name in the target directory so the final rename is
  // same-filesystem atomic; O_EXCL refuses to clobber a concurrent writer.
  std::string tmp = path + ".tmp." + std::to_string(::getpid());
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IoError("create " + tmp + ": " +
                           std::string(std::strerror(errno)));
  }
  auto fail = [&](Status st) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return st;
  };

  Status written = WriteAll(fd, bytes, tmp);
  if (!written.ok()) return fail(std::move(written));
  // Stage 2: full payload written, not yet durable — a fault here models a
  // crash before fsync; the temp file must vanish, the target survive.
  if (fault::Armed()) {
    Status injected = fault::MaybeInject("storage.write");
    if (!injected.ok()) return fail(std::move(injected));
  }
  if (::fsync(fd) != 0) {
    return fail(Status::IoError("fsync " + tmp + ": " +
                                std::string(std::strerror(errno))));
  }
  if (::close(fd) != 0) {
    fd = -1;
    ::unlink(tmp.c_str());
    return Status::IoError("close " + tmp + ": " +
                           std::string(std::strerror(errno)));
  }
  fd = -1;

  // Stage 3: durable temp, not yet published.
  if (fault::Armed()) {
    Status injected = fault::MaybeInject("storage.write");
    if (!injected.ok()) {
      ::unlink(tmp.c_str());
      return injected;
    }
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    Status st = Status::IoError("rename " + tmp + " -> " + path + ": " +
                                std::string(std::strerror(errno)));
    ::unlink(tmp.c_str());
    return st;
  }

  // Persist the directory entry so the rename survives a crash. Failure
  // here is not fatal to correctness (the worst case is the old file after
  // a crash), but surface it: callers treat snapshot writes as best-effort.
  std::string dir = ".";
  if (size_t slash = path.find_last_of('/'); slash != std::string::npos) {
    dir = slash == 0 ? "/" : path.substr(0, slash);
  }
  int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return Status::OK();
}

}  // namespace storage
}  // namespace xqp
