#ifndef XQP_STORAGE_CRC32C_H_
#define XQP_STORAGE_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace xqp {
namespace storage {

/// CRC-32C (Castagnoli, polynomial 0x1EDC6A41 reflected) over `size` bytes,
/// the checksum guarding every snapshot section. Uses the SSE4.2 / ARMv8
/// CRC instructions when the running CPU has them (detected once at first
/// use) and a slice-by-8-free table fallback otherwise; both paths produce
/// identical values, so snapshots written on one machine verify on another.
uint32_t Crc32c(const void* data, size_t size);

/// Incremental form: feed `crc` the previous return value (seed 0).
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t size);

/// "hw" or "sw" — which implementation Crc32c dispatches to on this CPU
/// (diagnostics / bench labels).
const char* Crc32cImplName();

}  // namespace storage
}  // namespace xqp

#endif  // XQP_STORAGE_CRC32C_H_
