#ifndef XQP_STORAGE_SNAPSHOT_FORMAT_H_
#define XQP_STORAGE_SNAPSHOT_FORMAT_H_

#include <cstdint>
#include <type_traits>

#include "tokens/token.h"
#include "xml/document.h"

namespace xqp {
namespace storage {

/// On-disk layout of a document snapshot (DM3 of the paper's data-
/// management life cycle): one offset-based binary file freezing a loaded
/// document — node table, string-pool arena, token stream, and its
/// path-synopsis / value indexes — for O(1) mmap reopen with zero parse
/// cost.
///
///   [SnapshotHeader][SectionEntry x section_count][section payloads...]
///
/// Every section payload starts at an 8-byte-aligned offset and carries a
/// CRC-32C; the header checksums itself and the section table separately,
/// so a torn or bit-rotted file is detected before any pointer into the
/// mapping is handed out. POD sections (node records, tokens, pool entry
/// tables, postings) are used zero-copy straight out of the mapping;
/// variable-length sections (names, namespace declarations, value
/// postings) are bounds-checked serialized streams materialized on load.
///
/// The loader treats every field as hostile: magic/version/endianness/
/// record-layout checks, bounds validation of each offset and index
/// against the mapped extent, structural consistency replay of the node
/// table, and per-section CRCs — any failure is kSnapshotCorrupt, never a
/// crash, and callers degrade to re-ingesting the original XML.

inline constexpr char kSnapshotMagic[8] = {'X', 'Q', 'P', 'S',
                                           'N', 'A', 'P', '1'};
inline constexpr uint32_t kSnapshotVersion = 1;
/// Written as 0x01020304 by the native byte order; a swapped value on read
/// means the file came from an other-endian machine and is rejected
/// (snapshots are a same-architecture cache, not an interchange format).
inline constexpr uint32_t kEndianTag = 0x01020304;

enum SnapshotFlags : uint32_t {
  kFlagHasTokens = 1u << 0,
  kFlagHasIndexes = 1u << 1,
};

/// Section identifiers. Required document sections are 1..6; token
/// sections exist iff kFlagHasTokens, index sections iff kFlagHasIndexes
/// (kValues additionally requires value_kinds != 0).
enum class SectionId : uint32_t {
  kNodes = 1,           // NodeRecord[count], zero-copy
  kNames = 2,           // serialized QName table (count entries)
  kPoolIndex = 3,       // PoolEntry[count] into kPoolArena
  kPoolArena = 4,       // raw string bytes, zero-copy
  kNsDecls = 5,         // serialized per-element namespace declarations
  kBaseUri = 6,         // raw bytes
  kTokens = 7,          // Token[count], the frozen TokenStream
  kTokenNames = 8,      // serialized QName table
  kTokenPoolIndex = 9,  // PoolEntry[count] into kTokenPoolArena
  kTokenPoolArena = 10, // raw string bytes, zero-copy
  kSynopsis = 11,       // SynopsisRec[count] (children rebuilt from parents)
  kPostingsOffsets = 12,  // uint64[count_synopsis + 1], CSR row starts
  kPostingsData = 13,   // NodeIndex[count], CSR payload
  kValues = 14,         // serialized ValuePostings per synopsis node
};

struct SnapshotHeader {
  char magic[8];
  uint32_t version;
  uint32_t endian;
  uint32_t arch_bits;         // 8 * sizeof(void*) of the writing process.
  uint32_t node_record_size;  // sizeof(NodeRecord) layout check.
  uint32_t token_size;        // sizeof(Token) layout check.
  uint32_t flags;             // SnapshotFlags.
  uint32_t value_kinds;       // IndexValueKinds the indexes were built with.
  uint32_t section_count;
  uint64_t file_size;     // Total bytes; a shorter mapping is a torn write.
  uint64_t content_hash;  // FNV-1a of the source XML (0 = unknown).
  uint64_t content_bytes; // Length of the source XML (0 = unknown).
  uint32_t table_crc;     // CRC-32C of the section table.
  uint32_t header_crc;    // CRC-32C of this struct with header_crc zeroed.
};
static_assert(std::is_trivially_copyable_v<SnapshotHeader>);
static_assert(sizeof(SnapshotHeader) == 72);

struct SectionEntry {
  uint32_t id;     // SectionId.
  uint32_t crc;    // CRC-32C of the payload bytes.
  uint64_t offset; // From file start; 8-byte aligned.
  uint64_t size;   // Payload bytes.
  uint64_t count;  // Element count (POD arrays) or entry count (streams).
};
static_assert(std::is_trivially_copyable_v<SectionEntry>);
static_assert(sizeof(SectionEntry) == 32);

/// One pooled string: `length` bytes at `offset` inside the arena section.
struct PoolEntry {
  uint64_t offset;
  uint32_t length;
  uint32_t reserved;
};
static_assert(std::is_trivially_copyable_v<PoolEntry>);
static_assert(sizeof(PoolEntry) == 16);

/// One path-synopsis node. Children lists are not stored: synopsis ids are
/// assigned in first-appearance preorder, so appending each id to its
/// parent's children in id order reproduces the built structure exactly.
struct SynopsisRec {
  uint32_t name_id;
  int32_t parent;  // -1 for the root synopsis node.
  uint32_t kind;   // NodeKind, widened for alignment.
};
static_assert(std::is_trivially_copyable_v<SynopsisRec>);
static_assert(sizeof(SynopsisRec) == 12);

// The zero-copy sections depend on these layouts being stable within one
// build; the header records the sizes so a snapshot written by a binary
// with a different layout is rejected, not misread.
static_assert(std::is_trivially_copyable_v<NodeRecord>);
static_assert(std::is_trivially_copyable_v<Token>);

}  // namespace storage
}  // namespace xqp

#endif  // XQP_STORAGE_SNAPSHOT_FORMAT_H_
