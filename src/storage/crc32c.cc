#include "storage/crc32c.h"

#include <atomic>
#include <cstring>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define XQP_CRC32C_X86 1
#include <nmmintrin.h>
#elif defined(__aarch64__) && defined(__ARM_FEATURE_CRC32)
#define XQP_CRC32C_ARM 1
#include <arm_acle.h>
#endif

namespace xqp {
namespace storage {
namespace {

/// Software fallback: standard byte-at-a-time table for the Castagnoli
/// polynomial, generated at first use. ~400MB/s — the validation pass is
/// still far cheaper than re-parsing the XML it replaces.
struct SwTable {
  uint32_t t[256];
  SwTable() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? (0x82F63B78u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
  }
};

uint32_t SwExtend(uint32_t crc, const uint8_t* p, size_t n) {
  static const SwTable table;
  uint32_t c = ~crc;
  for (size_t i = 0; i < n; ++i) {
    c = table.t[(c ^ p[i]) & 0xff] ^ (c >> 8);
  }
  return ~c;
}

#if defined(XQP_CRC32C_X86)

__attribute__((target("sse4.2"))) uint32_t HwExtend(uint32_t crc,
                                                    const uint8_t* p,
                                                    size_t n) {
  uint64_t c = ~crc;
  while (n >= 8) {
    uint64_t word;
    std::memcpy(&word, p, 8);
    c = _mm_crc32_u64(c, word);
    p += 8;
    n -= 8;
  }
  uint32_t c32 = static_cast<uint32_t>(c);
  while (n > 0) {
    c32 = _mm_crc32_u8(c32, *p++);
    --n;
  }
  return ~c32;
}

bool HwAvailable() { return __builtin_cpu_supports("sse4.2"); }

#elif defined(XQP_CRC32C_ARM)

uint32_t HwExtend(uint32_t crc, const uint8_t* p, size_t n) {
  uint32_t c = ~crc;
  while (n >= 8) {
    uint64_t word;
    std::memcpy(&word, p, 8);
    c = __crc32cd(c, word);
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    c = __crc32cb(c, *p++);
    --n;
  }
  return ~c;
}

// __ARM_FEATURE_CRC32 means the compiler already targets a CPU with the
// CRC extension, so no runtime probe is needed.
bool HwAvailable() { return true; }

#else

uint32_t HwExtend(uint32_t crc, const uint8_t* p, size_t n) {
  return SwExtend(crc, p, n);
}
bool HwAvailable() { return false; }

#endif

/// One-time dispatch: 0 = undecided, 1 = hardware, 2 = software.
std::atomic<int> g_impl{0};

int Impl() {
  int impl = g_impl.load(std::memory_order_relaxed);
  if (impl == 0) {
    impl = HwAvailable() ? 1 : 2;
    g_impl.store(impl, std::memory_order_relaxed);
  }
  return impl;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t size) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  return Impl() == 1 ? HwExtend(crc, p, size) : SwExtend(crc, p, size);
}

uint32_t Crc32c(const void* data, size_t size) {
  return Crc32cExtend(0, data, size);
}

const char* Crc32cImplName() { return Impl() == 1 ? "hw" : "sw"; }

}  // namespace storage
}  // namespace xqp
