#ifndef XQP_STORAGE_SNAPSHOT_H_
#define XQP_STORAGE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "base/status.h"
#include "index/document_indexes.h"
#include "tokens/token_stream.h"
#include "xml/document.h"

namespace xqp {
namespace storage {

/// Persistent document snapshots — the DM3 storage milestone. A snapshot
/// freezes a loaded document (node table, string pool, optional token
/// stream, optional path/value indexes) into one offset-based binary file
/// (format: snapshot_format.h) that reopens via mmap with zero parse cost.
///
/// Writing is crash-atomic: serialize to a unique temp file, fsync, rename
/// over the target, fsync the directory — a reader either sees the old
/// file, the new file, or none, never a torn one. Reading is paranoid: the
/// loader validates magic/version/endianness/record layout, checksums the
/// header, section table, and every section (CRC-32C), bounds-checks every
/// offset and index, and structurally replays the node table before any
/// pointer into the mapping escapes. Validation failures are
/// kSnapshotCorrupt — callers (XQueryEngine::ParseAndRegister) degrade to
/// re-ingesting the original XML.
///
/// Fault sites: "storage.write" (each stage of the atomic write protocol),
/// "storage.map" (the mmap itself), "storage.crc" (each checksum pass).

/// What to freeze. `doc` is required; `tokens` and `indexes` ride along
/// when present (the engine snapshots indexes so cold start skips the
/// rebuild). `content_hash`/`content_bytes` identify the source XML
/// (HashContent / length) for staleness detection; 0 = unknown.
struct SnapshotInput {
  const Document* doc = nullptr;
  const TokenStream* tokens = nullptr;
  const DocumentIndexes* indexes = nullptr;
  uint64_t content_hash = 0;
  uint64_t content_bytes = 0;
};

/// FNV-1a over `bytes`; the source-content fingerprint stored in the
/// header so a snapshot of superseded XML is detected as stale, not served.
uint64_t HashContent(std::string_view bytes);

/// Serializes `input` into the snapshot byte format (in memory).
Result<std::string> SerializeSnapshot(const SnapshotInput& input);

/// Serializes and writes `path` crash-atomically (temp + fsync + rename +
/// directory fsync). On any failure — including an injected
/// "storage.write" fault at any stage — no partial file is left visible
/// and any previous snapshot at `path` survives untouched.
Status WriteSnapshotFile(const std::string& path, const SnapshotInput& input);

/// A validated, opened snapshot. `document` views the mapping zero-copy
/// (node table + pooled strings) and keeps it alive; `indexes`/`tokens`
/// are materialized copies, present when the snapshot carried them.
struct LoadedSnapshot {
  std::shared_ptr<const Document> document;
  std::shared_ptr<const DocumentIndexes> indexes;  // Null when absent.
  std::shared_ptr<const TokenStream> tokens;       // Null when absent.
  uint32_t value_kinds = 0;    // Families `indexes` was built with.
  uint64_t content_hash = 0;   // Source-XML fingerprint (0 = unknown).
  uint64_t content_bytes = 0;
  uint64_t mapped_bytes = 0;   // File size; charged to the governor.
};

/// mmaps `path` and validates + adopts it. kIoError when the file cannot
/// be opened or mapped; kSnapshotCorrupt when it fails any validation.
Result<LoadedSnapshot> OpenSnapshot(const std::string& path);

/// Same validation pipeline over an in-memory buffer (tests, fuzzing —
/// no filesystem involved). The buffer is the backing store: the returned
/// document holds `bytes` alive.
Result<LoadedSnapshot> OpenSnapshotBuffer(
    std::shared_ptr<const std::string> bytes);

}  // namespace storage
}  // namespace xqp

#endif  // XQP_STORAGE_SNAPSHOT_H_
