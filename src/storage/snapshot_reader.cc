#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "base/fault.h"
#include "base/limits.h"
#include "storage/crc32c.h"
#include "storage/snapshot.h"
#include "storage/snapshot_format.h"

namespace xqp {
namespace storage {
namespace {

Status Corrupt(std::string what) {
  return Status::SnapshotCorrupt(std::move(what));
}

/// Bounds-checked reader over one serialized section. Every getter reports
/// failure instead of advancing past the end, so a forged length field can
/// never walk a pointer out of the mapping.
class Cursor {
 public:
  Cursor(const uint8_t* p, size_t n) : p_(p), n_(n) {}

  bool U32(uint32_t* v) { return Raw(v, sizeof(*v)); }
  bool U64(uint64_t* v) { return Raw(v, sizeof(*v)); }
  bool Bytes(size_t len, std::string_view* out) {
    if (len > n_) return false;
    *out = std::string_view(reinterpret_cast<const char*>(p_), len);
    p_ += len;
    n_ -= len;
    return true;
  }
  bool done() const { return n_ == 0; }

 private:
  bool Raw(void* out, size_t len) {
    if (len > n_) return false;
    std::memcpy(out, p_, len);
    p_ += len;
    n_ -= len;
    return true;
  }

  const uint8_t* p_;
  size_t n_;
};

/// One mmap'd snapshot file; unmapped when the last document view dies.
struct Mapping {
  const uint8_t* data = nullptr;
  size_t size = 0;
  ~Mapping() {
    if (data != nullptr) {
      ::munmap(const_cast<uint8_t*>(data), size);
    }
  }
};

/// Keeps the mapping alive for a materialized-but-frozen-pool TokenStream
/// (the stream's pool views point into the mapping; the stream itself is
/// handed out via the shared_ptr aliasing constructor).
struct TokenStreamHolder {
  std::shared_ptr<const void> backing;
  TokenStream ts;
};

/// Per-section checksum gate; hosts the "storage.crc" fault site (nth
/// selects which of the checks — header, table, section 1, ... — fails).
Status CheckCrc(const char* what, uint32_t expected, const void* data,
                size_t n) {
  if (fault::Armed()) {
    Status injected = fault::MaybeInject("storage.crc");
    if (!injected.ok()) {
      return Corrupt(std::string(what) +
                     ": injected checksum failure: " + injected.message());
    }
  }
  if (Crc32c(data, n) != expected) {
    return Corrupt(std::string(what) + ": CRC-32C mismatch");
  }
  return Status::OK();
}

bool ValidNodeKind(uint8_t k) {
  return k <= static_cast<uint8_t>(NodeKind::kProcessingInstruction);
}
bool ValidTokenKind(uint8_t k) {
  return k <= static_cast<uint8_t>(TokenKind::kProcessingInstruction);
}

/// Mirror of document_indexes.cc NumericLess: value then node, NaNs last.
bool NumericLess(double a, NodeIndex an, double b, NodeIndex bn) {
  bool a_nan = std::isnan(a);
  bool b_nan = std::isnan(b);
  if (a_nan != b_nan) return b_nan;
  if (!a_nan && a != b) return a < b;
  return an < bn;
}

}  // namespace

/// The validating loader. Friend of Document, StringPool, TokenStream, and
/// DocumentIndexes: after the hostile-input checks pass it installs views
/// into the mapping (node table, pooled strings) and materializes the
/// small variable-length structures, without re-running any builder logic.
class SnapshotLoader {
 public:
  static Result<LoadedSnapshot> Load(const uint8_t* base, size_t size,
                                     std::shared_ptr<const void> backing);

 private:
  struct Sec {
    const uint8_t* data = nullptr;
    uint64_t size = 0;
    uint64_t count = 0;
    bool present = false;
  };

  static Result<std::vector<QName>> ParseNames(const Sec& sec,
                                               const char* what);
  static Status ValidateNodes(const Sec& nodes, size_t names_count,
                              size_t pool_count);
};

Result<std::vector<QName>> SnapshotLoader::ParseNames(const Sec& sec,
                                                      const char* what) {
  std::vector<QName> names;
  Cursor cur(sec.data, sec.size);
  for (uint64_t i = 0; i < sec.count; ++i) {
    uint32_t uri_len, prefix_len, local_len;
    std::string_view uri, prefix, local;
    if (!cur.U32(&uri_len) || !cur.U32(&prefix_len) || !cur.U32(&local_len) ||
        !cur.Bytes(uri_len, &uri) || !cur.Bytes(prefix_len, &prefix) ||
        !cur.Bytes(local_len, &local)) {
      return Corrupt(std::string(what) + ": truncated name entry");
    }
    names.emplace_back(std::string(uri), std::string(prefix),
                       std::string(local));
  }
  if (!cur.done()) {
    return Corrupt(std::string(what) + ": trailing bytes after name table");
  }
  return names;
}

Status SnapshotLoader::ValidateNodes(const Sec& nodes, size_t names_count,
                                     size_t pool_count) {
  const auto* recs = reinterpret_cast<const NodeRecord*>(nodes.data);
  const size_t n = nodes.count;

  const NodeRecord& root = recs[0];
  if (root.kind != NodeKind::kDocument || root.level != 0 ||
      root.name_id != kNoName || root.value_id != kNoValue ||
      root.parent != kNullNode || root.next_sibling != kNullNode ||
      root.end != n - 1) {
    return Corrupt("node 0 is not a well-formed document node");
  }

  // Preorder replay. The region-encoding stack recovers each node's
  // expected parent and depth from the `end` labels alone; shadow sibling
  // chains are rebuilt exactly the way DocumentBuilder links them. Any
  // stored link or label that disagrees with the replay — overlapping
  // regions, a forward parent pointer, an attribute after child content, a
  // cycle spliced into a sibling chain — is rejected before the table is
  // ever navigated, so traversal can neither crash nor hang.
  std::vector<NodeIndex> first_attr(n, kNullNode), first_child(n, kNullNode),
      next(n, kNullNode), last_attr(n, kNullNode), last_child(n, kNullNode);
  std::vector<NodeIndex> stack;
  stack.push_back(0);
  for (size_t i = 1; i < n; ++i) {
    while (!stack.empty() && recs[stack.back()].end < i) stack.pop_back();
    if (stack.empty()) return Corrupt("node outside every open region");
    const NodeIndex p = stack.back();
    const NodeRecord& r = recs[i];
    if (!ValidNodeKind(static_cast<uint8_t>(r.kind))) {
      return Corrupt("invalid node kind");
    }
    if (r.parent != p) return Corrupt("parent link disagrees with regions");
    if (r.level != stack.size()) return Corrupt("level disagrees with depth");
    if (r.end < i || r.end > recs[p].end) {
      return Corrupt("region end outside parent region");
    }
    const bool named = r.kind == NodeKind::kElement ||
                       r.kind == NodeKind::kAttribute ||
                       r.kind == NodeKind::kProcessingInstruction;
    if (named ? r.name_id >= names_count : r.name_id != kNoName) {
      return Corrupt("name id out of range");
    }
    if (r.value_id != kNoValue && r.value_id >= pool_count) {
      return Corrupt("value id out of range");
    }
    if (r.kind == NodeKind::kDocument) {
      return Corrupt("nested document node");
    }
    if (r.kind == NodeKind::kAttribute) {
      if (last_child[p] != kNullNode) {
        return Corrupt("attribute after child content");
      }
      if (r.end != i || r.first_attr != kNullNode ||
          r.first_child != kNullNode) {
        return Corrupt("attribute with a subtree");
      }
      if (last_attr[p] == kNullNode) {
        first_attr[p] = static_cast<NodeIndex>(i);
      } else {
        next[last_attr[p]] = static_cast<NodeIndex>(i);
      }
      last_attr[p] = static_cast<NodeIndex>(i);
      continue;
    }
    if (last_child[p] == kNullNode) {
      first_child[p] = static_cast<NodeIndex>(i);
    } else {
      next[last_child[p]] = static_cast<NodeIndex>(i);
    }
    last_child[p] = static_cast<NodeIndex>(i);
    if (r.kind == NodeKind::kElement) {
      stack.push_back(static_cast<NodeIndex>(i));
    } else if (r.end != i || r.first_attr != kNullNode ||
               r.first_child != kNullNode) {
      return Corrupt("leaf node with a subtree");
    }
  }
  for (size_t i = 0; i < n; ++i) {
    if (recs[i].first_attr != first_attr[i] ||
        recs[i].first_child != first_child[i] ||
        (i > 0 && recs[i].next_sibling != next[i])) {
      return Corrupt("sibling/child links disagree with preorder replay");
    }
  }
  return Status::OK();
}

Result<LoadedSnapshot> SnapshotLoader::Load(
    const uint8_t* base, size_t size, std::shared_ptr<const void> backing) {
  // --- Header. ----------------------------------------------------------
  if (size < sizeof(SnapshotHeader)) {
    return Corrupt("file shorter than snapshot header");
  }
  SnapshotHeader header;
  std::memcpy(&header, base, sizeof(header));
  if (std::memcmp(header.magic, kSnapshotMagic, sizeof(header.magic)) != 0) {
    return Corrupt("bad magic");
  }
  if (header.version != kSnapshotVersion) {
    return Corrupt("unsupported snapshot version " +
                   std::to_string(header.version));
  }
  if (header.endian != kEndianTag) {
    return Corrupt("snapshot written with different byte order");
  }
  if (header.arch_bits != 8 * sizeof(void*)) {
    return Corrupt("snapshot written with different pointer width");
  }
  if (header.node_record_size != sizeof(NodeRecord) ||
      header.token_size != sizeof(Token)) {
    return Corrupt("snapshot written with different record layout");
  }
  {
    SnapshotHeader crc_view = header;
    crc_view.header_crc = 0;
    XQP_RETURN_NOT_OK(CheckCrc("header", header.header_crc, &crc_view,
                               sizeof(crc_view)));
  }
  if ((header.flags & ~(kFlagHasTokens | kFlagHasIndexes)) != 0) {
    return Corrupt("unknown flag bits");
  }
  const bool has_tokens = (header.flags & kFlagHasTokens) != 0;
  const bool has_indexes = (header.flags & kFlagHasIndexes) != 0;
  if ((header.value_kinds & ~kIndexValueAll) != 0 ||
      (!has_indexes && header.value_kinds != 0)) {
    return Corrupt("invalid value-kind mask");
  }
  if (header.file_size != size) {
    return Corrupt("file size disagrees with header (truncated?)");
  }

  // Exactly the sections the flags promise, nothing else.
  std::vector<SectionId> expected = {
      SectionId::kNodes,   SectionId::kNames,   SectionId::kPoolIndex,
      SectionId::kPoolArena, SectionId::kNsDecls, SectionId::kBaseUri};
  if (has_tokens) {
    expected.insert(expected.end(),
                    {SectionId::kTokens, SectionId::kTokenNames,
                     SectionId::kTokenPoolIndex, SectionId::kTokenPoolArena});
  }
  if (has_indexes) {
    expected.insert(expected.end(),
                    {SectionId::kSynopsis, SectionId::kPostingsOffsets,
                     SectionId::kPostingsData});
    if (header.value_kinds != 0) expected.push_back(SectionId::kValues);
  }
  if (header.section_count != expected.size()) {
    return Corrupt("unexpected section count");
  }

  // --- Section table. ---------------------------------------------------
  const uint64_t table_bytes =
      uint64_t{header.section_count} * sizeof(SectionEntry);
  if (table_bytes > size - sizeof(SnapshotHeader)) {
    return Corrupt("section table extends past end of file");
  }
  const uint8_t* table = base + sizeof(SnapshotHeader);
  XQP_RETURN_NOT_OK(
      CheckCrc("section table", header.table_crc, table, table_bytes));

  constexpr uint32_t kMaxSectionId = static_cast<uint32_t>(SectionId::kValues);
  Sec secs[kMaxSectionId + 1];
  for (uint32_t i = 0; i < header.section_count; ++i) {
    SectionEntry e;
    std::memcpy(&e, table + i * sizeof(SectionEntry), sizeof(e));
    if (e.id == 0 || e.id > kMaxSectionId) return Corrupt("unknown section id");
    Sec& s = secs[e.id];
    if (s.present) return Corrupt("duplicate section");
    if ((e.offset & 7) != 0) return Corrupt("misaligned section offset");
    if (e.offset > size || e.size > size - e.offset) {
      return Corrupt("section extends past end of file");
    }
    s.data = base + e.offset;
    s.size = e.size;
    s.count = e.count;
    s.present = true;
    XQP_RETURN_NOT_OK(CheckCrc("section", e.crc, s.data, s.size));
  }
  for (SectionId id : expected) {
    if (!secs[static_cast<uint32_t>(id)].present) {
      return Corrupt("missing required section");
    }
  }
  auto sec = [&secs](SectionId id) -> const Sec& {
    return secs[static_cast<uint32_t>(id)];
  };

  // --- Document: node table, names, pool, namespaces, base URI. ---------
  const Sec& nodes = sec(SectionId::kNodes);
  if (nodes.count == 0 || nodes.count >= kNullNode ||
      nodes.size != nodes.count * sizeof(NodeRecord)) {
    return Corrupt("node table size mismatch");
  }
  const size_t node_count = nodes.count;

  XQP_ASSIGN_OR_RETURN(std::vector<QName> names,
                       ParseNames(sec(SectionId::kNames), "names"));
  if (names.size() != sec(SectionId::kNames).count) {
    return Corrupt("name count mismatch");
  }

  const Sec& pool_index = sec(SectionId::kPoolIndex);
  const Sec& pool_arena = sec(SectionId::kPoolArena);
  if (pool_index.size != pool_index.count * sizeof(PoolEntry) ||
      pool_index.count >= StringPool::kInvalid) {
    return Corrupt("pool index size mismatch");
  }
  std::vector<std::string_view> pool_views;
  pool_views.reserve(pool_index.count);
  {
    const auto* entries = reinterpret_cast<const PoolEntry*>(pool_index.data);
    const char* arena = reinterpret_cast<const char*>(pool_arena.data);
    for (uint64_t i = 0; i < pool_index.count; ++i) {
      if (entries[i].offset > pool_arena.size ||
          entries[i].length > pool_arena.size - entries[i].offset) {
        return Corrupt("pool entry outside arena");
      }
      pool_views.emplace_back(arena + entries[i].offset, entries[i].length);
    }
  }

  XQP_RETURN_NOT_OK(ValidateNodes(nodes, names.size(), pool_views.size()));

  std::unordered_map<NodeIndex, std::vector<Document::NsDecl>> ns_decls;
  {
    const Sec& ns = sec(SectionId::kNsDecls);
    Cursor cur(ns.data, ns.size);
    uint32_t prev_node = 0;
    for (uint64_t e = 0; e < ns.count; ++e) {
      uint32_t node, n_decls;
      if (!cur.U32(&node) || !cur.U32(&n_decls) || n_decls == 0) {
        return Corrupt("truncated namespace entry");
      }
      if (node >= node_count || (e > 0 && node <= prev_node)) {
        return Corrupt("namespace entry out of order or out of range");
      }
      prev_node = node;
      std::vector<Document::NsDecl>& decls = ns_decls[node];
      for (uint32_t d = 0; d < n_decls; ++d) {
        uint32_t plen, ulen;
        std::string_view prefix, uri;
        if (!cur.U32(&plen) || !cur.U32(&ulen) || !cur.Bytes(plen, &prefix) ||
            !cur.Bytes(ulen, &uri)) {
          return Corrupt("truncated namespace declaration");
        }
        decls.push_back(
            Document::NsDecl{std::string(prefix), std::string(uri)});
      }
    }
    if (!cur.done()) return Corrupt("trailing bytes after namespace section");
  }

  const Sec& base_uri = sec(SectionId::kBaseUri);
  if (base_uri.count != base_uri.size) {
    return Corrupt("base-uri size mismatch");
  }

  auto doc = std::shared_ptr<Document>(new Document());
  doc->backing_ = backing;
  doc->nodes_data_ = reinterpret_cast<const NodeRecord*>(nodes.data);
  doc->nodes_count_ = node_count;
  doc->names_ = std::move(names);
  for (uint32_t id = 0; id < doc->names_.size(); ++id) {
    if (!doc->name_index_.emplace(doc->names_[id], id).second) {
      return Corrupt("duplicate entry in name table");
    }
  }
  doc->pool_.AdoptFrozen(std::move(pool_views));
  doc->ns_decls_ = std::move(ns_decls);
  doc->base_uri_.assign(reinterpret_cast<const char*>(base_uri.data),
                        base_uri.size);

  LoadedSnapshot out;
  out.document = doc;
  out.value_kinds = header.value_kinds;
  out.content_hash = header.content_hash;
  out.content_bytes = header.content_bytes;
  out.mapped_bytes = size;

  // --- Token stream (optional). -----------------------------------------
  if (has_tokens) {
    const Sec& toks = sec(SectionId::kTokens);
    if (toks.size != toks.count * sizeof(Token)) {
      return Corrupt("token array size mismatch");
    }
    XQP_ASSIGN_OR_RETURN(std::vector<QName> tnames,
                         ParseNames(sec(SectionId::kTokenNames),
                                    "token names"));
    const Sec& tpool_index = sec(SectionId::kTokenPoolIndex);
    const Sec& tpool_arena = sec(SectionId::kTokenPoolArena);
    if (tpool_index.size != tpool_index.count * sizeof(PoolEntry) ||
        tpool_index.count >= StringPool::kInvalid) {
      return Corrupt("token pool index size mismatch");
    }
    std::vector<std::string_view> tviews;
    tviews.reserve(tpool_index.count);
    const auto* entries =
        reinterpret_cast<const PoolEntry*>(tpool_index.data);
    const char* arena = reinterpret_cast<const char*>(tpool_arena.data);
    for (uint64_t i = 0; i < tpool_index.count; ++i) {
      if (entries[i].offset > tpool_arena.size ||
          entries[i].length > tpool_arena.size - entries[i].offset) {
        return Corrupt("token pool entry outside arena");
      }
      tviews.emplace_back(arena + entries[i].offset, entries[i].length);
    }
    const auto* tok = reinterpret_cast<const Token*>(toks.data);
    for (uint64_t i = 0; i < toks.count; ++i) {
      const Token& t = tok[i];
      if (!ValidTokenKind(static_cast<uint8_t>(t.kind)) ||
          (t.name_id != kNoName && t.name_id >= tnames.size()) ||
          (t.value_id != kNoValue && t.value_id >= tviews.size()) ||
          (t.aux_id != kNoValue && t.aux_id >= tviews.size()) ||
          (t.node_id != kNullNode && t.node_id >= node_count) ||
          t.skip_to > toks.count) {
        return Corrupt("token field out of range");
      }
    }
    auto holder = std::make_shared<TokenStreamHolder>();
    holder->backing = backing;
    holder->ts.tokens_.assign(tok, tok + toks.count);
    holder->ts.names_ = std::move(tnames);
    holder->ts.pool_.AdoptFrozen(std::move(tviews));
    out.tokens = std::shared_ptr<const TokenStream>(holder, &holder->ts);
  }

  // --- Path/value indexes (optional). -----------------------------------
  if (has_indexes) {
    const Sec& syn = sec(SectionId::kSynopsis);
    if (syn.count == 0 || syn.count > INT32_MAX ||
        syn.size != syn.count * sizeof(SynopsisRec)) {
      return Corrupt("synopsis size mismatch");
    }
    const auto* srecs = reinterpret_cast<const SynopsisRec*>(syn.data);
    if (srecs[0].parent != -1 || srecs[0].name_id != kNoName ||
        srecs[0].kind != static_cast<uint32_t>(NodeKind::kDocument)) {
      return Corrupt("synopsis node 0 is not the document root");
    }
    auto idx = std::shared_ptr<DocumentIndexes>(new DocumentIndexes());
    idx->doc_ = doc;
    idx->value_kinds_ = header.value_kinds;
    idx->nodes_.resize(syn.count);
    for (uint64_t s = 1; s < syn.count; ++s) {
      const SynopsisRec& r = srecs[s];
      const bool is_elem = r.kind == static_cast<uint32_t>(NodeKind::kElement);
      const bool is_attr =
          r.kind == static_cast<uint32_t>(NodeKind::kAttribute);
      if ((!is_elem && !is_attr) || r.parent < 0 ||
          static_cast<uint64_t>(r.parent) >= s ||
          r.name_id >= doc->names_.size()) {
        return Corrupt("invalid synopsis node");
      }
      DocumentIndexes::SynopsisNode& sn = idx->nodes_[s];
      sn.name_id = r.name_id;
      sn.kind = static_cast<NodeKind>(r.kind);
      sn.parent = r.parent;
      // Synopsis ids are assigned in first-appearance order, so id order
      // reproduces every children list exactly as Build() made it.
      idx->nodes_[r.parent].children.push_back(static_cast<int32_t>(s));
    }

    const Sec& offs = sec(SectionId::kPostingsOffsets);
    const Sec& data = sec(SectionId::kPostingsData);
    if (offs.count != syn.count + 1 ||
        offs.size != offs.count * sizeof(uint64_t) ||
        data.size != data.count * sizeof(NodeIndex) ||
        data.count > node_count) {
      return Corrupt("postings size mismatch");
    }
    const auto* row = reinterpret_cast<const uint64_t*>(offs.data);
    const auto* post = reinterpret_cast<const NodeIndex*>(data.data);
    if (row[0] != 0 || row[syn.count] != data.count) {
      return Corrupt("postings offsets do not span the data");
    }
    idx->postings_.resize(syn.count);
    for (uint64_t s = 0; s < syn.count; ++s) {
      if (row[s + 1] < row[s]) return Corrupt("postings offsets decrease");
      for (uint64_t j = row[s]; j < row[s + 1]; ++j) {
        if (post[j] >= node_count || (j > row[s] && post[j] <= post[j - 1])) {
          return Corrupt("posting list not in document order");
        }
      }
      idx->postings_[s].assign(post + row[s], post + row[s + 1]);
    }

    if (header.value_kinds != 0) {
      const Sec& vals = sec(SectionId::kValues);
      if (vals.count != syn.count) {
        return Corrupt("value-postings count mismatch");
      }
      idx->values_.resize(syn.count);
      Cursor cur(vals.data, vals.size);
      for (uint64_t s = 0; s < syn.count; ++s) {
        uint32_t vflags, n_str, n_num;
        if (!cur.U32(&vflags) || !cur.U32(&n_str) || !cur.U32(&n_num) ||
            (vflags & ~3u) != 0) {
          return Corrupt("truncated value-postings entry");
        }
        DocumentIndexes::ValuePostings& vp = idx->values_[s];
        vp.indexable = (vflags & 1u) != 0;
        vp.all_numeric = (vflags & 2u) != 0;
        vp.by_string.reserve(std::min<uint64_t>(n_str, node_count));
        for (uint32_t i = 0; i < n_str; ++i) {
          uint32_t len, node;
          std::string_view str;
          if (!cur.U32(&len) || !cur.U32(&node) || !cur.Bytes(len, &str) ||
              node >= node_count) {
            return Corrupt("truncated string value entry");
          }
          if (!vp.by_string.empty()) {
            const auto& prev = vp.by_string.back();
            if (str < prev.first || (str == prev.first && node <= prev.second)) {
              return Corrupt("string value index not sorted");
            }
          }
          vp.by_string.emplace_back(std::string(str), node);
        }
        for (uint32_t i = 0; i < n_num; ++i) {
          uint64_t bits;
          uint32_t node;
          if (!cur.U64(&bits) || !cur.U32(&node) || node >= node_count) {
            return Corrupt("truncated numeric value entry");
          }
          double value;
          std::memcpy(&value, &bits, sizeof(value));
          if (!vp.by_number.empty()) {
            const auto& prev = vp.by_number.back();
            if (NumericLess(value, node, prev.first, prev.second)) {
              return Corrupt("numeric value index not sorted");
            }
          }
          vp.by_number.emplace_back(value, node);
        }
      }
      if (!cur.done()) {
        return Corrupt("trailing bytes after value sections");
      }
    }
    out.indexes = idx;
  }

  return out;
}

Result<LoadedSnapshot> OpenSnapshot(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IoError("open " + path + ": " +
                           std::string(std::strerror(errno)));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    Status err = Status::IoError("stat " + path + ": " +
                                 std::string(std::strerror(errno)));
    ::close(fd);
    return err;
  }
  if (st.st_size <= 0) {
    ::close(fd);
    return Corrupt("empty snapshot file");
  }
  if (fault::Armed()) {
    Status injected = fault::MaybeInject("storage.map");
    if (!injected.ok()) {
      ::close(fd);
      return injected;
    }
  }
  const size_t size = static_cast<size_t>(st.st_size);
  void* m = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (m == MAP_FAILED) {
    return Status::IoError("mmap " + path + ": " +
                           std::string(std::strerror(errno)));
  }
  auto mapping = std::make_shared<Mapping>();
  mapping->data = static_cast<const uint8_t*>(m);
  mapping->size = size;
  const uint8_t* base = mapping->data;  // read before the move below
  XQP_ASSIGN_OR_RETURN(
      LoadedSnapshot loaded,
      SnapshotLoader::Load(base, size, std::move(mapping)));
  // The mapped extent is memory the caller's query now holds; charge it
  // like any other load-time allocation.
  if (ResourceGovernor* gov = CurrentGovernor()) {
    XQP_RETURN_NOT_OK(gov->ChargeBytes(loaded.mapped_bytes));
  }
  return loaded;
}

Result<LoadedSnapshot> OpenSnapshotBuffer(
    std::shared_ptr<const std::string> bytes) {
  if (bytes == nullptr) return Status::InvalidArgument("null buffer");
  if (fault::Armed()) {
    XQP_RETURN_NOT_OK(fault::MaybeInject("storage.map"));
  }
  const auto* p = reinterpret_cast<const uint8_t*>(bytes->data());
  // Zero-copy sections require the 8-byte alignment a mapping guarantees;
  // realign the rare unaligned buffer (e.g. a substring) by copying.
  if ((reinterpret_cast<uintptr_t>(p) & 7) != 0) {
    auto aligned =
        std::make_shared<std::vector<uint64_t>>((bytes->size() + 7) / 8);
    std::memcpy(aligned->data(), bytes->data(), bytes->size());
    const auto* ap = reinterpret_cast<const uint8_t*>(aligned->data());
    return SnapshotLoader::Load(ap, bytes->size(), std::move(aligned));
  }
  size_t size = bytes->size();
  return SnapshotLoader::Load(p, size, std::move(bytes));
}

}  // namespace storage
}  // namespace xqp
