#ifndef XQP_BASE_LIMITS_H_
#define XQP_BASE_LIMITS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

#include "base/status.h"

namespace xqp {

/// Cooperative cancellation flag shared between the thread that requests
/// cancellation and the queries observing it. Same gating trick as the
/// metrics registry: observers pay one relaxed atomic load per check.
/// Tokens are shared_ptrs so an engine can swap in a fresh token after
/// CancelAll() while in-flight executions keep watching the old one.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Per-query resource limits. All fields default to "unlimited"; a
/// default-constructed QueryLimits governs nothing (checks still run, but
/// can only trip on an explicit CancelToken). Merged from
/// EngineOptions::default_limits, the XQP_DEADLINE_MS / XQP_MEM_BUDGET
/// environment knobs, and the per-call ExecOptions.
struct QueryLimits {
  /// Wall-clock budget for one execution; 0 = no deadline. The governor
  /// turns this into an absolute deadline when the run starts.
  std::chrono::milliseconds timeout{0};

  /// Bytes of query-attributable allocation (document construction,
  /// materialized sequences, string-pool growth) before the run fails with
  /// kResourceExhausted; 0 = unlimited.
  uint64_t memory_budget_bytes = 0;

  /// XML element nesting the pull parser accepts before kParseError.
  /// Bounded above by the uint16_t NodeRecord level field. 0 = default.
  uint32_t max_parse_depth = 0;

  /// XQuery expression nesting the parser accepts before kStaticError;
  /// guards the recursive-descent parser's own stack. 0 = default.
  uint32_t max_expr_depth = 0;

  /// Cap on items delivered to the caller; exceeding it is
  /// kResourceExhausted ("did you mean to stream this?"). 0 = unlimited.
  uint64_t max_result_items = 0;

  /// External cancellation, or null. Checked at every governor poll.
  std::shared_ptr<CancelToken> cancel;

  /// The built-in ceilings used when the fields above are 0. The
  /// expression default is sized for the *worst* build we ship: each
  /// nesting level costs ~13 recursive-descent frames, and ASan's
  /// redzones inflate that to ~33KB/level — an 8MB stack overflows near
  /// 240 levels (the sanitizer CI lane checks this empirically). Raising
  /// max_expr_depth past that is the caller taking on stack risk.
  static constexpr uint32_t kDefaultMaxParseDepth = 4096;
  static constexpr uint32_t kDefaultMaxExprDepth = 128;

  uint32_t effective_parse_depth() const {
    return max_parse_depth == 0 ? kDefaultMaxParseDepth : max_parse_depth;
  }
  uint32_t effective_expr_depth() const {
    return max_expr_depth == 0 ? kDefaultMaxExprDepth : max_expr_depth;
  }
};

/// Reads XQP_DEADLINE_MS / XQP_MEM_BUDGET (bytes, with optional k/m/g
/// suffix) over `base`: env values fill in fields that `base` leaves at 0.
QueryLimits ApplyLimitsEnv(QueryLimits base);

/// One execution's governor: owns the absolute deadline, the byte/item
/// accounts, and a sticky trip latch. Lives on the engine's stack for the
/// duration of one Execute/Open/Profile run; pointed to by DynamicContext
/// and (for ctx-free code like join kernels and pool workers) by a
/// thread-local installed via GovernorScope.
///
/// Poll() is the cooperative check: ~2 relaxed loads on the happy path,
/// with the clock consulted only every kClockStride polls. Once any check
/// fails the governor is *tripped* — every later Poll() returns the same
/// error, so a deep iterator tree unwinds with a consistent status.
class ResourceGovernor {
 public:
  /// `extra_cancel` is a second token checked alongside limits.cancel —
  /// the engine passes its CancelAll() token here so per-query tokens and
  /// engine-wide cancellation compose.
  explicit ResourceGovernor(const QueryLimits& limits,
                            std::shared_ptr<CancelToken> extra_cancel = {});
  ResourceGovernor(const ResourceGovernor&) = delete;
  ResourceGovernor& operator=(const ResourceGovernor&) = delete;

  const QueryLimits& limits() const { return limits_; }

  /// The cooperative check; call at iterator Next() boundaries, morsel
  /// loops, and sort/drain entry points. OK unless cancelled, past
  /// deadline, or already tripped.
  Status Poll() {
    TripCode t = trip_.load(std::memory_order_relaxed);
    if (t != TripCode::kNone) return TripStatus(t);
    if ((limits_.cancel != nullptr && limits_.cancel->cancelled()) ||
        (extra_cancel_ != nullptr && extra_cancel_->cancelled())) {
      return Trip(TripCode::kCancelled);
    }
    if (has_deadline_ &&
        (polls_.fetch_add(1, std::memory_order_relaxed) % kClockStride) == 0 &&
        Clock::now() >= deadline_) {
      return Trip(TripCode::kDeadline);
    }
    return Status::OK();
  }

  /// Adds `bytes` to the query's memory account; trips kResourceExhausted
  /// when the budget is configured and exceeded. Charging with no budget
  /// set still maintains the account (cheap: one relaxed fetch_add).
  Status ChargeBytes(uint64_t bytes) {
    uint64_t total =
        bytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    if (limits_.memory_budget_bytes != 0 &&
        total > limits_.memory_budget_bytes) {
      return Trip(TripCode::kMemory);
    }
    return Status::OK();
  }

  /// Counts result items delivered to the caller against
  /// max_result_items.
  Status ChargeResultItems(uint64_t items) {
    uint64_t total =
        items_.fetch_add(items, std::memory_order_relaxed) + items;
    if (limits_.max_result_items != 0 && total > limits_.max_result_items) {
      return Trip(TripCode::kResultItems);
    }
    return Status::OK();
  }

  /// True once any check has failed; ctx-free morsel loops use this to
  /// skip remaining work (the caller's next Poll() reports the error).
  bool tripped() const {
    return trip_.load(std::memory_order_relaxed) != TripCode::kNone;
  }

  uint64_t bytes_charged() const {
    return bytes_.load(std::memory_order_relaxed);
  }
  uint64_t items_charged() const {
    return items_.load(std::memory_order_relaxed);
  }

  /// Clock reads are amortized: 1 in kClockStride polls checks the
  /// deadline.
  static constexpr uint64_t kClockStride = 64;

 private:
  using Clock = std::chrono::steady_clock;

  enum class TripCode : uint8_t {
    kNone = 0,
    kCancelled,
    kDeadline,
    kMemory,
    kResultItems,
  };

  Status Trip(TripCode code);
  Status TripStatus(TripCode code) const;

  QueryLimits limits_;
  std::shared_ptr<CancelToken> extra_cancel_;
  bool has_deadline_ = false;
  Clock::time_point deadline_{};
  std::atomic<TripCode> trip_{TripCode::kNone};
  std::atomic<uint64_t> polls_{0};
  std::atomic<uint64_t> bytes_{0};
  std::atomic<uint64_t> items_{0};
};

/// The governor observing the calling thread, or null. Code without a
/// DynamicContext (join kernels, ddo sort, pool workers) checks this;
/// ParallelForChunks propagates the caller's governor into its workers.
ResourceGovernor* CurrentGovernor();

/// Installs `g` as the calling thread's CurrentGovernor() for the scope.
class GovernorScope {
 public:
  explicit GovernorScope(ResourceGovernor* g);
  ~GovernorScope();
  GovernorScope(const GovernorScope&) = delete;
  GovernorScope& operator=(const GovernorScope&) = delete;

 private:
  ResourceGovernor* saved_;
};

}  // namespace xqp

#endif  // XQP_BASE_LIMITS_H_
