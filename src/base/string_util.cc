#include "base/string_util.h"

#include <cmath>
#include <cstdio>
#include <cstring>

namespace xqp {

bool IsAllXmlWhitespace(std::string_view s) {
  for (char c : s) {
    if (!IsXmlWhitespace(c)) return false;
  }
  return true;
}

std::string_view TrimXmlWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() && IsXmlWhitespace(s[begin])) ++begin;
  size_t end = s.size();
  while (end > begin && IsXmlWhitespace(s[end - 1])) --end;
  return s.substr(begin, end - begin);
}

std::string NormalizeSpace(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  bool in_ws = true;  // Swallow leading whitespace.
  for (char c : s) {
    if (IsXmlWhitespace(c)) {
      if (!in_ws) out.push_back(' ');
      in_ws = true;
    } else {
      out.push_back(c);
      in_ws = false;
    }
  }
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

bool IsNameStartChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         static_cast<unsigned char>(c) >= 0x80;
}

bool IsNameChar(char c) {
  return IsNameStartChar(c) || (c >= '0' && c <= '9') || c == '-' || c == '.';
}

bool IsNCName(std::string_view name) {
  if (name.empty() || !IsNameStartChar(name[0])) return false;
  for (size_t i = 1; i < name.size(); ++i) {
    if (!IsNameChar(name[i])) return false;
  }
  return true;
}

void SplitQName(std::string_view lexical, std::string_view* prefix,
                std::string_view* local) {
  size_t colon = lexical.find(':');
  if (colon == std::string_view::npos) {
    *prefix = std::string_view();
    *local = lexical;
  } else {
    *prefix = lexical.substr(0, colon);
    *local = lexical.substr(colon + 1);
  }
}

void AppendEscapedText(std::string_view text, std::string* out) {
  for (char c : text) {
    switch (c) {
      case '&':
        out->append("&amp;");
        break;
      case '<':
        out->append("&lt;");
        break;
      case '>':
        out->append("&gt;");
        break;
      default:
        out->push_back(c);
    }
  }
}

void AppendEscapedAttribute(std::string_view value, std::string* out) {
  for (char c : value) {
    switch (c) {
      case '&':
        out->append("&amp;");
        break;
      case '<':
        out->append("&lt;");
        break;
      case '"':
        out->append("&quot;");
        break;
      case '\n':
        out->append("&#10;");
        break;
      case '\t':
        out->append("&#9;");
        break;
      default:
        out->push_back(c);
    }
  }
}

std::string FormatDouble(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "INF" : "-INF";
  if (v == 0.0) return std::signbit(v) ? "-0" : "0";
  // Integral values within the int64 range print without a decimal point,
  // matching how XPath serializes xs:double values like 3.0e0 => "3".
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

}  // namespace xqp
