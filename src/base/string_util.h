#ifndef XQP_BASE_STRING_UTIL_H_
#define XQP_BASE_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace xqp {

/// True if `c` is an XML whitespace character (space, tab, CR, LF).
inline bool IsXmlWhitespace(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n';
}

/// True if `s` consists only of XML whitespace (including the empty string).
bool IsAllXmlWhitespace(std::string_view s);

/// Removes leading and trailing XML whitespace.
std::string_view TrimXmlWhitespace(std::string_view s);

/// Collapses internal whitespace runs to a single space and trims the ends
/// (the XPath fn:normalize-space semantics).
std::string NormalizeSpace(std::string_view s);

/// True if `name` is a valid XML NCName (no colon).
bool IsNCName(std::string_view name);

/// True if `c` may start an NCName.
bool IsNameStartChar(char c);

/// True if `c` may continue an NCName.
bool IsNameChar(char c);

/// Splits "prefix:local" into its two parts; prefix is empty when there is
/// no colon.
void SplitQName(std::string_view lexical, std::string_view* prefix,
                std::string_view* local);

/// Escapes text content for XML serialization (&, <, >).
void AppendEscapedText(std::string_view text, std::string* out);

/// Escapes an attribute value for XML serialization (&, <, ", newline).
void AppendEscapedAttribute(std::string_view value, std::string* out);

/// Formats a double using XPath's canonical rules (integral doubles print
/// without a trailing ".0"; NaN/INF use XML Schema lexical forms).
std::string FormatDouble(double v);

/// Splitmix64: deterministic 64-bit PRNG used by generators and property
/// tests so every run sees identical data.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound).
  uint64_t Below(uint64_t bound) { return bound == 0 ? 0 : Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return (Next() >> 11) * (1.0 / 9007199254740992.0); }

 private:
  uint64_t state_;
};

}  // namespace xqp

#endif  // XQP_BASE_STRING_UTIL_H_
