#include "base/status.h"

#include <cstdio>
#include <cstdlib>

namespace xqp {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kInternal:
      return "Internal error";
    case StatusCode::kIoError:
      return "I/O error";
    case StatusCode::kParseError:
      return "Parse error";
    case StatusCode::kStaticError:
      return "Static error";
    case StatusCode::kTypeError:
      return "Type error";
    case StatusCode::kDynamicError:
      return "Dynamic error";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
    case StatusCode::kSnapshotCorrupt:
      return "Snapshot corrupt";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out(StatusCodeToString(code()));
  out += ": ";
  out += message();
  return out;
}

}  // namespace xqp
