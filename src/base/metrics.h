#ifndef XQP_BASE_METRICS_H_
#define XQP_BASE_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace xqp {
namespace metrics {

/// Lock-free monotonically increasing counter. Increments hash the calling
/// thread onto one of a fixed set of cache-line-padded stripes (relaxed
/// fetch_add, no contention between pool workers); Value() merges the
/// stripes on read, so snapshots are cheap and writes stay cheap.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t delta) {
    stripes_[StripeIndex()].v.fetch_add(delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  /// Sum over all stripes. Concurrent increments may or may not be
  /// included; the value is exact once writers quiesce.
  uint64_t Value() const {
    uint64_t total = 0;
    for (const auto& s : stripes_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }

  void Reset() {
    for (auto& s : stripes_) s.v.store(0, std::memory_order_relaxed);
  }

  static constexpr size_t kStripes = 16;

 private:
  static size_t StripeIndex();

  struct alignas(64) Stripe {
    std::atomic<uint64_t> v{0};
  };
  Stripe stripes_[kStripes];
};

/// Fixed-size log2-bucketed histogram for latencies and sizes. Recording is
/// a handful of relaxed atomic ops; percentiles are approximate (resolved
/// to the bucket's inclusive upper bound, i.e. within 2x of the true
/// value), while count/sum/min/max are exact.
class Histogram {
 public:
  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(uint64_t value);

  /// Bucket b holds value 0 for b == 0, else values in [2^(b-1), 2^b - 1].
  static constexpr size_t kNumBuckets = 65;

  struct Snapshot {
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t min = 0;  // Exact; 0 when empty.
    uint64_t max = 0;  // Exact; 0 when empty.

    /// Approximate percentile: the inclusive upper bound of the bucket
    /// holding the p-th value (p in [0,100]). p=0 returns min and p=100
    /// returns max, both exact. 0 when empty.
    uint64_t Percentile(double p) const;

    double Mean() const { return count == 0 ? 0.0 : double(sum) / count; }

    uint64_t buckets[kNumBuckets] = {};
  };
  Snapshot TakeSnapshot() const;

  void Reset();

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{~uint64_t{0}};
  std::atomic<uint64_t> max_{0};
};

/// RAII wall-clock timer recording elapsed nanoseconds into a histogram on
/// destruction. A null histogram makes construction and destruction no-ops
/// (no clock read) — pass `enabled ? h : nullptr` on hot paths.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* h) : h_(h) {
    if (h_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (h_ != nullptr) {
      auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - start_)
                    .count();
      h_->Record(ns < 0 ? 0 : uint64_t(ns));
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* h_;
  std::chrono::steady_clock::time_point start_;
};

/// A point-in-time view of every registered metric, for EXPLAIN/PROFILE
/// reports and tests. Counter values are absolute; Delta() turns two
/// snapshots into per-run numbers.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, Histogram::Snapshot> histograms;

  /// Counters and histogram count/sum become differences against `before`
  /// (clamped at 0); histogram min/max/buckets keep the end-of-run values
  /// (the bucket array is cumulative, so percentiles of a delta are
  /// approximations over the whole registry lifetime).
  MetricsSnapshot Delta(const MetricsSnapshot& before) const;
};

/// Process-wide named registry. Metric objects are created on first lookup
/// and live for the process lifetime, so call sites can cache the returned
/// pointers (function-local statics) and skip the map on the hot path.
/// Recording is gated by an atomic `enabled` flag: when false, the
/// convention is that call sites skip recording entirely, so the cost of
/// the whole subsystem is one relaxed atomic load and a branch.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  Counter* counter(std::string_view name);
  Histogram* histogram(std::string_view name);

  MetricsSnapshot Snapshot() const;

  /// Zeroes every registered metric (tests and CLI runs; metrics stay
  /// registered).
  void ResetAll();

 private:
  MetricsRegistry() = default;

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// True when the global registry collects (one relaxed load).
inline bool Enabled() { return MetricsRegistry::Global().enabled(); }

/// True when the XQP_TRACE environment variable is set to a non-empty,
/// non-"0" value; the engine then enables the global registry at startup.
bool TraceEnvRequested();

/// The standard per-kernel triple — invocations, items produced, wall time —
/// registered as `<name>.calls`, `<name>.items`, `<name>.wall_ns`. Intended
/// for function-local statics in join/sort kernels:
///
///   static OpMetrics m("join.stack_tree_desc");
///   ScopedTimer t(Enabled() ? m.wall_ns : nullptr);
///   ...
///   if (Enabled()) { m.calls->Increment(); m.items->Add(out.size()); }
struct OpMetrics {
  Counter* calls;
  Counter* items;
  Histogram* wall_ns;

  explicit OpMetrics(std::string_view name);
};

}  // namespace metrics
}  // namespace xqp

#endif  // XQP_BASE_METRICS_H_
