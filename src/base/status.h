#ifndef XQP_BASE_STATUS_H_
#define XQP_BASE_STATUS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace xqp {

/// Error categories used throughout the library. XQuery dynamic and type
/// errors map to the W3C err:* families; the remaining codes cover engine
/// and I/O failures.
enum class StatusCode : uint8_t {
  kOk = 0,
  // Generic engine errors.
  kInvalidArgument,
  kNotImplemented,
  kInternal,
  kIoError,
  // XML well-formedness errors (parser).
  kParseError,
  // XQuery static errors (err:XPST*).
  kStaticError,
  // XQuery type errors (err:XPTY*, err:FORG0001 casts, ...).
  kTypeError,
  // XQuery dynamic errors (err:FOER*, division by zero, ...).
  kDynamicError,
  // Execution stopped by a CancelToken / deadline (resource governor).
  kCancelled,
  // A query limit was exceeded: memory budget, result-count cap, depth.
  kResourceExhausted,
  // A persistent snapshot failed validation (bad magic/CRC/offsets); the
  // caller falls back to re-ingesting the original XML.
  kSnapshotCorrupt,
};

/// Returns a human-readable name for `code` ("Ok", "Type error", ...).
std::string_view StatusCodeToString(StatusCode code);

/// Arrow/RocksDB-style status object. Cheap to copy in the OK case
/// (a single pointer test); error details live behind a unique_ptr.
class Status {
 public:
  Status() = default;  // OK.

  Status(StatusCode code, std::string message)
      : state_(code == StatusCode::kOk
                   ? nullptr
                   : std::make_unique<State>(State{code, std::move(message)})) {}

  Status(const Status& other)
      : state_(other.state_ ? std::make_unique<State>(*other.state_) : nullptr) {}
  Status& operator=(const Status& other) {
    state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
    return *this;
  }
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status StaticError(std::string msg) {
    return Status(StatusCode::kStaticError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status DynamicError(std::string msg) {
    return Status(StatusCode::kDynamicError, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status SnapshotCorrupt(std::string msg) {
    return Status(StatusCode::kSnapshotCorrupt, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return state_ ? state_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->message : kEmpty;
  }

  /// "Type error: cannot compare xs:string with xs:integer".
  std::string ToString() const;

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  std::unique_ptr<State> state_;
};

/// Result<T> is either a value or an error Status; never both.
template <typename T>
class Result {
 public:
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : repr_(std::move(status)) {}  // NOLINT
  Result(StatusCode code, std::string message)
      : repr_(Status(code, std::move(message))) {}

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(repr_);
  }

  T& value() & { return std::get<T>(repr_); }
  const T& value() const& { return std::get<T>(repr_); }
  T&& value() && { return std::move(std::get<T>(repr_)); }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Moves the value out, or terminates if this holds an error.
  /// For tests and examples only.
  T ValueOrDie() &&;

 private:
  std::variant<T, Status> repr_;
};

template <typename T>
T Result<T>::ValueOrDie() && {
  if (!ok()) {
    std::fprintf(stderr, "Result::ValueOrDie on error: %s\n",
                 status().ToString().c_str());
    std::abort();
  }
  return std::move(std::get<T>(repr_));
}

// Propagates a non-OK Status out of the current function.
#define XQP_RETURN_NOT_OK(expr)                 \
  do {                                          \
    ::xqp::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                  \
  } while (0)

#define XQP_CONCAT_IMPL(a, b) a##b
#define XQP_CONCAT(a, b) XQP_CONCAT_IMPL(a, b)

// Evaluates a Result<T> expression; on error returns the Status, otherwise
// move-assigns the value into `lhs` (which may be a declaration).
#define XQP_ASSIGN_OR_RETURN(lhs, rexpr)                             \
  XQP_ASSIGN_OR_RETURN_IMPL(XQP_CONCAT(_res_, __LINE__), lhs, rexpr)

#define XQP_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                              \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value();

}  // namespace xqp

#endif  // XQP_BASE_STATUS_H_
