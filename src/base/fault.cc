#include "base/fault.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <string_view>

#include "base/metrics.h"

namespace xqp {
namespace fault {

namespace {

/// The single armed slot. `armed` is the fast-path gate; the slot fields
/// are guarded by `mu` so arming from one thread while pool workers hit
/// sites from others stays race-free (hits are rare once Armed() gates).
std::atomic<bool> armed{false};
std::mutex mu;
std::string armed_site;        // Guarded by mu.
uint64_t armed_nth = 0;        // Guarded by mu.
uint64_t hits = 0;             // Guarded by mu.
StatusCode armed_code = StatusCode::kInternal;  // Guarded by mu.

Status MakeStatus(StatusCode code, std::string_view site) {
  std::string msg = "injected fault at ";
  msg += site;
  return Status(code, std::move(msg));
}

}  // namespace

bool Armed() { return armed.load(std::memory_order_relaxed); }

Status MaybeInject(std::string_view site) {
  std::lock_guard<std::mutex> lock(mu);
  if (!armed.load(std::memory_order_relaxed) || site != armed_site) {
    return Status::OK();
  }
  if (++hits < armed_nth) return Status::OK();
  armed.store(false, std::memory_order_relaxed);  // Fire exactly once.
  static metrics::Counter* injected =
      metrics::MetricsRegistry::Global().counter("fault.injected");
  injected->Increment();
  return MakeStatus(armed_code, site);
}

void Arm(std::string_view site, uint64_t nth, StatusCode code) {
  std::lock_guard<std::mutex> lock(mu);
  armed_site.assign(site);
  armed_nth = nth == 0 ? 1 : nth;
  armed_code = code;
  hits = 0;
  armed.store(true, std::memory_order_relaxed);
}

void Disarm() {
  std::lock_guard<std::mutex> lock(mu);
  armed.store(false, std::memory_order_relaxed);
  armed_site.clear();
  hits = 0;
}

namespace {

/// Every site MaybeInject is called with anywhere in the tree. A spec
/// naming anything else is a typo that would run the test unfaulted, so
/// spec parsing rejects it (the programmatic Arm() stays unrestricted for
/// ad-hoc sites in unit tests).
constexpr std::string_view kKnownSites[] = {
    "alloc",         "parse.next",  "pool.submit",
    "iterators.next", "vm.compile", "storage.write",
    "storage.map",   "storage.crc",
};

std::string KnownSiteList() {
  std::string out;
  for (std::string_view s : kKnownSites) {
    if (!out.empty()) out += ", ";
    out += s;
  }
  return out;
}

}  // namespace

Status ArmFromSpec(std::string_view spec) {
  auto bad = [&spec](std::string why) {
    return Status::InvalidArgument(
        "bad fault spec \"" + std::string(spec) + "\": " + why +
        " (expected site:nth[:code], code in {cancelled, exhausted, io, "
        "internal})");
  };
  size_t c1 = spec.find(':');
  if (c1 == std::string_view::npos || c1 == 0) {
    return bad("missing \"site:\" prefix");
  }
  std::string_view site = spec.substr(0, c1);
  bool known = false;
  for (std::string_view s : kKnownSites) known = known || s == site;
  if (!known) {
    return bad("unknown site \"" + std::string(site) + "\" (known sites: " +
               KnownSiteList() + ")");
  }
  size_t c2 = spec.find(':', c1 + 1);
  std::string nth_str(spec.substr(
      c1 + 1, c2 == std::string_view::npos ? std::string_view::npos
                                           : c2 - c1 - 1));
  char* end = nullptr;
  unsigned long long nth = std::strtoull(nth_str.c_str(), &end, 10);
  if (nth_str.empty() || end == nth_str.c_str() || *end != '\0') {
    return bad("nth \"" + nth_str + "\" is not a number");
  }
  if (nth == 0) return bad("nth must be >= 1");
  StatusCode code = StatusCode::kInternal;
  if (c2 != std::string_view::npos) {
    std::string_view name = spec.substr(c2 + 1);
    if (name == "cancelled") {
      code = StatusCode::kCancelled;
    } else if (name == "exhausted") {
      code = StatusCode::kResourceExhausted;
    } else if (name == "io") {
      code = StatusCode::kIoError;
    } else if (name != "internal") {
      return bad("unknown code \"" + std::string(name) + "\"");
    }
  }
  Arm(site, nth, code);
  return Status::OK();
}

void ArmFromEnv() {
  const char* env = std::getenv("XQP_FAULT");
  if (env == nullptr || *env == '\0') return;
  Status st = ArmFromSpec(env);
  if (!st.ok()) {
    std::fprintf(stderr, "XQP_FAULT: %s\n", st.ToString().c_str());
    std::exit(2);
  }
}

}  // namespace fault
}  // namespace xqp
