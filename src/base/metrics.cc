#include "base/metrics.h"

#include <bit>
#include <cstdlib>
#include <cstring>

namespace xqp {
namespace metrics {

namespace {

// Small per-thread id assigned on first use; cheaper and better distributed
// than hashing std::this_thread::get_id() on every increment.
size_t NextThreadOrdinal() {
  static std::atomic<size_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

size_t Counter::StripeIndex() {
  thread_local size_t ordinal = NextThreadOrdinal();
  return ordinal % kStripes;
}

void Histogram::Record(uint64_t value) {
  size_t bucket = value == 0 ? 0 : size_t(std::bit_width(value));
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t prev = min_.load(std::memory_order_relaxed);
  while (value < prev &&
         !min_.compare_exchange_weak(prev, value, std::memory_order_relaxed)) {
  }
  prev = max_.load(std::memory_order_relaxed);
  while (value > prev &&
         !max_.compare_exchange_weak(prev, value, std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::Snapshot::Percentile(double p) const {
  if (count == 0) return 0;
  if (p <= 0.0) return min;
  if (p >= 100.0) return max;
  uint64_t rank = uint64_t(p / 100.0 * double(count));
  if (rank == 0) rank = 1;
  uint64_t cumulative = 0;
  for (size_t b = 0; b < kNumBuckets; ++b) {
    cumulative += buckets[b];
    if (cumulative >= rank) {
      // Inclusive upper bound of bucket b, clamped to the observed max.
      uint64_t bound = b == 0 ? 0
                     : b >= 64 ? ~uint64_t{0}
                               : (uint64_t{1} << b) - 1;
      return bound > max ? max : bound;
    }
  }
  return max;
}

Histogram::Snapshot Histogram::TakeSnapshot() const {
  Snapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  uint64_t mn = min_.load(std::memory_order_relaxed);
  s.min = s.count == 0 || mn == ~uint64_t{0} ? 0 : mn;
  s.max = max_.load(std::memory_order_relaxed);
  for (size_t b = 0; b < kNumBuckets; ++b) {
    s.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  return s;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~uint64_t{0}, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

MetricsSnapshot MetricsSnapshot::Delta(const MetricsSnapshot& before) const {
  MetricsSnapshot d;
  for (const auto& [name, value] : counters) {
    auto it = before.counters.find(name);
    uint64_t base = it == before.counters.end() ? 0 : it->second;
    d.counters[name] = value >= base ? value - base : 0;
  }
  for (const auto& [name, snap] : histograms) {
    Histogram::Snapshot ds = snap;
    auto it = before.histograms.find(name);
    if (it != before.histograms.end()) {
      const Histogram::Snapshot& b = it->second;
      ds.count = snap.count >= b.count ? snap.count - b.count : 0;
      ds.sum = snap.sum >= b.sum ? snap.sum - b.sum : 0;
    }
    d.histograms[name] = ds;
  }
  return d;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* instance = new MetricsRegistry();
  return *instance;
}

Counter* MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot s;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) {
    s.counters[name] = c->Value();
  }
  for (const auto& [name, h] : histograms_) {
    s.histograms[name] = h->TakeSnapshot();
  }
  return s;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

bool TraceEnvRequested() {
  const char* v = std::getenv("XQP_TRACE");
  return v != nullptr && *v != '\0' && std::strcmp(v, "0") != 0;
}

OpMetrics::OpMetrics(std::string_view name) {
  auto& reg = MetricsRegistry::Global();
  std::string base(name);
  calls = reg.counter(base + ".calls");
  items = reg.counter(base + ".items");
  wall_ns = reg.histogram(base + ".wall_ns");
}

}  // namespace metrics
}  // namespace xqp
