#ifndef XQP_BASE_PARALLEL_H_
#define XQP_BASE_PARALLEL_H_

#include <algorithm>
#include <array>
#include <cstddef>
#include <functional>
#include <vector>

namespace xqp {

/// Default input-size floor below which parallel kernels fall back to their
/// serial counterparts: fork/join overhead only pays off once the combined
/// input is a few cache pages wide.
inline constexpr size_t kDefaultParallelThreshold = 16384;

/// Fixed-size pool of worker threads with a shared FIFO task queue. Tasks
/// are plain closures; there is no work stealing — ParallelFor instead uses
/// a "help-first" scheme where the submitting thread claims chunks from the
/// same atomic counter as the workers, so a caller never blocks waiting for
/// a queue slot and nested ParallelFor calls cannot deadlock (every thread
/// that waits is itself draining chunks).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 or 1 makes an inert (serial) pool.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (0 for a serial pool).
  int num_threads() const { return num_threads_; }

  /// Enqueues `fn` for execution on some worker. Runs inline when the pool
  /// is serial.
  void Submit(std::function<void()> fn);

  /// The process-wide pool, sized by DefaultParallelism() on first use.
  static ThreadPool& Global();

 private:
  struct Impl;
  Impl* impl_;
  int num_threads_ = 0;
};

/// Parallelism the engine should use by default: the XQP_THREADS environment
/// variable when set (>= 1), otherwise std::thread::hardware_concurrency().
/// A value of 1 means "run everything serially".
int DefaultParallelism();

/// Runs fn(chunk_begin, chunk_end) over a partition of [0, n) using the
/// global pool. `num_chunks` ≤ 1 (or a serial pool, or n ≤ 1) degrades to a
/// single inline call fn(0, n). Blocks until every chunk has run; the
/// calling thread participates, so this is safe to nest. Chunks are split
/// evenly; callers that need boundary-aligned partitions should compute
/// their own chunk list and use ParallelForChunks.
void ParallelFor(size_t n, int num_chunks,
                 const std::function<void(size_t, size_t)>& fn);

/// Runs fn(i) for i in [0, num_chunks) with the same help-first execution
/// as ParallelFor — for pre-computed, irregular partitions.
void ParallelForChunks(size_t num_chunks,
                       const std::function<void(size_t)>& fn);

/// Stable sort via chunked std::stable_sort plus a pairwise merge tree.
/// Identical result to std::stable_sort(begin, end, cmp). Falls back to a
/// single serial sort when the range is small or the pool is serial.
template <typename It, typename Cmp>
void ParallelStableSort(It begin, It end, Cmp cmp, int num_chunks = 0,
                        size_t min_parallel = kDefaultParallelThreshold) {
  const size_t n = static_cast<size_t>(end - begin);
  if (num_chunks <= 0) num_chunks = DefaultParallelism();
  if (num_chunks <= 1 || n < min_parallel || n < 2) {
    std::stable_sort(begin, end, cmp);
    return;
  }
  // Chunk boundaries (even split).
  std::vector<size_t> bounds;
  bounds.reserve(static_cast<size_t>(num_chunks) + 1);
  for (int c = 0; c <= num_chunks; ++c) {
    bounds.push_back(n * static_cast<size_t>(c) /
                     static_cast<size_t>(num_chunks));
  }
  ParallelForChunks(static_cast<size_t>(num_chunks), [&](size_t c) {
    std::stable_sort(begin + bounds[c], begin + bounds[c + 1], cmp);
  });
  // Pairwise merge rounds; each round merges disjoint adjacent runs in
  // parallel. std::inplace_merge is stable, so the result matches a single
  // stable_sort.
  for (size_t width = 1; width < bounds.size() - 1; width *= 2) {
    std::vector<std::array<size_t, 3>> merges;
    for (size_t lo = 0; lo + width < bounds.size() - 1; lo += 2 * width) {
      size_t mid = lo + width;
      size_t hi = std::min(lo + 2 * width, bounds.size() - 1);
      merges.push_back({bounds[lo], bounds[mid], bounds[hi]});
    }
    ParallelForChunks(merges.size(), [&](size_t m) {
      std::inplace_merge(begin + merges[m][0], begin + merges[m][1],
                         begin + merges[m][2], cmp);
    });
  }
}

}  // namespace xqp

#endif  // XQP_BASE_PARALLEL_H_
