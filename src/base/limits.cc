#include "base/limits.h"

#include <cctype>
#include <cstdlib>
#include <string>

#include "base/metrics.h"

namespace xqp {

namespace {

thread_local ResourceGovernor* tls_governor = nullptr;

/// Parses "64m", "2g", "1048576" into bytes; 0 on anything malformed.
uint64_t ParseByteSize(const char* s) {
  char* end = nullptr;
  unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s) return 0;
  switch (std::tolower(static_cast<unsigned char>(*end))) {
    case 'k':
      return v * 1024ull;
    case 'm':
      return v * 1024ull * 1024ull;
    case 'g':
      return v * 1024ull * 1024ull * 1024ull;
    case '\0':
      return v;
    default:
      return 0;
  }
}

void NoteTrip(bool cancelled) {
  // Trips are rare and worth counting even when tracing is off, so they
  // show up in the next PROFILE report; registration is once per process.
  static metrics::Counter* cancelled_count =
      metrics::MetricsRegistry::Global().counter("governor.cancelled");
  static metrics::Counter* budget_trips =
      metrics::MetricsRegistry::Global().counter("governor.budget_trips");
  (cancelled ? cancelled_count : budget_trips)->Increment();
}

}  // namespace

QueryLimits ApplyLimitsEnv(QueryLimits base) {
  if (base.timeout.count() == 0) {
    if (const char* env = std::getenv("XQP_DEADLINE_MS")) {
      long ms = std::atol(env);
      if (ms > 0) base.timeout = std::chrono::milliseconds(ms);
    }
  }
  if (base.memory_budget_bytes == 0) {
    if (const char* env = std::getenv("XQP_MEM_BUDGET")) {
      base.memory_budget_bytes = ParseByteSize(env);
    }
  }
  return base;
}

ResourceGovernor::ResourceGovernor(const QueryLimits& limits,
                                   std::shared_ptr<CancelToken> extra_cancel)
    : limits_(limits), extra_cancel_(std::move(extra_cancel)) {
  if (limits_.timeout.count() > 0) {
    has_deadline_ = true;
    deadline_ = Clock::now() + limits_.timeout;
  }
}

Status ResourceGovernor::Trip(TripCode code) {
  TripCode expected = TripCode::kNone;
  if (trip_.compare_exchange_strong(expected, code,
                                    std::memory_order_relaxed)) {
    NoteTrip(code == TripCode::kCancelled);
    return TripStatus(code);
  }
  // Another thread tripped first; report its (sticky) verdict.
  return TripStatus(expected);
}

Status ResourceGovernor::TripStatus(TripCode code) const {
  switch (code) {
    case TripCode::kCancelled:
      return Status::Cancelled("query cancelled");
    case TripCode::kDeadline:
      return Status::Cancelled(
          "query deadline of " + std::to_string(limits_.timeout.count()) +
          "ms exceeded");
    case TripCode::kMemory:
      return Status::ResourceExhausted(
          "query memory budget of " +
          std::to_string(limits_.memory_budget_bytes) + " bytes exceeded");
    case TripCode::kResultItems:
      return Status::ResourceExhausted(
          "query result cap of " +
          std::to_string(limits_.max_result_items) + " items exceeded");
    case TripCode::kNone:
      break;
  }
  return Status::OK();
}

ResourceGovernor* CurrentGovernor() { return tls_governor; }

GovernorScope::GovernorScope(ResourceGovernor* g) : saved_(tls_governor) {
  tls_governor = g;
}

GovernorScope::~GovernorScope() { tls_governor = saved_; }

}  // namespace xqp
