#ifndef XQP_BASE_FAULT_H_
#define XQP_BASE_FAULT_H_

#include <cstdint>
#include <string_view>

#include "base/status.h"

namespace xqp {
namespace fault {

/// Deterministic fault injection for error-path testing. At most one fault
/// is armed at a time: a (site, nth, code) triple meaning "the nth time
/// execution reaches `site`, fail once with `code`". The disarmed fast
/// path — by far the common case — is one relaxed atomic load and a
/// branch, the same gating trick as the metrics registry.
///
/// Sites in the tree today:
///   "alloc"          DocumentBuilder node/text allocation
///   "parse.next"     XmlPullParser::Next
///   "pool.submit"    ThreadPool::Submit (task then runs inline, so the
///                    fork/join region still completes; the submitting
///                    query observes the failure at its next poll)
///   "iterators.next" root result drain (lazy) / Interpreter::Eval (eager)
///   "vm.compile"     vm::CompileProgram entry (bytecode backend; a failed
///                    compile is cached and the query falls back to lazy)
///
/// Arm via the scoped test API or the XQP_FAULT environment variable
/// ("site:nth" or "site:nth:code" with code in {cancelled, exhausted,
/// internal, io}); faults fire exactly once and then disarm themselves.

/// True when a fault is armed anywhere in the process (one relaxed load).
bool Armed();

/// Counts a hit at `site` and returns the armed fault's Status on the nth
/// hit (then disarms). Call only under Armed(); the canonical use is
///   if (fault::Armed()) XQP_RETURN_NOT_OK(fault::MaybeInject("site"));
Status MaybeInject(std::string_view site);

/// Arms (site, nth, code): the nth hit of `site` from now fails. nth is
/// 1-based; code defaults to kInternal. Replaces any armed fault and
/// resets the hit counter.
void Arm(std::string_view site, uint64_t nth,
         StatusCode code = StatusCode::kInternal);

/// Disarms whatever is armed and resets the hit counter.
void Disarm();

/// Arms from XQP_FAULT if set ("site:nth[:code]"); the engine calls this
/// at construction. Malformed values are ignored.
void ArmFromEnv();

/// RAII arm/disarm for tests.
class ScopedFault {
 public:
  ScopedFault(std::string_view site, uint64_t nth,
              StatusCode code = StatusCode::kInternal) {
    Arm(site, nth, code);
  }
  ~ScopedFault() { Disarm(); }
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;
};

}  // namespace fault
}  // namespace xqp

#endif  // XQP_BASE_FAULT_H_
