#ifndef XQP_BASE_FAULT_H_
#define XQP_BASE_FAULT_H_

#include <cstdint>
#include <string_view>

#include "base/status.h"

namespace xqp {
namespace fault {

/// Deterministic fault injection for error-path testing. At most one fault
/// is armed at a time: a (site, nth, code) triple meaning "the nth time
/// execution reaches `site`, fail once with `code`". The disarmed fast
/// path — by far the common case — is one relaxed atomic load and a
/// branch, the same gating trick as the metrics registry.
///
/// Sites in the tree today:
///   "alloc"          DocumentBuilder node/text allocation
///   "parse.next"     XmlPullParser::Next
///   "pool.submit"    ThreadPool::Submit (task then runs inline, so the
///                    fork/join region still completes; the submitting
///                    query observes the failure at its next poll)
///   "iterators.next" root result drain (lazy) / Interpreter::Eval (eager)
///   "vm.compile"     vm::CompileProgram entry (bytecode backend; a failed
///                    compile is cached and the query falls back to lazy)
///   "storage.write"  snapshot atomic-write protocol (nth picks the stage:
///                    1 before the temp file, 2 after write/before fsync,
///                    3 after fsync/before rename)
///   "storage.map"    snapshot open, before the file is mapped
///   "storage.crc"    snapshot checksum verification (nth picks the check:
///                    1 header, 2 section table, then one per section)
///
/// Arm via the scoped test API or the XQP_FAULT environment variable
/// ("site:nth" or "site:nth:code" with code in {cancelled, exhausted,
/// internal, io}); faults fire exactly once and then disarm themselves.
/// A malformed XQP_FAULT value — unknown site, non-numeric or zero nth,
/// unknown code — is a startup error (stderr + exit), never a silently
/// unfaulted run.

/// True when a fault is armed anywhere in the process (one relaxed load).
bool Armed();

/// Counts a hit at `site` and returns the armed fault's Status on the nth
/// hit (then disarms). Call only under Armed(); the canonical use is
///   if (fault::Armed()) XQP_RETURN_NOT_OK(fault::MaybeInject("site"));
Status MaybeInject(std::string_view site);

/// Arms (site, nth, code): the nth hit of `site` from now fails. nth is
/// 1-based; code defaults to kInternal. Replaces any armed fault and
/// resets the hit counter.
void Arm(std::string_view site, uint64_t nth,
         StatusCode code = StatusCode::kInternal);

/// Disarms whatever is armed and resets the hit counter.
void Disarm();

/// Parses and arms a "site:nth[:code]" spec. InvalidArgument (with the
/// reason and the accepted grammar) on malformed input or an unknown site
/// name — nothing is armed then.
Status ArmFromSpec(std::string_view spec);

/// Arms from XQP_FAULT if set ("site:nth[:code]"); the engine calls this
/// at construction. A malformed value prints the ArmFromSpec error to
/// stderr and exits with status 2: a fault-injection run that would
/// otherwise silently execute unfaulted must not come up at all.
void ArmFromEnv();

/// RAII arm/disarm for tests.
class ScopedFault {
 public:
  ScopedFault(std::string_view site, uint64_t nth,
              StatusCode code = StatusCode::kInternal) {
    Arm(site, nth, code);
  }
  ~ScopedFault() { Disarm(); }
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;
};

}  // namespace fault
}  // namespace xqp

#endif  // XQP_BASE_FAULT_H_
