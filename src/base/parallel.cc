#include "base/parallel.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <thread>

#include "base/fault.h"
#include "base/limits.h"
#include "base/metrics.h"

namespace xqp {

struct ThreadPool::Impl {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::function<void()>> queue;
  std::vector<std::thread> workers;
  bool shutting_down = false;

  void WorkerLoop() {
    while (true) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return shutting_down || !queue.empty(); });
        if (queue.empty()) return;  // Shutdown with a drained queue.
        task = std::move(queue.front());
        queue.pop_front();
      }
      task();
    }
  }
};

ThreadPool::ThreadPool(int num_threads)
    : impl_(new Impl), num_threads_(num_threads < 0 ? 0 : num_threads) {
  if (num_threads_ <= 1) num_threads_ = 0;  // Serial pool: no workers.
  impl_->workers.reserve(static_cast<size_t>(num_threads_));
  for (int i = 0; i < num_threads_; ++i) {
    impl_->workers.emplace_back([this] { impl_->WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->shutting_down = true;
  }
  impl_->cv.notify_all();
  for (std::thread& t : impl_->workers) t.join();
  delete impl_;
}

void ThreadPool::Submit(std::function<void()> fn) {
  // Fault site "pool.submit": model a refused enqueue. The task runs
  // inline on the caller instead, which is exactly the degradation the
  // help-first fork/join protocol must tolerate without deadlocking.
  if (fault::Armed() && !fault::MaybeInject("pool.submit").ok()) {
    fn();
    return;
  }
  if (num_threads_ == 0) {
    fn();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->queue.push_back(std::move(fn));
  }
  impl_->cv.notify_one();
}

int DefaultParallelism() {
  if (const char* env = std::getenv("XQP_THREADS")) {
    int n = std::atoi(env);
    if (n >= 1) return n;
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool = new ThreadPool(DefaultParallelism());
  return *pool;
}

namespace {

/// Shared state for one fork/join region. Workers and the caller claim
/// chunk indices from `next`; the caller spins on chunk completion via the
/// condition variable. Allocated on the caller's stack — every participant
/// finishes before ParallelForChunks returns.
struct ForkJoin {
  const std::function<void(size_t)>* fn;
  size_t num_chunks;
  std::atomic<size_t> next{0};
  std::atomic<size_t> done{0};
  std::mutex mu;
  std::condition_variable cv;

  /// Claims and runs chunks until none are left. `chunks_executed`, when
  /// non-null, tallies this participant's completed chunks into the pool
  /// utilization metrics (caller vs worker split).
  void Drain(metrics::Counter* chunks_executed) {
    while (true) {
      size_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) break;
      (*fn)(c);
      if (chunks_executed != nullptr) chunks_executed->Increment();
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == num_chunks) {
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_all();
      }
    }
  }
};

}  // namespace

void ParallelForChunks(size_t num_chunks,
                       const std::function<void(size_t)>& fn) {
  if (num_chunks == 0) return;
  ThreadPool& pool = ThreadPool::Global();
  if (num_chunks == 1 || pool.num_threads() == 0) {
    if (metrics::Enabled()) {
      static metrics::Counter* serial_regions =
          metrics::MetricsRegistry::Global().counter("pool.serial_regions");
      serial_regions->Increment();
    }
    for (size_t c = 0; c < num_chunks; ++c) fn(c);
    return;
  }
  metrics::Counter* caller_chunks = nullptr;
  metrics::Counter* worker_chunks = nullptr;
  if (metrics::Enabled()) {
    auto& reg = metrics::MetricsRegistry::Global();
    static metrics::Counter* regions = reg.counter("pool.forkjoin_regions");
    static metrics::Counter* tasks = reg.counter("pool.tasks_submitted");
    static metrics::Counter* by_caller = reg.counter("pool.chunks.caller");
    static metrics::Counter* by_worker = reg.counter("pool.chunks.worker");
    regions->Increment();
    caller_chunks = by_caller;
    worker_chunks = by_worker;
    tasks->Add(std::min<size_t>(static_cast<size_t>(pool.num_threads()),
                                num_chunks - 1));
  }
  auto state = std::make_shared<ForkJoin>();
  state->fn = &fn;
  state->num_chunks = num_chunks;
  // One helper per worker (capped by chunk count); each drains the shared
  // counter, so idle workers cost one no-op wakeup at most. The caller's
  // resource governor rides along: chunk bodies on worker threads see the
  // same CurrentGovernor() as the submitting query, so morsel loops can
  // honor cancellation from any thread.
  ResourceGovernor* governor = CurrentGovernor();
  size_t helpers = std::min<size_t>(
      static_cast<size_t>(pool.num_threads()), num_chunks - 1);
  for (size_t h = 0; h < helpers; ++h) {
    pool.Submit([state, worker_chunks, governor] {
      GovernorScope scope(governor);
      state->Drain(worker_chunks);
    });
  }
  state->Drain(caller_chunks);
  // The caller ran out of chunks to claim; wait for stragglers. `fn` stays
  // alive (and the shared_ptr keeps `state` alive) until every helper has
  // left Drain — helpers that lost the claim race exit without touching fn.
  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] {
    return state->done.load(std::memory_order_acquire) == state->num_chunks;
  });
}

void ParallelFor(size_t n, int num_chunks,
                 const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  size_t chunks = num_chunks <= 1 ? 1 : static_cast<size_t>(num_chunks);
  chunks = std::min(chunks, n);
  if (chunks <= 1) {
    fn(0, n);
    return;
  }
  ParallelForChunks(chunks, [&](size_t c) {
    fn(n * c / chunks, n * (c + 1) / chunks);
  });
}

}  // namespace xqp
