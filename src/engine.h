#ifndef XQP_ENGINE_H_
#define XQP_ENGINE_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "base/status.h"
#include "exec/dynamic_context.h"
#include "exec/lazy_seq.h"
#include "join/tag_index.h"
#include "opt/rewriter.h"
#include "query/static_context.h"
#include "xml/document.h"
#include "xml/serializer.h"

namespace xqp {

class CompiledQuery;

/// The public facade: an in-memory XML store plus the XQuery compiler and
/// its two execution engines (eager reference interpreter and lazy
/// streaming iterator engine). Typical use:
///
///   XQueryEngine engine;
///   engine.ParseAndRegister("bib.xml", xml_text);
///   auto query = engine.Compile(
///       "for $b in doc('bib.xml')//book where $b/@year = 1998 "
///       "return $b/title");
///   auto result = query.value()->Execute();
class XQueryEngine : public DocumentProvider {
 public:
  XQueryEngine() = default;

  /// Registers an already-built document under `uri` for fn:doc.
  Status RegisterDocument(const std::string& uri,
                          std::shared_ptr<const Document> doc);

  /// Parses `xml` and registers the document under `uri`.
  Result<std::shared_ptr<const Document>> ParseAndRegister(
      const std::string& uri, std::string_view xml,
      const ParseOptions& options = {});

  /// Registers a named collection for fn:collection.
  Status RegisterCollection(const std::string& uri, Sequence items);

  // DocumentProvider:
  Result<std::shared_ptr<const Document>> GetDocument(
      const std::string& uri) override;
  Result<Sequence> GetCollection(const std::string& uri) override;

  struct CompileOptions {
    /// Run the rewrite-rule optimizer (SQ5/optimization step).
    bool optimize = true;
    /// The optional XQuery *static typing feature* (strict: rejects e.g.
    /// untyped-vs-numeric value comparisons at compile time).
    bool static_typing = false;
    RewriterOptions rewriter;
  };

  /// Compiles a query: parse -> normalize -> optimize.
  Result<std::unique_ptr<CompiledQuery>> Compile(std::string_view query,
                                                 const CompileOptions& options);
  Result<std::unique_ptr<CompiledQuery>> Compile(std::string_view query) {
    return Compile(query, CompileOptions());
  }

  /// One-shot convenience: compile with defaults and execute.
  Result<Sequence> Execute(std::string_view query);

  /// Memoizing execution (paper: "Memoization — cache results of
  /// expressions: inter-query (multi-query optimization)"). Results are
  /// cached by query text and invalidated whenever a document or
  /// collection is (re)registered. Only queries that construct no new
  /// nodes are cached — constructor results must have fresh identities on
  /// every evaluation.
  Result<Sequence> ExecuteCached(std::string_view query);

  /// Cache statistics for the memoization experiment/tests.
  struct CacheStats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t uncacheable = 0;
    uint64_t invalidations = 0;
  };
  const CacheStats& cache_stats() const { return cache_stats_; }

  /// Tag index for a registered document, built on first use and cached
  /// (substrate for the structural/twig join execution strategy).
  Result<std::shared_ptr<const TagIndex>> GetTagIndex(const std::string& uri);

 private:
  void InvalidateCaches();

  std::map<std::string, std::shared_ptr<const Document>> documents_;
  std::map<std::string, Sequence> collections_;
  std::map<std::string, std::shared_ptr<const TagIndex>> tag_indexes_;
  std::map<std::string, Sequence, std::less<>> result_cache_;
  CacheStats cache_stats_;
};

/// An open, incrementally consumable query result: the engine-level
/// embodiment of the paper's streaming requirement ("output parts of the
/// result BEFORE the entire data input is received"). Owns the dynamic
/// context; pull items with Next().
class ResultStream {
 public:
  /// Produces the next result item; false at end.
  Result<bool> Next(Item* out) { return iterator_->Next(out); }

  /// Serializes the remaining items to XML text (nodes as markup, atomics
  /// space-separated), pulling lazily.
  Result<std::string> DrainToXml();

 private:
  friend class CompiledQuery;
  ResultStream() = default;

  std::unique_ptr<DynamicContext> ctx_;
  std::unique_ptr<ItemIterator> iterator_;
};

/// A compiled, optimized query ready for (repeated) execution.
class CompiledQuery {
 public:
  struct ExecOptions {
    /// Bindings for "declare variable ... external", keyed by local name.
    std::map<std::string, Sequence> variables;
    /// Initial context item (".").
    bool has_context_item = false;
    Item context_item;
    /// Engine selection: the lazy streaming iterator engine (default) or
    /// the eager materializing interpreter.
    bool use_lazy_engine = true;
  };

  /// Runs the query and materializes the full result.
  Result<Sequence> Execute(const ExecOptions& options) const;
  Result<Sequence> Execute() const { return Execute(ExecOptions()); }

  /// Runs the query and serializes the result sequence as XML text.
  Result<std::string> ExecuteToXml(const ExecOptions& options) const;
  Result<std::string> ExecuteToXml() const {
    return ExecuteToXml(ExecOptions());
  }

  /// Opens the query for streaming consumption on the lazy engine: items
  /// are computed as the caller pulls them (minimal time-to-first-answer).
  Result<std::unique_ptr<ResultStream>> Open(const ExecOptions& options) const;
  Result<std::unique_ptr<ResultStream>> Open() const {
    return Open(ExecOptions());
  }

  /// True when this query's body is a pure tree pattern that the
  /// structural-join executor can evaluate (see join/twig_planner.h).
  bool IsTwigConvertible() const;

  /// Evaluates the query through the holistic twig-join executor instead of
  /// the navigational engines. Requires IsTwigConvertible() and a
  /// doc('uri')-anchored path; results are identical to Execute() for the
  /// supported fragment. InvalidArgument otherwise.
  Result<Sequence> ExecuteViaTwigJoin() const;

  const ParsedModule& module() const { return *module_; }

  /// Expression-tree dump after optimization (plan explanation).
  std::string Explain() const { return module_->body->ToString(); }

  /// Rule-application counts from compilation.
  const RewriteStats& rewrite_stats() const { return rewrite_stats_; }

 private:
  friend class XQueryEngine;
  CompiledQuery() = default;

  /// Binds globals and prepares a dynamic context for one run.
  Status SetupContext(const ExecOptions& options, DynamicContext* ctx) const;

  std::unique_ptr<ParsedModule> module_;
  XQueryEngine* engine_ = nullptr;
  RewriteStats rewrite_stats_;
};

/// Serializes a result sequence: nodes as XML, atomics as lexical values
/// separated by spaces (the DM4 serialization step).
Result<std::string> SerializeSequence(const Sequence& seq,
                                      const SerializeOptions& options = {});

}  // namespace xqp

#endif  // XQP_ENGINE_H_
