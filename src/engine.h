#ifndef XQP_ENGINE_H_
#define XQP_ENGINE_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "base/limits.h"
#include "base/metrics.h"
#include "base/status.h"
#include "exec/dynamic_context.h"
#include "exec/lazy_seq.h"
#include "exec/profile.h"
#include "index/index_manager.h"
#include "join/tag_index.h"
#include "opt/rewriter.h"
#include "query/static_context.h"
#include "xml/document.h"
#include "xml/serializer.h"

namespace xqp {

class CompiledQuery;

namespace vm {
struct Program;
}  // namespace vm

/// Which execution backend runs a compiled query. kLazy is the streaming
/// iterator engine (default), kEager the materializing reference
/// interpreter, kVm the bytecode compiler + dispatch-loop VM (compiled
/// subtrees run as flat bytecode; uncompilable subtrees bail out to the
/// lazy engine per-thunk, so results are identical across backends).
enum class ExecBackend : uint8_t { kLazy, kEager, kVm };

/// "lazy" / "eager" / "vm".
const char* ExecBackendName(ExecBackend backend);

/// Engine-wide tuning knobs.
struct EngineOptions {
  /// Combined input size (nodes) above which path/join evaluation routes
  /// to the morsel-parallel kernels; smaller inputs keep the serial
  /// algorithms and their latency. 0 disables parallel dispatch.
  size_t parallel_threshold = 16384;

  /// Worker count for parallel kernels and ExecuteBatchParallel; 0 means
  /// DefaultParallelism() (the XQP_THREADS environment override, else
  /// std::thread::hardware_concurrency()).
  int num_threads = 0;

  /// Turns on the process-wide metrics registry (kernel counters, rewrite
  /// fire counts, pool utilization) for engines constructed with this set.
  /// The XQP_TRACE environment variable forces it on regardless. Off by
  /// default: every instrumentation point then costs one relaxed atomic
  /// load and a predictable branch.
  bool collect_stats = false;

  /// Resource limits applied to every execution on this engine. Per-call
  /// ExecOptions::limits override field-by-field (non-zero wins); the
  /// XQP_DEADLINE_MS / XQP_MEM_BUDGET environment knobs fill in fields
  /// both leave unset. The `cancel` token here is ignored — the engine
  /// maintains its own token for CancelAll().
  QueryLimits default_limits;

  /// Maintain per-document path/value indexes (index/document_indexes.h),
  /// built lazily on first use and cached beside the tag indexes. When
  /// false, compilation also skips index marking, reproducing non-indexed
  /// plans bit-identically. The XQP_INDEXES environment knob overrides:
  /// "0"/"off" disables, "1"/"on"/"all" enables both value families,
  /// "path" enables the synopsis only, "string"/"numeric" one family.
  bool enable_indexes = true;

  /// Which value-index families to build (IndexValueKinds bitmask). The
  /// path synopsis is always built when enable_indexes is set; value
  /// predicates whose family is off fall back to normal evaluation.
  uint32_t index_value_kinds = kIndexValueAll;

  /// Default execution backend for queries compiled by this engine.
  /// Per-call ExecOptions::backend overrides. The XQP_BACKEND environment
  /// knob ("lazy" / "eager" / "vm") overrides this default; unrecognized
  /// values are ignored.
  ExecBackend backend = ExecBackend::kLazy;

  /// Directory for persistent document snapshots (storage/snapshot.h).
  /// When set, ParseAndRegister first tries to mmap a previously saved
  /// snapshot of the document (skipping parse and index build entirely)
  /// and writes one back after a fresh parse; a corrupt or stale snapshot
  /// silently degrades to the normal parse path. Empty (default) disables
  /// persistence. The XQP_SNAPSHOT environment knob overrides.
  std::string snapshot_dir;

  /// Access-path override for doc()-anchored chains: kAuto (default) lets
  /// the cost model (opt/cost.h) choose per chain; kNav / kSJoin / kTwig /
  /// kIndex force that strategy wherever it can answer (degrading to
  /// navigation elsewhere — results are bit-identical for every setting).
  /// The XQP_ACCESS_PATH environment knob ("auto" / "nav" / "sjoin" /
  /// "twig" / "index") overrides this default; unrecognized values are
  /// ignored.
  AccessPath force_access_path = AccessPath::kAuto;
};

/// The public facade: an in-memory XML store plus the XQuery compiler and
/// its two execution engines (eager reference interpreter and lazy
/// streaming iterator engine). Typical use:
///
///   XQueryEngine engine;
///   engine.ParseAndRegister("bib.xml", xml_text);
///   auto query = engine.Compile(
///       "for $b in doc('bib.xml')//book where $b/@year = 1998 "
///       "return $b/title");
///   auto result = query.value()->Execute();
/// Thread-safety contract: registration (RegisterDocument /
/// ParseAndRegister / RegisterCollection) and execution (Execute /
/// ExecuteCached / ExecuteBatchParallel / GetTagIndex) may be called from
/// any number of threads concurrently. The read-mostly caches
/// (result_cache_, tag_indexes_) sit behind a shared_mutex; statistics
/// counters are atomics. Registration invalidates derived caches under the
/// exclusive lock, and an epoch counter keeps an in-flight execution from
/// caching a result computed against superseded documents.
class XQueryEngine : public DocumentProvider {
 public:
  XQueryEngine() : XQueryEngine(EngineOptions{}) {}
  explicit XQueryEngine(const EngineOptions& options);

  const EngineOptions& options() const { return options_; }

  /// Registers an already-built document under `uri` for fn:doc.
  Status RegisterDocument(const std::string& uri,
                          std::shared_ptr<const Document> doc);

  /// Parses `xml` and registers the document under `uri`.
  Result<std::shared_ptr<const Document>> ParseAndRegister(
      const std::string& uri, std::string_view xml,
      const ParseOptions& options = {});

  /// Registers a named collection for fn:collection.
  Status RegisterCollection(const std::string& uri, Sequence items);

  /// Freezes the registered document `uri` — node table, string pool, a
  /// freshly rendered token stream, and its path/value indexes (built now
  /// if enabled and not yet cached) — into a crash-atomically written
  /// snapshot file at `path` (storage/snapshot.h).
  Status SaveSnapshot(const std::string& uri, const std::string& path);

  /// Opens the snapshot at `path` (mmap + full validation) and registers
  /// its document under `uri`, adopting snapshot-resident indexes so the
  /// first query skips the build. On any validation failure the snapshot
  /// is abandoned — `storage.corrupt` is counted and, when `fallback_xml`
  /// is non-empty, the original XML is re-ingested via ParseAndRegister so
  /// queries keep working; without a fallback the error is returned.
  Result<std::shared_ptr<const Document>> LoadDocumentSnapshot(
      const std::string& uri, const std::string& path,
      std::string_view fallback_xml = {}, const ParseOptions& options = {});

  /// The snapshot file EngineOptions::snapshot_dir implies for `uri`
  /// (sanitized URI + hash, ".xqps"). Meaningless when snapshot_dir is
  /// empty.
  std::string SnapshotPathFor(const std::string& uri) const;

  /// One input of LoadDocumentsParallel. `xml` is borrowed for the duration
  /// of the call only.
  struct BulkDocument {
    std::string uri;
    std::string_view xml;
  };

  /// Bulk load: parses every input, fanning the parses across the thread
  /// pool (the multi-tenant serving shape — many fresh documents arriving
  /// at once). Parses run under the caller's ambient resource governor,
  /// honor CancelAll(), and the successful documents are registered
  /// atomically: one exclusive lock acquisition and a single cache
  /// invalidation for the whole batch instead of one per document.
  /// Results are positional: out[i] belongs to docs[i]; failed parses
  /// leave any previously registered document under that URI untouched.
  std::vector<Result<std::shared_ptr<const Document>>> LoadDocumentsParallel(
      std::span<const BulkDocument> docs, const ParseOptions& options = {});

  // DocumentProvider:
  Result<std::shared_ptr<const Document>> GetDocument(
      const std::string& uri) override;
  Result<Sequence> GetCollection(const std::string& uri) override;
  /// Path synopsis + value index for a registered document, built on first
  /// use and cached (null, not an error, when enable_indexes is off).
  Result<std::shared_ptr<const DocumentIndexes>> GetDocumentIndexes(
      const std::string& uri) override;

  /// Already-built indexes for `uri`, or null — never builds. EXPLAIN's
  /// access-path annotation peeks so that rendering a plan can neither
  /// charge an index build nor trip injected build faults.
  std::shared_ptr<const DocumentIndexes> PeekDocumentIndexes(
      const std::string& uri) const {
    return options_.enable_indexes ? index_manager_.Peek(uri) : nullptr;
  }

  struct CompileOptions {
    /// Run the rewrite-rule optimizer (SQ5/optimization step).
    bool optimize = true;
    /// The optional XQuery *static typing feature* (strict: rejects e.g.
    /// untyped-vs-numeric value comparisons at compile time).
    bool static_typing = false;
    RewriterOptions rewriter;
  };

  /// Compiles a query: parse -> normalize -> optimize.
  Result<std::unique_ptr<CompiledQuery>> Compile(std::string_view query,
                                                 const CompileOptions& options);
  Result<std::unique_ptr<CompiledQuery>> Compile(std::string_view query) {
    return Compile(query, CompileOptions());
  }

  /// One-shot convenience: compile with defaults and execute.
  Result<Sequence> Execute(std::string_view query);

  /// Memoizing execution (paper: "Memoization — cache results of
  /// expressions: inter-query (multi-query optimization)"). Results are
  /// cached by query text and invalidated whenever a document or
  /// collection is (re)registered. Only queries that construct no new
  /// nodes are cached — constructor results must have fresh identities on
  /// every evaluation.
  Result<Sequence> ExecuteCached(std::string_view query);

  /// Executes a batch of queries (the many-concurrent-users serving
  /// shape), fanning them across the thread pool via ExecuteCached.
  /// Results are positional: out[i] belongs to queries[i]. Runs serially
  /// when the pool is serial or the batch is a singleton.
  std::vector<Result<Sequence>> ExecuteBatchParallel(
      std::span<const std::string_view> queries);

  /// Cancels every execution in flight on this engine (including queued
  /// ExecuteBatchParallel members that have not started): they fail with
  /// kCancelled at their next governor poll. A fresh token is installed
  /// atomically, so executions started after this call run normally.
  void CancelAll();

  /// The token executions started now would observe (tests; callers that
  /// want per-query cancellation pass their own via ExecOptions::limits).
  std::shared_ptr<CancelToken> current_cancel_token() const;

  /// Cache statistics for the memoization experiment/tests.
  struct CacheStats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t uncacheable = 0;
    uint64_t invalidations = 0;
  };
  /// Returns a snapshot (counters advance concurrently with execution).
  CacheStats cache_stats() const;

  /// Tag index for a registered document, built on first use and cached
  /// (substrate for the structural/twig join execution strategy and the
  /// sjoin/twig access paths).
  Result<std::shared_ptr<const TagIndex>> GetTagIndex(
      const std::string& uri) override;

 private:
  /// Clears derived caches and bumps the epoch. Caller must hold mu_
  /// exclusively.
  void InvalidateCachesLocked();

  /// ExecuteCached with an optional extra cancel token — the batch-wide
  /// snapshot ExecuteBatchParallel takes so CancelAll() reaches batch
  /// members that have not started yet.
  Result<Sequence> ExecuteCachedInternal(std::string_view query,
                                         std::shared_ptr<CancelToken> cancel);

  EngineOptions options_;

  /// Guards the maps below. Executions take it shared; registration and
  /// cache fills take it exclusive.
  mutable std::shared_mutex mu_;
  std::map<std::string, std::shared_ptr<const Document>> documents_;
  std::map<std::string, Sequence> collections_;
  std::map<std::string, std::shared_ptr<const TagIndex>> tag_indexes_;
  /// Path/value index cache; owns its own lock (never taken while holding
  /// mu_ exclusively except for invalidation, and it never calls back into
  /// the engine, so the mu_ -> index lock order is acyclic).
  IndexManager index_manager_;
  std::map<std::string, Sequence, std::less<>> result_cache_;
  /// Incremented on every invalidation; ExecuteCached only inserts a
  /// result computed in the current epoch.
  uint64_t cache_epoch_ = 0;

  struct AtomicCacheStats {
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
    std::atomic<uint64_t> uncacheable{0};
    std::atomic<uint64_t> invalidations{0};
  };
  mutable AtomicCacheStats cache_stats_;

  /// The CancelAll() token. Executions snapshot it at start (under
  /// cancel_mu_); CancelAll cancels the current one and swaps in a fresh
  /// token so later executions are unaffected.
  mutable std::mutex cancel_mu_;
  std::shared_ptr<CancelToken> cancel_token_;
};

/// Everything one profiled execution produced: the result itself plus the
/// per-operator statistics, compile-time rewrite fire counts, engine cache
/// counters, and the delta of the global metrics registry over the run
/// (join kernel calls, parallel-dispatch decisions, pool utilization).
/// `module` is a non-owning view of the CompiledQuery's plan — keep the
/// query alive while rendering.
struct ProfileReport {
  Sequence result;
  QueryProfile ops;
  RewriteStats rewrites;
  XQueryEngine::CacheStats cache;
  metrics::MetricsSnapshot engine_metrics;
  uint64_t total_wall_ns = 0;
  /// Backend that produced the run; used_lazy_engine mirrors it for
  /// source compatibility (true iff backend == kLazy).
  ExecBackend backend = ExecBackend::kLazy;
  bool used_lazy_engine = true;
  const ParsedModule* module = nullptr;

  /// Stats of the plan root; its `items` equals the result cardinality.
  const OpStats* RootStats() const;

  /// Human-readable profile: annotated operator tree + engine counters.
  std::string ToText() const;

  /// Machine-readable profile as a single JSON object.
  std::string ToJson() const;
};

/// An open, incrementally consumable query result: the engine-level
/// embodiment of the paper's streaming requirement ("output parts of the
/// result BEFORE the entire data input is received"). Owns the dynamic
/// context; pull items with Next().
class ResultStream {
 public:
  /// Produces the next result item; false at end. Polls the stream's
  /// resource governor, so an open stream honors cancellation, deadlines,
  /// and the result-item cap between pulls.
  Result<bool> Next(Item* out);

  /// Serializes the remaining items to XML text (nodes as markup, atomics
  /// space-separated), pulling lazily.
  Result<std::string> DrainToXml();

 private:
  friend class CompiledQuery;
  ResultStream() = default;

  // Declaration order is destruction-safety order: the iterator tree and
  // context hold raw pointers into the governor, so it must die last.
  std::unique_ptr<ResourceGovernor> governor_;
  std::unique_ptr<DynamicContext> ctx_;
  std::unique_ptr<ItemIterator> iterator_;
};

/// A compiled, optimized query ready for (repeated) execution.
class CompiledQuery {
 public:
  struct ExecOptions {
    /// Bindings for "declare variable ... external", keyed by local name.
    std::map<std::string, Sequence> variables;
    /// Initial context item (".").
    bool has_context_item = false;
    Item context_item;
    /// Engine selection: the lazy streaming iterator engine (default) or
    /// the eager materializing interpreter. Superseded by `backend`, kept
    /// for source compatibility: false means kEager unless `backend` is
    /// set.
    bool use_lazy_engine = true;

    /// Execution backend for this call. Unset: `use_lazy_engine` (when
    /// false -> kEager), else the engine's EngineOptions::backend.
    std::optional<ExecBackend> backend;

    /// Per-call resource limits; non-zero fields override the engine's
    /// default_limits. A `cancel` token here is watched *in addition to*
    /// the engine's CancelAll() token.
    QueryLimits limits;
  };

  /// Runs the query and materializes the full result.
  Result<Sequence> Execute(const ExecOptions& options) const;
  Result<Sequence> Execute() const { return Execute(ExecOptions()); }
  /// Convenience: run with limits and otherwise-default options.
  Result<Sequence> Execute(const QueryLimits& limits) const {
    ExecOptions options;
    options.limits = limits;
    return Execute(options);
  }

  /// Runs the query and serializes the result sequence as XML text.
  Result<std::string> ExecuteToXml(const ExecOptions& options) const;
  Result<std::string> ExecuteToXml() const {
    return ExecuteToXml(ExecOptions());
  }

  /// Opens the query for streaming consumption on the lazy engine: items
  /// are computed as the caller pulls them (minimal time-to-first-answer).
  Result<std::unique_ptr<ResultStream>> Open(const ExecOptions& options) const;
  Result<std::unique_ptr<ResultStream>> Open() const {
    return Open(ExecOptions());
  }

  /// True when this query's body is a pure tree pattern that the
  /// structural-join executor can evaluate (see join/twig_planner.h).
  bool IsTwigConvertible() const;

  /// Evaluates the query through the holistic twig-join executor instead of
  /// the navigational engines. Requires IsTwigConvertible() and a
  /// doc('uri')-anchored path; results are identical to Execute() for the
  /// supported fragment. InvalidArgument otherwise.
  Result<Sequence> ExecuteViaTwigJoin() const;

  const ParsedModule& module() const { return *module_; }

  /// Expression-tree dump after optimization (plan explanation).
  std::string Explain() const { return module_->body->ToString(); }

  /// Deterministic indented operator tree for the optimized plan — the
  /// EXPLAIN rendering (no runtime numbers; stable across runs). The
  /// ExecOptions overload annotates for the backend the options select:
  /// under kVm, compiled subtree roots render " [vm]" and bailout thunk
  /// roots " [bailout: <reason>]".
  std::string ExplainTree() const;
  std::string ExplainTree(const ExecOptions& options) const;

  /// The backend Execute(options) would use: options.backend if set, else
  /// kEager when use_lazy_engine is false, else the engine's default.
  ExecBackend ResolvedBackend(const ExecOptions& options) const;

  /// Executes the query with per-operator profiling: every iterator pull /
  /// interpreter evaluation is counted and timed, and the global metrics
  /// registry is force-enabled for the duration so kernel counters and
  /// parallel-dispatch decisions land in the report. Slower than Execute()
  /// by design; Execute() itself is untouched.
  Result<ProfileReport> Profile(const ExecOptions& options) const;
  Result<ProfileReport> Profile() const { return Profile(ExecOptions()); }

  /// Rule-application counts from compilation.
  const RewriteStats& rewrite_stats() const { return rewrite_stats_; }

 private:
  friend class XQueryEngine;
  CompiledQuery() = default;

  /// Binds globals and prepares a dynamic context for one run.
  Status SetupContext(const ExecOptions& options, DynamicContext* ctx) const;

  /// Refreshes PathExpr access-path annotations against the engine's
  /// *currently cached* indexes (peek-only) before an EXPLAIN rendering —
  /// a plan explained after a warm-up run shows the decision execution
  /// would make.
  void AnnotateForExplain() const;

  /// Engine default_limits overridden by the per-call limits.
  QueryLimits EffectiveLimits(const ExecOptions& options) const;

  /// Snapshot of the engine's CancelAll() token (null without an engine).
  std::shared_ptr<CancelToken> EngineToken() const;

  /// Bytecode program for this query, compiled once on first use and
  /// cached (compilation failure — only possible via the "vm.compile"
  /// fault site — is cached too; the query then permanently falls back to
  /// the lazy engine). Returns the cached program or the cached error.
  Result<std::shared_ptr<const vm::Program>> VmProgram() const;

  std::unique_ptr<ParsedModule> module_;
  XQueryEngine* engine_ = nullptr;
  RewriteStats rewrite_stats_;

  mutable std::once_flag vm_once_;
  mutable std::shared_ptr<const vm::Program> vm_program_;
  mutable Status vm_status_ = Status::OK();
};

/// Serializes a result sequence: nodes as XML, atomics as lexical values
/// separated by spaces (the DM4 serialization step).
Result<std::string> SerializeSequence(const Sequence& seq,
                                      const SerializeOptions& options = {});

}  // namespace xqp

#endif  // XQP_ENGINE_H_
