#ifndef XQP_XML_SERIALIZER_H_
#define XQP_XML_SERIALIZER_H_

#include <string>

#include "base/status.h"
#include "xml/node.h"

namespace xqp {

/// Serialization options (DM4 "serialize" step of the data-model life cycle).
struct SerializeOptions {
  /// Pretty-print with two-space indentation. Off by default: round-trip
  /// fidelity matters more than looks for tests.
  bool indent = false;
  /// Emit an "<?xml version=...?>" declaration before a document node.
  bool xml_declaration = false;
};

/// Serializes the subtree rooted at `node` into `out`. Namespace
/// declarations are re-derived: a declaration is emitted wherever a node's
/// URI is not already bound to its prefix in scope (so constructed trees
/// serialize well-formed without carrying explicit namespace nodes).
Status SerializeNode(const Node& node, const SerializeOptions& options,
                     std::string* out);

/// Convenience wrapper returning the string.
Result<std::string> SerializeToString(const Node& node,
                                      const SerializeOptions& options = {});

}  // namespace xqp

#endif  // XQP_XML_SERIALIZER_H_
