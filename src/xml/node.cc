#include "xml/node.h"

namespace xqp {
// Node is header-only; this file anchors the translation unit.
}  // namespace xqp
