#include "xml/document.h"

#include <algorithm>
#include <atomic>

#include "base/fault.h"
#include "base/limits.h"
#include "base/string_util.h"
#include "xml/pull_parser.h"

namespace xqp {

std::string_view NodeKindName(NodeKind k) {
  switch (k) {
    case NodeKind::kDocument:
      return "document";
    case NodeKind::kElement:
      return "element";
    case NodeKind::kAttribute:
      return "attribute";
    case NodeKind::kText:
      return "text";
    case NodeKind::kComment:
      return "comment";
    case NodeKind::kProcessingInstruction:
      return "processing-instruction";
  }
  return "unknown";
}

namespace {
std::atomic<uint64_t> g_next_document_id{1};
}  // namespace

Document::Document() : id_(g_next_document_id.fetch_add(1)) {}

NodeIndex Document::root_element() const {
  if (nodes_count_ == 0) return kNullNode;
  for (NodeIndex c = nodes_data_[0].first_child; c != kNullNode;
       c = nodes_data_[c].next_sibling) {
    if (nodes_data_[c].kind == NodeKind::kElement) return c;
  }
  return kNullNode;
}

uint32_t Document::FindNameId(std::string_view uri,
                              std::string_view local) const {
  QName key{std::string(uri), std::string(local)};
  auto it = name_index_.find(key);
  return it == name_index_.end() ? kNoName : it->second;
}

std::string Document::StringValue(NodeIndex i) const {
  const NodeRecord& n = nodes_data_[i];
  switch (n.kind) {
    case NodeKind::kAttribute:
    case NodeKind::kText:
    case NodeKind::kComment:
    case NodeKind::kProcessingInstruction:
      return std::string(value(i));
    case NodeKind::kDocument:
    case NodeKind::kElement: {
      std::string out;
      // All descendants lie in the index range (i, n.end]; collect text.
      for (NodeIndex d = i + 1; d <= n.end && d < nodes_count_; ++d) {
        if (nodes_data_[d].kind == NodeKind::kText) out.append(value(d));
      }
      return out;
    }
  }
  return std::string();
}

const std::vector<Document::NsDecl>* Document::NamespaceDecls(
    NodeIndex i) const {
  auto it = ns_decls_.find(i);
  return it == ns_decls_.end() ? nullptr : &it->second;
}

size_t Document::MemoryUsage() const {
  // Snapshot-loaded documents own no node vector; count the mapped table.
  size_t bytes =
      std::max(nodes_.capacity(), nodes_count_) * sizeof(NodeRecord);
  bytes += pool_.MemoryUsage();
  for (const QName& q : names_) {
    bytes += q.uri.capacity() + q.prefix.capacity() + q.local.capacity() +
             sizeof(QName);
  }
  return bytes;
}

Result<std::shared_ptr<Document>> Document::Parse(std::string_view xml,
                                                  const ParseOptions& options) {
  XmlPullParser parser(xml, options);
  DocumentBuilder builder(options);
  builder.ReserveForInput(xml.size());
  // Builder-detected violations (e.g. duplicate attributes) are dynamic
  // errors in constructor contexts but well-formedness errors here.
  auto as_parse_error = [](Status st) {
    if (st.ok() || st.code() == StatusCode::kParseError) return st;
    return Status::ParseError(st.message());
  };
  // Memoized name interning: the parser stamps each distinct resolved name
  // with a dense token, so every name is hashed into the builder's name
  // table exactly once (stored as name_id + 1; 0 = unseen). Intern order is
  // unchanged, so name ids are identical to interning per event.
  std::vector<uint32_t> name_ids;
  auto name_id_for = [&](uint32_t token, const QName& name) -> uint32_t {
    if (token >= name_ids.size()) name_ids.resize(token + 1, 0);
    if (name_ids[token] == 0) {
      name_ids[token] = builder.InternNameId(name) + 1;
    }
    return name_ids[token] - 1;
  };
  while (true) {
    XQP_ASSIGN_OR_RETURN(const XmlEvent* event, parser.Next());
    if (event == nullptr) break;
    switch (event->type) {
      case XmlEventType::kStartDocument:
      case XmlEventType::kEndDocument:
        break;
      case XmlEventType::kStartElement: {
        XQP_RETURN_NOT_OK(as_parse_error(builder.BeginElement(
            name_id_for(event->name_token, event->name))));
        for (const XmlNamespaceDecl& ns : event->ns_decls) {
          XQP_RETURN_NOT_OK(
              as_parse_error(builder.NamespaceDecl(ns.prefix, ns.uri)));
        }
        for (const XmlAttribute& attr : event->attributes) {
          XQP_RETURN_NOT_OK(as_parse_error(builder.Attribute(
              name_id_for(attr.name_token, attr.name), attr.name,
              attr.value)));
        }
        break;
      }
      case XmlEventType::kEndElement:
        XQP_RETURN_NOT_OK(as_parse_error(builder.EndElement()));
        break;
      case XmlEventType::kText:
        XQP_RETURN_NOT_OK(as_parse_error(builder.Text(event->text)));
        break;
      case XmlEventType::kComment:
        XQP_RETURN_NOT_OK(as_parse_error(builder.Comment(event->text)));
        break;
      case XmlEventType::kProcessingInstruction:
        XQP_RETURN_NOT_OK(as_parse_error(
            builder.ProcessingInstruction(event->name.local, event->text)));
        break;
    }
  }
  return builder.Finish();
}

DocumentBuilder::DocumentBuilder() : DocumentBuilder(ParseOptions()) {}

DocumentBuilder::DocumentBuilder(const ParseOptions& options)
    : doc_(std::shared_ptr<Document>(new Document())), options_(options) {
  doc_->pool_.set_pooling_enabled(options.pool_strings);
  // The document node is row 0.
  doc_->nodes_.push_back(NodeRecord{NodeKind::kDocument, 0, kNoName, kNoValue,
                                    kNullNode, kNullNode, kNullNode, kNullNode,
                                    0});
  doc_->SyncNodeView();
  stack_.push_back(Open{0});
}

void DocumentBuilder::ReserveForInput(size_t input_bytes) {
  // XMark-like markup averages ~18 bytes per node; reserving at 24 keeps a
  // single doubling in the worst case while text-heavy inputs stay modest.
  size_t nodes = input_bytes / 24 + 8;
  doc_->nodes_.reserve(doc_->nodes_.size() + nodes);
  doc_->pool_.Reserve(nodes / 4);
}

Status DocumentBuilder::ChargeNode(size_t value_bytes) {
  if (fault::Armed()) {
    XQP_RETURN_NOT_OK(fault::MaybeInject("alloc"));
  }
  if (ResourceGovernor* governor = CurrentGovernor()) {
    XQP_RETURN_NOT_OK(
        governor->ChargeBytes(sizeof(NodeRecord) + value_bytes));
  }
  return Status::OK();
}

uint32_t DocumentBuilder::InternName(const QName& name) {
  auto it = doc_->name_index_.find(name);
  if (it != doc_->name_index_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(doc_->names_.size());
  doc_->names_.push_back(name);
  doc_->name_index_.emplace(name, id);
  return id;
}

NodeIndex DocumentBuilder::Append(NodeKind kind, uint32_t name_id,
                                  StringPool::Id value_id) {
  NodeIndex index = static_cast<NodeIndex>(doc_->nodes_.size());
  Open& top = stack_.back();
  NodeRecord rec;
  rec.kind = kind;
  // Parent is the top of the stack, whose depth is stack_.size() - 1, so the
  // appended node (child or attribute) sits one level deeper.
  rec.level = static_cast<uint16_t>(stack_.size());
  rec.name_id = name_id;
  rec.value_id = value_id;
  rec.parent = top.index;
  rec.next_sibling = kNullNode;
  rec.first_attr = kNullNode;
  rec.first_child = kNullNode;
  rec.end = index;
  doc_->nodes_.push_back(rec);
  doc_->SyncNodeView();

  NodeRecord& parent = doc_->nodes_[top.index];
  if (kind == NodeKind::kAttribute) {
    if (top.last_attr == kNullNode) {
      parent.first_attr = index;
    } else {
      doc_->nodes_[top.last_attr].next_sibling = index;
    }
    top.last_attr = index;
  } else {
    if (top.last_child == kNullNode) {
      parent.first_child = index;
    } else {
      doc_->nodes_[top.last_child].next_sibling = index;
    }
    top.last_child = index;
    top.last_was_text = (kind == NodeKind::kText);
  }
  return index;
}

Status DocumentBuilder::BeginElement(const QName& name) {
  if (finished_) return Status::Internal("builder already finished");
  // Constructed documents bypass the pull parser, so the builder enforces
  // the nesting ceiling itself (NodeRecord.level is 16 bits).
  uint32_t max_depth = std::min<uint32_t>(
      options_.max_parse_depth == 0 ? QueryLimits::kDefaultMaxParseDepth
                                    : options_.max_parse_depth,
      65535);
  if (stack_.size() > max_depth) {
    return Status::ParseError("element nesting exceeds maximum depth of " +
                              std::to_string(max_depth));
  }
  XQP_RETURN_NOT_OK(ChargeNode(0));
  NodeIndex index = Append(NodeKind::kElement, InternName(name), kNoValue);
  stack_.push_back(Open{index});
  return Status::OK();
}

Status DocumentBuilder::BeginElement(uint32_t name_id) {
  if (finished_) return Status::Internal("builder already finished");
  uint32_t max_depth = std::min<uint32_t>(
      options_.max_parse_depth == 0 ? QueryLimits::kDefaultMaxParseDepth
                                    : options_.max_parse_depth,
      65535);
  if (stack_.size() > max_depth) {
    return Status::ParseError("element nesting exceeds maximum depth of " +
                              std::to_string(max_depth));
  }
  XQP_RETURN_NOT_OK(ChargeNode(0));
  NodeIndex index = Append(NodeKind::kElement, name_id, kNoValue);
  stack_.push_back(Open{index});
  return Status::OK();
}

Status DocumentBuilder::EndElement() {
  if (stack_.size() <= 1) {
    return Status::Internal("EndElement without matching BeginElement");
  }
  NodeIndex index = stack_.back().index;
  stack_.pop_back();
  // Region end label: the subtree occupies rows [index, last appended].
  doc_->nodes_[index].end = static_cast<NodeIndex>(doc_->nodes_.size() - 1);
  stack_.back().last_was_text = false;
  return Status::OK();
}

Status DocumentBuilder::Attribute(const QName& name, std::string_view value) {
  const NodeRecord& parent = doc_->nodes_[stack_.back().index];
  if (parent.kind != NodeKind::kElement) {
    return Status::DynamicError("attribute outside element");
  }
  if (stack_.back().last_child != kNullNode) {
    return Status::DynamicError(
        "attribute \"" + name.Lexical() +
        "\" constructed after non-attribute content of element");
  }
  return AttributeById(InternName(name), name, value);
}

Status DocumentBuilder::Attribute(uint32_t name_id, const QName& name,
                                  std::string_view value) {
  const NodeRecord& parent = doc_->nodes_[stack_.back().index];
  if (parent.kind != NodeKind::kElement) {
    return Status::DynamicError("attribute outside element");
  }
  if (stack_.back().last_child != kNullNode) {
    return Status::DynamicError(
        "attribute \"" + name.Lexical() +
        "\" constructed after non-attribute content of element");
  }
  return AttributeById(name_id, name, value);
}

Status DocumentBuilder::AttributeById(uint32_t name_id, const QName& name,
                                      std::string_view value) {
  const NodeRecord& parent = doc_->nodes_[stack_.back().index];
  // Reject duplicate attribute names on the same element.
  for (NodeIndex a = parent.first_attr; a != kNullNode;
       a = doc_->nodes_[a].next_sibling) {
    if (doc_->nodes_[a].name_id == name_id) {
      return Status::DynamicError("duplicate attribute: " + name.Lexical());
    }
  }
  XQP_RETURN_NOT_OK(ChargeNode(value.size()));
  Append(NodeKind::kAttribute, name_id, doc_->pool_.Intern(value));
  return Status::OK();
}

Status DocumentBuilder::OrphanAttribute(const QName& name,
                                        std::string_view value) {
  if (stack_.size() != 1) {
    return Status::Internal("OrphanAttribute inside an open element");
  }
  XQP_RETURN_NOT_OK(ChargeNode(value.size()));
  Append(NodeKind::kAttribute, InternName(name), doc_->pool_.Intern(value));
  return Status::OK();
}

Status DocumentBuilder::NamespaceDecl(std::string_view prefix,
                                      std::string_view uri) {
  const Open& top = stack_.back();
  if (doc_->nodes_[top.index].kind != NodeKind::kElement) {
    return Status::DynamicError("namespace declaration outside element");
  }
  doc_->ns_decls_[top.index].push_back(
      Document::NsDecl{std::string(prefix), std::string(uri)});
  return Status::OK();
}

Status DocumentBuilder::Text(std::string_view text) {
  if (text.empty()) return Status::OK();
  if (options_.strip_whitespace && IsAllXmlWhitespace(text) &&
      stack_.size() > 1) {
    return Status::OK();
  }
  XQP_RETURN_NOT_OK(ChargeNode(text.size()));
  Open& top = stack_.back();
  if (top.last_was_text) {
    // Coalesce with the preceding text node.
    NodeRecord& prev = doc_->nodes_[top.last_child];
    std::string merged(doc_->pool_.Get(prev.value_id));
    merged.append(text);
    prev.value_id = doc_->pool_.Intern(merged);
    return Status::OK();
  }
  Append(NodeKind::kText, kNoName, doc_->pool_.Intern(text));
  return Status::OK();
}

Status DocumentBuilder::Comment(std::string_view text) {
  XQP_RETURN_NOT_OK(ChargeNode(text.size()));
  Append(NodeKind::kComment, kNoName, doc_->pool_.Intern(text));
  return Status::OK();
}

Status DocumentBuilder::ProcessingInstruction(std::string_view target,
                                              std::string_view data) {
  XQP_RETURN_NOT_OK(ChargeNode(data.size()));
  Append(NodeKind::kProcessingInstruction,
         InternName(QName(std::string(target))), doc_->pool_.Intern(data));
  return Status::OK();
}

Status DocumentBuilder::CopySubtree(const Document& src, NodeIndex root) {
  const NodeRecord& r = src.node(root);
  switch (r.kind) {
    case NodeKind::kDocument: {
      // Copying a document node copies its children.
      for (NodeIndex c = r.first_child; c != kNullNode;
           c = src.node(c).next_sibling) {
        XQP_RETURN_NOT_OK(CopySubtree(src, c));
      }
      return Status::OK();
    }
    case NodeKind::kText:
      return Text(src.value(root));
    case NodeKind::kComment:
      return Comment(src.value(root));
    case NodeKind::kProcessingInstruction:
      return ProcessingInstruction(src.name(root).local, src.value(root));
    case NodeKind::kAttribute:
      return Attribute(src.name(root), src.value(root));
    case NodeKind::kElement: {
      XQP_RETURN_NOT_OK(BeginElement(src.name(root)));
      if (const auto* decls = src.NamespaceDecls(root)) {
        for (const auto& d : *decls) {
          XQP_RETURN_NOT_OK(NamespaceDecl(d.prefix, d.uri));
        }
      }
      for (NodeIndex a = r.first_attr; a != kNullNode;
           a = src.node(a).next_sibling) {
        XQP_RETURN_NOT_OK(Attribute(src.name(a), src.value(a)));
      }
      for (NodeIndex c = r.first_child; c != kNullNode;
           c = src.node(c).next_sibling) {
        XQP_RETURN_NOT_OK(CopySubtree(src, c));
      }
      return EndElement();
    }
  }
  return Status::Internal("unknown node kind in CopySubtree");
}

Result<std::shared_ptr<Document>> DocumentBuilder::Finish() {
  if (finished_) return Status::Internal("builder already finished");
  if (stack_.size() != 1) {
    return Status::ParseError("unclosed element at end of input");
  }
  finished_ = true;
  doc_->nodes_[0].end = static_cast<NodeIndex>(doc_->nodes_.size() - 1);
  return doc_;
}

}  // namespace xqp
