#include "xml/qname.h"

#include <functional>

namespace xqp {

size_t QNameHash::operator()(const QName& q) const {
  size_t h1 = std::hash<std::string>()(q.uri);
  size_t h2 = std::hash<std::string>()(q.local);
  return h1 * 1000003u ^ h2;
}

}  // namespace xqp
