#include "xml/string_pool.h"

#include <algorithm>
#include <cstring>

namespace xqp {

std::string_view StringPool::Append(std::string_view s) {
  if (s.empty()) return std::string_view();
  if (s.size() > chunk_cap_ - chunk_used_) {
    // Strings wider than a chunk get a dedicated one; the abandoned tail of
    // the previous chunk is bounded by one chunk per oversized string.
    size_t cap = std::max(s.size(), kChunkBytes);
    chunks_.push_back(std::make_unique<char[]>(cap));
    retired_bytes_ += chunk_used_;
    chunk_cap_ = cap;
    chunk_used_ = 0;
  }
  char* dst = chunks_.back().get() + chunk_used_;
  std::memcpy(dst, s.data(), s.size());
  chunk_used_ += s.size();
  return std::string_view(dst, s.size());
}

StringPool::Id StringPool::Intern(std::string_view s) {
  Id id = static_cast<Id>(views_.size());
  if (!pooling_enabled_) {
    views_.push_back(Append(s));
    return id;
  }
  // Single-probe intern: append first so the index key points at stable
  // arena storage, then try_emplace; a duplicate undoes the tail append.
  std::string_view stored = Append(s);
  auto [it, inserted] = index_.try_emplace(stored, id);
  if (!inserted) {
    chunk_used_ -= s.size();
    return it->second;
  }
  views_.push_back(stored);
  return id;
}

StringPool::Id StringPool::Find(std::string_view s) const {
  auto it = index_.find(s);
  return it == index_.end() ? kInvalid : it->second;
}

void StringPool::Reserve(size_t expected_strings) {
  views_.reserve(expected_strings);
  if (pooling_enabled_) index_.reserve(expected_strings);
}

void StringPool::AdoptFrozen(std::vector<std::string_view> views) {
  chunks_.clear();
  chunk_cap_ = 0;
  chunk_used_ = 0;
  retired_bytes_ = 0;
  index_.clear();
  frozen_bytes_ = 0;
  for (std::string_view v : views) frozen_bytes_ += v.size();
  views_ = std::move(views);
}

size_t StringPool::MemoryUsage() const {
  size_t bytes = retired_bytes_ + chunk_used_ + frozen_bytes_;
  bytes += views_.capacity() * sizeof(std::string_view);
  // Rough estimate of the hash index overhead.
  bytes += index_.size() * (sizeof(void*) * 2 + sizeof(std::string_view) +
                            sizeof(Id));
  return bytes;
}

}  // namespace xqp
