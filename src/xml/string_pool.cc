#include "xml/string_pool.h"

namespace xqp {

StringPool::Id StringPool::Intern(std::string_view s) {
  if (pooling_enabled_) {
    auto it = index_.find(s);
    if (it != index_.end()) return it->second;
  }
  Id id = static_cast<Id>(strings_.size());
  strings_.emplace_back(s);
  if (pooling_enabled_) {
    index_.emplace(std::string_view(strings_.back()), id);
  }
  return id;
}

StringPool::Id StringPool::Find(std::string_view s) const {
  auto it = index_.find(s);
  return it == index_.end() ? kInvalid : it->second;
}

size_t StringPool::MemoryUsage() const {
  size_t bytes = 0;
  for (const std::string& s : strings_) {
    bytes += sizeof(std::string) + (s.capacity() > 15 ? s.capacity() : 0);
  }
  // Rough estimate of the hash index overhead.
  bytes += index_.size() * (sizeof(void*) * 2 + sizeof(std::string_view) +
                            sizeof(Id));
  return bytes;
}

}  // namespace xqp
