#ifndef XQP_XML_NODE_H_
#define XQP_XML_NODE_H_

#include <memory>
#include <string>

#include "xml/document.h"

namespace xqp {

/// Lightweight handle to one node of an immutable Document. Holds shared
/// ownership of the document so query results outlive their engine. A
/// default-constructed Node is "null" (used as the not-found sentinel by the
/// navigation accessors).
class Node {
 public:
  Node() = default;
  Node(std::shared_ptr<const Document> doc, NodeIndex index)
      : doc_(std::move(doc)), index_(index) {}

  bool IsNull() const { return doc_ == nullptr; }
  explicit operator bool() const { return !IsNull(); }

  const Document& doc() const { return *doc_; }
  const std::shared_ptr<const Document>& doc_ptr() const { return doc_; }
  NodeIndex index() const { return index_; }

  NodeKind kind() const { return record().kind; }
  uint16_t level() const { return record().level; }
  bool HasName() const { return record().name_id != kNoName; }
  const QName& name() const { return doc_->name(index_); }
  std::string_view value() const { return doc_->value(index_); }

  /// XDM accessors (paper, "Node accessors" slide).
  std::string StringValue() const { return doc_->StringValue(index_); }
  AtomicValue TypedValue() const { return doc_->TypedValue(index_); }

  Node Parent() const { return At(record().parent); }
  Node FirstChild() const { return At(record().first_child); }
  Node NextSibling() const { return At(record().next_sibling); }
  Node FirstAttribute() const { return At(record().first_attr); }

  /// Root of the containing tree (the document node).
  Node Root() const { return Node(doc_, doc_->document_node()); }

  /// Node identity ("is" operator).
  bool SameNode(const Node& other) const {
    return doc_.get() == other.doc_.get() && index_ == other.index_;
  }

  /// Total document order: within one document by region start label;
  /// across documents by document id (stable, implementation-defined, as
  /// the spec allows). Returns <0, 0, >0.
  static int CompareDocOrder(const Node& a, const Node& b) {
    if (a.doc_.get() != b.doc_.get()) {
      return a.doc_->id() < b.doc_->id() ? -1 : 1;
    }
    if (a.index_ == b.index_) return 0;
    return a.index_ < b.index_ ? -1 : 1;
  }

  /// True if this node is an ancestor of `other` (region containment test).
  bool IsAncestorOf(const Node& other) const {
    return doc_.get() == other.doc_.get() && index_ < other.index_ &&
           other.index_ <= record().end;
  }

  friend bool operator==(const Node& a, const Node& b) { return a.SameNode(b); }

 private:
  const NodeRecord& record() const { return doc_->node(index_); }
  Node At(NodeIndex i) const {
    return i == kNullNode ? Node() : Node(doc_, i);
  }

  std::shared_ptr<const Document> doc_;
  NodeIndex index_ = kNullNode;
};

}  // namespace xqp

#endif  // XQP_XML_NODE_H_
