#ifndef XQP_XML_PULL_PARSER_H_
#define XQP_XML_PULL_PARSER_H_

#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"
#include "xml/document.h"
#include "xml/qname.h"

namespace xqp {

/// Parse event types (DM1 "parse" step of the paper's data-model life
/// cycle). The granularity mirrors SAX / the TokenStream begin-end tokens.
enum class XmlEventType : uint8_t {
  kStartDocument,
  kStartElement,
  kEndElement,
  kText,
  kComment,
  kProcessingInstruction,
  kEndDocument,
};

struct XmlAttribute {
  QName name;
  std::string value;
};

struct XmlNamespaceDecl {
  std::string prefix;  // Empty for the default namespace.
  std::string uri;
};

/// One parse event. String members are owned by the parser and valid until
/// the next call to Next().
struct XmlEvent {
  XmlEventType type;
  QName name;         // Element name; PI target in name.local.
  std::string text;   // Text / comment / PI data.
  std::vector<XmlAttribute> attributes;   // kStartElement only.
  std::vector<XmlNamespaceDecl> ns_decls;  // kStartElement only.
};

/// Hand-written, namespace-aware, non-validating XML 1.0 pull parser.
/// Supports elements, attributes, namespaces, character data, CDATA,
/// comments, processing instructions, the five predefined entities, and
/// numeric character references. DOCTYPE declarations are skipped (no DTD
/// processing). Input must outlive the parser.
class XmlPullParser {
 public:
  XmlPullParser(std::string_view input, const ParseOptions& options = {});

  /// Returns the next event, or nullptr after kEndDocument was delivered.
  /// Malformed input yields a ParseError with "line:column: message".
  Result<const XmlEvent*> Next();

  /// 1-based position of the parse cursor, for error reporting.
  size_t line() const { return line_; }
  size_t column() const { return column_; }

 private:
  Status Error(const std::string& message) const;
  void Advance(size_t n);
  bool Eof() const { return pos_ >= input_.size(); }
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < input_.size() ? input_[pos_ + ahead] : '\0';
  }
  bool Looking(std::string_view s) const {
    return input_.compare(pos_, s.size(), s) == 0;
  }
  void SkipWhitespace();

  Status ParseName(std::string_view* out);
  Status DecodeEntitiesInto(std::string_view raw, std::string* out);
  Status ParseAttributeValue(std::string* out);
  Status ParseStartTag();
  Status ParseEndTag();
  Status ParseComment();
  Status ParsePi();
  Status ParseCData();
  Status ParseText();
  Status SkipDoctype();
  Status SkipXmlDecl();

  /// Resolves `prefix` against the in-scope namespace stack.
  Result<std::string> ResolvePrefix(std::string_view prefix,
                                    bool is_attribute) const;

  std::string_view input_;
  ParseOptions options_;
  size_t pos_ = 0;
  size_t line_ = 1;
  size_t column_ = 1;

  enum class State { kBeforeDocument, kInDocument, kAfterDocument, kDone };
  State state_ = State::kBeforeDocument;

  XmlEvent event_;

  // In-scope namespace bindings; each frame is the number of bindings pushed
  // by the corresponding open element.
  std::vector<std::pair<std::string, std::string>> ns_bindings_;
  std::vector<size_t> ns_frames_;
  std::vector<std::string> open_elements_;  // Lexical names for tag matching.
  bool pending_end_element_ = false;        // Set by <empty/> tags.
  uint32_t max_depth_ = 0;  // Resolved element-nesting ceiling.
};

}  // namespace xqp

#endif  // XQP_XML_PULL_PARSER_H_
