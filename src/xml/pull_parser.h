#ifndef XQP_XML_PULL_PARSER_H_
#define XQP_XML_PULL_PARSER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "base/status.h"
#include "xml/document.h"
#include "xml/qname.h"

namespace xqp {

/// Parse event types (DM1 "parse" step of the paper's data-model life
/// cycle). The granularity mirrors SAX / the TokenStream begin-end tokens.
enum class XmlEventType : uint8_t {
  kStartDocument,
  kStartElement,
  kEndElement,
  kText,
  kComment,
  kProcessingInstruction,
  kEndDocument,
};

/// Sentinel for XmlEvent/XmlAttribute name_token: no token assigned.
constexpr uint32_t kNoNameToken = UINT32_MAX;

struct XmlAttribute {
  QName name;
  std::string_view value;  // Slice of the input, or parser scratch.
  /// See XmlEvent::name_token.
  uint32_t name_token = kNoNameToken;
};

struct XmlNamespaceDecl {
  std::string prefix;  // Empty for the default namespace.
  std::string uri;
};

/// One parse event. `text` and attribute values are zero-copy slices of the
/// parser input whenever possible (no entities to expand); otherwise they
/// point into parser-owned scratch storage. Either way they are valid only
/// until the next call to Next(), and only while the input buffer lives.
struct XmlEvent {
  XmlEventType type;
  QName name;              // Element name; PI target in name.local.
  std::string_view text;   // Text / comment / PI data.
  std::vector<XmlAttribute> attributes;    // kStartElement only.
  std::vector<XmlNamespaceDecl> ns_decls;  // kStartElement only.
  /// Dense parser-assigned id for `name`: two events with the same token
  /// carry value-identical QNames, so consumers can memoize per-token
  /// work (e.g. builder name-table interning) instead of re-hashing the
  /// name. Tokens are never reused within one parse; the same expanded
  /// name may map to several tokens (e.g. after a namespace re-binding).
  /// kNoNameToken for events without a tokenized name (PI targets).
  uint32_t name_token = kNoNameToken;
};

/// Hand-written, namespace-aware, non-validating XML 1.0 pull parser.
/// Supports elements, attributes, namespaces, character data, CDATA,
/// comments, processing instructions, the five predefined entities, and
/// numeric character references. DOCTYPE declarations are skipped (no DTD
/// processing). Input must outlive the parser.
///
/// The scan loop is block-oriented: structural characters ('<', '&',
/// closing quotes) are located with memchr / SWAR word probes rather than a
/// byte-at-a-time cursor, events alias the input instead of copying, and
/// line:column positions are recomputed from the byte offset only when an
/// error is actually raised. tests/test_ingest.cc pins this fast path
/// byte-for-byte (events, node tables, error strings) against a frozen
/// copy of the original per-byte parser.
class XmlPullParser {
 public:
  XmlPullParser(std::string_view input, const ParseOptions& options = {});

  /// Returns the next event, or nullptr after kEndDocument was delivered.
  /// Malformed input yields a ParseError with "line:column: message".
  Result<const XmlEvent*> Next();

  /// 1-based position of the parse cursor, for error reporting. Computed on
  /// demand by scanning the consumed prefix (not O(1); error paths only).
  size_t line() const { return LineColAt(pos_).first; }
  size_t column() const { return LineColAt(pos_).second; }

 private:
  Status Error(const std::string& message) const;
  bool Eof() const { return pos_ >= input_.size(); }
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < input_.size() ? input_[pos_ + ahead] : '\0';
  }
  bool Looking(std::string_view s) const {
    return input_.compare(pos_, s.size(), s) == 0;
  }
  void SkipWhitespace();

  /// Line/column of byte offset `pos`, derived lazily: one memchr sweep
  /// over the prefix instead of two branches per byte in the hot loop.
  std::pair<size_t, size_t> LineColAt(size_t pos) const;

  Status ParseName(std::string_view* out);
  Status DecodeEntitiesInto(std::string_view raw, std::string* out);
  /// Scans a quoted attribute value. Zero-copy: `*out` aliases the input
  /// when no entity reference occurs, else `*decoded` is set and the value
  /// text is appended to attr_buf_ (caller slices it after the tag is
  /// complete, since the buffer may reallocate while attributes accumulate).
  Status ParseAttributeValue(std::string_view* out, bool* decoded,
                             size_t* buf_off, size_t* buf_len);
  Status ParseStartTag();
  Status ParseEndTag();
  Status ParseComment();
  Status ParsePi();
  Status ParseCData();
  Status ParseText();
  Status SkipDoctype();
  Status SkipXmlDecl();

  /// Resolves `prefix` against the in-scope namespace stack.
  Result<std::string> ResolvePrefix(std::string_view prefix,
                                    bool is_attribute) const;

  /// Cached lexical-name -> resolved QName lookup (the cache is invalidated
  /// whenever the in-scope namespace bindings change, so hits are sound).
  Status ResolveName(std::string_view lexical, bool is_attribute, QName* out,
                     uint32_t* token);

  /// Drops both name caches; call after any ns_bindings_ push or pop.
  void InvalidateNameCaches();

  std::string_view input_;
  ParseOptions options_;
  size_t pos_ = 0;

  enum class State { kBeforeDocument, kInDocument, kAfterDocument, kDone };
  State state_ = State::kBeforeDocument;

  XmlEvent event_;

  // In-scope namespace bindings; each frame is the number of bindings pushed
  // by the corresponding open element.
  std::vector<std::pair<std::string, std::string>> ns_bindings_;
  std::vector<size_t> ns_frames_;
  /// Lexical names for end-tag matching; slices of the input.
  std::vector<std::string_view> open_elements_;
  bool pending_end_element_ = false;  // Set by <empty/> tags.
  uint32_t max_depth_ = 0;  // Resolved element-nesting ceiling.

  /// Scratch storage backing non-zero-copy event slices; reused across
  /// events so steady-state parsing does not allocate.
  std::string text_buf_;  // Entity-decoded character data.
  std::string attr_buf_;  // Entity-decoded attribute values.

  /// Raw attributes of the tag being parsed, reused across start tags.
  struct RawAttr {
    std::string_view lexical;
    std::string_view value;  // Input slice; empty when decoded.
    size_t buf_off = 0;      // Range in attr_buf_ when decoded.
    size_t buf_len = 0;
    bool decoded = false;
  };
  std::vector<RawAttr> raw_attrs_;

  /// Resolved-name caches keyed by lexical name (slices of the input, so
  /// keys stay valid for the whole parse). Separate maps because attribute
  /// and element resolution differ on the default namespace.
  struct CachedName {
    QName qname;
    uint32_t token;
  };
  std::unordered_map<std::string_view, CachedName> elem_names_;
  std::unordered_map<std::string_view, CachedName> attr_names_;
  uint32_t next_name_token_ = 0;  // Monotone; survives cache invalidation.

  uint64_t events_ = 0;  // Delivered events, for the parse.* counters.
};

}  // namespace xqp

#endif  // XQP_XML_PULL_PARSER_H_
