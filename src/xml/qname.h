#ifndef XQP_XML_QNAME_H_
#define XQP_XML_QNAME_H_

#include <string>
#include <string_view>

namespace xqp {

/// Expanded XML qualified name: namespace URI + local part, plus the lexical
/// prefix kept for serialization fidelity. Equality and hashing ignore the
/// prefix, per the XML Namespaces recommendation.
struct QName {
  std::string uri;
  std::string prefix;
  std::string local;

  QName() = default;
  explicit QName(std::string local_name) : local(std::move(local_name)) {}
  QName(std::string uri_in, std::string local_in)
      : uri(std::move(uri_in)), local(std::move(local_in)) {}
  QName(std::string uri_in, std::string prefix_in, std::string local_in)
      : uri(std::move(uri_in)),
        prefix(std::move(prefix_in)),
        local(std::move(local_in)) {}

  bool empty() const { return local.empty(); }

  /// Lexical form "prefix:local" (or just "local").
  std::string Lexical() const {
    return prefix.empty() ? local : prefix + ":" + local;
  }

  /// Clark notation "{uri}local", used in diagnostics.
  std::string Clark() const {
    return uri.empty() ? local : "{" + uri + "}" + local;
  }

  friend bool operator==(const QName& a, const QName& b) {
    return a.local == b.local && a.uri == b.uri;
  }
  friend bool operator!=(const QName& a, const QName& b) { return !(a == b); }
  friend bool operator<(const QName& a, const QName& b) {
    if (a.uri != b.uri) return a.uri < b.uri;
    return a.local < b.local;
  }
};

/// Hash for QName (uri + local).
struct QNameHash {
  size_t operator()(const QName& q) const;
};

}  // namespace xqp

#endif  // XQP_XML_QNAME_H_
