#include "xml/atomic_value.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <functional>
#include <limits>

#include "base/string_util.h"

namespace xqp {

std::string_view XsTypeName(XsType t) {
  switch (t) {
    case XsType::kUntypedAtomic:
      return "xdt:untypedAtomic";
    case XsType::kString:
      return "xs:string";
    case XsType::kAnyUri:
      return "xs:anyURI";
    case XsType::kBoolean:
      return "xs:boolean";
    case XsType::kInteger:
      return "xs:integer";
    case XsType::kDecimal:
      return "xs:decimal";
    case XsType::kDouble:
      return "xs:double";
    case XsType::kQName:
      return "xs:QName";
  }
  return "xs:anyAtomicType";
}

Result<XsType> XsTypeFromName(std::string_view name) {
  // Accept both prefixed ("xs:integer") and bare ("integer") forms.
  size_t colon = name.find(':');
  std::string_view local =
      colon == std::string_view::npos ? name : name.substr(colon + 1);
  if (local == "untypedAtomic") return XsType::kUntypedAtomic;
  if (local == "string") return XsType::kString;
  if (local == "anyURI") return XsType::kAnyUri;
  if (local == "boolean") return XsType::kBoolean;
  if (local == "integer" || local == "int" || local == "long") {
    return XsType::kInteger;
  }
  if (local == "decimal") return XsType::kDecimal;
  if (local == "double" || local == "float") return XsType::kDouble;
  if (local == "QName") return XsType::kQName;
  return Status::StaticError("unknown atomic type: " + std::string(name));
}

Result<double> ParseXsDouble(std::string_view lexical) {
  std::string_view s = TrimXmlWhitespace(lexical);
  if (s == "INF" || s == "+INF") return std::numeric_limits<double>::infinity();
  if (s == "-INF") return -std::numeric_limits<double>::infinity();
  if (s == "NaN") return std::numeric_limits<double>::quiet_NaN();
  if (s.empty()) {
    return Status::TypeError("cannot cast empty string to xs:double");
  }
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size() || errno == ERANGE) {
    return Status::TypeError("cannot cast \"" + buf + "\" to xs:double");
  }
  return v;
}

Result<int64_t> ParseXsInteger(std::string_view lexical) {
  std::string_view s = TrimXmlWhitespace(lexical);
  if (s.empty()) {
    return Status::TypeError("cannot cast empty string to xs:integer");
  }
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size() || errno == ERANGE) {
    return Status::TypeError("cannot cast \"" + buf + "\" to xs:integer");
  }
  return static_cast<int64_t>(v);
}

namespace {

std::string FormatDecimal(double v) {
  // xs:decimal has no exponent in its lexical form.
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10f", v);
  // Trim trailing zeros but keep at least one fractional digit.
  std::string s(buf);
  size_t last = s.find_last_not_of('0');
  if (s[last] == '.') ++last;
  s.erase(last + 1);
  return s;
}

}  // namespace

std::string AtomicValue::Lexical() const {
  switch (type_) {
    case XsType::kUntypedAtomic:
    case XsType::kString:
    case XsType::kAnyUri:
    case XsType::kQName:
      return AsString();
    case XsType::kBoolean:
      return AsBool() ? "true" : "false";
    case XsType::kInteger:
      return std::to_string(AsInt());
    case XsType::kDecimal:
      return FormatDecimal(AsRawDouble());
    case XsType::kDouble:
      return FormatDouble(AsRawDouble());
  }
  return std::string();
}

Result<AtomicValue> AtomicValue::CastTo(XsType target) const {
  if (target == type_) return *this;
  switch (target) {
    case XsType::kString:
      return String(Lexical());
    case XsType::kUntypedAtomic:
      return Untyped(Lexical());
    case XsType::kAnyUri:
      if (!IsStringLike()) {
        return Status::TypeError("cannot cast " +
                                 std::string(XsTypeName(type_)) +
                                 " to xs:anyURI");
      }
      return AnyUri(std::string(TrimXmlWhitespace(AsString())));
    case XsType::kDouble: {
      if (IsNumeric()) return Double(NumericAsDouble());
      if (type_ == XsType::kBoolean) return Double(AsBool() ? 1.0 : 0.0);
      if (IsStringLike()) {
        XQP_ASSIGN_OR_RETURN(double v, ParseXsDouble(AsString()));
        return Double(v);
      }
      break;
    }
    case XsType::kDecimal: {
      if (IsNumeric()) {
        double v = NumericAsDouble();
        if (std::isnan(v) || std::isinf(v)) {
          return Status::TypeError("cannot cast NaN/INF to xs:decimal");
        }
        return Decimal(v);
      }
      if (type_ == XsType::kBoolean) return Decimal(AsBool() ? 1.0 : 0.0);
      if (IsStringLike()) {
        XQP_ASSIGN_OR_RETURN(double v, ParseXsDouble(AsString()));
        if (std::isnan(v) || std::isinf(v)) {
          return Status::TypeError("cannot cast NaN/INF to xs:decimal");
        }
        return Decimal(v);
      }
      break;
    }
    case XsType::kInteger: {
      if (type_ == XsType::kInteger) return *this;
      if (IsNumeric()) {
        double v = NumericAsDouble();
        if (std::isnan(v) || std::isinf(v)) {
          return Status::TypeError("cannot cast NaN/INF to xs:integer");
        }
        return Integer(static_cast<int64_t>(std::trunc(v)));
      }
      if (type_ == XsType::kBoolean) return Integer(AsBool() ? 1 : 0);
      if (IsStringLike()) {
        XQP_ASSIGN_OR_RETURN(int64_t v, ParseXsInteger(AsString()));
        return Integer(v);
      }
      break;
    }
    case XsType::kBoolean: {
      if (IsNumeric()) {
        double v = NumericAsDouble();
        return Boolean(!(v == 0.0 || std::isnan(v)));
      }
      if (IsStringLike()) {
        std::string_view s = TrimXmlWhitespace(AsString());
        if (s == "true" || s == "1") return Boolean(true);
        if (s == "false" || s == "0") return Boolean(false);
        return Status::TypeError("cannot cast \"" + std::string(s) +
                                 "\" to xs:boolean");
      }
      break;
    }
    case XsType::kQName: {
      if (IsStringLike()) return QNameValue(AsString());
      break;
    }
    default:
      break;
  }
  return Status::TypeError("cannot cast " + std::string(XsTypeName(type_)) +
                           " to " + std::string(XsTypeName(target)));
}

bool AtomicValue::DeepEquals(const AtomicValue& other) const {
  if (IsNumeric() && other.IsNumeric()) {
    double a = NumericAsDouble();
    double b = other.NumericAsDouble();
    if (std::isnan(a) && std::isnan(b)) return true;  // fn:distinct-values.
    return a == b;
  }
  if (IsStringLike() && other.IsStringLike()) {
    return AsString() == other.AsString();
  }
  if (type_ == XsType::kBoolean && other.type_ == XsType::kBoolean) {
    return AsBool() == other.AsBool();
  }
  if (type_ == XsType::kQName && other.type_ == XsType::kQName) {
    return AsString() == other.AsString();
  }
  return false;
}

size_t AtomicValue::Hash() const {
  if (IsNumeric()) {
    double v = NumericAsDouble();
    if (std::isnan(v)) return 0x7ff8dead;
    if (v == 0.0) return 0;  // +0 and -0 hash alike.
    return std::hash<double>()(v);
  }
  if (type_ == XsType::kBoolean) return AsBool() ? 1231 : 1237;
  return std::hash<std::string>()(AsString());
}

}  // namespace xqp
