#ifndef XQP_XML_STRING_POOL_H_
#define XQP_XML_STRING_POOL_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace xqp {

/// Dictionary-compressing string pool: each distinct string is stored once
/// and referenced by a dense 32-bit id ("Pooling: store strings only once",
/// the TokenStream optimization in the paper). Ids are stable for the
/// lifetime of the pool; returned string_views remain valid as well because
/// the backing storage is a deque of strings that never relocates.
class StringPool {
 public:
  using Id = uint32_t;
  static constexpr Id kInvalid = UINT32_MAX;

  StringPool() = default;
  StringPool(const StringPool&) = delete;
  StringPool& operator=(const StringPool&) = delete;
  StringPool(StringPool&&) = default;
  StringPool& operator=(StringPool&&) = default;

  /// Interns `s`, returning the id of its unique copy. When pooling is
  /// disabled every call appends a fresh copy (used by the E4 ablation).
  Id Intern(std::string_view s);

  /// The interned string for `id`.
  std::string_view Get(Id id) const { return strings_[id]; }

  /// Looks up `s` without inserting; returns kInvalid when absent.
  Id Find(std::string_view s) const;

  /// Number of entries (distinct strings when pooling is on).
  size_t size() const { return strings_.size(); }

  /// Approximate heap bytes used by the pooled strings and the index.
  size_t MemoryUsage() const;

  /// Disables deduplication: Intern always appends. Exists so benchmarks can
  /// measure what pooling buys (paper's dictionary-compression claim).
  void set_pooling_enabled(bool enabled) { pooling_enabled_ = enabled; }
  bool pooling_enabled() const { return pooling_enabled_; }

 private:
  std::deque<std::string> strings_;
  std::unordered_map<std::string_view, Id> index_;
  bool pooling_enabled_ = true;
};

}  // namespace xqp

#endif  // XQP_XML_STRING_POOL_H_
