#ifndef XQP_XML_STRING_POOL_H_
#define XQP_XML_STRING_POOL_H_

#include <cstdint>
#include <memory>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace xqp {

namespace storage {
class SnapshotLoader;
}  // namespace storage

/// Dictionary-compressing string pool: each distinct string is stored once
/// and referenced by a dense 32-bit id ("Pooling: store strings only once",
/// the TokenStream optimization in the paper). Ids are stable for the
/// lifetime of the pool; returned string_views remain valid as well because
/// the backing storage is a bump arena of fixed chunks that never relocate.
///
/// Intern is a single hash probe: the candidate bytes are appended to the
/// arena first, then try_emplace'd into the index keyed by the arena copy;
/// a duplicate rolls the (tail) append back. Compared with the classic
/// find-then-insert this halves the number of times long values are hashed.
class StringPool {
 public:
  using Id = uint32_t;
  static constexpr Id kInvalid = UINT32_MAX;

  StringPool() = default;
  StringPool(const StringPool&) = delete;
  StringPool& operator=(const StringPool&) = delete;
  StringPool(StringPool&&) = default;
  StringPool& operator=(StringPool&&) = default;

  /// Interns `s`, returning the id of its unique copy. When pooling is
  /// disabled every call appends a fresh copy (used by the E4 ablation).
  Id Intern(std::string_view s);

  /// The interned string for `id`.
  std::string_view Get(Id id) const { return views_[id]; }

  /// Looks up `s` without inserting; returns kInvalid when absent.
  Id Find(std::string_view s) const;

  /// Number of entries (distinct strings when pooling is on).
  size_t size() const { return views_.size(); }

  /// Sizes the id table and hash index for an expected number of distinct
  /// strings (bulk-load hint; purely an optimization).
  void Reserve(size_t expected_strings);

  /// Approximate heap bytes used by the pooled strings and the index:
  /// arena bytes actually written (each chunk at its high-water mark), the
  /// id table, and the hash-index nodes.
  size_t MemoryUsage() const;

  /// Disables deduplication: Intern always appends. Exists so benchmarks can
  /// measure what pooling buys (paper's dictionary-compression claim).
  void set_pooling_enabled(bool enabled) { pooling_enabled_ = enabled; }
  bool pooling_enabled() const { return pooling_enabled_; }

 private:
  friend class storage::SnapshotLoader;

  /// Points the id table at strings resident in an mmap'd snapshot (kept
  /// alive by the owning Document's backing pointer), replacing any
  /// current contents. The hash index is left empty — Find() on a frozen
  /// pool reports absent, and the (unused on loaded documents) Intern path
  /// simply appends to fresh arena chunks without deduplicating against
  /// the frozen entries.
  void AdoptFrozen(std::vector<std::string_view> views);

  /// Copies `s` to the arena tail and returns the stable stored view.
  std::string_view Append(std::string_view s);

  static constexpr size_t kChunkBytes = 64 * 1024;

  std::vector<std::unique_ptr<char[]>> chunks_;
  size_t chunk_cap_ = 0;        // Capacity of chunks_.back(); 0 when empty.
  size_t chunk_used_ = 0;       // Bytes written into chunks_.back().
  size_t retired_bytes_ = 0;    // Sum of capacities of all full chunks.
  std::vector<std::string_view> views_;
  std::unordered_map<std::string_view, Id> index_;
  bool pooling_enabled_ = true;
  size_t frozen_bytes_ = 0;  // Mapped bytes referenced by frozen views.
};

}  // namespace xqp

#endif  // XQP_XML_STRING_POOL_H_
