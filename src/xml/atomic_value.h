#ifndef XQP_XML_ATOMIC_VALUE_H_
#define XQP_XML_ATOMIC_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

#include "base/status.h"

namespace xqp {

/// Dynamic types of atomic values. This is the untyped-data-model subset the
/// paper's examples use: schema validation (PSVI types) is an optional XQuery
/// feature and is not implemented — see DESIGN.md "Substitutions".
/// xs:decimal is carried in a double but keeps its own tag so the numeric
/// promotion lattice (integer -> decimal -> double) is preserved.
enum class XsType : uint8_t {
  kUntypedAtomic,
  kString,
  kAnyUri,
  kBoolean,
  kInteger,
  kDecimal,
  kDouble,
  kQName,
};

/// Name of `t` as written in queries ("xs:integer", "xdt:untypedAtomic").
std::string_view XsTypeName(XsType t);

/// Parses a type name ("xs:integer", "integer") into an XsType.
/// Returns a static error for unknown names.
Result<XsType> XsTypeFromName(std::string_view name);

/// An XQuery atomic value: a dynamic type tag plus the value itself.
/// "Atomic values carry their type together with the value" (paper, Data
/// Model section): (8, xs:integer) differs from (8, my:shoeSize).
class AtomicValue {
 public:
  AtomicValue() : type_(XsType::kUntypedAtomic), value_(std::string()) {}

  static AtomicValue Untyped(std::string s) {
    return AtomicValue(XsType::kUntypedAtomic, std::move(s));
  }
  static AtomicValue String(std::string s) {
    return AtomicValue(XsType::kString, std::move(s));
  }
  static AtomicValue AnyUri(std::string s) {
    return AtomicValue(XsType::kAnyUri, std::move(s));
  }
  static AtomicValue Boolean(bool b) { return AtomicValue(XsType::kBoolean, b); }
  static AtomicValue Integer(int64_t i) {
    return AtomicValue(XsType::kInteger, i);
  }
  static AtomicValue Decimal(double d) {
    return AtomicValue(XsType::kDecimal, d);
  }
  static AtomicValue Double(double d) { return AtomicValue(XsType::kDouble, d); }
  /// QName values are stored in Clark notation "{uri}local".
  static AtomicValue QNameValue(std::string clark) {
    return AtomicValue(XsType::kQName, std::move(clark));
  }

  XsType type() const { return type_; }

  bool IsNumeric() const {
    return type_ == XsType::kInteger || type_ == XsType::kDecimal ||
           type_ == XsType::kDouble;
  }
  bool IsStringLike() const {
    return type_ == XsType::kString || type_ == XsType::kUntypedAtomic ||
           type_ == XsType::kAnyUri;
  }

  bool AsBool() const { return std::get<bool>(value_); }
  int64_t AsInt() const { return std::get<int64_t>(value_); }
  double AsRawDouble() const { return std::get<double>(value_); }
  const std::string& AsString() const { return std::get<std::string>(value_); }

  /// Numeric value widened to double (valid only when IsNumeric()).
  double NumericAsDouble() const {
    return type_ == XsType::kInteger ? static_cast<double>(AsInt())
                                     : AsRawDouble();
  }

  /// Canonical lexical (string) form, as produced by fn:string / cast to
  /// xs:string.
  std::string Lexical() const;

  /// XQuery "cast as": converts this value to `target`, applying the XML
  /// Schema lexical rules for string sources. Errors use err:FORG0001-style
  /// type errors.
  Result<AtomicValue> CastTo(XsType target) const;

  /// Deep equality used by fn:distinct-values and grouping: NaN equals NaN,
  /// numeric types compare by value across tags, strings by codepoints.
  bool DeepEquals(const AtomicValue& other) const;

  /// Hash consistent with DeepEquals.
  size_t Hash() const;

  friend bool operator==(const AtomicValue& a, const AtomicValue& b) {
    return a.type_ == b.type_ && a.value_ == b.value_;
  }

 private:
  AtomicValue(XsType type, std::string s) : type_(type), value_(std::move(s)) {}
  AtomicValue(XsType type, bool b) : type_(type), value_(b) {}
  AtomicValue(XsType type, int64_t i) : type_(type), value_(i) {}
  AtomicValue(XsType type, double d) : type_(type), value_(d) {}

  XsType type_;
  std::variant<bool, int64_t, double, std::string> value_;
};

/// Parses the lexical form of an xs:double (accepts "INF", "-INF", "NaN").
Result<double> ParseXsDouble(std::string_view lexical);

/// Parses the lexical form of an xs:integer.
Result<int64_t> ParseXsInteger(std::string_view lexical);

}  // namespace xqp

#endif  // XQP_XML_ATOMIC_VALUE_H_
