#include "xml/serializer.h"

#include <vector>

#include "base/string_util.h"

namespace xqp {

namespace {

/// Tracks in-scope prefix->uri bindings during serialization.
class NsScope {
 public:
  NsScope() { bindings_.emplace_back("xml", "http://www.w3.org/XML/1998/namespace"); }

  size_t Mark() const { return bindings_.size(); }
  void PopTo(size_t mark) { bindings_.resize(mark); }
  void Bind(std::string prefix, std::string uri) {
    bindings_.emplace_back(std::move(prefix), std::move(uri));
  }

  /// URI currently bound to `prefix`, or empty.
  std::string_view Lookup(std::string_view prefix) const {
    for (auto it = bindings_.rbegin(); it != bindings_.rend(); ++it) {
      if (it->first == prefix) return it->second;
    }
    return std::string_view();
  }

 private:
  std::vector<std::pair<std::string, std::string>> bindings_;
};

class Serializer {
 public:
  Serializer(const SerializeOptions& options, std::string* out)
      : options_(options), out_(out) {}

  Status Write(const Node& node) { return WriteNode(node, 0); }

 private:
  Status WriteNode(const Node& node, int depth) {
    switch (node.kind()) {
      case NodeKind::kDocument: {
        if (options_.xml_declaration) {
          out_->append("<?xml version=\"1.0\" encoding=\"UTF-8\"?>");
          if (options_.indent) out_->push_back('\n');
        }
        bool first = true;
        for (Node c = node.FirstChild(); c; c = c.NextSibling()) {
          if (options_.indent && !first) out_->push_back('\n');
          XQP_RETURN_NOT_OK(WriteNode(c, depth));
          first = false;
        }
        return Status::OK();
      }
      case NodeKind::kElement:
        return WriteElement(node, depth);
      case NodeKind::kText:
        AppendEscapedText(node.value(), out_);
        return Status::OK();
      case NodeKind::kComment:
        out_->append("<!--");
        out_->append(node.value());
        out_->append("-->");
        return Status::OK();
      case NodeKind::kProcessingInstruction:
        out_->append("<?");
        out_->append(node.name().local);
        if (!node.value().empty()) {
          out_->push_back(' ');
          out_->append(node.value());
        }
        out_->append("?>");
        return Status::OK();
      case NodeKind::kAttribute:
        // A standalone attribute serializes as name="value" (useful in
        // diagnostics; not well-formed XML by itself).
        out_->append(node.name().Lexical());
        out_->append("=\"");
        AppendEscapedAttribute(node.value(), out_);
        out_->push_back('"');
        return Status::OK();
    }
    return Status::Internal("unknown node kind");
  }

  void Indent(int depth) {
    out_->push_back('\n');
    out_->append(static_cast<size_t>(depth) * 2, ' ');
  }

  Status WriteElement(const Node& elem, int depth) {
    size_t mark = scope_.Mark();
    out_->push_back('<');
    std::string tag = elem.name().Lexical();
    out_->append(tag);

    // Re-emit declarations recorded at parse/construction time first; they
    // may bind prefixes used only by content QNames.
    if (const auto* decls = elem.doc().NamespaceDecls(elem.index())) {
      for (const auto& d : *decls) {
        if (scope_.Lookup(d.prefix) == d.uri) continue;
        EmitNsDecl(d.prefix, d.uri);
      }
    }
    // Fix up the element's own binding.
    EnsureBound(elem.name(), /*is_attribute=*/false);

    for (Node a = elem.FirstAttribute(); a; a = a.NextSibling()) {
      EnsureBound(a.name(), /*is_attribute=*/true);
      out_->push_back(' ');
      out_->append(a.name().Lexical());
      out_->append("=\"");
      AppendEscapedAttribute(a.value(), out_);
      out_->push_back('"');
    }

    Node child = elem.FirstChild();
    if (!child) {
      out_->append("/>");
      scope_.PopTo(mark);
      return Status::OK();
    }
    out_->push_back('>');
    bool only_text = true;
    for (Node c = child; c; c = c.NextSibling()) {
      if (c.kind() != NodeKind::kText) only_text = false;
    }
    for (Node c = child; c; c = c.NextSibling()) {
      if (options_.indent && !only_text) Indent(depth + 1);
      XQP_RETURN_NOT_OK(WriteNode(c, depth + 1));
    }
    if (options_.indent && !only_text) Indent(depth);
    out_->append("</");
    out_->append(tag);
    out_->push_back('>');
    scope_.PopTo(mark);
    return Status::OK();
  }

  void EmitNsDecl(const std::string& prefix, const std::string& uri) {
    out_->push_back(' ');
    if (prefix.empty()) {
      out_->append("xmlns");
    } else {
      out_->append("xmlns:");
      out_->append(prefix);
    }
    out_->append("=\"");
    AppendEscapedAttribute(uri, out_);
    out_->push_back('"');
    scope_.Bind(prefix, uri);
  }

  /// Emits an xmlns declaration if `name`'s prefix is not already bound to
  /// its URI in the current scope.
  void EnsureBound(const QName& name, bool is_attribute) {
    if (name.uri.empty()) {
      // Unprefixed, no namespace: only a default-namespace binding could
      // interfere (elements only).
      if (!is_attribute && name.prefix.empty() &&
          !scope_.Lookup("").empty()) {
        EmitNsDecl("", "");
      }
      return;
    }
    if (is_attribute && name.prefix.empty()) {
      // Attributes cannot use the default namespace; they are serialized
      // with their recorded prefix, which parse guarantees to exist for
      // parsed documents. Constructed attributes with a URI but no prefix
      // are rare; bind a synthetic prefix would require rewriting the
      // lexical name, so we leave them unprefixed (documented limitation).
      return;
    }
    if (scope_.Lookup(name.prefix) != name.uri) {
      EmitNsDecl(name.prefix, name.uri);
    }
  }

  SerializeOptions options_;
  std::string* out_;
  NsScope scope_;
};

}  // namespace

Status SerializeNode(const Node& node, const SerializeOptions& options,
                     std::string* out) {
  if (node.IsNull()) return Status::InvalidArgument("null node");
  Serializer ser(options, out);
  return ser.Write(node);
}

Result<std::string> SerializeToString(const Node& node,
                                      const SerializeOptions& options) {
  std::string out;
  XQP_RETURN_NOT_OK(SerializeNode(node, options, &out));
  return out;
}

}  // namespace xqp
