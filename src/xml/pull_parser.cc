#include "xml/pull_parser.h"

#include <algorithm>
#include <cstdlib>

#include "base/fault.h"
#include "base/limits.h"
#include "base/string_util.h"

namespace xqp {

XmlPullParser::XmlPullParser(std::string_view input,
                             const ParseOptions& options)
    : input_(input), options_(options) {
  // The "xml" prefix is always bound.
  ns_bindings_.emplace_back("xml", "http://www.w3.org/XML/1998/namespace");
  uint32_t depth = options_.max_parse_depth == 0
                       ? QueryLimits::kDefaultMaxParseDepth
                       : options_.max_parse_depth;
  // NodeRecord.level is 16 bits; clamp whatever the caller asked for.
  max_depth_ = std::min<uint32_t>(depth, 65535);
}

Status XmlPullParser::Error(const std::string& message) const {
  return Status::ParseError(std::to_string(line_) + ":" +
                            std::to_string(column_) + ": " + message);
}

void XmlPullParser::Advance(size_t n) {
  for (size_t i = 0; i < n && pos_ < input_.size(); ++i, ++pos_) {
    if (input_[pos_] == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
  }
}

void XmlPullParser::SkipWhitespace() {
  while (!Eof() && IsXmlWhitespace(Peek())) Advance(1);
}

Status XmlPullParser::ParseName(std::string_view* out) {
  size_t start = pos_;
  if (Eof() || !(IsNameStartChar(Peek()) || Peek() == ':')) {
    return Error("expected a name");
  }
  while (!Eof() && (IsNameChar(Peek()) || Peek() == ':')) Advance(1);
  *out = input_.substr(start, pos_ - start);
  return Status::OK();
}

Status XmlPullParser::DecodeEntitiesInto(std::string_view raw,
                                         std::string* out) {
  size_t i = 0;
  while (i < raw.size()) {
    char c = raw[i];
    if (c != '&') {
      out->push_back(c);
      ++i;
      continue;
    }
    size_t semi = raw.find(';', i + 1);
    if (semi == std::string_view::npos) {
      return Error("unterminated entity reference");
    }
    std::string_view entity = raw.substr(i + 1, semi - i - 1);
    if (entity == "amp") {
      out->push_back('&');
    } else if (entity == "lt") {
      out->push_back('<');
    } else if (entity == "gt") {
      out->push_back('>');
    } else if (entity == "quot") {
      out->push_back('"');
    } else if (entity == "apos") {
      out->push_back('\'');
    } else if (!entity.empty() && entity[0] == '#') {
      long code = 0;
      char* end = nullptr;
      std::string digits(entity.substr(1));
      if (!digits.empty() && (digits[0] == 'x' || digits[0] == 'X')) {
        code = std::strtol(digits.c_str() + 1, &end, 16);
        if (end != digits.c_str() + digits.size()) {
          return Error("bad character reference");
        }
      } else {
        code = std::strtol(digits.c_str(), &end, 10);
        if (end != digits.c_str() + digits.size()) {
          return Error("bad character reference");
        }
      }
      // Encode the code point as UTF-8.
      unsigned long cp = static_cast<unsigned long>(code);
      if (cp == 0 || cp > 0x10FFFF) return Error("character reference out of range");
      if (cp < 0x80) {
        out->push_back(static_cast<char>(cp));
      } else if (cp < 0x800) {
        out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
        out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
      } else if (cp < 0x10000) {
        out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
        out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
        out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
      } else {
        out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
        out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
        out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
        out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
      }
    } else {
      return Error("unknown entity: &" + std::string(entity) + ";");
    }
    i = semi + 1;
  }
  return Status::OK();
}

Result<std::string> XmlPullParser::ResolvePrefix(std::string_view prefix,
                                                 bool is_attribute) const {
  if (prefix.empty()) {
    if (is_attribute) return std::string();  // Attrs don't use default ns.
    // Walk bindings innermost-out for the default namespace.
    for (auto it = ns_bindings_.rbegin(); it != ns_bindings_.rend(); ++it) {
      if (it->first.empty()) return it->second;
    }
    return std::string();
  }
  for (auto it = ns_bindings_.rbegin(); it != ns_bindings_.rend(); ++it) {
    if (it->first == prefix) return it->second;
  }
  return Status::ParseError("undeclared namespace prefix: " +
                            std::string(prefix));
}

Status XmlPullParser::ParseAttributeValue(std::string* out) {
  char quote = Peek();
  if (quote != '"' && quote != '\'') {
    return Error("expected quoted attribute value");
  }
  Advance(1);
  size_t start = pos_;
  while (!Eof() && Peek() != quote) {
    if (Peek() == '<') return Error("'<' in attribute value");
    Advance(1);
  }
  if (Eof()) return Error("unterminated attribute value");
  std::string_view raw = input_.substr(start, pos_ - start);
  Advance(1);  // Closing quote.
  XQP_RETURN_NOT_OK(DecodeEntitiesInto(raw, out));
  return Status::OK();
}

Status XmlPullParser::ParseStartTag() {
  Advance(1);  // '<'
  std::string_view lexical;
  XQP_RETURN_NOT_OK(ParseName(&lexical));

  event_.type = XmlEventType::kStartElement;
  event_.attributes.clear();
  event_.ns_decls.clear();

  // First pass: collect raw attributes so namespace declarations on this
  // element apply to its own name and attribute names.
  struct RawAttr {
    std::string_view lexical;
    std::string value;
  };
  std::vector<RawAttr> raw_attrs;
  bool self_closing = false;
  while (true) {
    SkipWhitespace();
    if (Eof()) return Error("unterminated start tag");
    if (Peek() == '>') {
      Advance(1);
      break;
    }
    if (Peek() == '/' && Peek(1) == '>') {
      Advance(2);
      self_closing = true;
      break;
    }
    std::string_view attr_name;
    XQP_RETURN_NOT_OK(ParseName(&attr_name));
    SkipWhitespace();
    if (Peek() != '=') return Error("expected '=' after attribute name");
    Advance(1);
    SkipWhitespace();
    std::string value;
    XQP_RETURN_NOT_OK(ParseAttributeValue(&value));
    raw_attrs.push_back(RawAttr{attr_name, std::move(value)});
  }

  // Open a namespace frame and register xmlns declarations.
  ns_frames_.push_back(ns_bindings_.size());
  for (const RawAttr& a : raw_attrs) {
    if (a.lexical == "xmlns") {
      ns_bindings_.emplace_back("", a.value);
      event_.ns_decls.push_back(XmlNamespaceDecl{"", a.value});
    } else if (a.lexical.size() > 6 && a.lexical.substr(0, 6) == "xmlns:") {
      std::string prefix(a.lexical.substr(6));
      ns_bindings_.emplace_back(prefix, a.value);
      event_.ns_decls.push_back(XmlNamespaceDecl{prefix, a.value});
    }
  }

  // Resolve the element name.
  std::string_view prefix, local;
  SplitQName(lexical, &prefix, &local);
  XQP_ASSIGN_OR_RETURN(std::string uri, ResolvePrefix(prefix, false));
  event_.name = QName(std::move(uri), std::string(prefix), std::string(local));

  // Resolve attribute names (skipping xmlns declarations).
  for (RawAttr& a : raw_attrs) {
    if (a.lexical == "xmlns" ||
        (a.lexical.size() > 6 && a.lexical.substr(0, 6) == "xmlns:")) {
      continue;
    }
    std::string_view aprefix, alocal;
    SplitQName(a.lexical, &aprefix, &alocal);
    XQP_ASSIGN_OR_RETURN(std::string auri, ResolvePrefix(aprefix, true));
    event_.attributes.push_back(
        XmlAttribute{QName(std::move(auri), std::string(aprefix),
                           std::string(alocal)),
                     std::move(a.value)});
  }

  // Explicit depth bound: the event stream is iterative, but the document
  // builder, serializer, and navigation code index levels with 16 bits and
  // hostile inputs should fail early with a clear position.
  if (open_elements_.size() >= max_depth_) {
    return Error("element nesting exceeds maximum depth of " +
                 std::to_string(max_depth_));
  }
  open_elements_.emplace_back(lexical);
  if (self_closing) {
    pending_end_element_ = true;
  }
  return Status::OK();
}

Status XmlPullParser::ParseEndTag() {
  Advance(2);  // "</"
  std::string_view lexical;
  XQP_RETURN_NOT_OK(ParseName(&lexical));
  SkipWhitespace();
  if (Peek() != '>') return Error("expected '>' in end tag");
  Advance(1);
  if (open_elements_.empty()) {
    return Error("unexpected end tag </" + std::string(lexical) + ">");
  }
  if (open_elements_.back() != lexical) {
    return Error("mismatched end tag </" + std::string(lexical) +
                 ">, expected </" + open_elements_.back() + ">");
  }
  open_elements_.pop_back();
  // Pop this element's namespace frame.
  ns_bindings_.resize(ns_frames_.back());
  ns_frames_.pop_back();
  event_.type = XmlEventType::kEndElement;
  return Status::OK();
}

Status XmlPullParser::ParseComment() {
  Advance(4);  // "<!--"
  size_t end = input_.find("-->", pos_);
  if (end == std::string_view::npos) return Error("unterminated comment");
  event_.type = XmlEventType::kComment;
  event_.text.assign(input_.substr(pos_, end - pos_));
  Advance(end - pos_ + 3);
  return Status::OK();
}

Status XmlPullParser::ParsePi() {
  Advance(2);  // "<?"
  std::string_view target;
  XQP_RETURN_NOT_OK(ParseName(&target));
  size_t end = input_.find("?>", pos_);
  if (end == std::string_view::npos) {
    return Error("unterminated processing instruction");
  }
  event_.type = XmlEventType::kProcessingInstruction;
  event_.name = QName(std::string(target));
  event_.text.assign(TrimXmlWhitespace(input_.substr(pos_, end - pos_)));
  Advance(end - pos_ + 2);
  return Status::OK();
}

Status XmlPullParser::ParseCData() {
  Advance(9);  // "<![CDATA["
  size_t end = input_.find("]]>", pos_);
  if (end == std::string_view::npos) return Error("unterminated CDATA section");
  event_.type = XmlEventType::kText;
  event_.text.assign(input_.substr(pos_, end - pos_));
  Advance(end - pos_ + 3);
  return Status::OK();
}

Status XmlPullParser::ParseText() {
  size_t start = pos_;
  while (!Eof() && Peek() != '<') Advance(1);
  std::string_view raw = input_.substr(start, pos_ - start);
  event_.type = XmlEventType::kText;
  event_.text.clear();
  XQP_RETURN_NOT_OK(DecodeEntitiesInto(raw, &event_.text));
  return Status::OK();
}

Status XmlPullParser::SkipDoctype() {
  // "<!DOCTYPE" ... '>' with possible [...] internal subset.
  int depth = 0;
  while (!Eof()) {
    char c = Peek();
    if (c == '[') {
      ++depth;
    } else if (c == ']') {
      --depth;
    } else if (c == '>' && depth == 0) {
      Advance(1);
      return Status::OK();
    }
    Advance(1);
  }
  return Error("unterminated DOCTYPE");
}

Status XmlPullParser::SkipXmlDecl() {
  size_t end = input_.find("?>", pos_);
  if (end == std::string_view::npos) return Error("unterminated XML declaration");
  Advance(end - pos_ + 2);
  return Status::OK();
}

Result<const XmlEvent*> XmlPullParser::Next() {
  if (fault::Armed()) {
    XQP_RETURN_NOT_OK(fault::MaybeInject("parse.next"));
  }
  if (state_ == State::kDone) return static_cast<const XmlEvent*>(nullptr);

  if (state_ == State::kBeforeDocument) {
    state_ = State::kInDocument;
    if (Looking("<?xml ") || Looking("<?xml\t") || Looking("<?xml?")) {
      XQP_RETURN_NOT_OK(SkipXmlDecl());
    }
    event_.type = XmlEventType::kStartDocument;
    event_.attributes.clear();
    event_.ns_decls.clear();
    event_.text.clear();
    return &event_;
  }

  if (pending_end_element_) {
    pending_end_element_ = false;
    if (open_elements_.empty()) {
      return Status::ParseError("internal: dangling self-closing tag");
    }
    open_elements_.pop_back();
    ns_bindings_.resize(ns_frames_.back());
    ns_frames_.pop_back();
    event_.type = XmlEventType::kEndElement;
    if (open_elements_.empty()) state_ = State::kAfterDocument;
    return &event_;
  }

  while (true) {
    if (Eof()) {
      if (!open_elements_.empty()) {
        return Error("unexpected end of input; unclosed <" +
                     open_elements_.back() + ">");
      }
      state_ = State::kDone;
      event_.type = XmlEventType::kEndDocument;
      return &event_;
    }

    if (Peek() != '<') {
      if (state_ == State::kAfterDocument || open_elements_.empty()) {
        // Only whitespace is allowed outside the root element.
        size_t start = pos_;
        while (!Eof() && Peek() != '<') Advance(1);
        if (!IsAllXmlWhitespace(input_.substr(start, pos_ - start))) {
          return Error("character data outside the root element");
        }
        continue;
      }
      XQP_RETURN_NOT_OK(ParseText());
      if (options_.strip_whitespace && IsAllXmlWhitespace(event_.text)) {
        continue;  // Swallow ignorable whitespace without surfacing it.
      }
      return &event_;
    }

    if (Looking("<!--")) {
      XQP_RETURN_NOT_OK(ParseComment());
      return &event_;
    }
    if (Looking("<![CDATA[")) {
      if (open_elements_.empty()) return Error("CDATA outside root element");
      XQP_RETURN_NOT_OK(ParseCData());
      return &event_;
    }
    if (Looking("<!DOCTYPE")) {
      XQP_RETURN_NOT_OK(SkipDoctype());
      continue;
    }
    if (Looking("<?")) {
      XQP_RETURN_NOT_OK(ParsePi());
      return &event_;
    }
    if (Looking("</")) {
      XQP_RETURN_NOT_OK(ParseEndTag());
      if (open_elements_.empty()) state_ = State::kAfterDocument;
      return &event_;
    }
    if (open_elements_.empty() && state_ == State::kAfterDocument) {
      return Error("multiple root elements");
    }
    XQP_RETURN_NOT_OK(ParseStartTag());
    return &event_;
  }
}

}  // namespace xqp
