#include "xml/pull_parser.h"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <cstring>

#include "base/fault.h"
#include "base/limits.h"
#include "base/metrics.h"
#include "base/string_util.h"

#if defined(__SSE2__)
#include <emmintrin.h>
#elif defined(__ARM_NEON) || defined(__ARM_NEON__)
#include <arm_neon.h>
#endif

namespace xqp {

namespace {

/// XML name classification tables ('[A-Za-z_:]' / name chars plus bytes >=
/// 0x80, exactly the IsNameStartChar/IsNameChar predicates): one indexed
/// load per byte instead of a chain of range compares.
struct NameTables {
  bool start[256] = {};  // Name start chars, ':' included.
  bool cont[256] = {};   // Name continuation chars, ':' included.
  constexpr NameTables() {
    for (int i = 0; i < 256; ++i) {
      bool s = (i >= 'a' && i <= 'z') || (i >= 'A' && i <= 'Z') || i == '_' ||
               i >= 0x80;
      bool c = s || (i >= '0' && i <= '9') || i == '-' || i == '.';
      start[i] = s || i == ':';
      cont[i] = c || i == ':';
    }
  }
};
constexpr NameTables kNameTables;

/// SWAR byte-equality probe: a non-zero result has bit 7 set in every lane
/// of `w` that equals the byte replicated in `pattern`.
inline uint64_t HasByte(uint64_t w, uint64_t pattern) {
  uint64_t x = w ^ pattern;
  return (x - 0x0101010101010101ULL) & ~x & 0x8080808080808080ULL;
}

/// Index of the first '<' or '&' at/after `from`, or in.size() when the
/// rest of the input contains neither. Sixteen bytes per step on SSE2 /
/// NEON, eight via the SWAR probe elsewhere; the structural-scan core of
/// the fast text path.
size_t FindLtOrAmp(std::string_view in, size_t from) {
  const char* p = in.data();
  const size_t n = in.size();
  size_t i = from;
#if defined(__SSE2__)
  const __m128i lt = _mm_set1_epi8('<');
  const __m128i amp = _mm_set1_epi8('&');
  for (; i + 16 <= n; i += 16) {
    __m128i w = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + i));
    __m128i hit = _mm_or_si128(_mm_cmpeq_epi8(w, lt), _mm_cmpeq_epi8(w, amp));
    unsigned mask = static_cast<unsigned>(_mm_movemask_epi8(hit));
    if (mask != 0) {
      return i + static_cast<size_t>(std::countr_zero(mask));
    }
  }
#elif defined(__ARM_NEON) || defined(__ARM_NEON__)
  const uint8x16_t lt = vdupq_n_u8('<');
  const uint8x16_t amp = vdupq_n_u8('&');
  for (; i + 16 <= n; i += 16) {
    uint8x16_t w = vld1q_u8(reinterpret_cast<const uint8_t*>(p + i));
    uint8x16_t hit = vorrq_u8(vceqq_u8(w, lt), vceqq_u8(w, amp));
    // Narrow each 16-bit pair to 4 bits: lane k of the match vector maps to
    // nibble k of the 64-bit mask, so countr_zero(mask) / 4 is the index.
    uint64_t mask = vget_lane_u64(
        vreinterpret_u64_u8(vshrn_n_u16(vreinterpretq_u16_u8(hit), 4)), 0);
    if (mask != 0) {
      return i + (static_cast<size_t>(std::countr_zero(mask)) >> 2);
    }
  }
#elif defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  constexpr uint64_t kLt = 0x3C3C3C3C3C3C3C3CULL;   // '<' in every lane.
  constexpr uint64_t kAmp = 0x2626262626262626ULL;  // '&' in every lane.
  for (; i + 8 <= n; i += 8) {
    uint64_t w;
    std::memcpy(&w, p + i, 8);
    uint64_t hit = HasByte(w, kLt) | HasByte(w, kAmp);
    if (hit != 0) {
      return i + (static_cast<size_t>(std::countr_zero(hit)) >> 3);
    }
  }
#endif
  for (; i < n; ++i) {
    if (p[i] == '<' || p[i] == '&') return i;
  }
  return n;
}

}  // namespace

XmlPullParser::XmlPullParser(std::string_view input,
                             const ParseOptions& options)
    : input_(input), options_(options) {
  // The "xml" prefix is always bound.
  ns_bindings_.emplace_back("xml", "http://www.w3.org/XML/1998/namespace");
  uint32_t depth = options_.max_parse_depth == 0
                       ? QueryLimits::kDefaultMaxParseDepth
                       : options_.max_parse_depth;
  // NodeRecord.level is 16 bits; clamp whatever the caller asked for.
  max_depth_ = std::min<uint32_t>(depth, 65535);
}

std::pair<size_t, size_t> XmlPullParser::LineColAt(size_t pos) const {
  size_t line = 1;
  size_t line_start = 0;
  const char* base = input_.data();
  size_t searched = 0;
  while (searched < pos) {
    const void* nl = std::memchr(base + searched, '\n', pos - searched);
    if (nl == nullptr) break;
    searched = static_cast<size_t>(static_cast<const char*>(nl) - base) + 1;
    ++line;
    line_start = searched;
  }
  return {line, pos - line_start + 1};
}

Status XmlPullParser::Error(const std::string& message) const {
  auto [line, column] = LineColAt(pos_);
  return Status::ParseError(std::to_string(line) + ":" +
                            std::to_string(column) + ": " + message);
}

void XmlPullParser::SkipWhitespace() {
  while (pos_ < input_.size() && IsXmlWhitespace(input_[pos_])) ++pos_;
}

Status XmlPullParser::ParseName(std::string_view* out) {
  size_t start = pos_;
  if (Eof() ||
      !kNameTables.start[static_cast<unsigned char>(input_[pos_])]) {
    return Error("expected a name");
  }
  ++pos_;
  while (pos_ < input_.size() &&
         kNameTables.cont[static_cast<unsigned char>(input_[pos_])]) {
    ++pos_;
  }
  *out = input_.substr(start, pos_ - start);
  return Status::OK();
}

Status XmlPullParser::DecodeEntitiesInto(std::string_view raw,
                                         std::string* out) {
  size_t i = 0;
  while (i < raw.size()) {
    // Copy the run up to the next '&' in one append.
    const void* ampp = std::memchr(raw.data() + i, '&', raw.size() - i);
    if (ampp == nullptr) {
      out->append(raw.data() + i, raw.size() - i);
      return Status::OK();
    }
    size_t a = static_cast<size_t>(static_cast<const char*>(ampp) -
                                   raw.data());
    out->append(raw.data() + i, a - i);
    size_t semi = raw.find(';', a + 1);
    if (semi == std::string_view::npos) {
      return Error("unterminated entity reference");
    }
    std::string_view entity = raw.substr(a + 1, semi - a - 1);
    if (entity == "amp") {
      out->push_back('&');
    } else if (entity == "lt") {
      out->push_back('<');
    } else if (entity == "gt") {
      out->push_back('>');
    } else if (entity == "quot") {
      out->push_back('"');
    } else if (entity == "apos") {
      out->push_back('\'');
    } else if (!entity.empty() && entity[0] == '#') {
      long code = 0;
      char* end = nullptr;
      std::string digits(entity.substr(1));
      if (!digits.empty() && (digits[0] == 'x' || digits[0] == 'X')) {
        code = std::strtol(digits.c_str() + 1, &end, 16);
        if (end != digits.c_str() + digits.size()) {
          return Error("bad character reference");
        }
      } else {
        code = std::strtol(digits.c_str(), &end, 10);
        if (end != digits.c_str() + digits.size()) {
          return Error("bad character reference");
        }
      }
      // Encode the code point as UTF-8.
      unsigned long cp = static_cast<unsigned long>(code);
      if (cp == 0 || cp > 0x10FFFF) return Error("character reference out of range");
      if (cp < 0x80) {
        out->push_back(static_cast<char>(cp));
      } else if (cp < 0x800) {
        out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
        out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
      } else if (cp < 0x10000) {
        out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
        out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
        out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
      } else {
        out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
        out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
        out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
        out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
      }
    } else {
      return Error("unknown entity: &" + std::string(entity) + ";");
    }
    i = semi + 1;
  }
  return Status::OK();
}

Result<std::string> XmlPullParser::ResolvePrefix(std::string_view prefix,
                                                 bool is_attribute) const {
  if (prefix.empty()) {
    if (is_attribute) return std::string();  // Attrs don't use default ns.
    // Walk bindings innermost-out for the default namespace.
    for (auto it = ns_bindings_.rbegin(); it != ns_bindings_.rend(); ++it) {
      if (it->first.empty()) return it->second;
    }
    return std::string();
  }
  for (auto it = ns_bindings_.rbegin(); it != ns_bindings_.rend(); ++it) {
    if (it->first == prefix) return it->second;
  }
  return Status::ParseError("undeclared namespace prefix: " +
                            std::string(prefix));
}

Status XmlPullParser::ResolveName(std::string_view lexical, bool is_attribute,
                                  QName* out, uint32_t* token) {
  auto& cache = is_attribute ? attr_names_ : elem_names_;
  auto it = cache.find(lexical);
  if (it != cache.end()) {
    *out = it->second.qname;
    *token = it->second.token;
    return Status::OK();
  }
  std::string_view prefix, local;
  SplitQName(lexical, &prefix, &local);
  XQP_ASSIGN_OR_RETURN(std::string uri, ResolvePrefix(prefix, is_attribute));
  *out = QName(std::move(uri), std::string(prefix), std::string(local));
  *token = next_name_token_++;
  cache.emplace(lexical, CachedName{*out, *token});
  return Status::OK();
}

void XmlPullParser::InvalidateNameCaches() {
  elem_names_.clear();
  attr_names_.clear();
}

Status XmlPullParser::ParseAttributeValue(std::string_view* out, bool* decoded,
                                          size_t* buf_off, size_t* buf_len) {
  char quote = Peek();
  if (quote != '"' && quote != '\'') {
    return Error("expected quoted attribute value");
  }
  ++pos_;
  const size_t start = pos_;
  const char* base = input_.data();
  const size_t n = input_.size();
  const void* qp = std::memchr(base + start, quote, n - start);
  const size_t qpos =
      qp == nullptr ? n
                    : static_cast<size_t>(static_cast<const char*>(qp) - base);
  // A '<' before the closing quote (or before EOF when the quote is
  // missing) is reported first, at its own position — seed parser order.
  const void* ltp = std::memchr(base + start, '<', qpos - start);
  if (ltp != nullptr) {
    pos_ = static_cast<size_t>(static_cast<const char*>(ltp) - base);
    return Error("'<' in attribute value");
  }
  if (qp == nullptr) {
    pos_ = n;
    return Error("unterminated attribute value");
  }
  std::string_view raw = input_.substr(start, qpos - start);
  pos_ = qpos + 1;  // Closing quote.
  if (std::memchr(raw.data(), '&', raw.size()) == nullptr) {
    *out = raw;  // Zero-copy: the common, entity-free case.
    *decoded = false;
    return Status::OK();
  }
  *decoded = true;
  *buf_off = attr_buf_.size();
  XQP_RETURN_NOT_OK(DecodeEntitiesInto(raw, &attr_buf_));
  *buf_len = attr_buf_.size() - *buf_off;
  return Status::OK();
}

Status XmlPullParser::ParseStartTag() {
  ++pos_;  // '<'
  std::string_view lexical;
  XQP_RETURN_NOT_OK(ParseName(&lexical));

  event_.type = XmlEventType::kStartElement;
  event_.attributes.clear();
  event_.ns_decls.clear();
  raw_attrs_.clear();
  attr_buf_.clear();

  // First pass: collect raw attributes so namespace declarations on this
  // element apply to its own name and attribute names.
  bool self_closing = false;
  while (true) {
    SkipWhitespace();
    if (Eof()) return Error("unterminated start tag");
    char c = input_[pos_];
    if (c == '>') {
      ++pos_;
      break;
    }
    if (c == '/' && Peek(1) == '>') {
      pos_ += 2;
      self_closing = true;
      break;
    }
    RawAttr a;
    XQP_RETURN_NOT_OK(ParseName(&a.lexical));
    SkipWhitespace();
    if (Peek() != '=') return Error("expected '=' after attribute name");
    ++pos_;
    SkipWhitespace();
    XQP_RETURN_NOT_OK(
        ParseAttributeValue(&a.value, &a.decoded, &a.buf_off, &a.buf_len));
    raw_attrs_.push_back(a);
  }
  // attr_buf_ is stable now; materialize the decoded slices.
  for (RawAttr& a : raw_attrs_) {
    if (a.decoded) {
      a.value = std::string_view(attr_buf_).substr(a.buf_off, a.buf_len);
    }
  }

  // Open a namespace frame and register xmlns declarations.
  ns_frames_.push_back(ns_bindings_.size());
  for (const RawAttr& a : raw_attrs_) {
    if (a.lexical == "xmlns") {
      ns_bindings_.emplace_back("", std::string(a.value));
      event_.ns_decls.push_back(XmlNamespaceDecl{"", std::string(a.value)});
    } else if (a.lexical.size() > 6 && a.lexical.substr(0, 6) == "xmlns:") {
      std::string prefix(a.lexical.substr(6));
      ns_bindings_.emplace_back(prefix, std::string(a.value));
      event_.ns_decls.push_back(
          XmlNamespaceDecl{std::move(prefix), std::string(a.value)});
    }
  }
  if (ns_bindings_.size() != ns_frames_.back()) InvalidateNameCaches();

  // Resolve the element name (cached per lexical form while the namespace
  // context is unchanged — on namespace-free documents every distinct tag
  // name resolves exactly once).
  XQP_RETURN_NOT_OK(
      ResolveName(lexical, false, &event_.name, &event_.name_token));

  // Resolve attribute names (skipping xmlns declarations).
  for (const RawAttr& a : raw_attrs_) {
    if (a.lexical == "xmlns" ||
        (a.lexical.size() > 6 && a.lexical.substr(0, 6) == "xmlns:")) {
      continue;
    }
    XmlAttribute& attr = event_.attributes.emplace_back();
    XQP_RETURN_NOT_OK(ResolveName(a.lexical, true, &attr.name,
                                  &attr.name_token));
    attr.value = a.value;
  }

  // Explicit depth bound: the event stream is iterative, but the document
  // builder, serializer, and navigation code index levels with 16 bits and
  // hostile inputs should fail early with a clear position.
  if (open_elements_.size() >= max_depth_) {
    return Error("element nesting exceeds maximum depth of " +
                 std::to_string(max_depth_));
  }
  open_elements_.push_back(lexical);
  if (self_closing) {
    pending_end_element_ = true;
  }
  return Status::OK();
}

Status XmlPullParser::ParseEndTag() {
  pos_ += 2;  // "</"
  std::string_view lexical;
  XQP_RETURN_NOT_OK(ParseName(&lexical));
  SkipWhitespace();
  if (Peek() != '>') return Error("expected '>' in end tag");
  ++pos_;
  if (open_elements_.empty()) {
    return Error("unexpected end tag </" + std::string(lexical) + ">");
  }
  if (open_elements_.back() != lexical) {
    return Error("mismatched end tag </" + std::string(lexical) +
                 ">, expected </" + std::string(open_elements_.back()) + ">");
  }
  open_elements_.pop_back();
  // Pop this element's namespace frame.
  if (ns_bindings_.size() != ns_frames_.back()) {
    ns_bindings_.resize(ns_frames_.back());
    InvalidateNameCaches();
  }
  ns_frames_.pop_back();
  event_.type = XmlEventType::kEndElement;
  return Status::OK();
}

Status XmlPullParser::ParseComment() {
  pos_ += 4;  // "<!--"
  size_t end = input_.find("-->", pos_);
  if (end == std::string_view::npos) return Error("unterminated comment");
  event_.type = XmlEventType::kComment;
  event_.text = input_.substr(pos_, end - pos_);
  pos_ = end + 3;
  return Status::OK();
}

Status XmlPullParser::ParsePi() {
  pos_ += 2;  // "<?"
  std::string_view target;
  XQP_RETURN_NOT_OK(ParseName(&target));
  size_t end = input_.find("?>", pos_);
  if (end == std::string_view::npos) {
    return Error("unterminated processing instruction");
  }
  event_.type = XmlEventType::kProcessingInstruction;
  event_.name = QName(std::string(target));
  event_.name_token = kNoNameToken;
  event_.text = TrimXmlWhitespace(input_.substr(pos_, end - pos_));
  pos_ = end + 2;
  return Status::OK();
}

Status XmlPullParser::ParseCData() {
  pos_ += 9;  // "<![CDATA["
  size_t end = input_.find("]]>", pos_);
  if (end == std::string_view::npos) return Error("unterminated CDATA section");
  event_.type = XmlEventType::kText;
  event_.text = input_.substr(pos_, end - pos_);  // Zero-copy, no decoding.
  pos_ = end + 3;
  return Status::OK();
}

Status XmlPullParser::ParseText() {
  const size_t start = pos_;
  const size_t m = FindLtOrAmp(input_, pos_);
  event_.type = XmlEventType::kText;
  if (m >= input_.size() || input_[m] == '<') {
    // Entity-free run: the event aliases the input.
    pos_ = m;
    event_.text = input_.substr(start, m - start);
    return Status::OK();
  }
  // '&' before the next '<': locate the end of the run, then decode into
  // the reused scratch buffer.
  const char* base = input_.data();
  const void* ltp = std::memchr(base + m + 1, '<', input_.size() - m - 1);
  const size_t end =
      ltp == nullptr
          ? input_.size()
          : static_cast<size_t>(static_cast<const char*>(ltp) - base);
  pos_ = end;
  text_buf_.clear();
  XQP_RETURN_NOT_OK(
      DecodeEntitiesInto(input_.substr(start, end - start), &text_buf_));
  event_.text = text_buf_;
  return Status::OK();
}

Status XmlPullParser::SkipDoctype() {
  // "<!DOCTYPE" ... '>' with possible [...] internal subset.
  int depth = 0;
  while (!Eof()) {
    char c = input_[pos_];
    if (c == '[') {
      ++depth;
    } else if (c == ']') {
      --depth;
    } else if (c == '>' && depth == 0) {
      ++pos_;
      return Status::OK();
    }
    ++pos_;
  }
  return Error("unterminated DOCTYPE");
}

Status XmlPullParser::SkipXmlDecl() {
  size_t end = input_.find("?>", pos_);
  if (end == std::string_view::npos) return Error("unterminated XML declaration");
  pos_ = end + 2;
  return Status::OK();
}

Result<const XmlEvent*> XmlPullParser::Next() {
  if (fault::Armed()) {
    XQP_RETURN_NOT_OK(fault::MaybeInject("parse.next"));
  }
  if (state_ == State::kDone) return static_cast<const XmlEvent*>(nullptr);

  if (state_ == State::kBeforeDocument) {
    state_ = State::kInDocument;
    if (Looking("<?xml ") || Looking("<?xml\t") || Looking("<?xml?")) {
      XQP_RETURN_NOT_OK(SkipXmlDecl());
    }
    event_.type = XmlEventType::kStartDocument;
    event_.attributes.clear();
    event_.ns_decls.clear();
    event_.text = {};
    ++events_;
    return &event_;
  }

  if (pending_end_element_) {
    pending_end_element_ = false;
    if (open_elements_.empty()) {
      return Status::ParseError("internal: dangling self-closing tag");
    }
    open_elements_.pop_back();
    if (ns_bindings_.size() != ns_frames_.back()) {
      ns_bindings_.resize(ns_frames_.back());
      InvalidateNameCaches();
    }
    ns_frames_.pop_back();
    event_.type = XmlEventType::kEndElement;
    if (open_elements_.empty()) state_ = State::kAfterDocument;
    ++events_;
    return &event_;
  }

  while (true) {
    if (Eof()) {
      if (!open_elements_.empty()) {
        return Error("unexpected end of input; unclosed <" +
                     std::string(open_elements_.back()) + ">");
      }
      state_ = State::kDone;
      event_.type = XmlEventType::kEndDocument;
      ++events_;
      if (metrics::Enabled()) {
        static metrics::Counter* bytes =
            metrics::MetricsRegistry::Global().counter("parse.bytes");
        static metrics::Counter* events =
            metrics::MetricsRegistry::Global().counter("parse.events");
        bytes->Add(input_.size());
        events->Add(events_);
      }
      return &event_;
    }

    if (input_[pos_] != '<') {
      if (state_ == State::kAfterDocument || open_elements_.empty()) {
        // Only whitespace is allowed outside the root element.
        size_t start = pos_;
        const void* lt = std::memchr(input_.data() + pos_, '<',
                                     input_.size() - pos_);
        pos_ = lt == nullptr
                   ? input_.size()
                   : static_cast<size_t>(static_cast<const char*>(lt) -
                                         input_.data());
        if (!IsAllXmlWhitespace(input_.substr(start, pos_ - start))) {
          return Error("character data outside the root element");
        }
        continue;
      }
      XQP_RETURN_NOT_OK(ParseText());
      if (options_.strip_whitespace && IsAllXmlWhitespace(event_.text)) {
        continue;  // Swallow ignorable whitespace without surfacing it.
      }
      ++events_;
      return &event_;
    }

    // One-character dispatch on the byte after '<' before the (rarer)
    // multi-byte Looking() probes.
    const char next = Peek(1);
    if (next == '!') {
      if (Looking("<!--")) {
        XQP_RETURN_NOT_OK(ParseComment());
        ++events_;
        return &event_;
      }
      if (Looking("<![CDATA[")) {
        if (open_elements_.empty()) return Error("CDATA outside root element");
        XQP_RETURN_NOT_OK(ParseCData());
        ++events_;
        return &event_;
      }
      if (Looking("<!DOCTYPE")) {
        XQP_RETURN_NOT_OK(SkipDoctype());
        continue;
      }
    } else if (next == '?') {
      XQP_RETURN_NOT_OK(ParsePi());
      ++events_;
      return &event_;
    } else if (next == '/') {
      XQP_RETURN_NOT_OK(ParseEndTag());
      if (open_elements_.empty()) state_ = State::kAfterDocument;
      ++events_;
      return &event_;
    }
    if (open_elements_.empty() && state_ == State::kAfterDocument) {
      return Error("multiple root elements");
    }
    XQP_RETURN_NOT_OK(ParseStartTag());
    ++events_;
    return &event_;
  }
}

}  // namespace xqp
