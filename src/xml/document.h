#ifndef XQP_XML_DOCUMENT_H_
#define XQP_XML_DOCUMENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "xml/atomic_value.h"
#include "xml/qname.h"
#include "xml/string_pool.h"

namespace xqp {

namespace storage {
class SnapshotLoader;
}  // namespace storage

/// Node kinds of the XQuery data model. Namespace nodes are represented as
/// per-element declaration records rather than first-class nodes (the only
/// consumer is serialization), a simplification documented in DESIGN.md.
enum class NodeKind : uint8_t {
  kDocument,
  kElement,
  kAttribute,
  kText,
  kComment,
  kProcessingInstruction,
};

/// Name of `k` ("element", "text", ...), per fn:node-kind.
std::string_view NodeKindName(NodeKind k);

using NodeIndex = uint32_t;
constexpr NodeIndex kNullNode = UINT32_MAX;
constexpr uint32_t kNoName = UINT32_MAX;
constexpr StringPool::Id kNoValue = StringPool::kInvalid;

/// One row of the document's node table. Rows are stored in pre-order, so a
/// node's index doubles as its region *start* label; `end` is the largest
/// index in its subtree (inclusive). Together with `level` this is the
/// (start, end, level) region encoding used by the structural-join module:
///   x is an ancestor of y  <=>  x.index < y.index && y.index <= x.end.
/// Attributes are laid out immediately after their owner element (before any
/// children) and therefore take part in document order, as XPath requires.
struct NodeRecord {
  NodeKind kind;
  uint16_t level;       // Depth; the document node is level 0.
  uint32_t name_id;     // Index into Document name table; kNoName if unnamed.
  StringPool::Id value_id;  // Text / attribute / comment / PI content.
  NodeIndex parent;
  NodeIndex next_sibling;   // For attributes: the next attribute.
  NodeIndex first_attr;     // Elements only.
  NodeIndex first_child;
  NodeIndex end;            // Region end label (inclusive).
};

/// Options controlling XML parsing.
struct ParseOptions {
  /// Drop text nodes consisting solely of whitespace (useful for
  /// data-oriented documents).
  bool strip_whitespace = false;
  /// Dictionary-compress text and attribute values (paper's pooling
  /// optimization). Disable to measure its benefit (experiment E4).
  bool pool_strings = true;
  /// Maximum element nesting depth the parser accepts before failing with
  /// kParseError; 0 means QueryLimits::kDefaultMaxParseDepth. Hard upper
  /// bound 65535 — NodeRecord stores levels in a uint16_t.
  uint32_t max_parse_depth = 0;
};

/// An immutable XML document: a pre-order node table plus string/name pools.
/// This is the "array" storage mode of the paper (TokenStream section) in
/// its random-access form; `tokens/TokenStream` provides the sequential
/// view. Documents are created by Parse() or DocumentBuilder and never
/// mutated afterwards, so node handles can be shared freely across threads.
class Document : public std::enable_shared_from_this<Document> {
 public:
  /// Parses a complete XML document. Returns a ParseError with line/column
  /// information on malformed input.
  static Result<std::shared_ptr<Document>> Parse(std::string_view xml,
                                                 const ParseOptions& options = {});

  /// Process-unique id; used for stable cross-document ordering.
  uint64_t id() const { return id_; }

  size_t NumNodes() const { return nodes_count_; }
  const NodeRecord& node(NodeIndex i) const { return nodes_data_[i]; }

  /// Expanded name of node `i`; valid only when node has a name.
  const QName& name(NodeIndex i) const {
    return names_[nodes_data_[i].name_id];
  }

  /// Pooled content string of node `i` (text, attribute value, ...).
  std::string_view value(NodeIndex i) const {
    return nodes_data_[i].value_id == kNoValue
               ? std::string_view()
               : pool_.Get(nodes_data_[i].value_id);
  }

  /// The document node (always index 0 for non-empty documents).
  NodeIndex document_node() const { return 0; }

  /// First element child of the document node, kNullNode if none.
  NodeIndex root_element() const;

  /// Number of distinct expanded names.
  size_t NumNames() const { return names_.size(); }
  const QName& name_at(uint32_t name_id) const { return names_[name_id]; }

  /// Id of the expanded name (uri, local), or kNoName when no node in this
  /// document carries it. Lets navigation compare names as integers.
  uint32_t FindNameId(std::string_view uri, std::string_view local) const;

  /// XDM string-value: concatenated descendant text (elements/documents),
  /// or the content string (other kinds).
  std::string StringValue(NodeIndex i) const;

  /// XDM typed-value of an untyped node: xdt:untypedAtomic(string-value).
  AtomicValue TypedValue(NodeIndex i) const {
    return AtomicValue::Untyped(StringValue(i));
  }

  /// Namespace declarations recorded on element `i` (for serialization).
  struct NsDecl {
    std::string prefix;
    std::string uri;
  };
  const std::vector<NsDecl>* NamespaceDecls(NodeIndex i) const;

  /// Approximate heap footprint in bytes (node table + pools), reported by
  /// the storage experiments (E3/E4).
  size_t MemoryUsage() const;

  const std::string& base_uri() const { return base_uri_; }
  void set_base_uri(std::string uri) { base_uri_ = std::move(uri); }

  const StringPool& pool() const { return pool_; }

 private:
  friend class DocumentBuilder;
  friend class storage::SnapshotLoader;
  Document();

  /// Points node accessors at the current table. The builder calls this
  /// after every append (nodes_ may have reallocated); the snapshot loader
  /// instead aims the view straight into an mmap'd file, leaving nodes_
  /// empty — accessors are branch-free either way.
  void SyncNodeView() {
    nodes_data_ = nodes_.data();
    nodes_count_ = nodes_.size();
  }

  uint64_t id_;
  std::vector<NodeRecord> nodes_;
  /// Node-table view: (nodes_.data(), nodes_.size()) for built documents,
  /// a pointer into `backing_` for snapshot-loaded ones.
  const NodeRecord* nodes_data_ = nullptr;
  size_t nodes_count_ = 0;
  /// Keeps a snapshot mapping alive for as long as any view (node table,
  /// pooled strings) points into it; null for built documents.
  std::shared_ptr<const void> backing_;
  std::vector<QName> names_;
  std::unordered_map<QName, uint32_t, QNameHash> name_index_;
  StringPool pool_;
  std::unordered_map<NodeIndex, std::vector<NsDecl>> ns_decls_;
  std::string base_uri_;
};

/// Streaming builder assembling an immutable Document from begin/end events.
/// Used by the parser, by XQuery node constructors, and by the token-stream
/// materializer. Adjacent text is coalesced into a single text node, as the
/// data model requires.
class DocumentBuilder {
 public:
  DocumentBuilder();
  explicit DocumentBuilder(const ParseOptions& options);

  Status BeginElement(const QName& name);
  Status EndElement();
  Status Attribute(const QName& name, std::string_view value);

  /// Interns `name` into the document's name table (first-appearance order)
  /// and returns its dense id — the same id BeginElement/Attribute would
  /// assign. Event sources that can memoize names (see
  /// XmlEvent::name_token) intern once and then use the id overloads below,
  /// skipping the per-event QName hash.
  uint32_t InternNameId(const QName& name) { return InternName(name); }
  /// BeginElement with a pre-interned name id (ingest fast path).
  Status BeginElement(uint32_t name_id);
  /// Attribute with a pre-interned name id (ingest fast path). `name` is
  /// only read on error paths (diagnostics print the caller's lexical
  /// form, which may differ in prefix from the first-interned spelling).
  Status Attribute(uint32_t name_id, const QName& name,
                   std::string_view value);
  /// Appends a parentless attribute node directly under the document node
  /// (XDM allows attribute items outside any element; XQuery computed
  /// attribute constructors produce them).
  Status OrphanAttribute(const QName& name, std::string_view value);
  Status NamespaceDecl(std::string_view prefix, std::string_view uri);
  Status Text(std::string_view text);
  Status Comment(std::string_view text);
  Status ProcessingInstruction(std::string_view target, std::string_view data);

  /// Deep-copies the subtree rooted at `src[root]` (attributes included)
  /// into the document under construction. Implements the paper's "XML does
  /// not allow cut and paste": constructed content is copied, with fresh
  /// node identities.
  Status CopySubtree(const Document& src, NodeIndex root);

  /// Sizes the node table and string pool for an input of `input_bytes`
  /// of serialized XML (ingest fast path). Estimates are deliberately
  /// conservative — roughly one node per 24 bytes of markup — so text-heavy
  /// documents do not over-allocate; purely an optimization.
  void ReserveForInput(size_t input_bytes);

  /// Number of nodes appended so far.
  size_t NumNodes() const { return doc_->nodes_.size(); }

  /// Depth of currently open elements (0 = at document level).
  size_t OpenDepth() const { return stack_.size() - 1; }

  /// Completes the document. All elements must be closed.
  Result<std::shared_ptr<Document>> Finish();

 private:
  uint32_t InternName(const QName& name);
  NodeIndex Append(NodeKind kind, uint32_t name_id, StringPool::Id value_id);

  /// Shared tail of the Attribute overloads: duplicate check, admission,
  /// append. Caller has already validated the parent element; `name` is
  /// read only for error text.
  Status AttributeById(uint32_t name_id, const QName& name,
                       std::string_view value);

  /// Per-node admission control, called before every Append: hosts the
  /// "alloc" fault-injection site and charges the node's approximate
  /// storage cost to the governing query's memory budget.
  Status ChargeNode(size_t value_bytes);

  struct Open {
    NodeIndex index;
    NodeIndex last_child = kNullNode;
    NodeIndex last_attr = kNullNode;
    bool last_was_text = false;
  };

  std::shared_ptr<Document> doc_;
  std::vector<Open> stack_;
  ParseOptions options_;
  bool finished_ = false;
};

}  // namespace xqp

#endif  // XQP_XML_DOCUMENT_H_
