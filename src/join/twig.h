#ifndef XQP_JOIN_TWIG_H_
#define XQP_JOIN_TWIG_H_

#include <string>
#include <vector>

#include "base/parallel.h"
#include "base/status.h"
#include "join/tag_index.h"

namespace xqp {

/// A twig (tree) pattern over element names: node 0 is the root; each other
/// node hangs off its parent by an ancestor-descendant ("//") or
/// parent-child ("/") edge. `output` designates the node whose distinct
/// matches the query returns (XPath existential semantics for the rest).
struct TwigPattern {
  struct PNode {
    std::string uri;
    std::string local;
    int parent = -1;
    bool child_edge = false;  // True: "/", false: "//".
    std::vector<int> children;
  };

  std::vector<PNode> nodes;
  int output = 0;
  /// Document URI when the source path was anchored at doc('uri'); empty
  /// for root()/variable anchors. Set by the planner; lets the engine pick
  /// the right tag index.
  std::string anchor_uri;

  /// Adds a node; returns its index. parent < 0 makes it the root.
  int Add(std::string local, int parent = -1, bool child_edge = false);

  bool IsPath() const;
  std::string ToString() const;
};

/// Counters for comparing algorithms (experiment E6): how many intermediate
/// (edge) pairs each strategy materializes before producing the final
/// matches.
struct TwigStats {
  uint64_t intermediate_pairs = 0;
  uint64_t output_matches = 0;
};

/// Holistic twig join (Bruno/Koudas/Srivastava, "Holistic twig joins:
/// optimal XML pattern matching"): one synchronized pass over the per-tag
/// posting lists with a stack per pattern node; only edge pairs that lie on
/// a root-to-leaf path solution are recorded. Returns the distinct matches
/// of `pattern.output` in document order.
Result<std::vector<NodeIndex>> TwigStackMatch(const TagIndex& index,
                                              const TwigPattern& pattern,
                                              TwigStats* stats = nullptr);

/// TwigStackMatch over caller-supplied posting lists, one per pattern node
/// in document order — the seam the index-aware planner feeds with
/// synopsis-filtered lists (index/index_planner.h). Any list may be a
/// subset of the node's full per-tag postings as long as it retains every
/// solution participant; the match set is then identical to TwigStackMatch.
/// `lists` must have pattern.nodes.size() non-null entries.
Result<std::vector<NodeIndex>> TwigStackMatchWithLists(
    const Document& doc, const TwigPattern& pattern,
    const std::vector<const std::vector<NodeIndex>*>& lists,
    TwigStats* stats = nullptr);

/// TwigStackMatch preceded by a morsel-parallel leaf-matching pass: each
/// leaf's posting list is first shrunk by a partitioned parallel semi-join
/// against its parent's postings (a necessary condition for any root-to-
/// leaf solution, so the match set is identical to TwigStackMatch). Leaves
/// filter concurrently across the pool. Degrades to the serial algorithm
/// when the effective thread count is 1 or inputs are below `min_parallel`.
Result<std::vector<NodeIndex>> TwigStackMatchParallel(
    const TagIndex& index, const TwigPattern& pattern,
    TwigStats* stats = nullptr, int num_threads = 0,
    size_t min_parallel = kDefaultParallelThreshold);

/// PathStack: the linear-pattern special case, with direct chain marking
/// (no pair materialization at all).
Result<std::vector<NodeIndex>> PathStackMatch(const TagIndex& index,
                                              const TwigPattern& pattern,
                                              TwigStats* stats = nullptr);

/// Baseline: a pipeline of binary structural joins, one per pattern edge,
/// materializing every edge's full pair list before filtering — the plan
/// shape holistic joins were invented to beat.
Result<std::vector<NodeIndex>> BinaryJoinMatch(const TagIndex& index,
                                               const TwigPattern& pattern,
                                               TwigStats* stats = nullptr);

/// Baseline: pure navigation (recursive subtree probing, no index).
Result<std::vector<NodeIndex>> NavigationMatch(const Document& doc,
                                               const TwigPattern& pattern,
                                               TwigStats* stats = nullptr);

}  // namespace xqp

#endif  // XQP_JOIN_TWIG_H_
