#include "join/tag_index.h"

namespace xqp {

TagIndex::TagIndex(std::shared_ptr<const Document> doc)
    : doc_(std::move(doc)) {
  for (NodeIndex i = 0; i < doc_->NumNodes(); ++i) {
    const NodeRecord& n = doc_->node(i);
    if (n.kind != NodeKind::kElement) continue;
    postings_[n.name_id].push_back(i);
    all_elements_.push_back(i);
  }
}

const std::vector<NodeIndex>* TagIndex::Lookup(std::string_view uri,
                                               std::string_view local) const {
  uint32_t name_id = doc_->FindNameId(uri, local);
  if (name_id == kNoName) return nullptr;
  auto it = postings_.find(name_id);
  return it == postings_.end() ? nullptr : &it->second;
}

size_t TagIndex::MemoryUsage() const {
  size_t bytes = all_elements_.capacity() * sizeof(NodeIndex);
  for (const auto& [name, list] : postings_) {
    bytes += sizeof(name) + list.capacity() * sizeof(NodeIndex) + 48;
  }
  return bytes;
}

}  // namespace xqp
