#include "join/structural_join.h"

#include <algorithm>
#include <span>

#include "base/metrics.h"

namespace xqp {

namespace {

/// Containment test via region labels: a properly contains d.
inline bool Contains(const Document& doc, NodeIndex a, NodeIndex d) {
  return a < d && d <= doc.node(a).end;
}

inline bool EdgeOk(const Document& doc, NodeIndex a, NodeIndex d,
                   bool parent_child) {
  if (!parent_child) return true;
  return doc.node(d).level == doc.node(a).level + 1;
}

}  // namespace

std::vector<JoinPair> StackTreeDesc(const Document& doc,
                                    std::span<const NodeIndex> ancestors,
                                    std::span<const NodeIndex> descendants,
                                    bool parent_child) {
  static metrics::OpMetrics m("join.stack_tree_desc");
  metrics::ScopedTimer timer(metrics::Enabled() ? m.wall_ns : nullptr);
  std::vector<JoinPair> out;
  std::vector<NodeIndex> stack;
  size_t ai = 0;
  for (NodeIndex d : descendants) {
    // Push every ancestor candidate that starts before d.
    while (ai < ancestors.size() && ancestors[ai] < d) {
      while (!stack.empty() && doc.node(stack.back()).end < ancestors[ai]) {
        stack.pop_back();
      }
      stack.push_back(ancestors[ai]);
      ++ai;
    }
    // Drop candidates whose region closed before d.
    while (!stack.empty() && doc.node(stack.back()).end < d) {
      stack.pop_back();
    }
    // Invariant: the stack is a chain of nested regions, all containing d.
    for (NodeIndex a : stack) {
      if (EdgeOk(doc, a, d, parent_child)) out.push_back(JoinPair{a, d});
    }
  }
  if (metrics::Enabled()) {
    m.calls->Increment();
    m.items->Add(out.size());
  }
  return out;
}

std::vector<JoinPair> StackTreeAnc(const Document& doc,
                                   std::span<const NodeIndex> ancestors,
                                   std::span<const NodeIndex> descendants,
                                   bool parent_child) {
  static metrics::OpMetrics m("join.stack_tree_anc");
  metrics::ScopedTimer timer(metrics::Enabled() ? m.wall_ns : nullptr);
  // Each stack entry keeps a self-list (its own pairs, in descendant order)
  // and an inherit-list (pairs of already-closed ancestors nested inside
  // it). On pop, self precedes inherit, which yields ancestor-major output
  // — the original algorithm's list discipline.
  struct Entry {
    NodeIndex node;
    std::vector<JoinPair> self;
    std::vector<JoinPair> inherit;
  };
  std::vector<Entry> stack;
  std::vector<JoinPair> out;
  auto pop = [&]() {
    Entry e = std::move(stack.back());
    stack.pop_back();
    if (stack.empty()) {
      out.insert(out.end(), e.self.begin(), e.self.end());
      out.insert(out.end(), e.inherit.begin(), e.inherit.end());
    } else {
      Entry& p = stack.back();
      p.inherit.insert(p.inherit.end(), e.self.begin(), e.self.end());
      p.inherit.insert(p.inherit.end(), e.inherit.begin(), e.inherit.end());
    }
  };
  size_t ai = 0;
  for (NodeIndex d : descendants) {
    while (ai < ancestors.size() && ancestors[ai] < d) {
      while (!stack.empty() && doc.node(stack.back().node).end < ancestors[ai]) {
        pop();
      }
      stack.push_back(Entry{ancestors[ai], {}, {}});
      ++ai;
    }
    while (!stack.empty() && doc.node(stack.back().node).end < d) {
      pop();
    }
    for (Entry& e : stack) {
      if (EdgeOk(doc, e.node, d, parent_child)) {
        e.self.push_back(JoinPair{e.node, d});
      }
    }
  }
  while (!stack.empty()) pop();
  if (metrics::Enabled()) {
    m.calls->Increment();
    m.items->Add(out.size());
  }
  return out;
}

std::vector<JoinPair> MpmgJoin(const Document& doc,
                               std::span<const NodeIndex> ancestors,
                               std::span<const NodeIndex> descendants,
                               bool parent_child) {
  static metrics::OpMetrics m("join.mpmg");
  metrics::ScopedTimer timer(metrics::Enabled() ? m.wall_ns : nullptr);
  std::vector<JoinPair> out;
  size_t ai = 0;
  for (NodeIndex d : descendants) {
    // Skip ancestors that end before d (can never match this or any later
    // descendant).
    while (ai < ancestors.size() && doc.node(ancestors[ai]).end < d) ++ai;
    // Rescan from the cursor: this is the back-up behaviour that costs
    // MPMGJN on recursive data.
    for (size_t j = ai; j < ancestors.size() && ancestors[j] < d; ++j) {
      if (Contains(doc, ancestors[j], d) &&
          EdgeOk(doc, ancestors[j], d, parent_child)) {
        out.push_back(JoinPair{ancestors[j], d});
      }
    }
  }
  if (metrics::Enabled()) {
    m.calls->Increment();
    m.items->Add(out.size());
  }
  return out;
}

std::vector<JoinPair> NestedLoopJoin(const Document& doc,
                                     std::span<const NodeIndex> ancestors,
                                     std::span<const NodeIndex> descendants,
                                     bool parent_child) {
  static metrics::OpMetrics m("join.nested_loop");
  metrics::ScopedTimer timer(metrics::Enabled() ? m.wall_ns : nullptr);
  std::vector<JoinPair> out;
  for (NodeIndex a : ancestors) {
    for (NodeIndex d : descendants) {
      if (Contains(doc, a, d) && EdgeOk(doc, a, d, parent_child)) {
        out.push_back(JoinPair{a, d});
      }
    }
  }
  // Match the descendant-major output order of the other algorithms.
  std::sort(out.begin(), out.end(), [](const JoinPair& x, const JoinPair& y) {
    if (x.descendant != y.descendant) return x.descendant < y.descendant;
    return x.ancestor < y.ancestor;
  });
  if (metrics::Enabled()) {
    m.calls->Increment();
    m.items->Add(out.size());
  }
  return out;
}

std::vector<NodeIndex> JoinDescendants(const Document& doc,
                                       std::span<const NodeIndex> ancestors,
                                       std::span<const NodeIndex> descendants,
                                       bool parent_child) {
  static metrics::OpMetrics m("join.semi_desc");
  metrics::ScopedTimer timer(metrics::Enabled() ? m.wall_ns : nullptr);
  std::vector<NodeIndex> out;
  std::vector<NodeIndex> stack;
  size_t ai = 0;
  for (NodeIndex d : descendants) {
    while (ai < ancestors.size() && ancestors[ai] < d) {
      while (!stack.empty() && doc.node(stack.back()).end < ancestors[ai]) {
        stack.pop_back();
      }
      stack.push_back(ancestors[ai]);
      ++ai;
    }
    while (!stack.empty() && doc.node(stack.back()).end < d) {
      stack.pop_back();
    }
    if (stack.empty()) continue;
    if (!parent_child) {
      out.push_back(d);  // Any stack entry witnesses containment.
      continue;
    }
    for (NodeIndex a : stack) {
      if (doc.node(d).level == doc.node(a).level + 1) {
        out.push_back(d);
        break;
      }
    }
  }
  if (metrics::Enabled()) {
    m.calls->Increment();
    m.items->Add(out.size());
  }
  return out;  // Already in document order and distinct.
}

std::vector<NodeIndex> JoinAncestors(const Document& doc,
                                     std::span<const NodeIndex> ancestors,
                                     std::span<const NodeIndex> descendants,
                                     bool parent_child) {
  static metrics::OpMetrics m("join.semi_anc");
  metrics::ScopedTimer timer(metrics::Enabled() ? m.wall_ns : nullptr);
  // Mark matched ancestors, then emit in input (document) order.
  std::vector<char> matched(ancestors.size(), 0);
  std::vector<size_t> stack;  // Indices into `ancestors`.
  size_t ai = 0;
  for (NodeIndex d : descendants) {
    while (ai < ancestors.size() && ancestors[ai] < d) {
      while (!stack.empty() &&
             doc.node(ancestors[stack.back()]).end < ancestors[ai]) {
        stack.pop_back();
      }
      stack.push_back(ai);
      ++ai;
    }
    while (!stack.empty() && doc.node(ancestors[stack.back()]).end < d) {
      stack.pop_back();
    }
    for (size_t idx : stack) {
      if (!matched[idx] &&
          EdgeOk(doc, ancestors[idx], d, parent_child)) {
        matched[idx] = 1;
      }
    }
  }
  std::vector<NodeIndex> out;
  for (size_t i = 0; i < ancestors.size(); ++i) {
    if (matched[i]) out.push_back(ancestors[i]);
  }
  if (metrics::Enabled()) {
    m.calls->Increment();
    m.items->Add(out.size());
  }
  return out;
}

}  // namespace xqp
