#ifndef XQP_JOIN_TAG_INDEX_H_
#define XQP_JOIN_TAG_INDEX_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "xml/document.h"

namespace xqp {

/// Element-tag index over one document: for each expanded name, the list of
/// element nodes carrying it, in document order (i.e., sorted by region
/// start label). This is the input the structural-join algorithms consume —
/// "Index Structures for Path Expressions" made concrete as simple sorted
/// postings.
class TagIndex {
 public:
  explicit TagIndex(std::shared_ptr<const Document> doc);

  const Document& doc() const { return *doc_; }
  const std::shared_ptr<const Document>& doc_ptr() const { return doc_; }

  /// Postings for the expanded name (uri, local); nullptr when absent.
  const std::vector<NodeIndex>* Lookup(std::string_view uri,
                                       std::string_view local) const;

  /// All element nodes in document order.
  const std::vector<NodeIndex>& AllElements() const { return all_elements_; }

  /// Number of distinct element names.
  size_t NumTags() const { return postings_.size(); }

  size_t MemoryUsage() const;

 private:
  std::shared_ptr<const Document> doc_;
  std::unordered_map<uint32_t, std::vector<NodeIndex>> postings_;
  std::vector<NodeIndex> all_elements_;
};

}  // namespace xqp

#endif  // XQP_JOIN_TAG_INDEX_H_
