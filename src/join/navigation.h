#ifndef XQP_JOIN_NAVIGATION_H_
#define XQP_JOIN_NAVIGATION_H_

#include <string_view>
#include <vector>

#include "xml/document.h"

namespace xqp {

/// Tree-traversal baseline for the structural-join experiments: evaluates
/// "//anc//desc"-style patterns by walking the document (the navigational
/// strategy the structural-join paper compares against). Name tests are
/// resolved to name ids once, so the per-node work is an integer compare.

/// Distinct elements named (anc_uri, anc_local) that have at least one
/// descendant (or child when `parent_child`) named (desc_uri, desc_local).
std::vector<NodeIndex> NavigateAncestors(const Document& doc,
                                         std::string_view anc_uri,
                                         std::string_view anc_local,
                                         std::string_view desc_uri,
                                         std::string_view desc_local,
                                         bool parent_child = false);

/// Distinct elements named (desc_uri, desc_local) with at least one
/// ancestor (or parent) named (anc_uri, anc_local), in document order.
std::vector<NodeIndex> NavigateDescendants(const Document& doc,
                                           std::string_view anc_uri,
                                           std::string_view anc_local,
                                           std::string_view desc_uri,
                                           std::string_view desc_local,
                                           bool parent_child = false);

/// All (ancestor, descendant) pairs by navigation (for result-equivalence
/// tests against the join algorithms).
struct JoinPair;
std::vector<std::pair<NodeIndex, NodeIndex>> NavigatePairs(
    const Document& doc, std::string_view anc_uri, std::string_view anc_local,
    std::string_view desc_uri, std::string_view desc_local,
    bool parent_child = false);

}  // namespace xqp

#endif  // XQP_JOIN_NAVIGATION_H_
