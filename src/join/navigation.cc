#include "join/navigation.h"

namespace xqp {

namespace {

/// Scans the subtree of `root` (exclusive) for elements with `name_id`,
/// honoring the parent/child restriction.
void ScanSubtree(const Document& doc, NodeIndex root, uint32_t name_id,
                 bool parent_child, std::vector<NodeIndex>* out) {
  const NodeRecord& r = doc.node(root);
  for (NodeIndex i = root + 1; i <= r.end && i < doc.NumNodes(); ++i) {
    const NodeRecord& n = doc.node(i);
    if (n.kind != NodeKind::kElement || n.name_id != name_id) continue;
    if (parent_child && n.parent != root) continue;
    out->push_back(i);
  }
}

}  // namespace

std::vector<NodeIndex> NavigateAncestors(const Document& doc,
                                         std::string_view anc_uri,
                                         std::string_view anc_local,
                                         std::string_view desc_uri,
                                         std::string_view desc_local,
                                         bool parent_child) {
  std::vector<NodeIndex> out;
  uint32_t anc_id = doc.FindNameId(anc_uri, anc_local);
  uint32_t desc_id = doc.FindNameId(desc_uri, desc_local);
  if (anc_id == kNoName || desc_id == kNoName) return out;
  for (NodeIndex i = 0; i < doc.NumNodes(); ++i) {
    const NodeRecord& n = doc.node(i);
    if (n.kind != NodeKind::kElement || n.name_id != anc_id) continue;
    // Probe the subtree for one matching descendant.
    for (NodeIndex d = i + 1; d <= n.end; ++d) {
      const NodeRecord& dn = doc.node(d);
      if (dn.kind != NodeKind::kElement || dn.name_id != desc_id) continue;
      if (parent_child && dn.parent != i) continue;
      out.push_back(i);
      break;
    }
  }
  return out;
}

std::vector<NodeIndex> NavigateDescendants(const Document& doc,
                                           std::string_view anc_uri,
                                           std::string_view anc_local,
                                           std::string_view desc_uri,
                                           std::string_view desc_local,
                                           bool parent_child) {
  std::vector<NodeIndex> out;
  uint32_t anc_id = doc.FindNameId(anc_uri, anc_local);
  uint32_t desc_id = doc.FindNameId(desc_uri, desc_local);
  if (anc_id == kNoName || desc_id == kNoName) return out;
  // One pass with an open-ancestor counter: a matching descendant is
  // emitted when at least one named ancestor is open.
  std::vector<NodeIndex> open;  // Open anc-named elements (by end label).
  for (NodeIndex i = 0; i < doc.NumNodes(); ++i) {
    const NodeRecord& n = doc.node(i);
    while (!open.empty() && doc.node(open.back()).end < i) open.pop_back();
    if (n.kind != NodeKind::kElement) continue;
    if (n.name_id == desc_id && !open.empty()) {
      if (!parent_child) {
        out.push_back(i);
      } else {
        for (NodeIndex a : open) {
          if (n.parent == a) {
            out.push_back(i);
            break;
          }
        }
      }
    }
    if (n.name_id == anc_id) open.push_back(i);
  }
  return out;
}

std::vector<std::pair<NodeIndex, NodeIndex>> NavigatePairs(
    const Document& doc, std::string_view anc_uri, std::string_view anc_local,
    std::string_view desc_uri, std::string_view desc_local,
    bool parent_child) {
  std::vector<std::pair<NodeIndex, NodeIndex>> out;
  uint32_t anc_id = doc.FindNameId(anc_uri, anc_local);
  uint32_t desc_id = doc.FindNameId(desc_uri, desc_local);
  if (anc_id == kNoName || desc_id == kNoName) return out;
  std::vector<NodeIndex> matches;
  for (NodeIndex i = 0; i < doc.NumNodes(); ++i) {
    const NodeRecord& n = doc.node(i);
    if (n.kind != NodeKind::kElement || n.name_id != anc_id) continue;
    matches.clear();
    ScanSubtree(doc, i, desc_id, parent_child, &matches);
    for (NodeIndex d : matches) out.emplace_back(i, d);
  }
  return out;
}

}  // namespace xqp
