#ifndef XQP_JOIN_STRUCTURAL_JOIN_H_
#define XQP_JOIN_STRUCTURAL_JOIN_H_

#include <vector>

#include "xml/document.h"

namespace xqp {

/// One (ancestor, descendant) — or (parent, child) — match.
struct JoinPair {
  NodeIndex ancestor;
  NodeIndex descendant;

  friend bool operator==(const JoinPair& a, const JoinPair& b) {
    return a.ancestor == b.ancestor && a.descendant == b.descendant;
  }
};

/// The structural-join primitive of Al-Khalifa et al. ("Structural Joins: A
/// Primitive for Efficient XML Query Pattern Matching"), referenced by the
/// paper's query-evaluation reading list. Inputs are document-order-sorted
/// element lists; containment is decided with the (start=index, end, level)
/// region labels. All algorithms return identical pair sets; they differ in
/// complexity:
///
///  - Stack-Tree-Desc:  O(|A| + |D| + |output|), output sorted by descendant.
///  - Stack-Tree-Anc:   same bound, output sorted by ancestor.
///  - MPMGJN:           merge with rescans; degrades on deep nesting.
///  - Nested loop:      O(|A| * |D|) baseline.
///
/// `parent_child` restricts matches to level(descendant) == level(anc)+1.

std::vector<JoinPair> StackTreeDesc(const Document& doc,
                                    const std::vector<NodeIndex>& ancestors,
                                    const std::vector<NodeIndex>& descendants,
                                    bool parent_child = false);

std::vector<JoinPair> StackTreeAnc(const Document& doc,
                                   const std::vector<NodeIndex>& ancestors,
                                   const std::vector<NodeIndex>& descendants,
                                   bool parent_child = false);

std::vector<JoinPair> MpmgJoin(const Document& doc,
                               const std::vector<NodeIndex>& ancestors,
                               const std::vector<NodeIndex>& descendants,
                               bool parent_child = false);

std::vector<JoinPair> NestedLoopJoin(const Document& doc,
                                     const std::vector<NodeIndex>& ancestors,
                                     const std::vector<NodeIndex>& descendants,
                                     bool parent_child = false);

/// Semi-join projections (what an XPath step actually needs): the distinct
/// descendants with at least one ancestor in `ancestors`, in document
/// order; and the dual. Both run the stack algorithm with early-out, so no
/// pair list is materialized.
std::vector<NodeIndex> JoinDescendants(
    const Document& doc, const std::vector<NodeIndex>& ancestors,
    const std::vector<NodeIndex>& descendants, bool parent_child = false);

std::vector<NodeIndex> JoinAncestors(const Document& doc,
                                     const std::vector<NodeIndex>& ancestors,
                                     const std::vector<NodeIndex>& descendants,
                                     bool parent_child = false);

}  // namespace xqp

#endif  // XQP_JOIN_STRUCTURAL_JOIN_H_
