#ifndef XQP_JOIN_STRUCTURAL_JOIN_H_
#define XQP_JOIN_STRUCTURAL_JOIN_H_

#include <span>
#include <vector>

#include "base/parallel.h"
#include "xml/document.h"

namespace xqp {

/// One (ancestor, descendant) — or (parent, child) — match.
struct JoinPair {
  NodeIndex ancestor;
  NodeIndex descendant;

  friend bool operator==(const JoinPair& a, const JoinPair& b) {
    return a.ancestor == b.ancestor && a.descendant == b.descendant;
  }
};

/// The structural-join primitive of Al-Khalifa et al. ("Structural Joins: A
/// Primitive for Efficient XML Query Pattern Matching"), referenced by the
/// paper's query-evaluation reading list. Inputs are document-order-sorted
/// element lists; containment is decided with the (start=index, end, level)
/// region labels. All algorithms return identical pair sets; they differ in
/// complexity:
///
///  - Stack-Tree-Desc:  O(|A| + |D| + |output|), output sorted by descendant.
///  - Stack-Tree-Anc:   same bound, output sorted by ancestor.
///  - MPMGJN:           merge with rescans; degrades on deep nesting.
///  - Nested loop:      O(|A| * |D|) baseline.
///
/// `parent_child` restricts matches to level(descendant) == level(anc)+1.

std::vector<JoinPair> StackTreeDesc(const Document& doc,
                                    std::span<const NodeIndex> ancestors,
                                    std::span<const NodeIndex> descendants,
                                    bool parent_child = false);

std::vector<JoinPair> StackTreeAnc(const Document& doc,
                                   std::span<const NodeIndex> ancestors,
                                   std::span<const NodeIndex> descendants,
                                   bool parent_child = false);

std::vector<JoinPair> MpmgJoin(const Document& doc,
                               std::span<const NodeIndex> ancestors,
                               std::span<const NodeIndex> descendants,
                               bool parent_child = false);

std::vector<JoinPair> NestedLoopJoin(const Document& doc,
                                     std::span<const NodeIndex> ancestors,
                                     std::span<const NodeIndex> descendants,
                                     bool parent_child = false);

/// Semi-join projections (what an XPath step actually needs): the distinct
/// descendants with at least one ancestor in `ancestors`, in document
/// order; and the dual. Both run the stack algorithm with early-out, so no
/// pair list is materialized.
std::vector<NodeIndex> JoinDescendants(const Document& doc,
                                       std::span<const NodeIndex> ancestors,
                                       std::span<const NodeIndex> descendants,
                                       bool parent_child = false);

std::vector<NodeIndex> JoinAncestors(const Document& doc,
                                     std::span<const NodeIndex> ancestors,
                                     std::span<const NodeIndex> descendants,
                                     bool parent_child = false);

/// ---------------------------------------------------------------------
/// Morsel-driven parallel variants.
///
/// The ancestor list is split into contiguous chunks cut only at subtree
/// boundaries: position i is a valid cut iff start(ancestors[i]) >
/// max_{j<i} end(ancestors[j]). Region labels nest or are disjoint, so a
/// cut at i guarantees no ancestor before the cut contains one after it
/// (and a later start can never contain an earlier one) — every
/// (ancestor, descendant) match therefore falls in exactly one chunk, and
/// each chunk's descendant sub-range is found by binary search on the
/// chunk's [first start, max end] window. Workers run the serial kernel on
/// their chunk; concatenating chunk outputs in order reproduces the serial
/// output bit for bit (matched descendant windows are disjoint and
/// increasing across chunks).
///
/// `num_threads` ≤ 0 uses DefaultParallelism() (XQP_THREADS env override);
/// the serial kernel runs inline when the effective thread count is 1 or
/// the combined input is smaller than `min_parallel`.

std::vector<JoinPair> StackTreeDescParallel(
    const Document& doc, std::span<const NodeIndex> ancestors,
    std::span<const NodeIndex> descendants, bool parent_child = false,
    int num_threads = 0, size_t min_parallel = kDefaultParallelThreshold);

std::vector<NodeIndex> JoinDescendantsParallel(
    const Document& doc, std::span<const NodeIndex> ancestors,
    std::span<const NodeIndex> descendants, bool parent_child = false,
    int num_threads = 0, size_t min_parallel = kDefaultParallelThreshold);

std::vector<NodeIndex> JoinAncestorsParallel(
    const Document& doc, std::span<const NodeIndex> ancestors,
    std::span<const NodeIndex> descendants, bool parent_child = false,
    int num_threads = 0, size_t min_parallel = kDefaultParallelThreshold);

/// The chunk descriptor ParallelJoinPartition produces (exposed for tests:
/// the partitioning invariant is what makes the parallel kernels exact).
struct JoinChunk {
  size_t anc_begin, anc_end;    // Ancestor sub-range [begin, end).
  size_t desc_begin, desc_end;  // Descendant sub-range [begin, end).
};

/// Splits `ancestors` into up to `target_chunks` subtree-closed chunks and
/// binary-searches each chunk's candidate descendant window. Exact: the
/// union of per-chunk matches equals the full join's matches, disjointly.
std::vector<JoinChunk> ParallelJoinPartition(
    const Document& doc, std::span<const NodeIndex> ancestors,
    std::span<const NodeIndex> descendants, size_t target_chunks);

}  // namespace xqp

#endif  // XQP_JOIN_STRUCTURAL_JOIN_H_
