#ifndef XQP_JOIN_TWIG_PLANNER_H_
#define XQP_JOIN_TWIG_PLANNER_H_

#include "base/status.h"
#include "join/twig.h"
#include "query/expr.h"

namespace xqp {

/// Recognizes pure tree-pattern queries — chains of child/descendant steps
/// with name tests, plus existential path predicates — and compiles them
/// into TwigPattern form for the structural/holistic join executors ("From
/// Tree Patterns to Generalized Tree Patterns" lite). Queries outside the
/// fragment are reported as not convertible; the engine then falls back to
/// navigation.
class TwigPlanner {
 public:
  /// True when `e` is a twig-convertible path expression:
  /// root-or-doc()-anchored, forward child/descendant steps, non-wildcard
  /// name tests, predicates that are themselves twig-convertible relative
  /// paths.
  static bool IsConvertible(const Expr& e);

  /// Compiles `e` to a twig pattern. InvalidArgument when not convertible.
  static Result<TwigPattern> Compile(const Expr& e);
};

}  // namespace xqp

#endif  // XQP_JOIN_TWIG_PLANNER_H_
