#include "join/twig_planner.h"

namespace xqp {

namespace {

/// True for descendant-or-self::node() — the "//" connector step.
bool IsDosConnector(const Expr* e) {
  if (e->kind() != ExprKind::kStep) return false;
  const auto* step = static_cast<const StepExpr*>(e);
  return step->axis == Axis::kDescendantOrSelf &&
         step->test.kind == NodeTest::Kind::kAnyKind;
}

/// A named forward step usable as a pattern node.
const StepExpr* AsNamedStep(const Expr* e) {
  if (e->kind() != ExprKind::kStep) return nullptr;
  const auto* step = static_cast<const StepExpr*>(e);
  if (step->axis != Axis::kChild && step->axis != Axis::kDescendant) {
    return nullptr;
  }
  if (step->test.kind != NodeTest::Kind::kName || step->test.wildcard_local ||
      step->test.wildcard_uri) {
    return nullptr;
  }
  return step;
}

/// Flattens a left-deep path chain into its sequence of rhs expressions,
/// returning the anchor (leftmost) expression.
const Expr* FlattenChain(const Expr* e, std::vector<const Expr*>* steps) {
  if (e->kind() == ExprKind::kPath) {
    const Expr* anchor = FlattenChain(e->child(0), steps);
    steps->push_back(e->child(1));
    return anchor;
  }
  return e;
}

bool IsDocAnchor(const Expr* e) {
  if (e->kind() == ExprKind::kRoot) return true;
  if (e->kind() == ExprKind::kFunctionCall) {
    const auto* call = static_cast<const FunctionCallExpr*>(e);
    return call->name.local == "doc" || call->name.local == "document";
  }
  if (e->kind() == ExprKind::kVarRef) return true;  // Bound to a doc node.
  return false;
}

class Builder {
 public:
  explicit Builder(TwigPattern* pattern) : pattern_(pattern) {}

  /// Adds the chain of `steps` under `parent` (or as root when parent < 0).
  /// Returns the pattern index of the last chain node, or an error.
  Result<int> AddChain(const std::vector<const Expr*>& steps, int parent) {
    int current = parent;
    bool pending_descendant = false;
    for (const Expr* raw : steps) {
      const Expr* e = raw;
      std::vector<const Expr*> predicates;
      if (e->kind() == ExprKind::kFilter) {
        const auto* filter = static_cast<const FilterExpr*>(e);
        for (size_t p = 1; p < filter->NumChildren(); ++p) {
          predicates.push_back(filter->child(p));
        }
        e = filter->child(0);
      }
      if (IsDosConnector(e)) {
        if (!predicates.empty()) {
          return Status::InvalidArgument("predicate on //-connector");
        }
        pending_descendant = true;
        continue;
      }
      const StepExpr* step = AsNamedStep(e);
      if (step == nullptr) {
        return Status::InvalidArgument("step is not twig-convertible");
      }
      bool child_edge = step->axis == Axis::kChild && !pending_descendant;
      pending_descendant = false;
      int node = pattern_->Add(step->test.local, current, child_edge);
      pattern_->nodes[node].uri = step->test.uri;
      if (current < 0 && node != 0) {
        return Status::Internal("multiple twig roots");
      }
      current = node;
      for (const Expr* pred : predicates) {
        XQP_RETURN_NOT_OK(AddPredicate(pred, current));
      }
    }
    if (current == parent) {
      return Status::InvalidArgument("empty step chain");
    }
    return current;
  }

 private:
  Status AddPredicate(const Expr* pred, int parent) {
    // Predicates must be relative paths (existential node tests).
    std::vector<const Expr*> steps;
    const Expr* anchor = FlattenChain(pred, &steps);
    if (steps.empty()) {
      // Single step predicate: [b].
      steps.push_back(anchor);
      anchor = nullptr;
    } else if (anchor != nullptr) {
      // The anchor of a relative predicate path must itself be a step.
      steps.insert(steps.begin(), anchor);
      anchor = nullptr;
    }
    XQP_RETURN_NOT_OK(AddChain(steps, parent).status());
    return Status::OK();
  }

  TwigPattern* pattern_;
};

}  // namespace

Result<TwigPattern> TwigPlanner::Compile(const Expr& e) {
  std::vector<const Expr*> steps;
  const Expr* anchor = FlattenChain(&e, &steps);
  if (steps.empty()) {
    return Status::InvalidArgument("not a path expression");
  }
  if (!IsDocAnchor(anchor)) {
    return Status::InvalidArgument("path is not document-anchored");
  }
  TwigPattern pattern;
  if (anchor->kind() == ExprKind::kFunctionCall) {
    const auto* call = static_cast<const FunctionCallExpr*>(anchor);
    if (call->NumChildren() == 1 &&
        call->child(0)->kind() == ExprKind::kLiteral) {
      pattern.anchor_uri =
          static_cast<const LiteralExpr*>(call->child(0))->value.Lexical();
    }
  }
  Builder builder(&pattern);
  XQP_ASSIGN_OR_RETURN(int last, builder.AddChain(steps, -1));
  pattern.output = last;
  if (pattern.nodes.empty()) {
    return Status::InvalidArgument("empty pattern");
  }
  return pattern;
}

bool TwigPlanner::IsConvertible(const Expr& e) {
  return Compile(e).ok();
}

}  // namespace xqp
