#include "join/twig.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

#include "base/limits.h"
#include "base/metrics.h"
#include "base/parallel.h"
#include "join/structural_join.h"

namespace xqp {

int TwigPattern::Add(std::string local, int parent, bool child_edge) {
  PNode node;
  node.local = std::move(local);
  node.parent = parent;
  node.child_edge = child_edge;
  int index = static_cast<int>(nodes.size());
  nodes.push_back(std::move(node));
  if (parent >= 0) nodes[parent].children.push_back(index);
  return index;
}

bool TwigPattern::IsPath() const {
  for (const PNode& n : nodes) {
    if (n.children.size() > 1) return false;
  }
  return true;
}

std::string TwigPattern::ToString() const {
  // Recursive render: //a[//b]/c style.
  std::string out;
  std::vector<std::string> rendered(nodes.size());
  for (size_t i = nodes.size(); i-- > 0;) {
    std::string s = nodes[i].local;
    if (static_cast<int>(i) == output) s += "*";
    for (int c : nodes[i].children) {
      s += nodes[c].child_edge ? "[/" : "[//";
      s += rendered[c];
      s += "]";
    }
    rendered[i] = std::move(s);
  }
  return "//" + rendered[0];
}

namespace {

constexpr NodeIndex kInf = UINT32_MAX;

/// Per-pattern-node cursor into its posting list.
struct Cursor {
  const std::vector<NodeIndex>* list = nullptr;
  size_t pos = 0;

  NodeIndex NextStart() const {
    return (list == nullptr || pos >= list->size()) ? kInf : (*list)[pos];
  }
  void Advance() { ++pos; }
  bool Exhausted() const { return NextStart() == kInf; }
};

struct StackEntry {
  NodeIndex node;
  int parent_top;  // Index into parent stack at push time; -1 for root.
};

bool EdgeSatisfied(const Document& doc, NodeIndex parent, NodeIndex child,
                   bool child_edge) {
  if (!child_edge) return true;
  return doc.node(child).level == doc.node(parent).level + 1;
}

/// Per-pattern-node posting lists (nullptr for names absent from the
/// document). Factored out of TwigMachine so callers can substitute
/// filtered lists (the parallel leaf-matching pass).
using PostingLists = std::vector<const std::vector<NodeIndex>*>;

PostingLists LookupPostings(const TagIndex& index, const TwigPattern& pattern) {
  PostingLists lists(pattern.nodes.size());
  for (size_t q = 0; q < pattern.nodes.size(); ++q) {
    lists[q] = index.Lookup(pattern.nodes[q].uri, pattern.nodes[q].local);
  }
  return lists;
}

/// Shared driver over the posting cursors: runs the TwigStack control loop
/// and invokes `on_leaf_push(q)` whenever a leaf pattern node is pushed
/// (i.e., a root-to-leaf path solution exists on the stacks).
class TwigMachine {
 public:
  TwigMachine(const Document& doc, const TwigPattern& pattern,
              const PostingLists& lists)
      : doc_(doc), pattern_(pattern) {
    cursors_.resize(pattern.nodes.size());
    stacks_.resize(pattern.nodes.size());
    for (size_t q = 0; q < pattern.nodes.size(); ++q) {
      cursors_[q].list = lists[q];
    }
  }

  const Document& doc() const { return doc_; }
  const std::vector<StackEntry>& stack(int q) const { return stacks_[q]; }

  template <typename OnLeafPush>
  void Run(OnLeafPush on_leaf_push) {
    while (true) {
      int q = GetNext(0);
      NodeIndex start = cursors_[q].NextStart();
      if (start == kInf) break;
      const auto& pn = pattern_.nodes[q];
      if (pn.parent >= 0) {
        CleanStack(pn.parent, start);
      }
      if (pn.parent < 0 || !stacks_[pn.parent].empty()) {
        CleanStack(q, start);
        int parent_top = pn.parent < 0
                             ? -1
                             : static_cast<int>(stacks_[pn.parent].size()) - 1;
        stacks_[q].push_back(StackEntry{start, parent_top});
        cursors_[q].Advance();
        if (pn.children.empty()) {
          on_leaf_push(q);
          stacks_[q].pop_back();
        }
      } else {
        cursors_[q].Advance();
      }
    }
  }

 private:
  /// The getNext of the paper: returns the pattern node whose head element
  /// is guaranteed to participate (or be safely skippable) next.
  int GetNext(int q) {
    const auto& pn = pattern_.nodes[q];
    if (pn.children.empty()) return q;
    NodeIndex min_start = kInf;
    NodeIndex max_start = 0;
    int qmin = q;
    for (int c : pn.children) {
      int n = GetNext(c);
      if (n != c) return n;
      NodeIndex s = cursors_[c].NextStart();
      if (s < min_start) {
        min_start = s;
        qmin = c;
      }
      if (s != kInf && s > max_start) max_start = s;
    }
    if (min_start == kInf) return q;  // A branch is exhausted.
    // Skip q elements that end before the farthest child head.
    while (cursors_[q].NextStart() != kInf &&
           doc_.node(cursors_[q].NextStart()).end < max_start) {
      cursors_[q].Advance();
    }
    NodeIndex qs = cursors_[q].NextStart();
    // Ties (same element heading several same-tag pattern nodes, as in
    // recursive //b/b/b chains) must resolve to the parent: its occurrence
    // has to be on the stack before the child cursor moves past it.
    if (qs != kInf && qs <= min_start) return q;
    return qmin;
  }

  void CleanStack(int q, NodeIndex next_start) {
    auto& stack = stacks_[q];
    while (!stack.empty() && doc_.node(stack.back().node).end < next_start) {
      stack.pop_back();
    }
  }

  const Document& doc_;
  const TwigPattern& pattern_;
  std::vector<Cursor> cursors_;
  std::vector<std::vector<StackEntry>> stacks_;
};

/// PathStackMatch over explicit posting lists (the parallel pass feeds
/// filtered leaf lists through here).
Result<std::vector<NodeIndex>> PathStackMatchLists(const Document& doc,
                                                   const TwigPattern& pattern,
                                                   const PostingLists& lists,
                                                   TwigStats* stats) {
  if (!pattern.IsPath()) {
    return Status::InvalidArgument("PathStack requires a linear pattern");
  }
  std::set<NodeIndex> matched;
  TwigMachine machine(doc, pattern, lists);
  // Pattern node chain root..leaf.
  std::vector<int> chain;
  {
    int q = 0;
    chain.push_back(0);
    while (!pattern.nodes[q].children.empty()) {
      q = pattern.nodes[q].children[0];
      chain.push_back(q);
    }
  }
  int output_depth = 0;
  for (size_t i = 0; i < chain.size(); ++i) {
    if (chain[i] == pattern.output) output_depth = static_cast<int>(i);
  }

  machine.Run([&](int leaf_q) {
    // A root-to-leaf solution may exist through any combination of stack
    // positions; greedy walks miss chains on recursive data, so both
    // passes carry full frontiers.
    int depth = static_cast<int>(chain.size()) - 1;
    const auto& leaf_stack = machine.stack(chain[depth]);

    // Up-pass: positions reachable from the just-pushed leaf entry.
    std::vector<std::vector<int>> frontier(chain.size());
    frontier[depth] = {static_cast<int>(leaf_stack.size()) - 1};
    for (int level = depth; level > 0; --level) {
      const auto& cur = machine.stack(chain[level]);
      const auto& up = machine.stack(chain[level - 1]);
      bool child_edge = pattern.nodes[chain[level]].child_edge;
      std::vector<int>& next = frontier[level - 1];
      for (int p : frontier[level]) {
        int ptr = std::min(cur[p].parent_top,
                           static_cast<int>(up.size()) - 1);
        for (int k = 0; k <= ptr; ++k) {
          if (up[k].node < cur[p].node &&
              EdgeSatisfied(doc, up[k].node, cur[p].node, child_edge)) {
            next.push_back(k);
          }
        }
      }
      std::sort(next.begin(), next.end());
      next.erase(std::unique(next.begin(), next.end()), next.end());
      if (next.empty()) return;  // No full root chain for this leaf.
    }

    // Down-pass: restrict to positions on a complete root-to-leaf chain,
    // stopping at the output level.
    std::vector<int> reach = frontier[0];
    for (int level = 1; level <= output_depth; ++level) {
      const auto& cur = machine.stack(chain[level]);
      const auto& up = machine.stack(chain[level - 1]);
      bool child_edge = pattern.nodes[chain[level]].child_edge;
      std::vector<int> next;
      for (int p : frontier[level]) {
        int ptr = std::min(cur[p].parent_top,
                           static_cast<int>(up.size()) - 1);
        for (int q : reach) {
          if (q <= ptr && up[q].node < cur[p].node &&
              EdgeSatisfied(doc, up[q].node, cur[p].node, child_edge)) {
            next.push_back(p);
            break;
          }
        }
      }
      std::sort(next.begin(), next.end());
      next.erase(std::unique(next.begin(), next.end()), next.end());
      reach = std::move(next);
      if (reach.empty()) return;
    }
    const auto& out_stack = machine.stack(chain[output_depth]);
    for (int p : reach) matched.insert(out_stack[p].node);
  });
  std::vector<NodeIndex> out(matched.begin(), matched.end());
  if (stats != nullptr) stats->output_matches = out.size();
  return out;
}

Result<std::vector<NodeIndex>> TwigStackMatchLists(const Document& doc,
                                                   const TwigPattern& pattern,
                                                   const PostingLists& lists,
                                                   TwigStats* stats) {
  if (pattern.nodes.size() == 1) {
    std::vector<NodeIndex> out =
        lists[0] ? *lists[0] : std::vector<NodeIndex>{};
    if (stats != nullptr) stats->output_matches = out.size();
    return out;
  }
  if (pattern.IsPath()) return PathStackMatchLists(doc, pattern, lists, stats);

  // Edge-pair sets recorded from path solutions; keyed by child pattern
  // node (each non-root node has exactly one incoming edge).
  std::vector<std::set<std::pair<NodeIndex, NodeIndex>>> edge_pairs(
      pattern.nodes.size());

  TwigMachine machine(doc, pattern, lists);
  machine.Run([&](int leaf_q) {
    // Record pairs along the root-to-leaf chain of leaf_q, for every
    // compatible stack combination (bounded by parent pointers).
    int q = leaf_q;
    const auto& leaf_stack = machine.stack(q);
    std::vector<int> frontier{static_cast<int>(leaf_stack.size()) - 1};
    while (pattern.nodes[q].parent >= 0) {
      int p = pattern.nodes[q].parent;
      const auto& cur_stack = machine.stack(q);
      const auto& parent_stack = machine.stack(p);
      bool child_edge = pattern.nodes[q].child_edge;
      std::vector<int> next_frontier;
      for (int cp : frontier) {
        int ptr = cur_stack[cp].parent_top;
        for (int k = 0; k <= ptr && k < static_cast<int>(parent_stack.size());
             ++k) {
          if (parent_stack[k].node < cur_stack[cp].node &&
              EdgeSatisfied(doc, parent_stack[k].node, cur_stack[cp].node,
                            child_edge)) {
            edge_pairs[q].emplace(parent_stack[k].node, cur_stack[cp].node);
            next_frontier.push_back(k);
          }
        }
      }
      std::sort(next_frontier.begin(), next_frontier.end());
      next_frontier.erase(
          std::unique(next_frontier.begin(), next_frontier.end()),
          next_frontier.end());
      frontier = std::move(next_frontier);
      q = p;
    }
  });

  if (stats != nullptr) {
    for (const auto& pairs : edge_pairs) {
      stats->intermediate_pairs += pairs.size();
    }
  }

  // Merge phase: bottom-up validity, then top-down reachability.
  size_t n = pattern.nodes.size();
  std::vector<std::set<NodeIndex>> valid(n);
  // Process nodes in reverse index order — parents precede children by
  // construction, so reverse order is bottom-up.
  for (size_t qi = n; qi-- > 0;) {
    const auto& pn = pattern.nodes[qi];
    std::set<NodeIndex> cand;
    if (pn.parent >= 0) {
      for (const auto& [a, d] : edge_pairs[qi]) cand.insert(d);
    } else {
      for (int c : pn.children) {
        for (const auto& [a, d] : edge_pairs[c]) cand.insert(a);
      }
    }
    for (NodeIndex nidx : cand) {
      bool ok = true;
      for (int c : pn.children) {
        bool has = false;
        for (const auto& [a, d] : edge_pairs[c]) {
          if (a == nidx && valid[c].count(d) > 0) {
            has = true;
            break;
          }
        }
        if (!has) {
          ok = false;
          break;
        }
      }
      if (ok) valid[qi].insert(nidx);
    }
  }
  std::vector<std::set<NodeIndex>> reach(n);
  reach[0] = valid[0];
  for (size_t qi = 1; qi < n; ++qi) {
    int p = pattern.nodes[qi].parent;
    for (const auto& [a, d] : edge_pairs[qi]) {
      if (reach[p].count(a) > 0 && valid[qi].count(d) > 0) {
        reach[qi].insert(d);
      }
    }
  }
  std::vector<NodeIndex> out(reach[pattern.output].begin(),
                             reach[pattern.output].end());
  if (stats != nullptr) stats->output_matches = out.size();
  return out;
}

}  // namespace

Result<std::vector<NodeIndex>> PathStackMatch(const TagIndex& index,
                                              const TwigPattern& pattern,
                                              TwigStats* stats) {
  static metrics::OpMetrics m("twig.path_stack");
  metrics::ScopedTimer timer(metrics::Enabled() ? m.wall_ns : nullptr);
  auto result = PathStackMatchLists(index.doc(), pattern,
                                    LookupPostings(index, pattern), stats);
  if (metrics::Enabled()) {
    m.calls->Increment();
    if (result.ok()) m.items->Add(result.value().size());
  }
  return result;
}

Result<std::vector<NodeIndex>> TwigStackMatch(const TagIndex& index,
                                              const TwigPattern& pattern,
                                              TwigStats* stats) {
  static metrics::OpMetrics m("twig.twig_stack");
  metrics::ScopedTimer timer(metrics::Enabled() ? m.wall_ns : nullptr);
  auto result = TwigStackMatchLists(index.doc(), pattern,
                                    LookupPostings(index, pattern), stats);
  if (metrics::Enabled()) {
    m.calls->Increment();
    if (result.ok()) m.items->Add(result.value().size());
  }
  return result;
}

Result<std::vector<NodeIndex>> TwigStackMatchWithLists(
    const Document& doc, const TwigPattern& pattern,
    const std::vector<const std::vector<NodeIndex>*>& lists,
    TwigStats* stats) {
  static metrics::OpMetrics m("twig.twig_stack_lists");
  metrics::ScopedTimer timer(metrics::Enabled() ? m.wall_ns : nullptr);
  if (lists.size() != pattern.nodes.size()) {
    return Status::InvalidArgument("one posting list per pattern node");
  }
  for (const auto* l : lists) {
    if (l == nullptr) return Status::InvalidArgument("null posting list");
  }
  auto result = TwigStackMatchLists(doc, pattern, lists, stats);
  if (metrics::Enabled()) {
    m.calls->Increment();
    if (result.ok()) m.items->Add(result.value().size());
  }
  return result;
}

Result<std::vector<NodeIndex>> TwigStackMatchParallel(const TagIndex& index,
                                                      const TwigPattern& pattern,
                                                      TwigStats* stats,
                                                      int num_threads,
                                                      size_t min_parallel) {
  const Document& doc = index.doc();
  PostingLists lists = LookupPostings(index, pattern);
  size_t total_postings = 0;
  for (const auto* list : lists) {
    if (list != nullptr) total_postings += list->size();
  }
  int threads = num_threads > 0 ? num_threads : DefaultParallelism();
  const bool go_parallel = threads > 1 && pattern.nodes.size() >= 2 &&
                           total_postings >= min_parallel;
  if (metrics::Enabled()) {
    static metrics::Counter* dispatched =
        metrics::MetricsRegistry::Global().counter("twig.parallel.dispatched");
    static metrics::Counter* fallback =
        metrics::MetricsRegistry::Global().counter(
            "twig.parallel.serial_fallback");
    (go_parallel ? dispatched : fallback)->Increment();
  }
  if (!go_parallel) {
    return TwigStackMatchLists(doc, pattern, lists, stats);
  }
  // Parallel leaf-matching pass: shrink every leaf's posting list to the
  // entries satisfying the leaf's incoming edge against its parent's tag —
  // a necessary condition for any solution, so the match set is unchanged
  // while the (serial) TwigStack pass that follows sees far fewer leaf
  // postings. Leaves filter concurrently, and each filter is itself a
  // partitioned parallel semi-join.
  std::vector<int> leaves;
  for (size_t q = 0; q < pattern.nodes.size(); ++q) {
    const auto& pn = pattern.nodes[q];
    if (pn.children.empty() && pn.parent >= 0 && lists[q] != nullptr &&
        lists[pn.parent] != nullptr) {
      leaves.push_back(static_cast<int>(q));
    }
  }
  std::vector<std::vector<NodeIndex>> filtered(pattern.nodes.size());
  ParallelForChunks(leaves.size(), [&](size_t i) {
    // Skip remaining leaf filters once the owning query has tripped; the
    // caller's next governor poll surfaces the error.
    ResourceGovernor* governor = CurrentGovernor();
    if (governor != nullptr && governor->tripped()) return;
    int q = leaves[i];
    int p = pattern.nodes[q].parent;
    filtered[q] =
        JoinDescendantsParallel(doc, *lists[p], *lists[q],
                                pattern.nodes[q].child_edge, threads,
                                min_parallel);
  });
  for (int q : leaves) lists[q] = &filtered[q];
  return TwigStackMatchLists(doc, pattern, lists, stats);
}

Result<std::vector<NodeIndex>> BinaryJoinMatch(const TagIndex& index,
                                               const TwigPattern& pattern,
                                               TwigStats* stats) {
  const Document& doc = index.doc();
  size_t n = pattern.nodes.size();
  // Full pair lists per edge (the materialized intermediate results a
  // binary plan pays for).
  std::vector<std::vector<JoinPair>> edge_pairs(n);
  std::vector<const std::vector<NodeIndex>*> postings(n);
  static const std::vector<NodeIndex> kEmpty;
  for (size_t q = 0; q < n; ++q) {
    postings[q] = index.Lookup(pattern.nodes[q].uri, pattern.nodes[q].local);
    if (postings[q] == nullptr) postings[q] = &kEmpty;
  }
  for (size_t q = 1; q < n; ++q) {
    int p = pattern.nodes[q].parent;
    edge_pairs[q] = StackTreeDesc(doc, *postings[p], *postings[q],
                                  pattern.nodes[q].child_edge);
    if (stats != nullptr) stats->intermediate_pairs += edge_pairs[q].size();
  }
  // Same merge as the holistic variant, over the (larger) pair lists.
  std::vector<std::set<NodeIndex>> valid(n);
  for (size_t qi = n; qi-- > 0;) {
    const auto& pn = pattern.nodes[qi];
    std::set<NodeIndex> cand;
    if (pn.parent >= 0) {
      for (const auto& pr : edge_pairs[qi]) cand.insert(pr.descendant);
    } else {
      cand.insert(postings[qi]->begin(), postings[qi]->end());
    }
    for (NodeIndex nidx : cand) {
      bool ok = true;
      for (int c : pn.children) {
        bool has = false;
        for (const auto& pr : edge_pairs[c]) {
          if (pr.ancestor == nidx && valid[c].count(pr.descendant) > 0) {
            has = true;
            break;
          }
        }
        if (!has) {
          ok = false;
          break;
        }
      }
      if (ok) valid[qi].insert(nidx);
    }
  }
  std::vector<std::set<NodeIndex>> reach(n);
  reach[0] = valid[0];
  for (size_t qi = 1; qi < n; ++qi) {
    int p = pattern.nodes[qi].parent;
    for (const auto& pr : edge_pairs[qi]) {
      if (reach[p].count(pr.ancestor) > 0 && valid[qi].count(pr.descendant) > 0) {
        reach[qi].insert(pr.descendant);
      }
    }
  }
  std::vector<NodeIndex> out(reach[pattern.output].begin(),
                             reach[pattern.output].end());
  if (stats != nullptr) stats->output_matches = out.size();
  return out;
}

namespace {

/// Does `node` match pattern node `q` including its whole subtree
/// (existential descendant checks)?
bool SubtreeMatches(const Document& doc, const TwigPattern& pattern, int q,
                    NodeIndex node, std::vector<uint32_t>& name_ids) {
  for (int c : pattern.nodes[q].children) {
    bool found = false;
    const NodeRecord& r = doc.node(node);
    for (NodeIndex d = node + 1; d <= r.end; ++d) {
      const NodeRecord& dn = doc.node(d);
      if (dn.kind != NodeKind::kElement || dn.name_id != name_ids[c]) continue;
      if (pattern.nodes[c].child_edge && dn.parent != node) continue;
      if (SubtreeMatches(doc, pattern, c, d, name_ids)) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

void CollectOutput(const Document& doc, const TwigPattern& pattern, int q,
                   NodeIndex node, std::vector<uint32_t>& name_ids,
                   std::set<NodeIndex>* out) {
  if (!SubtreeMatches(doc, pattern, q, node, name_ids)) return;
  if (q == pattern.output) {
    out->insert(node);
    return;
  }
  // Descend towards the output node.
  for (int c : pattern.nodes[q].children) {
    // Only the branch containing the output node matters for collection.
    // Determine membership by walking up from output.
    int cur = pattern.output;
    bool on_branch = false;
    while (cur >= 0) {
      if (cur == c) {
        on_branch = true;
        break;
      }
      cur = pattern.nodes[cur].parent;
    }
    if (!on_branch) continue;
    const NodeRecord& r = doc.node(node);
    for (NodeIndex d = node + 1; d <= r.end; ++d) {
      const NodeRecord& dn = doc.node(d);
      if (dn.kind != NodeKind::kElement || dn.name_id != name_ids[c]) continue;
      if (pattern.nodes[c].child_edge && dn.parent != node) continue;
      CollectOutput(doc, pattern, c, d, name_ids, out);
    }
  }
}

}  // namespace

Result<std::vector<NodeIndex>> NavigationMatch(const Document& doc,
                                               const TwigPattern& pattern,
                                               TwigStats* stats) {
  std::vector<uint32_t> name_ids(pattern.nodes.size());
  for (size_t q = 0; q < pattern.nodes.size(); ++q) {
    name_ids[q] = doc.FindNameId(pattern.nodes[q].uri, pattern.nodes[q].local);
    if (name_ids[q] == kNoName) return std::vector<NodeIndex>{};
  }
  std::set<NodeIndex> out;
  for (NodeIndex i = 0; i < doc.NumNodes(); ++i) {
    const NodeRecord& n = doc.node(i);
    if (n.kind != NodeKind::kElement || n.name_id != name_ids[0]) continue;
    CollectOutput(doc, pattern, 0, i, name_ids, &out);
  }
  std::vector<NodeIndex> result(out.begin(), out.end());
  if (stats != nullptr) stats->output_matches = result.size();
  return result;
}

}  // namespace xqp
