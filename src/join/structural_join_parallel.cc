#include <algorithm>
#include <span>

#include "base/limits.h"
#include "base/metrics.h"
#include "base/parallel.h"
#include "join/structural_join.h"

namespace xqp {

namespace {

/// Effective worker count for one parallel join call.
int EffectiveThreads(int num_threads) {
  return num_threads > 0 ? num_threads : DefaultParallelism();
}

/// Records one threshold decision: did this join call fan out across the
/// pool or fall back to the serial kernel? EXPLAIN/PROFILE reports these
/// under "parallel-dispatch decisions".
void NoteDispatch(bool went_parallel) {
  if (!metrics::Enabled()) return;
  static metrics::Counter* dispatched =
      metrics::MetricsRegistry::Global().counter("join.parallel.dispatched");
  static metrics::Counter* fallback =
      metrics::MetricsRegistry::Global().counter(
          "join.parallel.serial_fallback");
  (went_parallel ? dispatched : fallback)->Increment();
}

/// Concatenates per-chunk outputs in chunk order. Matched descendants of
/// chunk c all precede those of chunk c+1 in document order (the chunk's
/// candidate window ends before the next chunk's first ancestor starts),
/// so this is exactly the serial output order.
template <typename T>
std::vector<T> Concatenate(std::vector<std::vector<T>> parts) {
  size_t total = 0;
  for (const auto& p : parts) total += p.size();
  std::vector<T> out;
  out.reserve(total);
  for (auto& p : parts) out.insert(out.end(), p.begin(), p.end());
  return out;
}

/// Runs `kernel(chunk_ancestors, chunk_descendants)` over a subtree-closed
/// partition and concatenates the results.
template <typename Kernel>
auto PartitionedJoin(const Document& doc, std::span<const NodeIndex> ancestors,
                     std::span<const NodeIndex> descendants, int threads,
                     Kernel kernel) {
  // Oversplit a little so one dense chunk does not straggle the join.
  std::vector<JoinChunk> chunks = ParallelJoinPartition(
      doc, ancestors, descendants, static_cast<size_t>(threads) * 4);
  using ResultVec = decltype(kernel(ancestors, descendants));
  std::vector<ResultVec> parts(chunks.size());
  ParallelForChunks(chunks.size(), [&](size_t c) {
    // Morsel-boundary governor check: once the owning query has tripped
    // (cancel/deadline/budget), remaining chunks skip their kernel work.
    // Partial output is fine — the caller polls at its next iterator
    // boundary and discards the join result with the trip status.
    ResourceGovernor* governor = CurrentGovernor();
    if (governor != nullptr && governor->tripped()) return;
    const JoinChunk& ck = chunks[c];
    parts[c] =
        kernel(ancestors.subspan(ck.anc_begin, ck.anc_end - ck.anc_begin),
               descendants.subspan(ck.desc_begin, ck.desc_end - ck.desc_begin));
  });
  return Concatenate(std::move(parts));
}

}  // namespace

std::vector<JoinChunk> ParallelJoinPartition(
    const Document& doc, std::span<const NodeIndex> ancestors,
    std::span<const NodeIndex> descendants, size_t target_chunks) {
  std::vector<JoinChunk> chunks;
  if (ancestors.empty() || descendants.empty() || target_chunks == 0) {
    return chunks;
  }
  const size_t target_size =
      std::max<size_t>(1, ancestors.size() / target_chunks);
  size_t chunk_begin = 0;
  // Running max of region ends over the whole prefix. Within a chunk this
  // equals the chunk's own max end: the cut condition guarantees earlier
  // chunks' regions close before the current chunk's first start.
  NodeIndex max_end = doc.node(ancestors[0]).end;
  auto close_chunk = [&](size_t chunk_end, NodeIndex chunk_max_end) {
    // Candidate descendants: strictly after the chunk's first ancestor
    // start, and no later than the last position any chunk region covers.
    auto d_lo = std::upper_bound(descendants.begin(), descendants.end(),
                                 ancestors[chunk_begin]);
    auto d_hi =
        std::upper_bound(d_lo, descendants.end(), chunk_max_end);
    chunks.push_back(JoinChunk{chunk_begin, chunk_end,
                               static_cast<size_t>(d_lo - descendants.begin()),
                               static_cast<size_t>(d_hi - descendants.begin())});
    chunk_begin = chunk_end;
  };
  for (size_t i = 1; i < ancestors.size(); ++i) {
    // A cut is legal only at a subtree boundary: every earlier region must
    // have closed, else an open ancestor's matches would span two chunks.
    if (i - chunk_begin >= target_size && ancestors[i] > max_end) {
      close_chunk(i, max_end);
    }
    max_end = std::max(max_end, doc.node(ancestors[i]).end);
  }
  close_chunk(ancestors.size(), max_end);
  return chunks;
}

std::vector<JoinPair> StackTreeDescParallel(const Document& doc,
                                            std::span<const NodeIndex> ancestors,
                                            std::span<const NodeIndex> descendants,
                                            bool parent_child, int num_threads,
                                            size_t min_parallel) {
  int threads = EffectiveThreads(num_threads);
  if (threads <= 1 || ancestors.size() + descendants.size() < min_parallel) {
    NoteDispatch(false);
    return StackTreeDesc(doc, ancestors, descendants, parent_child);
  }
  NoteDispatch(true);
  return PartitionedJoin(
      doc, ancestors, descendants, threads,
      [&](std::span<const NodeIndex> a, std::span<const NodeIndex> d) {
        return StackTreeDesc(doc, a, d, parent_child);
      });
}

std::vector<NodeIndex> JoinDescendantsParallel(
    const Document& doc, std::span<const NodeIndex> ancestors,
    std::span<const NodeIndex> descendants, bool parent_child, int num_threads,
    size_t min_parallel) {
  int threads = EffectiveThreads(num_threads);
  if (threads <= 1 || ancestors.size() + descendants.size() < min_parallel) {
    NoteDispatch(false);
    return JoinDescendants(doc, ancestors, descendants, parent_child);
  }
  NoteDispatch(true);
  return PartitionedJoin(
      doc, ancestors, descendants, threads,
      [&](std::span<const NodeIndex> a, std::span<const NodeIndex> d) {
        return JoinDescendants(doc, a, d, parent_child);
      });
}

std::vector<NodeIndex> JoinAncestorsParallel(
    const Document& doc, std::span<const NodeIndex> ancestors,
    std::span<const NodeIndex> descendants, bool parent_child, int num_threads,
    size_t min_parallel) {
  int threads = EffectiveThreads(num_threads);
  if (threads <= 1 || ancestors.size() + descendants.size() < min_parallel) {
    NoteDispatch(false);
    return JoinAncestors(doc, ancestors, descendants, parent_child);
  }
  NoteDispatch(true);
  // Ancestor-major output: chunks own disjoint, increasing ancestor ranges,
  // so chunk-order concatenation preserves the serial (input) order.
  return PartitionedJoin(
      doc, ancestors, descendants, threads,
      [&](std::span<const NodeIndex> a, std::span<const NodeIndex> d) {
        return JoinAncestors(doc, a, d, parent_child);
      });
}

}  // namespace xqp
