#include "tokens/token.h"

namespace xqp {

std::string_view TokenKindName(TokenKind k) {
  switch (k) {
    case TokenKind::kStartDocument:
      return "BD";
    case TokenKind::kEndDocument:
      return "ED";
    case TokenKind::kStartElement:
      return "BE";
    case TokenKind::kEndElement:
      return "EE";
    case TokenKind::kAttribute:
      return "ATTR";
    case TokenKind::kNamespaceDecl:
      return "NS";
    case TokenKind::kText:
      return "TEXT";
    case TokenKind::kComment:
      return "COMMENT";
    case TokenKind::kProcessingInstruction:
      return "PI";
  }
  return "?";
}

}  // namespace xqp
