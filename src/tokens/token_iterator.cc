#include "tokens/token_iterator.h"

#include "base/string_util.h"

namespace xqp {

// --- StreamTokenIterator ---

Result<const Token*> StreamTokenIterator::Next() {
  if (pos_ >= stream_->size()) return static_cast<const Token*>(nullptr);
  last_ = pos_++;
  return &stream_->token(last_);
}

Status StreamTokenIterator::Skip() {
  if (last_ == SIZE_MAX) return Status::OK();
  const Token& t = stream_->token(last_);
  if (t.kind == TokenKind::kStartElement && t.skip_to > last_) {
    pos_ = t.skip_to;  // O(1) jump over the whole subtree.
  }
  return Status::OK();
}

// --- ScanOnlyTokenIterator ---

Result<const Token*> ScanOnlyTokenIterator::Next() {
  if (pos_ >= stream_->size()) return static_cast<const Token*>(nullptr);
  last_ = pos_++;
  return &stream_->token(last_);
}

Status ScanOnlyTokenIterator::Skip() {
  if (last_ == SIZE_MAX) return Status::OK();
  if (stream_->token(last_).kind != TokenKind::kStartElement) {
    return Status::OK();
  }
  // Scan forward, balancing BE/EE, the way a skip-link-free representation
  // must.
  int depth = 1;
  while (pos_ < stream_->size() && depth > 0) {
    TokenKind k = stream_->token(pos_).kind;
    if (k == TokenKind::kStartElement) ++depth;
    if (k == TokenKind::kEndElement) --depth;
    ++pos_;
  }
  return Status::OK();
}

// --- DocumentTokenIterator ---

Status DocumentTokenIterator::Open() {
  next_node_ = 0;
  open_.clear();
  start_document_emitted_ = false;
  end_document_emitted_ = false;
  last_was_start_element_ = false;
  pending_ns_ = 0;
  ns_element_ = kNullNode;
  return Status::OK();
}

std::string_view DocumentTokenIterator::value(const Token& t) const {
  if (t.kind == TokenKind::kNamespaceDecl) return value_buf_;
  return t.value_id == kNoValue ? std::string_view()
                                : doc_->pool().Get(t.value_id);
}

std::string_view DocumentTokenIterator::aux(const Token& t) const {
  return aux_buf_;
}

Result<const Token*> DocumentTokenIterator::Next() {
  last_was_start_element_ = false;
  // Pending namespace declarations of the most recent element.
  if (ns_element_ != kNullNode) {
    const auto* decls = doc_->NamespaceDecls(ns_element_);
    if (decls != nullptr && pending_ns_ < decls->size()) {
      const auto& d = (*decls)[pending_ns_++];
      aux_buf_ = d.prefix;
      value_buf_ = d.uri;
      token_ = Token{};
      token_.kind = TokenKind::kNamespaceDecl;
      return &token_;
    }
    ns_element_ = kNullNode;
    pending_ns_ = 0;
  }

  if (!start_document_emitted_) {
    start_document_emitted_ = true;
    next_node_ = 1;
    token_ = Token{};
    token_.kind = TokenKind::kStartDocument;
    token_.node_id = 0;
    return &token_;
  }

  // Close any elements whose region ended before the next node.
  if (!open_.empty() &&
      (next_node_ >= doc_->NumNodes() ||
       next_node_ > doc_->node(open_.back()).end)) {
    open_.pop_back();
    token_ = Token{};
    token_.kind = TokenKind::kEndElement;
    return &token_;
  }

  if (next_node_ >= doc_->NumNodes()) {
    if (!end_document_emitted_) {
      end_document_emitted_ = true;
      token_ = Token{};
      token_.kind = TokenKind::kEndDocument;
      return &token_;
    }
    return static_cast<const Token*>(nullptr);
  }

  NodeIndex i = next_node_++;
  const NodeRecord& n = doc_->node(i);
  token_ = Token{};
  token_.node_id = i;
  switch (n.kind) {
    case NodeKind::kElement:
      token_.kind = TokenKind::kStartElement;
      token_.name_id = n.name_id;
      open_.push_back(i);
      last_was_start_element_ = true;
      last_element_ = i;
      if (doc_->NamespaceDecls(i) != nullptr) {
        ns_element_ = i;
        pending_ns_ = 0;
      }
      break;
    case NodeKind::kAttribute:
      token_.kind = TokenKind::kAttribute;
      token_.name_id = n.name_id;
      token_.value_id = n.value_id;
      break;
    case NodeKind::kText:
      token_.kind = TokenKind::kText;
      token_.value_id = n.value_id;
      break;
    case NodeKind::kComment:
      token_.kind = TokenKind::kComment;
      token_.value_id = n.value_id;
      break;
    case NodeKind::kProcessingInstruction:
      token_.kind = TokenKind::kProcessingInstruction;
      token_.name_id = n.name_id;
      token_.value_id = n.value_id;
      break;
    case NodeKind::kDocument:
      return Status::Internal("nested document node");
  }
  return &token_;
}

Status DocumentTokenIterator::Skip() {
  if (!last_was_start_element_) return Status::OK();
  // Jump past the subtree using the region end label.
  next_node_ = doc_->node(last_element_).end + 1;
  open_.pop_back();
  ns_element_ = kNullNode;
  last_was_start_element_ = false;
  return Status::OK();
}

// --- ParserTokenIterator ---

ParserTokenIterator::ParserTokenIterator(std::string_view xml,
                                         const ParseOptions& options)
    : xml_(xml), options_(options) {
  pool_.set_pooling_enabled(options.pool_strings);
}

Status ParserTokenIterator::Open() {
  parser_ = std::make_unique<XmlPullParser>(xml_, options_);
  queue_.clear();
  queue_pos_ = 0;
  last_was_start_element_ = false;
  return Status::OK();
}

uint32_t ParserTokenIterator::InternName(const QName& q) {
  auto it = name_index_.find(q);
  if (it != name_index_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(names_.size());
  names_.push_back(q);
  name_index_.emplace(q, id);
  return id;
}

Result<const Token*> ParserTokenIterator::Next() {
  if (queue_pos_ < queue_.size()) {
    current_ = queue_[queue_pos_++];
    if (queue_pos_ >= queue_.size()) {
      queue_.clear();
      queue_pos_ = 0;
    }
    last_was_start_element_ = current_.kind == TokenKind::kStartElement;
    return &current_;
  }
  XQP_ASSIGN_OR_RETURN(const XmlEvent* event, parser_->Next());
  if (event == nullptr) return static_cast<const Token*>(nullptr);
  last_was_start_element_ = false;
  Token t;
  switch (event->type) {
    case XmlEventType::kStartDocument:
      t.kind = TokenKind::kStartDocument;
      break;
    case XmlEventType::kEndDocument:
      t.kind = TokenKind::kEndDocument;
      break;
    case XmlEventType::kStartElement: {
      t.kind = TokenKind::kStartElement;
      t.name_id = InternName(event->name);
      last_was_start_element_ = true;
      for (const auto& ns : event->ns_decls) {
        Token nst;
        nst.kind = TokenKind::kNamespaceDecl;
        nst.aux_id = pool_.Intern(ns.prefix);
        nst.value_id = pool_.Intern(ns.uri);
        Enqueue(nst);
      }
      for (const auto& attr : event->attributes) {
        Token at;
        at.kind = TokenKind::kAttribute;
        at.name_id = InternName(attr.name);
        at.value_id = pool_.Intern(attr.value);
        Enqueue(at);
      }
      break;
    }
    case XmlEventType::kEndElement:
      t.kind = TokenKind::kEndElement;
      break;
    case XmlEventType::kText:
      t.kind = TokenKind::kText;
      t.value_id = pool_.Intern(event->text);
      break;
    case XmlEventType::kComment:
      t.kind = TokenKind::kComment;
      t.value_id = pool_.Intern(event->text);
      break;
    case XmlEventType::kProcessingInstruction:
      t.kind = TokenKind::kProcessingInstruction;
      t.name_id = InternName(event->name);
      t.value_id = pool_.Intern(event->text);
      break;
  }
  current_ = t;
  return &current_;
}

Status ParserTokenIterator::Skip() {
  if (!last_was_start_element_) return Status::OK();
  // The input is not materialized, so skipping must still consume events —
  // but avoids interning their strings.
  int depth = 1;
  queue_.clear();
  queue_pos_ = 0;
  while (depth > 0) {
    XQP_ASSIGN_OR_RETURN(const XmlEvent* event, parser_->Next());
    if (event == nullptr) {
      return Status::ParseError("unbalanced element during Skip()");
    }
    if (event->type == XmlEventType::kStartElement) ++depth;
    if (event->type == XmlEventType::kEndElement) --depth;
  }
  last_was_start_element_ = false;
  return Status::OK();
}

// --- TokenSink ---

Status TokenSink::CopySubtree(const Document& doc, NodeIndex root) {
  const NodeRecord& r = doc.node(root);
  switch (r.kind) {
    case NodeKind::kDocument: {
      for (NodeIndex c = r.first_child; c != kNullNode;
           c = doc.node(c).next_sibling) {
        XQP_RETURN_NOT_OK(CopySubtree(doc, c));
      }
      return Status::OK();
    }
    case NodeKind::kText:
      return Text(doc.value(root));
    case NodeKind::kComment:
      return Comment(doc.value(root));
    case NodeKind::kProcessingInstruction:
      return Pi(doc.name(root).local, doc.value(root));
    case NodeKind::kAttribute:
      return Attribute(doc.name(root), doc.value(root));
    case NodeKind::kElement: {
      XQP_RETURN_NOT_OK(StartElement(doc.name(root)));
      if (const auto* decls = doc.NamespaceDecls(root)) {
        for (const auto& d : *decls) {
          XQP_RETURN_NOT_OK(NamespaceDecl(d.prefix, d.uri));
        }
      }
      for (NodeIndex a = r.first_attr; a != kNullNode;
           a = doc.node(a).next_sibling) {
        XQP_RETURN_NOT_OK(Attribute(doc.name(a), doc.value(a)));
      }
      for (NodeIndex c = r.first_child; c != kNullNode;
           c = doc.node(c).next_sibling) {
        XQP_RETURN_NOT_OK(CopySubtree(doc, c));
      }
      return EndElement();
    }
  }
  return Status::Internal("unknown node kind");
}

// --- XmlTextSink ---

void XmlTextSink::CloseTagIfOpen() {
  if (tag_open_) {
    out_->push_back('>');
    tag_open_ = false;
  }
}

Status XmlTextSink::StartElement(const QName& name) {
  CloseTagIfOpen();
  out_->push_back('<');
  std::string tag = name.Lexical();
  out_->append(tag);
  open_tags_.push_back(std::move(tag));
  tag_open_ = true;
  return Status::OK();
}

Status XmlTextSink::EndElement() {
  if (open_tags_.empty()) {
    return Status::Internal("EndElement without StartElement");
  }
  if (tag_open_) {
    out_->append("/>");
    tag_open_ = false;
  } else {
    out_->append("</");
    out_->append(open_tags_.back());
    out_->push_back('>');
  }
  open_tags_.pop_back();
  return Status::OK();
}

Status XmlTextSink::Attribute(const QName& name, std::string_view value) {
  if (!tag_open_) {
    return Status::DynamicError("attribute after element content: " +
                                name.Lexical());
  }
  out_->push_back(' ');
  out_->append(name.Lexical());
  out_->append("=\"");
  AppendEscapedAttribute(value, out_);
  out_->push_back('"');
  return Status::OK();
}

Status XmlTextSink::NamespaceDecl(std::string_view prefix,
                                  std::string_view uri) {
  if (!tag_open_) {
    return Status::DynamicError("namespace declaration after content");
  }
  out_->push_back(' ');
  if (prefix.empty()) {
    out_->append("xmlns");
  } else {
    out_->append("xmlns:");
    out_->append(prefix);
  }
  out_->append("=\"");
  AppendEscapedAttribute(uri, out_);
  out_->push_back('"');
  return Status::OK();
}

Status XmlTextSink::Text(std::string_view text) {
  CloseTagIfOpen();
  AppendEscapedText(text, out_);
  return Status::OK();
}

Status XmlTextSink::Comment(std::string_view text) {
  CloseTagIfOpen();
  out_->append("<!--");
  out_->append(text);
  out_->append("-->");
  return Status::OK();
}

Status XmlTextSink::Pi(std::string_view target, std::string_view data) {
  CloseTagIfOpen();
  out_->append("<?");
  out_->append(target);
  if (!data.empty()) {
    out_->push_back(' ');
    out_->append(data);
  }
  out_->append("?>");
  return Status::OK();
}

// --- Adapters ---

Status PumpTokens(TokenIterator* iterator, TokenSink* sink) {
  while (true) {
    XQP_ASSIGN_OR_RETURN(const Token* t, iterator->Next());
    if (t == nullptr) return Status::OK();
    switch (t->kind) {
      case TokenKind::kStartDocument:
      case TokenKind::kEndDocument:
        break;
      case TokenKind::kStartElement:
        XQP_RETURN_NOT_OK(sink->StartElement(iterator->name(*t)));
        break;
      case TokenKind::kEndElement:
        XQP_RETURN_NOT_OK(sink->EndElement());
        break;
      case TokenKind::kAttribute:
        XQP_RETURN_NOT_OK(
            sink->Attribute(iterator->name(*t), iterator->value(*t)));
        break;
      case TokenKind::kNamespaceDecl:
        XQP_RETURN_NOT_OK(
            sink->NamespaceDecl(iterator->aux(*t), iterator->value(*t)));
        break;
      case TokenKind::kText:
        XQP_RETURN_NOT_OK(sink->Text(iterator->value(*t)));
        break;
      case TokenKind::kComment:
        XQP_RETURN_NOT_OK(sink->Comment(iterator->value(*t)));
        break;
      case TokenKind::kProcessingInstruction:
        XQP_RETURN_NOT_OK(
            sink->Pi(iterator->name(*t).local, iterator->value(*t)));
        break;
    }
  }
}

Result<std::string> SerializeTokens(TokenIterator* iterator) {
  std::string out;
  XmlTextSink sink(&out);
  XQP_RETURN_NOT_OK(iterator->Open());
  XQP_RETURN_NOT_OK(PumpTokens(iterator, &sink));
  XQP_RETURN_NOT_OK(iterator->Close());
  return out;
}

}  // namespace xqp
