#include "tokens/token_stream.h"

#include "xml/pull_parser.h"

namespace xqp {

TokenStream::TokenStream(const TokenStreamOptions& options) {
  pool_.set_pooling_enabled(options.pool_strings);
}

uint32_t TokenStream::InternName(const QName& name) {
  auto it = name_index_.find(name);
  if (it != name_index_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(names_.size());
  names_.push_back(name);
  name_index_.emplace(name, id);
  return id;
}

void TokenStream::AppendStartDocument() {
  tokens_.push_back(Token{TokenKind::kStartDocument});
}

void TokenStream::AppendEndDocument() {
  tokens_.push_back(Token{TokenKind::kEndDocument});
}

void TokenStream::AppendStartElement(const QName& name, NodeIndex node_id) {
  AppendStartElement(InternName(name), node_id);
}

void TokenStream::AppendStartElement(uint32_t name_id, NodeIndex node_id) {
  open_elements_.push_back(static_cast<uint32_t>(tokens_.size()));
  Token t;
  t.kind = TokenKind::kStartElement;
  t.name_id = name_id;
  t.node_id = node_id;
  tokens_.push_back(t);
}

void TokenStream::AppendEndElement() {
  tokens_.push_back(Token{TokenKind::kEndElement});
  if (!open_elements_.empty()) {
    tokens_[open_elements_.back()].skip_to =
        static_cast<uint32_t>(tokens_.size());
    open_elements_.pop_back();
  }
}

void TokenStream::AppendAttribute(const QName& name, std::string_view value,
                                  NodeIndex node_id) {
  AppendAttribute(InternName(name), value, node_id);
}

void TokenStream::AppendAttribute(uint32_t name_id, std::string_view value,
                                  NodeIndex node_id) {
  Token t;
  t.kind = TokenKind::kAttribute;
  t.name_id = name_id;
  t.value_id = pool_.Intern(value);
  t.node_id = node_id;
  tokens_.push_back(t);
}

void TokenStream::AppendNamespaceDecl(std::string_view prefix,
                                      std::string_view uri) {
  Token t;
  t.kind = TokenKind::kNamespaceDecl;
  t.aux_id = pool_.Intern(prefix);
  t.value_id = pool_.Intern(uri);
  tokens_.push_back(t);
}

void TokenStream::AppendText(std::string_view text, NodeIndex node_id) {
  Token t;
  t.kind = TokenKind::kText;
  t.value_id = pool_.Intern(text);
  t.node_id = node_id;
  tokens_.push_back(t);
}

void TokenStream::AppendComment(std::string_view text, NodeIndex node_id) {
  Token t;
  t.kind = TokenKind::kComment;
  t.value_id = pool_.Intern(text);
  t.node_id = node_id;
  tokens_.push_back(t);
}

void TokenStream::AppendProcessingInstruction(std::string_view target,
                                              std::string_view data,
                                              NodeIndex node_id) {
  Token t;
  t.kind = TokenKind::kProcessingInstruction;
  t.name_id = InternName(QName(std::string(target)));
  t.value_id = pool_.Intern(data);
  t.node_id = node_id;
  tokens_.push_back(t);
}

void TokenStream::SealSkipLinks() {
  // Appending already maintains links; re-derive for streams assembled by
  // direct token pushes (defensive, idempotent).
  std::vector<uint32_t> stack;
  for (uint32_t i = 0; i < tokens_.size(); ++i) {
    if (tokens_[i].kind == TokenKind::kStartElement) {
      stack.push_back(i);
    } else if (tokens_[i].kind == TokenKind::kEndElement && !stack.empty()) {
      tokens_[stack.back()].skip_to = i + 1;
      stack.pop_back();
    }
  }
}

TokenStream TokenStream::FromDocument(const Document& doc,
                                      const TokenStreamOptions& options) {
  TokenStream ts(options);
  // Iterative pre-order walk over the node table. The table is already in
  // pre-order, so a single scan suffices; END tokens are emitted when the
  // region of an open element closes.
  std::vector<NodeIndex> open;  // Element indices whose EE is pending.
  auto close_until = [&](NodeIndex next) {
    while (!open.empty() && next > doc.node(open.back()).end) {
      ts.AppendEndElement();
      open.pop_back();
    }
  };
  ts.AppendStartDocument();
  for (NodeIndex i = 1; i < doc.NumNodes(); ++i) {
    close_until(i);
    const NodeRecord& n = doc.node(i);
    NodeIndex id = options.with_node_ids ? i : kNullNode;
    switch (n.kind) {
      case NodeKind::kElement: {
        ts.AppendStartElement(doc.name(i), id);
        if (const auto* decls = doc.NamespaceDecls(i)) {
          for (const auto& d : *decls) ts.AppendNamespaceDecl(d.prefix, d.uri);
        }
        open.push_back(i);
        break;
      }
      case NodeKind::kAttribute:
        ts.AppendAttribute(doc.name(i), doc.value(i), id);
        break;
      case NodeKind::kText:
        ts.AppendText(doc.value(i), id);
        break;
      case NodeKind::kComment:
        ts.AppendComment(doc.value(i), id);
        break;
      case NodeKind::kProcessingInstruction:
        ts.AppendProcessingInstruction(doc.name(i).local, doc.value(i), id);
        break;
      case NodeKind::kDocument:
        break;
    }
  }
  close_until(static_cast<NodeIndex>(doc.NumNodes()));
  ts.AppendEndDocument();
  return ts;
}

Result<TokenStream> TokenStream::FromXml(std::string_view xml,
                                         const TokenStreamOptions& options) {
  ParseOptions popts;
  popts.pool_strings = options.pool_strings;
  XmlPullParser parser(xml, popts);
  TokenStream ts(options);
  ts.ReserveForInput(xml.size());
  NodeIndex next_id = 0;
  auto id = [&]() {
    return options.with_node_ids ? next_id++ : kNullNode;
  };
  // Memoized name interning via parser name tokens (see Document::Parse);
  // stored as name_id + 1, 0 = unseen.
  std::vector<uint32_t> name_ids;
  auto name_id_for = [&](uint32_t token, const QName& name) -> uint32_t {
    if (token >= name_ids.size()) name_ids.resize(token + 1, 0);
    if (name_ids[token] == 0) {
      name_ids[token] = ts.InternNameId(name) + 1;
    }
    return name_ids[token] - 1;
  };
  while (true) {
    XQP_ASSIGN_OR_RETURN(const XmlEvent* event, parser.Next());
    if (event == nullptr) break;
    switch (event->type) {
      case XmlEventType::kStartDocument:
        ts.AppendStartDocument();
        id();
        break;
      case XmlEventType::kEndDocument:
        ts.AppendEndDocument();
        break;
      case XmlEventType::kStartElement: {
        ts.AppendStartElement(name_id_for(event->name_token, event->name),
                              id());
        for (const auto& ns : event->ns_decls) {
          ts.AppendNamespaceDecl(ns.prefix, ns.uri);
        }
        for (const auto& attr : event->attributes) {
          ts.AppendAttribute(name_id_for(attr.name_token, attr.name),
                             attr.value, id());
        }
        break;
      }
      case XmlEventType::kEndElement:
        ts.AppendEndElement();
        break;
      case XmlEventType::kText:
        ts.AppendText(event->text, id());
        break;
      case XmlEventType::kComment:
        ts.AppendComment(event->text, id());
        break;
      case XmlEventType::kProcessingInstruction:
        ts.AppendProcessingInstruction(event->name.local, event->text, id());
        break;
    }
  }
  return ts;
}

void TokenStream::ReserveForInput(size_t input_bytes) {
  // Begin/end token pairs put tokens at roughly twice the node count;
  // ~12 bytes of markup per token on XMark-like documents.
  size_t tokens = input_bytes / 12 + 8;
  tokens_.reserve(tokens_.size() + tokens);
  pool_.Reserve(tokens / 8);
}

size_t TokenStream::MemoryUsage() const {
  size_t bytes = tokens_.capacity() * sizeof(Token);
  bytes += pool_.MemoryUsage();
  for (const QName& q : names_) {
    bytes += q.uri.capacity() + q.prefix.capacity() + q.local.capacity() +
             sizeof(QName);
  }
  return bytes;
}

}  // namespace xqp
