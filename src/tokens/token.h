#ifndef XQP_TOKENS_TOKEN_H_
#define XQP_TOKENS_TOKEN_H_

#include <cstdint>
#include <string_view>

#include "xml/document.h"
#include "xml/string_pool.h"

namespace xqp {

/// Token kinds of the array ("TokenStream") storage mode: a linear pre-order
/// rendering of an XML data-model instance, in the spirit of the paper's
/// BE(book)/BE(author)/TEXT(...)/EE sequence. END tokens carry no payload
/// ("special encodings for all END tokens").
enum class TokenKind : uint8_t {
  kStartDocument,
  kEndDocument,
  kStartElement,            // name_id
  kEndElement,              // payload-free
  kAttribute,               // name_id + value_id
  kNamespaceDecl,           // aux_id = prefix, value_id = uri
  kText,                    // value_id
  kComment,                 // value_id
  kProcessingInstruction,   // name_id (target) + value_id (data)
};

/// Name of `k` for diagnostics ("BE", "EE", "TEXT", ...), echoing the
/// paper's token notation.
std::string_view TokenKindName(TokenKind k);

/// One token. Strings and names are pooled in the owning TokenStream; a
/// token is four 32-bit words. `node_id` is the optional node identity — the
/// paper's "tokens w/o node identifiers" optimization corresponds to
/// streams built with node ids disabled (kNullNode everywhere).
struct Token {
  TokenKind kind = TokenKind::kEndDocument;
  uint32_t name_id = kNoName;
  StringPool::Id value_id = kNoValue;
  StringPool::Id aux_id = kNoValue;
  NodeIndex node_id = kNullNode;
  /// For kStartElement: index of the token just after the matching
  /// kEndElement. This is the "special tokens represent whole sub-trees"
  /// trick that makes skip() O(1) on materialized streams.
  uint32_t skip_to = 0;
};

}  // namespace xqp

#endif  // XQP_TOKENS_TOKEN_H_
