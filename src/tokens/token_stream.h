#ifndef XQP_TOKENS_TOKEN_STREAM_H_
#define XQP_TOKENS_TOKEN_STREAM_H_

#include <memory>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "tokens/token.h"
#include "xml/document.h"
#include "xml/qname.h"

namespace xqp {

/// Options for building token streams.
struct TokenStreamOptions {
  /// Stamp node identities on tokens. The paper generates node ids "only if
  /// really needed"; streams destined for serialization can omit them.
  bool with_node_ids = true;
  /// Dictionary-compress names and strings (paper's pooling optimization).
  bool pool_strings = true;
};

/// The array storage mode: an XML instance as a flat vector of tokens plus
/// string/name pools. "Linear representation of XML data: pre-order
/// traversal of the XML tree"; low overhead, streaming-friendly, and — via
/// skip links on begin-element tokens — cheap to skip through.
class TokenStream {
 public:
  TokenStream() = default;
  explicit TokenStream(const TokenStreamOptions& options);
  TokenStream(TokenStream&&) = default;
  TokenStream& operator=(TokenStream&&) = default;

  /// Renders `doc` into a token stream (pre-order; attributes between the
  /// begin-element token and child content, as in the paper's examples).
  static TokenStream FromDocument(const Document& doc,
                                  const TokenStreamOptions& options = {});

  /// Parses XML text straight into a token stream without building a node
  /// table (the parse -> tokens path of the DM life cycle).
  static Result<TokenStream> FromXml(std::string_view xml,
                                     const TokenStreamOptions& options = {});

  size_t size() const { return tokens_.size(); }
  const Token& token(size_t i) const { return tokens_[i]; }

  const QName& name(const Token& t) const { return names_[t.name_id]; }
  /// Name-table access by id (snapshot serialization; diagnostics).
  size_t NumNames() const { return names_.size(); }
  const QName& name_at(uint32_t name_id) const { return names_[name_id]; }
  const StringPool& pool() const { return pool_; }
  std::string_view value(const Token& t) const {
    return t.value_id == kNoValue ? std::string_view() : pool_.Get(t.value_id);
  }
  std::string_view aux(const Token& t) const {
    return t.aux_id == kNoValue ? std::string_view() : pool_.Get(t.aux_id);
  }

  /// Approximate heap footprint (tokens + pools); experiment E3.
  size_t MemoryUsage() const;

  /// Sizes the token array and pool for `input_bytes` of serialized XML
  /// (ingest fast path; purely an optimization).
  void ReserveForInput(size_t input_bytes);

  // --- Appending interface (used by builders/sinks) ---

  void AppendStartDocument();
  void AppendEndDocument();
  void AppendStartElement(const QName& name, NodeIndex node_id = kNullNode);
  /// Interns `name` into the stream's name table (the id AppendStartElement
  /// / AppendAttribute would assign); lets event sources memoize names and
  /// use the id overloads (see XmlEvent::name_token).
  uint32_t InternNameId(const QName& name) { return InternName(name); }
  void AppendStartElement(uint32_t name_id, NodeIndex node_id = kNullNode);
  void AppendAttribute(uint32_t name_id, std::string_view value,
                       NodeIndex node_id = kNullNode);
  void AppendEndElement();
  void AppendAttribute(const QName& name, std::string_view value,
                       NodeIndex node_id = kNullNode);
  void AppendNamespaceDecl(std::string_view prefix, std::string_view uri);
  void AppendText(std::string_view text, NodeIndex node_id = kNullNode);
  void AppendComment(std::string_view text, NodeIndex node_id = kNullNode);
  void AppendProcessingInstruction(std::string_view target,
                                   std::string_view data,
                                   NodeIndex node_id = kNullNode);

  /// Fills in skip_to links; called automatically by the factories. Appended
  /// streams must call it once complete for Skip() to be O(1).
  void SealSkipLinks();

 private:
  friend class storage::SnapshotLoader;

  uint32_t InternName(const QName& name);

  std::vector<Token> tokens_;
  std::vector<QName> names_;
  std::unordered_map<QName, uint32_t, QNameHash> name_index_;
  StringPool pool_;
  std::vector<uint32_t> open_elements_;  // For skip-link sealing.
};

}  // namespace xqp

#endif  // XQP_TOKENS_TOKEN_STREAM_H_
