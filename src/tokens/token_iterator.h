#ifndef XQP_TOKENS_TOKEN_ITERATOR_H_
#define XQP_TOKENS_TOKEN_ITERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "base/status.h"
#include "tokens/token_stream.h"
#include "xml/node.h"
#include "xml/pull_parser.h"

namespace xqp {

/// The paper's pull-based execution interface at token granularity:
///   open():  prepare execution, allocate resources
///   next():  return next token
///   skip():  skip all tokens until the first token of the next sibling
///   close(): release resources
/// Conceptually the relational iterator model, "but more fine-grained".
class TokenIterator {
 public:
  virtual ~TokenIterator() = default;

  virtual Status Open() = 0;
  /// Returns the next token or nullptr at end of stream. The pointer is
  /// valid until the next call.
  virtual Result<const Token*> Next() = 0;
  /// If the last returned token was a kStartElement, advances past its
  /// matching kEndElement (the whole subtree); otherwise a no-op. This is
  /// the granularity remedy used by positional access ($x[3], experiment
  /// E10).
  virtual Status Skip() = 0;
  virtual Status Close() = 0;

  /// Resolvers for the pooled payloads of tokens this iterator returned.
  virtual const QName& name(const Token& t) const = 0;
  virtual std::string_view value(const Token& t) const = 0;
  virtual std::string_view aux(const Token& t) const = 0;
};

/// Iterates a materialized TokenStream; Skip() is O(1) via skip links.
class StreamTokenIterator : public TokenIterator {
 public:
  explicit StreamTokenIterator(const TokenStream* stream) : stream_(stream) {}

  Status Open() override {
    pos_ = 0;
    last_ = SIZE_MAX;
    return Status::OK();
  }
  Result<const Token*> Next() override;
  Status Skip() override;
  Status Close() override { return Status::OK(); }

  const QName& name(const Token& t) const override { return stream_->name(t); }
  std::string_view value(const Token& t) const override {
    return stream_->value(t);
  }
  std::string_view aux(const Token& t) const override {
    return stream_->aux(t);
  }

 private:
  const TokenStream* stream_;
  size_t pos_ = 0;
  size_t last_ = SIZE_MAX;  // Index of last returned token.
};

/// Variant of StreamTokenIterator that ignores skip links and scans token by
/// token, used as the baseline in the skip() experiment (E10).
class ScanOnlyTokenIterator : public TokenIterator {
 public:
  explicit ScanOnlyTokenIterator(const TokenStream* stream)
      : stream_(stream) {}

  Status Open() override {
    pos_ = 0;
    last_ = SIZE_MAX;
    return Status::OK();
  }
  Result<const Token*> Next() override;
  Status Skip() override;
  Status Close() override { return Status::OK(); }

  const QName& name(const Token& t) const override { return stream_->name(t); }
  std::string_view value(const Token& t) const override {
    return stream_->value(t);
  }
  std::string_view aux(const Token& t) const override {
    return stream_->aux(t);
  }

 private:
  const TokenStream* stream_;
  size_t pos_ = 0;
  size_t last_ = SIZE_MAX;
};

/// Tokenizes a Document's node table on the fly (no token materialization);
/// Skip() jumps over subtrees using region end labels.
class DocumentTokenIterator : public TokenIterator {
 public:
  explicit DocumentTokenIterator(std::shared_ptr<const Document> doc)
      : doc_(std::move(doc)) {}

  Status Open() override;
  Result<const Token*> Next() override;
  Status Skip() override;
  Status Close() override { return Status::OK(); }

  const QName& name(const Token& t) const override {
    return doc_->name_at(t.name_id);
  }
  std::string_view value(const Token& t) const override;
  std::string_view aux(const Token& t) const override;

 private:
  std::shared_ptr<const Document> doc_;
  NodeIndex next_node_ = 0;
  std::vector<NodeIndex> open_;  // Elements with pending EE.
  Token token_;
  std::string aux_buf_;
  std::string value_buf_;
  size_t pending_ns_ = 0;          // Next ns-decl of current element.
  NodeIndex ns_element_ = kNullNode;
  bool start_document_emitted_ = false;
  bool end_document_emitted_ = false;
  bool last_was_start_element_ = false;
  NodeIndex last_element_ = kNullNode;
};

/// The "SAX Parser as TokenIterator" of the paper: tokens are produced by
/// parsing XML text on demand, so downstream operators can begin before the
/// input has been fully read. Skip() consumes (but does not resolve) the
/// subtree.
class ParserTokenIterator : public TokenIterator {
 public:
  ParserTokenIterator(std::string_view xml, const ParseOptions& options = {});

  Status Open() override;
  Result<const Token*> Next() override;
  Status Skip() override;
  Status Close() override { return Status::OK(); }

  const QName& name(const Token& t) const override { return names_[t.name_id]; }
  std::string_view value(const Token& t) const override {
    return t.value_id == kNoValue ? std::string_view() : pool_.Get(t.value_id);
  }
  std::string_view aux(const Token& t) const override {
    return t.aux_id == kNoValue ? std::string_view() : pool_.Get(t.aux_id);
  }

 private:
  uint32_t InternName(const QName& q);
  void Enqueue(Token t) { queue_.push_back(t); }

  std::string_view xml_;
  ParseOptions options_;
  std::unique_ptr<XmlPullParser> parser_;
  std::vector<QName> names_;
  std::unordered_map<QName, uint32_t, QNameHash> name_index_;
  StringPool pool_;
  std::vector<Token> queue_;  // Tokens pending delivery (FIFO).
  size_t queue_pos_ = 0;
  Token current_;
  bool last_was_start_element_ = false;
};

/// Push-side consumer of token events. Decouples node construction from
/// node-id generation (paper: "generate node ids only if really needed"):
/// the same producer can feed a DocumentSink (ids, node table) or an
/// XmlTextSink (no ids, direct serialization).
class TokenSink {
 public:
  virtual ~TokenSink() = default;
  virtual Status StartElement(const QName& name) = 0;
  virtual Status EndElement() = 0;
  virtual Status Attribute(const QName& name, std::string_view value) = 0;
  virtual Status NamespaceDecl(std::string_view prefix, std::string_view uri) {
    return Status::OK();
  }
  virtual Status Text(std::string_view text) = 0;
  virtual Status Comment(std::string_view text) = 0;
  virtual Status Pi(std::string_view target, std::string_view data) = 0;
  /// Deep-copies an existing subtree. Default implementation walks the tree
  /// and replays events.
  virtual Status CopySubtree(const Document& doc, NodeIndex root);
};

/// TokenSink building an immutable Document (with node identities).
class DocumentSink : public TokenSink {
 public:
  DocumentSink() = default;
  explicit DocumentSink(const ParseOptions& options) : builder_(options) {}

  Status StartElement(const QName& name) override {
    return builder_.BeginElement(name);
  }
  Status EndElement() override { return builder_.EndElement(); }
  Status Attribute(const QName& name, std::string_view value) override {
    return builder_.Attribute(name, value);
  }
  Status NamespaceDecl(std::string_view prefix,
                       std::string_view uri) override {
    return builder_.NamespaceDecl(prefix, uri);
  }
  Status Text(std::string_view text) override { return builder_.Text(text); }
  Status Comment(std::string_view text) override {
    return builder_.Comment(text);
  }
  Status Pi(std::string_view target, std::string_view data) override {
    return builder_.ProcessingInstruction(target, data);
  }
  Status CopySubtree(const Document& doc, NodeIndex root) override {
    return builder_.CopySubtree(doc, root);
  }

  Result<std::shared_ptr<Document>> Finish() { return builder_.Finish(); }

 private:
  DocumentBuilder builder_;
};

/// TokenSink serializing directly to XML text — no node table, no node ids,
/// no intermediate materialization. This is the paper's streaming-output
/// path (minimal time-to-first-byte; experiments E1/E9).
class XmlTextSink : public TokenSink {
 public:
  explicit XmlTextSink(std::string* out) : out_(out) {}

  Status StartElement(const QName& name) override;
  Status EndElement() override;
  Status Attribute(const QName& name, std::string_view value) override;
  Status NamespaceDecl(std::string_view prefix, std::string_view uri) override;
  Status Text(std::string_view text) override;
  Status Comment(std::string_view text) override;
  Status Pi(std::string_view target, std::string_view data) override;

 private:
  void CloseTagIfOpen();

  std::string* out_;
  std::vector<std::string> open_tags_;
  bool tag_open_ = false;
};

/// TokenSink appending to a TokenStream.
class TokenStreamSink : public TokenSink {
 public:
  explicit TokenStreamSink(TokenStream* stream) : stream_(stream) {}

  Status StartElement(const QName& name) override {
    stream_->AppendStartElement(name);
    return Status::OK();
  }
  Status EndElement() override {
    stream_->AppendEndElement();
    return Status::OK();
  }
  Status Attribute(const QName& name, std::string_view value) override {
    stream_->AppendAttribute(name, value);
    return Status::OK();
  }
  Status NamespaceDecl(std::string_view prefix,
                       std::string_view uri) override {
    stream_->AppendNamespaceDecl(prefix, uri);
    return Status::OK();
  }
  Status Text(std::string_view text) override {
    stream_->AppendText(text);
    return Status::OK();
  }
  Status Comment(std::string_view text) override {
    stream_->AppendComment(text);
    return Status::OK();
  }
  Status Pi(std::string_view target, std::string_view data) override {
    stream_->AppendProcessingInstruction(target, data);
    return Status::OK();
  }

 private:
  TokenStream* stream_;
};

/// Drains `iterator` into `sink` (a push-pull adapter).
Status PumpTokens(TokenIterator* iterator, TokenSink* sink);

/// Serializes everything `iterator` yields as XML text.
Result<std::string> SerializeTokens(TokenIterator* iterator);

}  // namespace xqp

#endif  // XQP_TOKENS_TOKEN_ITERATOR_H_
