#include "engine.h"

#include <sys/stat.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string_view>
#include <unordered_map>

#include "base/fault.h"
#include "storage/snapshot.h"
#include "tokens/token_stream.h"
#include "index/index_planner.h"
#include "base/limits.h"
#include "base/parallel.h"
#include "exec/interpreter.h"
#include "exec/iterators.h"
#include "join/twig.h"
#include "join/twig_planner.h"
#include "opt/access_path.h"
#include "opt/inline_functions.h"
#include "opt/properties.h"
#include "opt/static_types.h"
#include "query/normalize.h"
#include "query/parser.h"
#include "vm/compiler.h"
#include "vm/vm.h"

namespace xqp {

const char* ExecBackendName(ExecBackend backend) {
  switch (backend) {
    case ExecBackend::kLazy:
      return "lazy";
    case ExecBackend::kEager:
      return "eager";
    case ExecBackend::kVm:
      return "vm";
  }
  return "lazy";
}

XQueryEngine::XQueryEngine(const EngineOptions& options)
    : options_(options), cancel_token_(std::make_shared<CancelToken>()) {
  if (options_.collect_stats || metrics::TraceEnvRequested()) {
    metrics::MetricsRegistry::Global().set_enabled(true);
  }
  options_.default_limits = ApplyLimitsEnv(options_.default_limits);
  // XQP_INDEXES overrides the index knobs: off / on / synopsis-only / one
  // value family. Unrecognized values are ignored.
  if (const char* env = std::getenv("XQP_INDEXES")) {
    std::string_view v(env);
    if (v == "0" || v == "off") {
      options_.enable_indexes = false;
    } else if (v == "1" || v == "on" || v == "all") {
      options_.enable_indexes = true;
      options_.index_value_kinds = kIndexValueAll;
    } else if (v == "path") {
      options_.enable_indexes = true;
      options_.index_value_kinds = 0;
    } else if (v == "string") {
      options_.enable_indexes = true;
      options_.index_value_kinds = kIndexValueString;
    } else if (v == "numeric") {
      options_.enable_indexes = true;
      options_.index_value_kinds = kIndexValueNumeric;
    }
  }
  // XQP_BACKEND overrides the default execution backend. Unrecognized
  // values are ignored.
  if (const char* env = std::getenv("XQP_BACKEND")) {
    std::string_view v(env);
    if (v == "lazy") {
      options_.backend = ExecBackend::kLazy;
    } else if (v == "eager") {
      options_.backend = ExecBackend::kEager;
    } else if (v == "vm") {
      options_.backend = ExecBackend::kVm;
    }
  }
  // XQP_ACCESS_PATH forces one access-path strategy for every chain it can
  // answer (auto / nav / sjoin / twig / index). Unrecognized values are
  // ignored.
  if (const char* env = std::getenv("XQP_ACCESS_PATH")) {
    if (std::optional<AccessPath> forced = ParseAccessPath(env)) {
      options_.force_access_path = *forced;
    }
  }
  // XQP_SNAPSHOT points ParseAndRegister at a persistent snapshot
  // directory (empty value disables, matching the unset default).
  if (const char* env = std::getenv("XQP_SNAPSHOT")) {
    options_.snapshot_dir = env;
  }
  if (!options_.snapshot_dir.empty()) {
    // Best effort: a missing directory otherwise just makes every save
    // fail (loads already degrade to parse), but creating it here lets
    // XQP_SNAPSHOT=/tmp/fresh-dir work out of the box.
    ::mkdir(options_.snapshot_dir.c_str(), 0755);
  }
  fault::ArmFromEnv();
}

void XQueryEngine::CancelAll() {
  std::shared_ptr<CancelToken> doomed;
  {
    std::lock_guard<std::mutex> lock(cancel_mu_);
    doomed = std::move(cancel_token_);
    cancel_token_ = std::make_shared<CancelToken>();
  }
  doomed->Cancel();
}

std::shared_ptr<CancelToken> XQueryEngine::current_cancel_token() const {
  std::lock_guard<std::mutex> lock(cancel_mu_);
  return cancel_token_;
}

void XQueryEngine::InvalidateCachesLocked() {
  if (!result_cache_.empty()) {
    cache_stats_.invalidations.fetch_add(1, std::memory_order_relaxed);
  }
  result_cache_.clear();
  tag_indexes_.clear();
  index_manager_.Invalidate();
  ++cache_epoch_;
}

Status XQueryEngine::RegisterDocument(const std::string& uri,
                                      std::shared_ptr<const Document> doc) {
  if (doc == nullptr) return Status::InvalidArgument("null document");
  std::unique_lock lock(mu_);
  documents_[uri] = std::move(doc);
  InvalidateCachesLocked();
  return Status::OK();
}

namespace {

/// Storage counters, bumped only when metrics are on (same gate as every
/// other instrumentation point).
void CountStorage(const char* which) {
  if (!metrics::Enabled()) return;
  metrics::MetricsRegistry::Global().counter(which)->Add(1);
}

}  // namespace

Result<std::shared_ptr<const Document>> XQueryEngine::ParseAndRegister(
    const std::string& uri, std::string_view xml, const ParseOptions& options) {
  // Snapshot fast path: a persisted snapshot whose recorded content hash
  // and length match `xml` is the frozen result of parsing exactly these
  // bytes — adopt it (O(1) mmap, zero parse, indexes included) instead of
  // re-parsing. Stale or corrupt snapshots degrade to the parse below; a
  // merely missing file stays silent (first ingest of this document).
  const bool persist = !options_.snapshot_dir.empty();
  const std::string snap_path = persist ? SnapshotPathFor(uri) : std::string();
  if (persist) {
    Result<storage::LoadedSnapshot> loaded = storage::OpenSnapshot(snap_path);
    if (loaded.ok()) {
      if (loaded.value().content_hash == storage::HashContent(xml) &&
          loaded.value().content_bytes == xml.size()) {
        std::shared_ptr<const Document> doc = loaded.value().document;
        {
          std::unique_lock lock(mu_);
          documents_[uri] = doc;
          InvalidateCachesLocked();
        }
        if (options_.enable_indexes && loaded.value().indexes != nullptr &&
            loaded.value().value_kinds == options_.index_value_kinds) {
          index_manager_.Adopt(uri, loaded.value().indexes);
        }
        CountStorage("storage.loads");
        return doc;
      }
      CountStorage("storage.stale");
    } else if (loaded.status().code() == StatusCode::kSnapshotCorrupt) {
      CountStorage("storage.corrupt");
    }
  }
  ParseOptions effective = options;
  if (effective.max_parse_depth == 0) {
    effective.max_parse_depth = options_.default_limits.max_parse_depth;
  }
  XQP_ASSIGN_OR_RETURN(std::shared_ptr<Document> doc,
                       Document::Parse(xml, effective));
  doc->set_base_uri(uri);
  std::shared_ptr<const Document> registered(doc);
  {
    std::unique_lock lock(mu_);
    documents_[uri] = registered;
    InvalidateCachesLocked();
  }
  if (persist) {
    // Write-back is best effort: ingestion already succeeded, and the
    // atomic write protocol guarantees a failed save leaves any previous
    // snapshot file untouched. Indexes ride along when enabled so the
    // next cold start skips their build too.
    std::shared_ptr<const DocumentIndexes> indexes;
    if (options_.enable_indexes) {
      Result<std::shared_ptr<const DocumentIndexes>> built =
          index_manager_.GetOrBuild(uri, registered,
                                    options_.index_value_kinds);
      if (built.ok()) indexes = std::move(built.value());
    }
    storage::SnapshotInput input;
    input.doc = registered.get();
    input.indexes = indexes.get();
    input.content_hash = storage::HashContent(xml);
    input.content_bytes = xml.size();
    if (storage::WriteSnapshotFile(snap_path, input).ok()) {
      CountStorage("storage.saves");
    }
  }
  return registered;
}

Status XQueryEngine::SaveSnapshot(const std::string& uri,
                                  const std::string& path) {
  XQP_ASSIGN_OR_RETURN(std::shared_ptr<const Document> doc, GetDocument(uri));
  std::shared_ptr<const DocumentIndexes> indexes;
  if (options_.enable_indexes) {
    XQP_ASSIGN_OR_RETURN(
        indexes,
        index_manager_.GetOrBuild(uri, doc, options_.index_value_kinds));
  }
  // A full token stream rides along so snapshot consumers that replay
  // tokens (streaming experiments) skip rendering too.
  TokenStream tokens = TokenStream::FromDocument(*doc);
  storage::SnapshotInput input;
  input.doc = doc.get();
  input.tokens = &tokens;
  input.indexes = indexes.get();
  XQP_RETURN_NOT_OK(storage::WriteSnapshotFile(path, input));
  CountStorage("storage.saves");
  return Status::OK();
}

Result<std::shared_ptr<const Document>> XQueryEngine::LoadDocumentSnapshot(
    const std::string& uri, const std::string& path,
    std::string_view fallback_xml, const ParseOptions& options) {
  Result<storage::LoadedSnapshot> loaded = storage::OpenSnapshot(path);
  if (loaded.ok()) {
    std::shared_ptr<const Document> doc = loaded.value().document;
    {
      std::unique_lock lock(mu_);
      documents_[uri] = doc;
      InvalidateCachesLocked();
    }
    if (options_.enable_indexes && loaded.value().indexes != nullptr &&
        loaded.value().value_kinds == options_.index_value_kinds) {
      index_manager_.Adopt(uri, loaded.value().indexes);
    }
    CountStorage("storage.loads");
    return doc;
  }
  if (loaded.status().code() == StatusCode::kSnapshotCorrupt) {
    CountStorage("storage.corrupt");
  }
  if (fallback_xml.empty()) return loaded.status();
  // Graceful degradation: the snapshot is unusable but the original bytes
  // are at hand — re-ingest them so the document stays queryable.
  CountStorage("storage.fallbacks");
  return ParseAndRegister(uri, fallback_xml, options);
}

std::string XQueryEngine::SnapshotPathFor(const std::string& uri) const {
  // Filesystem-safe name: URI with everything outside [A-Za-z0-9._-]
  // replaced, capped, plus the full URI's hash so distinct URIs that
  // sanitize identically never collide.
  std::string name;
  name.reserve(uri.size());
  for (char c : uri) {
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                      c == '-';
    name.push_back(safe ? c : '_');
  }
  if (name.size() > 80) name.resize(80);
  char hash[17];
  std::snprintf(hash, sizeof(hash), "%016llx",
                static_cast<unsigned long long>(storage::HashContent(uri)));
  return options_.snapshot_dir + "/" + name + "-" + hash + ".xqps";
}

std::vector<Result<std::shared_ptr<const Document>>>
XQueryEngine::LoadDocumentsParallel(std::span<const BulkDocument> docs,
                                    const ParseOptions& options) {
  std::vector<Result<std::shared_ptr<const Document>>> out(
      docs.size(), Result<std::shared_ptr<const Document>>(
                       Status::Internal("document did not load")));
  ParseOptions effective = options;
  if (effective.max_parse_depth == 0) {
    effective.max_parse_depth = options_.default_limits.max_parse_depth;
  }
  int threads =
      options_.num_threads > 0 ? options_.num_threads : DefaultParallelism();
  // One token snapshot for the whole batch (same contract as
  // ExecuteBatchParallel): CancelAll() during the load also stops members
  // no worker has picked up yet.
  std::shared_ptr<CancelToken> batch_token = current_cancel_token();
  ParallelFor(docs.size(), threads, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      if (batch_token->cancelled()) {
        out[i] = Status::Cancelled("bulk load cancelled");
        continue;
      }
      Result<std::shared_ptr<Document>> parsed =
          Document::Parse(docs[i].xml, effective);
      if (!parsed.ok()) {
        out[i] = parsed.status();
        continue;
      }
      parsed.value()->set_base_uri(docs[i].uri);
      out[i] = std::shared_ptr<const Document>(std::move(parsed.value()));
    }
  });
  size_t loaded = 0;
  {
    std::unique_lock lock(mu_);
    for (size_t i = 0; i < docs.size(); ++i) {
      if (!out[i].ok()) continue;
      documents_[docs[i].uri] = out[i].value();
      ++loaded;
    }
    if (loaded > 0) InvalidateCachesLocked();
  }
  if (metrics::Enabled()) {
    static metrics::Counter* docs_loaded =
        metrics::MetricsRegistry::Global().counter("ingest.docs");
    static metrics::Counter* batches =
        metrics::MetricsRegistry::Global().counter("ingest.parallel_batches");
    docs_loaded->Add(loaded);
    batches->Add(1);
  }
  return out;
}

Status XQueryEngine::RegisterCollection(const std::string& uri,
                                        Sequence items) {
  std::unique_lock lock(mu_);
  collections_[uri] = std::move(items);
  InvalidateCachesLocked();
  return Status::OK();
}

XQueryEngine::CacheStats XQueryEngine::cache_stats() const {
  CacheStats snapshot;
  snapshot.hits = cache_stats_.hits.load(std::memory_order_relaxed);
  snapshot.misses = cache_stats_.misses.load(std::memory_order_relaxed);
  snapshot.uncacheable =
      cache_stats_.uncacheable.load(std::memory_order_relaxed);
  snapshot.invalidations =
      cache_stats_.invalidations.load(std::memory_order_relaxed);
  return snapshot;
}

Result<Sequence> XQueryEngine::ExecuteCached(std::string_view query) {
  return ExecuteCachedInternal(query, nullptr);
}

Result<Sequence> XQueryEngine::ExecuteCachedInternal(
    std::string_view query, std::shared_ptr<CancelToken> cancel) {
  uint64_t epoch;
  {
    std::shared_lock lock(mu_);
    auto hit = result_cache_.find(query);
    if (hit != result_cache_.end()) {
      cache_stats_.hits.fetch_add(1, std::memory_order_relaxed);
      return hit->second;
    }
    epoch = cache_epoch_;
  }
  // Compile and execute outside the lock so cache misses run concurrently.
  XQP_ASSIGN_OR_RETURN(std::unique_ptr<CompiledQuery> compiled, Compile(query));
  CompiledQuery::ExecOptions exec_options;
  exec_options.limits.cancel = std::move(cancel);
  XQP_ASSIGN_OR_RETURN(Sequence result, compiled->Execute(exec_options));
  // Node-constructing queries must produce fresh identities per run, so
  // their results are not shareable across calls.
  if (compiled->module().body->props.creates_nodes) {
    cache_stats_.uncacheable.fetch_add(1, std::memory_order_relaxed);
    return result;
  }
  cache_stats_.misses.fetch_add(1, std::memory_order_relaxed);
  {
    std::unique_lock lock(mu_);
    // Drop the result if a registration superseded the inputs meanwhile;
    // concurrent misses of the same query insert one winner, identical by
    // determinism.
    if (cache_epoch_ == epoch) {
      result_cache_.emplace(std::string(query), result);
    }
  }
  return result;
}

std::vector<Result<Sequence>> XQueryEngine::ExecuteBatchParallel(
    std::span<const std::string_view> queries) {
  std::vector<Result<Sequence>> out(
      queries.size(), Result<Sequence>(Status::Internal("query did not run")));
  int threads =
      options_.num_threads > 0 ? options_.num_threads : DefaultParallelism();
  // One token snapshot for the whole batch: CancelAll() during the batch
  // stops members that have not been picked up by a worker yet, not just
  // the in-flight ones.
  std::shared_ptr<CancelToken> batch_token = current_cancel_token();
  ParallelFor(queries.size(), threads, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      out[i] = batch_token->cancelled()
                   ? Result<Sequence>(Status::Cancelled("query cancelled"))
                   : ExecuteCachedInternal(queries[i], batch_token);
    }
  });
  return out;
}

Result<std::shared_ptr<const Document>> XQueryEngine::GetDocument(
    const std::string& uri) {
  std::shared_lock lock(mu_);
  auto it = documents_.find(uri);
  if (it == documents_.end()) {
    return Status::DynamicError("document not found: " + uri);
  }
  return it->second;
}

Result<Sequence> XQueryEngine::GetCollection(const std::string& uri) {
  std::shared_lock lock(mu_);
  auto it = collections_.find(uri);
  if (it == collections_.end()) {
    return Status::DynamicError("collection not found: " + uri);
  }
  return it->second;
}

Result<std::shared_ptr<const TagIndex>> XQueryEngine::GetTagIndex(
    const std::string& uri) {
  {
    std::shared_lock lock(mu_);
    auto cached = tag_indexes_.find(uri);
    if (cached != tag_indexes_.end()) return cached->second;
  }
  // Build outside the lock (index construction scans the whole document);
  // the first finished builder wins, racers adopt its index.
  XQP_ASSIGN_OR_RETURN(std::shared_ptr<const Document> doc, GetDocument(uri));
  auto index = std::make_shared<const TagIndex>(doc);
  // The building query pays for the structure it materializes — without
  // this charge a query could drive the process past XQP_MEM_BUDGET by
  // being the first to touch a large document's tag index.
  if (ResourceGovernor* gov = CurrentGovernor()) {
    XQP_RETURN_NOT_OK(gov->ChargeBytes(index->MemoryUsage()));
  }
  std::unique_lock lock(mu_);
  auto current = documents_.find(uri);
  if (current == documents_.end() || current->second != doc) {
    // The document was replaced while we built; serve the (correct) index
    // for the snapshot we read without caching it.
    return std::shared_ptr<const TagIndex>(index);
  }
  auto [it, inserted] = tag_indexes_.try_emplace(uri, index);
  return it->second;
}

Result<std::shared_ptr<const DocumentIndexes>>
XQueryEngine::GetDocumentIndexes(const std::string& uri) {
  if (!options_.enable_indexes) {
    return std::shared_ptr<const DocumentIndexes>();  // Null: fall back.
  }
  XQP_ASSIGN_OR_RETURN(std::shared_ptr<const Document> doc, GetDocument(uri));
  return index_manager_.GetOrBuild(uri, std::move(doc),
                                   options_.index_value_kinds);
}

Result<std::unique_ptr<CompiledQuery>> XQueryEngine::Compile(
    std::string_view query, const CompileOptions& options) {
  auto compiled = std::unique_ptr<CompiledQuery>(new CompiledQuery());
  XQP_ASSIGN_OR_RETURN(
      compiled->module_,
      ParseQuery(query, options_.default_limits.max_expr_depth));
  XQP_RETURN_NOT_OK(NormalizeModule(compiled->module_.get()));
  if (options.static_typing) {
    XQP_RETURN_NOT_OK(StaticTypeCheck(compiled->module_.get()));
  }
  if (options.optimize) {
    // With indexes disabled, index marking is forced off too, so the
    // optimized tree (and its EXPLAIN rendering) is bit-identical to a
    // build without the index subsystem.
    RewriterOptions rewriter = options.rewriter;
    if (!options_.enable_indexes) rewriter.index_paths = false;
    XQP_ASSIGN_OR_RETURN(
        compiled->rewrite_stats_,
        OptimizeModule(compiled->module_.get(), rewriter));
    // Pre-lowering inline fixpoint: the rewriter inlines at most
    // max_passes layers of user-function calls; finishing the job here
    // means call chains of any depth reach the bytecode compiler as plain
    // FLWORs instead of per-evaluation bailout thunks.
    if (rewriter.function_inlining) {
      XQP_RETURN_NOT_OK(InlineSmallFunctions(compiled->module_.get(),
                                             rewriter.inline_size_limit)
                            .status());
    }
  }
  // Final analysis pass: the lazy compiler consults properties (uses_last
  // and friends) even when optimization is disabled.
  ParsedModule* m = compiled->module_.get();
  for (UserFunction& fn : m->functions) {
    if (fn.body != nullptr) AnalyzeExpr(fn.body.get(), m);
  }
  for (GlobalVariable& g : m->globals) {
    if (g.init != nullptr) AnalyzeExpr(g.init.get(), m);
  }
  AnalyzeExpr(m->body.get(), m);
  // Annotate the chosen access path on index-candidate chains for EXPLAIN.
  // Peek-only: compiling a query must neither build indexes (no governor
  // charge, no fault-site hits) nor block on a build; a cold cache leaves
  // the annotation at kAuto and ExplainTree refreshes it later.
  if (options_.enable_indexes) {
    IndexPeek peek = [this](const std::string& uri) {
      return index_manager_.Peek(uri);
    };
    for (UserFunction& fn : m->functions) {
      if (fn.body != nullptr) {
        AnnotateAccessPaths(fn.body.get(), peek, options_.force_access_path);
      }
    }
    for (GlobalVariable& g : m->globals) {
      if (g.init != nullptr) {
        AnnotateAccessPaths(g.init.get(), peek, options_.force_access_path);
      }
    }
    AnnotateAccessPaths(m->body.get(), peek, options_.force_access_path);
  }
  compiled->engine_ = this;
  return compiled;
}

Result<Sequence> XQueryEngine::Execute(std::string_view query) {
  XQP_ASSIGN_OR_RETURN(std::unique_ptr<CompiledQuery> compiled, Compile(query));
  return compiled->Execute();
}

namespace {

/// Field-by-field limit merge: a set (non-zero / non-null) field in `over`
/// wins over `base`.
QueryLimits MergeLimits(const QueryLimits& base, const QueryLimits& over) {
  QueryLimits out = base;
  if (over.timeout.count() != 0) out.timeout = over.timeout;
  if (over.memory_budget_bytes != 0) {
    out.memory_budget_bytes = over.memory_budget_bytes;
  }
  if (over.max_parse_depth != 0) out.max_parse_depth = over.max_parse_depth;
  if (over.max_expr_depth != 0) out.max_expr_depth = over.max_expr_depth;
  if (over.max_result_items != 0) {
    out.max_result_items = over.max_result_items;
  }
  if (over.cancel != nullptr) out.cancel = over.cancel;
  return out;
}

/// Approximate per-item cost charged to the memory budget as the result
/// sequence materializes. Item payloads (strings, nodes) are dominated by
/// document storage, which is charged at construction.
constexpr uint64_t kResultItemCost = sizeof(Item) + 16;

/// Opens and drains the lazy plan under governor control: the root drain
/// polls per item, maintains the result-count and byte accounts, and hosts
/// the "iterators.next" fault site.
Result<Sequence> DrainGoverned(const Expr* body, DynamicContext* ctx) {
  XQP_ASSIGN_OR_RETURN(std::unique_ptr<ItemIterator> it, OpenLazy(body, ctx));
  ResourceGovernor* gov = ctx->governor;
  Sequence out;
  Item item;
  while (true) {
    if (fault::Armed()) {
      XQP_RETURN_NOT_OK(fault::MaybeInject("iterators.next"));
    }
    XQP_ASSIGN_OR_RETURN(bool got, it->Next(&item));
    if (!got) break;
    if (gov != nullptr) {
      XQP_RETURN_NOT_OK(gov->Poll());
      XQP_RETURN_NOT_OK(gov->ChargeResultItems(1));
      XQP_RETURN_NOT_OK(gov->ChargeBytes(kResultItemCost));
    }
    out.push_back(std::move(item));
  }
  return out;
}

}  // namespace

QueryLimits CompiledQuery::EffectiveLimits(const ExecOptions& options) const {
  if (engine_ == nullptr) return options.limits;
  return MergeLimits(engine_->options().default_limits, options.limits);
}

std::shared_ptr<CancelToken> CompiledQuery::EngineToken() const {
  return engine_ == nullptr ? nullptr : engine_->current_cancel_token();
}

ExecBackend CompiledQuery::ResolvedBackend(const ExecOptions& options) const {
  if (options.backend.has_value()) return *options.backend;
  if (!options.use_lazy_engine) return ExecBackend::kEager;
  return engine_ != nullptr ? engine_->options().backend : ExecBackend::kLazy;
}

Result<std::shared_ptr<const vm::Program>> CompiledQuery::VmProgram() const {
  std::call_once(vm_once_, [this] {
    Result<std::shared_ptr<const vm::Program>> compiled =
        vm::CompileProgram(*module_);
    if (compiled.ok()) {
      vm_program_ = std::move(compiled.value());
    } else {
      vm_status_ = compiled.status();
    }
  });
  if (!vm_status_.ok()) return vm_status_;
  return vm_program_;
}

void CompiledQuery::AnnotateForExplain() const {
  if (engine_ == nullptr || !engine_->options().enable_indexes) return;
  IndexPeek peek = [this](const std::string& uri) {
    return engine_->PeekDocumentIndexes(uri);
  };
  AccessPath force = engine_->options().force_access_path;
  ParsedModule* m = module_.get();
  for (UserFunction& fn : m->functions) {
    if (fn.body != nullptr) AnnotateAccessPaths(fn.body.get(), peek, force);
  }
  for (GlobalVariable& g : m->globals) {
    if (g.init != nullptr) AnnotateAccessPaths(g.init.get(), peek, force);
  }
  AnnotateAccessPaths(m->body.get(), peek, force);
}

std::string CompiledQuery::ExplainTree() const {
  AnnotateForExplain();
  return RenderExplainTree(*module_->body);
}

std::string CompiledQuery::ExplainTree(const ExecOptions& options) const {
  AnnotateForExplain();
  if (ResolvedBackend(options) != ExecBackend::kVm) {
    return RenderExplainTree(*module_->body);
  }
  Result<std::shared_ptr<const vm::Program>> prog = VmProgram();
  if (!prog.ok()) return RenderExplainTree(*module_->body);
  const vm::Program& p = *prog.value();
  std::unordered_map<const Expr*, const std::string*> thunk_reasons;
  for (const vm::Program::Thunk& t : p.thunks) {
    thunk_reasons.emplace(t.expr, &t.reason);
  }
  ExplainAnnotator annotate = [&](const Expr& e) -> std::string {
    auto it = thunk_reasons.find(&e);
    if (it != thunk_reasons.end()) return " [bailout: " + *it->second + "]";
    if (&e == p.root && !p.trivial_bailout) return " [vm]";
    return "";
  };
  return RenderExplainTree(*module_->body, annotate);
}

Status CompiledQuery::SetupContext(const ExecOptions& options,
                                   DynamicContext* ctx) const {
  ctx->module = module_.get();
  ctx->provider = engine_;
  if (engine_ != nullptr) {
    ctx->parallel_threshold = engine_->options().parallel_threshold;
    ctx->num_threads = engine_->options().num_threads;
    ctx->force_access_path = engine_->options().force_access_path;
  }
  if (options.has_context_item) {
    ctx->initial_context = LazySeq::FromItem(options.context_item);
  }
  for (const auto& [name, value] : options.variables) {
    ctx->external_variables[name] = LazySeq::FromVector(value);
  }
  // Globals, in declaration order.
  ctx->globals.resize(module_->globals.size());
  for (const GlobalVariable& g : module_->globals) {
    if (g.init != nullptr) {
      ctx->slots.assign(g.num_slots, nullptr);
      XQP_ASSIGN_OR_RETURN(Sequence value, EvalExpr(g.init.get(), ctx));
      ctx->globals[g.slot] = LazySeq::FromVector(std::move(value));
    } else {
      auto it = ctx->external_variables.find(g.name.local);
      if (it == ctx->external_variables.end()) {
        return Status::DynamicError("external variable not bound: $" +
                                    g.name.Lexical());
      }
      ctx->globals[g.slot] = it->second;
    }
  }
  ctx->slots.assign(module_->num_slots, nullptr);
  return Status::OK();
}

Result<Sequence> CompiledQuery::Execute(const ExecOptions& options) const {
  ResourceGovernor governor(EffectiveLimits(options), EngineToken());
  GovernorScope scope(&governor);
  DynamicContext ctx;
  ctx.governor = &governor;
  XQP_RETURN_NOT_OK(SetupContext(options, &ctx));
  switch (ResolvedBackend(options)) {
    case ExecBackend::kLazy:
      return DrainGoverned(module_->body.get(), &ctx);
    case ExecBackend::kEager: {
      XQP_ASSIGN_OR_RETURN(Sequence result,
                           EvalExpr(module_->body.get(), &ctx));
      XQP_RETURN_NOT_OK(governor.ChargeResultItems(result.size()));
      return result;
    }
    case ExecBackend::kVm: {
      Result<std::shared_ptr<const vm::Program>> prog = VmProgram();
      if (prog.ok() && !prog.value()->trivial_bailout) {
        XQP_RETURN_NOT_OK(
            governor.ChargeBytes(prog.value()->const_pool_bytes));
        XQP_ASSIGN_OR_RETURN(Sequence result,
                             vm::RunProgram(*prog.value(), &ctx));
        XQP_RETURN_NOT_OK(governor.ChargeResultItems(result.size()));
        return result;
      }
      // Whole-plan fallback: the root is uncompilable (or compilation
      // failed under fault injection) — run the lazy path, bit-identical
      // to backend=lazy including fault sites and drain accounting.
      if (metrics::Enabled()) {
        static metrics::Counter* fallbacks =
            metrics::MetricsRegistry::Global().counter("vm.fallbacks");
        fallbacks->Add(1);
      }
      return DrainGoverned(module_->body.get(), &ctx);
    }
  }
  return Status::Internal("unknown execution backend");
}

Result<ProfileReport> CompiledQuery::Profile(const ExecOptions& options) const {
  ProfileReport report;
  report.module = module_.get();
  report.rewrites = rewrite_stats_;
  const ExecBackend backend = ResolvedBackend(options);
  report.backend = backend;
  report.used_lazy_engine = backend == ExecBackend::kLazy;

  // Force the global registry on for the run so kernel counters and
  // dispatch decisions are captured, restoring the caller's setting after.
  auto& registry = metrics::MetricsRegistry::Global();
  const bool was_enabled = registry.enabled();
  registry.set_enabled(true);
  metrics::MetricsSnapshot before = registry.Snapshot();

  ResourceGovernor governor(EffectiveLimits(options), EngineToken());
  GovernorScope scope(&governor);
  DynamicContext ctx;
  ctx.governor = &governor;
  ctx.profile = &report.ops;
  Status setup = SetupContext(options, &ctx);
  Result<Sequence> result = Sequence{};
  bool vm_ran = false;
  const auto start = std::chrono::steady_clock::now();
  if (setup.ok()) {
    switch (backend) {
      case ExecBackend::kLazy:
        result = DrainGoverned(module_->body.get(), &ctx);
        break;
      case ExecBackend::kEager:
        result = EvalExpr(module_->body.get(), &ctx);
        break;
      case ExecBackend::kVm: {
        Result<std::shared_ptr<const vm::Program>> prog = VmProgram();
        if (prog.ok() && !prog.value()->trivial_bailout) {
          vm_ran = true;
          Status charged =
              governor.ChargeBytes(prog.value()->const_pool_bytes);
          result = charged.ok()
                       ? vm::RunProgram(*prog.value(), &ctx)
                       : Result<Sequence>(charged);
          if (result.ok()) {
            Status counted =
                governor.ChargeResultItems(result.value().size());
            if (!counted.ok()) result = counted;
          }
        } else {
          result = DrainGoverned(module_->body.get(), &ctx);
        }
        break;
      }
    }
  }
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  // The VM does not profile per compiled operator (the whole point is that
  // compiled subtrees have no per-operator boundaries); bailout thunks
  // profile normally via the lazy engine. Account the run to the plan root
  // so root-based invariants (items == result cardinality) hold.
  if (vm_ran && result.ok()) {
    OpStats* root = report.ops.StatsFor(module_->body.get());
    root->next_calls += 1;
    root->items += result.value().size();
    root->wall_ns += ns < 0 ? 0 : uint64_t(ns);
  }

  report.engine_metrics = registry.Snapshot().Delta(before);
  registry.set_enabled(was_enabled);
  XQP_RETURN_NOT_OK(setup);
  XQP_ASSIGN_OR_RETURN(report.result, std::move(result));
  report.total_wall_ns = ns < 0 ? 0 : uint64_t(ns);
  if (engine_ != nullptr) report.cache = engine_->cache_stats();
  return report;
}

const OpStats* ProfileReport::RootStats() const {
  if (module == nullptr) return nullptr;
  return ops.Find(module->body.get());
}

std::string ProfileReport::ToText() const {
  std::string out = "engine: ";
  switch (backend) {
    case ExecBackend::kLazy:
      out += "lazy (streaming iterators)\n";
      break;
    case ExecBackend::kEager:
      out += "eager (reference interpreter)\n";
      break;
    case ExecBackend::kVm:
      out += "vm (bytecode)\n";
      break;
  }
  out += "result items: " + std::to_string(result.size()) + "\n";
  out += "total wall ns: " + std::to_string(total_wall_ns) + "\n\n";
  if (module != nullptr) {
    out += RenderProfileText(*module->body, ops);
  }
  if (!rewrites.empty()) {
    out += "\nrewrites fired:\n";
    for (const auto& [rule, count] : rewrites) {
      out += "  " + rule + ": " + std::to_string(count) + "\n";
    }
  }
  if (!engine_metrics.counters.empty()) {
    out += "\nengine counters (this run):\n";
    for (const auto& [name, value] : engine_metrics.counters) {
      if (value == 0) continue;
      out += "  " + name + ": " + std::to_string(value) + "\n";
    }
  }
  out += "\ncache: hits=" + std::to_string(cache.hits) +
         " misses=" + std::to_string(cache.misses) +
         " uncacheable=" + std::to_string(cache.uncacheable) +
         " invalidations=" + std::to_string(cache.invalidations) + "\n";
  return out;
}

std::string ProfileReport::ToJson() const {
  std::string out = "{\"engine\":\"";
  out += ExecBackendName(backend);
  out += "\",\"result_items\":" + std::to_string(result.size());
  out += ",\"total_wall_ns\":" + std::to_string(total_wall_ns);
  out += ",\"plan\":";
  if (module != nullptr) {
    out += RenderProfileJson(*module->body, ops);
  } else {
    out += "null";
  }
  out += ",\"rewrites\":{";
  bool first = true;
  for (const auto& [rule, count] : rewrites) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    AppendJsonEscaped(rule, &out);
    out += "\":" + std::to_string(count);
  }
  out += "},\"cache\":{\"hits\":" + std::to_string(cache.hits) +
         ",\"misses\":" + std::to_string(cache.misses) +
         ",\"uncacheable\":" + std::to_string(cache.uncacheable) +
         ",\"invalidations\":" + std::to_string(cache.invalidations) + "}";
  out += ",\"counters\":{";
  first = true;
  for (const auto& [name, value] : engine_metrics.counters) {
    if (value == 0) continue;
    if (!first) out += ",";
    first = false;
    out += "\"";
    AppendJsonEscaped(name, &out);
    out += "\":" + std::to_string(value);
  }
  // Per-reason bailout counters, broken out of the flat counter map so CI
  // can diff the VM's compiled coverage directly. MetricsSnapshot's
  // counters are an ordered map, so the key order is deterministic.
  out += "},\"vm_bailouts\":{";
  first = true;
  for (const auto& [name, value] : engine_metrics.counters) {
    if (value == 0 || name.rfind("vm.bailout.", 0) != 0) continue;
    if (!first) out += ",";
    first = false;
    out += "\"";
    AppendJsonEscaped(name, &out);
    out += "\":" + std::to_string(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : engine_metrics.histograms) {
    if (h.count == 0) continue;
    if (!first) out += ",";
    first = false;
    out += "\"";
    AppendJsonEscaped(name, &out);
    out += "\":{\"count\":" + std::to_string(h.count) +
           ",\"sum\":" + std::to_string(h.sum) +
           ",\"min\":" + std::to_string(h.min) +
           ",\"max\":" + std::to_string(h.max) +
           ",\"p50\":" + std::to_string(h.Percentile(50)) +
           ",\"p95\":" + std::to_string(h.Percentile(95)) +
           ",\"p99\":" + std::to_string(h.Percentile(99)) + "}";
  }
  out += "}}";
  return out;
}

Result<std::string> CompiledQuery::ExecuteToXml(
    const ExecOptions& options) const {
  XQP_ASSIGN_OR_RETURN(Sequence result, Execute(options));
  return SerializeSequence(result);
}

Result<std::unique_ptr<ResultStream>> CompiledQuery::Open(
    const ExecOptions& options) const {
  auto stream = std::unique_ptr<ResultStream>(new ResultStream());
  stream->governor_ =
      std::make_unique<ResourceGovernor>(EffectiveLimits(options),
                                         EngineToken());
  GovernorScope scope(stream->governor_.get());
  stream->ctx_ = std::make_unique<DynamicContext>();
  stream->ctx_->governor = stream->governor_.get();
  XQP_RETURN_NOT_OK(SetupContext(options, stream->ctx_.get()));
  XQP_ASSIGN_OR_RETURN(stream->iterator_,
                       OpenLazy(module_->body.get(), stream->ctx_.get()));
  return stream;
}

Result<bool> ResultStream::Next(Item* out) {
  if (fault::Armed()) {
    XQP_RETURN_NOT_OK(fault::MaybeInject("iterators.next"));
  }
  XQP_RETURN_NOT_OK(governor_->Poll());
  GovernorScope scope(governor_.get());
  XQP_ASSIGN_OR_RETURN(bool got, iterator_->Next(out));
  if (got) XQP_RETURN_NOT_OK(governor_->ChargeResultItems(1));
  return got;
}

Result<std::string> ResultStream::DrainToXml() {
  std::string out;
  bool prev_atomic = false;
  Item item;
  while (true) {
    XQP_ASSIGN_OR_RETURN(bool got, Next(&item));
    if (!got) break;
    if (item.IsNode()) {
      XQP_RETURN_NOT_OK(SerializeNode(item.AsNode(), SerializeOptions{}, &out));
      prev_atomic = false;
    } else {
      if (prev_atomic) out.push_back(' ');
      out += item.AsAtomic().Lexical();
      prev_atomic = true;
    }
  }
  return out;
}

bool CompiledQuery::IsTwigConvertible() const {
  return TwigPlanner::IsConvertible(*module_->body);
}

Result<Sequence> CompiledQuery::ExecuteViaTwigJoin() const {
  XQP_ASSIGN_OR_RETURN(TwigPattern pattern,
                       TwigPlanner::Compile(*module_->body));
  if (pattern.anchor_uri.empty()) {
    return Status::InvalidArgument(
        "twig execution requires a doc('uri')-anchored path");
  }
  if (engine_ == nullptr) return Status::Internal("query has no engine");
  // Twig execution is governed like the navigational engines: index builds
  // charge the memory budget, parallel morsels observe trips.
  ResourceGovernor governor(EffectiveLimits(ExecOptions()), EngineToken());
  GovernorScope scope(&governor);
  XQP_ASSIGN_OR_RETURN(std::shared_ptr<const TagIndex> index,
                       engine_->GetTagIndex(pattern.anchor_uri));
  const EngineOptions& opts = engine_->options();
  std::vector<NodeIndex> matches;
  bool answered = false;
  // A forced access path reroutes the twig executor the same way it does
  // the navigational engines: nav runs the recursive-probing baseline,
  // sjoin the binary structural-join pipeline, twig skips the synopsis
  // substitution so the holistic join runs over full per-tag lists.
  if (opts.force_access_path == AccessPath::kNav) {
    XQP_ASSIGN_OR_RETURN(matches, NavigationMatch(index->doc(), pattern));
    answered = true;
  } else if (opts.force_access_path == AccessPath::kSJoin) {
    XQP_ASSIGN_OR_RETURN(matches, BinaryJoinMatch(*index, pattern));
    answered = true;
  }
  if (!answered && opts.enable_indexes &&
      opts.force_access_path != AccessPath::kTwig) {
    // Index-aware planning: resolve each pattern node's root chain against
    // the path synopsis. A linear pattern whose output is the leaf is a
    // complete synopsis answer (no join at all); otherwise the synopsis-
    // filtered posting lists replace the full per-tag leaf streams and the
    // join runs over far fewer postings. Results are identical either way:
    // the filtered lists are supersets of the solution participants.
    XQP_ASSIGN_OR_RETURN(std::shared_ptr<const DocumentIndexes> indexes,
                         engine_->GetDocumentIndexes(pattern.anchor_uri));
    if (indexes != nullptr && indexes->doc_ptr() == index->doc_ptr()) {
      auto lists = SynopsisPostingsForPattern(*indexes, pattern);
      if (lists.has_value()) {
        static metrics::Counter* synopsis_answered =
            metrics::MetricsRegistry::Global().counter(
                "twig.synopsis_answered");
        static metrics::Counter* synopsis_substituted =
            metrics::MetricsRegistry::Global().counter(
                "twig.synopsis_substituted");
        if (pattern.IsPath() &&
            pattern.nodes[pattern.output].children.empty()) {
          matches = std::move((*lists)[pattern.output]);
          if (metrics::Enabled()) synopsis_answered->Add(1);
        } else {
          std::vector<const std::vector<NodeIndex>*> ptrs;
          ptrs.reserve(lists->size());
          for (const auto& l : *lists) ptrs.push_back(&l);
          XQP_ASSIGN_OR_RETURN(
              matches,
              TwigStackMatchWithLists(indexes->doc(), pattern, ptrs));
          if (metrics::Enabled()) synopsis_substituted->Add(1);
        }
        answered = true;
      }
    }
  }
  // Threshold dispatch: the parallel variant degrades to the serial
  // algorithm internally when the posting lists are small, so small
  // queries keep their latency.
  if (!answered) {
    if (opts.parallel_threshold > 0) {
      XQP_ASSIGN_OR_RETURN(
          matches, TwigStackMatchParallel(*index, pattern, nullptr,
                                          opts.num_threads,
                                          opts.parallel_threshold));
    } else {
      XQP_ASSIGN_OR_RETURN(matches, TwigStackMatch(*index, pattern));
    }
  }
  Sequence out;
  out.reserve(matches.size());
  for (NodeIndex n : matches) {
    out.push_back(Item(Node(index->doc_ptr(), n)));
  }
  return out;
}

Result<std::string> SerializeSequence(const Sequence& seq,
                                      const SerializeOptions& options) {
  std::string out;
  bool prev_atomic = false;
  for (const Item& item : seq) {
    if (item.IsNode()) {
      XQP_RETURN_NOT_OK(SerializeNode(item.AsNode(), options, &out));
      prev_atomic = false;
    } else {
      if (prev_atomic) out.push_back(' ');
      out += item.AsAtomic().Lexical();
      prev_atomic = true;
    }
  }
  return out;
}

}  // namespace xqp
