#ifndef XQP_INDEX_INDEX_MANAGER_H_
#define XQP_INDEX_INDEX_MANAGER_H_

#include <map>
#include <memory>
#include <shared_mutex>
#include <string>

#include "index/document_indexes.h"

namespace xqp {

/// Lazily built, engine-cached DocumentIndexes, living beside the TagIndex
/// cache on XQueryEngine. Same concurrency discipline: shared-lock probe,
/// build outside any lock, exclusive-lock publish with a document-identity
/// recheck — so a racing re-registration can never leave a stale index
/// serving a new document snapshot. The builder's query pays for the index:
/// MemoryUsage() is charged to the thread's current ResourceGovernor, and a
/// tripped budget fails that query without poisoning the cache.
class IndexManager {
 public:
  /// Returns the cached indexes for (uri, doc), building them on first use
  /// or after the document changed. `doc` is the caller's snapshot of the
  /// registered document — identity (pointer) mismatch with the cache entry
  /// forces a rebuild.
  Result<std::shared_ptr<const DocumentIndexes>> GetOrBuild(
      const std::string& uri, std::shared_ptr<const Document> doc,
      uint32_t value_kinds);

  /// Installs already-built indexes (a validated snapshot's) as the cache
  /// entry for `uri`, replacing whatever is there. GetOrBuild then serves
  /// them without a rebuild as long as the registered document and the
  /// engine's value-kind mask still match; a mismatch (document replaced,
  /// knobs changed) falls back to a normal build — adoption can never
  /// pin stale indexes.
  void Adopt(const std::string& uri,
             std::shared_ptr<const DocumentIndexes> indexes);

  /// Shared-lock probe of the cache: the entry for `uri` or null, never
  /// building. Compile-time access-path annotation peeks so that compiling
  /// a query can neither charge an index build to a governor nor trip
  /// injected build faults — those belong to the first executing query.
  std::shared_ptr<const DocumentIndexes> Peek(const std::string& uri) const;

  /// Drops every cached index (document re-registration, engine epoch bump).
  void Invalidate();

  size_t NumCached() const;

 private:
  mutable std::shared_mutex mu_;
  std::map<std::string, std::shared_ptr<const DocumentIndexes>> cache_;
};

}  // namespace xqp

#endif  // XQP_INDEX_INDEX_MANAGER_H_
