#ifndef XQP_INDEX_DOCUMENT_INDEXES_H_
#define XQP_INDEX_DOCUMENT_INDEXES_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "base/status.h"
#include "xml/document.h"

namespace xqp {

/// Which value-index families DocumentIndexes builds; a bitmask carried in
/// EngineOptions::index_value_kinds and overridable via XQP_INDEXES.
enum IndexValueKinds : uint32_t {
  kIndexValueString = 1u << 0,
  kIndexValueNumeric = 1u << 1,
  kIndexValueAll = kIndexValueString | kIndexValueNumeric,
};

/// Per-document secondary index structures — the paper's "separate indexes
/// from data" design point made concrete:
///
///   1. A *path synopsis* (DataGuide): every distinct root-to-node label
///      path in the document becomes one synopsis node, with a posting list
///      of the document nodes on that path (in document order). Rooted and
///      //-suffix paths then resolve by traversing the synopsis — typically
///      a few dozen nodes — instead of structural-joining full per-tag
///      posting lists. Attribute paths are first-class synopsis nodes.
///
///   2. A *value index*: per synopsis path, the typed values of the nodes on
///      it, sorted for range scans — strings byte-wise (exactly the general-
///      comparison string semantics) and, when every value on the path
///      parses as xs:double, numerically with NaN entries last. Selective
///      predicates like [price < 50] or [@id = "person0"] become one range
///      scan plus a doc-order merge.
///
/// Instances are immutable after Build() and shared freely across threads;
/// IndexManager caches them per engine with epoch invalidation.
class DocumentIndexes {
 public:
  /// One distinct root-to-node label path. Node 0 is the document root
  /// (kind kDocument, no name); element and attribute paths hang off their
  /// parent path. Synopsis ids are dense and stable for the lifetime of the
  /// index.
  struct SynopsisNode {
    uint32_t name_id = kNoName;
    NodeKind kind = NodeKind::kDocument;
    int32_t parent = -1;
    std::vector<int32_t> children;
  };

  /// Typed values of every node on one synopsis path.
  struct ValuePostings {
    /// False when some element on the path has element content: its typed
    /// value is not a plain text concatenation of direct children, so value
    /// predicates on this path fall back to normal evaluation.
    bool indexable = true;
    /// True when every value on the path casts to xs:double — the
    /// precondition for answering numeric general comparisons without
    /// risking a cast error the fallback plan would have raised.
    bool all_numeric = true;
    /// (string value, node), sorted by value then node. Byte-wise string
    /// order matches the general-comparison string semantics.
    std::vector<std::pair<std::string, NodeIndex>> by_string;
    /// (double value, node), sorted by value then node, NaN entries last.
    std::vector<std::pair<double, NodeIndex>> by_number;
  };

  /// Builds both structures in one scan of the node table plus one value
  /// pass. Hosts the "alloc" fault-injection site (index construction is an
  /// allocation burst) — the error path is exercised by XQP_FAULT=alloc:N.
  static Result<std::shared_ptr<const DocumentIndexes>> Build(
      std::shared_ptr<const Document> doc, uint32_t value_kinds);

  const Document& doc() const { return *doc_; }
  const std::shared_ptr<const Document>& doc_ptr() const { return doc_; }
  uint32_t value_kinds() const { return value_kinds_; }

  size_t NumSynopsisNodes() const { return nodes_.size(); }
  const SynopsisNode& synopsis_node(int32_t s) const { return nodes_[s]; }

  /// Document nodes on synopsis path `s`, in document order. Posting lists
  /// of distinct synopsis nodes are disjoint by construction.
  const std::vector<NodeIndex>& postings(int32_t s) const {
    return postings_[s];
  }

  /// Value postings for synopsis path `s`, or nullptr when the value index
  /// was not built (value_kinds == 0).
  const ValuePostings* values(int32_t s) const {
    return values_.empty() ? nullptr : &values_[s];
  }

  /// The child of `s` matching (kind, name_id), or -1.
  int32_t FindChild(int32_t s, NodeKind kind, uint32_t name_id) const;

  /// Appends every synopsis node strictly below `s` matching (kind,
  /// name_id) to `out` (the //-edge resolution step).
  void FindDescendants(int32_t s, NodeKind kind, uint32_t name_id,
                       std::vector<int32_t>* out) const;

  /// Approximate heap footprint (synopsis + postings + value entries);
  /// charged to the building query's ResourceGovernor memory budget.
  size_t MemoryUsage() const;

 private:
  friend class storage::SnapshotLoader;

  DocumentIndexes() = default;

  std::shared_ptr<const Document> doc_;
  uint32_t value_kinds_ = 0;
  std::vector<SynopsisNode> nodes_;
  std::vector<std::vector<NodeIndex>> postings_;
  std::vector<ValuePostings> values_;  // Empty when value_kinds == 0.
};

}  // namespace xqp

#endif  // XQP_INDEX_DOCUMENT_INDEXES_H_
