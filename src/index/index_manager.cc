#include "index/index_manager.h"

#include <mutex>

#include "base/limits.h"
#include "base/metrics.h"

namespace xqp {

Result<std::shared_ptr<const DocumentIndexes>> IndexManager::GetOrBuild(
    const std::string& uri, std::shared_ptr<const Document> doc,
    uint32_t value_kinds) {
  {
    std::shared_lock lock(mu_);
    auto it = cache_.find(uri);
    if (it != cache_.end() && it->second->doc_ptr() == doc &&
        it->second->value_kinds() == value_kinds) {
      return it->second;
    }
  }
  // Build outside the lock (two document passes); first finished builder
  // wins, racers adopt its result.
  static metrics::Counter* builds =
      metrics::MetricsRegistry::Global().counter("index.builds");
  static metrics::Counter* bytes =
      metrics::MetricsRegistry::Global().counter("index.bytes");
  static metrics::Counter* paths =
      metrics::MetricsRegistry::Global().counter("index.synopsis_paths");
  XQP_ASSIGN_OR_RETURN(std::shared_ptr<const DocumentIndexes> built,
                       DocumentIndexes::Build(doc, value_kinds));
  const size_t usage = built->MemoryUsage();
  if (metrics::Enabled()) {
    builds->Add(1);
    bytes->Add(usage);
    paths->Add(built->NumSynopsisNodes());
  }
  // The building query pays for the structure it materializes; a tripped
  // budget fails this query and nothing is cached.
  if (ResourceGovernor* gov = CurrentGovernor()) {
    XQP_RETURN_NOT_OK(gov->ChargeBytes(usage));
  }
  std::unique_lock lock(mu_);
  auto it = cache_.find(uri);
  if (it != cache_.end() && it->second->doc_ptr() == doc &&
      it->second->value_kinds() == value_kinds) {
    return it->second;  // Lost the race; adopt the winner.
  }
  cache_[uri] = built;
  return built;
}

void IndexManager::Adopt(const std::string& uri,
                         std::shared_ptr<const DocumentIndexes> indexes) {
  if (indexes == nullptr) return;
  std::unique_lock lock(mu_);
  cache_[uri] = std::move(indexes);
}

std::shared_ptr<const DocumentIndexes> IndexManager::Peek(
    const std::string& uri) const {
  std::shared_lock lock(mu_);
  auto it = cache_.find(uri);
  return it == cache_.end() ? nullptr : it->second;
}

void IndexManager::Invalidate() {
  std::unique_lock lock(mu_);
  cache_.clear();
}

size_t IndexManager::NumCached() const {
  std::shared_lock lock(mu_);
  return cache_.size();
}

}  // namespace xqp
