#include "index/index_planner.h"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <unordered_map>

#include "base/metrics.h"

namespace xqp {
namespace {

/// True for descendant-or-self::node() — the "//" connector step.
bool IsDosConnector(const Expr* e) {
  if (e->kind() != ExprKind::kStep) return false;
  const auto* step = static_cast<const StepExpr*>(e);
  return step->axis == Axis::kDescendantOrSelf &&
         step->test.kind == NodeTest::Kind::kAnyKind;
}

/// A named forward step the synopsis can resolve: child / descendant /
/// attribute axis with a non-wildcard name test.
const StepExpr* AsIndexableStep(const Expr* e) {
  if (e->kind() != ExprKind::kStep) return nullptr;
  const auto* step = static_cast<const StepExpr*>(e);
  if (step->axis != Axis::kChild && step->axis != Axis::kDescendant &&
      step->axis != Axis::kAttribute) {
    return nullptr;
  }
  if (step->test.kind != NodeTest::Kind::kName || step->test.wildcard_local ||
      step->test.wildcard_uri) {
    return nullptr;
  }
  return step;
}

/// Flattens a left-deep path chain into its sequence of rhs expressions,
/// returning the anchor (leftmost) expression.
const Expr* FlattenChain(const Expr* e, std::vector<const Expr*>* steps) {
  if (e->kind() == ExprKind::kPath) {
    const Expr* anchor = FlattenChain(e->child(0), steps);
    steps->push_back(e->child(1));
    return anchor;
  }
  return e;
}

/// Mirrors `literal op step` into `step op' literal`.
CompOp FlipOp(CompOp op) {
  switch (op) {
    case CompOp::kGenLt: return CompOp::kGenGt;
    case CompOp::kGenLe: return CompOp::kGenGe;
    case CompOp::kGenGt: return CompOp::kGenLt;
    case CompOp::kGenGe: return CompOp::kGenLe;
    default: return op;  // eq / ne are symmetric.
  }
}

/// Parses one predicate expression into an IndexPredicate, or nullopt when
/// it is outside the fragment (non-comparison, non-literal operand, boolean
/// literal, value comparison, ...). A bare numeric literal becomes a
/// positional predicate (position() == value semantics, exactly as the
/// filter iterators special-case it).
std::optional<IndexPredicate> PlanPredicate(const Expr* p) {
  if (p->kind() == ExprKind::kLiteral) {
    const AtomicValue& v = static_cast<const LiteralExpr*>(p)->value;
    if (!v.IsNumeric()) return std::nullopt;
    IndexPredicate pred;
    pred.positional = true;
    pred.operand = v;
    return pred;
  }
  if (p->kind() != ExprKind::kComparison) return std::nullopt;
  const auto* cmp = static_cast<const ComparisonExpr*>(p);
  if (!IsGeneralComp(cmp->op)) return std::nullopt;
  const Expr* a = cmp->child(0);
  const Expr* b = cmp->child(1);
  const Expr* step_e = nullptr;
  const Expr* lit_e = nullptr;
  bool flipped = false;
  if (a->kind() == ExprKind::kStep && b->kind() == ExprKind::kLiteral) {
    step_e = a;
    lit_e = b;
  } else if (b->kind() == ExprKind::kStep && a->kind() == ExprKind::kLiteral) {
    step_e = b;
    lit_e = a;
    flipped = true;
  } else {
    return std::nullopt;
  }
  const auto* step = static_cast<const StepExpr*>(step_e);
  if (step->axis != Axis::kChild && step->axis != Axis::kAttribute) {
    return std::nullopt;
  }
  if (step->test.kind != NodeTest::Kind::kName || step->test.wildcard_local ||
      step->test.wildcard_uri) {
    return std::nullopt;
  }
  const AtomicValue& v = static_cast<const LiteralExpr*>(lit_e)->value;
  // Boolean (and exotic) operands take the untyped-vs-boolean cast route;
  // leave those to normal evaluation.
  if (!v.IsNumeric() && !v.IsStringLike()) return std::nullopt;
  IndexPredicate pred;
  pred.target.uri = step->test.uri;
  pred.target.local = step->test.local;
  pred.target.attribute = step->axis == Axis::kAttribute;
  pred.op = flipped ? FlipOp(cmp->op) : cmp->op;
  pred.operand = v;
  return pred;
}

/// Flattens an `and`-chain into its conjuncts (any other expression is its
/// own single conjunct).
void FlattenAnd(const Expr* e, std::vector<const Expr*>* out) {
  if (e->kind() == ExprKind::kLogical) {
    const auto* l = static_cast<const LogicalExpr*>(e);
    if (l->is_and) {
      FlattenAnd(l->child(0), out);
      FlattenAnd(l->child(1), out);
      return;
    }
  }
  out->push_back(e);
}

/// Attribute children of the synopsis subtree rooted at `s`, inclusive of
/// `s` itself — the resolution of `X//@name` (descendant-or-self + the
/// attribute axis reaches X's own attributes too).
void CollectAttrsInclusive(const DocumentIndexes& idx, int32_t s,
                           uint32_t name_id, std::vector<int32_t>* out) {
  int32_t a = idx.FindChild(s, NodeKind::kAttribute, name_id);
  if (a >= 0) out->push_back(a);
  for (int32_t c : idx.synopsis_node(s).children) {
    if (idx.synopsis_node(c).kind == NodeKind::kElement) {
      CollectAttrsInclusive(idx, c, name_id, out);
    }
  }
}

void SortUnique(std::vector<int32_t>* v) {
  std::sort(v->begin(), v->end());
  v->erase(std::unique(v->begin(), v->end()), v->end());
}

/// Advances a synopsis frontier across one step. Frontier sets stay sorted
/// and duplicate-free.
std::vector<int32_t> ResolveStep(const DocumentIndexes& idx,
                                 const std::vector<int32_t>& frontier,
                                 const IndexStep& st, uint32_t name_id) {
  std::vector<int32_t> next;
  if (name_id == kNoName) return next;  // Name absent from the document.
  NodeKind kind = st.attribute ? NodeKind::kAttribute : NodeKind::kElement;
  for (int32_t s : frontier) {
    if (!st.descendant) {
      int32_t c = idx.FindChild(s, kind, name_id);
      if (c >= 0) next.push_back(c);
    } else if (st.attribute) {
      CollectAttrsInclusive(idx, s, name_id, &next);
    } else {
      idx.FindDescendants(s, kind, name_id, &next);
    }
  }
  SortUnique(&next);
  return next;
}

/// Concatenate-and-sort of the (pairwise disjoint) posting lists of a
/// synopsis set: the document-order distinct node set on those paths.
std::vector<NodeIndex> MergedPostings(const DocumentIndexes& idx,
                                      const std::vector<int32_t>& syn) {
  if (syn.size() == 1) return idx.postings(syn[0]);
  std::vector<NodeIndex> out;
  size_t total = 0;
  for (int32_t s : syn) total += idx.postings(s).size();
  out.reserve(total);
  for (int32_t s : syn) {
    const auto& p = idx.postings(s);
    out.insert(out.end(), p.begin(), p.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

void AppendRange(
    std::vector<std::pair<std::string, NodeIndex>>::const_iterator lo,
    std::vector<std::pair<std::string, NodeIndex>>::const_iterator hi,
    std::vector<NodeIndex>* out) {
  for (auto it = lo; it != hi; ++it) out->push_back(it->second);
}

void AppendRange(
    std::vector<std::pair<double, NodeIndex>>::const_iterator lo,
    std::vector<std::pair<double, NodeIndex>>::const_iterator hi,
    std::vector<NodeIndex>* out) {
  for (auto it = lo; it != hi; ++it) out->push_back(it->second);
}

/// Range scan over one path's sorted string postings, mirroring
/// general-comparison string semantics (byte-wise compare).
void ScanStrings(const DocumentIndexes::ValuePostings& vp, CompOp op,
                 const std::string& val, std::vector<NodeIndex>* out) {
  const auto& v = vp.by_string;
  auto lo = std::lower_bound(
      v.begin(), v.end(), val,
      [](const auto& p, const std::string& s) { return p.first < s; });
  auto hi = std::upper_bound(
      v.begin(), v.end(), val,
      [](const std::string& s, const auto& p) { return s < p.first; });
  switch (op) {
    case CompOp::kGenEq: AppendRange(lo, hi, out); break;
    case CompOp::kGenNe:
      AppendRange(v.begin(), lo, out);
      AppendRange(hi, v.end(), out);
      break;
    case CompOp::kGenLt: AppendRange(v.begin(), lo, out); break;
    case CompOp::kGenLe: AppendRange(v.begin(), hi, out); break;
    case CompOp::kGenGt: AppendRange(hi, v.end(), out); break;
    case CompOp::kGenGe: AppendRange(lo, v.end(), out); break;
    default: break;
  }
}

/// Range scan over one path's sorted numeric postings (NaN entries last),
/// mirroring ApplyOpNanAware: an unordered pair satisfies only !=.
void ScanNumbers(const DocumentIndexes::ValuePostings& vp, CompOp op,
                 double val, std::vector<NodeIndex>* out) {
  const auto& v = vp.by_number;
  auto nan_begin = std::partition_point(
      v.begin(), v.end(), [](const auto& p) { return !std::isnan(p.first); });
  if (std::isnan(val)) {
    // NaN literal: every pair is unordered, so != matches everything and
    // the ordering operators match nothing.
    if (op == CompOp::kGenNe) AppendRange(v.begin(), v.end(), out);
    return;
  }
  auto lo = std::lower_bound(
      v.begin(), nan_begin, val,
      [](const auto& p, double d) { return p.first < d; });
  auto hi = std::upper_bound(
      v.begin(), nan_begin, val,
      [](double d, const auto& p) { return d < p.first; });
  switch (op) {
    case CompOp::kGenEq: AppendRange(lo, hi, out); break;
    case CompOp::kGenNe:
      // Everything but the equal run — NaN-valued nodes included.
      AppendRange(v.begin(), lo, out);
      AppendRange(hi, v.end(), out);
      break;
    case CompOp::kGenLt: AppendRange(v.begin(), lo, out); break;
    case CompOp::kGenLe: AppendRange(v.begin(), hi, out); break;
    case CompOp::kGenGt: AppendRange(hi, nan_begin, out); break;
    case CompOp::kGenGe: AppendRange(lo, nan_begin, out); break;
    default: break;
  }
}

/// Applies the value predicate over a synopsis frontier: range-scans the
/// target paths' value postings, then maps matched targets to their parent
/// elements (the filtered step's nodes). nullopt = the value index cannot
/// prove this predicate; fall back.
std::optional<std::vector<NodeIndex>> ApplyPredicate(
    const DocumentIndexes& idx, const std::vector<int32_t>& frontier,
    const IndexPredicate& pred) {
  const Document& doc = idx.doc();
  bool numeric = pred.operand.IsNumeric();
  if (numeric && !(idx.value_kinds() & kIndexValueNumeric)) return std::nullopt;
  if (!numeric && !(idx.value_kinds() & kIndexValueString)) return std::nullopt;
  uint32_t tname = doc.FindNameId(pred.target.uri, pred.target.local);
  if (tname == kNoName) return std::vector<NodeIndex>{};  // Never satisfied.
  NodeKind tkind =
      pred.target.attribute ? NodeKind::kAttribute : NodeKind::kElement;
  std::vector<NodeIndex> targets;
  std::string sval = numeric ? std::string() : pred.operand.AsString();
  double dval = numeric ? pred.operand.NumericAsDouble() : 0.0;
  for (int32_t s : frontier) {
    int32_t t = idx.FindChild(s, tkind, tname);
    if (t < 0) continue;
    const DocumentIndexes::ValuePostings* vp = idx.values(t);
    if (vp == nullptr || !vp->indexable) return std::nullopt;
    if (numeric) {
      // A single uncastable value on the path means normal evaluation
      // would raise FORG0001 the moment it compares that node; only the
      // fallback plan can reproduce that.
      if (!vp->all_numeric) return std::nullopt;
      ScanNumbers(*vp, pred.op, dval, &targets);
    } else {
      ScanStrings(*vp, pred.op, sval, &targets);
    }
  }
  // Existential semantics: a base qualifies when any target child matched.
  std::vector<NodeIndex> bases;
  bases.reserve(targets.size());
  for (NodeIndex t : targets) bases.push_back(doc.node(t).parent);
  std::sort(bases.begin(), bases.end());
  bases.erase(std::unique(bases.begin(), bases.end()), bases.end());
  return bases;
}

/// Positional selection: the k-th node per parent, in document order. The
/// pool is doc-ordered, so the k-th occurrence under a parent is its k-th
/// qualifying child. Non-integral, non-positive, NaN, or out-of-range
/// positions match nothing (position() == value semantics).
std::vector<NodeIndex> SelectKthPerParent(const Document& doc,
                                          const std::vector<NodeIndex>& pool,
                                          double k) {
  std::vector<NodeIndex> out;
  if (!(k >= 1.0) || k != std::floor(k) ||
      k > static_cast<double>(pool.size())) {
    return out;
  }
  const uint64_t kk = static_cast<uint64_t>(k);
  std::unordered_map<NodeIndex, uint64_t> seen;
  for (NodeIndex n : pool) {
    if (++seen[doc.node(n).parent] == kk) out.push_back(n);
  }
  return out;
}

/// Navigates one step from materialized nodes (the steps after a mid-chain
/// predicate). Output is doc-order distinct.
std::vector<NodeIndex> NavigateStep(const Document& doc,
                                    const std::vector<NodeIndex>& base,
                                    const IndexStep& st) {
  std::vector<NodeIndex> out;
  uint32_t name_id = doc.FindNameId(st.uri, st.local);
  if (name_id == kNoName) return out;
  for (NodeIndex n : base) {
    const NodeRecord& r = doc.node(n);
    if (st.attribute && st.descendant) {
      // Attributes anywhere in the subtree, owner included: attributes are
      // rows inside the region, so one region sweep finds them.
      for (NodeIndex d = n; d <= r.end; ++d) {
        const NodeRecord& dr = doc.node(d);
        if (dr.kind == NodeKind::kAttribute && dr.name_id == name_id) {
          out.push_back(d);
        }
      }
    } else if (st.attribute) {
      for (NodeIndex a = r.first_attr; a != kNullNode;
           a = doc.node(a).next_sibling) {
        if (doc.node(a).name_id == name_id) out.push_back(a);
      }
    } else if (st.descendant) {
      for (NodeIndex d = n + 1; d <= r.end; ++d) {
        const NodeRecord& dr = doc.node(d);
        if (dr.kind == NodeKind::kElement && dr.name_id == name_id) {
          out.push_back(d);
        }
      }
    } else {
      for (NodeIndex c = r.first_child; c != kNullNode;
           c = doc.node(c).next_sibling) {
        const NodeRecord& cr = doc.node(c);
        if (cr.kind == NodeKind::kElement && cr.name_id == name_id) {
          out.push_back(c);
        }
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace

std::optional<IndexQuery> PlanIndexPath(const Expr& e) {
  if (e.kind() != ExprKind::kPath) return std::nullopt;
  std::vector<const Expr*> rhs;
  const Expr* anchor = FlattenChain(&e, &rhs);
  if (rhs.empty()) return std::nullopt;
  // Only literal doc('uri') anchors: the synopsis lives per registered
  // document, and the uri must be known statically for EXPLAIN to show it.
  if (anchor->kind() != ExprKind::kFunctionCall) return std::nullopt;
  const auto* call = static_cast<const FunctionCallExpr*>(anchor);
  if (call->name.local != "doc" && call->name.local != "document") {
    return std::nullopt;
  }
  if (call->NumChildren() != 1 ||
      call->child(0)->kind() != ExprKind::kLiteral) {
    return std::nullopt;
  }
  const auto* lit = static_cast<const LiteralExpr*>(call->child(0));
  if (!lit->value.IsStringLike()) return std::nullopt;

  IndexQuery q;
  q.doc_uri = lit->value.AsString();
  bool pending_descendant = false;
  for (const Expr* raw : rhs) {
    const Expr* base = raw;
    const FilterExpr* filter = nullptr;
    if (raw->kind() == ExprKind::kFilter) {
      filter = static_cast<const FilterExpr*>(raw);
      base = filter->child(0);
    }
    if (IsDosConnector(base)) {
      if (filter != nullptr) return std::nullopt;  // Predicate on "//".
      pending_descendant = true;
      continue;
    }
    const StepExpr* step = AsIndexableStep(base);
    if (step == nullptr) return std::nullopt;
    IndexStep st;
    st.uri = step->test.uri;
    st.local = step->test.local;
    st.attribute = step->axis == Axis::kAttribute;
    st.descendant = step->axis == Axis::kDescendant || pending_descendant;
    pending_descendant = false;
    q.steps.push_back(std::move(st));
    if (filter != nullptr) {
      // All predicates must sit on a single step — the point where the
      // answer materializes and later steps switch to navigation.
      if (!q.predicates.empty()) return std::nullopt;
      bool has_positional = false;
      for (size_t pi = 1; pi < filter->NumChildren(); ++pi) {
        const Expr* bracket = filter->child(pi);
        std::optional<IndexPredicate> direct = PlanPredicate(bracket);
        if (direct.has_value() && direct->positional) {
          // Positional semantics are per parent context, which only holds
          // for child-axis steps: a merged "//" connector keeps child
          // semantics per descendant-or-self node (still grouped by the
          // node's parent), but a genuine descendant:: axis counts per
          // ancestor and attribute order is not positional. One position,
          // applied after any value predicates (later brackets see the
          // positionally filtered sequence, which we cannot reproduce).
          if (has_positional || step->axis != Axis::kChild) {
            return std::nullopt;
          }
          has_positional = true;
          direct->step = q.steps.size() - 1;
          q.predicates.push_back(std::move(*direct));
          continue;
        }
        if (has_positional) return std::nullopt;
        // A conjunction of value predicates: intersect the base sets. A
        // bare numeric literal inside `and` takes EBV semantics, not
        // positional ones — PlanPredicate would mis-classify it, so any
        // positional conjunct declines the whole path.
        std::vector<const Expr*> conjuncts;
        FlattenAnd(bracket, &conjuncts);
        for (const Expr* c : conjuncts) {
          std::optional<IndexPredicate> pred = PlanPredicate(c);
          if (!pred || pred->positional) return std::nullopt;
          pred->step = q.steps.size() - 1;
          q.predicates.push_back(std::move(*pred));
        }
      }
      if (q.predicates.empty()) return std::nullopt;
    }
  }
  if (pending_descendant || q.steps.empty()) return std::nullopt;
  return q;
}

std::optional<std::vector<NodeIndex>> AnswerIndexQuery(
    const DocumentIndexes& idx, const IndexQuery& q) {
  const Document& doc = idx.doc();
  std::vector<int32_t> frontier{0};  // Synopsis node 0: the document root.
  std::vector<NodeIndex> bases;
  bool materialized = false;
  for (size_t si = 0; si < q.steps.size(); ++si) {
    const IndexStep& st = q.steps[si];
    if (materialized) {
      bases = NavigateStep(doc, bases, st);
      continue;
    }
    frontier = ResolveStep(idx, frontier, st,
                           doc.FindNameId(st.uri, st.local));
    if (q.HasPredicates() && q.PredicateStep() == si) {
      std::optional<std::vector<NodeIndex>> filtered;
      const IndexPredicate* positional = nullptr;
      for (const IndexPredicate& pred : q.predicates) {
        if (pred.positional) {
          positional = &pred;  // Always last (planner invariant).
          continue;
        }
        std::optional<std::vector<NodeIndex>> part =
            ApplyPredicate(idx, frontier, pred);
        if (!part.has_value()) return std::nullopt;  // Fall back.
        if (!filtered.has_value()) {
          filtered = std::move(part);
        } else {
          // Conjunction: both sets are sorted and duplicate-free.
          std::vector<NodeIndex> both;
          std::set_intersection(filtered->begin(), filtered->end(),
                                part->begin(), part->end(),
                                std::back_inserter(both));
          *filtered = std::move(both);
        }
      }
      if (positional != nullptr) {
        std::vector<NodeIndex> pool = filtered.has_value()
                                          ? std::move(*filtered)
                                          : MergedPostings(idx, frontier);
        filtered = SelectKthPerParent(doc, pool,
                                      positional->operand.NumericAsDouble());
      }
      bases = std::move(*filtered);
      materialized = true;
    }
  }
  if (materialized) return bases;
  return MergedPostings(idx, frontier);
}

Result<std::optional<Sequence>> TryAnswerPathFromIndex(const PathExpr* e,
                                                       DynamicContext* ctx) {
  static metrics::Counter* synopsis_hits =
      metrics::MetricsRegistry::Global().counter("index.synopsis_hits");
  static metrics::Counter* value_hits =
      metrics::MetricsRegistry::Global().counter("index.value_hits");
  static metrics::Counter* fallbacks =
      metrics::MetricsRegistry::Global().counter("index.fallbacks");
  std::optional<Sequence> declined;
  if (ctx == nullptr || ctx->provider == nullptr) return declined;
  std::optional<IndexQuery> plan = PlanIndexPath(*e);
  if (!plan.has_value()) {
    if (metrics::Enabled()) fallbacks->Add(1);
    return declined;
  }
  auto indexes_r = ctx->provider->GetDocumentIndexes(plan->doc_uri);
  if (!indexes_r.ok()) {
    // A missing document falls back so normal evaluation raises the
    // canonical fn:doc error; resource trips and injected faults during a
    // governed index build must surface as this query's failure.
    if (indexes_r.status().code() == StatusCode::kDynamicError) {
      if (metrics::Enabled()) fallbacks->Add(1);
      return declined;
    }
    return indexes_r.status();
  }
  std::shared_ptr<const DocumentIndexes> indexes = indexes_r.value();
  if (indexes == nullptr) return declined;  // Indexes disabled.
  std::optional<std::vector<NodeIndex>> nodes =
      AnswerIndexQuery(*indexes, *plan);
  if (!nodes.has_value()) {
    if (metrics::Enabled()) fallbacks->Add(1);
    return declined;
  }
  if (metrics::Enabled()) {
    (plan->HasPredicates() ? value_hits : synopsis_hits)->Add(1);
  }
  Sequence out;
  out.reserve(nodes->size());
  for (NodeIndex n : *nodes) {
    out.push_back(Item(Node(indexes->doc_ptr(), n)));
  }
  if (ctx->governor != nullptr) {
    XQP_RETURN_NOT_OK(ctx->governor->Poll());
    XQP_RETURN_NOT_OK(ctx->governor->ChargeBytes(out.size() * sizeof(Item)));
  }
  return std::optional<Sequence>(std::move(out));
}

std::optional<std::vector<std::vector<NodeIndex>>> SynopsisPostingsForPattern(
    const DocumentIndexes& idx, const TwigPattern& pattern) {
  const Document& doc = idx.doc();
  const size_t n = pattern.nodes.size();
  std::vector<std::vector<int32_t>> syn(n);
  for (size_t i = 0; i < n; ++i) {
    const auto& pn = pattern.nodes[i];
    uint32_t name_id = doc.FindNameId(pn.uri, pn.local);
    std::vector<int32_t>& frontier = syn[i];
    if (name_id == kNoName) continue;  // Empty set: tag absent.
    if (pn.parent < 0) {
      // The twig machine admits every element with the root tag regardless
      // of depth (its root node carries no parent edge), so the root
      // resolves with descendant semantics to keep results identical.
      idx.FindDescendants(0, NodeKind::kElement, name_id, &frontier);
    } else {
      for (int32_t s : syn[pn.parent]) {
        if (pn.child_edge) {
          int32_t c = idx.FindChild(s, NodeKind::kElement, name_id);
          if (c >= 0) frontier.push_back(c);
        } else {
          idx.FindDescendants(s, NodeKind::kElement, name_id, &frontier);
        }
      }
      SortUnique(&frontier);
    }
  }
  std::vector<std::vector<NodeIndex>> lists(n);
  for (size_t i = 0; i < n; ++i) lists[i] = MergedPostings(idx, syn[i]);
  return lists;
}

std::vector<int32_t> ResolveSynopsisStep(const DocumentIndexes& idx,
                                         const std::vector<int32_t>& frontier,
                                         const IndexStep& st) {
  return ResolveStep(idx, frontier, st, idx.doc().FindNameId(st.uri, st.local));
}

size_t CountSynopsisPostings(const DocumentIndexes& idx,
                             const std::vector<int32_t>& syn) {
  size_t total = 0;
  for (int32_t s : syn) total += idx.postings(s).size();
  return total;
}

std::vector<NodeIndex> MergedSynopsisPostings(const DocumentIndexes& idx,
                                              const std::vector<int32_t>& syn) {
  return MergedPostings(idx, syn);
}

std::vector<NodeIndex> NavigateMaterializedStep(
    const Document& doc, const std::vector<NodeIndex>& base,
    const IndexStep& st) {
  return NavigateStep(doc, base, st);
}

std::optional<size_t> CountPredicateMatches(
    const DocumentIndexes& idx, const std::vector<int32_t>& frontier,
    const IndexPredicate& pred) {
  if (pred.positional) return std::nullopt;
  const Document& doc = idx.doc();
  bool numeric = pred.operand.IsNumeric();
  if (numeric && !(idx.value_kinds() & kIndexValueNumeric)) return std::nullopt;
  if (!numeric && !(idx.value_kinds() & kIndexValueString)) return std::nullopt;
  uint32_t tname = doc.FindNameId(pred.target.uri, pred.target.local);
  if (tname == kNoName) return size_t{0};  // Never satisfied.
  NodeKind tkind =
      pred.target.attribute ? NodeKind::kAttribute : NodeKind::kElement;
  std::string sval = numeric ? std::string() : pred.operand.AsString();
  double dval = numeric ? pred.operand.NumericAsDouble() : 0.0;
  size_t total = 0;
  for (int32_t s : frontier) {
    int32_t t = idx.FindChild(s, tkind, tname);
    if (t < 0) continue;
    const DocumentIndexes::ValuePostings* vp = idx.values(t);
    if (vp == nullptr || !vp->indexable) return std::nullopt;
    if (numeric) {
      if (!vp->all_numeric) return std::nullopt;
      const auto& v = vp->by_number;
      auto nan_begin = std::partition_point(
          v.begin(), v.end(),
          [](const auto& p) { return !std::isnan(p.first); });
      if (std::isnan(dval)) {
        if (pred.op == CompOp::kGenNe) total += v.size();
        continue;
      }
      auto lo = std::lower_bound(
          v.begin(), nan_begin, dval,
          [](const auto& p, double d) { return p.first < d; });
      auto hi = std::upper_bound(
          v.begin(), nan_begin, dval,
          [](double d, const auto& p) { return d < p.first; });
      switch (pred.op) {
        case CompOp::kGenEq: total += hi - lo; break;
        case CompOp::kGenNe: total += v.size() - (hi - lo); break;
        case CompOp::kGenLt: total += lo - v.begin(); break;
        case CompOp::kGenLe: total += hi - v.begin(); break;
        case CompOp::kGenGt: total += nan_begin - hi; break;
        case CompOp::kGenGe: total += nan_begin - lo; break;
        default: break;
      }
    } else {
      const auto& v = vp->by_string;
      auto lo = std::lower_bound(
          v.begin(), v.end(), sval,
          [](const auto& p, const std::string& s) { return p.first < s; });
      auto hi = std::upper_bound(
          v.begin(), v.end(), sval,
          [](const std::string& s, const auto& p) { return s < p.first; });
      switch (pred.op) {
        case CompOp::kGenEq: total += hi - lo; break;
        case CompOp::kGenNe: total += v.size() - (hi - lo); break;
        case CompOp::kGenLt: total += lo - v.begin(); break;
        case CompOp::kGenLe: total += hi - v.begin(); break;
        case CompOp::kGenGt: total += v.end() - hi; break;
        case CompOp::kGenGe: total += v.end() - lo; break;
        default: break;
      }
    }
  }
  return total;
}

}  // namespace xqp
