#ifndef XQP_INDEX_INDEX_PLANNER_H_
#define XQP_INDEX_INDEX_PLANNER_H_

#include <optional>
#include <string>
#include <vector>

#include "exec/dynamic_context.h"
#include "index/document_indexes.h"
#include "join/twig.h"
#include "query/expr.h"

namespace xqp {

/// One step of an index-answerable path chain.
struct IndexStep {
  std::string uri;
  std::string local;
  /// Edge from the previous step: descendant (//) vs child (/).
  bool descendant = false;
  /// attribute:: axis (element child:: / descendant:: otherwise).
  bool attribute = false;
};

/// A single value predicate [target op literal] carried by one step.
struct IndexPredicate {
  /// Position in IndexQuery::steps of the step the predicate filters.
  size_t step = 0;
  /// The compared step: a child element or attribute of the filtered step.
  IndexStep target;
  /// Normalized so the node side is on the left (flipped when the query
  /// wrote `literal op step`). Always a general-comparison op.
  CompOp op = CompOp::kGenEq;
  /// The literal operand; string-like or numeric.
  AtomicValue operand;
};

/// The index-answerable query fragment: a doc('uri')-anchored chain of
/// named child/descendant/attribute steps with at most one value predicate.
struct IndexQuery {
  std::string doc_uri;
  std::vector<IndexStep> steps;
  std::optional<IndexPredicate> predicate;
};

/// Recognizes the index-answerable fragment, mirroring (and extending with
/// the attribute axis and one value predicate) TwigPlanner's convertibility
/// rules. Purely structural — no document needed — so the rewriter uses it
/// to mark PathExpr::index_candidate and EXPLAIN re-derives it to print the
/// access path.
std::optional<IndexQuery> PlanIndexPath(const Expr& e);

/// Answers `q` from the synopsis / value index. nullopt means the index
/// cannot *prove* the answer (numeric predicate over a non-numeric path,
/// complex-content target, disabled value family) and the caller must fall
/// back to normal evaluation; an empty vector is a real (empty) answer.
/// Results are in document order, duplicate-free.
std::optional<std::vector<NodeIndex>> AnswerIndexQuery(
    const DocumentIndexes& idx, const IndexQuery& q);

/// Execution hook shared by the lazy iterator tree and the eager
/// interpreter: plans `e`, fetches the document's indexes through
/// ctx->provider, and answers. Returns nullopt (not an error) whenever any
/// stage declines, so the fallback plan reproduces today's results and
/// errors bit-identically; resource errors from a governed index build are
/// propagated. Charges the materialized buffer to ctx->governor.
Result<std::optional<Sequence>> TryAnswerPathFromIndex(const PathExpr* e,
                                                       DynamicContext* ctx);

/// Resolves every node of a twig `pattern` against the synopsis: node i of
/// the result is the merged postings of the synopsis paths matching pattern
/// node i's root chain, in document order. nullopt when the synopsis cannot
/// mirror the pattern (never happens for planner-built patterns; defensive).
/// The lists are supersets of the per-node solution participants, so
/// TwigStackMatchWithLists over them returns exactly the TwigStack answer.
std::optional<std::vector<std::vector<NodeIndex>>> SynopsisPostingsForPattern(
    const DocumentIndexes& idx, const TwigPattern& pattern);

}  // namespace xqp

#endif  // XQP_INDEX_INDEX_PLANNER_H_
