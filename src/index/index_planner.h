#ifndef XQP_INDEX_INDEX_PLANNER_H_
#define XQP_INDEX_INDEX_PLANNER_H_

#include <optional>
#include <string>
#include <vector>

#include "exec/dynamic_context.h"
#include "index/document_indexes.h"
#include "join/twig.h"
#include "query/expr.h"

namespace xqp {

/// One step of an index-answerable path chain.
struct IndexStep {
  std::string uri;
  std::string local;
  /// Edge from the previous step: descendant (//) vs child (/).
  bool descendant = false;
  /// attribute:: axis (element child:: / descendant:: otherwise).
  bool attribute = false;
};

/// One predicate [.. op literal] or [position] carried by one step.
struct IndexPredicate {
  /// Position in IndexQuery::steps of the step the predicate filters. All
  /// predicates of one IndexQuery share the same step (the materialization
  /// point); later steps are navigated from the filtered node set.
  size_t step = 0;
  /// True for a positional predicate `[n]` (numeric literal): the operand
  /// is the position, matched per context node — i.e. the n-th qualifying
  /// step node among those sharing a parent. The target step is unused.
  bool positional = false;
  /// The compared step: a child element or attribute of the filtered step.
  IndexStep target;
  /// Normalized so the node side is on the left (flipped when the query
  /// wrote `literal op step`). Always a general-comparison op.
  CompOp op = CompOp::kGenEq;
  /// The literal operand; string-like or numeric.
  AtomicValue operand;
};

/// The index-answerable query fragment: a doc('uri')-anchored chain of
/// named child/descendant/attribute steps where one step may carry a
/// conjunction of value predicates (stacked brackets or `and`-chains, all
/// intersected) optionally followed by one positional predicate.
struct IndexQuery {
  std::string doc_uri;
  std::vector<IndexStep> steps;
  std::vector<IndexPredicate> predicates;

  bool HasPredicates() const { return !predicates.empty(); }
  /// The step carrying the predicates (meaningless when there are none).
  size_t PredicateStep() const {
    return predicates.empty() ? 0 : predicates.front().step;
  }
};

/// Recognizes the index-answerable fragment, mirroring (and extending with
/// the attribute axis and one value predicate) TwigPlanner's convertibility
/// rules. Purely structural — no document needed — so the rewriter uses it
/// to mark PathExpr::index_candidate and EXPLAIN re-derives it to print the
/// access path.
std::optional<IndexQuery> PlanIndexPath(const Expr& e);

/// Answers `q` from the synopsis / value index. nullopt means the index
/// cannot *prove* the answer (numeric predicate over a non-numeric path,
/// complex-content target, disabled value family) and the caller must fall
/// back to normal evaluation; an empty vector is a real (empty) answer.
/// Results are in document order, duplicate-free.
std::optional<std::vector<NodeIndex>> AnswerIndexQuery(
    const DocumentIndexes& idx, const IndexQuery& q);

/// Execution hook shared by the lazy iterator tree and the eager
/// interpreter: plans `e`, fetches the document's indexes through
/// ctx->provider, and answers. Returns nullopt (not an error) whenever any
/// stage declines, so the fallback plan reproduces today's results and
/// errors bit-identically; resource errors from a governed index build are
/// propagated. Charges the materialized buffer to ctx->governor.
Result<std::optional<Sequence>> TryAnswerPathFromIndex(const PathExpr* e,
                                                       DynamicContext* ctx);

/// Resolves every node of a twig `pattern` against the synopsis: node i of
/// the result is the merged postings of the synopsis paths matching pattern
/// node i's root chain, in document order. nullopt when the synopsis cannot
/// mirror the pattern (never happens for planner-built patterns; defensive).
/// The lists are supersets of the per-node solution participants, so
/// TwigStackMatchWithLists over them returns exactly the TwigStack answer.
std::optional<std::vector<std::vector<NodeIndex>>> SynopsisPostingsForPattern(
    const DocumentIndexes& idx, const TwigPattern& pattern);

/// Advances a synopsis frontier (sorted, duplicate-free synopsis-node set)
/// across one chain step. Exported for the cost model (opt/cost.h), which
/// resolves chains exactly the way AnswerIndexQuery does.
std::vector<int32_t> ResolveSynopsisStep(const DocumentIndexes& idx,
                                         const std::vector<int32_t>& frontier,
                                         const IndexStep& st);

/// Total posting count of a synopsis set — the exact number of document
/// nodes on those paths (lists are pairwise disjoint).
size_t CountSynopsisPostings(const DocumentIndexes& idx,
                             const std::vector<int32_t>& syn);

/// Concatenate-and-sort of a synopsis set's posting lists: the document-
/// order distinct node set on those paths.
std::vector<NodeIndex> MergedSynopsisPostings(const DocumentIndexes& idx,
                                              const std::vector<int32_t>& syn);

/// Counts the target entries a value predicate's range probe would match
/// over `frontier` without materializing them — the selectivity input of
/// the cost model. nullopt exactly when ApplyPredicate would decline
/// (disabled family, unindexable path, non-numeric path under a numeric
/// operand), so a countable predicate is also an answerable one.
std::optional<size_t> CountPredicateMatches(const DocumentIndexes& idx,
                                            const std::vector<int32_t>& frontier,
                                            const IndexPredicate& pred);

/// Navigates one chain step from an already-materialized doc-order node
/// set (the continuation steps after a predicate, or a trailing attribute
/// step after a join strategy). Output is doc-order distinct.
std::vector<NodeIndex> NavigateMaterializedStep(const Document& doc,
                                                const std::vector<NodeIndex>& base,
                                                const IndexStep& st);

}  // namespace xqp

#endif  // XQP_INDEX_INDEX_PLANNER_H_
