#include "index/document_indexes.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "base/fault.h"

namespace xqp {
namespace {

/// Exact synopsis-edge key: (parent synopsis id, kind-is-attribute bit,
/// name id). Synopsis ids fit in 31 bits (they are bounded by the node
/// count), so the packing is collision-free.
uint64_t EdgeKey(int32_t parent, NodeKind kind, uint32_t name_id) {
  return (static_cast<uint64_t>(parent) << 33) |
         (static_cast<uint64_t>(kind == NodeKind::kAttribute) << 32) |
         name_id;
}

/// by_number order: value then node, every NaN entry after all ordered
/// values (range scans over [begin, nan_begin) never see an unordered pair).
bool NumericLess(const std::pair<double, NodeIndex>& a,
                 const std::pair<double, NodeIndex>& b) {
  bool a_nan = std::isnan(a.first);
  bool b_nan = std::isnan(b.first);
  if (a_nan != b_nan) return b_nan;
  if (!a_nan && a.first != b.first) return a.first < b.first;
  return a.second < b.second;
}

}  // namespace

Result<std::shared_ptr<const DocumentIndexes>> DocumentIndexes::Build(
    std::shared_ptr<const Document> doc, uint32_t value_kinds) {
  auto idx = std::shared_ptr<DocumentIndexes>(new DocumentIndexes());
  idx->doc_ = std::move(doc);
  idx->value_kinds_ = value_kinds;
  const Document& d = *idx->doc_;

  // --- Pass 1: path synopsis + postings, one preorder sweep. ------------
  idx->nodes_.push_back(SynopsisNode{});  // Synopsis node 0: document root.
  idx->postings_.emplace_back();
  if (d.NumNodes() > 0) idx->postings_[0].push_back(d.document_node());

  // Synopsis id of each document/element node (parents precede children in
  // preorder, so the parent's entry is always populated first).
  std::vector<int32_t> syn_of(d.NumNodes(), 0);
  std::unordered_map<uint64_t, int32_t> edge;

  for (NodeIndex i = 1; i < d.NumNodes(); ++i) {
    if ((i & 4095u) == 0 && fault::Armed()) {
      XQP_RETURN_NOT_OK(fault::MaybeInject("alloc"));
    }
    const NodeRecord& r = d.node(i);
    if (r.kind != NodeKind::kElement && r.kind != NodeKind::kAttribute) {
      continue;
    }
    int32_t parent = syn_of[r.parent];
    uint64_t key = EdgeKey(parent, r.kind, r.name_id);
    auto [it, inserted] =
        edge.try_emplace(key, static_cast<int32_t>(idx->nodes_.size()));
    if (inserted) {
      SynopsisNode s;
      s.name_id = r.name_id;
      s.kind = r.kind;
      s.parent = parent;
      idx->nodes_[parent].children.push_back(it->second);
      idx->nodes_.push_back(std::move(s));
      idx->postings_.emplace_back();
    }
    idx->postings_[it->second].push_back(i);
    syn_of[i] = it->second;
  }

  if (value_kinds == 0) return std::shared_ptr<const DocumentIndexes>(idx);

  // --- Pass 2: typed values per synopsis path. --------------------------
  idx->values_.resize(idx->nodes_.size());
  for (size_t s = 1; s < idx->nodes_.size(); ++s) {
    if (fault::Armed()) XQP_RETURN_NOT_OK(fault::MaybeInject("alloc"));
    ValuePostings& vp = idx->values_[s];
    const SynopsisNode& sn = idx->nodes_[s];
    for (NodeIndex n : idx->postings_[s]) {
      if (sn.kind == NodeKind::kAttribute) {
        vp.by_string.emplace_back(std::string(d.value(n)), n);
        continue;
      }
      // Element: simple content only — a single element child anywhere on
      // the path disqualifies the whole path from value indexing.
      std::string text;
      bool simple = true;
      for (NodeIndex c = d.node(n).first_child; c != kNullNode;
           c = d.node(c).next_sibling) {
        NodeKind ck = d.node(c).kind;
        if (ck == NodeKind::kElement) {
          simple = false;
          break;
        }
        if (ck == NodeKind::kText) text += d.value(c);
      }
      if (!simple) {
        vp.indexable = false;
        break;
      }
      vp.by_string.emplace_back(std::move(text), n);
    }
    if (!vp.indexable) {
      vp.by_string.clear();
      vp.by_string.shrink_to_fit();
      continue;
    }
    if (value_kinds & kIndexValueNumeric) {
      vp.by_number.reserve(vp.by_string.size());
      for (const auto& [str, n] : vp.by_string) {
        // Mirror the runtime exactly: general comparison casts the node's
        // untyped value with CastTo(xs:double). Any value that would raise
        // a cast error poisons numeric indexing for the whole path, so the
        // fallback plan gets to raise that error itself.
        auto cast = AtomicValue::Untyped(str).CastTo(XsType::kDouble);
        if (!cast.ok()) {
          vp.all_numeric = false;
          vp.by_number.clear();
          vp.by_number.shrink_to_fit();
          break;
        }
        vp.by_number.emplace_back(cast.value().AsRawDouble(), n);
      }
      if (vp.all_numeric) {
        std::sort(vp.by_number.begin(), vp.by_number.end(), NumericLess);
      }
    } else {
      vp.all_numeric = false;  // Numeric family disabled: force fallback.
    }
    if (value_kinds & kIndexValueString) {
      std::sort(vp.by_string.begin(), vp.by_string.end());
    } else {
      vp.by_string.clear();
      vp.by_string.shrink_to_fit();
    }
  }
  return std::shared_ptr<const DocumentIndexes>(idx);
}

int32_t DocumentIndexes::FindChild(int32_t s, NodeKind kind,
                                   uint32_t name_id) const {
  for (int32_t c : nodes_[s].children) {
    if (nodes_[c].kind == kind && nodes_[c].name_id == name_id) return c;
  }
  return -1;
}

void DocumentIndexes::FindDescendants(int32_t s, NodeKind kind,
                                      uint32_t name_id,
                                      std::vector<int32_t>* out) const {
  for (int32_t c : nodes_[s].children) {
    if (nodes_[c].kind == kind && nodes_[c].name_id == name_id) {
      out->push_back(c);
    }
    FindDescendants(c, kind, name_id, out);
  }
}

size_t DocumentIndexes::MemoryUsage() const {
  size_t total = nodes_.capacity() * sizeof(SynopsisNode) +
                 postings_.capacity() * sizeof(std::vector<NodeIndex>) +
                 values_.capacity() * sizeof(ValuePostings);
  for (const auto& n : nodes_) total += n.children.capacity() * sizeof(int32_t);
  for (const auto& p : postings_) total += p.capacity() * sizeof(NodeIndex);
  for (const auto& v : values_) {
    total += v.by_number.capacity() * sizeof(std::pair<double, NodeIndex>);
    total += v.by_string.capacity() *
             sizeof(std::pair<std::string, NodeIndex>);
    for (const auto& [str, n] : v.by_string) total += str.capacity();
  }
  return total;
}

}  // namespace xqp
