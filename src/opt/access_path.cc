#include "opt/access_path.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "base/metrics.h"
#include "join/structural_join.h"
#include "join/tag_index.h"
#include "join/twig.h"

namespace xqp {
namespace {

/// Binary structural-join cascade: starting from the document node, one
/// semi-join per element step against the full per-tag posting list (the
/// previous frontier plays ancestor; parent_child encodes "/" vs "//").
/// Declines (nullopt) when the chain shape is not joinable.
std::optional<std::vector<NodeIndex>> ExecuteSJoinChain(
    const DocumentIndexes& idx, const TagIndex& tag, const IndexQuery& q,
    DynamicContext* ctx) {
  JoinChainShape shape = ClassifyJoinChain(q);
  if (!shape.joinable) return std::nullopt;
  const Document& doc = idx.doc();
  std::vector<NodeIndex> frontier{0};  // The document node contains all.
  for (size_t i = 0; i < shape.elem_steps && !frontier.empty(); ++i) {
    const IndexStep& st = q.steps[i];
    const std::vector<NodeIndex>* list = tag.Lookup(st.uri, st.local);
    if (list == nullptr) {
      frontier.clear();
      break;
    }
    if (ctx->parallel_threshold > 0) {
      frontier = JoinDescendantsParallel(doc, frontier, *list, !st.descendant,
                                         ctx->num_threads,
                                         ctx->parallel_threshold);
    } else {
      frontier = JoinDescendants(doc, frontier, *list, !st.descendant);
    }
  }
  if (shape.trailing_attr && !frontier.empty()) {
    frontier = NavigateMaterializedStep(doc, frontier, q.steps.back());
  }
  return frontier;
}

/// Holistic twig join over a linear chain: node 0's list is the exact
/// synopsis answer for the first step (index-backed leading edge); deeper
/// nodes consume the full per-tag lists. Declines for shapes with fewer
/// than two element steps (TwigStack needs an edge to be holistic about).
Result<std::optional<std::vector<NodeIndex>>> ExecuteTwigChain(
    const DocumentIndexes& idx, const TagIndex& tag, const IndexQuery& q) {
  std::optional<std::vector<NodeIndex>> declined;
  JoinChainShape shape = ClassifyJoinChain(q);
  if (!shape.joinable || shape.elem_steps < 2) return declined;
  const Document& doc = idx.doc();

  std::vector<int32_t> first_frontier =
      ResolveSynopsisStep(idx, {0}, q.steps[0]);
  std::vector<NodeIndex> first = MergedSynopsisPostings(idx, first_frontier);

  TwigPattern pattern;
  pattern.anchor_uri = q.doc_uri;
  std::vector<const std::vector<NodeIndex>*> lists;
  int prev = pattern.Add(q.steps[0].local);
  pattern.nodes[prev].uri = q.steps[0].uri;
  lists.push_back(&first);
  bool missing_tag = false;
  for (size_t i = 1; i < shape.elem_steps; ++i) {
    const IndexStep& st = q.steps[i];
    int node = pattern.Add(st.local, prev, /*child_edge=*/!st.descendant);
    pattern.nodes[node].uri = st.uri;
    const std::vector<NodeIndex>* list = tag.Lookup(st.uri, st.local);
    if (list == nullptr) missing_tag = true;
    lists.push_back(list);
    prev = node;
  }
  pattern.output = prev;

  std::vector<NodeIndex> matches;
  if (!missing_tag && !first.empty()) {
    XQP_ASSIGN_OR_RETURN(matches, TwigStackMatchWithLists(doc, pattern, lists));
  }
  if (shape.trailing_attr && !matches.empty()) {
    matches = NavigateMaterializedStep(doc, matches, q.steps.back());
  }
  return std::optional<std::vector<NodeIndex>>(std::move(matches));
}

}  // namespace

AccessPathDecision ChooseAccessPath(const DocumentIndexes& idx,
                                    const IndexQuery& q, AccessPath force) {
  AccessPathDecision d;
  d.costs = EstimateAccessPathCosts(idx, q, &d.card);
  if (force != AccessPath::kAuto) {
    d.forced = true;
    d.chosen = force;
    return d;
  }
  d.chosen = AccessPath::kNav;
  double best = d.costs.nav;
  if (d.costs.sjoin_applicable && d.costs.sjoin <= best) {
    best = d.costs.sjoin;
    d.chosen = AccessPath::kSJoin;
  }
  if (d.costs.twig_applicable && d.costs.twig <= best) {
    best = d.costs.twig;
    d.chosen = AccessPath::kTwig;
  }
  if (d.costs.index_applicable && d.costs.index <= best) {
    best = d.costs.index;
    d.chosen = AccessPath::kIndex;
  }
  return d;
}

Result<std::optional<Sequence>> TryExecuteAccessPath(const PathExpr* e,
                                                     DynamicContext* ctx) {
  static metrics::Counter* synopsis_hits =
      metrics::MetricsRegistry::Global().counter("index.synopsis_hits");
  static metrics::Counter* value_hits =
      metrics::MetricsRegistry::Global().counter("index.value_hits");
  static metrics::Counter* fallbacks =
      metrics::MetricsRegistry::Global().counter("index.fallbacks");
  static metrics::Counter* chose_nav =
      metrics::MetricsRegistry::Global().counter("planner.nav");
  static metrics::Counter* chose_sjoin =
      metrics::MetricsRegistry::Global().counter("planner.sjoin");
  static metrics::Counter* chose_twig =
      metrics::MetricsRegistry::Global().counter("planner.twig");
  static metrics::Counter* chose_index =
      metrics::MetricsRegistry::Global().counter("planner.index");
  static metrics::Counter* forced_count =
      metrics::MetricsRegistry::Global().counter("planner.forced");

  std::optional<Sequence> declined;
  if (ctx == nullptr || ctx->provider == nullptr) return declined;
  std::optional<IndexQuery> plan = PlanIndexPath(*e);
  if (!plan.has_value()) {
    if (metrics::Enabled()) fallbacks->Add(1);
    return declined;
  }
  auto indexes_r = ctx->provider->GetDocumentIndexes(plan->doc_uri);
  if (!indexes_r.ok()) {
    // A missing document falls back so normal evaluation raises the
    // canonical fn:doc error; resource trips and injected faults during a
    // governed index build must surface as this query's failure.
    if (indexes_r.status().code() == StatusCode::kDynamicError) {
      if (metrics::Enabled()) fallbacks->Add(1);
      return declined;
    }
    return indexes_r.status();
  }
  std::shared_ptr<const DocumentIndexes> indexes = indexes_r.value();
  if (indexes == nullptr) return declined;  // Indexes disabled.

  AccessPathDecision decision =
      ChooseAccessPath(*indexes, *plan, ctx->force_access_path);
  if (metrics::Enabled() && decision.forced) forced_count->Add(1);

  std::optional<std::vector<NodeIndex>> nodes;
  switch (decision.chosen) {
    case AccessPath::kAuto:
    case AccessPath::kNav:
      // The cost model (or a forced override) picked plain navigation:
      // decline so the normal engines run the path.
      if (metrics::Enabled()) chose_nav->Add(1);
      return declined;
    case AccessPath::kIndex:
      nodes = AnswerIndexQuery(*indexes, *plan);
      if (nodes.has_value() && metrics::Enabled()) {
        chose_index->Add(1);
        (plan->HasPredicates() ? value_hits : synopsis_hits)->Add(1);
      }
      break;
    case AccessPath::kSJoin:
    case AccessPath::kTwig: {
      auto tag_r = ctx->provider->GetTagIndex(plan->doc_uri);
      if (!tag_r.ok()) {
        if (tag_r.status().code() == StatusCode::kDynamicError) {
          if (metrics::Enabled()) fallbacks->Add(1);
          return declined;
        }
        return tag_r.status();
      }
      std::shared_ptr<const TagIndex> tag = tag_r.value();
      // The tag index must label the same document snapshot the synopsis
      // indexed; a racing re-registration makes them diverge — decline.
      if (tag != nullptr &&
          tag->doc_ptr().get() == indexes->doc_ptr().get()) {
        if (ctx->governor != nullptr) {
          XQP_RETURN_NOT_OK(ctx->governor->Poll());
        }
        if (decision.chosen == AccessPath::kSJoin) {
          nodes = ExecuteSJoinChain(*indexes, *tag, *plan, ctx);
        } else {
          XQP_ASSIGN_OR_RETURN(nodes, ExecuteTwigChain(*indexes, *tag, *plan));
        }
      }
      if (nodes.has_value() && metrics::Enabled()) {
        (decision.chosen == AccessPath::kSJoin ? chose_sjoin : chose_twig)
            ->Add(1);
      }
      break;
    }
  }
  if (!nodes.has_value()) {
    if (metrics::Enabled()) fallbacks->Add(1);
    return declined;
  }
  Sequence out;
  out.reserve(nodes->size());
  for (NodeIndex n : *nodes) {
    out.push_back(Item(Node(indexes->doc_ptr(), n)));
  }
  if (ctx->governor != nullptr) {
    XQP_RETURN_NOT_OK(ctx->governor->Poll());
    XQP_RETURN_NOT_OK(ctx->governor->ChargeBytes(out.size() * sizeof(Item)));
  }
  return std::optional<Sequence>(std::move(out));
}

void AnnotateAccessPaths(Expr* root, const IndexPeek& peek, AccessPath force) {
  if (root == nullptr) return;
  if (root->kind() == ExprKind::kPath) {
    auto* path = static_cast<PathExpr*>(root);
    path->access_path = AccessPath::kAuto;
    path->access_est = 0;
    if (path->index_candidate) {
      std::optional<IndexQuery> plan = PlanIndexPath(*path);
      if (plan.has_value()) {
        std::shared_ptr<const DocumentIndexes> indexes = peek(plan->doc_uri);
        if (indexes != nullptr) {
          AccessPathDecision d = ChooseAccessPath(*indexes, *plan, force);
          path->access_path = d.chosen == AccessPath::kAuto ? AccessPath::kNav
                                                            : d.chosen;
          path->access_est = d.card.rows;
        }
      }
    }
  }
  for (size_t i = 0; i < root->NumChildren(); ++i) {
    AnnotateAccessPaths(root->child(i), peek, force);
  }
}

}  // namespace xqp
