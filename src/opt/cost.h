#ifndef XQP_OPT_COST_H_
#define XQP_OPT_COST_H_

#include <cstdint>

#include "index/document_indexes.h"
#include "index/index_planner.h"

namespace xqp {

/// Cardinality estimate for an index-answerable chain. Pure structural
/// chains are *exact*: the synopsis stores the true per-path node counts,
/// so the estimate is the answer's cardinality. Predicates make it a
/// statistical estimate (`exact == false`): value selectivities come from
/// counting range probes of the sorted value families, conjunctions
/// multiply under an independence assumption, positional predicates keep
/// at most one node per candidate parent, and steps after the predicate
/// scale by the synopsis fan-out ratio.
struct CardEstimate {
  uint64_t rows = 0;
  bool exact = false;
};

/// Scored candidate strategies for one chain, in abstract "node touches"
/// (list entries scanned + sort comparisons + output rows — see DESIGN.md
/// "Cost model & access-path selection" for the formulas). A strategy with
/// `*_applicable == false` cannot answer this shape (predicates rule out
/// the join strategies; a disabled value family rules out the index) and
/// its cost is meaningless.
struct AccessPathCosts {
  double nav = 0;
  double sjoin = 0;
  double twig = 0;
  double index = 0;
  bool sjoin_applicable = false;
  bool twig_applicable = false;
  bool index_applicable = false;
};

/// Join-strategy applicability of a chain: the join executors (and the
/// cost model scoring them) accept predicate-free element chains with at
/// most one trailing non-descendant attribute step.
struct JoinChainShape {
  bool joinable = false;
  /// Number of leading element steps (k or k-1 with a trailing attribute).
  size_t elem_steps = 0;
  bool trailing_attr = false;
};

JoinChainShape ClassifyJoinChain(const IndexQuery& q);

/// Estimates the result cardinality of `q` from the document's synopsis
/// and value index. Never touches posting contents — only counts and
/// logarithmic range probes.
CardEstimate EstimateCardinality(const DocumentIndexes& idx,
                                 const IndexQuery& q);

/// Scores all four strategies for `q`. `card_out`, when non-null, receives
/// the cardinality estimate the scoring derived (same value as
/// EstimateCardinality — computed in the same walk).
AccessPathCosts EstimateAccessPathCosts(const DocumentIndexes& idx,
                                        const IndexQuery& q,
                                        CardEstimate* card_out = nullptr);

}  // namespace xqp

#endif  // XQP_OPT_COST_H_
