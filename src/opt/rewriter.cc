#include "opt/rewriter.h"

#include "base/metrics.h"
#include "opt/properties.h"
#include "query/expr.h"

namespace xqp {

using opt_internal::RuleContext;

namespace opt_internal {

void RuleContext::Count(const char* rule) {
  ++(*stats)[rule];
  changed = true;
  if (metrics::Enabled()) {
    metrics::MetricsRegistry::Global()
        .counter(std::string("rewrite.") + rule)
        ->Increment();
  }
}

}  // namespace opt_internal

namespace {

Status OptimizeFrame(ExprPtr& body, ParsedModule* module,
                     const RewriterOptions& options, RewriteStats* stats,
                     int* next_slot) {
  for (int pass = 0; pass < options.max_passes; ++pass) {
    RuleContext ctx{module, &options, stats, next_slot};
    // Properties feed several rules; refresh before every pass.
    AnalyzeExpr(body.get(), module);
    XQP_RETURN_NOT_OK(opt_internal::ApplyCoreRules(body, &ctx));
    AnalyzeExpr(body.get(), module);
    XQP_RETURN_NOT_OK(opt_internal::ApplyFlworRules(body, &ctx));
    AnalyzeExpr(body.get(), module);
    XQP_RETURN_NOT_OK(opt_internal::ApplyPathRules(body, &ctx));
    if (!ctx.changed) break;
  }
  return Status::OK();
}

}  // namespace

Result<RewriteStats> OptimizeModule(ParsedModule* module,
                                    const RewriterOptions& options) {
  RewriteStats stats;
  for (UserFunction& fn : module->functions) {
    if (fn.body == nullptr) continue;
    XQP_RETURN_NOT_OK(
        OptimizeFrame(fn.body, module, options, &stats, &fn.num_slots));
  }
  for (GlobalVariable& g : module->globals) {
    if (g.init == nullptr) continue;
    XQP_RETURN_NOT_OK(
        OptimizeFrame(g.init, module, options, &stats, &g.num_slots));
  }
  XQP_RETURN_NOT_OK(OptimizeFrame(module->body, module, options, &stats,
                                  &module->num_slots));
  return stats;
}

}  // namespace xqp
