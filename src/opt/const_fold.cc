#include "opt/const_fold.h"

#include <memory>
#include <utility>

#include "exec/arithmetic.h"
#include "exec/compare.h"
#include "opt/rewriter.h"

namespace xqp {

namespace {

bool AllChildrenLiteral(const Expr& e) {
  if (e.NumChildren() == 0) return false;
  for (size_t i = 0; i < e.NumChildren(); ++i) {
    if (e.child(i)->kind() != ExprKind::kLiteral) return false;
  }
  return true;
}

Sequence LiteralOperand(const Expr& e, size_t i) {
  return Sequence{Item(static_cast<const LiteralExpr*>(e.child(i))->value)};
}

}  // namespace

std::optional<Sequence> TryFoldLiteralNode(const Expr& e) {
  switch (e.kind()) {
    case ExprKind::kArithmetic: {
      if (!AllChildrenLiteral(e)) return std::nullopt;
      auto r = EvalArithmetic(static_cast<const ArithmeticExpr&>(e).op,
                              LiteralOperand(e, 0), LiteralOperand(e, 1));
      if (!r.ok()) return std::nullopt;
      return std::move(r).value();
    }
    case ExprKind::kUnary: {
      if (!AllChildrenLiteral(e)) return std::nullopt;
      auto r = EvalUnary(static_cast<const UnaryExpr&>(e).negate,
                         LiteralOperand(e, 0));
      if (!r.ok()) return std::nullopt;
      return std::move(r).value();
    }
    case ExprKind::kComparison: {
      if (!AllChildrenLiteral(e)) return std::nullopt;
      CompOp op = static_cast<const ComparisonExpr&>(e).op;
      if (IsValueComp(op)) {
        auto r = EvalValueComparison(op, LiteralOperand(e, 0),
                                     LiteralOperand(e, 1));
        if (!r.ok()) return std::nullopt;
        return std::move(r).value();
      }
      if (IsGeneralComp(op)) {
        auto r = EvalGeneralComparison(op, LiteralOperand(e, 0),
                                       LiteralOperand(e, 1));
        if (!r.ok()) return std::nullopt;
        return Sequence{Item(AtomicValue::Boolean(r.value()))};
      }
      return std::nullopt;  // Node comparisons never have literal operands.
    }
    default:
      return std::nullopt;
  }
}

namespace opt_internal {

void ConstFoldRewrite(ExprPtr& e, RuleContext* ctx) {
  std::optional<Sequence> folded = TryFoldLiteralNode(*e);
  if (!folded.has_value()) return;
  if (folded->size() != 1 || !(*folded)[0].IsAtomic()) return;
  e = std::make_unique<LiteralExpr>((*folded)[0].AsAtomic());
  ctx->Count("const_fold");
}

}  // namespace opt_internal

}  // namespace xqp
